// SCALE -- engine performance (google-benchmark).
//
// The paper relies on C-BGP being able to run per-prefix simulations on
// topologies "with more than 16,500 routers split among 14,500 ASes in
// 2-45 minutes with 200 MB - 2 GB memory".  This bench measures our engine's
// per-prefix propagation cost against topology size, plus microbenchmarks of
// the decision process and the model's policy lookups.
#include <benchmark/benchmark.h>

#include <memory>
#include <utility>

#include "bgp/engine.hpp"
#include "core/pipeline.hpp"
#include "data/ground_truth.hpp"
#include "data/internet_gen.hpp"
#include "netbase/sysinfo.hpp"

namespace {

struct Fixture {
  data::Internet internet;
  data::GroundTruth gt;
  std::vector<nb::Asn> ases;
};

Fixture make_fixture(double scale) {
  data::InternetConfig config;
  config = config.scaled(scale);
  config.seed = 1;
  Fixture fixture;
  fixture.internet = data::generate_internet(config);
  data::GroundTruthConfig gt_config;
  fixture.gt = data::build_ground_truth(fixture.internet, gt_config);
  fixture.ases = fixture.internet.graph.nodes();
  return fixture;
}

void BM_PrefixPropagation(benchmark::State& state) {
  static std::map<int, Fixture> cache;
  const int permille = static_cast<int>(state.range(0));
  auto it = cache.find(permille);
  if (it == cache.end())
    it = cache.emplace(permille, make_fixture(permille / 1000.0)).first;
  Fixture& fixture = it->second;
  bgp::Engine engine(fixture.gt.model, fixture.gt.config.engine_options());
  std::size_t index = 0;
  std::uint64_t messages = 0;
  for (auto _ : state) {
    nb::Asn origin = fixture.ases[index++ % fixture.ases.size()];
    auto sim = engine.run(nb::Prefix::for_asn(origin), origin);
    benchmark::DoNotOptimize(sim.routers.data());
    messages += sim.messages;
  }
  state.counters["routers"] =
      static_cast<double>(fixture.gt.model.num_routers());
  state.counters["sessions"] =
      static_cast<double>(fixture.gt.model.num_sessions());
  state.counters["msgs/prefix"] =
      benchmark::Counter(static_cast<double>(messages),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_PrefixPropagation)
    ->Arg(250)
    ->Arg(500)
    ->Arg(1000)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);

void BM_PaperScalePropagation(benchmark::State& state) {
  // The paper-scale leg: Arg is scale permille, 32000 -> scale 32, which
  // generates ~14.6k post-stub ASes -- past the "14,500 ASes split among
  // 16,500 routers" C-BGP workload the paper reports.  Ground-truth RIB
  // construction is not part of that claim, so the fixture is just the
  // generated graph under a one-router-per-AS start model; the benchmark
  // measures per-prefix propagation over it and reports routers/sec
  // (propagated routers per wall-clock second across the sampled sims) and
  // the process peak RSS, the two columns the paper states its own bounds
  // in (2-45 minutes, 200 MB - 2 GB).
  struct PaperFixture {
    topo::Model model;
    std::vector<nb::Asn> ases;
  };
  static std::unique_ptr<PaperFixture> fixture;
  if (fixture == nullptr) {
    data::InternetConfig config;
    config = config.scaled(state.range(0) / 1000.0);
    config.seed = 1;
    const data::Internet internet = data::generate_internet(config);
    auto built = std::make_unique<PaperFixture>(
        PaperFixture{topo::Model::one_router_per_as(internet.graph),
                     internet.graph.nodes()});
    fixture = std::move(built);
  }
  const bgp::Engine engine(fixture->model);
  std::size_t index = 0;
  std::uint64_t messages = 0;
  for (auto _ : state) {
    const nb::Asn origin = fixture->ases[index++ % fixture->ases.size()];
    const auto sim = engine.run(nb::Prefix::for_asn(origin), origin);
    benchmark::DoNotOptimize(sim.routers.data());
    messages += sim.messages;
  }
  state.counters["ases"] = static_cast<double>(fixture->ases.size());
  state.counters["routers"] =
      static_cast<double>(fixture->model.num_routers());
  state.counters["sessions"] =
      static_cast<double>(fixture->model.num_sessions());
  state.counters["msgs/prefix"] =
      benchmark::Counter(static_cast<double>(messages),
                         benchmark::Counter::kAvgIterations);
  state.counters["routers/sec"] = benchmark::Counter(
      static_cast<double>(fixture->model.num_routers()),
      benchmark::Counter::kIsIterationInvariantRate);
  state.counters["peak_rss_mb"] =
      static_cast<double>(nb::peak_rss_bytes()) / (1024.0 * 1024.0);
}
BENCHMARK(BM_PaperScalePropagation)
    ->Arg(32000)
    ->Unit(benchmark::kMillisecond);

void BM_DecisionProcess(benchmark::State& state) {
  const std::size_t candidates = static_cast<std::size_t>(state.range(0));
  std::vector<bgp::Route> routes(candidates);
  std::vector<std::uint32_t> ids(candidates);
  for (std::size_t i = 0; i < candidates; ++i) {
    routes[i].sender = static_cast<std::uint32_t>(i);
    routes[i].path = {static_cast<nb::Asn>(i % 7 + 1), 42};
    routes[i].med = i % 2 ? 100 : 0;
    ids[i] = static_cast<std::uint32_t>(candidates - i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(bgp::select_best(routes, ids));
  }
}
BENCHMARK(BM_DecisionProcess)->Arg(4)->Arg(16)->Arg(64);

void BM_ModelDuplication(benchmark::State& state) {
  auto fixture = make_fixture(0.25);
  for (auto _ : state) {
    state.PauseTiming();
    topo::Model model = fixture.gt.model;  // copy
    state.ResumeTiming();
    // Duplicate the busiest router repeatedly.
    nb::Asn core = fixture.internet.tier1.front();
    for (int i = 0; i < 8; ++i)
      benchmark::DoNotOptimize(
          model.duplicate_router(model.router_id(model.routers_of(core)[0])));
  }
}
BENCHMARK(BM_ModelDuplication)->Unit(benchmark::kMicrosecond);

void BM_RefinementEndToEnd(benchmark::State& state) {
  const double scale = state.range(0) / 1000.0;
  for (auto _ : state) {
    core::PipelineConfig config = core::PipelineConfig::with(scale, 1);
    auto pipeline = core::run_full_pipeline(config);
    benchmark::DoNotOptimize(pipeline.model.num_routers());
    if (!pipeline.refine_result.success) state.SkipWithError("no fixpoint");
  }
}
BENCHMARK(BM_RefinementEndToEnd)
    ->Arg(100)
    ->Arg(250)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
