// T4 -- the Section 5 headline: prediction accuracy on HELD-OUT observation
// points.  "We can match the predictions down to the final BGP tie break in
// more than 80% of the test cases."
//
// Reported: RIB-Out match, RIB-Out + potential RIB-Out (= down to the
// tie-break, the 80% quantity), RIB-In match (upper bound), per-prefix
// coverage, and the loss breakdown by decision step -- for the validation
// set, with the training set shown as the fixpoint reference.  Runs three
// seeds to expose variance.
#include "bench_common.hpp"
#include "core/report.hpp"
#include "netbase/strings.hpp"

int main(int argc, char** argv) {
  auto setup = benchtool::setup_from_cli(argc, argv);
  benchtool::banner("bench_table4_validation",
                    "Section 5 headline: held-out route prediction", setup);

  nb::TextTable summary({"seed", "val paths", "RIB-Out",
                         "down-to-tie-break", "RIB-In", "not avail",
                         "training"});
  bool printed_detail = false;
  for (std::uint64_t seed = setup.seed; seed < setup.seed + 3; ++seed) {
    core::PipelineConfig config =
        core::PipelineConfig::with(setup.scale, seed);
    config.threads = setup.config.threads;
    core::Pipeline pipeline = core::run_full_pipeline(config);
    const auto& val = pipeline.validation_eval.stats;
    summary.add_row({std::to_string(seed), nb::fmt_count(val.total),
                     nb::fmt_percent(val.rib_out_rate()),
                     nb::fmt_percent(val.potential_or_better_rate()),
                     nb::fmt_percent(val.rib_in_rate()),
                     nb::fmt_percent(val.not_available_rate()),
                     nb::fmt_percent(
                         pipeline.training_eval.stats.rib_out_rate())});
    if (!printed_detail) {
      printed_detail = true;
      std::printf("detail (seed %llu):\n",
                  static_cast<unsigned long long>(seed));
      std::printf("%s\n", core::render_validation("validation set", val)
                              .c_str());
      std::printf("loss breakdown (validation, non-RIB-Out paths):\n");
      nb::TextTable losses({"eliminated at", "share of all paths"});
      for (std::size_t step = 0; step < val.lost_at.size(); ++step) {
        if (val.lost_at[step] == 0) continue;
        losses.add_row(
            {bgp::decision_step_name(static_cast<bgp::DecisionStep>(step)),
             nb::fmt_percent(static_cast<double>(val.lost_at[step]) /
                             val.total)});
      }
      losses.add_row({"path not available",
                      nb::fmt_percent(val.not_available_rate())});
      std::printf("%s\n", losses.render().c_str());
    }
  }
  std::printf("across seeds:\n%s\n", summary.render().c_str());
  std::printf("paper: 'we can match the predictions down to the final BGP "
              "tie break in more than 80%% of the test cases'\n");
  return 0;
}
