// ABL -- ablation of the refinement mechanisms (DESIGN.md design choices):
//
//   full          duplication + filters + MED ranking (the paper's design)
//   no-dup        single quasi-router per AS (Section 3.3's limitation)
//   no-filters    ranking only (cannot force longer-than-best paths)
//   no-ranking    filters only (must block every equal-length competitor)
//
// Reported per variant: training fixpoint reached?, training RIB-Out rate,
// validation down-to-tie-break rate, model size.  Expected shape: only the
// full mechanism reaches the exact training match; removing duplication is
// the most damaging (the paper's core claim that ASes are not atomic).
#include "bench_common.hpp"
#include "core/report.hpp"
#include "netbase/strings.hpp"

int main(int argc, char** argv) {
  auto setup = benchtool::setup_from_cli(argc, argv, 0.35);
  benchtool::banner("bench_ablation",
                    "refinement-mechanism ablation (DESIGN.md)", setup);

  core::Pipeline pipeline = core::make_pipeline(setup.config);
  core::run_data_stages(pipeline);
  benchtool::print_dataset_line(pipeline);

  struct Variant {
    const char* name;
    bool duplication, filters, ranking;
  };
  const Variant variants[] = {
      {"full", true, true, true},
      {"no-dup", false, true, true},
      {"no-filters", true, false, true},
      {"no-ranking", true, true, false},
  };

  nb::TextTable table({"variant", "training exact", "training RIB-Out",
                       "val down-to-tie-break", "val RIB-In", "routers",
                       "filters", "iters"});
  for (const Variant& variant : variants) {
    topo::Model model = topo::Model::one_router_per_as(pipeline.graph);
    core::RefineConfig config = setup.config.refine;
    config.allow_duplication = variant.duplication;
    config.allow_filters = variant.filters;
    config.allow_ranking = variant.ranking;
    auto refined = core::refine_model(model, pipeline.split.training, config);

    core::EvalOptions options;
    options.threads = setup.config.threads;
    auto train = core::evaluate_predictions(model, pipeline.split.training,
                                            options);
    auto val = core::evaluate_predictions(model, pipeline.split.validation,
                                          options);
    auto stats = model.policy_stats();
    table.add_row({variant.name, refined.success ? "yes" : "NO",
                   nb::fmt_percent(train.stats.rib_out_rate()),
                   nb::fmt_percent(val.stats.potential_or_better_rate()),
                   nb::fmt_percent(val.stats.rib_in_rate()),
                   nb::fmt_count(model.num_routers()),
                   nb::fmt_count(stats.filters),
                   std::to_string(refined.iterations)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("expected: only 'full' achieves the exact training match; \n"
              "'no-dup' collapses route diversity (the single-router "
              "limitation of Section 3.3).\n");
  return 0;
}
