// UPD -- extension experiment: incorporate AS-path information from BGP
// updates (the future work named in Section 3.1: "In the future we are
// planning to also incorporate the AS-path information from BGP updates").
//
// Single-session failures in the ground truth generate update streams at
// the training observation points; the update-revealed backup paths are
// merged into the training data and the model is refit.  Reported: how many
// extra unique paths updates reveal, and the validation accuracy of the
// dump-only vs dump+updates models on the same held-out feeds.
#include "bench_common.hpp"
#include "core/report.hpp"
#include "data/dynamics.hpp"
#include "netbase/strings.hpp"

int main(int argc, char** argv) {
  auto setup = benchtool::setup_from_cli(argc, argv, 0.35);
  benchtool::banner("bench_updates",
                    "extension: training on table dumps + update streams "
                    "(Section 3.1 future work)",
                    setup);
  nb::Cli cli(argc, argv);
  data::DynamicsConfig dynamics;
  dynamics.num_events = cli.get_u64("events", 16);

  core::Pipeline pipeline = core::make_pipeline(setup.config);
  core::run_data_stages(pipeline);
  benchtool::print_dataset_line(pipeline);

  // Update streams observed at the TRAINING points only (the validation
  // points stay untouched, as held-out monitors).  The diff baseline must be
  // the RAW feeds (stub reduction is applied after merging, as for dumps).
  auto raw_split =
      data::split_by_points(pipeline.raw_dataset, setup.config.split);
  bgp::ThreadPool pool(setup.config.threads);
  auto stream = data::simulate_session_failures(
      pipeline.ground_truth, raw_split.training, dynamics, pool);
  std::printf("simulated %zu session failures: %zu announcements, %zu "
              "withdrawals\n",
              stream.events.size(), stream.announcements(),
              stream.withdrawals());

  core::EvalOptions options;
  options.threads = setup.config.threads;
  nb::TextTable table({"training data", "records", "training exact",
                       "val RIB-Out", "val down-to-tie-break", "val RIB-In",
                       "routers"});
  auto fit_and_eval = [&](const std::string& name,
                          const data::BgpDataset& training) {
    topo::Model model = topo::Model::one_router_per_as(pipeline.graph);
    auto refined =
        core::refine_model(model, training, setup.config.refine);
    auto val = core::evaluate_predictions(model, pipeline.split.validation,
                                          options);
    table.add_row({name, nb::fmt_count(training.records.size()),
                   refined.success ? "yes" : "NO",
                   nb::fmt_percent(val.stats.rib_out_rate()),
                   nb::fmt_percent(val.stats.potential_or_better_rate()),
                   nb::fmt_percent(val.stats.rib_in_rate()),
                   nb::fmt_count(model.num_routers())});
  };
  fit_and_eval("table dump only", pipeline.split.training);
  // Saturation sweep: use only the first K failure events' updates.
  for (std::size_t limit : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                            std::size_t{8}, dynamics.num_events}) {
    if (limit > dynamics.num_events) break;
    data::UpdateStream partial;
    partial.events = stream.events;
    for (const auto& update : stream.updates)
      if (update.event < limit) partial.updates.push_back(update);
    data::BgpDataset merged = data::reduce_stubs(
        partial.merge_into(raw_split.training), pipeline.single_homed);
    fit_and_eval("dump + " + std::to_string(limit) + " failure events",
                 merged);
    if (limit == dynamics.num_events) break;
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("reading: update streams reveal backup paths invisible in a\n"
              "single table dump; they raise the availability (RIB-In) of\n"
              "held-out routes.  Whether exact-match accuracy improves is an\n"
              "empirical question -- backup paths are only selected under\n"
              "failure, and fitting them as permanent choices can trade\n"
              "static accuracy for coverage.\n");
  return 0;
}
