// PERF -- refinement fit benchmark (the perf counterpart of bench_scale).
//
// Times core::refine_model end to end at several topology scales, for one
// thread and for the hardware thread count, reporting wall-clock, the
// simulate/heuristic/validate phase split and engine message throughput.
// Also asserts the parallel sweep's core guarantee: the fitted model is
// byte-identical for every thread count (exit 1 if not).
//
// Output: a human-readable table on stdout plus a JSON report (default
// BENCH_refine.json) for CI artifacts.  With baseline=FILE the 1-thread
// total at each scale is gated against the recorded baseline:
// exit 1 if current > max-regress x baseline (CI perf smoke).
//
// Also times the static route-space analyzer (a 1-thread self-diff of the
// fitted model -- two MAY-set enumerations per prefix plus the comparison,
// the same path CI's diff gate exercises) and gates it against the
// baseline alongside the fit, re-proving self-diff emptiness on the way.
//
// The static working-set analyzer (analysis/workset.hpp) gets the same
// treatment: 1-thread runs time compute_all_worksets + plan_shards over the
// fitted model (the `rdtool plan` path) as `workset_seconds`, then replay
// one full sweep per prefix twice -- plain Engine::run vs the compacted
// view -- to report the compacted-sweep speedup.  At scale >= 0.15 the
// speedup must exceed 1x (exit 1).  The per-prefix (static cost, measured
// sweep seconds) samples from every 1-thread run are pooled ACROSS scales
// and their correlation gated positive: within one scale the fitted
// models' per-prefix workloads are deliberately uniform (measured message
// counts are constant), so only the cross-scale pool carries predictable
// variance.
//
// Every run also records fit throughput in routers/sec (fitted quasi-
// routers over fit wall-clock) and the process peak RSS
// (nb::peak_rss_bytes -- a process-wide high-water mark, so later scales
// report the running maximum), and each scale's hardware-thread leg
// reports its parallel_speedup over the 1-thread leg, gated >= 1x at
// scales above the timer-noise floor whenever more than one hardware
// thread is available.
//
// The observer-overhead leg (DESIGN.md section 14) re-fits the largest
// requested scale at the multi-thread count twice -- once bare (no
// observer, no trace, no flight recorder: the zero-observer path) and once
// fully profiled (metric registry + kIteration trace sink + flight
// recorder) -- best-of-3 each, asserts the two fitted models are
// byte-identical, and gates profiled/bare <= --observer-overhead-max
// (default 1.05, the CI perf-smoke gate) at scales above the noise floor.
// The profiled run's per-shard samples also score the static cost model:
// the Spearman rank correlation of predicted shard cost vs measured shard
// wall-clock must be positive whenever enough sharded samples exist (the
// planner only needs the ORDER of shard loads to be right).
//
//   bench_refine [--scales=0.05,0.1,0.2] [--seed=1] [--threads=0]
//                [--out=BENCH_refine.json] [--baseline=FILE]
//                [--max-regress=2.0] [--write-baseline=FILE]
//                [--observer-overhead-max=1.05] [--skip-overhead]
//
// The baseline file is plain text, one `scale <fit-seconds>
// <route-space-seconds> <workset-seconds> <routers-per-sec> <peak-rss-mb>`
// line per scale, written by --write-baseline on a reference machine and
// parsed here without any JSON dependency.  The column count is STRICT:
// each metric column mirrors a gated BENCH_refine.json key, and a file
// whose lines disagree with the expected count is a named
// baseline-column-mismatch error, not a silent skip -- stale baselines
// previously disabled the gate without a trace.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/model_diff.hpp"
#include "analysis/partition.hpp"
#include "analysis/reachability_cache.hpp"
#include "analysis/workset.hpp"
#include "bgp/threadpool.hpp"
#include "core/pipeline.hpp"
#include "netbase/cli.hpp"
#include "netbase/json.hpp"
#include "netbase/sysinfo.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/observer.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "topology/model_io.hpp"

namespace {

struct RunResult {
  double scale = 0;
  unsigned threads = 0;       // requested (resolved, see threads_used)
  unsigned threads_used = 0;
  core::RefineResult refine;
  std::size_t routers = 0;
  std::string model_text;     // serialized fit, for cross-thread identity
  /// Phase timings as recorded by the obs registry (refine.phase.*_ns):
  /// every run attaches a metric registry -- never a trace sink, so the
  /// timed sweep stays on the cheap counters-only path -- and the JSON
  /// report carries both the wall-clock and the registry view.
  std::uint64_t simulate_ns = 0;
  std::uint64_t heuristic_ns = 0;
  std::uint64_t validate_ns = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t engine_messages = 0;
  /// Route-space analyzer wall-clock: 1-thread self-diff of the fitted
  /// model (0 on multi-thread runs, which skip it).
  double route_space_seconds = 0;
  bool self_diff_identical = true;
  /// Working-set analyzer wall-clock: compute_all_worksets + plan_shards
  /// over the fitted model (1-thread runs only; 0 elsewhere).
  double workset_seconds = 0;
  /// One full per-prefix sweep with Engine::run divided by the same sweep
  /// through compacted views (0 when compaction was unavailable/skipped).
  double compact_speedup = 0;
  double plan_imbalance = 0;
  /// Process peak RSS right after the fit (getrusage high-water mark:
  /// monotone across the process, so per-scale values are running maxima).
  std::uint64_t peak_rss_bytes = 0;
  /// 1-thread total / this run's total; only set on the multi-thread leg.
  double parallel_speedup = 0;
  /// Per-prefix (static cost, measured full-run seconds) samples; pooled
  /// across scales in main for the cost-model validation.
  std::vector<double> prefix_costs;
  std::vector<double> prefix_times;
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

double pearson(const std::vector<double>& xs, const std::vector<double>& ys) {
  const std::size_t n = xs.size();
  if (n < 2) return 0;
  double mx = 0, my = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx <= 0 || syy <= 0) return 0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> parse_scales(const std::string& text) {
  std::vector<double> scales;
  std::stringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (!item.empty()) scales.push_back(std::stod(item));
  }
  return scales;
}

RunResult run_once(double scale, std::uint64_t seed, unsigned threads) {
  core::PipelineConfig config = core::PipelineConfig::with(scale, seed);
  config.threads = threads;
  config.refine.threads = threads;
  core::Pipeline pipeline = core::make_pipeline(config);
  core::run_data_stages(pipeline);

  topo::Model model = topo::Model::one_router_per_as(pipeline.graph);
  RunResult run;
  run.scale = scale;
  run.threads = threads;
  obs::Registry registry;
  obs::Observer observer;
  observer.registry = &registry;
  config.refine.observer = &observer;
  run.refine =
      core::refine_model(model, pipeline.split.training, config.refine);
  run.simulate_ns = registry.counter_value("refine.phase.simulate_ns");
  run.heuristic_ns = registry.counter_value("refine.phase.heuristic_ns");
  run.validate_ns = registry.counter_value("refine.phase.validate_ns");
  run.total_ns = registry.counter_value("refine.phase.total_ns");
  run.engine_messages = registry.counter_value("engine.messages");
  run.threads_used = run.refine.threads_used;
  run.routers = model.num_routers();
  run.peak_rss_bytes = nb::peak_rss_bytes();
  run.model_text = topo::model_to_string(model);
  if (threads == 1) {
    // Static route-space analyzer leg: a 1-thread self-diff of the fitted
    // model enumerates every prefix's MAY sets twice and compares them --
    // the hot path behind `rdtool diff`/`impact` -- and must come back
    // empty (the analyzer's own CI invariant).
    analysis::DiffOptions diff_options;
    diff_options.threads = 1;
    const auto start = std::chrono::steady_clock::now();
    const analysis::DiffResult self =
        analysis::diff_models(model, model, diff_options);
    run.route_space_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    run.self_diff_identical = self.identical();

    // Working-set analyzer leg: per-prefix working sets + shard plan over
    // the fitted model -- the path behind `rdtool plan`.
    bgp::Engine engine(model, config.refine.engine);
    analysis::ReachabilityCache cache;
    const auto ws_start = std::chrono::steady_clock::now();
    const std::vector<analysis::PrefixWorkset> worksets =
        analysis::compute_all_worksets(engine, {}, &cache, nullptr);
    const analysis::ShardPlan plan =
        analysis::plan_shards(worksets, model.num_routers(), {}, nullptr);
    run.workset_seconds = seconds_since(ws_start);
    run.plan_imbalance = plan.imbalance;

    // Cost-model samples + compacted-sweep speedup: one full sweep over
    // every prefix with the plain engine, the same sweep through compacted
    // views.  The (cost, seconds) pairs feed the pooled cross-scale
    // predicted-vs-measured correlation in main.
    double full_total = 0, compact_total = 0;
    bool compact_ok = true;
    for (const analysis::PrefixWorkset& ws : worksets) {
      const auto full_start = std::chrono::steady_clock::now();
      engine.run(ws.prefix, ws.origin);
      const double full_seconds = seconds_since(full_start);
      full_total += full_seconds;
      run.prefix_costs.push_back(static_cast<double>(ws.cost));
      run.prefix_times.push_back(full_seconds);
      // The compacted leg charges view construction too (the sweep pays it
      // every iteration), but reuses the workset like the refine loop
      // reuses its reachability cache.
      const auto compact_start = std::chrono::steady_clock::now();
      if (std::shared_ptr<const bgp::PrefixView> view =
              engine.build_view(ws.prefix, ws.origin, ws.members)) {
        engine.run_compacted(std::move(view));
      } else {
        compact_ok = false;
      }
      compact_total += seconds_since(compact_start);
    }
    if (compact_ok && compact_total > 0)
      run.compact_speedup = full_total / compact_total;
  }
  return run;
}

/// One fit for the observer-overhead leg.  `profiled` attaches the full
/// observability stack -- metric registry, kIteration trace sink and a
/// flight recorder -- exactly like `rdtool refine --trace`; bare runs
/// attach nothing, so they exercise the zero-observer path the overhead
/// ratio is measured against.  The per-shard profiler samples from the
/// profiled fit come back via `samples` for the cost-model score.
struct OverheadRun {
  double seconds = 0;
  std::string model_text;
};

OverheadRun run_overhead_leg(double scale, std::uint64_t seed,
                             unsigned threads, bool profiled,
                             std::vector<obs::SweepShardSample>* samples) {
  core::PipelineConfig config = core::PipelineConfig::with(scale, seed);
  config.threads = threads;
  config.refine.threads = threads;
  core::Pipeline pipeline = core::make_pipeline(config);
  core::run_data_stages(pipeline);
  topo::Model model = topo::Model::one_router_per_as(pipeline.graph);

  obs::Registry registry;
  obs::TraceSink trace(obs::TraceLevel::kIteration);
  obs::Observer observer;
  observer.registry = &registry;
  observer.trace = &trace;
  obs::FlightRecorder flight(2 + bgp::ThreadPool::resolve(threads));
  if (profiled) {
    config.refine.observer = &observer;
    config.refine.flight_recorder = &flight;
  }
  const auto start = std::chrono::steady_clock::now();
  core::RefineResult refine =
      core::refine_model(model, pipeline.split.training, config.refine);
  OverheadRun run;
  run.seconds = seconds_since(start);
  run.model_text = topo::model_to_string(model);
  if (profiled && samples != nullptr)
    *samples = std::move(refine.shard_samples);
  return run;
}

double messages_per_second(const RunResult& run) {
  const double sim = run.refine.phase_seconds.simulate;
  if (sim <= 0) return 0;
  return static_cast<double>(run.refine.messages_simulated) / sim;
}

/// Fit throughput: fitted quasi-routers over end-to-end fit wall-clock --
/// the paper-scale headline number (README "Scaling up").
double routers_per_second(const RunResult& run) {
  const double total = run.refine.phase_seconds.total;
  if (total <= 0) return 0;
  return static_cast<double>(run.routers) / total;
}

void append_json(nb::JsonWriter& w, const RunResult& run) {
  w.begin_object();
  w.key("scale").value_fixed(run.scale, 3);
  w.key("threads").value(run.threads);
  w.key("threads_used").value(run.threads_used);
  w.key("success").value(run.refine.success);
  w.key("iterations").value(static_cast<std::uint64_t>(run.refine.iterations));
  w.key("routers").value(static_cast<std::uint64_t>(run.routers));
  w.key("messages").value(run.refine.messages_simulated);
  w.key("messages_per_second").value_fixed(messages_per_second(run), 0);
  w.key("routers_per_second").value_fixed(routers_per_second(run), 1);
  w.key("peak_rss_bytes").value(run.peak_rss_bytes);
  w.key("sharded_iterations").value(run.refine.sharded_iterations);
  // 0 on 1-thread legs; the multi-thread leg carries its speedup over the
  // 1-thread fit at the same scale.
  w.key("parallel_speedup").value_fixed(run.parallel_speedup, 3);
  w.key("phase_seconds").begin_object();
  w.key("simulate").value_fixed(run.refine.phase_seconds.simulate, 6);
  w.key("heuristic").value_fixed(run.refine.phase_seconds.heuristic, 6);
  w.key("validate").value_fixed(run.refine.phase_seconds.validate, 6);
  w.key("total").value_fixed(run.refine.phase_seconds.total, 6);
  w.end_object();
  // The same phases as recorded by the metric registry the run attaches
  // (see bench/README.md for the full schema).
  w.key("registry").begin_object();
  w.key("simulate_ns").value(run.simulate_ns);
  w.key("heuristic_ns").value(run.heuristic_ns);
  w.key("validate_ns").value(run.validate_ns);
  w.key("total_ns").value(run.total_ns);
  w.key("engine_messages").value(run.engine_messages);
  w.end_object();
  // Route-space analyzer leg (1-thread runs only; 0 elsewhere).
  w.key("route_space_seconds").value_fixed(run.route_space_seconds, 6);
  w.key("self_diff_identical").value(run.self_diff_identical);
  // Working-set analyzer leg (1-thread runs only; 0 elsewhere).
  w.key("workset_seconds").value_fixed(run.workset_seconds, 6);
  w.key("compact_speedup").value_fixed(run.compact_speedup, 3);
  w.key("plan_imbalance").value_fixed(run.plan_imbalance, 4);
  w.key("compacted_runs").value(run.refine.compacted_runs);
  w.end_object();
}

struct BaselineEntry {
  double refine_seconds = 0;
  double route_space_seconds = 0;
  double workset_seconds = 0;
  double routers_per_second = 0;
  double peak_rss_mb = 0;
};

/// One column per gated BENCH_refine.json key, plus the scale.  Bump in
/// lockstep with the keys listed in the mismatch message below, and
/// regenerate bench/refine_baseline.txt with --write-baseline.
constexpr std::size_t kBaselineColumns = 6;

/// Strict parse: every non-empty line must carry exactly kBaselineColumns
/// whitespace-separated numbers.  A mismatch means the baseline file and
/// the gated BENCH_refine.json keys drifted apart; that used to silently
/// skip the gate, now it is a named error the caller turns into exit 1.
std::map<double, BaselineEntry> read_baseline(const std::string& path,
                                              std::string* error) {
  std::map<double, BaselineEntry> baseline;
  std::ifstream in(path);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::stringstream fields(line);
    std::vector<double> columns;
    double value = 0;
    while (fields >> value) columns.push_back(value);
    if (columns.empty()) continue;  // blank line
    if (columns.size() != kBaselineColumns) {
      *error = "baseline-column-mismatch: " + path + " line " +
               std::to_string(line_no) + " has " +
               std::to_string(columns.size()) + " columns, expected " +
               std::to_string(kBaselineColumns) +
               " (scale refine-seconds route-space-seconds workset-seconds "
               "routers-per-sec peak-rss-mb, mirroring the gated "
               "BENCH_refine.json keys phase_seconds.total/"
               "route_space_seconds/workset_seconds/routers_per_second/"
               "peak_rss_bytes); regenerate with --write-baseline";
      return {};
    }
    BaselineEntry entry;
    entry.refine_seconds = columns[1];
    entry.route_space_seconds = columns[2];
    entry.workset_seconds = columns[3];
    entry.routers_per_second = columns[4];
    entry.peak_rss_mb = columns[5];
    baseline[columns[0]] = entry;
  }
  return baseline;
}

}  // namespace

int main(int argc, char** argv) {
  nb::Cli cli(argc, argv);
  const std::vector<double> scales =
      parse_scales(cli.get_string("scales", "0.05,0.1,0.2"));
  const std::uint64_t seed = cli.get_u64("seed", 1);
  const unsigned multi = bgp::ThreadPool::resolve(
      static_cast<unsigned>(cli.get_u64("threads", 0)));
  const std::string out_path = cli.get_string("out", "BENCH_refine.json");

  std::printf("bench_refine: refinement fit wall-clock and throughput\n");
  std::printf("hardware threads: %u, multi-thread runs use %u\n\n",
              bgp::ThreadPool::resolve(0), multi);
  std::printf("%-7s %-8s %-6s %-9s %-10s %-10s %-10s %-12s %-9s %-8s %-8s "
              "%-8s %-8s\n",
              "scale", "threads", "iters", "routers", "simulate", "heuristic",
              "total", "msgs/sec", "rts/sec", "rss-mb", "rspace", "workset",
              "speedup");

  bool ok = true;
  bool identical = true;
  std::vector<RunResult> runs;
  for (const double scale : scales) {
    const std::string* one_thread_model = nullptr;
    double one_thread_total = 0;
    std::vector<unsigned> thread_counts{1};
    if (multi != 1) thread_counts.push_back(multi);
    for (const unsigned threads : thread_counts) {
      RunResult run = run_once(scale, seed, threads);
      ok &= run.refine.success;
      if (!run.self_diff_identical) {
        ok = false;
        std::fprintf(stderr,
                     "bench_refine: SELF-DIFF NOT EMPTY at scale %.3f\n",
                     scale);
      }
      if (threads == 1) {
        one_thread_total = run.refine.phase_seconds.total;
      } else if (run.refine.phase_seconds.total > 0) {
        run.parallel_speedup =
            one_thread_total / run.refine.phase_seconds.total;
      }
      std::printf(
          "%-7.3f %-8u %-6zu %-9zu %-10.3f %-10.3f %-10.3f %-12.0f %-9.1f "
          "%-8.1f %-8.3f %-8.3f %-8.2f\n",
          scale, run.threads_used, run.refine.iterations, run.routers,
          run.refine.phase_seconds.simulate, run.refine.phase_seconds.heuristic,
          run.refine.phase_seconds.total, messages_per_second(run),
          routers_per_second(run),
          static_cast<double>(run.peak_rss_bytes) / (1024.0 * 1024.0),
          run.route_space_seconds, run.workset_seconds, run.compact_speedup);
      runs.push_back(std::move(run));
      if (one_thread_model == nullptr) {
        one_thread_model = &runs.back().model_text;
      } else if (*one_thread_model != runs.back().model_text) {
        identical = false;
        std::fprintf(stderr,
                     "bench_refine: FITTED MODEL DIFFERS between 1 and %u "
                     "threads at scale %.3f\n",
                     threads, scale);
      }
    }
  }
  if (identical)
    std::printf("\nfitted models byte-identical across thread counts\n");

  // Perf gate against a recorded 1-thread baseline (CI smoke).
  bool baseline_checked = false;
  bool baseline_pass = true;
  if (cli.has("baseline")) {
    const double max_regress = cli.get_double("max-regress", 2.0);
    std::string baseline_error;
    const std::map<double, BaselineEntry> baseline =
        read_baseline(cli.get_string("baseline", ""), &baseline_error);
    if (!baseline_error.empty()) {
      std::fprintf(stderr, "bench_refine: %s\n", baseline_error.c_str());
      return 1;
    }
    for (const RunResult& run : runs) {
      if (run.threads != 1) continue;
      const auto it = baseline.find(run.scale);
      if (it == baseline.end()) continue;
      baseline_checked = true;
      const double total = run.refine.phase_seconds.total;
      const bool pass = total <= it->second.refine_seconds * max_regress;
      baseline_pass &= pass;
      std::printf("baseline scale %.3f: %.3fs vs %.3fs recorded (%.2fx, "
                  "limit %.2fx) %s\n",
                  run.scale, total, it->second.refine_seconds,
                  total / it->second.refine_seconds, max_regress,
                  pass ? "ok" : "REGRESSION");
      // Route-space leg, gated the same way when the baseline records it.
      if (it->second.route_space_seconds > 0) {
        const double rs = run.route_space_seconds;
        const bool rs_pass = rs <= it->second.route_space_seconds * max_regress;
        baseline_pass &= rs_pass;
        std::printf("baseline scale %.3f route-space: %.3fs vs %.3fs recorded "
                    "(%.2fx, limit %.2fx) %s\n",
                    run.scale, rs, it->second.route_space_seconds,
                    rs / it->second.route_space_seconds, max_regress,
                    rs_pass ? "ok" : "REGRESSION");
      }
      // Working-set analyzer leg, fourth baseline column.
      if (it->second.workset_seconds > 0) {
        const double ws = run.workset_seconds;
        const bool ws_pass = ws <= it->second.workset_seconds * max_regress;
        baseline_pass &= ws_pass;
        std::printf("baseline scale %.3f workset: %.3fs vs %.3fs recorded "
                    "(%.2fx, limit %.2fx) %s\n",
                    run.scale, ws, it->second.workset_seconds,
                    ws / it->second.workset_seconds, max_regress,
                    ws_pass ? "ok" : "REGRESSION");
      }
      // Throughput column: a regression is the fit slowing DOWN, so the
      // gate is current >= recorded / max-regress.
      if (it->second.routers_per_second > 0) {
        const double rps = routers_per_second(run);
        const bool rps_pass =
            rps >= it->second.routers_per_second / max_regress;
        baseline_pass &= rps_pass;
        std::printf("baseline scale %.3f routers/sec: %.1f vs %.1f recorded "
                    "(%.2fx, floor 1/%.2fx) %s\n",
                    run.scale, rps, it->second.routers_per_second,
                    rps / it->second.routers_per_second, max_regress,
                    rps_pass ? "ok" : "REGRESSION");
      }
      // Peak-RSS column (MB).  Both sides are process-monotone high-water
      // marks taken right after the fit at this scale, so like-for-like.
      if (it->second.peak_rss_mb > 0) {
        const double rss_mb =
            static_cast<double>(run.peak_rss_bytes) / (1024.0 * 1024.0);
        const bool rss_pass = rss_mb <= it->second.peak_rss_mb * max_regress;
        baseline_pass &= rss_pass;
        std::printf("baseline scale %.3f peak-rss: %.1fMB vs %.1fMB recorded "
                    "(%.2fx, limit %.2fx) %s\n",
                    run.scale, rss_mb, it->second.peak_rss_mb,
                    rss_mb / it->second.peak_rss_mb, max_regress,
                    rss_pass ? "ok" : "REGRESSION");
      }
    }
  }
  if (cli.has("write-baseline")) {
    std::ofstream out(cli.get_string("write-baseline", ""));
    for (const RunResult& run : runs) {
      if (run.threads == 1)
        out << run.scale << ' ' << run.refine.phase_seconds.total << ' '
            << run.route_space_seconds << ' ' << run.workset_seconds << ' '
            << routers_per_second(run) << ' '
            << static_cast<double>(run.peak_rss_bytes) / (1024.0 * 1024.0)
            << '\n';
    }
  }

  // Parallel-speedup gate: whenever a real multi-thread leg ran, fits at
  // scales above the timer-noise floor must not be slower than 1-thread.
  bool parallel_pass = true;
  for (const RunResult& run : runs) {
    if (run.threads == 1 || multi == 1 || run.scale < 0.15) continue;
    if (run.parallel_speedup > 0 && run.parallel_speedup < 1.0) {
      parallel_pass = false;
      std::fprintf(stderr,
                   "bench_refine: PARALLEL SWEEP SLOWER THAN SERIAL at scale "
                   "%.3f (%.3fx with %u threads)\n",
                   run.scale, run.parallel_speedup, run.threads_used);
    }
  }

  // Compacted-sweep gate: at scales large enough to rise above timer noise
  // the compacted sweep must actually be faster than the plain one.
  bool compact_pass = true;
  for (const RunResult& run : runs) {
    if (run.threads != 1 || run.scale < 0.15) continue;
    if (run.compact_speedup > 0 && run.compact_speedup <= 1.0) {
      compact_pass = false;
      std::fprintf(stderr,
                   "bench_refine: COMPACTED SWEEP NOT FASTER at scale %.3f "
                   "(speedup %.3fx)\n",
                   run.scale, run.compact_speedup);
    }
  }

  // Cost-model validation: predicted per-prefix cost vs measured sweep
  // seconds, pooled across every 1-thread run.  Within one scale the
  // fitted models' workloads are near-uniform (constant message counts),
  // so the gate needs at least two scales' worth of variance to mean
  // anything -- with one scale the correlation is reported but not gated.
  std::vector<double> pooled_costs, pooled_times;
  std::size_t scales_pooled = 0;
  for (const RunResult& run : runs) {
    if (run.threads != 1 || run.prefix_costs.empty()) continue;
    ++scales_pooled;
    pooled_costs.insert(pooled_costs.end(), run.prefix_costs.begin(),
                        run.prefix_costs.end());
    pooled_times.insert(pooled_times.end(), run.prefix_times.begin(),
                        run.prefix_times.end());
  }
  const double cost_correlation = pearson(pooled_costs, pooled_times);
  if (!pooled_costs.empty())
    std::printf("cost model: r=%.3f over %zu per-prefix samples (%zu "
                "scales)\n",
                cost_correlation, pooled_costs.size(), scales_pooled);
  if (scales_pooled >= 2 && cost_correlation <= 0) {
    compact_pass = false;
    std::fprintf(stderr,
                 "bench_refine: COST MODEL UNCORRELATED with measured "
                 "sweep time (r=%.3f over %zu samples)\n",
                 cost_correlation, pooled_costs.size());
  }

  // Observer-overhead leg: bare vs fully profiled fit at the largest
  // requested scale, best-of-3 each (the minimum is the right statistic
  // for a ratio gate -- it strips scheduler noise, which only ever adds
  // time).  Byte-identity between the two fitted models re-proves the
  // zero-observer guarantee from the other side: attaching the full
  // profiler stack must not perturb the fit.
  bool overhead_pass = true;
  double overhead_ratio = 0;
  double shard_rank = std::numeric_limits<double>::quiet_NaN();
  std::size_t shard_sample_count = 0;
  const double overhead_max = cli.get_double("observer-overhead-max", 1.05);
  if (!cli.has("skip-overhead") && !scales.empty()) {
    const double gate_scale = *std::max_element(scales.begin(), scales.end());
    double best_bare = std::numeric_limits<double>::infinity();
    double best_profiled = std::numeric_limits<double>::infinity();
    std::string bare_model, profiled_model;
    std::vector<obs::SweepShardSample> samples;
    for (int rep = 0; rep < 3; ++rep) {
      OverheadRun bare =
          run_overhead_leg(gate_scale, seed, multi, false, nullptr);
      std::vector<obs::SweepShardSample> rep_samples;
      OverheadRun profiled =
          run_overhead_leg(gate_scale, seed, multi, true, &rep_samples);
      if (bare.seconds < best_bare) best_bare = bare.seconds;
      if (profiled.seconds < best_profiled) best_profiled = profiled.seconds;
      bare_model = std::move(bare.model_text);
      profiled_model = std::move(profiled.model_text);
      if (rep_samples.size() > samples.size()) samples = std::move(rep_samples);
    }
    if (bare_model != profiled_model) {
      identical = false;
      std::fprintf(stderr,
                   "bench_refine: FITTED MODEL DIFFERS with profiler "
                   "attached at scale %.3f\n",
                   gate_scale);
    }
    if (best_bare > 0) overhead_ratio = best_profiled / best_bare;
    std::printf("observer overhead: %.3fx at scale %.3f (bare %.3fs, "
                "profiled %.3fs, limit %.2fx)\n",
                overhead_ratio, gate_scale, best_bare, best_profiled,
                overhead_max);
    // Gate only above the timer-noise floor, like the other perf gates.
    if (gate_scale >= 0.15 && overhead_ratio > overhead_max) {
      overhead_pass = false;
      std::fprintf(stderr,
                   "bench_refine: OBSERVER OVERHEAD %.3fx EXCEEDS %.2fx at "
                   "scale %.3f\n",
                   overhead_ratio, overhead_max, gate_scale);
    }
    // Cost-model score over the profiled fit's shard samples.  NaN (too
    // few samples, or a single-shard plan making one side constant) is
    // reported but not gated -- there is nothing to rank.
    shard_sample_count = samples.size();
    std::vector<double> predicted, measured;
    predicted.reserve(samples.size());
    measured.reserve(samples.size());
    for (const obs::SweepShardSample& sample : samples) {
      predicted.push_back(static_cast<double>(sample.predicted_cost));
      measured.push_back(static_cast<double>(sample.dur_us));
    }
    shard_rank = obs::rank_correlation(predicted, measured);
    if (!std::isnan(shard_rank)) {
      std::printf("shard cost model: rank r=%.3f over %zu shard samples\n",
                  shard_rank, samples.size());
      if (gate_scale >= 0.15 && shard_rank <= 0) {
        overhead_pass = false;
        std::fprintf(stderr,
                     "bench_refine: SHARD COST MODEL UNCORRELATED with "
                     "measured shard time (rank r=%.3f over %zu samples)\n",
                     shard_rank, samples.size());
      }
    } else {
      std::printf("shard cost model: not scored (%zu shard samples)\n",
                  samples.size());
    }
  }

  nb::JsonWriter json(2);
  json.begin_object();
  json.key("bench").value("refine");
  json.key("seed").value(seed);
  json.key("hardware_threads").value(bgp::ThreadPool::resolve(0));
  json.key("identical_across_threads").value(identical);
  json.key("observer_overhead_ratio").value_fixed(overhead_ratio, 3);
  json.key("observer_overhead_max").value_fixed(overhead_max, 3);
  json.key("shard_rank_correlation");
  if (std::isnan(shard_rank)) {
    json.raw("null");
  } else {
    json.value_fixed(shard_rank, 3);
  }
  json.key("shard_samples")
      .value(static_cast<std::uint64_t>(shard_sample_count));
  json.key("cost_correlation").value_fixed(cost_correlation, 3);
  json.key("cost_samples")
      .value(static_cast<std::uint64_t>(pooled_costs.size()));
  json.key("runs").begin_array();
  for (const RunResult& run : runs) append_json(json, run);
  json.end_array();
  json.end_object();
  std::ofstream out(out_path);
  out << json.str() << '\n';
  std::printf("wrote %s\n", out_path.c_str());

  if (!ok) std::fprintf(stderr, "bench_refine: a fit failed to converge\n");
  if (!baseline_pass)
    std::fprintf(stderr, "bench_refine: 1-thread wall-clock regression\n");
  if (baseline_checked && baseline_pass)
    std::printf("baseline check passed\n");
  return (ok && identical && baseline_pass && compact_pass && parallel_pass &&
          overhead_pass)
             ? 0
             : 1;
}
