// PERF -- refinement fit benchmark (the perf counterpart of bench_scale).
//
// Times core::refine_model end to end at several topology scales, for one
// thread and for the hardware thread count, reporting wall-clock, the
// simulate/heuristic/validate phase split and engine message throughput.
// Also asserts the parallel sweep's core guarantee: the fitted model is
// byte-identical for every thread count (exit 1 if not).
//
// Output: a human-readable table on stdout plus a JSON report (default
// BENCH_refine.json) for CI artifacts.  With baseline=FILE the 1-thread
// total at each scale is gated against the recorded baseline:
// exit 1 if current > max-regress x baseline (CI perf smoke).
//
// Also times the static route-space analyzer (a 1-thread self-diff of the
// fitted model -- two MAY-set enumerations per prefix plus the comparison,
// the same path CI's diff gate exercises) and gates it against the
// baseline alongside the fit, re-proving self-diff emptiness on the way.
//
//   bench_refine [--scales=0.05,0.1,0.2] [--seed=1] [--threads=0]
//                [--out=BENCH_refine.json] [--baseline=FILE]
//                [--max-regress=2.0] [--write-baseline=FILE]
//
// The baseline file is plain text, one `scale <fit-seconds>
// [<route-space-seconds>]` line per scale, written by --write-baseline on
// a reference machine and parsed here without any JSON dependency (the
// third column is optional for pre-analyzer baselines).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/model_diff.hpp"
#include "bgp/threadpool.hpp"
#include "core/pipeline.hpp"
#include "netbase/cli.hpp"
#include "netbase/json.hpp"
#include "obs/observer.hpp"
#include "topology/model_io.hpp"

namespace {

struct RunResult {
  double scale = 0;
  unsigned threads = 0;       // requested (resolved, see threads_used)
  unsigned threads_used = 0;
  core::RefineResult refine;
  std::size_t routers = 0;
  std::string model_text;     // serialized fit, for cross-thread identity
  /// Phase timings as recorded by the obs registry (refine.phase.*_ns):
  /// every run attaches a metric registry -- never a trace sink, so the
  /// timed sweep stays on the cheap counters-only path -- and the JSON
  /// report carries both the wall-clock and the registry view.
  std::uint64_t simulate_ns = 0;
  std::uint64_t heuristic_ns = 0;
  std::uint64_t validate_ns = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t engine_messages = 0;
  /// Route-space analyzer wall-clock: 1-thread self-diff of the fitted
  /// model (0 on multi-thread runs, which skip it).
  double route_space_seconds = 0;
  bool self_diff_identical = true;
};

std::vector<double> parse_scales(const std::string& text) {
  std::vector<double> scales;
  std::stringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (!item.empty()) scales.push_back(std::stod(item));
  }
  return scales;
}

RunResult run_once(double scale, std::uint64_t seed, unsigned threads) {
  core::PipelineConfig config = core::PipelineConfig::with(scale, seed);
  config.threads = threads;
  config.refine.threads = threads;
  core::Pipeline pipeline = core::make_pipeline(config);
  core::run_data_stages(pipeline);

  topo::Model model = topo::Model::one_router_per_as(pipeline.graph);
  RunResult run;
  run.scale = scale;
  run.threads = threads;
  obs::Registry registry;
  obs::Observer observer;
  observer.registry = &registry;
  config.refine.observer = &observer;
  run.refine =
      core::refine_model(model, pipeline.split.training, config.refine);
  run.simulate_ns = registry.counter_value("refine.phase.simulate_ns");
  run.heuristic_ns = registry.counter_value("refine.phase.heuristic_ns");
  run.validate_ns = registry.counter_value("refine.phase.validate_ns");
  run.total_ns = registry.counter_value("refine.phase.total_ns");
  run.engine_messages = registry.counter_value("engine.messages");
  run.threads_used = run.refine.threads_used;
  run.routers = model.num_routers();
  run.model_text = topo::model_to_string(model);
  if (threads == 1) {
    // Static route-space analyzer leg: a 1-thread self-diff of the fitted
    // model enumerates every prefix's MAY sets twice and compares them --
    // the hot path behind `rdtool diff`/`impact` -- and must come back
    // empty (the analyzer's own CI invariant).
    analysis::DiffOptions diff_options;
    diff_options.threads = 1;
    const auto start = std::chrono::steady_clock::now();
    const analysis::DiffResult self =
        analysis::diff_models(model, model, diff_options);
    run.route_space_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    run.self_diff_identical = self.identical();
  }
  return run;
}

double messages_per_second(const RunResult& run) {
  const double sim = run.refine.phase_seconds.simulate;
  if (sim <= 0) return 0;
  return static_cast<double>(run.refine.messages_simulated) / sim;
}

void append_json(nb::JsonWriter& w, const RunResult& run) {
  w.begin_object();
  w.key("scale").value_fixed(run.scale, 3);
  w.key("threads").value(run.threads);
  w.key("threads_used").value(run.threads_used);
  w.key("success").value(run.refine.success);
  w.key("iterations").value(static_cast<std::uint64_t>(run.refine.iterations));
  w.key("routers").value(static_cast<std::uint64_t>(run.routers));
  w.key("messages").value(run.refine.messages_simulated);
  w.key("messages_per_second").value_fixed(messages_per_second(run), 0);
  w.key("phase_seconds").begin_object();
  w.key("simulate").value_fixed(run.refine.phase_seconds.simulate, 6);
  w.key("heuristic").value_fixed(run.refine.phase_seconds.heuristic, 6);
  w.key("validate").value_fixed(run.refine.phase_seconds.validate, 6);
  w.key("total").value_fixed(run.refine.phase_seconds.total, 6);
  w.end_object();
  // The same phases as recorded by the metric registry the run attaches
  // (see bench/README.md for the full schema).
  w.key("registry").begin_object();
  w.key("simulate_ns").value(run.simulate_ns);
  w.key("heuristic_ns").value(run.heuristic_ns);
  w.key("validate_ns").value(run.validate_ns);
  w.key("total_ns").value(run.total_ns);
  w.key("engine_messages").value(run.engine_messages);
  w.end_object();
  // Route-space analyzer leg (1-thread runs only; 0 elsewhere).
  w.key("route_space_seconds").value_fixed(run.route_space_seconds, 6);
  w.key("self_diff_identical").value(run.self_diff_identical);
  w.end_object();
}

struct BaselineEntry {
  double refine_seconds = 0;
  double route_space_seconds = 0;  // 0: pre-analyzer baseline, not gated
};

std::map<double, BaselineEntry> read_baseline(const std::string& path) {
  std::map<double, BaselineEntry> baseline;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    std::stringstream fields(line);
    double scale = 0;
    BaselineEntry entry;
    if (fields >> scale >> entry.refine_seconds) {
      fields >> entry.route_space_seconds;  // optional third column
      baseline[scale] = entry;
    }
  }
  return baseline;
}

}  // namespace

int main(int argc, char** argv) {
  nb::Cli cli(argc, argv);
  const std::vector<double> scales =
      parse_scales(cli.get_string("scales", "0.05,0.1,0.2"));
  const std::uint64_t seed = cli.get_u64("seed", 1);
  const unsigned multi = bgp::ThreadPool::resolve(
      static_cast<unsigned>(cli.get_u64("threads", 0)));
  const std::string out_path = cli.get_string("out", "BENCH_refine.json");

  std::printf("bench_refine: refinement fit wall-clock and throughput\n");
  std::printf("hardware threads: %u, multi-thread runs use %u\n\n",
              bgp::ThreadPool::resolve(0), multi);
  std::printf("%-7s %-8s %-6s %-9s %-10s %-10s %-10s %-12s %-10s\n", "scale",
              "threads", "iters", "routers", "simulate", "heuristic", "total",
              "msgs/sec", "rspace");

  bool ok = true;
  bool identical = true;
  std::vector<RunResult> runs;
  for (const double scale : scales) {
    const std::string* one_thread_model = nullptr;
    std::vector<unsigned> thread_counts{1};
    if (multi != 1) thread_counts.push_back(multi);
    for (const unsigned threads : thread_counts) {
      RunResult run = run_once(scale, seed, threads);
      ok &= run.refine.success;
      if (!run.self_diff_identical) {
        ok = false;
        std::fprintf(stderr,
                     "bench_refine: SELF-DIFF NOT EMPTY at scale %.3f\n",
                     scale);
      }
      std::printf(
          "%-7.3f %-8u %-6zu %-9zu %-10.3f %-10.3f %-10.3f %-12.0f %-10.3f\n",
          scale, run.threads_used, run.refine.iterations, run.routers,
          run.refine.phase_seconds.simulate, run.refine.phase_seconds.heuristic,
          run.refine.phase_seconds.total, messages_per_second(run),
          run.route_space_seconds);
      runs.push_back(std::move(run));
      if (one_thread_model == nullptr) {
        one_thread_model = &runs.back().model_text;
      } else if (*one_thread_model != runs.back().model_text) {
        identical = false;
        std::fprintf(stderr,
                     "bench_refine: FITTED MODEL DIFFERS between 1 and %u "
                     "threads at scale %.3f\n",
                     threads, scale);
      }
    }
  }
  if (identical)
    std::printf("\nfitted models byte-identical across thread counts\n");

  // Perf gate against a recorded 1-thread baseline (CI smoke).
  bool baseline_checked = false;
  bool baseline_pass = true;
  if (cli.has("baseline")) {
    const double max_regress = cli.get_double("max-regress", 2.0);
    const std::map<double, BaselineEntry> baseline =
        read_baseline(cli.get_string("baseline", ""));
    for (const RunResult& run : runs) {
      if (run.threads != 1) continue;
      const auto it = baseline.find(run.scale);
      if (it == baseline.end()) continue;
      baseline_checked = true;
      const double total = run.refine.phase_seconds.total;
      const bool pass = total <= it->second.refine_seconds * max_regress;
      baseline_pass &= pass;
      std::printf("baseline scale %.3f: %.3fs vs %.3fs recorded (%.2fx, "
                  "limit %.2fx) %s\n",
                  run.scale, total, it->second.refine_seconds,
                  total / it->second.refine_seconds, max_regress,
                  pass ? "ok" : "REGRESSION");
      // Route-space leg, gated the same way when the baseline records it.
      if (it->second.route_space_seconds > 0) {
        const double rs = run.route_space_seconds;
        const bool rs_pass = rs <= it->second.route_space_seconds * max_regress;
        baseline_pass &= rs_pass;
        std::printf("baseline scale %.3f route-space: %.3fs vs %.3fs recorded "
                    "(%.2fx, limit %.2fx) %s\n",
                    run.scale, rs, it->second.route_space_seconds,
                    rs / it->second.route_space_seconds, max_regress,
                    rs_pass ? "ok" : "REGRESSION");
      }
    }
  }
  if (cli.has("write-baseline")) {
    std::ofstream out(cli.get_string("write-baseline", ""));
    for (const RunResult& run : runs) {
      if (run.threads == 1)
        out << run.scale << ' ' << run.refine.phase_seconds.total << ' '
            << run.route_space_seconds << '\n';
    }
  }

  nb::JsonWriter json(2);
  json.begin_object();
  json.key("bench").value("refine");
  json.key("seed").value(seed);
  json.key("hardware_threads").value(bgp::ThreadPool::resolve(0));
  json.key("identical_across_threads").value(identical);
  json.key("runs").begin_array();
  for (const RunResult& run : runs) append_json(json, run);
  json.end_array();
  json.end_object();
  std::ofstream out(out_path);
  out << json.str() << '\n';
  std::printf("wrote %s\n", out_path.c_str());

  if (!ok) std::fprintf(stderr, "bench_refine: a fit failed to converge\n");
  if (!baseline_pass)
    std::fprintf(stderr, "bench_refine: 1-thread wall-clock regression\n");
  if (baseline_checked && baseline_pass)
    std::printf("baseline check passed\n");
  return (ok && identical && baseline_pass) ? 0 : 1;
}
