// PERF -- serve-daemon benchmark (the latency counterpart of bench_refine).
//
// Fits one pipeline model (default scale 0.05, the CI smoke scale), then
// exercises serve::Server through three legs:
//
//  * Latency: N predict requests through Server::answer() -- the exact
//    worker code path (parse -> validate -> execute -> render) without
//    socket noise -- reporting p50/p99 microseconds and QPS, plus a
//    smaller what-if sample for the fork-cache path.
//  * Overload: a real socket server with one worker and a one-slot
//    admission queue, flooded by concurrent client connections.  Every
//    request must come back STRUCTURED (ok or R711-rejected, never a
//    dropped connection) and the shed rate is recorded.
//  * Malformed: a client sends garbage frames and the bench asserts the
//    quarantine ladder (R715 answers, then R713 + close at the streak
//    threshold).  Robustness regressions here are exit 1, not a metric.
//
// Output: a human-readable summary on stdout plus a JSON report (default
// BENCH_serve.json) for CI artifacts.  With --baseline=FILE the latency
// leg is gated against the recorded baseline: exit 1 when p50 or p99
// exceeds max-regress x baseline or QPS falls below baseline / max-regress
// (CI perf smoke).
//
//   bench_serve [--scale=0.05] [--seed=3] [--requests=400] [--warmup=25]
//               [--whatif-requests=24] [--clients=6] [--per-client=40]
//               [--out=BENCH_serve.json] [--baseline=FILE]
//               [--max-regress=3.0] [--write-baseline=FILE]
//               [--connect=HOST:PORT --origin=A --vantage=B]
//
// With --connect the bench skips the model fit and the in-process server
// and instead drives an already-running `rdtool serve` over TCP (the CI
// smoke job): the latency leg round-trips frames through the socket and
// the malformed leg checks the quarantine ladder remotely.  The baseline
// gate is in-process-only (socket latency is not comparable).
//
// The baseline file is plain text, one
// `scale <p50-us> <p99-us> <qps> <shed-rate>` line per scale, written by
// --write-baseline on a reference machine.  The column count is STRICT:
// each metric column mirrors a gated BENCH_serve.json key, and a file
// whose lines disagree with the expected count is a named
// baseline-column-mismatch error, not a silent skip -- stale baselines
// previously disabled gates like this without a trace.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "core/pipeline.hpp"
#include "netbase/cli.hpp"
#include "netbase/json.hpp"
#include "netbase/socket.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double micros_since(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

std::string predict_request(nb::Asn origin, nb::Asn vantage) {
  return "{\"op\": \"predict\", \"origin\": " + std::to_string(origin) +
         ", \"vantage\": " + std::to_string(vantage) + "}";
}

std::string whatif_request(nb::Asn origin, nb::Asn from, nb::Asn to) {
  return "{\"op\": \"whatif\", \"edit\": \"policy-edit\", \"origin\": " +
         std::to_string(origin) + ", \"from\": " + std::to_string(from) +
         ", \"to\": " + std::to_string(to) + "}";
}

std::string status_of(const std::string& response) {
  const auto doc = nb::json_parse(response, nullptr);
  if (!doc) return "";
  return std::string(doc->string_or("status"));
}

std::string code_of(const std::string& response) {
  const auto doc = nb::json_parse(response, nullptr);
  if (!doc) return "";
  return std::string(doc->string_or("code"));
}

struct Percentiles {
  double p50_us = 0;
  double p99_us = 0;
  double mean_us = 0;
};

Percentiles percentiles(std::vector<double> samples) {
  Percentiles result;
  if (samples.empty()) return result;
  std::sort(samples.begin(), samples.end());
  result.p50_us = samples[samples.size() / 2];
  result.p99_us = samples[(samples.size() * 99) / 100];
  double sum = 0;
  for (const double sample : samples) sum += sample;
  result.mean_us = sum / static_cast<double>(samples.size());
  return result;
}

/// One socket round trip: frame out, frame back.  Empty on any transport
/// failure (closed, timeout, write error).
bool roundtrip(nb::TcpStream& stream, const std::string& request,
               std::string* response) {
  std::string error;
  if (!nb::write_frame(stream, request, &error)) return false;
  const nb::FrameStatus status =
      nb::read_frame(stream, response, /*timeout_ms=*/15000,
                     /*stop=*/nullptr, nb::kMaxFrameBytes, &error);
  return status == nb::FrameStatus::kOk;
}

struct OverloadResult {
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t other = 0;     // degraded / draining -- still structured
  std::uint64_t dropped = 0;   // transport failures: the robustness bug
  double shed_rate = 0;
};

/// Floods the server with `clients` concurrent connections, `per_client`
/// predicts each.  Every request must come back structured; R711 is the
/// expected shed signal, a dropped connection is a failure.
OverloadResult run_overload(std::uint16_t port, nb::Asn origin,
                            nb::Asn vantage, unsigned clients,
                            unsigned per_client) {
  std::vector<OverloadResult> partials(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (unsigned c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      OverloadResult& mine = partials[c];
      std::string error;
      auto stream = nb::TcpStream::connect("127.0.0.1", port, &error);
      if (!stream) {
        mine.dropped += per_client;
        mine.sent += per_client;
        return;
      }
      const std::string request = predict_request(origin, vantage);
      for (unsigned i = 0; i < per_client; ++i) {
        ++mine.sent;
        std::string response;
        if (!roundtrip(*stream, request, &response)) {
          ++mine.dropped;
          continue;
        }
        const std::string status = status_of(response);
        if (status == "ok") {
          ++mine.ok;
        } else if (status == "rejected" &&
                   code_of(response) == analysis::codes::kServeOverload) {
          ++mine.shed;
        } else {
          ++mine.other;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  OverloadResult total;
  for (const OverloadResult& partial : partials) {
    total.sent += partial.sent;
    total.ok += partial.ok;
    total.shed += partial.shed;
    total.other += partial.other;
    total.dropped += partial.dropped;
  }
  if (total.sent > 0)
    total.shed_rate =
        static_cast<double>(total.shed) / static_cast<double>(total.sent);
  return total;
}

/// Drives the quarantine ladder over one connection: `threshold` garbage
/// frames must earn R715 answers then an R713 + close, and a fresh
/// connection must serve health again.  Returns false (with stderr
/// detail) on any deviation.
bool run_malformed(std::uint16_t port, int threshold) {
  std::string error;
  auto stream = nb::TcpStream::connect("127.0.0.1", port, &error);
  if (!stream) {
    std::fprintf(stderr, "bench_serve: malformed leg connect failed: %s\n",
                 error.c_str());
    return false;
  }
  for (int i = 0; i < threshold; ++i) {
    std::string response;
    if (!roundtrip(*stream, "definitely not json", &response)) {
      std::fprintf(stderr,
                   "bench_serve: malformed frame %d dropped instead of "
                   "answered\n",
                   i + 1);
      return false;
    }
    const std::string expected = (i + 1 < threshold)
                                     ? analysis::codes::kServeBadRequest
                                     : analysis::codes::kServeQuarantine;
    if (code_of(response) != expected) {
      std::fprintf(stderr,
                   "bench_serve: malformed frame %d answered %s, expected "
                   "%s\n",
                   i + 1, code_of(response).c_str(), expected.c_str());
      return false;
    }
  }
  // The quarantined connection must now be closed by the server.
  std::string leftover;
  const nb::FrameStatus after =
      nb::read_frame(*stream, &leftover, /*timeout_ms=*/5000, nullptr,
                     nb::kMaxFrameBytes, &error);
  if (after != nb::FrameStatus::kClosed) {
    std::fprintf(stderr,
                 "bench_serve: quarantined connection not closed (status "
                 "%d)\n",
                 static_cast<int>(after));
    return false;
  }
  // Quarantine is per-connection: a fresh one serves immediately.
  auto fresh = nb::TcpStream::connect("127.0.0.1", port, &error);
  std::string health;
  if (!fresh || !roundtrip(*fresh, "{\"op\": \"health\"}", &health) ||
      status_of(health) != "ok") {
    std::fprintf(stderr,
                 "bench_serve: fresh connection after quarantine failed\n");
    return false;
  }
  return true;
}

struct BaselineEntry {
  double p50_us = 0;
  double p99_us = 0;
  double qps = 0;
  double shed_rate = 0;
};

/// One column per gated BENCH_serve.json key, plus the scale.  Bump in
/// lockstep with the keys listed in the mismatch message below, and
/// regenerate bench/serve_baseline.txt with --write-baseline.
constexpr std::size_t kBaselineColumns = 5;

/// Strict parse, mirroring bench_refine: every non-empty line must carry
/// exactly kBaselineColumns whitespace-separated numbers, or the gate
/// fails with a named baseline-column-mismatch error instead of silently
/// skipping.
std::map<double, BaselineEntry> read_baseline(const std::string& path,
                                              std::string* error) {
  std::map<double, BaselineEntry> baseline;
  std::ifstream in(path);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::stringstream fields(line);
    std::vector<double> columns;
    double value = 0;
    while (fields >> value) columns.push_back(value);
    if (columns.empty()) continue;  // blank line
    if (columns.size() != kBaselineColumns) {
      *error = "baseline-column-mismatch: " + path + " line " +
               std::to_string(line_no) + " has " +
               std::to_string(columns.size()) + " columns, expected " +
               std::to_string(kBaselineColumns) +
               " (scale p50-us p99-us qps shed-rate, mirroring the gated "
               "BENCH_serve.json keys predict_p50_us/predict_p99_us/"
               "predict_qps/overload.shed_rate); regenerate with "
               "--write-baseline";
      return {};
    }
    BaselineEntry entry;
    entry.p50_us = columns[1];
    entry.p99_us = columns[2];
    entry.qps = columns[3];
    entry.shed_rate = columns[4];
    baseline[columns[0]] = entry;
  }
  return baseline;
}

}  // namespace

int main(int argc, char** argv) {
  nb::Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 0.05);
  const std::uint64_t seed = cli.get_u64("seed", 3);
  const std::size_t requests = cli.get_u64("requests", 400);
  const std::size_t warmup = cli.get_u64("warmup", 25);
  const std::size_t whatif_requests = cli.get_u64("whatif-requests", 24);
  const unsigned clients =
      static_cast<unsigned>(cli.get_u64("clients", 6));
  const unsigned per_client =
      static_cast<unsigned>(cli.get_u64("per-client", 40));
  const std::string out_path = cli.get_string("out", "BENCH_serve.json");
  const std::string connect = cli.get_string("connect", "");

  // --connect mode drives a remote daemon; everything else is in-process.
  std::unique_ptr<core::Pipeline> pipeline;
  std::unique_ptr<serve::Server> answer_server;
  std::optional<nb::TcpStream> remote;
  nb::Asn origin = static_cast<nb::Asn>(cli.get_u64("origin", 0));
  nb::Asn vantage = static_cast<nb::Asn>(cli.get_u64("vantage", 0));
  if (connect.empty()) {
    std::printf("bench_serve: fitting scale %.3f seed %llu model...\n", scale,
                static_cast<unsigned long long>(seed));
    pipeline = std::make_unique<core::Pipeline>(
        core::run_full_pipeline(core::PipelineConfig::with(scale, seed)));
    const std::vector<nb::Asn> asns = pipeline->model.asns();
    if (asns.size() < 3) {
      std::fprintf(stderr, "bench_serve: model too small (%zu ASes)\n",
                   asns.size());
      return 1;
    }
    if (origin == 0) origin = asns[0];
    if (vantage == 0) vantage = asns[1];
    serve::ServeConfig config;
    config.threads = 1;  // answer() path: latency, not parallel throughput
    answer_server =
        std::make_unique<serve::Server>(pipeline->model, config);
  } else {
    const std::size_t colon = connect.rfind(':');
    if (colon == std::string::npos || origin == 0 || vantage == 0) {
      std::fprintf(stderr,
                   "bench_serve: --connect needs HOST:PORT plus --origin and "
                   "--vantage naming ASes the served model contains\n");
      return 2;
    }
    std::string error;
    remote = nb::TcpStream::connect(
        connect.substr(0, colon),
        static_cast<std::uint16_t>(
            std::stoul(connect.substr(colon + 1))),
        &error);
    if (!remote) {
      std::fprintf(stderr, "bench_serve: connect %s failed: %s\n",
                   connect.c_str(), error.c_str());
      return 1;
    }
  }

  const std::string predict = predict_request(origin, vantage);
  auto answer_once = [&](const std::string& request,
                         std::string* response) -> bool {
    if (answer_server) {
      *response = answer_server->answer(request);
      return true;
    }
    return roundtrip(*remote, request, response);
  };

  // Latency leg.  Warmup primes the epoch-cached SimContext (first run
  // pays the snapshot build); measured runs are the steady state.
  bool ok = true;
  for (std::size_t i = 0; i < warmup; ++i) {
    std::string response;
    ok &= answer_once(predict, &response) && status_of(response) == "ok";
  }
  if (!ok) {
    std::fprintf(stderr,
                 "bench_serve: warmup predict origin %llu vantage %llu did "
                 "not answer ok\n",
                 static_cast<unsigned long long>(origin),
                 static_cast<unsigned long long>(vantage));
    return 1;
  }
  std::vector<double> predict_us;
  predict_us.reserve(requests);
  const Clock::time_point leg_start = Clock::now();
  for (std::size_t i = 0; i < requests; ++i) {
    const Clock::time_point start = Clock::now();
    std::string response;
    ok &= answer_once(predict, &response) && status_of(response) == "ok";
    predict_us.push_back(micros_since(start));
  }
  const double leg_seconds = micros_since(leg_start) / 1e6;
  const Percentiles latency = percentiles(predict_us);
  const double qps =
      leg_seconds > 0 ? static_cast<double>(requests) / leg_seconds : 0;
  if (!ok) {
    std::fprintf(stderr, "bench_serve: latency leg saw non-ok responses\n");
    return 1;
  }

  // What-if sample: repeated identical edits, so past the first miss this
  // times the fork-cache hit path (the steady state of an operator
  // iterating on one scenario).
  std::vector<double> whatif_us;
  whatif_us.reserve(whatif_requests);
  const std::string whatif = whatif_request(origin, origin, vantage);
  for (std::size_t i = 0; i < whatif_requests; ++i) {
    const Clock::time_point start = Clock::now();
    std::string response;
    const bool answered = answer_once(whatif, &response);
    const std::string status = status_of(response);
    ok &= answered && (status == "ok" || status == "degraded");
    whatif_us.push_back(micros_since(start));
  }
  const Percentiles whatif_latency = percentiles(whatif_us);
  if (!ok) {
    std::fprintf(stderr, "bench_serve: what-if leg saw unstructured "
                         "responses\n");
    return 1;
  }

  // Overload + malformed legs need real sockets.  In-process runs spin up
  // a deliberately tiny server (one worker, one queue slot) so shedding is
  // structural, not a race; --connect runs only the malformed leg (the
  // remote daemon's queue is sized for service, not for this test).
  OverloadResult overload;
  bool malformed_ok = true;
  if (connect.empty()) {
    serve::ServeConfig tiny;
    tiny.threads = 1;
    tiny.queue_capacity = 1;
    serve::Server socket_server(pipeline->model, tiny);
    std::string error;
    if (!socket_server.listen(0, &error)) {
      std::fprintf(stderr, "bench_serve: listen failed: %s\n", error.c_str());
      return 1;
    }
    overload = run_overload(socket_server.port(), origin, vantage, clients,
                            per_client);
    malformed_ok =
        run_malformed(socket_server.port(), tiny.quarantine_threshold);
    socket_server.request_stop();
    socket_server.shutdown();
    if (overload.dropped > 0) {
      std::fprintf(stderr,
                   "bench_serve: overload leg dropped %llu requests on the "
                   "floor (expected structured R711 sheds)\n",
                   static_cast<unsigned long long>(overload.dropped));
      return 1;
    }
  } else {
    const std::size_t colon = connect.rfind(':');
    malformed_ok = run_malformed(
        static_cast<std::uint16_t>(std::stoul(connect.substr(colon + 1))),
        3);
  }
  if (!malformed_ok) return 1;

  std::printf("bench_serve: predict p50 %.1fus p99 %.1fus mean %.1fus "
              "(%.0f qps, %zu requests)\n",
              latency.p50_us, latency.p99_us, latency.mean_us, qps, requests);
  std::printf("bench_serve: what-if p50 %.1fus p99 %.1fus (%zu requests, "
              "fork-cache steady state)\n",
              whatif_latency.p50_us, whatif_latency.p99_us, whatif_requests);
  if (connect.empty()) {
    std::printf("bench_serve: overload %llu sent / %llu ok / %llu shed / "
                "%llu other (shed rate %.3f, 0 dropped)\n",
                static_cast<unsigned long long>(overload.sent),
                static_cast<unsigned long long>(overload.ok),
                static_cast<unsigned long long>(overload.shed),
                static_cast<unsigned long long>(overload.other),
                overload.shed_rate);
  }
  std::printf("bench_serve: malformed-frame quarantine ladder ok\n");

  // JSON report for CI artifacts.
  nb::JsonWriter json(2);
  json.begin_object();
  json.key("tool").value("bench_serve");
  json.key("scale").value_fixed(scale, 3);
  json.key("seed").value(seed);
  json.key("mode").value(connect.empty() ? "in-process" : "connect");
  json.key("requests").value(static_cast<std::uint64_t>(requests));
  json.key("predict_p50_us").value_fixed(latency.p50_us, 1);
  json.key("predict_p99_us").value_fixed(latency.p99_us, 1);
  json.key("predict_mean_us").value_fixed(latency.mean_us, 1);
  json.key("predict_qps").value_fixed(qps, 1);
  json.key("whatif_requests").value(static_cast<std::uint64_t>(whatif_requests));
  json.key("whatif_p50_us").value_fixed(whatif_latency.p50_us, 1);
  json.key("whatif_p99_us").value_fixed(whatif_latency.p99_us, 1);
  json.key("overload").begin_object();
  json.key("sent").value(overload.sent);
  json.key("ok").value(overload.ok);
  json.key("shed").value(overload.shed);
  json.key("other").value(overload.other);
  json.key("dropped").value(overload.dropped);
  json.key("shed_rate").value_fixed(overload.shed_rate, 3);
  json.end_object();
  json.key("malformed_quarantine_ok").value(malformed_ok);
  json.end_object();
  {
    std::ofstream out(out_path);
    out << json.str() << "\n";
  }
  std::printf("wrote %s\n", out_path.c_str());

  if (cli.has("write-baseline")) {
    std::ofstream out(cli.get_string("write-baseline", ""));
    out << scale << " " << latency.p50_us << " " << latency.p99_us << " "
        << qps << " " << overload.shed_rate << "\n";
    std::printf("wrote baseline %s\n",
                cli.get_string("write-baseline", "").c_str());
  }

  // Perf gate against a recorded baseline (CI smoke, in-process only).
  if (cli.has("baseline") && connect.empty()) {
    const double max_regress = cli.get_double("max-regress", 3.0);
    std::string baseline_error;
    const std::map<double, BaselineEntry> baseline =
        read_baseline(cli.get_string("baseline", ""), &baseline_error);
    if (!baseline_error.empty()) {
      std::fprintf(stderr, "bench_serve: %s\n", baseline_error.c_str());
      return 1;
    }
    const auto it = baseline.find(scale);
    if (it != baseline.end()) {
      bool pass = true;
      const auto gate_high = [&](const char* name, double current,
                                 double recorded) {
        const bool leg_pass = current <= recorded * max_regress;
        pass &= leg_pass;
        std::printf("baseline %s: %.1f vs %.1f recorded (%.2fx, limit "
                    "%.2fx) %s\n",
                    name, current, recorded,
                    recorded > 0 ? current / recorded : 0, max_regress,
                    leg_pass ? "ok" : "REGRESSION");
      };
      gate_high("predict-p50-us", latency.p50_us, it->second.p50_us);
      gate_high("predict-p99-us", latency.p99_us, it->second.p99_us);
      // Throughput: a regression is QPS falling, so the gate inverts.
      if (it->second.qps > 0) {
        const bool qps_pass = qps >= it->second.qps / max_regress;
        pass &= qps_pass;
        std::printf("baseline predict-qps: %.0f vs %.0f recorded (%.2fx, "
                    "floor %.2fx) %s\n",
                    qps, it->second.qps, qps / it->second.qps,
                    1.0 / max_regress, qps_pass ? "ok" : "REGRESSION");
      }
      // Shed rate is recorded for trend-watching but not gated: it is a
      // race between client threads and one worker, noisy by design.
      if (!pass) {
        std::fprintf(stderr, "bench_serve: PERF REGRESSION vs baseline\n");
        return 1;
      }
    } else {
      std::printf("baseline: no entry for scale %.3f, gate skipped\n", scale);
    }
  }
  return 0;
}
