// T5 -- Section 4.2 / 4.7: the alternative slicing of the data.  Instead of
// splitting by observation point, split by ORIGINATING AS: fit the model to
// the paths of a subset of prefixes and predict the paths of the held-out
// prefixes.  Also the combined split (both held-out points and held-out
// prefixes).
#include "bench_common.hpp"
#include "core/report.hpp"
#include "netbase/strings.hpp"

int main(int argc, char** argv) {
  auto setup = benchtool::setup_from_cli(argc, argv);
  benchtool::banner("bench_table5_prefix_split",
                    "Section 4.7: predicting paths of unseen prefixes",
                    setup);

  core::Pipeline pipeline = core::make_pipeline(setup.config);
  core::run_data_stages(pipeline);
  benchtool::print_dataset_line(pipeline);

  // Split by originating AS.
  auto origin_split =
      data::split_by_origins(pipeline.dataset, setup.config.split);
  std::printf("origin split: %zu training records, %zu validation records\n",
              origin_split.training.records.size(),
              origin_split.validation.records.size());

  topo::Model model = topo::Model::one_router_per_as(pipeline.graph);
  auto refine_result =
      core::refine_model(model, origin_split.training, setup.config.refine);
  std::printf("refinement: %s in %zu iterations, %zu quasi-routers\n\n",
              refine_result.success ? "exact" : "INCOMPLETE",
              refine_result.iterations, model.num_routers());

  core::EvalOptions options;
  options.threads = setup.config.threads;
  auto train_eval =
      core::evaluate_predictions(model, origin_split.training, options);
  auto val_eval =
      core::evaluate_predictions(model, origin_split.validation, options);
  std::printf("%s\n", core::render_validation("training prefixes",
                                              train_eval.stats)
                          .c_str());
  std::printf("%s\n", core::render_validation("held-out prefixes",
                                              val_eval.stats)
                          .c_str());

  // Combined split: refine on training points AND training prefixes, test
  // on validation points AND held-out prefixes.
  auto point_split = pipeline.split;
  auto combined_training =
      data::split_by_origins(point_split.training, setup.config.split);
  auto combined_validation =
      data::split_by_origins(point_split.validation, setup.config.split);
  topo::Model combined_model = topo::Model::one_router_per_as(pipeline.graph);
  auto combined_refine = core::refine_model(
      combined_model, combined_training.training, setup.config.refine);
  auto combined_eval = core::evaluate_predictions(
      combined_model, combined_validation.validation, options);
  std::printf("combined split (unseen points AND unseen prefixes): "
              "refined=%s\n",
              combined_refine.success ? "exact" : "incomplete");
  std::printf("%s\n", core::render_validation("combined held-out",
                                              combined_eval.stats)
                          .c_str());

  std::printf("expectation: per-prefix policies cannot transfer to unseen\n"
              "prefixes, so accuracy drops toward the structural baseline --\n"
              "the quasi-router topology still helps availability (RIB-In).\n");
  return 0;
}
