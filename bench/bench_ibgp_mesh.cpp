// IBGP -- extension experiment: the modeling alternative the paper REJECTED
// (Section 4.6): "we do not establish ibgp sessions between the
// quasi-routers within an AS.  Experiments with such an approach have shown
// that it is extremely difficult to control route selection, in particular
// to install different routes at neighboring ibgp routers."
//
// We reproduce that experiment: fit the same training data once with the
// paper's isolated quasi-routers and once with a full iBGP mesh inside every
// AS (mates share their best external route; eBGP preferred over iBGP).
// Expected shape: the isolated model reaches the exact training fixpoint;
// the meshed model cannot -- a mate's shorter external route arrives over
// the mesh, wins the AS-path-length step, and no session-level filter can
// block it.
#include "bench_common.hpp"
#include "core/report.hpp"
#include "netbase/strings.hpp"

int main(int argc, char** argv) {
  auto setup = benchtool::setup_from_cli(argc, argv, 0.35);
  benchtool::banner("bench_ibgp_mesh",
                    "rejected alternative: iBGP mesh between quasi-routers "
                    "(Section 4.6)",
                    setup);

  core::Pipeline pipeline = core::make_pipeline(setup.config);
  core::run_data_stages(pipeline);
  benchtool::print_dataset_line(pipeline);

  struct Variant {
    const char* name;
    bool mesh;
  };
  nb::TextTable table({"variant", "training exact", "training RIB-Out",
                       "training down-to-tie-break", "val down-to-tie-break",
                       "routers", "iters"});
  for (const Variant& variant :
       {Variant{"isolated quasi-routers (paper)", false},
        Variant{"iBGP full mesh", true}}) {
    topo::Model model = topo::Model::one_router_per_as(pipeline.graph);
    core::RefineConfig config = setup.config.refine;
    config.engine.use_ibgp_mesh = variant.mesh;
    config.max_iterations = 48;
    auto refined = core::refine_model(model, pipeline.split.training, config);

    core::EvalOptions options;
    options.threads = setup.config.threads;
    options.engine.use_ibgp_mesh = variant.mesh;
    auto train = core::evaluate_predictions(model, pipeline.split.training,
                                            options);
    auto val = core::evaluate_predictions(model, pipeline.split.validation,
                                          options);
    table.add_row({variant.name, refined.success ? "yes" : "NO",
                   nb::fmt_percent(train.stats.rib_out_rate()),
                   nb::fmt_percent(train.stats.potential_or_better_rate()),
                   nb::fmt_percent(val.stats.potential_or_better_rate()),
                   nb::fmt_count(model.num_routers()),
                   std::to_string(refined.iterations)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("paper (Section 4.6): with ibgp sessions it is 'extremely "
              "difficult to control route selection'; hence quasi-routers\n"
              "are kept isolated.  Expected shape: the isolated variant is "
              "exact, the meshed variant is not.\n");
  return 0;
}
