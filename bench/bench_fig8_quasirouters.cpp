// F8 -- quasi-router census after refinement: how many quasi-routers does
// each AS need?  The paper motivates this with Table 1 (the number of unique
// received paths lower-bounds the routers needed) and the Fig. 3 example
// ("AS 3356 needs eight routers to propagate all paths further downstream").
// This bench compares the realized per-AS quasi-router counts against the
// observed-diversity lower bound, by hierarchy level.
#include <map>

#include "bench_common.hpp"
#include "netbase/stats.hpp"
#include "netbase/strings.hpp"

int main(int argc, char** argv) {
  auto setup = benchtool::setup_from_cli(argc, argv);
  benchtool::banner("bench_fig8_quasirouters",
                    "quasi-router distribution after refinement "
                    "(Sections 3.2/4.6)",
                    setup);

  core::Pipeline pipeline = core::make_pipeline(setup.config);
  core::run_data_stages(pipeline);
  core::run_model_stages(pipeline);

  // Lower bound from the training data: per AS, the max number of distinct
  // suffixes it must select simultaneously for one prefix.
  std::map<nb::Asn, std::size_t> need;
  for (auto& [origin, paths] : pipeline.split.training.paths_by_origin()) {
    std::map<nb::Asn, std::set<std::vector<nb::Asn>>> per_as;
    for (const auto& path : paths) {
      const auto& hops = path.hops();
      for (std::size_t i = 0; i + 1 < hops.size(); ++i)
        per_as[hops[i]].insert(std::vector<nb::Asn>(
            hops.begin() + static_cast<std::ptrdiff_t>(i), hops.end()));
    }
    for (auto& [asn, suffixes] : per_as)
      need[asn] = std::max(need[asn], suffixes.size());
  }

  nb::Histogram routers_hist, need_hist;
  std::size_t multi = 0, slack_total = 0;
  auto counts = pipeline.model.router_counts();
  for (auto& [asn, count] : counts) {
    routers_hist.add(count);
    const std::size_t lower = need.count(asn) ? need[asn] : 1;
    need_hist.add(lower);
    if (count > 1) ++multi;
    slack_total += count - std::min(count, lower);
  }

  std::printf("quasi-routers per AS (model):\n%s\n",
              routers_hist.render().c_str());
  std::printf("diversity lower bound per AS (training data):\n%s\n",
              need_hist.render().c_str());

  nb::TextTable table({"Statistic", "Value"});
  table.add_row({"ASes in model", nb::fmt_count(counts.size())});
  table.add_row({"ASes with >1 quasi-router", nb::fmt_count(multi)});
  table.add_row({"max quasi-routers in one AS",
                 nb::fmt_count(routers_hist.max())});
  table.add_row({"total quasi-routers",
                 nb::fmt_count(pipeline.model.num_routers())});
  table.add_row({"mean quasi-routers per AS",
                 nb::fmt_fixed(routers_hist.mean(), 2)});
  table.add_row({"slack above the lower bound (total routers)",
                 nb::fmt_count(slack_total)});
  std::printf("%s\n", table.render().c_str());

  // Per-level breakdown: the core needs more quasi-routers.
  nb::TextTable levels({"level", "ASes", "mean routers", "max routers"});
  auto level_row = [&](const char* name, topo::Level level) {
    nb::Histogram h;
    for (auto& [asn, count] : counts)
      if (pipeline.hierarchy.level_of(asn) == level) h.add(count);
    if (h.empty()) return;
    levels.add_row({name, nb::fmt_count(h.total()),
                    nb::fmt_fixed(h.mean(), 2), nb::fmt_count(h.max())});
  };
  level_row("level-1", topo::Level::kLevel1);
  level_row("level-2", topo::Level::kLevel2);
  level_row("other", topo::Level::kOther);
  std::printf("%s\n", levels.render().c_str());
  std::printf("expected shape: every AS meets its diversity lower bound;\n"
              "core (level-1) ASes carry the most quasi-routers, as in the\n"
              "paper's AS 3356 example.\n");
  return 0;
}
