// T1 -- Table 1: percentiles of the maximum number of unique AS-paths each
// AS receives toward any destination prefix.  This is the paper's lower
// bound on how many quasi-routers an AS needs to propagate all its routes
// downstream (Section 3.2).
//
// Paper findings to reproduce in shape: >50% of ASes receive two unique
// AS-paths for at least one prefix, 10% more than 5, 2% more than 10.
#include "bench_common.hpp"
#include "core/report.hpp"
#include "data/dataset_stats.hpp"
#include "netbase/strings.hpp"

int main(int argc, char** argv) {
  auto setup = benchtool::setup_from_cli(argc, argv);
  benchtool::banner("bench_table1_maxpaths",
                    "Table 1 (max # unique AS-paths received, percentiles)",
                    setup);

  core::Pipeline pipeline = core::make_pipeline(setup.config);
  core::run_data_stages(pipeline);
  benchtool::print_dataset_line(pipeline);

  auto stats = data::compute_diversity(pipeline.dataset,
                                       &pipeline.internet.prefix_counts);
  std::printf("%s\n", core::render_table1(stats).c_str());

  std::printf("ASes receiving >=2 unique paths for some prefix: %s  "
              "(paper: >50%%)\n",
              nb::fmt_percent(stats.max_unique_received.fraction_at_least(2))
                  .c_str());
  std::printf("ASes receiving >5:  %s  (paper: ~10%%)\n",
              nb::fmt_percent(stats.max_unique_received.fraction_at_least(6))
                  .c_str());
  std::printf("ASes receiving >10: %s  (paper: ~2%%)\n",
              nb::fmt_percent(stats.max_unique_received.fraction_at_least(11))
                  .c_str());
  std::printf("\nfull distribution:\n%s",
              stats.max_unique_received.render().c_str());
  return 0;
}
