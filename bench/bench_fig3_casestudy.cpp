// F3 -- Figure 3 case study: pick the prefix with the richest observed
// diversity and narrate it the way the paper does for 193.170.114.0/20 at
// AS 5511 -- the multi-homed origin, the distinct paths each core AS
// receives, and how many quasi-routers the fitted model spent on them.
#include <algorithm>
#include <map>
#include <set>

#include "bench_common.hpp"
#include "netbase/strings.hpp"

int main(int argc, char** argv) {
  auto setup = benchtool::setup_from_cli(argc, argv);
  benchtool::banner("bench_fig3_casestudy",
                    "Figure 3 (path-diversity case study)", setup);

  core::Pipeline pipeline = core::make_pipeline(setup.config);
  core::run_data_stages(pipeline);
  core::run_model_stages(pipeline);

  // Find the (origin, transit AS) with the most distinct received suffixes.
  auto by_origin = pipeline.dataset.paths_by_origin();
  nb::Asn best_origin = nb::kInvalidAsn, best_as = nb::kInvalidAsn;
  std::size_t best_count = 0;
  std::map<std::pair<nb::Asn, nb::Asn>, std::set<std::vector<nb::Asn>>> recv;
  for (auto& [origin, paths] : by_origin) {
    for (const auto& path : paths) {
      const auto& hops = path.hops();
      for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
        auto& suffixes = recv[{origin, hops[i]}];
        suffixes.insert(std::vector<nb::Asn>(
            hops.begin() + static_cast<std::ptrdiff_t>(i), hops.end()));
        if (suffixes.size() > best_count) {
          best_count = suffixes.size();
          best_origin = origin;
          best_as = hops[i];
        }
      }
    }
  }
  if (best_origin == nb::kInvalidAsn) {
    std::printf("no diversity found (dataset too small)\n");
    return 0;
  }

  const nb::Prefix prefix = nb::Prefix::for_asn(best_origin);
  std::printf("case study: prefix %s originated by AS %u\n", prefix.str().c_str(),
              best_origin);
  std::printf("origin upstreams (multi-homing): ");
  for (nb::Asn up : pipeline.graph.neighbors(best_origin))
    std::printf("%u ", up);
  std::printf("\n\n");

  std::printf("AS %u receives %zu distinct AS-paths toward this prefix "
              "(paper's AS 3356 example: 8):\n",
              best_as, best_count);
  for (const auto& suffix : recv[{best_origin, best_as}]) {
    std::string text;
    for (nb::Asn hop : suffix) text += std::to_string(hop) + " ";
    std::printf("  %s\n", text.c_str());
  }

  std::printf("\nobserved full paths for the prefix (%zu unique):\n",
              by_origin[best_origin].size());
  for (const auto& path : by_origin[best_origin])
    std::printf("  %s\n", path.str().c_str());

  std::printf("\nfitted model: AS %u uses %zu quasi-routers (all ASes with "
              ">1 shown below)\n",
              best_as, pipeline.model.routers_of(best_as).size());
  std::size_t shown = 0;
  for (auto& [asn, count] : pipeline.model.router_counts()) {
    if (count > 1 && shown < 15) {
      std::printf("  AS %-8u %zu quasi-routers\n", asn, count);
      ++shown;
    }
  }
  return 0;
}
