// Shared plumbing for the per-table/per-figure bench binaries: CLI parsing
// with common defaults, and banner printing so every bench's output is
// self-describing.
#pragma once

#include <cstdio>
#include <string>

#include "core/pipeline.hpp"
#include "netbase/cli.hpp"
#include "netbase/table.hpp"

namespace benchtool {

struct BenchSetup {
  core::PipelineConfig config;
  double scale = 0.5;
  std::uint64_t seed = 1;
};

inline BenchSetup setup_from_cli(int argc, char** argv,
                                 double default_scale = 0.5) {
  nb::Cli cli(argc, argv);
  BenchSetup setup;
  setup.scale = cli.get_double("scale", default_scale);
  setup.seed = cli.get_u64("seed", 1);
  setup.config = core::PipelineConfig::with(setup.scale, setup.seed);
  setup.config.threads = static_cast<unsigned>(cli.get_u64("threads", 1));
  // One threads= knob drives every parallel stage, including the refinement
  // simulation sweep (which is thread-count invariant; see refine.hpp).
  setup.config.refine.threads = setup.config.threads;
  return setup;
}

inline void banner(const char* name, const char* paper_artifact,
                   const BenchSetup& setup) {
  std::printf("%s", nb::section(name).c_str());
  std::printf("reproduces: %s\n", paper_artifact);
  std::printf("synthetic internet: scale=%.2f seed=%llu (see DESIGN.md for "
              "the data substitution)\n\n",
              setup.scale, static_cast<unsigned long long>(setup.seed));
}

inline void print_dataset_line(const core::Pipeline& pipeline) {
  std::printf(
      "dataset: %zu observation points in %zu ASes (%zu multi-feed), "
      "%zu records, %zu AS pairs\n\n",
      pipeline.dataset.points.size(),
      pipeline.dataset.observation_ases().size(),
      pipeline.dataset.multi_feed_ases(), pipeline.dataset.records.size(),
      pipeline.dataset.as_pair_count());
}

}  // namespace benchtool
