// GEN -- extension experiment: policy granularity (the future work named in
// Section 4.6 and the question of the authors' follow-up, "In Search for an
// Appropriate Granularity to Model Routing Policies").
//
// The refinement installs per-prefix rules.  This bench measures (a) how
// prefix-dependent the fitted policies really are -- the distribution of
// distinct preferred neighbors per ranked quasi-router -- and (b) what
// happens when uniform per-prefix rankings are collapsed into
// prefix-independent per-neighbor preferences: model size shrinks, training
// remains (nearly) exact, and generalization to held-out prefixes improves
// because preferences now transfer to unseen prefixes.
#include "bench_common.hpp"
#include "core/generalize.hpp"
#include "core/report.hpp"
#include "netbase/strings.hpp"

int main(int argc, char** argv) {
  auto setup = benchtool::setup_from_cli(argc, argv, 0.35);
  benchtool::banner("bench_generalization",
                    "policy-granularity extension (Section 4.6 future work)",
                    setup);

  core::Pipeline pipeline = core::make_pipeline(setup.config);
  core::run_data_stages(pipeline);
  benchtool::print_dataset_line(pipeline);

  // Fit on training points, but measure against BOTH the held-out points
  // and a prefix split (where generalization should pay off).
  core::run_model_stages(pipeline);
  if (!pipeline.refine_result.success) {
    std::printf("refinement incomplete; aborting\n");
    return 1;
  }

  auto stats = core::analyze_policy_granularity(pipeline.model);
  std::printf("granularity of the fitted model:\n");
  nb::TextTable gran({"Statistic", "Value"});
  gran.add_row({"quasi-routers", nb::fmt_count(stats.routers_total)});
  gran.add_row({"quasi-routers with per-prefix rankings",
                nb::fmt_count(stats.routers_with_rankings)});
  gran.add_row({"  of which uniform (one preferred neighbor)",
                nb::fmt_count(stats.routers_uniform)});
  gran.add_row({"per-prefix ranking rules",
                nb::fmt_count(stats.rankings_total)});
  std::printf("%s\n", gran.render().c_str());
  std::printf("distinct preferred neighbors per ranked quasi-router:\n%s\n",
              stats.distinct_preferences.render().c_str());

  topo::Model generalized = pipeline.model;
  auto rewrite = core::generalize_rankings(generalized);
  std::printf("generalization: %zu per-prefix rules collapsed into %zu "
              "router-level preferences\n\n",
              rewrite.rules_removed, rewrite.defaults_added);

  core::EvalOptions options;
  options.threads = setup.config.threads;
  nb::TextTable table({"model", "training RIB-Out",
                       "val down-to-tie-break", "val RIB-Out",
                       "per-prefix rules"});
  auto row = [&](const char* name, const topo::Model& model) {
    auto train =
        core::evaluate_predictions(model, pipeline.split.training, options);
    auto val =
        core::evaluate_predictions(model, pipeline.split.validation, options);
    table.add_row({name, nb::fmt_percent(train.stats.rib_out_rate()),
                   nb::fmt_percent(val.stats.potential_or_better_rate()),
                   nb::fmt_percent(val.stats.rib_out_rate()),
                   nb::fmt_count(model.policy_stats().rankings)});
  };
  row("per-prefix (paper)", pipeline.model);
  row("generalized", generalized);
  std::printf("%s\n", table.render().c_str());

  // Prefix-split comparison: generalized preferences transfer to prefixes
  // that had no training rules.
  auto origin_split =
      data::split_by_origins(pipeline.dataset, setup.config.split);
  topo::Model prefix_model = topo::Model::one_router_per_as(pipeline.graph);
  auto refined = core::refine_model(prefix_model, origin_split.training,
                                    setup.config.refine);
  topo::Model prefix_generalized = prefix_model;
  core::generalize_rankings(prefix_generalized);
  nb::TextTable transfer({"model", "held-out-prefix down-to-tie-break",
                          "held-out-prefix RIB-Out"});
  auto transfer_row = [&](const char* name, const topo::Model& model) {
    auto eval = core::evaluate_predictions(model, origin_split.validation,
                                           options);
    transfer.add_row({name,
                      nb::fmt_percent(eval.stats.potential_or_better_rate()),
                      nb::fmt_percent(eval.stats.rib_out_rate())});
  };
  std::printf("prefix-split transfer (trained on %zu origins, tested on "
              "held-out origins; refinement %s):\n",
              origin_split.training.paths_by_origin().size(),
              refined.success ? "exact" : "incomplete");
  transfer_row("per-prefix (paper)", prefix_model);
  transfer_row("generalized", prefix_generalized);
  std::printf("%s\n", transfer.render().c_str());
  std::printf("expected: generalized >= per-prefix on held-out prefixes\n"
              "(preferences transfer), with a small or no loss on held-out\n"
              "observation points.\n");
  return 0;
}
