// F2 / F2b -- Figure 2 and the prefixes-per-AS-path histogram (Section 3.2).
//
// Figure 2: histogram of the number of distinct AS-paths observed between
// (origin AS, observation AS) pairs, log-scaled y axis.  Paper findings to
// reproduce in shape:
//   * >30% of AS pairs see more than one AS-path;
//   * a heavy tail of pairs with >10 distinct paths.
//
// Section 3.2 companion series: how many prefixes propagate along each
// unique AS-path -- most paths carry one prefix, a few carry very many
// (linear on log-log axes).
#include <cmath>

#include "bench_common.hpp"
#include "data/dataset_stats.hpp"
#include "netbase/stats.hpp"
#include "netbase/strings.hpp"

int main(int argc, char** argv) {
  auto setup = benchtool::setup_from_cli(argc, argv);
  benchtool::banner("bench_fig2_diversity",
                    "Figure 2 (distinct AS-paths per AS pair) + Section 3.2 "
                    "prefixes-per-path histogram",
                    setup);

  core::Pipeline pipeline = core::make_pipeline(setup.config);
  core::run_data_stages(pipeline);
  benchtool::print_dataset_line(pipeline);

  auto stats = data::compute_diversity(pipeline.dataset,
                                       &pipeline.internet.prefix_counts);

  std::printf("Figure 2: # distinct AS-paths per (origin AS, observation AS) "
              "pair\n");
  std::printf("%s\n", stats.paths_per_pair.render().c_str());

  const double multi = stats.paths_per_pair.fraction_at_least(2);
  const auto ten_plus = stats.paths_per_pair.count_at_least(10);
  std::printf("AS pairs with >1 path: %s   (paper: >30%%)\n",
              nb::fmt_percent(multi).c_str());
  std::printf("AS pairs with >=10 paths: %s   (paper: >5,000 pairs of 3.27M "
              "-- a heavy tail)\n\n",
              nb::fmt_count(ten_plus).c_str());

  std::printf("Section 3.2: # prefixes propagated along each unique "
              "AS-path\n");
  std::printf("%s\n", stats.prefixes_per_path.render().c_str());
  const double single_prefix_share =
      stats.prefixes_per_path.total() == 0
          ? 0
          : static_cast<double>(stats.prefixes_per_path.count_of(1)) /
                stats.prefixes_per_path.total();
  std::printf("paths used by a single prefix: %s   (paper: <50%% of paths... "
              "popular paths carry >1,000 prefixes)\n",
              nb::fmt_percent(single_prefix_share).c_str());

  // Log-log linearity check (paper: "one can see a linear relationship").
  std::vector<double> xs, ys;
  for (auto& [value, count] : stats.prefixes_per_path.buckets()) {
    if (value == 0 || count == 0) continue;
    xs.push_back(std::log10(static_cast<double>(value)));
    ys.push_back(std::log10(static_cast<double>(count)));
  }
  if (xs.size() >= 3) {
    auto fit = nb::fit_line(xs, ys);
    std::printf("log-log fit: slope=%.2f r2=%.2f   (paper: linear on "
                "log-log)\n",
                fit.slope, fit.r2);
  }
  return 0;
}
