// T2 -- Table 2: prediction accuracy of single-router-per-AS models
// (Section 3.3), the baselines the paper argues are insufficient.
//
//   column 1: shortest-AS-path routing on the stub-reduced AS graph;
//   column 2: inferred customer-provider/peering policies (local-pref +
//             valley-free export) on the same graph.
//
// Rows: exact agreement (the model's best path at the observation AS equals
// the observed path), and the disagreement breakdown -- path not even
// available at the AS, a shorter path exists (lost at the length step), lost
// at the final lowest-neighbor-ID tie-break.
//
// Shape targets from the paper: agreement is low (23.5% / 12.5%); the
// policy model is WORSE than shortest path; about half the failures are
// "path not available"; among available paths, tie-break losses dominate.
#include "bench_common.hpp"
#include "core/report.hpp"
#include "netbase/strings.hpp"
#include "topology/relationships.hpp"

int main(int argc, char** argv) {
  auto setup = benchtool::setup_from_cli(argc, argv);
  benchtool::banner("bench_table2_single_router",
                    "Table 2 (single-router-per-AS baselines)", setup);

  core::Pipeline pipeline = core::make_pipeline(setup.config);
  core::run_data_stages(pipeline);
  benchtool::print_dataset_line(pipeline);

  // Both baselines are evaluated against ALL observed paths, as in the
  // paper (no training/validation split for Table 2).
  core::EvalOptions shortest_options;
  shortest_options.threads = setup.config.threads;
  topo::Model shortest = topo::Model::one_router_per_as(pipeline.graph);
  auto shortest_eval =
      core::evaluate_predictions(shortest, pipeline.dataset, shortest_options);

  // Policy baseline: infer relationships from the observed paths with the
  // level-1 clique as peering seed (Section 3.3), realize them as
  // local-pref + valley-free export filters.
  auto paths = pipeline.dataset.all_paths();
  topo::RelationshipMap rels = topo::infer_relationships(
      pipeline.graph, pipeline.hierarchy.level1, paths);
  auto counts = rels.counts(pipeline.graph);
  std::printf("inferred relationships: %zu customer-provider, %zu peering, "
              "%zu sibling, %zu unknown\n",
              counts.customer_provider, counts.peer_peer, counts.sibling,
              counts.unknown);
  std::printf("(paper: 34,087 customer-provider, 7,290 peering, 640 "
              "siblings)\n");
  std::printf("valley-free fraction of observed paths under inference: %s\n\n",
              nb::fmt_percent(topo::valley_free_fraction(rels, paths))
                  .c_str());

  topo::Model policy_model = topo::Model::one_router_per_as(pipeline.graph);
  policy_model.adopt_relationships(pipeline.graph, rels);
  core::EvalOptions policy_options = shortest_options;
  policy_options.engine.use_relationship_policies = true;
  auto policy_eval = core::evaluate_predictions(policy_model, pipeline.dataset,
                                                policy_options);

  std::printf("%s\n",
              core::render_table2(shortest_eval.stats, policy_eval.stats)
                  .c_str());
  std::printf("shape checks:\n");
  std::printf("  policy model beats shortest path on agreement: %s "
              "(paper: NO)\n",
              policy_eval.stats.rib_out_rate() >
                      shortest_eval.stats.rib_out_rate()
                  ? "YES"
                  : "no");
  std::printf("  'not available' dominates the policy model's "
              "disagreement: %s (paper: yes, 54.5%% of 87.5%%)\n",
              policy_eval.stats.not_available_rate() >
                      0.5 * (1.0 - policy_eval.stats.rib_out_rate())
                  ? "yes"
                  : "NO");
  return 0;
}
