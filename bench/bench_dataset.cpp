// DATA -- Section 3.1 dataset summary.
//
// The paper characterizes its Nov-2005 BGP dataset: observation points,
// AS-paths, AS pairs, the derived AS graph, the level-1 clique, level-2,
// transit vs stub ASes, single- vs multi-homed stubs, and the reduced graph
// after single-homed-stub removal.  This bench prints the same inventory for
// the synthetic dataset (absolute sizes scale with --scale; the paper's
// values are shown for reference).
#include "bench_common.hpp"
#include "data/dataset_stats.hpp"
#include "netbase/strings.hpp"

int main(int argc, char** argv) {
  auto setup = benchtool::setup_from_cli(argc, argv);
  benchtool::banner("bench_dataset", "Section 3.1 dataset summary", setup);

  core::Pipeline pipeline = core::make_pipeline(setup.config);
  core::run_data_stages(pipeline);

  const auto raw_paths = pipeline.raw_dataset.all_paths();
  topo::AsGraph raw_graph = topo::AsGraph::from_paths(raw_paths);
  topo::StubAnalysis stubs = topo::analyze_stubs(raw_graph, raw_paths);

  auto stats = data::compute_diversity(pipeline.raw_dataset,
                                       &pipeline.internet.prefix_counts);

  nb::TextTable table({"Quantity", "This dataset", "Paper (Nov 13, 2005)"});
  using nb::fmt_count;
  table.add_row({"observation points",
                 fmt_count(pipeline.raw_dataset.points.size()), ">1,300"});
  table.add_row({"observation ASes",
                 fmt_count(pipeline.raw_dataset.observation_ases().size()),
                 ">700"});
  const double multi_frac =
      pipeline.raw_dataset.observation_ases().empty()
          ? 0
          : static_cast<double>(pipeline.raw_dataset.multi_feed_ases()) /
                pipeline.raw_dataset.observation_ases().size();
  table.add_row({"observation ASes with multiple feeds",
                 nb::fmt_percent(multi_frac), "30%"});
  table.add_row({"distinct AS-paths", fmt_count(stats.unique_paths),
                 "4,730,222"});
  table.add_row({"AS pairs", fmt_count(stats.as_pairs), "3,271,351"});
  table.add_row({"AS-graph nodes", fmt_count(raw_graph.num_nodes()),
                 "21,178"});
  table.add_row({"AS-graph edges", fmt_count(raw_graph.num_edges()),
                 "58,903"});
  table.add_row({"level-1 providers (clique)",
                 fmt_count(pipeline.hierarchy.level1.size()), "10"});
  table.add_row({"level-2 (neighbors of level-1)",
                 fmt_count(pipeline.hierarchy.level2.size()), "7,994"});
  table.add_row({"other ASes", fmt_count(pipeline.hierarchy.other.size()),
                 "13,174"});
  table.add_row({"transit ASes", fmt_count(stubs.transit.size()), "3,486"});
  table.add_row({"single-homed stub ASes",
                 fmt_count(stubs.single_homed.size()), "6,611"});
  table.add_row({"multi-homed stub ASes",
                 fmt_count(stubs.multi_homed.size()), "11,077"});
  table.add_rule();
  table.add_row({"graph after stub removal: nodes",
                 fmt_count(pipeline.graph.num_nodes()), "14,563"});
  table.add_row({"graph after stub removal: edges",
                 fmt_count(pipeline.graph.num_edges()), "52,288"});
  std::printf("%s\n", table.render().c_str());

  std::printf("note: absolute counts scale with --scale; the structural\n"
              "ratios (stub share, clique size, transit share) are the\n"
              "reproduction target.\n");
  return 0;
}
