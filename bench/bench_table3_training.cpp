// T3 -- training-set fixpoint (Sections 4.3-4.6): the iterative refinement
// must reproduce EVERY training AS-path exactly ("we find that we can build
// an AS-routing model that matches the training set exactly"), within a
// number of iterations that is a small multiple of the maximum AS-path
// length.  Also reports the model growth: quasi-routers added, per-prefix
// filters and rankings installed, and Fig.-7 filter deletions.
#include <algorithm>

#include "bench_common.hpp"
#include "core/report.hpp"

int main(int argc, char** argv) {
  auto setup = benchtool::setup_from_cli(argc, argv);
  benchtool::banner("bench_table3_training",
                    "training-set refinement fixpoint (Sections 4.3-4.6)",
                    setup);

  core::Pipeline pipeline = core::make_pipeline(setup.config);
  core::run_data_stages(pipeline);
  core::run_model_stages(pipeline);

  std::printf("training records: %zu   unique (origin, path) pairs: %zu\n",
              pipeline.split.training.records.size(),
              pipeline.training_eval.stats.total);

  std::size_t max_len = 0;
  for (const auto& record : pipeline.split.training.records)
    max_len = std::max(max_len, record.path.length());
  std::printf("max AS-path length: %zu\n\n", max_len);

  std::printf("refinement trace:\n%s\n",
              core::render_refine_log(pipeline.refine_result).c_str());

  std::printf("model growth: %zu -> %zu quasi-routers (+%zu), "
              "%zu policy adjustments, %zu filter deletions\n",
              pipeline.graph.num_nodes(), pipeline.model.num_routers(),
              pipeline.refine_result.routers_added,
              pipeline.refine_result.policies_changed,
              pipeline.refine_result.filters_relaxed);
  auto stats = pipeline.model.policy_stats();
  std::printf("installed rules: %zu filters, %zu rankings over %zu "
              "prefixes\n\n",
              stats.filters, stats.rankings, stats.prefixes_with_policy);

  std::printf("%s\n", core::render_validation(
                          "training set (must be exact)",
                          pipeline.training_eval.stats)
                          .c_str());
  std::printf("shape checks:\n");
  std::printf("  exact training match: %s (paper: yes)\n",
              pipeline.refine_result.success ? "yes" : "NO");
  std::printf("  iterations (%zu) <= 4 x max path length (%zu): %s "
              "(paper: 'a multiple of the maximum AS-path length')\n",
              pipeline.refine_result.iterations, 4 * max_len,
              pipeline.refine_result.iterations <= 4 * max_len ? "yes" : "NO");
  return 0;
}
