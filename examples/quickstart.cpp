// Quickstart: run the whole reproduction end to end on a small synthetic
// Internet and print the headline numbers.
//
//   $ quickstart [--scale 0.5] [--seed 1] [--verbose]
//
// Stages: generate a hierarchical AS topology with ground-truth router-level
// routing -> record BGP feeds at observation points -> split feeds into
// training/validation -> fit the quasi-router model to the training feeds
// (iterative refinement) -> evaluate route prediction on the held-out feeds.
#include <cstdio>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "netbase/cli.hpp"
#include "netbase/table.hpp"

int main(int argc, char** argv) {
  nb::Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 0.5);
  const std::uint64_t seed = cli.get_u64("seed", 1);

  core::PipelineConfig config = core::PipelineConfig::with(scale, seed);
  config.refine.verbose = cli.get_bool("verbose");

  std::printf("%s", nb::section("quickstart: data").c_str());
  core::Pipeline pipeline = core::make_pipeline(config);
  core::run_data_stages(pipeline);
  std::printf("ASes: %zu   edges: %zu   observation points: %zu\n",
              pipeline.graph.num_nodes(), pipeline.graph.num_edges(),
              pipeline.dataset.points.size());
  std::printf("records: %zu (training %zu / validation %zu)\n",
              pipeline.dataset.records.size(),
              pipeline.split.training.records.size(),
              pipeline.split.validation.records.size());

  std::printf("%s", nb::section("quickstart: refinement").c_str());
  core::run_model_stages(pipeline);
  std::printf("%s", core::render_refine_log(pipeline.refine_result).c_str());
  std::printf("quasi-routers: %zu (ASes: %zu)\n",
              pipeline.model.num_routers(), pipeline.model.num_ases());

  std::printf("%s", nb::section("quickstart: prediction").c_str());
  std::printf("%s\n", core::render_validation(
                          "training set", pipeline.training_eval.stats)
                          .c_str());
  std::printf("%s\n", core::render_validation(
                          "validation set (held out)",
                          pipeline.validation_eval.stats)
                          .c_str());
  return 0;
}
