// Route-diversity study (the Section 3 analysis as a reusable tool):
//
//   $ diversity_study [--scale 0.5] [--seed 1] [--sweep]
//
// Generates a synthetic Internet with router-level ground truth, observes it
// from BGP feeds and reports the paper's diversity statistics: distinct
// AS-paths per AS pair (Fig. 2), max unique paths received per AS (Table 1)
// and the share of diversity attributable to multi-router ASes.  With
// --sweep, repeats the study across ground-truth router budgets to show how
// intra-AS structure drives observed diversity -- the paper's core argument
// that ASes are not atomic.
#include <cstdio>

#include "core/pipeline.hpp"
#include "data/dataset_stats.hpp"
#include "netbase/cli.hpp"
#include "netbase/strings.hpp"
#include "netbase/table.hpp"

namespace {

struct StudyRow {
  int max_core_routers;
  data::DiversityStats stats;
  std::size_t routers;
};

StudyRow run_study(double scale, std::uint64_t seed, int max_core_routers) {
  core::PipelineConfig config = core::PipelineConfig::with(scale, seed);
  if (max_core_routers > 0) {
    config.ground_truth.routers_tier1_max = max_core_routers;
    config.ground_truth.routers_level2_max = std::min(max_core_routers, 5);
    config.ground_truth.routers_level3_max = std::min(max_core_routers, 3);
    config.ground_truth.routers_level3_min = max_core_routers > 1 ? 2 : 1;
    config.ground_truth.routers_core_min = max_core_routers > 1 ? 2 : 1;
  }
  core::Pipeline pipeline = core::make_pipeline(config);
  core::run_data_stages(pipeline);
  StudyRow row;
  row.max_core_routers = max_core_routers;
  row.stats = data::compute_diversity(pipeline.dataset,
                                      &pipeline.internet.prefix_counts);
  row.routers = pipeline.ground_truth.model.num_routers();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  nb::Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 0.5);
  const std::uint64_t seed = cli.get_u64("seed", 1);

  std::printf("%s", nb::section("route-diversity study").c_str());

  if (!cli.get_bool("sweep")) {
    StudyRow row = run_study(scale, seed, 0);
    std::printf("Fig. 2 -- distinct AS-paths per (origin, observer) pair:\n%s\n",
                row.stats.paths_per_pair.render().c_str());
    std::printf("Table 1 -- max unique AS-paths received per AS:\n%s\n",
                row.stats.max_unique_received.render().c_str());
    std::printf("AS pairs with >1 path: %s   ASes receiving >=2 unique "
                "paths: %s\n",
                nb::fmt_percent(row.stats.paths_per_pair.fraction_at_least(2))
                    .c_str(),
                nb::fmt_percent(
                    row.stats.max_unique_received.fraction_at_least(2))
                    .c_str());
    return 0;
  }

  // Sweep the ground truth's router budget: with single-router ASes the
  // observable diversity collapses; it grows with intra-AS structure.
  nb::TextTable table({"core routers (max)", "gt routers",
                       "pairs with >1 path", "ASes recv >=2 paths",
                       "max recv paths"});
  for (int max_core_routers : {1, 2, 4, 6, 8}) {
    StudyRow row = run_study(scale, seed, max_core_routers);
    table.add_row(
        {std::to_string(max_core_routers), nb::fmt_count(row.routers),
         nb::fmt_percent(row.stats.paths_per_pair.fraction_at_least(2)),
         nb::fmt_percent(row.stats.max_unique_received.fraction_at_least(2)),
         row.stats.max_unique_received.empty()
             ? "-"
             : std::to_string(row.stats.max_unique_received.max())});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("reading: a single router per AS (row 1) cannot express the\n"
              "observed route diversity -- the motivation for quasi-routers\n"
              "(paper Sections 3.2/3.3).\n");
  return 0;
}
