// Full workflow through the library's file formats:
//
//   $ refine_and_predict [--scale 0.35] [--seed 1] [--dir /tmp]
//
//   1. generate + observe a synthetic Internet, write the feeds as a RIB
//      dump (data/rib_io format);
//   2. read the dump back (as a downstream user would with real feeds),
//      split it, derive the graph, fit the quasi-router model;
//   3. serialize the fitted model (topology/model_io, C-BGP-style config),
//      reload it and predict the held-out routes with the reloaded model.
//
// Demonstrates that the on-disk artifacts are complete: dump + model are
// enough to reproduce every prediction.
#include <cstdio>
#include <fstream>

#include "core/pipeline.hpp"
#include "core/predict.hpp"
#include "core/report.hpp"
#include "data/rib_io.hpp"
#include "netbase/cli.hpp"
#include "netbase/table.hpp"
#include "topology/model_io.hpp"

int main(int argc, char** argv) {
  nb::Cli cli(argc, argv);
  core::PipelineConfig config = core::PipelineConfig::with(
      cli.get_double("scale", 0.35), cli.get_u64("seed", 1));
  const std::string dir = cli.get_string("dir", "/tmp");
  const std::string dump_path = dir + "/routes.dump";
  const std::string model_path = dir + "/fitted.model";

  std::printf("%s", nb::section("step 1: observe and dump").c_str());
  core::Pipeline pipeline = core::make_pipeline(config);
  core::run_data_stages(pipeline);
  {
    std::ofstream out(dump_path);
    data::write_dataset(out, pipeline.dataset);
  }
  std::printf("wrote %zu records from %zu feeds to %s\n",
              pipeline.dataset.records.size(), pipeline.dataset.points.size(),
              dump_path.c_str());

  std::printf("%s", nb::section("step 2: reload, split, refine").c_str());
  std::ifstream in(dump_path);
  std::string error;
  auto dataset = data::read_dataset(in, &error);
  if (!dataset) {
    std::printf("failed to reload dump: %s\n", error.c_str());
    return 1;
  }
  auto split = data::split_by_points(*dataset, config.split);
  auto graph = topo::AsGraph::from_paths(dataset->all_paths());
  topo::Model model = topo::Model::one_router_per_as(graph);
  auto refined = core::refine_model(model, split.training, config.refine);
  std::printf("%s", core::render_refine_log(refined).c_str());
  if (!refined.success) return 1;

  std::printf("%s", nb::section("step 3: serialize, reload, predict").c_str());
  {
    std::ofstream out(model_path);
    topo::write_model(out, model);
  }
  std::ifstream model_in(model_path);
  auto reloaded = topo::read_model(model_in, &error);
  if (!reloaded) {
    std::printf("failed to reload model: %s\n", error.c_str());
    return 1;
  }
  std::printf("model round-tripped via %s (%zu quasi-routers)\n\n",
              model_path.c_str(), reloaded->num_routers());

  core::EvalOptions options;
  auto training_eval =
      core::evaluate_predictions(*reloaded, split.training, options);
  auto validation_eval =
      core::evaluate_predictions(*reloaded, split.validation, options);
  std::printf("%s\n", core::render_validation("training (reloaded model)",
                                              training_eval.stats)
                          .c_str());
  std::printf("%s\n", core::render_validation("validation (reloaded model)",
                                              validation_eval.stats)
                          .c_str());
  return training_eval.stats.rib_out_rate() == 1.0 ? 0 : 1;
}
