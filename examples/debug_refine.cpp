// Developer probe: rerun the pipeline and dump the simulated state around
// every training path that failed to become a RIB-Out match.  Not part of
// the documented example set, but useful when tuning the heuristic.
#include <cstdio>
#include <map>
#include <set>

#include "core/pipeline.hpp"
#include "netbase/cli.hpp"

using nb::Asn;
using topo::AsPath;
using topo::Model;

namespace {

void dump_as(const Model& model, const bgp::PrefixSimResult& sim, Asn asn) {
  for (Model::Dense r : model.routers_of(asn)) {
    const auto& st = sim.routers[r];
    std::printf("    router %s best=%d\n", model.router_id(r).str().c_str(),
                st.best);
    for (std::size_t i = 0; i < st.rib_in.size(); ++i) {
      std::printf("      rib[%zu] %s (sender=%s)\n", i,
                  st.rib_in[i].str().c_str(),
                  model.router_id(st.rib_in[i].sender).str().c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  nb::Cli cli(argc, argv);
  core::PipelineConfig config = core::PipelineConfig::with(
      cli.get_double("scale", 0.25), cli.get_u64("seed", 1));
  core::Pipeline p = core::make_pipeline(config);
  core::run_data_stages(p);
  p.config.refine.debug_origin = static_cast<nb::Asn>(cli.get_u64("debug-origin", nb::kInvalidAsn));
  core::run_model_stages(p);

  bgp::Engine engine(p.model, bgp::EngineOptions{});
  const auto ids = bgp::dense_ids(p.model);
  std::size_t shown = 0;
  for (auto& [origin, paths] : p.split.training.paths_by_origin()) {
    if (!p.model.has_as(origin)) continue;
    auto sim = engine.run(nb::Prefix::for_asn(origin), origin);
    for (const AsPath& path : paths) {
      core::PathMatch match = core::classify_path(p.model, sim, path, ids);
      if (match.kind == core::MatchKind::kRibOut) continue;
      if (++shown > cli.get_u64("max", 5)) return 0;
      std::printf("UNMATCHED origin=%u path=[%s] kind=%s\n", origin,
                  path.str().c_str(), core::match_kind_name(match.kind));
      const auto& hops = path.hops();
      // Walk from origin side and show where the chain breaks.
      for (std::size_t k = hops.size() - 1; k-- > 0;) {
        std::span<const Asn> route_path(hops.data() + k + 1,
                                        hops.size() - k - 1);
        bool rib_out = core::has_rib_out(p.model, sim, hops[k], route_path);
        std::printf("  AS %u (suffix len %zu): rib_out=%d\n", hops[k],
                    route_path.size(), rib_out);
        if (!rib_out) {
          std::printf("  --- state at AS %u:\n", hops[k]);
          dump_as(p.model, sim, hops[k]);
          // Also show the announcing neighbor.
          std::printf("  --- state at announcing AS %u:\n", hops[k + 1]);
          dump_as(p.model, sim, hops[k + 1]);
          // And print filters on sessions into this AS for this prefix.
          const topo::PrefixPolicy* pol =
              p.model.find_policy(nb::Prefix::for_asn(origin));
          if (pol != nullptr) {
            for (Model::Dense r : p.model.routers_of(hops[k])) {
              for (Model::Dense s : p.model.peers(r)) {
                const topo::ExportFilter* f =
                    p.model.find_export_filter(s, r, pol);
                if (f != nullptr) {
                  std::printf("    filter %s->%s deny<%u owner=%s\n",
                              p.model.router_id(s).str().c_str(),
                              p.model.router_id(r).str().c_str(),
                              f->deny_below_len, f->owner_target.str().c_str());
                }
              }
              const auto it = pol->rankings.find(p.model.router_id(r).value());
              if (it != pol->rankings.end()) {
                std::printf("    ranking at %s prefer AS %u\n",
                            p.model.router_id(r).str().c_str(),
                            it->second.preferred_neighbor);
              }
            }
          }
          break;
        }
      }
    }
  }
  std::printf("total unmatched shown: %zu\n", shown);
  return 0;
}
