// Developer probe: coarse timing of the pipeline stages at a given scale.
#include <chrono>
#include <cstdio>

#include "core/pipeline.hpp"
#include "netbase/cli.hpp"

using Clock = std::chrono::steady_clock;

static double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

int main(int argc, char** argv) {
  nb::Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0);
  core::PipelineConfig config =
      core::PipelineConfig::with(scale, cli.get_u64("seed", 1));

  auto t0 = Clock::now();
  auto internet = data::generate_internet(config.internet);
  std::printf("generate: %.1f ms (%zu ASes, %zu edges)\n", ms_since(t0),
              internet.graph.num_nodes(), internet.graph.num_edges());

  t0 = Clock::now();
  auto gt = data::build_ground_truth(internet, config.ground_truth);
  std::printf("ground truth: %.1f ms (%zu routers, %zu sessions)\n",
              ms_since(t0), gt.model.num_routers(), gt.model.num_sessions());

  bgp::Engine engine(gt.model, gt.config.engine_options());
  t0 = Clock::now();
  int runs = 0;
  std::uint64_t messages = 0;
  for (nb::Asn asn : internet.graph.nodes()) {
    auto sim = engine.run(nb::Prefix::for_asn(asn), asn);
    messages += sim.messages;
    if (++runs >= 20) break;
  }
  std::printf("engine: %.2f ms/prefix (%lu msgs/prefix avg)\n",
              ms_since(t0) / runs,
              static_cast<unsigned long>(messages / runs));

  t0 = Clock::now();
  bgp::ThreadPool pool(config.threads);
  auto dataset = data::observe(gt, internet, config.observation, pool);
  std::printf("observe (all %zu prefixes): %.1f ms, %zu records\n",
              internet.graph.num_nodes(), ms_since(t0),
              dataset.records.size());
  return 0;
}
