// What-if analysis -- the paper's motivating question (Section 1): "what if
// a certain peering link was removed?".
//
//   $ whatif_depeering [--scale 0.35] [--seed 1] [--prefixes 40]
//
// Fits the AS-routing model to observed routes, then removes the
// highest-traffic level-2 <-> tier-1 link and predicts which (prefix, AS)
// pairs change their routes, lose reachability, or reroute -- including a
// per-router explanation of one rerouted decision.
#include <algorithm>
#include <cstdio>

#include "bgp/explain.hpp"
#include "core/pipeline.hpp"
#include "core/whatif.hpp"
#include "netbase/cli.hpp"
#include "netbase/strings.hpp"
#include "netbase/table.hpp"

int main(int argc, char** argv) {
  nb::Cli cli(argc, argv);
  core::PipelineConfig config = core::PipelineConfig::with(
      cli.get_double("scale", 0.35), cli.get_u64("seed", 1));

  std::printf("%s", nb::section("what-if: de-peering a core link").c_str());
  core::Pipeline pipeline = core::run_full_pipeline(config);
  if (!pipeline.refine_result.success) {
    std::printf("refinement did not reach the training fixpoint; results "
                "would not be meaningful\n");
    return 1;
  }
  std::printf("fitted model: %zu quasi-routers, training match 100%%, "
              "validation down-to-tie-break %s\n\n",
              pipeline.model.num_routers(),
              nb::fmt_percent(pipeline.validation_eval.stats
                                  .potential_or_better_rate())
                  .c_str());

  // Pick the level-2 AS with the highest degree and one of its tier-1
  // uplinks: a link whose removal visibly reshapes routing.
  nb::Asn level2 = nb::kInvalidAsn;
  std::size_t best_degree = 0;
  for (nb::Asn asn : pipeline.hierarchy.level2) {
    if (pipeline.graph.degree(asn) > best_degree) {
      best_degree = pipeline.graph.degree(asn);
      level2 = asn;
    }
  }
  nb::Asn tier1 = nb::kInvalidAsn;
  for (nb::Asn neighbor : pipeline.graph.neighbors(level2)) {
    if (pipeline.hierarchy.level1.count(neighbor)) {
      tier1 = neighbor;
      break;
    }
  }
  if (tier1 == nb::kInvalidAsn) {
    std::printf("no level-2 <-> tier-1 link found\n");
    return 1;
  }
  std::printf("scenario: remove every session between AS %u (level-2, "
              "degree %zu) and AS %u (tier-1)\n\n",
              level2, best_degree, tier1);

  core::WhatIfScenario scenario;
  scenario.remove_as_links.push_back({level2, tier1});

  std::vector<nb::Asn> origins = pipeline.model.asns();
  const std::size_t limit = cli.get_u64("prefixes", 40);
  if (origins.size() > limit) origins.resize(limit);

  auto result = core::evaluate_whatif(pipeline.model, scenario, origins);

  nb::TextTable table({"Quantity", "Value"});
  table.add_row({"prefixes evaluated",
                 nb::fmt_count(result.prefixes_evaluated)});
  table.add_row({"(prefix, AS) pairs evaluated",
                 nb::fmt_count(result.pairs_evaluated)});
  table.add_row({"pairs with changed best routes",
                 nb::fmt_count(result.pairs_changed)});
  table.add_row({"pairs losing reachability",
                 nb::fmt_count(result.pairs_lost_reachability)});
  table.add_row({"pairs gaining reachability",
                 nb::fmt_count(result.pairs_gained_reachability)});
  std::printf("%s\n", table.render().c_str());

  std::printf("sample of rerouted pairs:\n");
  std::size_t shown = 0;
  for (const auto& change : result.changes) {
    if (change.before == change.after || change.before.empty()) continue;
    if (++shown > 5) break;
    std::printf("  AS %u -> prefix of AS %u\n", change.observer,
                change.origin);
    for (const auto& path : change.before) {
      std::string text;
      for (nb::Asn hop : path) text += std::to_string(hop) + " ";
      std::printf("    before: %s\n", text.c_str());
    }
    for (const auto& path : change.after) {
      std::string text;
      for (nb::Asn hop : path) text += std::to_string(hop) + " ";
      std::printf("    after:  %s\n", text.c_str());
    }
  }
  if (shown == 0) {
    std::printf("  (no reroutes among the sampled prefixes; increase "
                "--prefixes)\n");
    return 0;
  }

  // Explain one changed decision router-by-router.
  const auto& change = result.changes.front();
  topo::Model after = core::apply_scenario(pipeline.model, scenario);
  bgp::Engine engine(after);
  auto sim = engine.run(nb::Prefix::for_asn(change.origin), change.origin);
  std::printf("\ndecision detail at AS %u after the change (prefix of "
              "AS %u):\n",
              change.observer, change.origin);
  for (topo::Model::Dense r : after.routers_of(change.observer)) {
    std::printf("%s", bgp::explain_selection(after, sim, r).str(after).c_str());
  }
  return 0;
}
