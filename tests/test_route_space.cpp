// Static route-space abstraction (analysis/route_space): MAY-set
// enumeration, blackhole detection, relaxed reachability, and the
// guaranteed-router under-approximation -- including the dynamic soundness
// check that guaranteed routers really do install a route under full
// simulation.
#include "analysis/route_space.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "core/pipeline.hpp"
#include "topology/as_graph.hpp"

namespace {

using analysis::RouteSpace;
using analysis::RouteSpaceOptions;
using nb::Prefix;
using nb::RouterId;
using topo::ExportFilter;
using topo::Model;

/// Origin AS 9 reachable from AS 5 via two branches: 9 - 1 - 5, 9 - 2 - 5.
Model diamond() {
  topo::AsGraph graph;
  graph.add_edge(9, 1);
  graph.add_edge(9, 2);
  graph.add_edge(1, 5);
  graph.add_edge(2, 5);
  return Model::one_router_per_as(graph);
}

TEST(RouteSpaceTest, DiamondEnumeratesBothBranches) {
  const Model model = diamond();
  const bgp::Engine engine(model);
  const RouteSpace space =
      analysis::build_route_space(engine, Prefix::for_asn(9), 9);
  EXPECT_FALSE(space.truncated);
  for (Model::Dense r = 0; r < model.num_routers(); ++r) {
    EXPECT_TRUE(space.may_reach(r)) << model.router_id(r).str();
  }
  // AS 5 receives [1 9] and [2 9] -- and nothing else: the longer walks
  // around the diamond all revisit an AS and die to loop detection.
  const Model::Dense five = model.dense(RouterId{5, 0});
  EXPECT_EQ(space.by_router[five].size(), 2u);
  for (const std::size_t id : space.by_router[five]) {
    EXPECT_EQ(space.nodes[id].route.path.size(), 2u);
    EXPECT_EQ(space.nodes[id].route.path.back(), 9u);
  }
}

TEST(RouteSpaceTest, MinAnnouncedLenIsExact) {
  const Model model = diamond();
  const bgp::Engine engine(model);
  const RouteSpace space =
      analysis::build_route_space(engine, Prefix::for_asn(9), 9);
  // The origin holds the empty path and announces [9]: length 1.
  EXPECT_EQ(space.min_announced_len(model.dense(RouterId{9, 0})), 1u);
  // AS 1 holds [9] and announces [1 9]: length 2.
  EXPECT_EQ(space.min_announced_len(model.dense(RouterId{1, 0})), 2u);
  // AS 5 holds length-2 paths and announces length 3.
  EXPECT_EQ(space.min_announced_len(model.dense(RouterId{5, 0})), 3u);
}

TEST(RouteSpaceTest, DenyAllOnBothBranchesMakesStaticBlackhole) {
  Model model = diamond();
  const Prefix prefix = Prefix::for_asn(9);
  model.set_export_filter(RouterId{1, 0}, RouterId{5, 0}, prefix,
                          ExportFilter::kDenyAll, RouterId{5, 0});
  model.set_export_filter(RouterId{2, 0}, RouterId{5, 0}, prefix,
                          ExportFilter::kDenyAll, RouterId{5, 0});
  const bgp::Engine engine(model);
  const RouteSpace space = analysis::build_route_space(engine, prefix, 9);
  ASSERT_FALSE(space.truncated);
  EXPECT_FALSE(space.may_reach(model.dense(RouterId{5, 0})));
  EXPECT_EQ(space.min_announced_len(model.dense(RouterId{5, 0})),
            std::numeric_limits<std::size_t>::max());

  analysis::Diagnostics out;
  EXPECT_EQ(analysis::report_blackholes(model, space, out), 1u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.front().code, analysis::codes::kStaticBlackhole);
  EXPECT_NE(out.front().message.find("5.0"), std::string::npos);
}

TEST(RouteSpaceTest, TruncationWithdrawsBlackholeClaims) {
  const Model model = diamond();
  const bgp::Engine engine(model);
  RouteSpaceOptions options;
  options.max_nodes = 2;
  const RouteSpace space =
      analysis::build_route_space(engine, Prefix::for_asn(9), 9, options);
  ASSERT_TRUE(space.truncated);
  analysis::Diagnostics out;
  EXPECT_EQ(analysis::report_blackholes(model, space, out), 0u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.front().code, analysis::codes::kRouteSpaceTruncated);
}

TEST(RouteSpaceTest, RelaxedReachabilityContainsMayReach) {
  Model model = diamond();
  const Prefix prefix = Prefix::for_asn(9);
  // One kDenyAll branch: 5 stays may-reachable (and relaxed-reachable)
  // through the other.
  model.set_export_filter(RouterId{1, 0}, RouterId{5, 0}, prefix,
                          ExportFilter::kDenyAll, RouterId{5, 0});
  const bgp::Engine engine(model);
  const RouteSpace space = analysis::build_route_space(engine, prefix, 9);
  const std::vector<char> relaxed =
      analysis::relaxed_reachable(model, model.find_policy(prefix), 9);
  for (Model::Dense r = 0; r < model.num_routers(); ++r) {
    if (space.may_reach(r)) {
      EXPECT_NE(relaxed[r], 0) << model.router_id(r).str();
    }
  }
  // Cutting BOTH branches with kDenyAll severs even relaxed reachability.
  model.set_export_filter(RouterId{2, 0}, RouterId{5, 0}, prefix,
                          ExportFilter::kDenyAll, RouterId{5, 0});
  const std::vector<char> cut =
      analysis::relaxed_reachable(model, model.find_policy(prefix), 9);
  EXPECT_EQ(cut[model.dense(RouterId{5, 0})], 0);
}

TEST(RouteSpaceTest, DeriveOriginFollowsConvention) {
  const Model model = diamond();
  EXPECT_EQ(analysis::derive_origin(model, Prefix::for_asn(9)), 9u);
  // AS 77 not in the model: underivable.
  EXPECT_EQ(analysis::derive_origin(model, Prefix::for_asn(77)),
            nb::kInvalidAsn);
  // A prefix outside the convention entirely.
  EXPECT_EQ(analysis::derive_origin(model, *Prefix::parse("192.168.7.0/24")),
            nb::kInvalidAsn);
}

TEST(GuaranteedTest, DiamondGuaranteesOriginNeighborsOnly) {
  // The under-approximation is conservative on the diamond: 1 and 2 are
  // guaranteed (the origin transmits its one route to them), but 5 is NOT,
  // even though it always installs in practice -- may(1) contains the
  // walked-around route [5 2 9], which 1 cannot transmit back to 5 (AS
  // loop), so "every route in may(1) transmits" fails, and symmetrically
  // for 2.  This pins the promised direction of the approximation.
  const Model model = diamond();
  const bgp::Engine engine(model);
  const RouteSpace space =
      analysis::build_route_space(engine, Prefix::for_asn(9), 9);
  const std::vector<char> guaranteed =
      analysis::guaranteed_routers(engine, space);
  EXPECT_NE(guaranteed[model.dense(RouterId{9, 0})], 0);
  EXPECT_NE(guaranteed[model.dense(RouterId{1, 0})], 0);
  EXPECT_NE(guaranteed[model.dense(RouterId{2, 0})], 0);
  EXPECT_EQ(guaranteed[model.dense(RouterId{5, 0})], 0);
}

/// 9 - 1 - 5 chain with a 9 - 8 - 1 detour: may(1) = {[9], [8 9]}, and both
/// transmit to the leaf 5 (no loops through it).
Model chain_with_detour() {
  topo::AsGraph graph;
  graph.add_edge(9, 1);
  graph.add_edge(9, 8);
  graph.add_edge(8, 1);
  graph.add_edge(1, 5);
  return Model::one_router_per_as(graph);
}

TEST(GuaranteedTest, FilterThatCanDropSomeRouteBlocksTheGuarantee) {
  Model model = chain_with_detour();
  const Prefix prefix = Prefix::for_asn(9);
  {
    const bgp::Engine engine(model);
    const RouteSpace space = analysis::build_route_space(engine, prefix, 9);
    const std::vector<char> guaranteed =
        analysis::guaranteed_routers(engine, space);
    EXPECT_NE(guaranteed[model.dense(RouterId{5, 0})], 0);
  }
  // deny-below 3 on 1->5 drops the length-2 announcement [1 9] but passes
  // [1 8 9]: 1 no longer transmits EVERYTHING it may select, so 5 loses
  // the guarantee -- while staying MAY-reachable through the long route.
  model.set_export_filter(RouterId{1, 0}, RouterId{5, 0}, prefix, 3,
                          RouterId{5, 0});
  const bgp::Engine engine(model);
  const RouteSpace space = analysis::build_route_space(engine, prefix, 9);
  const std::vector<char> guaranteed =
      analysis::guaranteed_routers(engine, space);
  EXPECT_EQ(guaranteed[model.dense(RouterId{5, 0})], 0);
  EXPECT_TRUE(space.may_reach(model.dense(RouterId{5, 0})));
}

TEST(GuaranteedTest, TruncationCollapsesToOriginRouters) {
  const Model model = diamond();
  const bgp::Engine engine(model);
  RouteSpaceOptions options;
  options.max_nodes = 2;
  const RouteSpace space =
      analysis::build_route_space(engine, Prefix::for_asn(9), 9, options);
  ASSERT_TRUE(space.truncated);
  const std::vector<char> guaranteed =
      analysis::guaranteed_routers(engine, space);
  for (Model::Dense r = 0; r < model.num_routers(); ++r) {
    EXPECT_EQ(guaranteed[r] != 0, model.router_id(r).asn() == 9)
        << model.router_id(r).str();
  }
}

TEST(GuaranteedTest, GuaranteedRoutersInstallUnderFullSimulation) {
  // Dynamic soundness: on a fitted model, every router the static analysis
  // guarantees must actually hold a best route after full simulation, and
  // every router that holds one must be MAY-reachable.
  core::Pipeline pipeline =
      core::run_full_pipeline(core::PipelineConfig::with(0.06, 13));
  ASSERT_TRUE(pipeline.refine_result.success);
  const bgp::Engine engine(pipeline.model);
  RouteSpaceOptions generous;
  generous.max_paths_per_router = 4096;
  generous.max_nodes = 1u << 20;
  std::size_t prefixes_checked = 0;
  for (const auto& [prefix, policy] : pipeline.model.prefix_policies()) {
    if (policy.empty()) continue;
    const nb::Asn origin = analysis::derive_origin(pipeline.model, prefix);
    ASSERT_NE(origin, nb::kInvalidAsn);
    const RouteSpace space =
        analysis::build_route_space(engine, prefix, origin, generous);
    const std::vector<char> guaranteed =
        analysis::guaranteed_routers(engine, space);
    const bgp::PrefixSimResult sim = engine.run(prefix, origin);
    ASSERT_TRUE(sim.converged);
    for (Model::Dense r = 0; r < pipeline.model.num_routers(); ++r) {
      const bool installed = sim.state(r).best_route() != nullptr;
      if (guaranteed[r] != 0) {
        EXPECT_TRUE(installed)
            << prefix.str() << " " << pipeline.model.router_id(r).str()
            << ": guaranteed but uninstalled";
      }
      if (installed && !space.truncated) {
        EXPECT_TRUE(space.may_reach(r))
            << prefix.str() << " " << pipeline.model.router_id(r).str()
            << ": installed outside the MAY set";
      }
    }
    ++prefixes_checked;
  }
  EXPECT_GT(prefixes_checked, 0u);
}

}  // namespace
