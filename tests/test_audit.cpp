// Static policy auditor (analysis/policy_audit + analysis/dispute_graph):
// safety verdicts, dead-policy detection, diversity bounds, and the
// behavior-preservation guarantee of prune_dead_policies.
#include "analysis/policy_audit.hpp"

#include <gtest/gtest.h>

#include "analysis/check_convergence.hpp"
#include "analysis/fixtures.hpp"
#include "core/pipeline.hpp"
#include "topology/as_graph.hpp"

namespace {

using analysis::AuditOptions;
using analysis::AuditResult;
using nb::Prefix;
using nb::RouterId;
using topo::Model;

/// Origin AS 9 reachable from AS 5 via two branches: 9 - 1 - 5, 9 - 2 - 5.
Model diamond() {
  topo::AsGraph graph;
  graph.add_edge(9, 1);
  graph.add_edge(9, 2);
  graph.add_edge(1, 5);
  graph.add_edge(2, 5);
  return Model::one_router_per_as(graph);
}

TEST(DisputeGraphTest, PolicyFreeDiamondIsSafe) {
  const Model model = diamond();
  const bgp::Engine engine(model);
  const analysis::DisputeGraph graph =
      analysis::build_dispute_graph(engine, Prefix::for_asn(9), 9);
  EXPECT_FALSE(graph.truncated);
  EXPECT_GT(graph.nodes.size(), 0u);
  // Tie-break preferences create dispute arcs, but never a cycle: without
  // local-pref games every arc chain strictly shortens the path.
  EXPECT_TRUE(analysis::find_dispute_cycle(graph).empty());
}

TEST(DisputeGraphTest, EnumerationCapsSetTruncated) {
  const Model model = diamond();
  const bgp::Engine engine(model);
  analysis::DisputeGraphOptions options;
  options.max_nodes = 2;
  const analysis::DisputeGraph graph =
      analysis::build_dispute_graph(engine, Prefix::for_asn(9), 9, options);
  EXPECT_TRUE(graph.truncated);
  EXPECT_LE(graph.nodes.size(), 2u);
}

TEST(AuditTest, BadGadgetFixtureTripsDisputeWheel) {
  const auto model = analysis::audit_fixture("bad-gadget");
  ASSERT_TRUE(model.has_value());
  const AuditResult result = analysis::audit_model(*model);
  EXPECT_TRUE(analysis::contains_code(result.diagnostics,
                                      analysis::codes::kDisputeWheel));
  EXPECT_TRUE(analysis::has_errors(result.diagnostics));
  EXPECT_EQ(result.wheels, 1u);
  ASSERT_EQ(result.prefixes.size(), 1u);
  EXPECT_TRUE(result.prefixes.front().wheel);
}

TEST(AuditTest, ShadowedFilterFixtureTripsD601) {
  const auto model = analysis::audit_fixture("shadowed-filter");
  ASSERT_TRUE(model.has_value());
  const AuditResult result = analysis::audit_model(*model);
  EXPECT_TRUE(analysis::contains_code(result.diagnostics,
                                      analysis::codes::kFilterShadowed));
  EXPECT_FALSE(analysis::has_errors(result.diagnostics));  // advisory
  EXPECT_EQ(result.dead_filters, 1u);
  EXPECT_EQ(result.wheels, 0u);
}

TEST(AuditTest, EveryAuditFixtureTripsItsExpectedCode) {
  for (const std::string_view name : analysis::audit_fixture_names()) {
    const auto model = analysis::audit_fixture(name);
    ASSERT_TRUE(model.has_value()) << name;
    const AuditResult result = analysis::audit_model(*model);
    EXPECT_TRUE(analysis::contains_code(
        result.diagnostics, analysis::audit_fixture_expected_code(name)))
        << name;
  }
}

TEST(AuditTest, CleanModelAuditsClean) {
  Model model = diamond();
  // A live ranking: AS 2 has a session to 5.0 and can announce the prefix.
  model.set_ranking(RouterId{5, 0}, Prefix::for_asn(9), 2);
  const AuditResult result = analysis::audit_model(model);
  EXPECT_TRUE(result.diagnostics.empty())
      << analysis::render_diagnostics(result.diagnostics);
  EXPECT_EQ(result.wheels, 0u);
  EXPECT_EQ(result.dead_filters, 0u);
  EXPECT_EQ(result.dead_rankings, 0u);
}

TEST(AuditTest, DiversityBoundCountsDistinctPermittedPaths) {
  Model model = diamond();
  model.set_ranking(RouterId{5, 0}, Prefix::for_asn(9), 2);  // keep overlay
  const AuditResult result = analysis::audit_model(model);
  ASSERT_EQ(result.prefixes.size(), 1u);
  const auto& bounds = result.prefixes.front().diversity_bound;
  // AS 5 can receive [1 9] and [2 9]; no policy removes either.
  ASSERT_TRUE(bounds.count(5));
  EXPECT_EQ(bounds.at(5), 2u);
}

TEST(AuditTest, NeverMatchingFilterTripsD600) {
  // Chain 9 - 1 - 5: the shortest arriving path at 5.0 already has length
  // 2, so deny_below_len=2 can never block anything.
  topo::AsGraph graph;
  graph.add_edge(9, 1);
  graph.add_edge(1, 5);
  Model model = Model::one_router_per_as(graph);
  model.set_export_filter(RouterId{1, 0}, RouterId{5, 0}, Prefix::for_asn(9),
                          2, RouterId{5, 0});
  const AuditResult result = analysis::audit_model(model);
  EXPECT_TRUE(analysis::contains_code(result.diagnostics,
                                      analysis::codes::kFilterNeverBlocks));

  // Raising the threshold to 3 blocks the length-2 path: no longer dead.
  model.set_export_filter(RouterId{1, 0}, RouterId{5, 0}, Prefix::for_asn(9),
                          3, RouterId{5, 0});
  const AuditResult live = analysis::audit_model(model);
  EXPECT_FALSE(analysis::contains_code(live.diagnostics,
                                       analysis::codes::kFilterNeverBlocks));
}

TEST(AuditTest, UnreachablePreferredNeighborTripsD610) {
  Model model = diamond();
  // AS 9 is the origin itself; AS 1 is fine -- but AS 3 has no session to
  // 5.0, so preferring it can never matter.
  model.set_ranking(RouterId{5, 0}, Prefix::for_asn(9), 3);
  const AuditResult result = analysis::audit_model(model);
  EXPECT_TRUE(analysis::contains_code(result.diagnostics,
                                      analysis::codes::kRankingDead));
  EXPECT_EQ(result.dead_rankings, 1u);
}

TEST(AuditTest, DeadRankingMaskingADefaultIsKept) {
  // The engine consults the default ranking only when no per-prefix rule
  // exists, so a dead per-prefix rule still changes behavior by masking:
  // it must be neither reported nor pruned.
  Model model = diamond();
  model.set_ranking(RouterId{5, 0}, Prefix::for_asn(9), 3);  // dead on its own
  model.set_default_ranking(RouterId{5, 0}, 2);
  const AuditResult result = analysis::audit_model(model);
  EXPECT_FALSE(analysis::contains_code(result.diagnostics,
                                       analysis::codes::kRankingDead));

  const analysis::PruneResult pruned = analysis::prune_dead_policies(model);
  EXPECT_EQ(pruned.rules_removed(), 0u);
  EXPECT_EQ(model.policy_stats().rankings, 1u);
}

TEST(AuditTest, UnderivablePrefixIsSkippedWithS502) {
  Model model = diamond();
  const Prefix alien = *Prefix::parse("192.168.7.0/24");
  model.set_ranking(RouterId{5, 0}, alien, 2);
  const AuditResult result = analysis::audit_model(model);
  EXPECT_TRUE(analysis::contains_code(result.diagnostics,
                                      analysis::codes::kAuditSkippedPrefix));
  EXPECT_TRUE(result.prefixes.empty());

  // prune must leave the unanalyzable overlay untouched.
  const analysis::PruneResult pruned = analysis::prune_dead_policies(model);
  EXPECT_EQ(pruned.rules_removed(), 0u);
  EXPECT_EQ(model.policy_stats().rankings, 1u);
}

TEST(AuditTest, TruncationSurfacesAsS501) {
  Model model = diamond();
  model.set_ranking(RouterId{5, 0}, Prefix::for_asn(9), 2);
  AuditOptions options;
  options.graph.max_nodes = 2;
  const AuditResult result = analysis::audit_model(model, options);
  EXPECT_TRUE(analysis::contains_code(result.diagnostics,
                                      analysis::codes::kAuditTruncated));
  EXPECT_TRUE(result.truncated);
}

TEST(PruneTest, RemovesDeadRulesAndDropsEmptyOverlays) {
  topo::AsGraph graph;
  graph.add_edge(9, 1);
  graph.add_edge(1, 5);
  graph.add_edge(5, 6);
  Model model = Model::one_router_per_as(graph);
  const Prefix prefix = Prefix::for_asn(9);
  // Dead: can never block (shortest arriving length at 5.0 is 2 already).
  model.set_export_filter(RouterId{1, 0}, RouterId{5, 0}, prefix, 2,
                          RouterId{5, 0});
  // Live: blocks the length-3 path into 6.0.  Keeps the overlay non-empty.
  model.set_export_filter(RouterId{5, 0}, RouterId{6, 0}, prefix,
                          topo::ExportFilter::kDenyAll, RouterId{6, 0});
  // Dead: preferred AS 2 has no session to 5.0.
  model.set_ranking(RouterId{5, 0}, prefix, 2);

  const analysis::PruneResult pruned = analysis::prune_dead_policies(model);
  EXPECT_EQ(pruned.filters_removed, 1u);
  EXPECT_EQ(pruned.rankings_removed, 1u);
  EXPECT_EQ(pruned.policies_dropped, 0u);
  const auto stats = model.policy_stats();
  EXPECT_EQ(stats.filters, 1u);
  EXPECT_EQ(stats.rankings, 0u);

  // Second overlay made entirely of one dead rule: pruned AND dropped.
  model.set_ranking(RouterId{5, 0}, Prefix::for_asn(6), 2);
  const analysis::PruneResult second = analysis::prune_dead_policies(model);
  EXPECT_EQ(second.rankings_removed, 1u);
  EXPECT_EQ(second.policies_dropped, 1u);
  EXPECT_EQ(model.policy_stats().prefixes_with_policy, 1u);
}

TEST(PruneTest, FittedModelStaysReproducibleAfterPruning) {
  // The acceptance-criterion test: fit a model end to end, prune, and prove
  // behavior preservation -- every training path stays reproducible (same
  // evaluation counts) and each re-run simulation is still a fixed point
  // (check_convergence finds nothing).
  core::PipelineConfig config = core::PipelineConfig::with(0.08, 11);
  config.refine.validate = true;
  core::Pipeline pipeline = core::run_full_pipeline(config);
  ASSERT_TRUE(pipeline.refine_result.success);

  core::EvalOptions eval;
  const core::EvalResult before =
      core::evaluate_predictions(pipeline.model, pipeline.split.training, eval);

  const analysis::PruneResult pruned =
      analysis::prune_dead_policies(pipeline.model);

  const core::EvalResult after =
      core::evaluate_predictions(pipeline.model, pipeline.split.training, eval);
  EXPECT_EQ(before.stats.total, after.stats.total);
  EXPECT_EQ(before.stats.rib_out, after.stats.rib_out);
  EXPECT_EQ(before.stats.potential_rib_out, after.stats.potential_rib_out);
  EXPECT_EQ(before.stats.rib_in_only, after.stats.rib_in_only);
  EXPECT_EQ(before.stats.not_available, after.stats.not_available);

  // Every pruned prefix still simulates to a fixed point of the pruned model.
  const bgp::Engine engine(pipeline.model);
  for (const auto& [prefix, policy] : pipeline.model.prefix_policies()) {
    const nb::Asn origin = (prefix.network().value() >> 8) & 0xffffu;
    ASSERT_EQ(Prefix::for_asn(origin), prefix);
    const bgp::PrefixSimResult sim = engine.run(prefix, origin);
    const analysis::Diagnostics convergence =
        analysis::check_convergence(engine, sim);
    EXPECT_TRUE(convergence.empty())
        << prefix.str() << ": "
        << analysis::render_diagnostics(convergence);
  }
  // Informational: report how much the pass actually trimmed.
  SUCCEED() << "pruned " << pruned.rules_removed() << " rules, dropped "
            << pruned.policies_dropped << " overlays";
}

TEST(AuditJsonTest, SerializerEscapesAndCounts) {
  analysis::Diagnostics diagnostics;
  diagnostics.push_back({analysis::Severity::kError, "S500-dispute-wheel",
                         "prefix \"x\"", "line1\nline2\ttab"});
  diagnostics.push_back({analysis::Severity::kWarning, "D600-filter-never-blocks",
                         "", "plain"});
  const std::string json =
      analysis::diagnostics_to_json("audit", "unit \\ test", diagnostics);
  EXPECT_NE(json.find("\"tool\": \"audit\""), std::string::npos);
  EXPECT_NE(json.find("\"subject\": \"unit \\\\ test\""), std::string::npos);
  EXPECT_NE(json.find("\"errors\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"warnings\": 1"), std::string::npos);
  EXPECT_NE(json.find("prefix \\\"x\\\""), std::string::npos);
  EXPECT_NE(json.find("line1\\nline2\\ttab"), std::string::npos);
  EXPECT_EQ(json.find('\n'), json.size() - 1);  // single trailing newline
}

TEST(RefineIntegrationTest, PruneDeadConfigPreservesConvergence) {
  core::PipelineConfig config = core::PipelineConfig::with(0.08, 7);
  config.refine.validate = true;
  config.refine.prune_dead = true;
  core::Pipeline pipeline = core::run_full_pipeline(config);
  ASSERT_TRUE(pipeline.refine_result.success);
  // The refine-time prune must not cost a single training match: success
  // implies every training path is still a RIB-Out match after pruning,
  // because evaluation runs on the pruned model.
  EXPECT_EQ(pipeline.training_eval.stats.rib_out,
            pipeline.training_eval.stats.total);
  EXPECT_TRUE(pipeline.refine_result.diagnostics.empty())
      << analysis::render_diagnostics(pipeline.refine_result.diagnostics);
  // The pipeline-level audit ran and covered every policy-bearing prefix.
  EXPECT_EQ(pipeline.audit.wheels, 0u);
  EXPECT_GT(pipeline.audit.prefixes.size(), 0u);
}

}  // namespace
