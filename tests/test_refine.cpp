// Refinement-engine tests beyond the paper's worked examples: reservation
// semantics, per-prefix isolation, idempotence, convergence on generated
// data, and bookkeeping of the iteration log.
#include <gtest/gtest.h>

#include "bgp/engine.hpp"
#include "core/pipeline.hpp"
#include "core/predict.hpp"
#include "core/refine.hpp"

namespace {

using data::BgpDataset;
using nb::Asn;
using nb::Prefix;
using nb::RouterId;
using topo::AsPath;
using topo::Model;

BgpDataset dataset_of(std::vector<std::pair<Asn, AsPath>> records) {
  BgpDataset dataset;
  std::map<Asn, std::uint32_t> points;
  for (auto& [observer, path] : records) {
    if (!points.count(observer)) {
      points[observer] = static_cast<std::uint32_t>(dataset.points.size());
      dataset.points.push_back({RouterId{observer, 0}});
    }
    dataset.records.push_back({points[observer], path.origin(), path});
  }
  return dataset;
}

// Refinement in tests always runs with the analysis hooks on: every
// simulated fixed point is checked and the mutated model re-linted.
core::RefineConfig validated_config() {
  core::RefineConfig config;
  config.validate = true;
  return config;
}

TEST(RefineTest, AlreadyConsistentModelUnchanged) {
  topo::AsGraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  Model model = Model::one_router_per_as(g);
  BgpDataset training = dataset_of({{1, AsPath{1, 2, 3}}, {2, AsPath{2, 3}}});
  auto result = core::refine_model(model, training, validated_config());
  EXPECT_TRUE(result.diagnostics.empty());
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.routers_added, 0u);
  EXPECT_EQ(result.policies_changed, 0u);
  EXPECT_EQ(model.num_routers(), 3u);
  EXPECT_EQ(result.iterations, 1u);
}

TEST(RefineTest, RefinementIsIdempotent) {
  topo::AsGraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(1, 4);
  g.add_edge(4, 3);
  Model model = Model::one_router_per_as(g);
  BgpDataset training = dataset_of({{1, AsPath{1, 4, 3}}});
  auto first = core::refine_model(model, training, validated_config());
  EXPECT_TRUE(first.success);
  EXPECT_TRUE(first.diagnostics.empty());
  const std::size_t routers = model.num_routers();
  auto stats = model.policy_stats();
  auto second = core::refine_model(model, training, validated_config());
  EXPECT_TRUE(second.success);
  EXPECT_TRUE(second.diagnostics.empty());
  EXPECT_EQ(second.policies_changed, 0u);
  EXPECT_EQ(model.num_routers(), routers);
  auto stats2 = model.policy_stats();
  EXPECT_EQ(stats.filters, stats2.filters);
  EXPECT_EQ(stats.rankings, stats2.rankings);
}

TEST(RefineTest, PoliciesArePerPrefix) {
  // Fixing a path for prefix A must not change predictions for prefix B.
  topo::AsGraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(1, 4);
  g.add_edge(4, 3);
  Model model = Model::one_router_per_as(g);
  bgp::Engine engine(model);
  auto before = engine.run(Prefix::for_asn(4), 4);
  BgpDataset training = dataset_of({{1, AsPath{1, 4, 3}}});  // prefix of AS3
  auto result = core::refine_model(model, training, core::RefineConfig{});
  ASSERT_TRUE(result.success);
  auto after = engine.run(Prefix::for_asn(4), 4);
  ASSERT_EQ(before.routers.size(), after.routers.size());
  for (std::size_t r = 0; r < before.routers.size(); ++r) {
    const bgp::Route* a = before.routers[r].best_route();
    const bgp::Route* b = after.routers[r].best_route();
    ASSERT_EQ(a == nullptr, b == nullptr);
    if (a != nullptr) {
      EXPECT_EQ(a->path, b->path);
    }
  }
}

TEST(RefineTest, TwoObserversShareReservations) {
  // Both AS 1 and AS 6 observe paths through AS 2; the shared suffix at 2
  // must be served by one quasi-router, not duplicated per observer.
  topo::AsGraph g;
  g.add_edge(1, 2);
  g.add_edge(6, 2);
  g.add_edge(2, 3);
  Model model = Model::one_router_per_as(g);
  BgpDataset training =
      dataset_of({{1, AsPath{1, 2, 3}}, {6, AsPath{6, 2, 3}}});
  auto result = core::refine_model(model, training, core::RefineConfig{});
  EXPECT_TRUE(result.success);
  EXPECT_EQ(model.routers_of(2).size(), 1u);
}

TEST(RefineTest, DiversityAtIntermediateAsNeedsTwoRouters) {
  // AS 2 must propagate two different suffixes to two observers.
  topo::AsGraph g;
  g.add_edge(1, 2);
  g.add_edge(6, 2);
  g.add_edge(2, 3);
  g.add_edge(2, 4);
  g.add_edge(3, 9);
  g.add_edge(4, 9);
  Model model = Model::one_router_per_as(g);
  BgpDataset training = dataset_of(
      {{1, AsPath{1, 2, 3, 9}}, {6, AsPath{6, 2, 4, 9}}});
  auto result = core::refine_model(model, training, validated_config());
  EXPECT_TRUE(result.success) << result.unmatched_paths;
  EXPECT_TRUE(result.diagnostics.empty());
  EXPECT_EQ(model.routers_of(2).size(), 2u);
}

TEST(RefineTest, UnknownOriginCountsAsUnmatched) {
  topo::AsGraph g;
  g.add_edge(1, 2);
  Model model = Model::one_router_per_as(g);
  BgpDataset training = dataset_of({{1, AsPath{1, 77}}});  // AS 77 unknown
  auto result = core::refine_model(model, training, core::RefineConfig{});
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.unmatched_paths, 1u);
}

TEST(RefineTest, IterationLogMonotonicallyImproves) {
  topo::AsGraph g;
  for (Asn a = 1; a < 6; ++a) g.add_edge(a, a + 1);
  g.add_edge(1, 6);
  Model model = Model::one_router_per_as(g);
  BgpDataset training = dataset_of({{1, AsPath{1, 2, 3, 4, 5, 6}}});
  auto result = core::refine_model(model, training, core::RefineConfig{});
  ASSERT_TRUE(result.success);
  ASSERT_FALSE(result.log.empty());
  for (std::size_t i = 1; i < result.log.size(); ++i)
    EXPECT_GE(result.log[i].paths_matched, result.log[i - 1].paths_matched);
  EXPECT_EQ(result.log.back().paths_matched,
            result.log.back().paths_total);
}

TEST(RefineTest, CapStopsRunawayConfigurations) {
  topo::AsGraph g;
  g.add_edge(1, 4);
  g.add_edge(1, 5);
  g.add_edge(5, 4);
  Model model = Model::one_router_per_as(g);
  BgpDataset training = dataset_of({{1, AsPath{1, 4}}, {1, AsPath{1, 5, 4}}});
  core::RefineConfig config;
  config.allow_duplication = false;  // cannot succeed
  config.max_iterations = 5;
  auto result = core::refine_model(model, training, config);
  EXPECT_FALSE(result.success);
  EXPECT_LE(result.iterations, 5u);
}

TEST(RefineTest, ConvergesOnGeneratedInternet) {
  // End-to-end convergence on a small generated dataset (the quickstart
  // pipeline at reduced scale), asserting the paper's training fixpoint.
  core::PipelineConfig config = core::PipelineConfig::with(0.08, 5);
  config.refine.validate = true;
  core::Pipeline pipeline = core::make_pipeline(config);
  core::run_data_stages(pipeline);
  core::run_model_stages(pipeline);
  EXPECT_TRUE(pipeline.refine_result.success)
      << pipeline.refine_result.unmatched_paths << " unmatched";
  EXPECT_TRUE(pipeline.refine_result.diagnostics.empty())
      << analysis::render_diagnostics(pipeline.refine_result.diagnostics);
  EXPECT_TRUE(pipeline.lint.empty())
      << analysis::render_diagnostics(pipeline.lint);
  EXPECT_DOUBLE_EQ(pipeline.training_eval.stats.rib_out_rate(), 1.0);
}

TEST(RefineTest, ModelGrowthIsReported) {
  topo::AsGraph g;
  g.add_edge(1, 4);
  g.add_edge(1, 5);
  g.add_edge(5, 4);
  Model model = Model::one_router_per_as(g);
  BgpDataset training = dataset_of({{1, AsPath{1, 4}}, {1, AsPath{1, 5, 4}}});
  auto result = core::refine_model(model, training, core::RefineConfig{});
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.routers_added, model.num_routers() - 3);
  EXPECT_GT(result.policies_changed, 0u);
}

}  // namespace
