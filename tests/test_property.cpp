// Property-based sweeps (parameterized over seeds/scales): invariants that
// must hold for every generated instance, not just the examples.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "data/dataset_stats.hpp"

namespace {

using topo::Model;

// ---------------------------------------------------------------------------
// Engine invariants across random small internets.
// ---------------------------------------------------------------------------

class EngineProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  data::Internet net() const {
    data::InternetConfig config;
    config.seed = GetParam();
    config.num_tier1 = 3;
    config.num_level2 = 6;
    config.num_level3 = 10;
    config.num_stub_multi = 12;
    config.num_stub_single = 6;
    return data::generate_internet(config);
  }
};

TEST_P(EngineProperty, SimulatedBestPathsAreLoopFreeAndConnected) {
  auto internet = net();
  auto gt = data::build_ground_truth(internet, data::GroundTruthConfig{});
  bgp::Engine engine(gt.model, gt.config.engine_options());
  // Probe a handful of prefixes.
  auto ases = internet.graph.nodes();
  for (std::size_t i = 0; i < ases.size(); i += 7) {
    auto sim = engine.run(nb::Prefix::for_asn(ases[i]), ases[i]);
    ASSERT_TRUE(sim.converged);
    for (Model::Dense r = 0; r < gt.model.num_routers(); ++r) {
      const bgp::Route* best = sim.routers[r].best_route();
      if (best == nullptr) continue;
      // Loop-free including the receiving AS.
      topo::AsPath full{best->path};
      full.prepend(gt.model.router_id(r).asn());
      EXPECT_FALSE(full.has_loop()) << full.str();
      // Path ends at the origin.
      EXPECT_EQ(full.origin(), ases[i]);
      // Every consecutive pair is an AS edge.
      const auto& hops = full.hops();
      for (std::size_t k = 0; k + 1 < hops.size(); ++k)
        EXPECT_TRUE(internet.graph.has_edge(hops[k], hops[k + 1]));
    }
  }
}

TEST_P(EngineProperty, RibInHoldsAtMostOneRoutePerSender) {
  auto internet = net();
  auto gt = data::build_ground_truth(internet, data::GroundTruthConfig{});
  bgp::Engine engine(gt.model, gt.config.engine_options());
  nb::Asn origin = internet.graph.nodes().front();
  auto sim = engine.run(nb::Prefix::for_asn(origin), origin);
  for (const auto& state : sim.routers) {
    std::set<std::uint32_t> senders;
    for (const auto& entry : state.rib_in)
      EXPECT_TRUE(senders.insert(entry.sender).second);
  }
}

TEST_P(EngineProperty, GroundTruthPathsMostlyValleyFree) {
  // Ground-truth routing follows relationship policies except where weird
  // policies interfere; with weirdness off the observed paths must be 100%
  // valley-free under the ground-truth relationships.
  auto internet = net();
  data::GroundTruthConfig config;
  config.weird_as_fraction = 0.0;
  auto gt = data::build_ground_truth(internet, config);
  data::ObservationConfig obs_config;
  bgp::ThreadPool pool(1);
  auto dataset = data::observe(gt, internet, obs_config, pool);
  auto paths = dataset.all_paths();
  EXPECT_DOUBLE_EQ(
      topo::valley_free_fraction(internet.relationships, paths), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------------------
// Refinement invariants across seeds: exact training fixpoint, monotone
// iteration log, quasi-router lower bound from observed diversity.
// ---------------------------------------------------------------------------

class RefineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RefineProperty, TrainingFixpointAndDiversityLowerBound) {
  core::PipelineConfig config = core::PipelineConfig::with(0.06, GetParam());
  auto pipeline = core::run_full_pipeline(config);
  ASSERT_TRUE(pipeline.refine_result.success)
      << pipeline.refine_result.unmatched_paths;
  EXPECT_DOUBLE_EQ(pipeline.training_eval.stats.rib_out_rate(), 1.0);

  // Every AS must have at least as many quasi-routers as the max number of
  // distinct observed (training) suffixes it must select simultaneously for
  // any prefix -- Table 1's lower-bound argument.
  std::map<nb::Asn, std::size_t> need;
  for (auto& [origin, paths] : pipeline.split.training.paths_by_origin()) {
    std::map<nb::Asn, std::set<std::vector<nb::Asn>>> per_as;
    for (const auto& path : paths) {
      const auto& hops = path.hops();
      for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
        per_as[hops[i]].insert(std::vector<nb::Asn>(
            hops.begin() + static_cast<std::ptrdiff_t>(i), hops.end()));
      }
    }
    for (auto& [asn, suffixes] : per_as) {
      need[asn] = std::max(need[asn], suffixes.size());
    }
  }
  for (auto& [asn, required] : need) {
    if (!pipeline.model.has_as(asn)) continue;
    EXPECT_GE(pipeline.model.routers_of(asn).size(), required) << asn;
  }
}

TEST_P(RefineProperty, ValidationNeverBelowHalf) {
  core::PipelineConfig config = core::PipelineConfig::with(0.06, GetParam());
  auto pipeline = core::run_full_pipeline(config);
  if (pipeline.validation_eval.stats.total == 0) GTEST_SKIP();
  EXPECT_GT(pipeline.validation_eval.stats.potential_or_better_rate(), 0.5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RefineProperty,
                         ::testing::Values(11, 12, 13, 14, 15));

// ---------------------------------------------------------------------------
// Dataset statistics invariants.
// ---------------------------------------------------------------------------

class StatsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StatsProperty, DiversityHistogramsConsistent) {
  core::PipelineConfig config = core::PipelineConfig::with(0.08, GetParam());
  auto pipeline = core::make_pipeline(config);
  core::run_data_stages(pipeline);
  auto stats = data::compute_diversity(pipeline.dataset,
                                       &pipeline.internet.prefix_counts);
  EXPECT_EQ(stats.paths_per_pair.total(), stats.as_pairs);
  EXPECT_EQ(stats.prefixes_per_path.total(), stats.unique_paths);
  EXPECT_GE(stats.records, stats.unique_paths);
  // Multi-router ground truth with multiple vantage points must show route
  // diversity: some AS pair with more than one path.
  EXPECT_GT(stats.paths_per_pair.count_at_least(2), 0u);
  // Table 1 property: some AS receives >= 2 unique paths for some prefix.
  EXPECT_GE(stats.max_unique_received.max(), 2u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsProperty, ::testing::Values(21, 22, 23));

}  // namespace
