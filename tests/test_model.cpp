// Unit tests for the quasi-router model: construction, duplication,
// sessions, and per-prefix policy bookkeeping.
#include <gtest/gtest.h>

#include "topology/model.hpp"

namespace {

using nb::Prefix;
using nb::RouterId;
using topo::AsGraph;
using topo::ExportFilter;
using topo::Model;

TEST(ModelTest, OneRouterPerAs) {
  AsGraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  Model m = Model::one_router_per_as(g);
  EXPECT_EQ(m.num_routers(), 3u);
  EXPECT_EQ(m.num_sessions(), 2u);
  EXPECT_TRUE(m.has_session(RouterId{1, 0}, RouterId{2, 0}));
  EXPECT_FALSE(m.has_session(RouterId{1, 0}, RouterId{3, 0}));
  EXPECT_EQ(m.routers_of(1).size(), 1u);
}

TEST(ModelTest, AddRouterAssignsSequentialIndices) {
  Model m;
  EXPECT_EQ(m.add_router(7), (RouterId{7, 0}));
  EXPECT_EQ(m.add_router(7), (RouterId{7, 1}));
  EXPECT_EQ(m.add_router(8), (RouterId{8, 0}));
  EXPECT_EQ(m.num_ases(), 2u);
}

TEST(ModelTest, SessionsRejectSameAs) {
  Model m;
  RouterId a = m.add_router(7);
  RouterId b = m.add_router(7);
  EXPECT_THROW(m.add_session(a, b), std::invalid_argument);
}

TEST(ModelTest, SessionAddRemoveIdempotent) {
  Model m;
  RouterId a = m.add_router(1);
  RouterId b = m.add_router(2);
  m.add_session(a, b);
  m.add_session(b, a);
  EXPECT_EQ(m.num_sessions(), 1u);
  m.remove_session(a, b);
  EXPECT_EQ(m.num_sessions(), 0u);
  m.remove_session(a, b);  // no-op
  EXPECT_EQ(m.num_sessions(), 0u);
}

TEST(ModelTest, PeersSortedByRouterId) {
  Model m;
  RouterId a = m.add_router(5);
  RouterId x = m.add_router(9);
  RouterId y = m.add_router(2);
  m.add_session(a, x);
  m.add_session(a, y);
  const auto& peers = m.peers(m.dense(a));
  ASSERT_EQ(peers.size(), 2u);
  EXPECT_EQ(m.router_id(peers[0]), y);  // 2.0 < 9.0
  EXPECT_EQ(m.router_id(peers[1]), x);
}

TEST(ModelTest, DuplicateCopiesSessionsAndIgp) {
  Model m;
  RouterId a = m.add_router(1);
  RouterId b = m.add_router(2);
  RouterId c = m.add_router(3);
  m.add_session(a, b);
  m.add_session(a, c);
  m.set_igp_cost(a, b, 7);
  m.set_igp_cost(b, a, 9);
  RouterId a2 = m.duplicate_router(a);
  EXPECT_EQ(a2, (RouterId{1, 1}));
  EXPECT_TRUE(m.has_session(a2, b));
  EXPECT_TRUE(m.has_session(a2, c));
  EXPECT_EQ(m.igp_cost(m.dense(a2), m.dense(b)), 7u);
  EXPECT_EQ(m.igp_cost(m.dense(b), m.dense(a2)), 9u);
}

TEST(ModelTest, DuplicateCopiesImportFiltersWithNewOwner) {
  Model m;
  RouterId a = m.add_router(1);
  RouterId b = m.add_router(2);
  m.add_session(a, b);
  Prefix p = Prefix::for_asn(42);
  m.set_export_filter(b, a, p, 3, a);
  RouterId a2 = m.duplicate_router(a);
  const topo::PrefixPolicy* policy = m.find_policy(p);
  ASSERT_NE(policy, nullptr);
  const ExportFilter* copied =
      m.find_export_filter(m.dense(b), m.dense(a2), policy);
  ASSERT_NE(copied, nullptr);
  EXPECT_EQ(copied->deny_below_len, 3u);
  EXPECT_EQ(copied->owner_target, a2);  // re-owned by the duplicate
  // Original untouched.
  const ExportFilter* original =
      m.find_export_filter(m.dense(b), m.dense(a), policy);
  ASSERT_NE(original, nullptr);
  EXPECT_EQ(original->owner_target, a);
}

TEST(ModelTest, DuplicateCopiesExportFiltersAndRanking) {
  Model m;
  RouterId a = m.add_router(1);
  RouterId b = m.add_router(2);
  m.add_session(a, b);
  Prefix p = Prefix::for_asn(42);
  m.set_export_filter(a, b, p, ExportFilter::kDenyAll, nb::kInvalidRouterId);
  m.set_ranking(a, p, 2);
  RouterId a2 = m.duplicate_router(a);
  const topo::PrefixPolicy* policy = m.find_policy(p);
  const ExportFilter* exported =
      m.find_export_filter(m.dense(a2), m.dense(b), policy);
  ASSERT_NE(exported, nullptr);
  EXPECT_EQ(exported->deny_below_len, ExportFilter::kDenyAll);
  EXPECT_TRUE(policy->rankings.count(a2.value()));
}

TEST(ModelTest, DuplicateWithoutPolicies) {
  Model m;
  RouterId a = m.add_router(1);
  RouterId b = m.add_router(2);
  m.add_session(a, b);
  Prefix p = Prefix::for_asn(42);
  m.set_ranking(a, p, 2);
  RouterId a2 = m.duplicate_router(a, /*copy_policies=*/false);
  EXPECT_FALSE(m.find_policy(p)->rankings.count(a2.value()));
  EXPECT_TRUE(m.has_session(a2, b));
}

TEST(ModelTest, RelaxExportFilter) {
  Model m;
  RouterId a = m.add_router(1);
  RouterId b = m.add_router(2);
  m.add_session(a, b);
  Prefix p = Prefix::for_asn(42);
  m.set_export_filter(a, b, p, 5, b);
  m.relax_export_filter(a, b, p, 3);  // length-3 routes must now pass
  const ExportFilter* f =
      m.find_export_filter(m.dense(a), m.dense(b), m.find_policy(p));
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->deny_below_len, 3u);
  EXPECT_FALSE(f->blocks(3));
  EXPECT_TRUE(f->blocks(2));
  // Relaxing to a value the filter already allows is a no-op.
  m.relax_export_filter(a, b, p, 4);
  EXPECT_EQ(m.find_export_filter(m.dense(a), m.dense(b), m.find_policy(p))
                ->deny_below_len,
            3u);
}

TEST(ModelTest, ClearOwnedRulesRemovesOnlyOwned) {
  Model m;
  RouterId a = m.add_router(1);
  RouterId b = m.add_router(2);
  RouterId c = m.add_router(3);
  m.add_session(a, b);
  m.add_session(a, c);
  m.add_session(b, c);
  Prefix p = Prefix::for_asn(42);
  m.set_export_filter(b, a, p, 3, a);  // owned by a (import side of a)
  m.set_export_filter(c, a, p, 3, a);
  m.set_export_filter(c, b, p, 9, b);  // owned by b
  m.set_ranking(a, p, 2);
  m.clear_owned_rules(p, a);
  const topo::PrefixPolicy* policy = m.find_policy(p);
  EXPECT_EQ(m.find_export_filter(m.dense(b), m.dense(a), policy), nullptr);
  EXPECT_EQ(m.find_export_filter(m.dense(c), m.dense(a), policy), nullptr);
  EXPECT_NE(m.find_export_filter(m.dense(c), m.dense(b), policy), nullptr);
  EXPECT_FALSE(policy->rankings.count(a.value()));
}

TEST(ModelTest, FilterBlocksSemantics) {
  ExportFilter none;
  EXPECT_FALSE(none.blocks(0));
  ExportFilter f{3, nb::kInvalidRouterId};
  EXPECT_TRUE(f.blocks(2));
  EXPECT_FALSE(f.blocks(3));
  ExportFilter all{ExportFilter::kDenyAll, nb::kInvalidRouterId};
  EXPECT_TRUE(all.blocks(1000000));
}

TEST(ModelTest, PolicyStats) {
  Model m;
  RouterId a = m.add_router(1);
  RouterId b = m.add_router(2);
  m.add_session(a, b);
  m.set_export_filter(a, b, Prefix::for_asn(5), 2, b);
  m.set_ranking(b, Prefix::for_asn(5), 1);
  m.set_lp_override(a, Prefix::for_asn(6), 2, 150);
  auto stats = m.policy_stats();
  EXPECT_EQ(stats.prefixes_with_policy, 2u);
  EXPECT_EQ(stats.filters, 1u);
  EXPECT_EQ(stats.rankings, 1u);
  EXPECT_EQ(stats.lp_overrides, 1u);
}

TEST(ModelTest, NeighborClassStorage) {
  Model m;
  m.add_router(1);
  m.add_router(2);
  m.set_neighbor_class(1, 2, topo::NeighborClass::kCustomer);
  EXPECT_EQ(m.neighbor_class(1, 2), topo::NeighborClass::kCustomer);
  EXPECT_EQ(m.neighbor_class(2, 1), topo::NeighborClass::kUnknown);
}

TEST(ModelTest, RouterCounts) {
  Model m;
  m.add_router(1);
  m.add_router(1);
  m.add_router(2);
  auto counts = m.router_counts();
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
}

TEST(ModelTest, DenseLookupThrowsOnUnknown) {
  Model m;
  EXPECT_THROW(m.dense(RouterId{1, 0}), std::out_of_range);
}

}  // namespace
