// Propagation-engine tests on hand-built topologies: path selection,
// loop prevention, filters, MED ranking, relationship policies, hot-potato
// IGP costs and withdraw semantics.
#include <gtest/gtest.h>

#include "bgp/engine.hpp"

namespace {

using bgp::Engine;
using bgp::EngineOptions;
using bgp::PrefixSimResult;
using nb::Asn;
using nb::Prefix;
using nb::RouterId;
using topo::Model;

std::vector<Asn> best_path(const Model& m, const PrefixSimResult& sim,
                           RouterId router) {
  const bgp::Route* best = sim.routers[m.dense(router)].best_route();
  EXPECT_NE(best, nullptr) << "no best route at " << router.str();
  return best == nullptr ? std::vector<Asn>{} : best->path;
}

Model line_model() {
  // 1 -- 2 -- 3 -- 4
  topo::AsGraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  return Model::one_router_per_as(g);
}

Model diamond_model() {
  // 1 -- 2 -- 4 (short side) and 1 -- 3 -- 5 -- 4 (detour), so the
  // shortest-path choice at AS 1 is via AS 2.
  topo::AsGraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 4);
  g.add_edge(1, 3);
  g.add_edge(3, 5);
  g.add_edge(5, 4);
  return Model::one_router_per_as(g);
}

TEST(EngineTest, PropagatesAlongLine) {
  Model m = line_model();
  Engine e(m);
  auto sim = e.run(Prefix::for_asn(4), 4);
  EXPECT_TRUE(sim.converged);
  EXPECT_EQ(best_path(m, sim, RouterId{4, 0}), (std::vector<Asn>{}));
  EXPECT_EQ(best_path(m, sim, RouterId{3, 0}), (std::vector<Asn>{4}));
  EXPECT_EQ(best_path(m, sim, RouterId{2, 0}), (std::vector<Asn>{3, 4}));
  EXPECT_EQ(best_path(m, sim, RouterId{1, 0}), (std::vector<Asn>{2, 3, 4}));
}

TEST(EngineTest, ShortestPathWinsInDiamond) {
  Model m = diamond_model();
  Engine e(m);
  auto sim = e.run(Prefix::for_asn(4), 4);
  EXPECT_EQ(best_path(m, sim, RouterId{1, 0}), (std::vector<Asn>{2, 4}));
  // The longer route is still in the RIB-In.
  const auto& rib = sim.routers[m.dense(RouterId{1, 0})].rib_in;
  bool has_long = false;
  for (const auto& entry : rib)
    has_long |= entry.path == std::vector<Asn>{3, 5, 4};
  EXPECT_TRUE(has_long);
}

TEST(EngineTest, UnknownOriginYieldsEmptyResult) {
  Model m = line_model();
  Engine e(m);
  auto sim = e.run(Prefix::for_asn(99), 99);
  EXPECT_TRUE(sim.converged);
  for (const auto& state : sim.routers) EXPECT_EQ(state.best, -1);
}

TEST(EngineTest, TieBreakPrefersLowerRouterId) {
  // Two equal-length routes into AS 1 from AS 2 and AS 3; senders 2.0 < 3.0.
  topo::AsGraph g;
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 4);
  g.add_edge(3, 4);
  Model m = Model::one_router_per_as(g);
  Engine e(m);
  auto sim = e.run(Prefix::for_asn(4), 4);
  EXPECT_EQ(best_path(m, sim, RouterId{1, 0}), (std::vector<Asn>{2, 4}));
}

TEST(EngineTest, LoopPreventionDropsOwnAsn) {
  // Triangle 1-2-3, origin 3: AS 1 must never accept a route through
  // itself; every RIB-In path at 1 excludes 1.
  topo::AsGraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(1, 3);
  Model m = Model::one_router_per_as(g);
  Engine e(m);
  auto sim = e.run(Prefix::for_asn(3), 3);
  for (const auto& entry : sim.routers[m.dense(RouterId{1, 0})].rib_in)
    EXPECT_FALSE(bgp::path_contains(entry.path, 1));
}

TEST(EngineTest, DenyAllFilterBlocksPrefix) {
  Model m = line_model();
  Prefix p = Prefix::for_asn(4);
  m.set_export_filter(RouterId{3, 0}, RouterId{2, 0}, p,
                      topo::ExportFilter::kDenyAll, nb::kInvalidRouterId);
  Engine e(m);
  auto sim = e.run(p, 4);
  EXPECT_EQ(sim.routers[m.dense(RouterId{2, 0})].best, -1);
  EXPECT_EQ(sim.routers[m.dense(RouterId{1, 0})].best, -1);
  // AS 3 itself still has the route.
  EXPECT_EQ(best_path(m, sim, RouterId{3, 0}), (std::vector<Asn>{4}));
}

TEST(EngineTest, FilterIsPerPrefix) {
  Model m = line_model();
  m.set_export_filter(RouterId{3, 0}, RouterId{2, 0}, Prefix::for_asn(4),
                      topo::ExportFilter::kDenyAll, nb::kInvalidRouterId);
  Engine e(m);
  auto other = e.run(Prefix::for_asn(3), 3);  // different prefix unaffected
  EXPECT_EQ(best_path(m, other, RouterId{2, 0}), (std::vector<Asn>{3}));
}

TEST(EngineTest, DenyBelowLengthAllowsLongerRoute) {
  // Diamond: block the short path into AS 1 so the detour wins.
  Model m = diamond_model();
  Prefix p = Prefix::for_asn(4);
  // Arriving length of 2-4 at AS 1 is 2; deny below 3 blocks it.
  m.set_export_filter(RouterId{2, 0}, RouterId{1, 0}, p, 3,
                      nb::kInvalidRouterId);
  Engine e(m);
  auto sim = e.run(p, 4);
  EXPECT_EQ(best_path(m, sim, RouterId{1, 0}), (std::vector<Asn>{3, 5, 4}));
}

TEST(EngineTest, MedRankingSelectsPreferredNeighbor) {
  // AS 1 hears equal-length routes from AS 2 and AS 3; ranking prefers 3
  // even though 2.0 would win the tie-break.
  topo::AsGraph g;
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 4);
  g.add_edge(3, 4);
  Model m = Model::one_router_per_as(g);
  Prefix p = Prefix::for_asn(4);
  m.set_ranking(RouterId{1, 0}, p, 3);
  Engine e(m);
  auto sim = e.run(p, 4);
  EXPECT_EQ(best_path(m, sim, RouterId{1, 0}), (std::vector<Asn>{3, 4}));
}

TEST(EngineTest, MedRankingDoesNotOverrideLength) {
  Model m = diamond_model();
  Prefix p = Prefix::for_asn(4);
  m.set_ranking(RouterId{1, 0}, p, 3);  // prefer the longer side
  Engine e(m);
  auto sim = e.run(p, 4);
  // Path length is evaluated before MED: the short route still wins.
  EXPECT_EQ(best_path(m, sim, RouterId{1, 0}), (std::vector<Asn>{2, 4}));
}

TEST(EngineTest, LocalPrefOverrideWins) {
  Model m = diamond_model();
  Prefix p = Prefix::for_asn(4);
  m.set_lp_override(RouterId{1, 0}, p, 3, 150);  // ground-truth weirdness
  Engine e(m);
  auto sim = e.run(p, 4);
  EXPECT_EQ(best_path(m, sim, RouterId{1, 0}), (std::vector<Asn>{3, 5, 4}));
}

TEST(EngineTest, RelationshipPoliciesValleyFreeExport) {
  // 2 and 3 are both providers of 1 (origin); 2 and 3 peer.  A route
  // learned by 2 from peer 3 must not be re-exported to peer/provider, but
  // customer routes go everywhere.
  topo::AsGraph g;
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  g.add_edge(2, 5);  // 5 is 2's provider
  Model m = Model::one_router_per_as(g);
  m.set_neighbor_class(2, 1, topo::NeighborClass::kCustomer);
  m.set_neighbor_class(1, 2, topo::NeighborClass::kProvider);
  m.set_neighbor_class(3, 1, topo::NeighborClass::kCustomer);
  m.set_neighbor_class(1, 3, topo::NeighborClass::kProvider);
  m.set_neighbor_class(2, 3, topo::NeighborClass::kPeer);
  m.set_neighbor_class(3, 2, topo::NeighborClass::kPeer);
  m.set_neighbor_class(2, 5, topo::NeighborClass::kProvider);
  m.set_neighbor_class(5, 2, topo::NeighborClass::kCustomer);

  EngineOptions opts;
  opts.use_relationship_policies = true;
  Engine e(m, opts);
  auto sim = e.run(Prefix::for_asn(1), 1);
  // 2 hears 1 directly (customer) and via peer 3; customer route wins on
  // local-pref.
  EXPECT_EQ(best_path(m, sim, RouterId{2, 0}), (std::vector<Asn>{1}));
  // 5 (2's provider) must receive the customer-learned route.
  EXPECT_EQ(best_path(m, sim, RouterId{5, 0}), (std::vector<Asn>{2, 1}));
  // Peer 3's RIB-In must NOT contain a route via peer 2 learned from peer 3
  // itself... construct the sharper case: drop the 1-3 edge so 3 can only
  // hear via peer 2's peer-learned route -- which is forbidden.
  topo::AsGraph g2;
  g2.add_edge(1, 2);
  g2.add_edge(2, 3);
  g2.add_edge(2, 5);
  Model m2 = Model::one_router_per_as(g2);
  m2.set_neighbor_class(2, 1, topo::NeighborClass::kPeer);
  m2.set_neighbor_class(1, 2, topo::NeighborClass::kPeer);
  m2.set_neighbor_class(2, 3, topo::NeighborClass::kPeer);
  m2.set_neighbor_class(3, 2, topo::NeighborClass::kPeer);
  m2.set_neighbor_class(2, 5, topo::NeighborClass::kCustomer);
  m2.set_neighbor_class(5, 2, topo::NeighborClass::kProvider);
  Engine e2(m2, opts);
  auto sim2 = e2.run(Prefix::for_asn(1), 1);
  // Peer-learned route not exported to peer 3...
  EXPECT_EQ(sim2.routers[m2.dense(RouterId{3, 0})].best, -1);
  // ...but exported to customer 5.
  EXPECT_EQ(best_path(m2, sim2, RouterId{5, 0}), (std::vector<Asn>{2, 1}));
}

TEST(EngineTest, LocalPrefPrefersCustomerRoutes) {
  // AS 1 can reach 4 via customer 2 (longer) or provider 3 (shorter);
  // customer route must win on local-pref.
  topo::AsGraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 5);
  g.add_edge(5, 4);
  g.add_edge(1, 3);
  g.add_edge(3, 4);
  Model m = Model::one_router_per_as(g);
  auto set = [&](Asn of, Asn nb_, topo::NeighborClass cls) {
    m.set_neighbor_class(of, nb_, cls);
  };
  set(1, 2, topo::NeighborClass::kCustomer);
  set(2, 1, topo::NeighborClass::kProvider);
  set(1, 3, topo::NeighborClass::kProvider);
  set(3, 1, topo::NeighborClass::kCustomer);
  set(2, 5, topo::NeighborClass::kCustomer);
  set(5, 2, topo::NeighborClass::kProvider);
  set(5, 4, topo::NeighborClass::kCustomer);
  set(4, 5, topo::NeighborClass::kProvider);
  set(3, 4, topo::NeighborClass::kCustomer);
  set(4, 3, topo::NeighborClass::kProvider);
  EngineOptions opts;
  opts.use_relationship_policies = true;
  Engine e(m, opts);
  auto sim = e.run(Prefix::for_asn(4), 4);
  EXPECT_EQ(best_path(m, sim, RouterId{1, 0}), (std::vector<Asn>{2, 5, 4}));
}

TEST(EngineTest, IgpCostHotPotato) {
  // AS 1 has one router with two equal-length options; IGP cost steers away
  // from the tie-break choice.
  topo::AsGraph g;
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 4);
  g.add_edge(3, 4);
  Model m = Model::one_router_per_as(g);
  m.set_igp_cost(RouterId{1, 0}, RouterId{2, 0}, 10);
  m.set_igp_cost(RouterId{1, 0}, RouterId{3, 0}, 1);
  EngineOptions opts;
  opts.use_igp_cost = true;
  Engine e(m, opts);
  auto sim = e.run(Prefix::for_asn(4), 4);
  EXPECT_EQ(best_path(m, sim, RouterId{1, 0}), (std::vector<Asn>{3, 4}));
  // Without the option the costs are ignored.
  Engine plain(m);
  auto sim2 = plain.run(Prefix::for_asn(4), 4);
  EXPECT_EQ(best_path(m, sim2, RouterId{1, 0}), (std::vector<Asn>{2, 4}));
}

TEST(EngineTest, MultiRouterAsPropagatesDiversity) {
  // AS 2 has two quasi-routers, each preferring a different upstream; the
  // downstream AS 1 hears both paths (the paper's core motivation).
  topo::AsGraph g;
  g.add_edge(2, 3);
  g.add_edge(2, 4);
  g.add_edge(3, 9);
  g.add_edge(4, 9);
  g.add_edge(1, 2);
  Model m = Model::one_router_per_as(g);
  RouterId r2b = m.duplicate_router(RouterId{2, 0});
  Prefix p = Prefix::for_asn(9);
  m.set_ranking(RouterId{2, 0}, p, 3);
  m.set_ranking(r2b, p, 4);
  Engine e(m);
  auto sim = e.run(p, 9);
  std::set<std::vector<Asn>> seen;
  for (const auto& entry : sim.routers[m.dense(RouterId{1, 0})].rib_in)
    seen.insert(entry.path);
  EXPECT_TRUE(seen.count({2, 3, 9}));
  EXPECT_TRUE(seen.count({2, 4, 9}));
}

TEST(EngineTest, WithdrawOnFilteredBestChange) {
  // AS 3 first advertises its short route to 2; a filter then forces 3 to
  // use a path through 2 itself, which 2 must reject (loop) -- net effect:
  // 2 loses the route entirely and must see a withdraw, not a stale entry.
  // Construct: 2-3, 3-4, 2-4. Prefix at 4. Filter 4->3 deny-all: 3 can only
  // reach 4 via 2. Then 3's export to 2 contains AS 2 -> dropped.
  topo::AsGraph g;
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(2, 4);
  Model m = Model::one_router_per_as(g);
  Prefix p = Prefix::for_asn(4);
  m.set_export_filter(RouterId{4, 0}, RouterId{3, 0}, p,
                      topo::ExportFilter::kDenyAll, nb::kInvalidRouterId);
  Engine e(m);
  auto sim = e.run(p, 4);
  EXPECT_TRUE(sim.converged);
  EXPECT_EQ(best_path(m, sim, RouterId{3, 0}), (std::vector<Asn>{2, 4}));
  // 2's RIB-In has only the direct route (no entry from 3).
  const auto& rib = sim.routers[m.dense(RouterId{2, 0})].rib_in;
  ASSERT_EQ(rib.size(), 1u);
  EXPECT_EQ(rib[0].path, (std::vector<Asn>{4}));
}

TEST(EngineTest, DeterministicAcrossRuns) {
  Model m = diamond_model();
  Engine e(m);
  auto a = e.run(Prefix::for_asn(4), 4);
  auto b = e.run(Prefix::for_asn(4), 4);
  ASSERT_EQ(a.routers.size(), b.routers.size());
  for (std::size_t i = 0; i < a.routers.size(); ++i) {
    EXPECT_EQ(a.routers[i].best, b.routers[i].best);
    ASSERT_EQ(a.routers[i].rib_in.size(), b.routers[i].rib_in.size());
    for (std::size_t j = 0; j < a.routers[i].rib_in.size(); ++j)
      EXPECT_EQ(a.routers[i].rib_in[j].path, b.routers[i].rib_in[j].path);
  }
}

TEST(EngineTest, MessageCountingAndCap) {
  Model m = line_model();
  EngineOptions opts;
  opts.message_cap_factor = 0;  // absurd cap -> flagged as non-converged
  Engine e(m, opts);
  auto sim = e.run(Prefix::for_asn(4), 4);
  EXPECT_FALSE(sim.converged);
  Engine normal(m);
  auto ok = normal.run(Prefix::for_asn(4), 4);
  EXPECT_TRUE(ok.converged);
  EXPECT_GT(ok.messages, 0u);
}

TEST(EngineTest, DivergenceGuardTripIsAStructuredOutcome) {
  // A cap trip must leave callers with everything needed to report it:
  // the threshold that was in force, the message count that hit it, and
  // the activations processed before the guard fired.
  Model m = line_model();
  EngineOptions opts;
  opts.message_cap_factor = 0;
  Engine e(m, opts);
  auto sim = e.run(Prefix::for_asn(4), 4);
  EXPECT_FALSE(sim.converged);
  EXPECT_EQ(sim.message_cap, 0u);
  EXPECT_GE(sim.messages, sim.message_cap);
  EXPECT_GT(sim.activations, 0u);

  Engine normal(m);
  auto ok = normal.run(Prefix::for_asn(4), 4);
  EXPECT_TRUE(ok.converged);
  EXPECT_GT(ok.message_cap, 0u);
  EXPECT_LT(ok.messages, ok.message_cap);
  EXPECT_GE(ok.activations, m.num_routers());
}

TEST(EngineTest, ModelMutationPickedUpBetweenRuns) {
  Model m = line_model();
  Engine e(m);
  auto before = e.run(Prefix::for_asn(4), 4);
  EXPECT_NE(before.routers[m.dense(RouterId{1, 0})].best, -1);
  m.set_export_filter(RouterId{2, 0}, RouterId{1, 0}, Prefix::for_asn(4),
                      topo::ExportFilter::kDenyAll, nb::kInvalidRouterId);
  auto after = e.run(Prefix::for_asn(4), 4);
  EXPECT_EQ(after.routers[m.dense(RouterId{1, 0})].best, -1);
}

}  // namespace
