// Decision-step explanations (bgp/explain): every elimination step the
// model's decision process can report must surface correctly annotated --
// in particular the MED ranking comparison and the final router-id
// tie-break, the two steps the paper's refinement heuristic leans on.
#include "bgp/explain.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "bgp/decision.hpp"
#include "topology/as_graph.hpp"

namespace {

using bgp::DecisionStep;
using nb::Prefix;
using nb::RouterId;
using topo::Model;

/// Origin AS 9 reachable from AS 5 via two equal-length branches:
///   9 - 1 - 5   and   9 - 2 - 5.
Model diamond() {
  topo::AsGraph graph;
  graph.add_edge(9, 1);
  graph.add_edge(9, 2);
  graph.add_edge(1, 5);
  graph.add_edge(2, 5);
  return Model::one_router_per_as(graph);
}

bgp::RouteExplanation explain_at(const Model& model, nb::Asn observer,
                                 nb::Asn origin) {
  const bgp::Engine engine(model);
  const bgp::PrefixSimResult sim = engine.run(Prefix::for_asn(origin), origin);
  return bgp::explain_selection(model, sim, model.routers_of(observer).front());
}

const bgp::RouteExplanation::Candidate* candidate_via(
    const bgp::RouteExplanation& explanation, const Model& model,
    nb::Asn sender_as) {
  for (const auto& candidate : explanation.candidates) {
    if (model.router_id(candidate.route.sender).asn() == sender_as)
      return &candidate;
  }
  return nullptr;
}

TEST(ExplainTest, TieBreakElimination) {
  // No policies: both branches tie down to the last step, and the lower
  // announcing router id (AS 1's router) must win.
  const Model model = diamond();
  const auto explanation = explain_at(model, 5, 9);
  ASSERT_EQ(explanation.candidates.size(), 2u);
  EXPECT_TRUE(explanation.candidates.front().is_best);
  EXPECT_EQ(model.router_id(explanation.candidates.front().route.sender).asn(),
            1u);
  const auto* loser = candidate_via(explanation, model, 2);
  ASSERT_NE(loser, nullptr);
  EXPECT_FALSE(loser->is_best);
  EXPECT_EQ(loser->lost_at, DecisionStep::kTieBreak);

  const std::string text = explanation.str(model);
  EXPECT_NE(text.find("BEST"), std::string::npos);
  EXPECT_NE(text.find("lost(lowest-router-id)"), std::string::npos);
}

TEST(ExplainTest, MedRankingElimination) {
  // A MED ranking preferring AS 2 overturns the tie-break: the AS 1 branch
  // now loses at the (always-compared) MED step.
  Model model = diamond();
  model.set_ranking(RouterId{5, 0}, Prefix::for_asn(9), 2);
  const auto explanation = explain_at(model, 5, 9);
  ASSERT_EQ(explanation.candidates.size(), 2u);
  EXPECT_TRUE(explanation.candidates.front().is_best);
  EXPECT_EQ(model.router_id(explanation.candidates.front().route.sender).asn(),
            2u);
  const auto* loser = candidate_via(explanation, model, 1);
  ASSERT_NE(loser, nullptr);
  EXPECT_EQ(loser->lost_at, DecisionStep::kMed);
  EXPECT_NE(explanation.str(model).find("lost(med)"), std::string::npos);
}

TEST(ExplainTest, LocalPrefElimination) {
  // A local-pref override outranks everything, including the MED ranking.
  Model model = diamond();
  model.set_ranking(RouterId{5, 0}, Prefix::for_asn(9), 1);
  model.set_lp_override(RouterId{5, 0}, Prefix::for_asn(9), 2, 200);
  const auto explanation = explain_at(model, 5, 9);
  ASSERT_EQ(explanation.candidates.size(), 2u);
  EXPECT_EQ(model.router_id(explanation.candidates.front().route.sender).asn(),
            2u);
  const auto* loser = candidate_via(explanation, model, 1);
  ASSERT_NE(loser, nullptr);
  EXPECT_EQ(loser->lost_at, DecisionStep::kLocalPref);
}

TEST(ExplainTest, PathLengthElimination) {
  // Lengthen the AS 2 branch (9 - 3 - 2 - 5): it now loses on path length.
  topo::AsGraph graph;
  graph.add_edge(9, 1);
  graph.add_edge(9, 3);
  graph.add_edge(3, 2);
  graph.add_edge(1, 5);
  graph.add_edge(2, 5);
  const Model model = Model::one_router_per_as(graph);
  const auto explanation = explain_at(model, 5, 9);
  ASSERT_EQ(explanation.candidates.size(), 2u);
  EXPECT_EQ(model.router_id(explanation.candidates.front().route.sender).asn(),
            1u);
  const auto* loser = candidate_via(explanation, model, 2);
  ASSERT_NE(loser, nullptr);
  EXPECT_EQ(loser->lost_at, DecisionStep::kPathLength);
}

TEST(ExplainTest, NoRoutesRendersPlaceholder) {
  // Chain 9 - 1 - 5 with a kDenyAll filter on 1 -> 5: router 5.0 ends the
  // run with an empty RIB-In.
  topo::AsGraph graph;
  graph.add_edge(9, 1);
  graph.add_edge(1, 5);
  Model model = Model::one_router_per_as(graph);
  model.set_export_filter(RouterId{1, 0}, RouterId{5, 0}, Prefix::for_asn(9),
                          topo::ExportFilter::kDenyAll, RouterId{5, 0});
  const auto explanation = explain_at(model, 5, 9);
  EXPECT_TRUE(explanation.candidates.empty());
  EXPECT_NE(explanation.str(model).find("(no routes)"), std::string::npos);
}

TEST(ExplainTest, StrRendersOneLinePerCandidate) {
  // The rendering contract: a "router X:" header, then exactly one line
  // per candidate -- "BEST" for the winner, "lost(<step>)" for each loser
  // -- each naming the announcing router after "via".
  const Model model = diamond();
  const auto explanation = explain_at(model, 5, 9);
  ASSERT_EQ(explanation.candidates.size(), 2u);
  const std::string text = explanation.str(model);

  std::vector<std::string> lines;
  std::stringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), explanation.candidates.size() + 1);
  EXPECT_EQ(lines[0], "router " + explanation.router.str() + ":");
  std::size_t best_lines = 0;
  for (std::size_t i = 0; i < explanation.candidates.size(); ++i) {
    const auto& candidate = explanation.candidates[i];
    const std::string& rendered = lines[i + 1];
    if (candidate.is_best) {
      ++best_lines;
      EXPECT_NE(rendered.find("BEST"), std::string::npos) << rendered;
      EXPECT_EQ(rendered.find("lost("), std::string::npos) << rendered;
    } else {
      const std::string marker =
          std::string("lost(") + bgp::decision_step_name(candidate.lost_at) +
          ")";
      EXPECT_NE(rendered.find(marker), std::string::npos) << rendered;
    }
    EXPECT_NE(rendered.find(" via " +
                            model.router_id(candidate.route.sender).str()),
              std::string::npos)
        << rendered;
  }
  EXPECT_EQ(best_lines, 1u);
}

TEST(ExplainTest, CandidatesCoverEntireRibIn) {
  // Every Adj-RIB-In entry of the observed router must appear exactly once
  // in the explanation, with exactly one marked best -- the property the
  // obs elimination histogram's totals rely on.
  topo::AsGraph graph;
  graph.add_edge(9, 1);
  graph.add_edge(9, 2);
  graph.add_edge(9, 3);
  graph.add_edge(1, 5);
  graph.add_edge(2, 5);
  graph.add_edge(3, 5);
  const Model model = Model::one_router_per_as(graph);
  const bgp::Engine engine(model);
  const bgp::PrefixSimResult sim = engine.run(Prefix::for_asn(9), 9);
  const Model::Dense observer = model.routers_of(5).front();
  const auto explanation = bgp::explain_selection(model, sim, observer);
  EXPECT_EQ(explanation.candidates.size(),
            sim.state(observer).rib_in.size());
  std::size_t best = 0;
  for (const auto& candidate : explanation.candidates)
    if (candidate.is_best) ++best;
  EXPECT_EQ(best, 1u);
}

TEST(ExplainTest, BestRouteSortsFirstAmongMany) {
  // Three equal-length branches; the best must lead the candidate list and
  // every loser must carry a decisive step.
  topo::AsGraph graph;
  graph.add_edge(9, 1);
  graph.add_edge(9, 2);
  graph.add_edge(9, 3);
  graph.add_edge(1, 5);
  graph.add_edge(2, 5);
  graph.add_edge(3, 5);
  Model model = Model::one_router_per_as(graph);
  model.set_ranking(RouterId{5, 0}, Prefix::for_asn(9), 3);
  const auto explanation = explain_at(model, 5, 9);
  ASSERT_EQ(explanation.candidates.size(), 3u);
  EXPECT_TRUE(explanation.candidates.front().is_best);
  EXPECT_EQ(model.router_id(explanation.candidates.front().route.sender).asn(),
            3u);
  for (std::size_t i = 1; i < explanation.candidates.size(); ++i) {
    EXPECT_FALSE(explanation.candidates[i].is_best);
    EXPECT_EQ(explanation.candidates[i].lost_at, DecisionStep::kMed);
  }
}

}  // namespace
