// Robustness tests for the serve daemon (DESIGN.md section 15): protocol
// parsing, the full socket round-trip, concurrent-query byte-identity
// against the single-shot answer() oracle, load shedding, poisoned-query
// quarantine, the cooperative drain, and -- when the library is built with
// RD_FAULT_INJECTION -- injected handler faults (throw, bad_alloc during a
// what-if fork, stalls answered degraded within the deadline).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "netbase/json.hpp"
#include "netbase/socket.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "topology/model.hpp"

namespace {

using serve::ServeConfig;
using serve::ServeRequest;
using serve::Server;

namespace codes = analysis::codes;

topo::Model diamond() {
  topo::AsGraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 4);
  g.add_edge(1, 3);
  g.add_edge(3, 4);
  return topo::Model::one_router_per_as(g);
}

/// Blocking client: one frame out, one frame in.  Fails the test on any
/// transport error (the quarantine tests inspect the status themselves).
std::optional<std::string> roundtrip(nb::TcpStream& stream,
                                     const std::string& request) {
  std::string error;
  if (!nb::write_frame(stream, request, &error)) {
    ADD_FAILURE() << "write_frame: " << error;
    return std::nullopt;
  }
  std::string payload;
  const nb::FrameStatus status =
      nb::read_frame(stream, &payload, /*timeout_ms=*/10000, nullptr,
                     nb::kMaxFrameBytes, &error);
  if (status != nb::FrameStatus::kOk) {
    ADD_FAILURE() << "read_frame: " << static_cast<int>(status) << " "
                  << error;
    return std::nullopt;
  }
  return payload;
}

nb::TcpStream connect_to(const Server& server) {
  std::string error;
  auto stream = nb::TcpStream::connect("127.0.0.1", server.port(), &error);
  EXPECT_TRUE(stream.has_value()) << error;
  return std::move(*stream);
}

std::string status_of(const std::string& response) {
  const auto doc = nb::json_parse(response, nullptr);
  return doc ? std::string(doc->string_or("status")) : "<unparsable>";
}

std::string code_of(const std::string& response) {
  const auto doc = nb::json_parse(response, nullptr);
  return doc ? std::string(doc->string_or("code")) : "<unparsable>";
}

TEST(ServeProtocolTest, ParsesEveryOp) {
  std::string error;
  auto predict = serve::parse_request(
      R"({"op":"predict","origin":4,"vantage":1,"id":9})", &error);
  ASSERT_TRUE(predict.has_value()) << error;
  EXPECT_EQ(predict->op, ServeRequest::Op::kPredict);
  EXPECT_EQ(predict->origin, 4u);
  EXPECT_EQ(predict->vantage, 1u);
  EXPECT_EQ(predict->id, 9u);

  auto explain = serve::parse_request(
      R"({"op":"explain","origin":4,"as":1})", &error);
  ASSERT_TRUE(explain.has_value()) << error;
  EXPECT_EQ(explain->op, ServeRequest::Op::kExplain);

  auto down = serve::parse_request(
      R"({"op":"whatif","edit":"session-down","session":"1.0:2.0"})", &error);
  ASSERT_TRUE(down.has_value()) << error;
  EXPECT_EQ(down->session_a, nb::RouterId(1, 0));
  EXPECT_EQ(down->session_b, nb::RouterId(2, 0));

  auto policy = serve::parse_request(
      R"({"op":"whatif","edit":"policy-edit","origin":4,"from":2,"to":4,)"
      R"("origins":[4]})",
      &error);
  ASSERT_TRUE(policy.has_value()) << error;
  EXPECT_EQ(policy->origins, std::vector<nb::Asn>{4});

  auto health = serve::parse_request(R"({"op":"statusz"})", &error);
  ASSERT_TRUE(health.has_value()) << error;
  EXPECT_EQ(health->op, ServeRequest::Op::kHealth);
}

TEST(ServeProtocolTest, MalformedRequestsCarryActionableErrors) {
  std::string error;
  EXPECT_FALSE(serve::parse_request("{not json", &error).has_value());
  // The parser's byte position must survive into the message: a poisoned
  // frame comes back locatable, not as a generic refusal.
  EXPECT_NE(error.find("bad JSON"), std::string::npos) << error;

  EXPECT_FALSE(serve::parse_request(R"({"op":"fly"})", &error).has_value());
  EXPECT_NE(error.find("unknown op"), std::string::npos) << error;

  EXPECT_FALSE(
      serve::parse_request(R"({"op":"predict","origin":4})", &error)
          .has_value());
  EXPECT_NE(error.find("vantage"), std::string::npos) << error;

  EXPECT_FALSE(serve::parse_request(
                   R"({"op":"whatif","edit":"session-down","session":"x"})",
                   &error)
                   .has_value());
}

TEST(ServeProtocolTest, ForkKeyIgnoresPerRequestFields) {
  std::string error;
  const auto a = serve::parse_request(
      R"({"op":"whatif","edit":"policy-edit","origin":4,"from":2,"to":4,)"
      R"("id":1,"deadline_ms":50})",
      &error);
  const auto b = serve::parse_request(
      R"({"op":"whatif","edit":"policy-edit","origin":4,"from":2,"to":4,)"
      R"("id":2,"origins":[4]})",
      &error);
  ASSERT_TRUE(a.has_value() && b.has_value());
  EXPECT_EQ(a->fork_key(), b->fork_key());
  EXPECT_FALSE(a->fork_key().empty());
}

TEST(ServeServerTest, AnswersEveryOpInProcess) {
  const topo::Model model = diamond();
  Server server(model, ServeConfig{});

  const std::string predict =
      server.answer(R"({"op":"predict","origin":4,"vantage":1,"id":3})");
  EXPECT_EQ(status_of(predict), "ok");
  EXPECT_NE(predict.find("\"id\": 3"), std::string::npos);
  EXPECT_NE(predict.find("\"paths\""), std::string::npos);

  EXPECT_EQ(status_of(server.answer(R"({"op":"explain","origin":4,"as":1})")),
            "ok");
  EXPECT_EQ(status_of(server.answer(
                R"({"op":"whatif","edit":"session-down","session":"1.0:2.0"})")),
            "ok");
  EXPECT_EQ(status_of(server.answer(R"({"op":"health"})")), "ok");

  const std::string bad = server.answer("{broken");
  EXPECT_EQ(status_of(bad), "error");
  EXPECT_EQ(code_of(bad), codes::kServeBadRequest);

  const std::string unknown_as =
      server.answer(R"({"op":"predict","origin":99,"vantage":1})");
  EXPECT_EQ(status_of(unknown_as), "error");
  EXPECT_EQ(code_of(unknown_as), codes::kServeBadRequest);
}

TEST(ServeServerTest, ResponsesAreDeterministic) {
  const topo::Model model = diamond();
  Server server(model, ServeConfig{});
  const std::string request =
      R"({"op":"predict","origin":4,"vantage":1,"id":1})";
  const std::string first = server.answer(request);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(server.answer(request), first);
}

TEST(ServeServerTest, SocketRoundTripMatchesAnswerByteForByte) {
  const topo::Model model = diamond();
  ServeConfig config;
  config.threads = 2;
  Server server(model, config);
  std::string error;
  ASSERT_TRUE(server.listen(0, &error)) << error;

  // The oracle: the in-process answer for each request.  Server responses
  // carry no timings, so the socket path must reproduce them exactly.
  Server oracle(model, ServeConfig{});
  const std::vector<std::string> requests = {
      R"({"op":"predict","origin":4,"vantage":1,"id":1})",
      R"({"op":"predict","origin":2,"vantage":3,"id":2})",
      R"({"op":"explain","origin":4,"as":1,"id":3})",
      R"({"op":"whatif","edit":"session-down","session":"1.0:2.0","id":4})",
      R"({"op":"whatif","edit":"policy-edit","origin":4,"from":2,"to":4,)"
      R"("id":5})",
  };
  std::vector<std::string> expected;
  for (const std::string& request : requests)
    expected.push_back(oracle.answer(request));

  // Several client threads hammer the daemon with the same mix; every
  // response must be byte-identical to the oracle's.
  constexpr int kClients = 4;
  constexpr int kRounds = 5;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto stream = connect_to(server);
      for (int round = 0; round < kRounds; ++round) {
        const std::size_t i = (c + round) % requests.size();
        const auto response = roundtrip(stream, requests[i]);
        if (!response || *response != expected[i]) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  server.shutdown();
}

TEST(ServeServerTest, MalformedFramesAreAnsweredThenQuarantined) {
  const topo::Model model = diamond();
  ServeConfig config;
  config.quarantine_threshold = 3;
  Server server(model, config);
  std::string error;
  ASSERT_TRUE(server.listen(0, &error)) << error;

  auto stream = connect_to(server);
  // First two poisoned frames: structured R715 with the parse position,
  // connection stays usable.
  for (int i = 0; i < 2; ++i) {
    const auto response = roundtrip(stream, "{poisoned");
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(status_of(*response), "error");
    EXPECT_EQ(code_of(*response), codes::kServeBadRequest);
    EXPECT_NE(response->find("bad JSON"), std::string::npos);
  }
  // A good request in between resets nothing here -- keep poisoning.
  const auto third = roundtrip(stream, "{poisoned");
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(code_of(*third), codes::kServeQuarantine);
  // The daemon closed the connection after quarantining it.
  std::string payload;
  const nb::FrameStatus after = nb::read_frame(
      stream, &payload, /*timeout_ms=*/2000, nullptr, nb::kMaxFrameBytes);
  EXPECT_EQ(after, nb::FrameStatus::kClosed);

  // A healthy request streak on a fresh connection resets the streak
  // counter between bad frames.
  auto fresh = connect_to(server);
  EXPECT_EQ(code_of(*roundtrip(fresh, "{poisoned")), codes::kServeBadRequest);
  EXPECT_EQ(status_of(*roundtrip(fresh, R"({"op":"health"})")), "ok");
  EXPECT_EQ(code_of(*roundtrip(fresh, "{poisoned")), codes::kServeBadRequest);
  EXPECT_EQ(code_of(*roundtrip(fresh, "{poisoned")), codes::kServeBadRequest);

  EXPECT_GE(server.status().malformed, 5u);
  EXPECT_EQ(server.status().quarantined, 1u);
  server.shutdown();
}

TEST(ServeServerTest, OversizedFrameIsQuarantinedImmediately) {
  const topo::Model model = diamond();
  ServeConfig config;
  config.max_frame_bytes = 256;
  Server server(model, config);
  std::string error;
  ASSERT_TRUE(server.listen(0, &error)) << error;

  auto stream = connect_to(server);
  // Announce a payload over the cap without sending it: the stream
  // position is unrecoverable, so the daemon must answer and close.
  const std::string huge(512, 'x');
  const auto response = roundtrip(stream, huge);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(code_of(*response), codes::kServeQuarantine);
  server.shutdown();
}

TEST(ServeServerTest, HealthAnswersAndCountsServeTraffic) {
  const topo::Model model = diamond();
  Server server(model, ServeConfig{});
  std::string listen_error;
  ASSERT_TRUE(server.listen(0, &listen_error)) << listen_error;
  auto stream = connect_to(server);
  ASSERT_TRUE(roundtrip(stream, R"({"op":"predict","origin":4,"vantage":1})")
                  .has_value());
  const auto health = roundtrip(stream, R"({"op":"health","id":42})");
  ASSERT_TRUE(health.has_value());
  const auto doc = nb::json_parse(*health, nullptr);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->number_or("id", -1), 42);
  EXPECT_EQ(doc->string_or("status"), "ok");
  for (const char* key :
       {"uptime_seconds", "generation", "workers", "queue_depth",
        "queue_capacity", "draining", "peak_rss_bytes", "counters"}) {
    EXPECT_NE(doc->find(key), nullptr) << key;
  }
  const nb::JsonValue* counters = doc->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_GE(counters->number_or("requests", 0), 2);
  EXPECT_GE(counters->number_or("connections", 0), 1);
  server.shutdown();
}

TEST(ServeServerTest, DrainRejectsNewWorkAndShutsDownCleanly) {
  const topo::Model model = diamond();
  Server server(model, ServeConfig{});
  std::string error;
  ASSERT_TRUE(server.listen(0, &error)) << error;
  auto stream = connect_to(server);
  ASSERT_EQ(status_of(*roundtrip(stream,
                                 R"({"op":"predict","origin":4,"vantage":1})")),
            "ok");

  server.request_stop();
  // Existing connections survive the drain window, but new (non-health)
  // requests are rejected with R714; health still answers.
  const auto rejected =
      roundtrip(stream, R"({"op":"predict","origin":4,"vantage":1})");
  ASSERT_TRUE(rejected.has_value());
  EXPECT_EQ(status_of(*rejected), "rejected");
  EXPECT_EQ(code_of(*rejected), codes::kServeDraining);
  const auto health = roundtrip(stream, R"({"op":"health"})");
  ASSERT_TRUE(health.has_value());
  EXPECT_EQ(status_of(*health), "ok");

  server.shutdown();
  EXPECT_EQ(server.status().rejected_draining, 1u);
  // shutdown() is idempotent and the listener is gone.
  server.shutdown();
  std::string connect_error;
  EXPECT_FALSE(
      nb::TcpStream::connect("127.0.0.1", server.port(), &connect_error)
          .has_value());
}

TEST(ServeServerTest, WhatIfForkCacheHitsOnRepeatedEdits) {
  const topo::Model model = diamond();
  Server server(model, ServeConfig{});
  const std::string request =
      R"({"op":"whatif","edit":"session-down","session":"1.0:2.0"})";
  const std::string first = server.answer(request);
  EXPECT_EQ(status_of(first), "ok");
  EXPECT_EQ(server.answer(request), first);
  EXPECT_EQ(server.status().fork_misses, 1u);
  EXPECT_EQ(server.status().fork_hits, 1u);
}

#ifdef RD_FAULT_INJECTION

ServeConfig faulty_config() {
  ServeConfig config;
  config.threads = 1;
  config.fault.honor_request_faults = true;
  return config;
}

TEST(ServeFaultInjectionTest, WorkerThrowBecomesStructuredResponse) {
  const topo::Model model = diamond();
  Server server(model, faulty_config());
  const std::string response = server.answer(
      R"({"op":"predict","origin":4,"vantage":1,"fault":"throw","id":5})");
  EXPECT_EQ(status_of(response), "error");
  EXPECT_EQ(code_of(response), codes::kServeHandlerFault);
  EXPECT_NE(response.find("\"id\": 5"), std::string::npos);
  // The worker survived: the next request answers normally.
  EXPECT_EQ(status_of(server.answer(
                R"({"op":"predict","origin":4,"vantage":1})")),
            "ok");
  EXPECT_EQ(server.status().worker_faults, 1u);
}

TEST(ServeFaultInjectionTest, BadAllocDuringForkIsAbsorbed) {
  const topo::Model model = diamond();
  Server server(model, faulty_config());
  const std::string response = server.answer(
      R"({"op":"whatif","edit":"session-down","session":"1.0:2.0",)"
      R"("fault":"bad-alloc"})");
  EXPECT_EQ(status_of(response), "error");
  EXPECT_EQ(code_of(response), codes::kServeHandlerFault);
  // The failed fork left no cache entry; a clean retry works and misses.
  const std::string retry = server.answer(
      R"({"op":"whatif","edit":"session-down","session":"1.0:2.0"})");
  EXPECT_EQ(status_of(retry), "ok");
  EXPECT_EQ(server.status().fork_hits, 0u);
}

TEST(ServeFaultInjectionTest, ForcedDivergenceDegradesWithEngineCode) {
  const topo::Model model = diamond();
  Server server(model, faulty_config());
  const std::string response = server.answer(
      R"({"op":"predict","origin":4,"vantage":1,"fault":"diverge"})");
  EXPECT_EQ(status_of(response), "degraded");
  EXPECT_EQ(code_of(response), codes::kEngineDiverged);
  // Degraded, not empty: the partial paths are still in the payload.
  EXPECT_NE(response.find("\"paths\""), std::string::npos);
}

TEST(ServeFaultInjectionTest, StalledHandlerAnswersDegradedWithinDeadline) {
  const topo::Model model = diamond();
  ServeConfig config = faulty_config();
  config.deadline_seconds = 0.2;
  Server server(model, config);
  std::string error;
  ASSERT_TRUE(server.listen(0, &error)) << error;

  auto stream = connect_to(server);
  const auto start = std::chrono::steady_clock::now();
  const auto response = roundtrip(
      stream,
      R"({"op":"predict","origin":4,"vantage":1,"fault":"stall",)"
      R"("stall_ms":2000,"id":7})");
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_TRUE(response.has_value());
  // The connection answered at its deadline while the worker slept on.
  EXPECT_EQ(status_of(*response), "degraded");
  EXPECT_EQ(code_of(*response), codes::kServeDeadline);
  EXPECT_LT(elapsed, 1.5);
  EXPECT_EQ(server.status().deadline_expired, 1u);
  // Drain joins the still-sleeping worker without wedging.
  server.shutdown();
  EXPECT_GE(server.status().abandoned, 1u);
}

TEST(ServeFaultInjectionTest, OverloadShedsStructurally) {
  const topo::Model model = diamond();
  ServeConfig config = faulty_config();
  config.queue_capacity = 1;
  config.deadline_seconds = 5.0;
  Server server(model, config);
  std::string error;
  ASSERT_TRUE(server.listen(0, &error)) << error;

  // Occupy the single worker with a stall, then fill the queue from a
  // second connection; the third connection must be shed immediately.
  auto busy = connect_to(server);
  ASSERT_TRUE(nb::write_frame(
      busy,
      R"({"op":"predict","origin":4,"vantage":1,"fault":"stall",)"
      R"("stall_ms":1500})"));
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  auto queued = connect_to(server);
  ASSERT_TRUE(nb::write_frame(queued,
                              R"({"op":"predict","origin":4,"vantage":1})"));
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  auto shed = connect_to(server);
  const auto response =
      roundtrip(shed, R"({"op":"predict","origin":2,"vantage":3})");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(status_of(*response), "rejected");
  EXPECT_EQ(code_of(*response), codes::kServeOverload);
  EXPECT_EQ(server.status().shed, 1u);

  // Health still answers while the daemon is saturated.
  auto monitor = connect_to(server);
  EXPECT_EQ(status_of(*roundtrip(monitor, R"({"op":"health"})")), "ok");
  server.shutdown();
}

#endif  // RD_FAULT_INJECTION

}  // namespace
