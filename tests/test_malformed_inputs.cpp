// Malformed-input hardening: every text reader (topo::read_model,
// data::read_dataset, topo::read_refine_checkpoint, nb::json_parse) must
// reject arbitrary truncations and corruptions with an error message that
// carries a line number -- never an uncaught exception, abort, or silent
// integer truncation.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <sstream>
#include <string>

#include "core/pipeline.hpp"
#include "data/rib_io.hpp"
#include "netbase/json.hpp"
#include "topology/model_io.hpp"

namespace {

using nb::Prefix;
using nb::RouterId;
using topo::Model;

/// A realistic serialized model: fit the quickstart pipeline at tiny scale
/// so the text exercises every directive kind (sessions, classes, filters,
/// rankings, lp-overrides).
const std::string& fitted_model_text() {
  static const std::string text = [] {
    core::PipelineConfig config = core::PipelineConfig::with(0.08, 5);
    core::Pipeline pipeline = core::make_pipeline(config);
    core::run_data_stages(pipeline);
    core::run_model_stages(pipeline);
    return topo::model_to_string(pipeline.model);
  }();
  return text;
}

const std::string& dataset_text() {
  static const std::string text = [] {
    core::PipelineConfig config = core::PipelineConfig::with(0.08, 5);
    core::Pipeline pipeline = core::make_pipeline(config);
    core::run_data_stages(pipeline);
    return data::dataset_to_string(pipeline.dataset);
  }();
  return text;
}

template <typename Reader>
void truncation_sweep(const std::string& text, std::size_t max_cuts,
                      const Reader& read) {
  // Bound the cut count, not the stride: each parse is O(cut), so a fixed
  // stride over a large fitted model turns quadratic and dominates the
  // whole suite's runtime.  An off-by-prime stride still lands cuts at
  // every byte offset modulo the line structure.
  const std::size_t stride = std::max<std::size_t>(text.size() / max_cuts, 1);
  for (std::size_t cut = 0; cut < text.size(); cut += stride) {
    std::string error;
    bool ok = true;
    EXPECT_NO_THROW(ok = read(text.substr(0, cut), &error))
        << "cut at " << cut;
    // A truncation may still be well-formed (e.g. fewer records); what it
    // may never do is throw, abort, or fail without a message.
    if (!ok) EXPECT_FALSE(error.empty()) << "cut at " << cut;
  }
}

TEST(MalformedInputTest, ModelTruncationsNeverThrow) {
  truncation_sweep(fitted_model_text(), 250,
                   [](const std::string& text, std::string* error) {
                     std::istringstream in(text);
                     return topo::read_model(in, error).has_value();
                   });
}

TEST(MalformedInputTest, DatasetTruncationsNeverThrow) {
  truncation_sweep(dataset_text(), 400,
                   [](const std::string& text, std::string* error) {
                     std::istringstream in(text);
                     return data::read_dataset(in, error).has_value();
                   });
}

TEST(MalformedInputTest, ModelErrorsCarryLineNumbers) {
  const char* bad_inputs[] = {
      "model v1\nrouter nonsense\n",
      "model v1\nrouter 1.0\nsession 1.0\n",
      "model v1\nrouter 1.0\nigp 1.0 1.0 99999999999999999999\n",
      "model v1\nwhatever 1 2 3\n",
      "not-a-model\n",
  };
  for (const char* text : bad_inputs) {
    std::istringstream in(text);
    std::string error;
    EXPECT_FALSE(topo::read_model(in, &error).has_value()) << text;
    EXPECT_NE(error.find("line"), std::string::npos) << text << " -> "
                                                     << error;
  }
}

TEST(MalformedInputTest, ModelRejectsOutOfRangeIntegers) {
  // Values that fit uint64 but not the field's real width used to truncate
  // silently; they must be structured errors now.
  const char* bad_inputs[] = {
      // igp cost is uint32
      "model v1\nrouter 1.0\nrouter 2.0\nigp 1.0 2.0 4294967296\n",
      // neighbor-class ASN is uint32 (kInvalidAsn and above reserved)
      "model v1\nrouter 1.0\nclass 4294967295 1 customer\n",
      // lp-override value is uint32
      "model v1\nrouter 1.0\nrouter 2.0\nsession 1.0 2.0\n"
      "lp-override 10.0.0.0/24 1.0 2 4294967296\n",
  };
  for (const char* text : bad_inputs) {
    std::istringstream in(text);
    std::string error;
    EXPECT_FALSE(topo::read_model(in, &error).has_value()) << text;
    EXPECT_NE(error.find("line"), std::string::npos) << text << " -> "
                                                     << error;
  }
}

TEST(MalformedInputTest, DatasetErrorsCarryLineNumbers) {
  const char* bad_inputs[] = {
      "point nonsense\n",
      "point 0 1.0\nroute 0 garbage\n",
      // origin at/beyond the invalid sentinel must not wrap silently
      "point 0 1.0\nroute 0 4294967295 1 4294967295\n",
      "point 0 1.0\nroute 0 3 1 4294967295 3\n",  // hop out of range
      "not-a-directive\n",
  };
  for (const char* text : bad_inputs) {
    std::istringstream in(text);
    std::string error;
    EXPECT_FALSE(data::read_dataset(in, &error).has_value()) << text;
    EXPECT_NE(error.find("line"), std::string::npos) << text << " -> "
                                                     << error;
  }
}

TEST(MalformedInputTest, JsonDepthBombIsAnErrorNotAStackOverflow) {
  std::string bomb;
  for (int i = 0; i < 5000; ++i) bomb += '[';
  std::string error;
  std::optional<nb::JsonValue> doc;
  EXPECT_NO_THROW(doc = nb::json_parse(bomb, &error));
  EXPECT_FALSE(doc.has_value());
  EXPECT_FALSE(error.empty());
}

TEST(MalformedInputTest, JsonErrorsCarryLineNumbers) {
  const char* bad_inputs[] = {
      "{\"a\": 1,\n \"b\": }\n",
      "[1, 2\n",
      "{\"a\"\n: \"unterminated\n",
  };
  for (const char* text : bad_inputs) {
    std::string error;
    EXPECT_FALSE(nb::json_parse(text, &error).has_value()) << text;
    EXPECT_NE(error.find("line"), std::string::npos) << text << " -> "
                                                     << error;
  }
}

TEST(MalformedInputTest, CheckpointGarbageNeverThrows) {
  const char* bad_inputs[] = {
      "",
      "\x01\x02\x03 binary garbage",
      "refine-checkpoint v2\n",
      "refine-checkpoint v1\niteration -\n",
      "refine-checkpoint v1\niteration 1\ndataset-hash zz\n",
      "refine-checkpoint v1\niteration 1\n"
      "dataset-hash 0000000000000001\nmodel v1\n",  // missing trailer
  };
  for (const char* text : bad_inputs) {
    std::istringstream in(text);
    std::string error;
    std::optional<topo::RefineCheckpoint> ck;
    EXPECT_NO_THROW(ck = topo::read_refine_checkpoint(in, &error));
    EXPECT_FALSE(ck.has_value()) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

}  // namespace
