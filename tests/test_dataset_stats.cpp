// Tests for the Section 3 dataset statistics (Fig. 2 / Table 1 quantities).
#include <gtest/gtest.h>

#include "data/dataset_stats.hpp"

namespace {

using data::BgpDataset;
using topo::AsPath;

BgpDataset handcrafted() {
  // Origin 9 observed from AS 1 over two different paths (via 5 and via 6),
  // and from AS 2 over one path.  Origin 8 observed from AS 1 over one path.
  BgpDataset dataset;
  dataset.points.push_back({nb::RouterId{1, 0}});
  dataset.points.push_back({nb::RouterId{1, 1}});
  dataset.points.push_back({nb::RouterId{2, 0}});
  dataset.records.push_back({0, 9, AsPath{1, 5, 9}});
  dataset.records.push_back({1, 9, AsPath{1, 6, 9}});
  dataset.records.push_back({2, 9, AsPath{2, 5, 9}});
  dataset.records.push_back({0, 8, AsPath{1, 8}});
  return dataset;
}

TEST(DiversityTest, PathsPerPairHistogram) {
  auto stats = data::compute_diversity(handcrafted());
  // Pairs: (9,1) -> 2 paths; (9,2) -> 1; (8,1) -> 1.
  EXPECT_EQ(stats.as_pairs, 3u);
  EXPECT_EQ(stats.paths_per_pair.count_of(1), 2u);
  EXPECT_EQ(stats.paths_per_pair.count_of(2), 1u);
  EXPECT_EQ(stats.unique_paths, 4u);
  EXPECT_EQ(stats.records, 4u);
}

TEST(DiversityTest, MaxUniqueReceivedSuffixes) {
  auto stats = data::compute_diversity(handcrafted());
  // AS 1 receives [5 9], [6 9] (2 unique for origin 9) and [8] (1 for 8):
  // its max is 2.  AS 2 receives [5 9]: max 1.  AS 5 receives [9]: 1.
  // AS 6 receives [9]: 1.  Histogram over ASes {1,2,5,6}: {2:1, 1:3}.
  EXPECT_EQ(stats.max_unique_received.count_of(2), 1u);
  EXPECT_EQ(stats.max_unique_received.count_of(1), 3u);
  EXPECT_EQ(stats.max_unique_received.total(), 4u);
}

TEST(DiversityTest, PrefixesPerPathUsesCounts) {
  std::map<nb::Asn, std::uint32_t> counts{{9, 10}, {8, 1}};
  auto stats = data::compute_diversity(handcrafted(), &counts);
  // Three unique paths to origin 9 each carry 10 prefixes; one path to 8
  // carries 1.
  EXPECT_EQ(stats.prefixes_per_path.count_of(10), 3u);
  EXPECT_EQ(stats.prefixes_per_path.count_of(1), 1u);
}

TEST(DiversityTest, DefaultsToOnePrefixPerPath) {
  auto stats = data::compute_diversity(handcrafted());
  EXPECT_EQ(stats.prefixes_per_path.count_of(1), 4u);
}

TEST(DiversityTest, EmptyDataset) {
  BgpDataset dataset;
  auto stats = data::compute_diversity(dataset);
  EXPECT_EQ(stats.as_pairs, 0u);
  EXPECT_EQ(stats.unique_paths, 0u);
  EXPECT_TRUE(stats.paths_per_pair.empty());
}

TEST(DiversityTest, MultipleObserversSameAsCollapseIntoOnePair) {
  // Both points are in AS 1 and report the same path: one pair, one path.
  BgpDataset dataset;
  dataset.points.push_back({nb::RouterId{1, 0}});
  dataset.points.push_back({nb::RouterId{1, 1}});
  dataset.records.push_back({0, 9, AsPath{1, 5, 9}});
  dataset.records.push_back({1, 9, AsPath{1, 5, 9}});
  auto stats = data::compute_diversity(dataset);
  EXPECT_EQ(stats.as_pairs, 1u);
  EXPECT_EQ(stats.paths_per_pair.count_of(1), 1u);
  EXPECT_EQ(stats.unique_paths, 1u);
}

}  // namespace
