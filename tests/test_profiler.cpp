// Tests for the sweep profiler and flight recorder (DESIGN.md section 14):
// the lock-free ring semantics (wrap, drop counts, out-of-range tracks,
// atomic dumps), the Spearman rank correlation and speedup-loss
// attribution arithmetic behind `rdtool profile`, and the instrumented
// refinement loop end to end -- profiled fits must produce shard samples,
// merge worker counters deterministically for every thread count, stay
// byte-identical to the uninstrumented fit, and leave a post-mortem dump
// behind on degraded or faulted stops (R702/R704) with an R707 warning
// when the dump itself cannot be written.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "core/fault_inject.hpp"
#include "core/pipeline.hpp"
#include "core/refine.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/observer.hpp"
#include "obs/profiler.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "topology/model_io.hpp"

namespace {

using analysis::contains_code;
using data::BgpDataset;
using nb::Asn;
using nb::RouterId;
using obs::FlightEventType;
using obs::FlightRecorder;
using topo::AsPath;
using topo::Model;

namespace codes = analysis::codes;

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// ---- flight recorder ------------------------------------------------------

TEST(FlightRecorderTest, DumpCarriesTrackLabelsAndTypedPayloads) {
  FlightRecorder flight(3, 8);
  flight.record(0, FlightEventType::kIterationStart, 1, 42);
  flight.record(1, FlightEventType::kShardStart, 1, 0, 99);
  flight.record(1, FlightEventType::kShardEnd, 1, 0, 4096);
  flight.record(0, FlightEventType::kStop, 0, 1);

  EXPECT_EQ(flight.tracks(), 3u);
  EXPECT_EQ(flight.recorded(0), 2u);
  EXPECT_EQ(flight.recorded(1), 2u);
  EXPECT_EQ(flight.recorded(2), 0u);

  const std::string dump = flight.dump_json(2);
  EXPECT_NE(dump.find("\"tool\": \"flight-recorder\""), std::string::npos);
  EXPECT_NE(dump.find("\"serial\""), std::string::npos);
  EXPECT_NE(dump.find("\"worker-0\""), std::string::npos);
  EXPECT_NE(dump.find("\"worker-1\""), std::string::npos);
  EXPECT_NE(dump.find("\"iteration-start\""), std::string::npos);
  EXPECT_NE(dump.find("\"shard-start\""), std::string::npos);
  EXPECT_NE(dump.find("\"shard-end\""), std::string::npos);
  EXPECT_NE(dump.find("\"stop\""), std::string::npos);
  // Typed payload keys, not raw a/b/c words.
  EXPECT_NE(dump.find("\"active\": 42"), std::string::npos);
  EXPECT_NE(dump.find("\"predicted_cost\": 99"), std::string::npos);
  EXPECT_NE(dump.find("\"arena_bytes\": 4096"), std::string::npos);
}

TEST(FlightRecorderTest, RingWrapKeepsTheNewestEventsAndCountsDrops) {
  FlightRecorder flight(1, 4);
  for (std::uint64_t i = 0; i < 10; ++i)
    flight.record(0, FlightEventType::kIterationStart, i);

  EXPECT_EQ(flight.recorded(0), 10u);
  const std::string dump = flight.dump_json();
  EXPECT_NE(dump.find("\"recorded\": 10"), std::string::npos);
  EXPECT_NE(dump.find("\"dropped\": 6"), std::string::npos);
  // Only the newest capacity events survive, oldest first.
  for (std::uint64_t i = 0; i < 6; ++i)
    EXPECT_EQ(dump.find("\"iteration\": " + std::to_string(i)),
              std::string::npos)
        << "overwritten event " << i << " still in dump";
  for (std::uint64_t i = 6; i < 10; ++i)
    EXPECT_NE(dump.find("\"iteration\": " + std::to_string(i)),
              std::string::npos)
        << "surviving event " << i << " missing from dump";
  const std::size_t first = dump.find("\"iteration\": 6");
  const std::size_t last = dump.find("\"iteration\": 9");
  EXPECT_LT(first, last) << "events not oldest-first";
}

TEST(FlightRecorderTest, OutOfRangeTrackIsSilentlyDropped) {
  FlightRecorder flight(2, 4);
  flight.record(7, FlightEventType::kFault, 1);  // mis-sized caller
  EXPECT_EQ(flight.recorded(0), 0u);
  EXPECT_EQ(flight.recorded(1), 0u);
  EXPECT_EQ(flight.dump_json().find("\"fault\""), std::string::npos);
}

TEST(FlightRecorderTest, DumpToFileWritesAtomicallyAndReportsIoErrors) {
  FlightRecorder flight(1, 4);
  flight.record(0, FlightEventType::kStop, 0, 3);

  const std::string path = testing::TempDir() + "flight_dump_test.json";
  std::remove(path.c_str());
  std::string error;
  ASSERT_TRUE(flight.dump_to_file(path, &error)) << error;
  const std::string written = slurp(path);
  EXPECT_NE(written.find("\"tool\": \"flight-recorder\""), std::string::npos);
  EXPECT_EQ(written.find(".tmp"), std::string::npos);
  std::remove(path.c_str());

  error.clear();
  EXPECT_FALSE(flight.dump_to_file(
      testing::TempDir() + "no_such_dir_xyz/flight.json", &error));
  EXPECT_FALSE(error.empty());
}

// ---- rank correlation -----------------------------------------------------

TEST(RankCorrelationTest, MonotoneSeriesScorePlusMinusOne) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  // Any monotone transform of x ranks identically: Spearman sees order only.
  const std::vector<double> up{10, 100, 1000, 10000, 100000};
  const std::vector<double> down{5, 4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(obs::rank_correlation(x, up), 1.0);
  EXPECT_DOUBLE_EQ(obs::rank_correlation(x, down), -1.0);
}

TEST(RankCorrelationTest, TiesShareAverageRanks) {
  // x ranks {1.5, 1.5, 3.5, 3.5} vs y ranks {1, 2, 3, 4}:
  // r = 4 / sqrt(4 * 5) = 0.8944...
  const std::vector<double> x{1, 1, 2, 2};
  const std::vector<double> y{10, 20, 30, 40};
  EXPECT_NEAR(obs::rank_correlation(x, y), 4.0 / std::sqrt(20.0), 1e-12);
}

TEST(RankCorrelationTest, DegenerateInputsAreNaN) {
  EXPECT_TRUE(std::isnan(obs::rank_correlation({}, {})));
  EXPECT_TRUE(std::isnan(obs::rank_correlation({1}, {2})));
  EXPECT_TRUE(std::isnan(obs::rank_correlation({1, 2}, {1, 2, 3})));
  // A constant side has zero rank variance: nothing to correlate.
  EXPECT_TRUE(std::isnan(obs::rank_correlation({5, 5, 5}, {1, 2, 3})));
}

// ---- profile_sweep attribution --------------------------------------------

TEST(ProfileSweepTest, AttributesImbalanceOverheadAndIdle) {
  // One iteration: a 100us parallel span, worker 0 busy 80us (predicted 8),
  // worker 1 busy 40us (predicted 4), inside a 200us fit.
  std::vector<obs::SweepShardSample> samples(2);
  samples[0] = {1, 0, 0, 8, 0, 80, 50, 3, 1 << 20};
  samples[1] = {1, 1, 1, 4, 0, 40, 25, 2, 1 << 18};
  const std::vector<obs::SweepIterationSpan> sweeps{{1, 0, 100}};

  const obs::SweepProfile profile =
      obs::profile_sweep(samples, sweeps, 200e-6);
  EXPECT_EQ(profile.workers, 2u);
  EXPECT_EQ(profile.iterations, 1u);
  EXPECT_EQ(profile.shard_samples, 2u);
  EXPECT_NEAR(profile.total_seconds, 200e-6, 1e-12);
  EXPECT_NEAR(profile.parallel_seconds, 100e-6, 1e-12);
  EXPECT_NEAR(profile.serial_seconds, 100e-6, 1e-12);
  EXPECT_NEAR(profile.busy_seconds, 120e-6, 1e-12);
  // max busy 80, mean busy 60 -> 20us imbalance; span 100 - max 80 -> 20us
  // overhead; idle 20us (worker 0) + 60us (worker 1).
  EXPECT_NEAR(profile.imbalance_seconds, 20e-6, 1e-12);
  EXPECT_NEAR(profile.overhead_seconds, 20e-6, 1e-12);
  EXPECT_NEAR(profile.idle_seconds, 80e-6, 1e-12);
  // (serial 100 + busy 120) / total 200.
  EXPECT_NEAR(profile.measured_speedup, 1.1, 1e-12);
  EXPECT_DOUBLE_EQ(profile.cost_rank_correlation, 1.0);
  ASSERT_EQ(profile.lanes.size(), 2u);
  EXPECT_EQ(profile.lanes[0].worker, 0u);
  EXPECT_EQ(profile.lanes[0].busy_us, 80u);
  EXPECT_EQ(profile.lanes[0].idle_us, 20u);
  EXPECT_EQ(profile.lanes[0].shards, 1u);
  EXPECT_EQ(profile.lanes[1].worker, 1u);
  EXPECT_EQ(profile.lanes[1].busy_us, 40u);
  EXPECT_EQ(profile.lanes[1].idle_us, 60u);
}

TEST(ProfileSweepTest, ZeroTotalFallsBackToParallelTime) {
  std::vector<obs::SweepShardSample> samples(1);
  samples[0] = {1, 0, 0, 8, 0, 80, 50, 3, 0};
  const std::vector<obs::SweepIterationSpan> sweeps{{1, 0, 100}};
  const obs::SweepProfile profile = obs::profile_sweep(samples, sweeps, 0);
  EXPECT_NEAR(profile.total_seconds, 100e-6, 1e-12);
  EXPECT_NEAR(profile.serial_seconds, 0.0, 1e-12);
  EXPECT_NEAR(profile.measured_speedup, 0.8, 1e-12);
}

TEST(ProfileSweepTest, EmptyInputsProduceAnEmptyProfile) {
  const obs::SweepProfile profile = obs::profile_sweep({}, {}, 0);
  EXPECT_EQ(profile.workers, 0u);
  EXPECT_EQ(profile.shard_samples, 0u);
  EXPECT_DOUBLE_EQ(profile.measured_speedup, 1.0);
  EXPECT_TRUE(std::isnan(profile.cost_rank_correlation));
}

// ---- instrumented refinement loop -----------------------------------------

/// The registry counters the merge-determinism matrix compares (the
/// sweep-merged engine totals, the fit summary and the cache satellite).
constexpr const char* kMergedCounters[] = {
    "refine.iterations",    "refine.messages",
    "refine.routers_added", "refine.policies_changed",
    "engine.messages",      "cache.hits",
    "cache.misses",         "cache.invalidations",
};

struct ProfiledFit {
  std::string model_text;
  core::RefineResult result;
  /// kMergedCounters snapshot (the Registry itself is not movable).
  std::map<std::string, std::uint64_t> counters;
};

/// Pipeline-fixture fit with the full profiler stack attached (metric
/// registry, kIteration trace sink, flight recorder) -- the `rdtool refine
/// --trace` configuration the profiler samples under.
ProfiledFit profiled_fit(double scale, std::uint64_t seed, unsigned threads) {
  core::PipelineConfig config = core::PipelineConfig::with(scale, seed);
  core::Pipeline pipeline = core::make_pipeline(config);
  core::run_data_stages(pipeline);
  Model model = Model::one_router_per_as(pipeline.graph);

  ProfiledFit fit;
  obs::Registry registry;
  obs::TraceSink trace(obs::TraceLevel::kIteration);
  obs::Observer observer;
  observer.registry = &registry;
  observer.trace = &trace;
  FlightRecorder flight(2 + bgp::ThreadPool::resolve(threads));
  core::RefineConfig refine;
  refine.threads = threads;
  refine.observer = &observer;
  refine.flight_recorder = &flight;
  fit.result = core::refine_model(model, pipeline.split.training, refine);
  fit.model_text = topo::model_to_string(model);
  for (const char* counter : kMergedCounters)
    fit.counters[counter] = registry.counter_value(counter);
  return fit;
}

std::string bare_fit_text(double scale, std::uint64_t seed, unsigned threads) {
  core::PipelineConfig config = core::PipelineConfig::with(scale, seed);
  core::Pipeline pipeline = core::make_pipeline(config);
  core::run_data_stages(pipeline);
  Model model = Model::one_router_per_as(pipeline.graph);
  core::RefineConfig refine;
  refine.threads = threads;
  core::refine_model(model, pipeline.split.training, refine);
  return topo::model_to_string(model);
}

TEST(InstrumentedRefineTest, ProfiledFitSamplesShardsWithoutPerturbingIt) {
  const ProfiledFit fit = profiled_fit(0.08, 6, 4);
  ASSERT_TRUE(fit.result.success);
  EXPECT_EQ(fit.model_text, bare_fit_text(0.08, 6, 4))
      << "attaching the profiler changed the fitted model";

  // Every shard-executed iteration yields one sweep span and per-shard
  // samples carrying the planner's predicted cost.
  EXPECT_GT(fit.result.sharded_iterations, 0u);
  EXPECT_EQ(fit.result.sweep_spans.size(), fit.result.sharded_iterations);
  ASSERT_FALSE(fit.result.shard_samples.empty());
  std::uint64_t messages = 0;
  for (const obs::SweepShardSample& sample : fit.result.shard_samples) {
    EXPECT_GT(sample.prefixes, 0u) << "empty shard sampled";
    EXPECT_GT(sample.predicted_cost, 0u);
    messages += sample.messages;
  }
  EXPECT_GT(messages, 0u);

  // Reachability-cache counters surface both on the result and as cache.*
  // registry counters (satellite: `rdtool refine --json` reads these).
  EXPECT_GT(fit.result.cache_hits + fit.result.cache_misses, 0u);
  EXPECT_EQ(fit.counters.at("cache.hits"), fit.result.cache_hits);
  EXPECT_EQ(fit.counters.at("cache.misses"), fit.result.cache_misses);
  EXPECT_EQ(fit.counters.at("cache.invalidations"),
            fit.result.cache_invalidations);
}

TEST(InstrumentedRefineTest, CounterMergeIsDeterministicAcrossThreadCounts) {
  // The sweep merges per-worker counter shards in worker order; the merged
  // totals (and the fit itself) must not depend on the worker count.
  // threads == 0 is the hardware-concurrency leg.
  const ProfiledFit reference = profiled_fit(0.08, 6, 1);
  ASSERT_TRUE(reference.result.success);
  for (const unsigned threads : {2u, 4u, 0u}) {
    const ProfiledFit fit = profiled_fit(0.08, 6, threads);
    EXPECT_EQ(fit.model_text, reference.model_text)
        << "threads=" << threads;
    for (const char* counter : kMergedCounters) {
      EXPECT_EQ(fit.counters.at(counter), reference.counters.at(counter))
          << counter << " differs at threads=" << threads;
    }
  }
}

// ---- post-mortem dumps ----------------------------------------------------

BgpDataset dataset_of(std::vector<std::pair<Asn, AsPath>> records) {
  BgpDataset dataset;
  std::map<Asn, std::uint32_t> points;
  for (auto& [observer, path] : records) {
    if (!points.count(observer)) {
      points[observer] = static_cast<std::uint32_t>(dataset.points.size());
      dataset.points.push_back({RouterId{observer, 0}});
    }
    dataset.records.push_back({points[observer], path.origin(), path});
  }
  return dataset;
}

/// Ring fixture (same as test_fault_injection): the observed path goes the
/// long way around, so the fit needs several iterations and a budget of 1
/// forces a deterministic R702 degraded stop.
BgpDataset ring_dataset() {
  return dataset_of({{1, AsPath{1, 2, 3, 4, 5, 6}}});
}

Model ring_model() {
  topo::AsGraph g;
  for (Asn a = 1; a < 6; ++a) g.add_edge(a, a + 1);
  g.add_edge(1, 6);
  return Model::one_router_per_as(g);
}

TEST(FlightDumpTest, DegradedStopWritesThePostMortem) {
  const std::string dump_path = testing::TempDir() + "r702.flight.json";
  std::remove(dump_path.c_str());
  Model model = ring_model();
  FlightRecorder flight(2);
  core::RefineConfig config;
  config.prefix_iteration_budget = 1;  // forces R702
  config.flight_recorder = &flight;
  config.flight_dump_path = dump_path;
  const auto result = core::refine_model(model, ring_dataset(), config);

  EXPECT_TRUE(result.degraded());
  EXPECT_TRUE(contains_code(result.diagnostics,
                            codes::kPrefixBudgetExhausted));
  ASSERT_TRUE(result.flight_dump_written);
  const std::string dump = slurp(dump_path);
  EXPECT_NE(dump.find("\"tool\": \"flight-recorder\""), std::string::npos);
  EXPECT_NE(dump.find("\"prefix-frozen\""), std::string::npos);
  EXPECT_NE(dump.find("\"stop\""), std::string::npos);
  std::remove(dump_path.c_str());
}

TEST(FlightDumpTest, SuccessfulFitWritesNoDump) {
  const std::string dump_path = testing::TempDir() + "clean.flight.json";
  std::remove(dump_path.c_str());
  Model model = ring_model();
  FlightRecorder flight(2);
  core::RefineConfig config;
  config.flight_recorder = &flight;
  config.flight_dump_path = dump_path;
  const auto result = core::refine_model(model, ring_dataset(), config);

  EXPECT_TRUE(result.success);
  EXPECT_FALSE(result.flight_dump_written);
  EXPECT_TRUE(slurp(dump_path).empty()) << "dump written on a clean fit";
}

TEST(FlightDumpTest, UnwritableDumpPathWarnsR707NotFatal) {
  Model model = ring_model();
  FlightRecorder flight(2);
  core::RefineConfig config;
  config.prefix_iteration_budget = 1;
  config.flight_recorder = &flight;
  config.flight_dump_path = testing::TempDir() + "no_such_dir_xyz/f.json";
  const auto result = core::refine_model(model, ring_dataset(), config);

  EXPECT_TRUE(result.degraded());
  EXPECT_FALSE(result.flight_dump_written);
  EXPECT_TRUE(contains_code(result.diagnostics, codes::kFlightDumpError));
}

#ifdef RD_FAULT_INJECTION

TEST(FlightDumpTest, SweepFaultWritesThePostMortemWithTheFaultEvent) {
  const std::string dump_path = testing::TempDir() + "r704.flight.json";
  std::remove(dump_path.c_str());
  Model model = ring_model();
  core::FaultPlan plan;
  plan.throw_iteration = 2;
  FlightRecorder flight(2 + 2);
  core::RefineConfig config;
  config.fault_plan = &plan;
  config.threads = 2;  // fault crosses the pool boundary
  config.flight_recorder = &flight;
  config.flight_dump_path = dump_path;
  const auto result = core::refine_model(model, ring_dataset(), config);

  EXPECT_EQ(result.stop, core::RefineStop::kFault);
  EXPECT_TRUE(contains_code(result.diagnostics, codes::kSweepFault));
  ASSERT_TRUE(result.flight_dump_written);
  const std::string dump = slurp(dump_path);
  EXPECT_NE(dump.find("\"tool\": \"flight-recorder\""), std::string::npos);
  EXPECT_NE(dump.find("\"fault\""), std::string::npos);
  std::remove(dump_path.c_str());
}

#endif  // RD_FAULT_INJECTION

}  // namespace
