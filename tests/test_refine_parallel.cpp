// Determinism and caching tests for the parallel refinement sweep: the
// fitted model must be byte-identical for every worker count, the pooled
// per-prefix simulations must equal their serial counterparts, and the
// engine's epoch context must track model mutations.  Also runs under the
// tsan preset, which exercises the simulate-in-parallel phase for races.
#include <gtest/gtest.h>

#include "bgp/driver.hpp"
#include "bgp/engine.hpp"
#include "core/pipeline.hpp"
#include "core/refine.hpp"
#include "topology/model_io.hpp"

namespace {

using nb::Asn;
using nb::Prefix;
using topo::Model;

struct Fit {
  std::string model_text;
  core::RefineResult result;
};

Fit fit_at(double scale, std::uint64_t seed, unsigned threads,
           bool compact_sweep = true) {
  core::PipelineConfig config = core::PipelineConfig::with(scale, seed);
  core::Pipeline pipeline = core::make_pipeline(config);
  core::run_data_stages(pipeline);

  Model model = Model::one_router_per_as(pipeline.graph);
  core::RefineConfig refine;
  refine.threads = threads;
  refine.compact_sweep = compact_sweep;
  Fit fit;
  fit.result = core::refine_model(model, pipeline.split.training, refine);
  fit.model_text = topo::model_to_string(model);
  return fit;
}

class ParallelFit : public ::testing::TestWithParam<std::pair<double,
                                                             std::uint64_t>> {
};

TEST_P(ParallelFit, ModelIsByteIdenticalAcrossThreadCounts) {
  const auto [scale, seed] = GetParam();
  const Fit serial = fit_at(scale, seed, 1);
  ASSERT_TRUE(serial.result.success);
  for (const unsigned threads : {2u, 4u}) {
    const Fit parallel = fit_at(scale, seed, threads);
    EXPECT_TRUE(parallel.result.success);
    EXPECT_EQ(serial.model_text, parallel.model_text)
        << "fitted model differs between 1 and " << threads << " threads";
    // The iteration log -- every per-iteration counter -- must match too.
    ASSERT_EQ(serial.result.log.size(), parallel.result.log.size());
    for (std::size_t i = 0; i < serial.result.log.size(); ++i) {
      const auto& a = serial.result.log[i];
      const auto& b = parallel.result.log[i];
      EXPECT_EQ(a.paths_matched, b.paths_matched) << "iteration " << i;
      EXPECT_EQ(a.active_prefixes, b.active_prefixes) << "iteration " << i;
      EXPECT_EQ(a.routers, b.routers) << "iteration " << i;
      EXPECT_EQ(a.filters, b.filters) << "iteration " << i;
      EXPECT_EQ(a.rankings, b.rankings) << "iteration " << i;
      EXPECT_EQ(a.routers_added, b.routers_added) << "iteration " << i;
      EXPECT_EQ(a.policies_changed, b.policies_changed) << "iteration " << i;
    }
    EXPECT_EQ(serial.result.messages_simulated,
              parallel.result.messages_simulated);
    EXPECT_EQ(serial.result.iterations, parallel.result.iterations);
    EXPECT_EQ(serial.result.routers_added, parallel.result.routers_added);
    EXPECT_EQ(serial.result.policies_changed,
              parallel.result.policies_changed);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, ParallelFit,
    ::testing::Values(std::pair<double, std::uint64_t>{0.05, 1},
                      std::pair<double, std::uint64_t>{0.08, 6},
                      std::pair<double, std::uint64_t>{0.1, 3}));

TEST(CompactSweep, FitIsByteIdenticalWithAndWithoutCompaction) {
  // The working-set-compacted sweep is an optimization, never a semantic
  // change: the fitted model and iteration counters must match the plain
  // full-model sweep at every thread count, and the counters must prove
  // the compacted path actually ran (or stayed off).
  const Fit baseline = fit_at(0.08, 6, 1, /*compact_sweep=*/false);
  ASSERT_TRUE(baseline.result.success);
  EXPECT_EQ(baseline.result.compacted_runs, 0u)
      << "compact_sweep=false must not build views";
  for (const unsigned threads : {1u, 2u, 4u}) {
    const Fit compacted = fit_at(0.08, 6, threads, /*compact_sweep=*/true);
    EXPECT_TRUE(compacted.result.success);
    EXPECT_GT(compacted.result.compacted_runs, 0u)
        << "compact_sweep=true never took the compacted path";
    EXPECT_EQ(baseline.model_text, compacted.model_text)
        << "fitted model differs between full and compacted sweeps at "
        << threads << " thread(s)";
    EXPECT_EQ(baseline.result.iterations, compacted.result.iterations);
    EXPECT_EQ(baseline.result.messages_simulated,
              compacted.result.messages_simulated);
    EXPECT_EQ(baseline.result.routers_added, compacted.result.routers_added);
    EXPECT_EQ(baseline.result.policies_changed,
              compacted.result.policies_changed);
  }
}

TEST(ParallelEngine, PooledRunsEqualSerialRuns) {
  core::PipelineConfig config = core::PipelineConfig::with(0.1, 2);
  core::Pipeline pipeline = core::make_pipeline(config);
  core::run_data_stages(pipeline);
  const Model model = Model::one_router_per_as(pipeline.graph);
  const bgp::Engine engine(model);

  const std::vector<bgp::SimJob> jobs = bgp::jobs_for_all_ases(model);
  std::vector<bgp::PrefixSimResult> pooled(jobs.size());
  bgp::ThreadPool pool(4);
  bgp::run_jobs(engine, jobs, pool, [&](std::size_t i,
                                        bgp::PrefixSimResult&& result) {
    pooled[i] = std::move(result);
  });

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const bgp::PrefixSimResult serial =
        engine.run(jobs[i].prefix, jobs[i].origin);
    ASSERT_EQ(serial.routers.size(), pooled[i].routers.size());
    EXPECT_EQ(serial.messages, pooled[i].messages) << "origin " << serial.origin;
    EXPECT_EQ(serial.converged, pooled[i].converged);
    for (std::size_t r = 0; r < serial.routers.size(); ++r) {
      const bgp::RouterState& a = serial.routers[r];
      const bgp::RouterState& b = pooled[i].routers[r];
      ASSERT_EQ(a.rib_in.size(), b.rib_in.size());
      EXPECT_EQ(a.best, b.best);
      EXPECT_EQ(a.best_external, b.best_external);
      for (std::size_t e = 0; e < a.rib_in.size(); ++e) {
        EXPECT_EQ(a.rib_in[e].sender, b.rib_in[e].sender);
        EXPECT_EQ(a.rib_in[e].path, b.rib_in[e].path);
        EXPECT_EQ(a.rib_in[e].med, b.rib_in[e].med);
        EXPECT_EQ(a.rib_in[e].local_pref, b.rib_in[e].local_pref);
      }
    }
  }
}

TEST(EpochContext, CachedUntilTheModelMutates) {
  topo::AsGraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  Model model = Model::one_router_per_as(g);
  bgp::Engine engine(model);

  const auto first = engine.context();
  EXPECT_EQ(first.get(), engine.context().get())
      << "context rebuilt although the model did not change";
  EXPECT_EQ(first->epoch, model.generation());

  // Any mutation bumps the generation and invalidates the cache.
  model.set_ranking(nb::RouterId{1, 0}, Prefix::for_asn(3), 2);
  const auto second = engine.context();
  EXPECT_NE(first.get(), second.get());
  EXPECT_EQ(second->epoch, model.generation());
  EXPECT_GT(second->epoch, first->epoch);

  // The snapshot itself reflects the model: duplicate a router, re-snapshot.
  const std::size_t before = second->ids.size();
  model.duplicate_router(nb::RouterId{2, 0});
  const auto third = engine.context();
  EXPECT_EQ(third->ids.size(), before + 1);

  // Old snapshots stay alive and unchanged for in-flight readers.
  EXPECT_EQ(second->ids.size(), before);
}

}  // namespace
