// Determinism and caching tests for the parallel refinement sweep: the
// fitted model must be byte-identical for every worker count, the pooled
// per-prefix simulations must equal their serial counterparts, and the
// engine's epoch context must track model mutations.  Also runs under the
// tsan preset, which exercises the simulate-in-parallel phase for races.
#include <gtest/gtest.h>

#include "analysis/partition.hpp"
#include "bgp/driver.hpp"
#include "bgp/engine.hpp"
#include "core/pipeline.hpp"
#include "core/refine.hpp"
#include "topology/model_io.hpp"

namespace {

using nb::Asn;
using nb::Prefix;
using topo::Model;

struct Fit {
  std::string model_text;
  core::RefineResult result;
};

struct FitOptions {
  bool compact_sweep = true;
  /// Sweep schedule: shard-executed (the default) or the flat index range.
  bool shard_sweep = true;
  /// Externally supplied shard plan (RefineConfig::shard_plan).
  const analysis::ShardPlan* shard_plan = nullptr;
};

Fit fit_at(double scale, std::uint64_t seed, unsigned threads,
           const FitOptions& options = {}) {
  core::PipelineConfig config = core::PipelineConfig::with(scale, seed);
  core::Pipeline pipeline = core::make_pipeline(config);
  core::run_data_stages(pipeline);

  Model model = Model::one_router_per_as(pipeline.graph);
  core::RefineConfig refine;
  refine.threads = threads;
  refine.compact_sweep = options.compact_sweep;
  refine.shard_sweep = options.shard_sweep;
  refine.shard_plan = options.shard_plan;
  Fit fit;
  fit.result = core::refine_model(model, pipeline.split.training, refine);
  fit.model_text = topo::model_to_string(model);
  return fit;
}

void expect_same_fit(const Fit& a, const Fit& b, const std::string& what) {
  EXPECT_TRUE(b.result.success) << what;
  EXPECT_EQ(a.model_text, b.model_text)
      << "fitted model differs: " << what;
  // The iteration log -- every per-iteration counter -- must match too.
  ASSERT_EQ(a.result.log.size(), b.result.log.size()) << what;
  for (std::size_t i = 0; i < a.result.log.size(); ++i) {
    const auto& x = a.result.log[i];
    const auto& y = b.result.log[i];
    EXPECT_EQ(x.paths_matched, y.paths_matched) << what << " iteration " << i;
    EXPECT_EQ(x.active_prefixes, y.active_prefixes)
        << what << " iteration " << i;
    EXPECT_EQ(x.routers, y.routers) << what << " iteration " << i;
    EXPECT_EQ(x.filters, y.filters) << what << " iteration " << i;
    EXPECT_EQ(x.rankings, y.rankings) << what << " iteration " << i;
    EXPECT_EQ(x.routers_added, y.routers_added) << what << " iteration " << i;
    EXPECT_EQ(x.policies_changed, y.policies_changed)
        << what << " iteration " << i;
  }
  EXPECT_EQ(a.result.messages_simulated, b.result.messages_simulated) << what;
  EXPECT_EQ(a.result.iterations, b.result.iterations) << what;
  EXPECT_EQ(a.result.routers_added, b.result.routers_added) << what;
  EXPECT_EQ(a.result.policies_changed, b.result.policies_changed) << what;
}

class ParallelFit : public ::testing::TestWithParam<std::pair<double,
                                                             std::uint64_t>> {
};

TEST_P(ParallelFit, ModelIsByteIdenticalAcrossThreadAndShardSchedules) {
  // Identity matrix: {flat, shard-executed} x {1, 2, 4, hardware} threads
  // must all produce the reference model byte for byte.  threads == 0 is
  // the hardware-concurrency leg (whatever this machine resolves it to).
  const auto [scale, seed] = GetParam();
  FitOptions flat;
  flat.shard_sweep = false;
  const Fit serial = fit_at(scale, seed, 1, flat);
  ASSERT_TRUE(serial.result.success);
  EXPECT_EQ(serial.result.sharded_iterations, 0u)
      << "shard_sweep=false must never shard";
  for (const bool shard : {false, true}) {
    for (const unsigned threads : {1u, 2u, 4u, 0u}) {
      FitOptions options;
      options.shard_sweep = shard;
      const Fit fit = fit_at(scale, seed, threads, options);
      const std::string what = std::string(shard ? "sharded" : "flat") +
                               " sweep at threads=" +
                               std::to_string(threads);
      expect_same_fit(serial, fit, what);
      if (shard && fit.result.iterations > 0) {
        EXPECT_GT(fit.result.sharded_iterations, 0u)
            << "shard schedule never engaged: " << what;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, ParallelFit,
    ::testing::Values(std::pair<double, std::uint64_t>{0.05, 1},
                      std::pair<double, std::uint64_t>{0.08, 6},
                      std::pair<double, std::uint64_t>{0.1, 3}));

TEST(ShardPlanExecution, ExternalPlanFitsToTheIdenticalModel) {
  // An `rdtool plan`-style plan computed up front (any shard count) only
  // changes the sweep schedule; the fit must equal the flat reference.
  core::PipelineConfig config = core::PipelineConfig::with(0.08, 6);
  core::Pipeline pipeline = core::make_pipeline(config);
  core::run_data_stages(pipeline);
  const Model planned_model = Model::one_router_per_as(pipeline.graph);
  const bgp::Engine engine(planned_model);
  analysis::WorksetOptions workset_options;
  workset_options.exact = false;
  const std::vector<analysis::PrefixWorkset> worksets =
      analysis::compute_all_worksets(engine, workset_options);
  analysis::PlanOptions plan_options;
  plan_options.shards = 3;
  const analysis::ShardPlan plan =
      analysis::plan_shards(worksets, planned_model.num_routers(),
                            plan_options);
  ASSERT_NE(plan.fingerprint, 0u);

  FitOptions flat;
  flat.shard_sweep = false;
  const Fit reference = fit_at(0.08, 6, 1, flat);
  ASSERT_TRUE(reference.result.success);
  for (const unsigned threads : {1u, 2u, 4u}) {
    FitOptions options;
    options.shard_plan = &plan;
    const Fit fit = fit_at(0.08, 6, threads, options);
    expect_same_fit(reference, fit,
                    "external plan at threads=" + std::to_string(threads));
    EXPECT_GT(fit.result.sharded_iterations, 0u);
  }
}

TEST(CompactSweep, FitIsByteIdenticalWithAndWithoutCompaction) {
  // The working-set-compacted sweep is an optimization, never a semantic
  // change: the fitted model and iteration counters must match the plain
  // full-model sweep at every thread count, and the counters must prove
  // the compacted path actually ran (or stayed off).
  FitOptions full;
  full.compact_sweep = false;
  const Fit baseline = fit_at(0.08, 6, 1, full);
  ASSERT_TRUE(baseline.result.success);
  EXPECT_EQ(baseline.result.compacted_runs, 0u)
      << "compact_sweep=false must not build views";
  for (const unsigned threads : {1u, 2u, 4u}) {
    const Fit compacted = fit_at(0.08, 6, threads);
    EXPECT_TRUE(compacted.result.success);
    EXPECT_GT(compacted.result.compacted_runs, 0u)
        << "compact_sweep=true never took the compacted path";
    EXPECT_EQ(baseline.model_text, compacted.model_text)
        << "fitted model differs between full and compacted sweeps at "
        << threads << " thread(s)";
    EXPECT_EQ(baseline.result.iterations, compacted.result.iterations);
    EXPECT_EQ(baseline.result.messages_simulated,
              compacted.result.messages_simulated);
    EXPECT_EQ(baseline.result.routers_added, compacted.result.routers_added);
    EXPECT_EQ(baseline.result.policies_changed,
              compacted.result.policies_changed);
  }
}

TEST(ParallelEngine, PooledRunsEqualSerialRuns) {
  core::PipelineConfig config = core::PipelineConfig::with(0.1, 2);
  core::Pipeline pipeline = core::make_pipeline(config);
  core::run_data_stages(pipeline);
  const Model model = Model::one_router_per_as(pipeline.graph);
  const bgp::Engine engine(model);

  const std::vector<bgp::SimJob> jobs = bgp::jobs_for_all_ases(model);
  std::vector<bgp::PrefixSimResult> pooled(jobs.size());
  bgp::ThreadPool pool(4);
  bgp::run_jobs(engine, jobs, pool, [&](std::size_t i,
                                        bgp::PrefixSimResult&& result) {
    pooled[i] = std::move(result);
  });

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const bgp::PrefixSimResult serial =
        engine.run(jobs[i].prefix, jobs[i].origin);
    ASSERT_EQ(serial.routers.size(), pooled[i].routers.size());
    EXPECT_EQ(serial.messages, pooled[i].messages) << "origin " << serial.origin;
    EXPECT_EQ(serial.converged, pooled[i].converged);
    for (std::size_t r = 0; r < serial.routers.size(); ++r) {
      const bgp::RouterState& a = serial.routers[r];
      const bgp::RouterState& b = pooled[i].routers[r];
      ASSERT_EQ(a.rib_in.size(), b.rib_in.size());
      EXPECT_EQ(a.best, b.best);
      EXPECT_EQ(a.best_external, b.best_external);
      for (std::size_t e = 0; e < a.rib_in.size(); ++e) {
        EXPECT_EQ(a.rib_in[e].sender, b.rib_in[e].sender);
        EXPECT_EQ(a.rib_in[e].path, b.rib_in[e].path);
        EXPECT_EQ(a.rib_in[e].med, b.rib_in[e].med);
        EXPECT_EQ(a.rib_in[e].local_pref, b.rib_in[e].local_pref);
      }
    }
  }
}

TEST(EpochContext, CachedUntilTheModelMutates) {
  topo::AsGraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  Model model = Model::one_router_per_as(g);
  bgp::Engine engine(model);

  const auto first = engine.context();
  EXPECT_EQ(first.get(), engine.context().get())
      << "context rebuilt although the model did not change";
  EXPECT_EQ(first->epoch, model.generation());

  // Any mutation bumps the generation and invalidates the cache.
  model.set_ranking(nb::RouterId{1, 0}, Prefix::for_asn(3), 2);
  const auto second = engine.context();
  EXPECT_NE(first.get(), second.get());
  EXPECT_EQ(second->epoch, model.generation());
  EXPECT_GT(second->epoch, first->epoch);

  // The snapshot itself reflects the model: duplicate a router, re-snapshot.
  const std::size_t before = second->ids.size();
  model.duplicate_router(nb::RouterId{2, 0});
  const auto third = engine.context();
  EXPECT_EQ(third->ids.size(), before + 1);

  // Old snapshots stay alive and unchanged for in-flight readers.
  EXPECT_EQ(second->ids.size(), before);
}

}  // namespace
