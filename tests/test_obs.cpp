// Observability subsystem tests (src/obs + nb::json): writer/parser round
// trips, registry and shard-merge determinism for every thread count (the
// tsan preset exercises the sharded sweep for races), trace export in both
// the Chrome and JSONL forms, the elimination histogram's agreement with
// bgp::explain_selection, and the tentpole guarantee -- a refine with full
// observability attached fits a byte-identical model.
#include <gtest/gtest.h>

#include <array>
#include <sstream>

#include "bgp/explain.hpp"
#include "bgp/threadpool.hpp"
#include "core/pipeline.hpp"
#include "core/refine.hpp"
#include "netbase/json.hpp"
#include "obs/observer.hpp"
#include "topology/as_graph.hpp"
#include "topology/model_io.hpp"

namespace {

using topo::Model;

// ---- nb::JsonWriter / nb::json_parse ---------------------------------------

TEST(JsonWriterTest, CompactObjectUsesHistoricalSeparators) {
  nb::JsonWriter w;
  w.begin_object();
  w.key("a").value(1);
  w.key("b").value("x\"y");
  w.key("c").begin_array().value(true).value(2.5).end_array();
  w.end_object();
  EXPECT_EQ(w.str(), "{\"a\": 1, \"b\": \"x\\\"y\", \"c\": [true, 2.5]}");
}

TEST(JsonWriterTest, PrettyPrintsWithIndent) {
  nb::JsonWriter w(2);
  w.begin_object();
  w.key("a").value(1);
  w.key("b").begin_array().value(2).value(3).end_array();
  w.end_object();
  EXPECT_EQ(w.str(), "{\n  \"a\": 1,\n  \"b\": [\n    2,\n    3\n  ]\n}");
}

TEST(JsonWriterTest, ValueFixedAndRawSplice) {
  nb::JsonWriter w;
  w.begin_object();
  w.key("t").value_fixed(1.23456789, 3);
  w.key("x").raw("{\"pre\": [1, 2]}");
  w.end_object();
  EXPECT_EQ(w.str(), "{\"t\": 1.235, \"x\": {\"pre\": [1, 2]}}");
}

TEST(JsonWriterTest, EscapesControlCharacters) {
  nb::JsonWriter w;
  w.begin_object();
  w.key("s").value("tab\there\nline\x01");
  w.end_object();
  EXPECT_EQ(w.str(), "{\"s\": \"tab\\there\\nline\\u0001\"}");
}

TEST(JsonParseTest, RoundTripsWriterOutput) {
  nb::JsonWriter w;
  w.begin_object();
  w.key("name").value("refine");
  w.key("n").value(static_cast<std::uint64_t>(42));
  w.key("neg").value(static_cast<std::int64_t>(-7));
  w.key("ok").value(true);
  w.key("list").begin_array().value(1).value(2).end_array();
  w.key("nested").begin_object().key("x").value(0.5).end_object();
  w.end_object();

  std::string error;
  const auto doc = nb::json_parse(w.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->string_or("name"), "refine");
  EXPECT_EQ(doc->number_or("n"), 42.0);
  EXPECT_EQ(doc->number_or("neg"), -7.0);
  const nb::JsonValue* ok = doc->find("ok");
  ASSERT_NE(ok, nullptr);
  EXPECT_TRUE(ok->boolean);
  const nb::JsonValue* list = doc->find("list");
  ASSERT_NE(list, nullptr);
  ASSERT_TRUE(list->is_array());
  ASSERT_EQ(list->array.size(), 2u);
  EXPECT_EQ(list->array[1].number, 2.0);
  const nb::JsonValue* nested = doc->find("nested");
  ASSERT_NE(nested, nullptr);
  EXPECT_EQ(nested->number_or("x"), 0.5);
}

TEST(JsonParseTest, ParsesEscapesAndLiterals) {
  const auto str = nb::json_parse(R"("a\n\tA\\")");
  ASSERT_TRUE(str.has_value());
  EXPECT_EQ(str->string, "a\n\tA\\");
  const auto null_value = nb::json_parse("null");
  ASSERT_TRUE(null_value.has_value());
  EXPECT_EQ(null_value->type, nb::JsonValue::Type::kNull);
  const auto number = nb::json_parse("  -12.5e2  ");
  ASSERT_TRUE(number.has_value());
  EXPECT_EQ(number->number, -1250.0);
}

TEST(JsonParseTest, DuplicateKeysKeepFirst) {
  const auto doc = nb::json_parse(R"({"k": 1, "k": 2})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->number_or("k"), 1.0);
  EXPECT_EQ(doc->object.size(), 1u);
}

TEST(JsonParseTest, RejectsMalformedWithPosition) {
  std::string error;
  EXPECT_FALSE(nb::json_parse("{\"a\": }", &error).has_value());
  EXPECT_NE(error.find("offset"), std::string::npos);
  EXPECT_FALSE(nb::json_parse("[1, 2", &error).has_value());
  EXPECT_FALSE(nb::json_parse("{} trailing", &error).has_value());
  EXPECT_FALSE(nb::json_parse("{\"a\" 1}", &error).has_value());
  EXPECT_FALSE(nb::json_parse("nul", &error).has_value());
}

// ---- obs::Registry ---------------------------------------------------------

TEST(RegistryTest, CounterDefinitionDedupsByName) {
  obs::Registry reg;
  const obs::CounterId a = reg.counter("x.count");
  const obs::CounterId b = reg.counter("x.count");
  EXPECT_EQ(a.slot, b.slot);
  reg.add(a, 2);
  reg.add(b, 3);
  EXPECT_EQ(reg.value(a), 5u);
  EXPECT_EQ(reg.counter_value("x.count"), 5u);
  EXPECT_EQ(reg.counter_value("never.defined"), 0u);
}

TEST(RegistryTest, HistogramBucketsIncludeOverflow) {
  obs::Registry reg;
  const obs::HistogramId h = reg.histogram("v", {1, 10});
  reg.observe(h, 0.5);
  reg.observe(h, 5);
  reg.observe(h, 100);
  const obs::HistogramData data = reg.data(h);
  ASSERT_EQ(data.buckets.size(), 3u);  // two bounds + overflow
  EXPECT_EQ(data.buckets[0], 1u);
  EXPECT_EQ(data.buckets[1], 1u);
  EXPECT_EQ(data.buckets[2], 1u);
  EXPECT_EQ(data.count, 3u);
  EXPECT_EQ(data.sum, 105.5);
}

TEST(RegistryTest, ToJsonParsesBack) {
  obs::Registry reg;
  reg.add(reg.counter("a.count"), 7);
  reg.observe(reg.histogram("a.hist", {2}), 1);
  std::string error;
  const auto doc = nb::json_parse(reg.to_json(2), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const nb::JsonValue* counters = doc->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->number_or("a.count"), 7.0);
  const nb::JsonValue* histograms = doc->find("histograms");
  ASSERT_NE(histograms, nullptr);
  const nb::JsonValue* hist = histograms->find("a.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->number_or("count"), 1.0);
  EXPECT_EQ(hist->number_or("sum"), 1.0);
}

TEST(RegistryTest, ShardMergeAccumulates) {
  obs::Registry reg;
  const obs::CounterId c = reg.counter("c");
  const obs::HistogramId h = reg.histogram("h", {10});
  obs::Shard shard = reg.make_shard();
  shard.add(c);
  shard.add(c, 4);
  shard.observe(h, 3);
  shard.observe(h, 30);
  reg.merge(shard);
  reg.merge(shard);  // merging twice doubles everything
  EXPECT_EQ(reg.value(c), 10u);
  const obs::HistogramData data = reg.data(h);
  EXPECT_EQ(data.count, 4u);
  EXPECT_EQ(data.buckets[0], 2u);
  EXPECT_EQ(data.buckets[1], 2u);
  EXPECT_EQ(data.sum, 66.0);
}

TEST(RegistryTest, ShardedTotalsDeterministicAcrossThreadCounts) {
  // The merged totals must not depend on the worker count or on how the
  // pool distributed the items (run under tsan to also prove race
  // freedom of the shard writes).
  const std::size_t items = 257;
  const auto run = [items](unsigned threads) {
    obs::Registry reg;
    const obs::CounterId c = reg.counter("work.count");
    const obs::HistogramId h = reg.histogram("work.value", {10, 100});
    bgp::ThreadPool pool(threads);
    {
      obs::ShardGroup shards(reg, pool.shard_count());
      pool.parallel_for_worker(items, [&](unsigned worker, std::size_t i) {
        obs::Shard& shard = shards.shard(worker);
        shard.add(c, i);
        shard.observe(h, static_cast<double>(i % 150));
      });
    }
    return std::make_pair(reg.value(c), reg.data(h));
  };
  const auto [serial_count, serial_hist] = run(1);
  EXPECT_EQ(serial_count, items * (items - 1) / 2);
  EXPECT_EQ(serial_hist.count, items);
  for (const unsigned threads : {2u, 4u, 8u}) {
    const auto [count, hist] = run(threads);
    EXPECT_EQ(count, serial_count) << threads << " threads";
    EXPECT_EQ(hist.buckets, serial_hist.buckets) << threads << " threads";
    EXPECT_EQ(hist.count, serial_hist.count) << threads << " threads";
    EXPECT_EQ(hist.sum, serial_hist.sum) << threads << " threads";
  }
}

// ---- obs::TraceSink / obs::PhaseTimer --------------------------------------

TEST(TraceLevelTest, ParsesAndNests) {
  obs::TraceLevel level = obs::TraceLevel::kOff;
  EXPECT_TRUE(obs::parse_trace_level("prefix", &level));
  EXPECT_EQ(level, obs::TraceLevel::kPrefix);
  EXPECT_TRUE(obs::parse_trace_level("off", &level));
  EXPECT_FALSE(obs::parse_trace_level("verbose", &level));

  const obs::TraceSink iteration(obs::TraceLevel::kIteration);
  EXPECT_TRUE(iteration.enabled(obs::TraceLevel::kPhase));
  EXPECT_TRUE(iteration.enabled(obs::TraceLevel::kIteration));
  EXPECT_FALSE(iteration.enabled(obs::TraceLevel::kPrefix));
  EXPECT_FALSE(iteration.enabled(obs::TraceLevel::kOff));
  const obs::TraceSink off(obs::TraceLevel::kOff);
  EXPECT_FALSE(off.enabled(obs::TraceLevel::kPhase));
  EXPECT_STREQ(obs::trace_level_name(obs::TraceLevel::kPrefix), "prefix");
}

TEST(TraceSinkTest, ChromeExportParses) {
  obs::TraceSink sink(obs::TraceLevel::kPrefix);
  sink.name_process("unit");
  sink.complete("refine", "iteration", 10, 25, 0, "{\"iteration\": 1}");
  sink.counter("refine", "model", 35, "{\"routers\": 4}");
  sink.instant("refine", "done", 40, 7);
  EXPECT_EQ(sink.size(), 4u);

  std::ostringstream out;
  sink.write_chrome(out);
  std::string error;
  const auto doc = nb::json_parse(out.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->string_or("displayTimeUnit"), "ms");
  const nb::JsonValue* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 4u);
  const nb::JsonValue& span = events->array[1];
  EXPECT_EQ(span.string_or("ph"), "X");
  EXPECT_EQ(span.string_or("name"), "iteration");
  EXPECT_EQ(span.number_or("ts"), 10.0);
  EXPECT_EQ(span.number_or("dur"), 25.0);
  EXPECT_EQ(span.number_or("pid"), 1.0);
  const nb::JsonValue* args = span.find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->number_or("iteration"), 1.0);
  const nb::JsonValue& instant = events->array[3];
  EXPECT_EQ(instant.string_or("ph"), "i");
  EXPECT_EQ(instant.string_or("s"), "t");
  EXPECT_EQ(instant.number_or("tid"), 7.0);
}

TEST(TraceSinkTest, JsonlEmitsOneParseableEventPerLine) {
  obs::TraceSink sink;
  sink.complete("a", "one", 0, 1, 0);
  sink.complete("a", "two", 1, 1, 0);
  std::ostringstream out;
  sink.write_jsonl(out);
  std::istringstream lines(out.str());
  std::string line;
  std::size_t parsed = 0;
  while (std::getline(lines, line)) {
    std::string error;
    const auto event = nb::json_parse(line, &error);
    ASSERT_TRUE(event.has_value()) << error;
    EXPECT_EQ(event->string_or("cat"), "a");
    ++parsed;
  }
  EXPECT_EQ(parsed, 2u);
}

TEST(PhaseTimerTest, RecordsNanosAndEmitsSpan) {
  obs::Registry reg;
  const obs::CounterId ns = reg.counter("t.ns");
  obs::TraceSink sink(obs::TraceLevel::kPhase);
  { obs::PhaseTimer timer(&reg, ns, &sink, "unit", "{\"k\": 1}"); }
  EXPECT_GT(reg.value(ns), 0u);
  ASSERT_EQ(sink.size(), 1u);
  std::ostringstream out;
  sink.write_jsonl(out);
  const auto event = nb::json_parse(out.str());
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->string_or("ph"), "X");
  EXPECT_EQ(event->string_or("cat"), "phase");
  EXPECT_EQ(event->string_or("name"), "unit");
  const nb::JsonValue* args = event->find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->number_or("k"), 1.0);
}

TEST(PhaseTimerTest, SilentWithoutSinksAndBelowPhaseLevel) {
  obs::TraceSink off(obs::TraceLevel::kOff);
  {
    obs::PhaseTimer no_sinks(nullptr, obs::CounterId{}, nullptr, "a");
    obs::PhaseTimer off_trace(nullptr, obs::CounterId{}, &off, "b");
    EXPECT_GE(no_sinks.seconds(), 0.0);
    no_sinks.stop();
    no_sinks.stop();  // idempotent
  }
  EXPECT_EQ(off.size(), 0u);
}

// ---- elimination histogram -------------------------------------------------

TEST(EliminationHistogramTest, AgreesWithExplainSelection) {
  // Three equal-length branches into AS 5 with a MED ranking: eliminations
  // happen at several different steps across the sim's routers.  The
  // histogram must equal explain_selection's per-candidate `lost_at`
  // annotations aggregated over every router.
  topo::AsGraph graph;
  graph.add_edge(9, 1);
  graph.add_edge(9, 2);
  graph.add_edge(9, 3);
  graph.add_edge(1, 5);
  graph.add_edge(2, 5);
  graph.add_edge(3, 5);
  Model model = Model::one_router_per_as(graph);
  model.set_ranking(nb::RouterId{5, 0}, nb::Prefix::for_asn(9), 3);

  const bgp::Engine engine(model);
  const bgp::PrefixSimResult sim = engine.run(nb::Prefix::for_asn(9), 9);
  const std::vector<std::uint32_t> ids = bgp::dense_ids(model);
  const auto histogram = obs::elimination_histogram(ids, sim);

  std::array<std::uint64_t, bgp::kNumDecisionSteps> expected{};
  std::uint64_t eliminations = 0;
  for (std::size_t r = 0; r < sim.routers.size(); ++r) {
    const bgp::RouteExplanation explanation =
        bgp::explain_selection(model, sim, static_cast<Model::Dense>(r));
    for (const auto& candidate : explanation.candidates) {
      if (candidate.is_best) continue;
      ++expected[static_cast<std::size_t>(candidate.lost_at)];
      ++eliminations;
    }
  }
  EXPECT_EQ(histogram, expected);
  EXPECT_GT(eliminations, 0u);  // the fixture must actually eliminate
}

// ---- observed refine: byte identity + metric consistency -------------------

struct FitOut {
  std::string model_text;
  core::RefineResult result;
};

FitOut fit(double scale, unsigned threads, const obs::Observer* observer) {
  core::PipelineConfig config = core::PipelineConfig::with(scale, 1);
  core::Pipeline pipeline = core::make_pipeline(config);
  core::run_data_stages(pipeline);
  Model model = Model::one_router_per_as(pipeline.graph);
  core::RefineConfig refine;
  refine.threads = threads;
  refine.observer = observer;
  FitOut out;
  out.result = core::refine_model(model, pipeline.split.training, refine);
  out.model_text = topo::model_to_string(model);
  return out;
}

TEST(ObservedRefineTest, ModelByteIdenticalWithAndWithoutObserver) {
  const double scale = 0.1;
  const FitOut plain = fit(scale, 1, nullptr);
  ASSERT_TRUE(plain.result.success);
  for (const unsigned threads : {1u, 3u}) {
    obs::Registry reg;
    obs::TraceSink sink(obs::TraceLevel::kPrefix);
    obs::Observer observer;
    observer.registry = &reg;
    observer.trace = &sink;
    const FitOut observed = fit(scale, threads, &observer);
    EXPECT_TRUE(observed.result.success);
    EXPECT_EQ(observed.model_text, plain.model_text)
        << "observed fit differs at " << threads << " threads";
    // The registry must agree with the result it observed.
    EXPECT_EQ(reg.counter_value("refine.iterations"),
              observed.result.iterations);
    EXPECT_EQ(reg.counter_value("refine.messages"),
              observed.result.messages_simulated);
    EXPECT_EQ(reg.counter_value("engine.messages"),
              observed.result.messages_simulated);
    EXPECT_EQ(reg.counter_value("refine.routers_added"),
              observed.result.routers_added);
    EXPECT_GT(sink.size(), 0u);
  }
}

TEST(ObservedRefineTest, IterationSpansMatchResultLog) {
  obs::Registry reg;
  obs::TraceSink sink(obs::TraceLevel::kIteration);
  obs::Observer observer;
  observer.registry = &reg;
  observer.trace = &sink;
  const FitOut observed = fit(0.1, 2, &observer);
  ASSERT_TRUE(observed.result.success);

  std::ostringstream out;
  sink.write_chrome(out);
  std::string error;
  const auto doc = nb::json_parse(out.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const nb::JsonValue* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::size_t iteration_spans = 0;
  for (const nb::JsonValue& event : events->array) {
    if (event.string_or("ph") != "X" ||
        event.string_or("name") != "iteration") {
      continue;
    }
    const nb::JsonValue* args = event.find("args");
    ASSERT_NE(args, nullptr);
    const std::size_t i = static_cast<std::size_t>(
        args->number_or("iteration"));
    ASSERT_LE(i, observed.result.log.size());
    const core::RefineIterationLog& log = observed.result.log[i - 1];
    EXPECT_EQ(args->number_or("matched"),
              static_cast<double>(log.paths_matched));
    EXPECT_EQ(args->number_or("routers"), static_cast<double>(log.routers));
    EXPECT_EQ(args->number_or("filters"), static_cast<double>(log.filters));
    EXPECT_EQ(args->number_or("active_prefixes"),
              static_cast<double>(log.active_prefixes));
    ++iteration_spans;
  }
  EXPECT_EQ(iteration_spans, observed.result.log.size());
}

TEST(ObservedRefineTest, EngineMetricsDeterministicAcrossThreadCounts) {
  // The sharded engine counters -- including the messages_per_prefix
  // histogram -- are merged in worker order and must match the 1-thread
  // totals exactly (timing counters excluded, of course).
  const auto collect = [](unsigned threads) {
    obs::Registry reg;
    obs::Observer observer;
    observer.registry = &reg;
    const FitOut observed = fit(0.1, threads, &observer);
    EXPECT_TRUE(observed.result.success);
    return std::make_pair(reg.data(reg.histogram(
                              "engine.messages_per_prefix", {})),
                          std::array<std::uint64_t, 6>{
                              reg.counter_value("engine.messages"),
                              reg.counter_value("engine.activations"),
                              reg.counter_value("engine.rib_inserts"),
                              reg.counter_value("engine.rib_replacements"),
                              reg.counter_value("engine.withdrawals"),
                              reg.counter_value("engine.selection_changes")});
  };
  const auto [serial_hist, serial_counters] = collect(1);
  EXPECT_GT(serial_counters[0], 0u);
  EXPECT_GT(serial_hist.count, 0u);
  for (const unsigned threads : {2u, 4u}) {
    const auto [hist, counters] = collect(threads);
    EXPECT_EQ(counters, serial_counters) << threads << " threads";
    EXPECT_EQ(hist.buckets, serial_hist.buckets) << threads << " threads";
    EXPECT_EQ(hist.count, serial_hist.count) << threads << " threads";
    EXPECT_EQ(hist.sum, serial_hist.sum) << threads << " threads";
  }
}

}  // namespace
