// rdtool exit-code contract tests: the documented 0/1/2/3/130 contracts of
// lint, audit, refine, diff and impact, exercised against the real binary
// (RDTOOL_BIN, injected by the build), plus --json well-formedness via the
// nb::json_parse round trip.  Every fixture file the commands read is
// written by this test into a throwaway directory.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "netbase/json.hpp"
#include "topology/as_graph.hpp"
#include "topology/model_io.hpp"

namespace {

namespace fs = std::filesystem;
using nb::Prefix;
using nb::RouterId;
using topo::Model;

/// Runs `rdtool <args>`, returns the exit code (asserts the process ran).
int run(const std::string& args) {
  const std::string command =
      std::string(RDTOOL_BIN) + " " + args + " >/dev/null 2>&1";
  const int status = std::system(command.c_str());
  EXPECT_NE(status, -1) << command;
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return WEXITSTATUS(status);
}

/// Runs `rdtool <args>` and captures stdout (stderr discarded).
std::string capture(const std::string& args, int* exit_code = nullptr) {
  const std::string command =
      std::string(RDTOOL_BIN) + " " + args + " 2>/dev/null";
  FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << command;
  std::string out;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    out.append(buffer, n);
  }
  const int status = pclose(pipe);
  if (exit_code != nullptr) *exit_code = WEXITSTATUS(status);
  return out;
}

/// Shared throwaway workspace with the model/dataset files the contract
/// tests read; built once (generate + refine dominate the cost).
class RdtoolCliTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new fs::path(fs::temp_directory_path() /
                        ("rdtool_cli_" + std::to_string(getpid())));
    fs::create_directories(*dir_);

    // A clean hand-built model: lint and audit must both exit 0 on it.
    topo::AsGraph graph;
    graph.add_edge(9, 1);
    graph.add_edge(9, 2);
    graph.add_edge(1, 5);
    graph.add_edge(2, 5);
    Model diamond = Model::one_router_per_as(graph);
    diamond.set_ranking(RouterId{5, 0}, Prefix::for_asn(9), 2);
    std::ofstream out(path("diamond.model"));
    topo::write_model(out, diamond);
    ASSERT_TRUE(out.good());

    // Generated dataset + ground truth, and a fitted model refined from it.
    ASSERT_EQ(run("generate --out " + path("ds.dump") + " --scale 0.05 "
                  "--seed 3 --model-out " + path("gt.model")),
              0);
    ASSERT_EQ(run("refine --dataset " + path("ds.dump") + " --out " +
                  path("fit.model")),
              0);  // the refine exit-0 contract: fit converged
  }

  static void TearDownTestSuite() {
    std::error_code ec;
    fs::remove_all(*dir_, ec);
    delete dir_;
    dir_ = nullptr;
  }

  static std::string path(const std::string& name) {
    return (*dir_ / name).string();
  }

  static fs::path* dir_;
};

fs::path* RdtoolCliTest::dir_ = nullptr;

TEST_F(RdtoolCliTest, HelpAndUsage) {
  EXPECT_EQ(run("help"), 0);
  EXPECT_EQ(run("no-such-command"), 2);
  EXPECT_EQ(run(""), 2);
}

TEST_F(RdtoolCliTest, LintContract) {
  EXPECT_EQ(run("lint --model " + path("diamond.model")), 0);
  EXPECT_EQ(run("lint --fixture dangling-session"), 1);
  EXPECT_EQ(run("lint --model " + path("no-such-file.model")), 2);

  int code = -1;
  const auto json = nb::json_parse(
      capture("lint --fixture dangling-session --json", &code));
  EXPECT_EQ(code, 1);
  ASSERT_TRUE(json.has_value());
  ASSERT_NE(json->find("errors"), nullptr);
  EXPECT_GE(json->find("errors")->number, 1.0);
  EXPECT_NE(json->find("diagnostics"), nullptr);
}

TEST_F(RdtoolCliTest, AuditContract) {
  EXPECT_EQ(run("audit --model " + path("diamond.model")), 0);
  EXPECT_EQ(run("audit --fixture bad-gadget"), 1);
  EXPECT_EQ(run("audit --model " + path("no-such-file.model")), 2);

  int code = -1;
  const auto json =
      nb::json_parse(capture("audit --fixture bad-gadget --json", &code));
  EXPECT_EQ(code, 1);
  ASSERT_TRUE(json.has_value());
  ASSERT_NE(json->find("errors"), nullptr);
  EXPECT_GE(json->find("errors")->number, 1.0);
}

TEST_F(RdtoolCliTest, RefineContract) {
  // Exit 0 is pinned by SetUpTestSuite (the fit that produced fit.model).
  EXPECT_EQ(run("refine --out " + path("x.model")), 2);  // missing --dataset
  EXPECT_EQ(run("refine --dataset " + path("no-such.dump") + " --out " +
                path("x.model")),
            1);
  // A one-iteration prefix budget cannot fit the 0.05 dataset: the fit
  // completes degraded (frozen budget-exhausted prefixes), exit 3.
  int code = -1;
  const auto json = nb::json_parse(
      capture("refine --dataset " + path("ds.dump") + " --out " +
                  path("degraded.model") + " --prefix-budget 1 --json",
              &code));
  EXPECT_EQ(code, 3);
  ASSERT_TRUE(json.has_value());
  ASSERT_NE(json->find("degraded"), nullptr);
  EXPECT_TRUE(json->find("degraded")->boolean);
  // Reachability-cache counters ride along in every refine --json.
  const nb::JsonValue* cache = json->find("cache");
  ASSERT_NE(cache, nullptr);
  ASSERT_NE(cache->find("hits"), nullptr);
  ASSERT_NE(cache->find("misses"), nullptr);
  ASSERT_NE(cache->find("invalidations"), nullptr);
  EXPECT_GT(cache->number_or("misses"), 0.0);
  // A degraded stop leaves the always-on flight recorder's post-mortem
  // next to the model, and the report says so.
  ASSERT_NE(json->find("flight_dump_written"), nullptr);
  EXPECT_TRUE(json->find("flight_dump_written")->boolean);
  std::ifstream dump_in(path("degraded.model.flight.json"));
  std::stringstream dump_text;
  dump_text << dump_in.rdbuf();
  const auto dump = nb::json_parse(dump_text.str());
  ASSERT_TRUE(dump.has_value()) << "flight dump is not valid JSON";
  ASSERT_NE(dump->find("tool"), nullptr);
  EXPECT_EQ(dump->find("tool")->string, "flight-recorder");
  ASSERT_NE(dump->find("rings"), nullptr);
  EXPECT_FALSE(dump->find("rings")->array.empty());
#ifdef RD_FAULT_INJECTION
  // The injected deterministic interrupt follows the SIGINT path: exit 130.
  EXPECT_EQ(run("refine --dataset " + path("ds.dump") + " --out " +
                path("y.model") + " --checkpoint " + path("ckpt") +
                " --interrupt-after 1"),
            130);
#endif
}

TEST_F(RdtoolCliTest, ProfileContract) {
  // A shard-instrumented trace: multi-thread fit at kIteration level.
  ASSERT_EQ(run("refine --dataset " + path("ds.dump") + " --out " +
                path("prof.model") + " --threads 2 --trace " +
                path("prof.trace")),
            0);
  // And one with no shard spans (phase level): exit 1, not a crash.
  ASSERT_EQ(run("refine --dataset " + path("ds.dump") + " --out " +
                path("phase.model") + " --threads 2 --trace " +
                path("phase.trace") + " --trace-level phase"),
            0);

  EXPECT_EQ(run("profile"), 2);                        // missing operand
  EXPECT_EQ(run("profile " + path("no-such.trace")), 2);
  EXPECT_EQ(run("profile " + path("phase.trace")), 1);  // nothing to profile
  EXPECT_EQ(run("profile " + path("prof.trace")), 0);

  int code = -1;
  const auto json = nb::json_parse(
      capture("profile " + path("prof.trace") + " --json", &code));
  EXPECT_EQ(code, 0);
  ASSERT_TRUE(json.has_value());
  ASSERT_NE(json->find("tool"), nullptr);
  EXPECT_EQ(json->find("tool")->string, "profile");
  ASSERT_NE(json->find("workers"), nullptr);
  EXPECT_GE(json->find("workers")->number, 1.0);
  ASSERT_NE(json->find("shard_samples"), nullptr);
  EXPECT_GT(json->find("shard_samples")->number, 0.0);
  EXPECT_NE(json->find("measured_speedup"), nullptr);
  EXPECT_NE(json->find("cost_rank_correlation"), nullptr);
  ASSERT_NE(json->find("lanes"), nullptr);
  ASSERT_FALSE(json->find("lanes")->array.empty());
  const auto& lane = json->find("lanes")->array.front();
  EXPECT_NE(lane.find("worker"), nullptr);
  EXPECT_NE(lane.find("busy_seconds"), nullptr);
  EXPECT_NE(lane.find("idle_seconds"), nullptr);
  EXPECT_NE(lane.find("shards"), nullptr);
}

TEST_F(RdtoolCliTest, DiffContract) {
  EXPECT_EQ(run("diff " + path("fit.model") + " " + path("fit.model")), 0);
  EXPECT_EQ(run("diff " + path("fit.model") + " " + path("gt.model")), 1);
  EXPECT_EQ(run("diff " + path("fit.model")), 2);  // missing operand
  EXPECT_EQ(
      run("diff " + path("fit.model") + " " + path("no-such-file.model")), 2);

  int code = -1;
  const auto json = nb::json_parse(capture(
      "diff " + path("fit.model") + " " + path("fit.model") + " --json",
      &code));
  EXPECT_EQ(code, 0);
  ASSERT_TRUE(json.has_value());
  ASSERT_NE(json->find("identical"), nullptr);
  EXPECT_TRUE(json->find("identical")->boolean);
  ASSERT_NE(json->find("routers_differing"), nullptr);
  EXPECT_EQ(json->find("routers_differing")->number, 0.0);
}

TEST_F(RdtoolCliTest, PlanContract) {
  EXPECT_EQ(run("plan --shards 4"), 2);  // no model source
  EXPECT_EQ(run("plan --model " + path("diamond.model") + " --shards 0"), 2);
  EXPECT_EQ(run("plan --model " + path("no-such-file.model")), 2);
  EXPECT_EQ(run("plan --model " + path("diamond.model")), 0);

  // The pinned --json shape the CI determinism job diffs.
  const std::string args =
      "plan --generated --scale 0.05 --seed 3 --shards 4 --json";
  int code = -1;
  const std::string out = capture(args, &code);
  EXPECT_EQ(code, 0);
  const auto json = nb::json_parse(out);
  ASSERT_TRUE(json.has_value());
  ASSERT_NE(json->find("tool"), nullptr);
  EXPECT_EQ(json->find("tool")->string, "plan");
  ASSERT_NE(json->find("version"), nullptr);
  EXPECT_EQ(json->find("version")->number, 1.0);
  ASSERT_NE(json->find("shards"), nullptr);
  EXPECT_EQ(json->find("shards")->number, 4.0);
  ASSERT_NE(json->find("total_cost"), nullptr);
  EXPECT_GT(json->find("total_cost")->number, 0.0);
  EXPECT_NE(json->find("cut_weight"), nullptr);
  ASSERT_NE(json->find("imbalance"), nullptr);
  EXPECT_GE(json->find("imbalance")->number, 1.0);
  EXPECT_NE(json->find("relaxed_prefixes"), nullptr);
  ASSERT_NE(json->find("plan"), nullptr);
  ASSERT_EQ(json->find("plan")->array.size(), 4u);
  const auto& shard = json->find("plan")->array.front();
  ASSERT_NE(shard.find("shard"), nullptr);
  ASSERT_NE(shard.find("cost"), nullptr);
  ASSERT_NE(shard.find("routers"), nullptr);
  ASSERT_NE(shard.find("prefixes"), nullptr);
  ASSERT_FALSE(shard.find("prefixes")->array.empty());
  const auto& prefix = shard.find("prefixes")->array.front();
  EXPECT_NE(prefix.find("prefix"), nullptr);
  EXPECT_NE(prefix.find("origin"), nullptr);
  EXPECT_NE(prefix.find("cost"), nullptr);
  EXPECT_NE(prefix.find("workset"), nullptr);
  EXPECT_NE(prefix.find("relaxed"), nullptr);

  // Determinism: the same invocation yields byte-identical output (no
  // timings or other run-dependent fields in plan --json).
  int again_code = -1;
  EXPECT_EQ(out, capture(args, &again_code));
  EXPECT_EQ(again_code, 0);
}

TEST_F(RdtoolCliTest, ImpactContract) {
  const std::string model = " --model " + path("diamond.model");
  EXPECT_EQ(run("impact" + model + " --edit session-down --session 9.0:1.0"),
            0);
  EXPECT_EQ(run("impact" + model + " --edit no-such-edit"), 2);
  EXPECT_EQ(run("impact" + model + " --edit session-down"), 2);  // no session
  EXPECT_EQ(run("impact" + model +
                " --edit policy-change --router 5.0"),  // missing --origin
            2);
  EXPECT_EQ(run("impact --model " + path("no-such-file.model") +
                " --edit session-down --session 9.0:1.0"),
            2);

  int code = -1;
  const auto json = nb::json_parse(
      capture("impact" + model +
                  " --edit session-down --session 9.0:1.0 --json",
              &code));
  EXPECT_EQ(code, 0);
  ASSERT_TRUE(json.has_value());
  ASSERT_NE(json->find("routers_total"), nullptr);
  EXPECT_GE(json->find("routers_total")->number, 1.0);
  ASSERT_NE(json->find("prefixes"), nullptr);
  EXPECT_FALSE(json->find("prefixes")->array.empty());
}

TEST_F(RdtoolCliTest, ServeContract) {
  EXPECT_EQ(run("serve"), 2);  // missing --model
  EXPECT_EQ(run("serve --model " + path("no-such-file.model") +
                " --once '{\"op\":\"health\"}'"),
            1);
  // An unintelligible --once request answers status "error" and exits 1.
  EXPECT_EQ(
      run("serve --model " + path("fit.model") + " --once '{\"op\":\"fly\"}'"),
      1);
  EXPECT_EQ(
      run("serve --model " + path("fit.model") + " --once 'not json'"), 1);

  // The pinned health --once shape (the CI smoke job's liveness probe).
  int code = -1;
  const auto health = nb::json_parse(capture(
      "serve --model " + path("fit.model") + " --once '{\"op\":\"health\"}'",
      &code));
  EXPECT_EQ(code, 0);
  ASSERT_TRUE(health.has_value());
  EXPECT_EQ(health->string_or("status"), "ok");
  for (const char* key :
       {"uptime_seconds", "generation", "ases", "routers", "workers",
        "queue_depth", "queue_capacity", "draining", "peak_rss_bytes",
        "counters"}) {
    EXPECT_NE(health->find(key), nullptr) << key;
  }

  // A real query through --once: scale-0.05 seed-3 generation is
  // deterministic, so AS 11 and AS 12 always exist in fit.model.
  const auto predict = nb::json_parse(capture(
      "serve --model " + path("fit.model") +
          " --once '{\"op\":\"predict\",\"origin\":11,\"vantage\":12}'",
      &code));
  EXPECT_EQ(code, 0);
  ASSERT_TRUE(predict.has_value());
  EXPECT_EQ(predict->string_or("status"), "ok");
  ASSERT_NE(predict->find("paths"), nullptr);
  EXPECT_FALSE(predict->find("paths")->array.empty());
}

}  // namespace
