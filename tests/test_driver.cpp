// Tests for the multi-prefix simulation driver.
#include <gtest/gtest.h>

#include <mutex>
#include <set>

#include "bgp/driver.hpp"

namespace {

using topo::Model;

Model chain() {
  topo::AsGraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  return Model::one_router_per_as(g);
}

TEST(DriverTest, JobsForAllAses) {
  Model m = chain();
  auto jobs = bgp::jobs_for_all_ases(m);
  ASSERT_EQ(jobs.size(), 3u);
  std::set<nb::Asn> origins;
  for (const auto& job : jobs) {
    origins.insert(job.origin);
    EXPECT_EQ(job.prefix, nb::Prefix::for_asn(job.origin));
  }
  EXPECT_EQ(origins, (std::set<nb::Asn>{1, 2, 3}));
}

TEST(DriverTest, EveryJobConsumedOnce) {
  Model m = chain();
  bgp::Engine engine(m);
  auto jobs = bgp::jobs_for_all_ases(m);
  bgp::ThreadPool pool(2);
  std::vector<int> seen(jobs.size(), 0);
  bgp::run_jobs(engine, jobs, pool,
                [&](std::size_t index, bgp::PrefixSimResult&& result) {
                  ++seen[index];
                  EXPECT_EQ(result.origin, jobs[index].origin);
                  EXPECT_TRUE(result.converged);
                });
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(DriverTest, ConsumerSerialized) {
  Model m = chain();
  bgp::Engine engine(m);
  auto jobs = bgp::jobs_for_all_ases(m);
  bgp::ThreadPool pool(4);
  int concurrent = 0;
  int max_concurrent = 0;
  std::mutex check;
  bgp::run_jobs(engine, jobs, pool,
                [&](std::size_t, bgp::PrefixSimResult&&) {
                  // run_jobs holds its own mutex around the consumer; this
                  // counter must therefore never exceed 1.
                  {
                    std::lock_guard lock(check);
                    ++concurrent;
                    max_concurrent = std::max(max_concurrent, concurrent);
                  }
                  std::lock_guard lock(check);
                  --concurrent;
                });
  EXPECT_EQ(max_concurrent, 1);
}

TEST(DriverTest, ResultsMatchDirectRuns) {
  Model m = chain();
  bgp::Engine engine(m);
  auto jobs = bgp::jobs_for_all_ases(m);
  bgp::ThreadPool pool(3);
  std::vector<bgp::PrefixSimResult> results(jobs.size());
  bgp::run_jobs(engine, jobs, pool,
                [&](std::size_t index, bgp::PrefixSimResult&& result) {
                  results[index] = std::move(result);
                });
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    auto direct = engine.run(jobs[i].prefix, jobs[i].origin);
    ASSERT_EQ(results[i].routers.size(), direct.routers.size());
    for (std::size_t r = 0; r < direct.routers.size(); ++r)
      EXPECT_EQ(results[i].routers[r].best, direct.routers[r].best);
  }
}

}  // namespace
