// Static model diff (analysis/model_diff): self-diff emptiness (the
// acceptance criterion), structural findings (A811), abstract route-set
// findings (A810), and target derivation.
#include "analysis/model_diff.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/pipeline.hpp"
#include "topology/as_graph.hpp"

namespace {

using analysis::DiffOptions;
using analysis::DiffResult;
using nb::Prefix;
using nb::RouterId;
using topo::ExportFilter;
using topo::Model;

Model diamond() {
  topo::AsGraph graph;
  graph.add_edge(9, 1);
  graph.add_edge(9, 2);
  graph.add_edge(1, 5);
  graph.add_edge(2, 5);
  Model model = Model::one_router_per_as(graph);
  // A policy overlay so the diff has a derivable target prefix.
  model.set_ranking(RouterId{5, 0}, Prefix::for_asn(9), 2);
  return model;
}

TEST(ModelDiffTest, SelfDiffIsIdentical) {
  const Model model = diamond();
  const DiffResult result = analysis::diff_models(model, model);
  EXPECT_TRUE(result.identical());
  EXPECT_EQ(result.routers_differing, 0u);
  EXPECT_EQ(result.structure_findings, 0u);
  EXPECT_EQ(result.prefixes_compared, 1u);
  EXPECT_TRUE(result.diagnostics.empty())
      << analysis::render_diagnostics(result.diagnostics);
}

TEST(ModelDiffTest, FittedSelfDiffIsIdentical) {
  // The acceptance criterion at pipeline scale: a fitted model diffed
  // against itself reports zero differences even where enumeration caps
  // truncate (deterministic enumeration => identical abstract sets).
  core::Pipeline pipeline =
      core::run_full_pipeline(core::PipelineConfig::with(0.08, 11));
  ASSERT_TRUE(pipeline.refine_result.success);
  const DiffResult result =
      analysis::diff_models(pipeline.model, pipeline.model);
  EXPECT_TRUE(result.identical());
  EXPECT_GT(result.prefixes_compared, 0u);
  for (const auto& diagnostic : result.diagnostics) {
    // Only the aggregate truncation note may appear.
    EXPECT_EQ(diagnostic.code, analysis::codes::kRouteSpaceTruncated);
  }
}

TEST(ModelDiffTest, MissingRouterAndSessionAreStructuralFindings) {
  const Model a = diamond();
  topo::AsGraph graph;
  graph.add_edge(9, 1);
  graph.add_edge(9, 2);
  graph.add_edge(1, 5);  // 2-5 session missing
  Model b = Model::one_router_per_as(graph);
  b.set_ranking(RouterId{5, 0}, Prefix::for_asn(9), 2);

  const DiffResult result = analysis::diff_models(a, b);
  EXPECT_FALSE(result.identical());
  EXPECT_GT(result.structure_findings, 0u);
  EXPECT_TRUE(analysis::contains_code(result.diagnostics,
                                      analysis::codes::kStructureDiffers));
}

TEST(ModelDiffTest, FilterChangeShowsAsRouteSetDifference) {
  const Model a = diamond();
  Model b = diamond();
  b.set_export_filter(RouterId{1, 0}, RouterId{5, 0}, Prefix::for_asn(9),
                      ExportFilter::kDenyAll, RouterId{5, 0});
  const DiffResult result = analysis::diff_models(a, b);
  EXPECT_FALSE(result.identical());
  EXPECT_EQ(result.structure_findings, 0u);  // same routers and sessions
  EXPECT_GT(result.routers_differing, 0u);
  EXPECT_TRUE(analysis::contains_code(result.diagnostics,
                                      analysis::codes::kRouteSetDiffers));
  ASSERT_EQ(result.prefixes.size(), 1u);
  // 5.0 loses the [1 9] branch; 1.0's own route set is unchanged (its
  // export filter does not affect what IT holds).
  const auto& routers = result.prefixes.front().routers;
  EXPECT_NE(std::find(routers.begin(), routers.end(), RouterId{5, 0}),
            routers.end());
  EXPECT_EQ(std::find(routers.begin(), routers.end(), RouterId{1, 0}),
            routers.end());
}

TEST(ModelDiffTest, RankingChangeShowsThroughImportAttributes) {
  // Import rewrites MED from the per-prefix ranking, so moving 5.0's
  // preference from AS 2 to AS 1 changes the attribute tuples of both
  // received routes -- the diff sees rankings without simulating.
  const Model a = diamond();  // prefers AS 2
  Model b = diamond();
  b.set_ranking(RouterId{5, 0}, Prefix::for_asn(9), 1);
  const DiffResult result = analysis::diff_models(a, b);
  EXPECT_FALSE(result.identical());
  ASSERT_EQ(result.prefixes.size(), 1u);
  const auto& routers = result.prefixes.front().routers;
  EXPECT_NE(std::find(routers.begin(), routers.end(), RouterId{5, 0}),
            routers.end());
}

TEST(ModelDiffTest, ExplicitOriginsOverrideDerivation) {
  const Model model = diamond();
  DiffOptions options;
  options.origins = {9};
  const DiffResult result = analysis::diff_models(model, model, options);
  EXPECT_EQ(result.prefixes_compared, 1u);
  EXPECT_TRUE(result.identical());
}

TEST(ModelDiffTest, UnderivableOverlayIsSkippedNotDiffed) {
  Model a = diamond();
  Model b = diamond();
  const Prefix alien = *Prefix::parse("192.168.7.0/24");
  a.set_ranking(RouterId{5, 0}, alien, 2);
  b.set_ranking(RouterId{5, 0}, alien, 2);
  const DiffResult result = analysis::diff_models(a, b);
  EXPECT_EQ(result.prefixes_skipped, 1u);
  EXPECT_TRUE(result.identical());
}

TEST(ModelDiffTest, ThreadCountDoesNotChangeTheResult) {
  const Model a = diamond();
  Model b = diamond();
  b.set_export_filter(RouterId{1, 0}, RouterId{5, 0}, Prefix::for_asn(9),
                      ExportFilter::kDenyAll, RouterId{5, 0});
  DiffOptions serial;
  serial.threads = 1;
  DiffOptions wide;
  wide.threads = 4;
  const DiffResult x = analysis::diff_models(a, b, serial);
  const DiffResult y = analysis::diff_models(a, b, wide);
  EXPECT_EQ(x.routers_differing, y.routers_differing);
  EXPECT_EQ(x.prefixes_compared, y.prefixes_compared);
  EXPECT_EQ(analysis::render_diagnostics(x.diagnostics),
            analysis::render_diagnostics(y.diagnostics));
}

}  // namespace
