// Tests for the C-BGP-style model serialization.
#include <gtest/gtest.h>

#include "bgp/engine.hpp"
#include "core/pipeline.hpp"
#include "topology/model_io.hpp"

namespace {

using nb::Prefix;
using nb::RouterId;
using topo::Model;

Model sample_model() {
  topo::AsGraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(1, 3);
  Model m = Model::one_router_per_as(g);
  m.duplicate_router(RouterId{1, 0});
  Prefix p = Prefix::for_asn(3);
  m.set_export_filter(RouterId{2, 0}, RouterId{1, 0}, p, 3, RouterId{1, 0});
  m.set_export_filter(RouterId{3, 0}, RouterId{1, 1}, p,
                      topo::ExportFilter::kDenyAll, nb::kInvalidRouterId);
  m.set_ranking(RouterId{1, 1}, p, 3);
  m.set_lp_override(RouterId{2, 0}, p, 3, 150);
  m.set_export_allow(RouterId{2, 0}, RouterId{1, 0}, p);
  m.set_igp_cost(RouterId{1, 0}, RouterId{2, 0}, 7);
  m.set_neighbor_class(1, 2, topo::NeighborClass::kProvider);
  m.set_neighbor_class(2, 1, topo::NeighborClass::kCustomer);
  return m;
}

TEST(ModelIoTest, RoundTripPreservesEverything) {
  Model original = sample_model();
  std::string text = topo::model_to_string(original);
  std::string error;
  auto parsed = topo::model_from_string(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  // Re-serializing must be byte-identical (canonical form).
  EXPECT_EQ(topo::model_to_string(*parsed), text);
  EXPECT_EQ(parsed->num_routers(), original.num_routers());
  EXPECT_EQ(parsed->num_sessions(), original.num_sessions());
  EXPECT_TRUE(parsed->has_session(RouterId{1, 1}, RouterId{2, 0}));
  EXPECT_EQ(parsed->neighbor_class(1, 2), topo::NeighborClass::kProvider);
  EXPECT_EQ(parsed->igp_cost(parsed->dense(RouterId{1, 0}),
                             parsed->dense(RouterId{2, 0})),
            7u);
  const topo::PrefixPolicy* policy =
      parsed->find_policy(Prefix::for_asn(3));
  ASSERT_NE(policy, nullptr);
  EXPECT_EQ(policy->filters.size(), 2u);
  EXPECT_EQ(policy->rankings.size(), 1u);
  EXPECT_EQ(policy->lp_overrides.size(), 1u);
  EXPECT_EQ(policy->export_allows.size(), 1u);
}

TEST(ModelIoTest, RoundTrippedModelSimulatesIdentically) {
  Model original = sample_model();
  auto parsed = topo::model_from_string(topo::model_to_string(original));
  ASSERT_TRUE(parsed.has_value());
  bgp::Engine a(original), b(*parsed);
  auto sim_a = a.run(Prefix::for_asn(3), 3);
  auto sim_b = b.run(Prefix::for_asn(3), 3);
  ASSERT_EQ(sim_a.routers.size(), sim_b.routers.size());
  // Dense indices are an internal detail and differ after the round trip
  // (serialization is id-sorted); compare per RouterId.
  for (std::size_t r = 0; r < sim_a.routers.size(); ++r) {
    const RouterId id = original.router_id(static_cast<Model::Dense>(r));
    const bgp::Route* x = sim_a.routers[r].best_route();
    const bgp::Route* y = sim_b.routers[parsed->dense(id)].best_route();
    ASSERT_EQ(x == nullptr, y == nullptr) << id.str();
    if (x != nullptr) {
      EXPECT_EQ(x->path, y->path) << id.str();
    }
  }
}

TEST(ModelIoTest, FittedPipelineModelRoundTrips) {
  auto pipeline = core::run_full_pipeline(core::PipelineConfig::with(0.06, 2));
  std::string text = topo::model_to_string(pipeline.model);
  std::string error;
  auto parsed = topo::model_from_string(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(topo::model_to_string(*parsed), text);
  EXPECT_EQ(parsed->num_routers(), pipeline.model.num_routers());
}

TEST(ModelIoTest, RejectsMissingHeader) {
  std::string error;
  EXPECT_FALSE(topo::model_from_string("router 1.0\n", &error).has_value());
  EXPECT_NE(error.find("header"), std::string::npos);
}

TEST(ModelIoTest, RejectsNonDenseRouterIndices) {
  std::string error;
  EXPECT_FALSE(
      topo::model_from_string("model v1\nrouter 1.1\n", &error).has_value());
  EXPECT_NE(error.find("dense"), std::string::npos);
}

TEST(ModelIoTest, RejectsSessionWithUnknownRouter) {
  std::string error;
  EXPECT_FALSE(topo::model_from_string("model v1\nrouter 1.0\nsession 1.0 2.0\n",
                                       &error)
                   .has_value());
}

TEST(ModelIoTest, RejectsUnknownDirective) {
  std::string error;
  EXPECT_FALSE(
      topo::model_from_string("model v1\nfrobnicate\n", &error).has_value());
  EXPECT_NE(error.find("unknown directive"), std::string::npos);
}

TEST(ModelIoTest, RejectsBadFilterThreshold) {
  std::string error;
  std::string text =
      "model v1\nrouter 1.0\nrouter 2.0\nfilter 10.0.3.0/24 2.0 1.0 banana\n";
  EXPECT_FALSE(topo::model_from_string(text, &error).has_value());
}

TEST(ModelIoTest, CommentsIgnored) {
  std::string text = "# hello\nmodel v1\n# another\nrouter 9.0\n";
  auto parsed = topo::model_from_string(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->num_routers(), 1u);
}

}  // namespace
