// Static working sets and shard plans (analysis/workset, analysis/
// partition): the dynamic soundness gate.  For every per-AS prefix of
// several generated topologies -- and of partially refined models whose
// prefixes were frozen by budgets, oscillation guards or injected faults --
// every router a full simulation activates must be contained in the
// statically computed working set, the same way test_impact.cpp gates the
// impact closure.  Also pins the compacted-run byte identity against the
// plain engine (including non-identity views with phantom message
// charging), the relaxed/A820 fallback, the reachability cache's
// generation keying (and its sharing between plan and refine in-process),
// the greedy shard planner's determinism, balance and A821 advisory, and
// the shard-executed sweep's plan-edge cases (single shard, empty shards,
// fingerprint mismatch / A822).
#include "analysis/workset.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/fixtures.hpp"
#include "analysis/partition.hpp"
#include "analysis/reachability_cache.hpp"
#include "core/fault_inject.hpp"
#include "core/pipeline.hpp"
#include "core/refine.hpp"
#include "data/observations.hpp"
#include "topology/model_io.hpp"

namespace {

using analysis::contains_code;
using analysis::PrefixWorkset;
using nb::Asn;
using nb::Prefix;
using nb::RouterId;
using topo::Model;

namespace codes = analysis::codes;

/// activated(run) SUBSETOF working set, for every per-AS prefix.  Returns
/// the number of prefixes checked so callers can assert sample size;
/// `expect_converged` is off for models that legitimately diverge (the
/// bound covers activations of diverged runs too).
std::size_t check_soundness(const Model& model,
                            const bgp::EngineOptions& engine_options,
                            const std::string& label,
                            bool expect_converged = true) {
  const bgp::Engine engine(model, engine_options);
  analysis::ReachabilityCache cache;
  const std::vector<PrefixWorkset> worksets =
      analysis::compute_all_worksets(engine, {}, &cache, nullptr);
  std::size_t activated_total = 0;
  for (const PrefixWorkset& ws : worksets) {
    std::vector<char> activated;
    const bgp::PrefixSimResult sim =
        engine.run(ws.prefix, ws.origin, nullptr, &activated);
    if (expect_converged) {
      EXPECT_TRUE(sim.converged) << label;
    }
    EXPECT_EQ(activated.size(), ws.members.size()) << label;
    for (Model::Dense r = 0; r < model.num_routers(); ++r) {
      if (activated[r] == 0) continue;
      ++activated_total;
      EXPECT_TRUE(ws.contains(r))
          << label << ": " << ws.prefix.str() << " activated "
          << model.router_id(r).str() << " outside the working set";
    }
  }
  EXPECT_GT(activated_total, 0u) << label << ": gate exercised vacuously";
  return worksets.size();
}

TEST(WorksetSoundnessTest, ActivatedRoutersAreContainedInWorkingSet) {
  // Three generated topologies, mirroring test_impact: fitted models under
  // the default engine and one ground truth under relationship policies +
  // IGP costs (the options build_route_space honors via the engine).
  struct Scenario {
    double scale;
    std::uint64_t seed;
    bool ground_truth;
  };
  const Scenario scenarios[] = {
      {0.05, 3, false},
      {0.06, 5, true},
      {0.08, 11, false},
  };
  for (const Scenario& scenario : scenarios) {
    core::Pipeline pipeline = core::run_full_pipeline(
        core::PipelineConfig::with(scenario.scale, scenario.seed));
    ASSERT_TRUE(pipeline.refine_result.success);
    const Model& model =
        scenario.ground_truth ? pipeline.ground_truth.model : pipeline.model;
    const bgp::EngineOptions engine_options =
        scenario.ground_truth ? pipeline.ground_truth.config.engine_options()
                              : bgp::EngineOptions{};
    const std::string label =
        (scenario.ground_truth ? "ground-truth " : "fitted ") +
        std::to_string(scenario.scale) + "/" + std::to_string(scenario.seed);
    // The acceptance floor: at least 20 sampled prefixes per topology.
    EXPECT_GE(check_soundness(model, engine_options, label), 20u);
  }
}

TEST(WorksetSoundnessTest, IbgpMeshClosureKeepsTheBoundSound) {
  // Under the iBGP mesh option AS-mates of a reachable router activate on
  // pushed external bests without any eBGP import of their own; the
  // analyzer closes both bounds under AS membership to stay sound.  The
  // fitted model was not refined under this option, so convergence is not
  // asserted -- containment must hold for diverged runs too.
  core::Pipeline pipeline =
      core::run_full_pipeline(core::PipelineConfig::with(0.05, 3));
  ASSERT_TRUE(pipeline.refine_result.success);
  bgp::EngineOptions options;
  options.use_ibgp_mesh = true;
  EXPECT_GE(check_soundness(pipeline.model, options, "ibgp-mesh",
                            /*expect_converged=*/false),
            20u);
}

TEST(WorksetSoundnessTest, BudgetStoppedPrefixesStillReportSoundSets) {
  // A one-iteration prefix budget freezes prefixes as R702 before they
  // converge; the bound is static, so the partially refined model's
  // working sets owe nothing to that runtime state.
  core::Pipeline pipeline =
      core::make_pipeline(core::PipelineConfig::with(0.08, 11));
  core::run_data_stages(pipeline);
  Model model = Model::one_router_per_as(pipeline.graph);
  core::RefineConfig refine;
  refine.prefix_iteration_budget = 1;
  refine.max_iterations = 4;
  const core::RefineResult result =
      core::refine_model(model, pipeline.split.training, refine);
  ASSERT_GT(result.prefixes_budget_exhausted, 0u);
  EXPECT_GE(check_soundness(model, bgp::EngineOptions{}, "budget-stopped"),
            20u);
}

#ifdef RD_FAULT_INJECTION
TEST(WorksetSoundnessTest, FaultInterruptedFitStillReportsSoundSets) {
  core::Pipeline pipeline =
      core::make_pipeline(core::PipelineConfig::with(0.05, 3));
  core::run_data_stages(pipeline);
  Model model = Model::one_router_per_as(pipeline.graph);
  core::FaultPlan plan;
  plan.interrupt_iteration = 1;
  core::RefineConfig refine;
  refine.fault_plan = &plan;
  const core::RefineResult result =
      core::refine_model(model, pipeline.split.training, refine);
  ASSERT_EQ(result.stop, core::RefineStop::kInterrupted);
  EXPECT_GE(check_soundness(model, bgp::EngineOptions{}, "fault-interrupted"),
            20u);
}
#endif  // RD_FAULT_INJECTION

TEST(WorksetSoundnessTest, OscillationFrozenPrefixStillSound) {
  // BAD GADGET: AS 4's prefix oscillates, the guard freezes it (R700) and
  // its simulations diverge -- activation containment must hold anyway (a
  // successful import precedes every activation, converged or not).
  auto fixture = analysis::audit_fixture("bad-gadget");
  ASSERT_TRUE(fixture.has_value());
  Model model = std::move(*fixture);
  data::BgpDataset training;
  training.points.push_back({RouterId{1, 0}});
  training.records.push_back({0, 4, topo::AsPath{1, 4}});
  const core::RefineResult result =
      core::refine_model(model, training, core::RefineConfig{});
  ASSERT_GT(result.prefixes_oscillating, 0u);
  check_soundness(model, bgp::EngineOptions{}, "bad-gadget",
                  /*expect_converged=*/false);
}

TEST(WorksetTest, ExactBoundExcludesRoutersBehindDenyAllAndStaysSound) {
  // Chain 1-2-3-4 with a deny-all export 2->3 for AS 1's prefix: the MAY
  // sets of 3 and 4 are empty, so the exact working set is {1, 2} -- a
  // strict subset (kDenyAll is also the one filter shape the relaxed BFS
  // skips, so both bounds agree here).
  topo::AsGraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  Model model = Model::one_router_per_as(g);
  const Prefix prefix = Prefix::for_asn(1);
  model.set_export_filter(RouterId{2, 0}, RouterId{3, 0}, prefix,
                          topo::ExportFilter::kDenyAll, nb::kInvalidRouterId);
  const bgp::Engine engine(model);
  const PrefixWorkset ws = analysis::compute_working_set(engine, prefix, 1);
  EXPECT_FALSE(ws.relaxed);
  EXPECT_EQ(ws.size, 2u);
  EXPECT_TRUE(ws.contains(model.dense(RouterId{1, 0})));
  EXPECT_TRUE(ws.contains(model.dense(RouterId{2, 0})));
  EXPECT_FALSE(ws.contains(model.dense(RouterId{3, 0})));
  EXPECT_FALSE(ws.contains(model.dense(RouterId{4, 0})));

  std::vector<char> activated;
  const bgp::PrefixSimResult sim = engine.run(prefix, 1, nullptr, &activated);
  EXPECT_TRUE(sim.converged);
  for (Model::Dense r = 0; r < model.num_routers(); ++r) {
    if (activated[r] != 0) {
      EXPECT_TRUE(ws.contains(r));
    }
  }
}

/// Full-run vs compacted-run equality: states, selection indices, message
/// and activation counters.
void expect_runs_identical(const Model& model, const bgp::PrefixSimResult& a,
                           const bgp::PrefixSimResult& b) {
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.activations, b.activations);
  EXPECT_EQ(a.message_cap, b.message_cap);
  ASSERT_EQ(a.dense_size(), b.dense_size());
  for (Model::Dense r = 0; r < model.num_routers(); ++r) {
    const bgp::RouterState& x = a.state(r);
    const bgp::RouterState& y = b.state(r);
    ASSERT_EQ(x.rib_in.size(), y.rib_in.size()) << model.router_id(r).str();
    EXPECT_EQ(x.best, y.best);
    EXPECT_EQ(x.best_external, y.best_external);
    for (std::size_t e = 0; e < x.rib_in.size(); ++e) {
      EXPECT_EQ(x.rib_in[e].sender, y.rib_in[e].sender);
      EXPECT_EQ(x.rib_in[e].path, y.rib_in[e].path);
      EXPECT_EQ(x.rib_in[e].med, y.rib_in[e].med);
      EXPECT_EQ(x.rib_in[e].local_pref, y.rib_in[e].local_pref);
      EXPECT_EQ(x.rib_in[e].igp_cost, y.rib_in[e].igp_cost);
      EXPECT_EQ(x.rib_in[e].ibgp, y.rib_in[e].ibgp);
    }
  }
}

TEST(CompactedRunTest, MatchesFullRunOnFittedModel) {
  core::Pipeline pipeline =
      core::run_full_pipeline(core::PipelineConfig::with(0.05, 3));
  ASSERT_TRUE(pipeline.refine_result.success);
  const Model& model = pipeline.model;
  const bgp::Engine engine(model);
  analysis::ReachabilityCache cache;
  const std::vector<PrefixWorkset> worksets =
      analysis::compute_all_worksets(engine, {}, &cache, nullptr);
  ASSERT_GE(worksets.size(), 20u);
  for (const PrefixWorkset& ws : worksets) {
    const bgp::PrefixSimResult full = engine.run(ws.prefix, ws.origin);
    const std::shared_ptr<const bgp::PrefixView> view =
        engine.build_view(ws.prefix, ws.origin, ws.members);
    ASSERT_NE(view, nullptr) << ws.prefix.str();
    const bgp::PrefixSimResult compacted = engine.run_compacted(view);
    expect_runs_identical(model, full, compacted);
  }
}

TEST(CompactedRunTest, NonIdentityViewChargesPhantomMessages) {
  // The deny-all chain: the view holds {1, 2} only, yet message totals
  // must match the full run, which still charges the blocked 2->3
  // announcement at 2's activation (cap accounting stays
  // observation-identical).
  topo::AsGraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  Model model = Model::one_router_per_as(g);
  const Prefix prefix = Prefix::for_asn(1);
  model.set_export_filter(RouterId{2, 0}, RouterId{3, 0}, prefix,
                          topo::ExportFilter::kDenyAll, nb::kInvalidRouterId);
  const bgp::Engine engine(model);
  const PrefixWorkset ws = analysis::compute_working_set(engine, prefix, 1);
  ASSERT_EQ(ws.size, 2u);

  const std::shared_ptr<const bgp::PrefixView> view =
      engine.build_view(prefix, 1, ws.members);
  ASSERT_NE(view, nullptr);
  EXPECT_FALSE(view->identity);
  const bgp::PrefixSimResult full = engine.run(prefix, 1);
  const bgp::PrefixSimResult compacted = engine.run_compacted(view);
  EXPECT_GT(full.messages, 0u);
  expect_runs_identical(model, full, compacted);
  // Routers outside the view read as default-empty state.
  EXPECT_EQ(compacted.state(model.dense(RouterId{4, 0})).best, -1);
  EXPECT_TRUE(compacted.state(model.dense(RouterId{4, 0})).rib_in.empty());
}

TEST(WorksetTest, TruncationFallsBackToRelaxedWithA820) {
  core::Pipeline pipeline =
      core::make_pipeline(core::PipelineConfig::with(0.05, 3));
  core::run_data_stages(pipeline);
  const Model model = Model::one_router_per_as(pipeline.graph);
  const bgp::Engine engine(model);

  // A one-node enumeration cap truncates immediately on any real topology.
  analysis::WorksetOptions options;
  options.space.max_nodes = 1;
  analysis::Diagnostics diags;
  const PrefixWorkset ws = analysis::compute_working_set(
      engine, Prefix::for_asn(model.asns().front()), model.asns().front(),
      options, nullptr, &diags);
  EXPECT_TRUE(ws.relaxed);
  EXPECT_TRUE(contains_code(diags, codes::kWorksetRelaxed));
  // The relaxed fallback still covers the origin and is non-empty.
  EXPECT_GT(ws.size, 0u);

  // Disabling the exact pass relaxes every prefix, one A820 each.
  analysis::WorksetOptions no_exact;
  no_exact.exact = false;
  analysis::Diagnostics all_diags;
  const std::vector<PrefixWorkset> worksets =
      analysis::compute_all_worksets(engine, no_exact, nullptr, &all_diags);
  EXPECT_EQ(all_diags.size(), worksets.size());
  for (const PrefixWorkset& w : worksets) EXPECT_TRUE(w.relaxed);
}

TEST(ReachabilityCacheTest, GenerationKeyedHitsAndInvalidation) {
  topo::AsGraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  Model model = Model::one_router_per_as(g);
  const Prefix prefix = Prefix::for_asn(1);

  analysis::ReachabilityCache cache;
  const auto first = cache.relaxed(model, prefix, 1);
  const auto second = cache.relaxed(model, prefix, 1);
  EXPECT_EQ(first.get(), second.get()) << "same generation must hit";
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().invalidations, 0u);

  // Any model mutation bumps the generation and flushes the cache.
  model.set_ranking(RouterId{2, 0}, prefix, 1);
  const auto third = cache.relaxed(model, prefix, 1);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  ASSERT_EQ(third->size(), model.num_routers());
  EXPECT_EQ(*third,
            analysis::relaxed_reachable(model, model.find_policy(prefix), 1));
}

PrefixWorkset synthetic_workset(Asn origin, std::uint64_t cost,
                                std::vector<char> members) {
  PrefixWorkset ws;
  ws.prefix = Prefix::for_asn(origin);
  ws.origin = origin;
  ws.members = std::move(members);
  for (const char m : ws.members) ws.size += m != 0;
  ws.bounded_messages = ws.size == 0 ? 0 : cost / ws.size;
  ws.cost = cost;
  return ws;
}

TEST(PartitionTest, GreedyPlanIsBalancedCompleteAndDeterministic) {
  // Three router-disjoint workset groups: the affinity objective (fewest
  // uncovered members first, load second) must keep each group on one
  // shard (zero cut weight) while LPT keeps the loads near the 110 mean.
  const std::vector<PrefixWorkset> worksets = {
      synthetic_workset(1, 100, {1, 1, 0, 0, 0, 0}),
      synthetic_workset(2, 90, {0, 0, 1, 1, 0, 0}),
      synthetic_workset(3, 50, {0, 0, 0, 0, 1, 1}),
      synthetic_workset(4, 40, {0, 0, 0, 0, 1, 1}),
      synthetic_workset(5, 30, {0, 0, 1, 1, 0, 0}),
      synthetic_workset(6, 20, {1, 1, 0, 0, 0, 0}),
  };
  analysis::PlanOptions options;
  options.shards = 3;
  analysis::Diagnostics diags;
  const analysis::ShardPlan plan =
      analysis::plan_shards(worksets, 6, options, &diags);

  ASSERT_EQ(plan.shards.size(), 3u);
  std::uint64_t total = 0;
  std::vector<int> placed(worksets.size(), 0);
  for (const auto& shard : plan.shards) {
    total += shard.cost;
    for (const std::size_t p : shard.prefixes) ++placed[p];
  }
  EXPECT_EQ(total, plan.total_cost);
  EXPECT_EQ(plan.total_cost, 330u);
  for (const int count : placed) EXPECT_EQ(count, 1);
  EXPECT_EQ(plan.cut_weight, 0u) << "disjoint groups split across shards";
  EXPECT_LE(plan.imbalance, 1.5);
  EXPECT_FALSE(contains_code(diags, codes::kPlanImbalance));

  // Determinism: identical inputs, byte-identical serialized plan.
  const analysis::ShardPlan again =
      analysis::plan_shards(worksets, 6, options, nullptr);
  EXPECT_EQ(analysis::plan_to_json(plan, worksets),
            analysis::plan_to_json(again, worksets));
}

TEST(PartitionTest, DominantPrefixTripsImbalanceAdvisory) {
  const std::vector<PrefixWorkset> worksets = {
      synthetic_workset(1, 1000, {1, 1}),
      synthetic_workset(2, 10, {1, 0}),
      synthetic_workset(3, 10, {0, 1}),
  };
  analysis::PlanOptions options;
  options.shards = 4;
  analysis::Diagnostics diags;
  const analysis::ShardPlan plan =
      analysis::plan_shards(worksets, 2, options, &diags);
  // Max shard load 1000 against a mean of 255: far beyond the 1.5x
  // advisory line.
  EXPECT_GT(plan.imbalance, 1.5);
  EXPECT_TRUE(contains_code(diags, codes::kPlanImbalance));
  // More shards than prefixes leaves empty shards, never lost prefixes.
  std::size_t placed = 0;
  for (const auto& shard : plan.shards) placed += shard.prefixes.size();
  EXPECT_EQ(placed, worksets.size());
}

// ---- shard-executed sweep: plan edge cases ---------------------------------

/// Relaxed worksets + plan for `model` at the requested shard count, the
/// way `rdtool plan --no-exact` would produce them.
analysis::ShardPlan plan_for(const Model& model, std::size_t shards) {
  const bgp::Engine engine(model);
  analysis::WorksetOptions no_exact;
  no_exact.exact = false;
  const std::vector<PrefixWorkset> worksets =
      analysis::compute_all_worksets(engine, no_exact);
  analysis::PlanOptions options;
  options.shards = shards;
  return analysis::plan_shards(worksets, model.num_routers(), options);
}

TEST(ShardExecutionTest, DegenerateShardCountsFitToTheFlatModel) {
  // shards == 1 (the whole sweep in one shard) and shards far beyond the
  // prefix count (most shards empty) are pure scheduling degenerations:
  // both must execute and fit byte-for-byte the flat-sweep model.
  core::Pipeline pipeline =
      core::make_pipeline(core::PipelineConfig::with(0.05, 3));
  core::run_data_stages(pipeline);

  Model flat_model = Model::one_router_per_as(pipeline.graph);
  core::RefineConfig flat;
  flat.shard_sweep = false;
  const core::RefineResult flat_result =
      core::refine_model(flat_model, pipeline.split.training, flat);
  ASSERT_TRUE(flat_result.success);
  const std::string flat_text = topo::model_to_string(flat_model);

  const std::size_t num_prefixes =
      Model::one_router_per_as(pipeline.graph).asns().size();
  for (const std::size_t shards : {std::size_t{1}, num_prefixes + 8}) {
    Model model = Model::one_router_per_as(pipeline.graph);
    const analysis::ShardPlan plan = plan_for(model, shards);
    if (shards > num_prefixes) {
      std::size_t empty = 0;
      for (const auto& shard : plan.shards) empty += shard.prefixes.empty();
      ASSERT_GT(empty, 0u) << "edge case not exercised";
    }
    core::RefineConfig config;
    config.shard_plan = &plan;
    const core::RefineResult result =
        core::refine_model(model, pipeline.split.training, config);
    EXPECT_TRUE(result.success) << shards << " shards";
    EXPECT_GT(result.sharded_iterations, 0u) << shards << " shards";
    EXPECT_EQ(result.iterations, flat_result.iterations) << shards << " shards";
    EXPECT_EQ(result.messages_simulated, flat_result.messages_simulated)
        << shards << " shards";
    EXPECT_EQ(topo::model_to_string(model), flat_text)
        << "fitted model differs from the flat sweep at " << shards
        << " shards";
  }
}

TEST(ShardExecutionTest, FingerprintMismatchStopsWithA822) {
  // A plan computed for a different model: its workset indices would be
  // mis-mapped, so refine_model must refuse it (A822, kFault) before
  // touching the model.
  topo::AsGraph other;
  other.add_edge(1, 2);
  other.add_edge(2, 3);
  const Model other_model = Model::one_router_per_as(other);
  const analysis::ShardPlan plan = plan_for(other_model, 2);

  core::Pipeline pipeline =
      core::make_pipeline(core::PipelineConfig::with(0.05, 3));
  core::run_data_stages(pipeline);
  Model model = Model::one_router_per_as(pipeline.graph);
  ASSERT_NE(plan.fingerprint, analysis::plan_fingerprint(model));
  const std::string before = topo::model_to_string(model);

  core::RefineConfig config;
  config.shard_plan = &plan;
  const core::RefineResult result =
      core::refine_model(model, pipeline.split.training, config);
  EXPECT_EQ(result.stop, core::RefineStop::kFault);
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.iterations, 0u);
  EXPECT_TRUE(
      contains_code(result.diagnostics, codes::kPlanFingerprintMismatch));
  EXPECT_EQ(topo::model_to_string(model), before)
      << "a rejected plan must leave the model untouched";
}

TEST(ReachabilityCacheTest, PlanThenRefineSharesTheCacheInProcess) {
  // The satellite-6 regression: `rdtool plan` followed by `refine` in one
  // process used to recompute every working set.  With the shared
  // generation-keyed cache, refine's shard scheduler and compacted sweep
  // must hit the entries the plan already populated.
  core::Pipeline pipeline =
      core::make_pipeline(core::PipelineConfig::with(0.05, 3));
  core::run_data_stages(pipeline);
  Model model = Model::one_router_per_as(pipeline.graph);

  analysis::ReachabilityCache cache;
  {
    const bgp::Engine engine(model);
    analysis::WorksetOptions no_exact;
    no_exact.exact = false;
    analysis::compute_all_worksets(engine, no_exact, &cache, nullptr);
  }
  ASSERT_GT(cache.stats().misses, 0u);
  ASSERT_EQ(cache.stats().hits, 0u);

  core::RefineConfig config;
  config.reachability_cache = &cache;
  const core::RefineResult result =
      core::refine_model(model, pipeline.split.training, config);
  EXPECT_TRUE(result.success);
  EXPECT_GT(cache.stats().hits, 0u)
      << "refine recomputed working sets the plan already cached";
}

}  // namespace
