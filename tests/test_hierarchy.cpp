// Unit tests for hierarchy classification, clique growth and stub handling.
#include <gtest/gtest.h>

#include "topology/hierarchy.hpp"

namespace {

using topo::AsGraph;
using topo::AsPath;

AsGraph clique_plus_tail() {
  // 1-2-3 clique; 4 hangs off 1; 5 hangs off 4.
  AsGraph g;
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  g.add_edge(1, 4);
  g.add_edge(4, 5);
  return g;
}

TEST(CliqueTest, GrowsFromSeedsKeepingCompleteness) {
  AsGraph g = clique_plus_tail();
  auto level1 = topo::grow_level1_clique(g, std::vector<nb::Asn>{1, 2});
  EXPECT_EQ(level1, (std::set<nb::Asn>{1, 2, 3}));
}

TEST(CliqueTest, IgnoresSeedsMissingFromGraph) {
  AsGraph g = clique_plus_tail();
  auto level1 = topo::grow_level1_clique(g, std::vector<nb::Asn>{1, 99});
  EXPECT_TRUE(level1.count(1));
  EXPECT_FALSE(level1.count(99));
}

TEST(CliqueTest, PrefersHighDegreeExtension) {
  // Two candidates could extend {1,2}: AS 3 (degree 3) and AS 4 (degree 2);
  // both connect to 1 and 2 but not to each other -- only one can join, and
  // it must be the higher-degree one.
  AsGraph g;
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  g.add_edge(1, 4);
  g.add_edge(2, 4);
  g.add_edge(3, 9);  // boosts 3's degree
  auto level1 = topo::grow_level1_clique(g, std::vector<nb::Asn>{1, 2});
  EXPECT_TRUE(level1.count(3));
  EXPECT_FALSE(level1.count(4));
}

TEST(HierarchyTest, ClassifiesLevels) {
  AsGraph g = clique_plus_tail();
  auto h = topo::classify_hierarchy(g, {1, 2, 3});
  EXPECT_EQ(h.level_of(1), topo::Level::kLevel1);
  EXPECT_EQ(h.level_of(4), topo::Level::kLevel2);
  EXPECT_EQ(h.level_of(5), topo::Level::kOther);
  EXPECT_EQ(h.level2, (std::set<nb::Asn>{4}));
  EXPECT_EQ(h.other, (std::set<nb::Asn>{5}));
}

TEST(StubTest, TransitDetectionUsesMiddleOfPath) {
  AsGraph g = clique_plus_tail();
  std::vector<AsPath> paths{{1, 4, 5}, {2, 1, 4}};
  auto stubs = topo::analyze_stubs(g, paths);
  EXPECT_TRUE(stubs.transit.count(4));
  EXPECT_TRUE(stubs.transit.count(1));
  EXPECT_FALSE(stubs.transit.count(5));
  // 5 is a stub with one neighbor -> single-homed.
  EXPECT_TRUE(stubs.single_homed.count(5));
  // 2 and 3 are non-transit; 2 has neighbors {1,3} -> multi-homed.
  EXPECT_TRUE(stubs.multi_homed.count(2));
}

TEST(StubTest, RemoveSingleHomedTransfersOrigin) {
  std::vector<AsPath> paths{{1, 4, 5}, {2, 1, 4, 5}};
  auto reduced = topo::remove_single_homed_stubs(paths, {5});
  ASSERT_EQ(reduced.size(), 2u);
  EXPECT_EQ(reduced[0], (AsPath{1, 4}));
  EXPECT_EQ(reduced[1], (AsPath{2, 1, 4}));
}

TEST(StubTest, RemoveSingleHomedTrimsObserverSide) {
  // Observation point inside stub 5: its paths transfer to provider 4.
  std::vector<AsPath> paths{{5, 4, 1}};
  auto reduced = topo::remove_single_homed_stubs(paths, {5});
  ASSERT_EQ(reduced.size(), 1u);
  EXPECT_EQ(reduced[0], (AsPath{4, 1}));
}

TEST(StubTest, RemoveSingleHomedDropsDuplicates) {
  std::vector<AsPath> paths{{1, 4, 5}, {1, 4}};
  auto reduced = topo::remove_single_homed_stubs(paths, {5});
  EXPECT_EQ(reduced.size(), 1u);
}

TEST(StubTest, PathCollapsingToOriginKept) {
  std::vector<AsPath> paths{{4, 5}};
  auto reduced = topo::remove_single_homed_stubs(paths, {5});
  ASSERT_EQ(reduced.size(), 1u);
  EXPECT_EQ(reduced[0], (AsPath{4}));
}

TEST(StubTest, LoopedPathsDropped) {
  std::vector<AsPath> paths{{1, 2, 1, 5}};
  auto reduced = topo::remove_single_homed_stubs(paths, {});
  EXPECT_TRUE(reduced.empty());
}

TEST(StubTest, ChainOfStubsStripped) {
  // 6 single-homed behind 5, itself single-homed behind 4.
  std::vector<AsPath> paths{{1, 4, 5, 6}};
  auto reduced = topo::remove_single_homed_stubs(paths, {5, 6});
  ASSERT_EQ(reduced.size(), 1u);
  EXPECT_EQ(reduced[0], (AsPath{1, 4}));
}

}  // namespace
