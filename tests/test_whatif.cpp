// Tests for the what-if engine (the paper's motivating application) and the
// route-selection explanation helper.
#include <gtest/gtest.h>

#include "bgp/explain.hpp"
#include "core/pipeline.hpp"
#include "core/whatif.hpp"

namespace {

using core::WhatIfOptions;
using core::WhatIfScenario;
using nb::Asn;
using nb::Prefix;
using nb::RouterId;
using topo::Model;

Model diamond() {
  topo::AsGraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 4);
  g.add_edge(1, 3);
  g.add_edge(3, 4);
  return Model::one_router_per_as(g);
}

TEST(WhatIfTest, EmptyScenarioChangesNothing) {
  Model base = diamond();
  auto result = core::evaluate_whatif(base, WhatIfScenario{}, {4});
  EXPECT_EQ(result.pairs_changed, 0u);
  EXPECT_EQ(result.prefixes_evaluated, 1u);
  EXPECT_EQ(result.pairs_evaluated, 4u);
}

TEST(WhatIfTest, DePeeringReroutesTraffic) {
  Model base = diamond();
  WhatIfScenario scenario;
  scenario.remove_as_links.push_back({1, 2});  // kill the preferred side
  auto result = core::evaluate_whatif(base, scenario, {4});
  EXPECT_GT(result.pairs_changed, 0u);
  // AS 1 must switch from 1-2-4 to 1-3-4.
  bool found = false;
  for (const auto& change : result.changes) {
    if (change.observer != 1) continue;
    found = true;
    EXPECT_TRUE(change.before.count({1, 2, 4}));
    EXPECT_TRUE(change.after.count({1, 3, 4}));
    EXPECT_FALSE(change.lost_reachability());
  }
  EXPECT_TRUE(found);
  // The base model is untouched.
  EXPECT_TRUE(base.has_session(RouterId{1, 0}, RouterId{2, 0}));
}

TEST(WhatIfTest, CuttingOnlyLinkLosesReachability) {
  topo::AsGraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 4);
  Model base = Model::one_router_per_as(g);
  WhatIfScenario scenario;
  scenario.remove_as_links.push_back({2, 4});
  auto result = core::evaluate_whatif(base, scenario, {4});
  EXPECT_GE(result.pairs_lost_reachability, 2u);  // both AS 1 and AS 2
}

TEST(WhatIfTest, AddingPeeringShortensPath) {
  topo::AsGraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  Model base = Model::one_router_per_as(g);
  WhatIfScenario scenario;
  scenario.add_as_links.push_back({1, 4});
  auto result = core::evaluate_whatif(base, scenario, {4});
  bool found = false;
  for (const auto& change : result.changes) {
    if (change.observer != 1) continue;
    found = true;
    EXPECT_TRUE(change.after.count({1, 4}));
  }
  EXPECT_TRUE(found);
}

TEST(WhatIfTest, PrefixDenyIsPrefixScoped) {
  Model base = diamond();
  WhatIfScenario scenario;
  scenario.deny_prefix.push_back({2, 1, Prefix::for_asn(4)});
  auto result = core::evaluate_whatif(base, scenario, {4});
  EXPECT_GT(result.pairs_changed, 0u);
  // A different prefix is unaffected.
  auto other = core::evaluate_whatif(base, scenario, {2});
  EXPECT_EQ(other.pairs_changed, 0u);
}

TEST(WhatIfTest, ObserverFilterRestrictsDiff) {
  Model base = diamond();
  WhatIfScenario scenario;
  scenario.remove_as_links.push_back({1, 2});
  WhatIfOptions options;
  options.observers = {3};  // AS 3's routing does not change
  auto result = core::evaluate_whatif(base, scenario, {4}, options);
  EXPECT_EQ(result.pairs_evaluated, 1u);
  EXPECT_EQ(result.pairs_changed, 0u);
}

TEST(WhatIfTest, MaxChangesCapsDetailNotCounts) {
  Model base = diamond();
  WhatIfScenario scenario;
  scenario.remove_as_links.push_back({1, 2});
  scenario.remove_as_links.push_back({3, 4});
  WhatIfOptions options;
  options.max_changes = 1;
  auto result = core::evaluate_whatif(base, scenario, {4}, options);
  EXPECT_EQ(result.changes.size(), 1u);
  EXPECT_GT(result.pairs_changed, 1u);
}

TEST(WhatIfTest, OnFittedModelDePeeringOnlyAffectsPathsThroughLink) {
  auto pipeline = core::run_full_pipeline(core::PipelineConfig::with(0.06, 4));
  ASSERT_TRUE(pipeline.refine_result.success);
  // Remove one level-2 <-> tier-1 link and check the diff is consistent:
  // every changed pair's before-set contained a path through the removed
  // link, or its after-set differs due to rerouting around it.
  Asn level2 = *pipeline.hierarchy.level2.begin();
  Asn tier1 = nb::kInvalidAsn;
  for (Asn neighbor : pipeline.graph.neighbors(level2)) {
    if (pipeline.hierarchy.level1.count(neighbor)) {
      tier1 = neighbor;
      break;
    }
  }
  ASSERT_NE(tier1, nb::kInvalidAsn);
  WhatIfScenario scenario;
  scenario.remove_as_links.push_back({level2, tier1});
  std::vector<Asn> origins = pipeline.model.asns();
  origins.resize(std::min<std::size_t>(origins.size(), 25));
  auto result = core::evaluate_whatif(pipeline.model, scenario, origins);
  for (const auto& change : result.changes) {
    bool before_used_link = false;
    for (const auto& path : change.before) {
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        if ((path[i] == level2 && path[i + 1] == tier1) ||
            (path[i] == tier1 && path[i + 1] == level2))
          before_used_link = true;
      }
    }
    bool after_differs = change.before != change.after;
    EXPECT_TRUE(before_used_link || after_differs);
    // No path through the removed link may survive.
    for (const auto& path : change.after) {
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        EXPECT_FALSE((path[i] == level2 && path[i + 1] == tier1) ||
                     (path[i] == tier1 && path[i + 1] == level2));
      }
    }
  }
}

TEST(ExplainTest, ReportsBestAndLossSteps) {
  Model base = diamond();
  bgp::Engine engine(base);
  auto sim = engine.run(Prefix::for_asn(4), 4);
  auto explanation =
      bgp::explain_selection(base, sim, base.dense(RouterId{1, 0}));
  ASSERT_EQ(explanation.candidates.size(), 2u);
  EXPECT_TRUE(explanation.candidates[0].is_best);
  EXPECT_EQ(explanation.candidates[0].route.path,
            (std::vector<Asn>{2, 4}));
  EXPECT_FALSE(explanation.candidates[1].is_best);
  EXPECT_EQ(explanation.candidates[1].lost_at, bgp::DecisionStep::kTieBreak);
  std::string text = explanation.str(base);
  EXPECT_NE(text.find("BEST"), std::string::npos);
  EXPECT_NE(text.find("lowest-router-id"), std::string::npos);
}

TEST(ExplainTest, EmptyRibExplained) {
  Model base = diamond();
  bgp::Engine engine(base);
  auto sim = engine.run(Prefix::for_asn(99), 99);
  auto explanation =
      bgp::explain_selection(base, sim, base.dense(RouterId{1, 0}));
  EXPECT_TRUE(explanation.candidates.empty());
  EXPECT_NE(explanation.str(base).find("no routes"), std::string::npos);
}

}  // namespace
