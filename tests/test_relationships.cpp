// Unit tests for relationship storage and the Section 3.3 inference
// heuristic (tier-1 peering declaration + valley-free constraint
// propagation + degree vote).
#include <gtest/gtest.h>

#include "topology/relationships.hpp"

namespace {

using topo::AsGraph;
using topo::AsPath;
using topo::NeighborClass;
using topo::Relationship;
using topo::RelationshipMap;

TEST(RelationshipMapTest, OrientationIsConsistent) {
  RelationshipMap rels;
  rels.set(10, 20, Relationship::kProviderCustomer);  // 10 provides for 20
  EXPECT_EQ(rels.get(10, 20), Relationship::kProviderCustomer);
  EXPECT_EQ(rels.get(20, 10), Relationship::kCustomerProvider);
  rels.set(30, 5, Relationship::kCustomerProvider);  // 30 is customer of 5
  EXPECT_EQ(rels.get(5, 30), Relationship::kProviderCustomer);
}

TEST(RelationshipMapTest, UnknownByDefault) {
  RelationshipMap rels;
  EXPECT_EQ(rels.get(1, 2), Relationship::kUnknown);
}

TEST(RelationshipMapTest, NeighborClassification) {
  RelationshipMap rels;
  rels.set(1, 2, Relationship::kProviderCustomer);
  rels.set(1, 3, Relationship::kPeerPeer);
  rels.set(1, 4, Relationship::kSibling);
  EXPECT_EQ(rels.classify_neighbor(1, 2), NeighborClass::kCustomer);
  EXPECT_EQ(rels.classify_neighbor(2, 1), NeighborClass::kProvider);
  EXPECT_EQ(rels.classify_neighbor(1, 3), NeighborClass::kPeer);
  EXPECT_EQ(rels.classify_neighbor(1, 4), NeighborClass::kPeer);  // footnote 2
  EXPECT_EQ(rels.classify_neighbor(1, 9), NeighborClass::kUnknown);
}

TEST(RelationshipMapTest, CountsByGraphEdges) {
  AsGraph g;
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  RelationshipMap rels;
  rels.set(1, 2, Relationship::kProviderCustomer);
  rels.set(1, 3, Relationship::kPeerPeer);
  auto counts = rels.counts(g);
  EXPECT_EQ(counts.customer_provider, 1u);
  EXPECT_EQ(counts.peer_peer, 1u);
  EXPECT_EQ(counts.unknown, 1u);
}

TEST(InferenceTest, Tier1EdgesBecomePeerings) {
  AsGraph g;
  g.add_edge(11, 12);
  g.add_edge(11, 100);
  std::vector<AsPath> paths{{100, 11, 12}};
  auto rels = infer_relationships(g, {11, 12}, paths);
  EXPECT_EQ(rels.get(11, 12), Relationship::kPeerPeer);
}

TEST(InferenceTest, PeerEdgeForcesDownhillToTheRight) {
  // Path 100 11 12 200: 11-12 is a tier-1 peering, so 12->200 must be
  // provider->customer.
  AsGraph g;
  g.add_edge(100, 11);
  g.add_edge(11, 12);
  g.add_edge(12, 200);
  std::vector<AsPath> paths{{100, 11, 12, 200}};
  auto rels = infer_relationships(g, {11, 12}, paths);
  EXPECT_EQ(rels.get(12, 200), Relationship::kProviderCustomer);
  // Left of the peering must be uphill: 100 is a customer of 11.
  EXPECT_EQ(rels.get(100, 11), Relationship::kCustomerProvider);
}

TEST(InferenceTest, DegreeVoteFallback) {
  // Star around 50 (high degree): leaves vote 50 as provider.
  AsGraph g;
  for (nb::Asn leaf : {1, 2, 3, 4}) g.add_edge(50, leaf);
  std::vector<AsPath> paths{{1, 50, 2}, {3, 50, 4}};
  auto rels = infer_relationships(g, {}, paths);
  EXPECT_EQ(rels.get(1, 50), Relationship::kCustomerProvider);
  EXPECT_EQ(rels.get(50, 2), Relationship::kProviderCustomer);
}

TEST(InferenceTest, ConflictingForcesYieldSibling) {
  // Two paths force the edge 1-2 in both directions via peerings at
  // opposite ends.
  AsGraph g;
  g.add_edge(11, 12);  // tier-1 peering
  g.add_edge(12, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 11);
  std::vector<AsPath> paths{
      {11, 12, 1, 2},  // forces 1->2 downhill (2 customer of 1)
      {12, 11, 2, 1},  // forces 2->1 downhill (1 customer of 2)
  };
  auto rels = infer_relationships(g, {11, 12}, paths);
  EXPECT_EQ(rels.get(1, 2), Relationship::kSibling);
}

TEST(ValleyFreeTest, AcceptsAndRejects) {
  RelationshipMap rels;
  rels.set(1, 2, Relationship::kCustomerProvider);  // 1 customer of 2
  rels.set(2, 3, Relationship::kPeerPeer);
  rels.set(3, 4, Relationship::kProviderCustomer);  // 3 provides for 4

  // up, peer, down -- classic valley-free.
  std::vector<AsPath> good{{1, 2, 3, 4}};
  EXPECT_DOUBLE_EQ(valley_free_fraction(rels, good), 1.0);

  // down then up is a valley: 3->4 is downhill, then 4->3... construct
  // explicitly: path 2 3 4 then back up requires an uphill edge after a
  // peer/downhill.
  RelationshipMap bad;
  bad.set(1, 2, Relationship::kProviderCustomer);  // downhill 1->2
  bad.set(2, 3, Relationship::kCustomerProvider);  // uphill 2->3
  std::vector<AsPath> valley{{1, 2, 3}};
  EXPECT_DOUBLE_EQ(valley_free_fraction(bad, valley), 0.0);
}

TEST(ValleyFreeTest, TwoPeerEdgesRejected) {
  RelationshipMap rels;
  rels.set(1, 2, Relationship::kPeerPeer);
  rels.set(2, 3, Relationship::kPeerPeer);
  std::vector<AsPath> paths{{1, 2, 3}};
  EXPECT_DOUBLE_EQ(valley_free_fraction(rels, paths), 0.0);
}

TEST(ValleyFreeTest, UnknownEdgesArePermissive) {
  RelationshipMap rels;
  std::vector<AsPath> paths{{1, 2, 3, 4}};
  EXPECT_DOUBLE_EQ(valley_free_fraction(rels, paths), 1.0);
}

}  // namespace
