// Tests for policy-granularity analysis and ranking generalization, plus
// the engine's default-ranking fallback and export-allow (route leak)
// semantics they build on.
#include <gtest/gtest.h>

#include "bgp/engine.hpp"
#include "core/generalize.hpp"
#include "core/pipeline.hpp"
#include "core/predict.hpp"

namespace {

using nb::Asn;
using nb::Prefix;
using nb::RouterId;
using topo::Model;

Model fan_model() {
  // AS 1 hears equal-length routes from AS 2 and AS 3 for two prefixes.
  topo::AsGraph g;
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 4);
  g.add_edge(3, 4);
  g.add_edge(2, 5);
  g.add_edge(3, 5);
  return Model::one_router_per_as(g);
}

TEST(EngineDefaultRanking, AppliesWhenNoPrefixRule) {
  Model m = fan_model();
  m.set_default_ranking(RouterId{1, 0}, 3);
  bgp::Engine engine(m);
  auto sim = engine.run(Prefix::for_asn(4), 4);
  const bgp::Route* best =
      sim.routers[m.dense(RouterId{1, 0})].best_route();
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->path, (std::vector<Asn>{3, 4}));
}

TEST(EngineDefaultRanking, PerPrefixRuleOverridesDefault) {
  Model m = fan_model();
  m.set_default_ranking(RouterId{1, 0}, 3);
  m.set_ranking(RouterId{1, 0}, Prefix::for_asn(4), 2);
  bgp::Engine engine(m);
  auto sim = engine.run(Prefix::for_asn(4), 4);
  EXPECT_EQ(sim.routers[m.dense(RouterId{1, 0})].best_route()->path,
            (std::vector<Asn>{2, 4}));
  // The other prefix still follows the default.
  auto other = engine.run(Prefix::for_asn(5), 5);
  EXPECT_EQ(other.routers[m.dense(RouterId{1, 0})].best_route()->path,
            (std::vector<Asn>{3, 5}));
}

TEST(EngineDefaultRanking, DuplicateInheritsDefault) {
  Model m = fan_model();
  m.set_default_ranking(RouterId{1, 0}, 3);
  RouterId dup = m.duplicate_router(RouterId{1, 0});
  EXPECT_EQ(m.default_ranking(m.dense(dup)), 3u);
}

TEST(ExportAllowTest, LeakBypassesValleyFreeForOnePrefix) {
  // 1 (origin) peers with 2; 2 peers with 3: the peer-learned route must not
  // reach 3 -- unless the leak is configured, and then only for that prefix.
  topo::AsGraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  Model m = Model::one_router_per_as(g);
  for (auto [a, b] : {std::pair<Asn, Asn>{1, 2}, {2, 3}}) {
    m.set_neighbor_class(a, b, topo::NeighborClass::kPeer);
    m.set_neighbor_class(b, a, topo::NeighborClass::kPeer);
  }
  bgp::EngineOptions options;
  options.use_relationship_policies = true;
  bgp::Engine engine(m, options);
  auto blocked = engine.run(Prefix::for_asn(1), 1);
  EXPECT_EQ(blocked.routers[m.dense(RouterId{3, 0})].best, -1);

  m.set_export_allow(RouterId{2, 0}, RouterId{3, 0}, Prefix::for_asn(1));
  auto leaked = engine.run(Prefix::for_asn(1), 1);
  const bgp::Route* best =
      leaked.routers[m.dense(RouterId{3, 0})].best_route();
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->path, (std::vector<Asn>{2, 1}));
  // Other prefixes remain subject to the valley-free rule: 2's own prefix
  // is originated (always exportable), so probe with a second peer origin.
  // Reuse origin 3 toward 1: the leak was directional and per-prefix.
  auto reverse = engine.run(Prefix::for_asn(3), 3);
  EXPECT_EQ(reverse.routers[m.dense(RouterId{1, 0})].best, -1);
}

TEST(GranularityTest, CountsUniformAndMixedRouters) {
  Model m = fan_model();
  m.set_ranking(RouterId{1, 0}, Prefix::for_asn(4), 3);
  m.set_ranking(RouterId{1, 0}, Prefix::for_asn(5), 3);  // uniform
  m.set_ranking(RouterId{2, 0}, Prefix::for_asn(4), 4);
  m.set_ranking(RouterId{2, 0}, Prefix::for_asn(5), 5);  // mixed
  auto stats = core::analyze_policy_granularity(m);
  EXPECT_EQ(stats.routers_with_rankings, 2u);
  EXPECT_EQ(stats.routers_uniform, 1u);
  EXPECT_EQ(stats.rankings_total, 4u);
  EXPECT_EQ(stats.distinct_preferences.count_of(1), 1u);
  EXPECT_EQ(stats.distinct_preferences.count_of(2), 1u);
}

TEST(GeneralizeTest, CollapsesUniformKeepsMixed) {
  Model m = fan_model();
  m.set_ranking(RouterId{1, 0}, Prefix::for_asn(4), 3);
  m.set_ranking(RouterId{1, 0}, Prefix::for_asn(5), 3);
  m.set_ranking(RouterId{2, 0}, Prefix::for_asn(4), 4);
  m.set_ranking(RouterId{2, 0}, Prefix::for_asn(5), 5);
  auto result = core::generalize_rankings(m);
  EXPECT_EQ(result.defaults_added, 1u);
  EXPECT_EQ(result.rules_removed, 2u);
  EXPECT_EQ(m.num_default_rankings(), 1u);
  EXPECT_EQ(m.default_ranking(m.dense(RouterId{1, 0})), 3u);
  // Mixed router keeps per-prefix rules.
  const topo::PrefixPolicy* p4 = m.find_policy(Prefix::for_asn(4));
  ASSERT_NE(p4, nullptr);
  EXPECT_TRUE(p4->rankings.count(RouterId{2, 0}.value()));
  EXPECT_FALSE(p4->rankings.count(RouterId{1, 0}.value()));
}

TEST(GeneralizeTest, PreservesBehaviourOnRuledPrefixes) {
  Model m = fan_model();
  m.set_ranking(RouterId{1, 0}, Prefix::for_asn(4), 3);
  m.set_ranking(RouterId{1, 0}, Prefix::for_asn(5), 3);
  bgp::Engine engine(m);
  auto before4 = engine.run(Prefix::for_asn(4), 4);
  auto before5 = engine.run(Prefix::for_asn(5), 5);
  core::generalize_rankings(m);
  auto after4 = engine.run(Prefix::for_asn(4), 4);
  auto after5 = engine.run(Prefix::for_asn(5), 5);
  for (std::size_t r = 0; r < before4.routers.size(); ++r) {
    auto path_of = [](const bgp::PrefixSimResult& sim, std::size_t i) {
      const bgp::Route* best = sim.routers[i].best_route();
      return best == nullptr ? std::vector<Asn>{} : best->path;
    };
    EXPECT_EQ(path_of(before4, r), path_of(after4, r));
    EXPECT_EQ(path_of(before5, r), path_of(after5, r));
  }
}

TEST(GeneralizeTest, FittedModelMostlyUniform) {
  // On a fitted model most ranked quasi-routers serve one neighbor
  // preference (each is dedicated to paths via one neighbor) -- the
  // granularity question the follow-up paper asks.
  auto pipeline = core::run_full_pipeline(core::PipelineConfig::with(0.08, 6));
  ASSERT_TRUE(pipeline.refine_result.success);
  auto stats = core::analyze_policy_granularity(pipeline.model);
  EXPECT_GT(stats.routers_with_rankings, 0u);
  EXPECT_GT(static_cast<double>(stats.routers_uniform) /
                stats.routers_with_rankings,
            0.3);

  // Generalizing must not break the training fixpoint badly: evaluate.
  Model generalized = pipeline.model;
  auto result = core::generalize_rankings(generalized);
  EXPECT_GT(result.rules_removed, 0u);
  core::EvalOptions options;
  auto eval = core::evaluate_predictions(generalized,
                                         pipeline.split.training, options);
  EXPECT_GT(eval.stats.rib_out_rate(), 0.95);
}

}  // namespace
