// Diagnostic-code registry hardening (analysis/diagnostics codes::kRegistry):
// uniqueness, family/slot consistency, and coverage -- every code-shaped
// string literal in src/ must be registered, and every registered code must
// be documented in DESIGN.md.  RD_SOURCE_DIR is injected by the build so the
// test can scan the repository sources it was compiled from.
#include "analysis/diagnostics.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;
using analysis::codes::kRegistry;
using analysis::codes::kRegistrySize;

/// family letter -> hundreds digit, mirroring the header's numbering table.
const std::map<char, char>& family_digits() {
  static const std::map<char, char> kFamilies = {
      {'M', '1'}, {'P', '2'}, {'F', '3'}, {'C', '4'},
      {'S', '5'}, {'D', '6'}, {'R', '7'}, {'A', '8'},
  };
  return kFamilies;
}

/// "X###-kebab-slug": a known family letter, its digit group, three digits
/// total, then a dash and a lowercase kebab suffix.
bool well_formed(const std::string& code) {
  if (code.size() < 6) return false;
  const auto family = family_digits().find(code[0]);
  if (family == family_digits().end()) return false;
  if (code[1] != family->second) return false;
  if (std::isdigit(static_cast<unsigned char>(code[2])) == 0 ||
      std::isdigit(static_cast<unsigned char>(code[3])) == 0) {
    return false;
  }
  if (code[4] != '-') return false;
  for (std::size_t i = 5; i < code.size(); ++i) {
    const char c = code[i];
    if ((std::islower(static_cast<unsigned char>(c)) == 0) &&
        (std::isdigit(static_cast<unsigned char>(c)) == 0) && c != '-') {
      return false;
    }
  }
  return code.back() != '-';
}

/// Every maximal code-shaped token ("X###-kebab...") in `text`.
std::set<std::string> extract_codes(const std::string& text) {
  std::set<std::string> found;
  for (std::size_t i = 0; i + 5 < text.size(); ++i) {
    if (family_digits().count(text[i]) == 0) continue;
    if (std::isdigit(static_cast<unsigned char>(text[i + 1])) == 0 ||
        std::isdigit(static_cast<unsigned char>(text[i + 2])) == 0 ||
        std::isdigit(static_cast<unsigned char>(text[i + 3])) == 0 ||
        text[i + 4] != '-') {
      continue;
    }
    // Codes appear inside string literals and prose; require a non-word
    // character before the family letter so identifiers like kA800x or
    // hex constants never match.
    if (i > 0) {
      const char prev = text[i - 1];
      if (std::isalnum(static_cast<unsigned char>(prev)) != 0 || prev == '_') {
        continue;
      }
    }
    std::size_t end = i + 5;
    while (end < text.size() &&
           ((std::islower(static_cast<unsigned char>(text[end])) != 0) ||
            (std::isdigit(static_cast<unsigned char>(text[end])) != 0) ||
            text[end] == '-')) {
      ++end;
    }
    std::string code = text.substr(i, end - i);
    while (!code.empty() && code.back() == '-') code.pop_back();
    if (code.size() > 5) found.insert(code);
  }
  return found;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(DiagnosticsRegistryTest, CodesAreUniqueAndWellFormed) {
  std::set<std::string> seen;
  std::set<std::string> slots;  // "X###" prefixes must be unique too
  for (std::size_t i = 0; i < kRegistrySize; ++i) {
    const std::string code = kRegistry[i];
    EXPECT_TRUE(well_formed(code)) << code;
    EXPECT_TRUE(seen.insert(code).second) << "duplicate code: " << code;
    EXPECT_TRUE(slots.insert(code.substr(0, 4)).second)
        << "duplicate numeric slot: " << code;
  }
  EXPECT_EQ(seen.size(), kRegistrySize);
}

TEST(DiagnosticsRegistryTest, EveryEmittedCodeIsRegistered) {
  const fs::path src = fs::path(RD_SOURCE_DIR) / "src";
  ASSERT_TRUE(fs::is_directory(src)) << src;
  const std::set<std::string> registered(kRegistry, kRegistry + kRegistrySize);
  std::size_t files_scanned = 0;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".cpp" && ext != ".hpp") continue;
    ++files_scanned;
    for (const std::string& code : extract_codes(read_file(entry.path()))) {
      EXPECT_TRUE(registered.count(code) != 0)
          << entry.path().filename().string() << " mentions unregistered code "
          << code;
    }
  }
  EXPECT_GT(files_scanned, 20u);  // the scan actually saw the tree
}

TEST(DiagnosticsRegistryTest, EveryRegisteredCodeIsEmittedSomewhere) {
  // The registry must not accrete dead entries: each code's constant
  // (emitters reference codes::kFoo, not the literal) has to be used in at
  // least one src/ file beyond diagnostics.hpp itself.  The code->constant
  // mapping is parsed from diagnostics.hpp, keeping the header the single
  // source of truth.
  const fs::path src = fs::path(RD_SOURCE_DIR) / "src";
  const fs::path header = src / "analysis" / "diagnostics.hpp";
  ASSERT_TRUE(fs::is_regular_file(header));
  const std::string header_text = read_file(header);
  std::map<std::string, std::string> constant_of;  // code -> identifier
  for (std::size_t pos = header_text.find("constexpr const char* k");
       pos != std::string::npos;
       pos = header_text.find("constexpr const char* k", pos + 1)) {
    std::size_t name_begin = pos + std::string("constexpr const char* ").size();
    std::size_t name_end = name_begin;
    while (name_end < header_text.size() &&
           (std::isalnum(static_cast<unsigned char>(header_text[name_end])) !=
            0)) {
      ++name_end;
    }
    const std::size_t quote = header_text.find('"', name_end);
    const std::size_t close = header_text.find('"', quote + 1);
    ASSERT_NE(close, std::string::npos);
    constant_of[header_text.substr(quote + 1, close - quote - 1)] =
        header_text.substr(name_begin, name_end - name_begin);
  }

  std::string all_sources;  // concatenated src/ minus diagnostics.hpp
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".cpp" && ext != ".hpp") continue;
    if (entry.path() == header) continue;
    all_sources += read_file(entry.path());
    all_sources += '\n';
  }
  auto identifier_used = [&all_sources](const std::string& name) {
    for (std::size_t pos = all_sources.find(name); pos != std::string::npos;
         pos = all_sources.find(name, pos + 1)) {
      const std::size_t end = pos + name.size();
      const char next = end < all_sources.size() ? all_sources[end] : ' ';
      if (std::isalnum(static_cast<unsigned char>(next)) == 0 && next != '_') {
        return true;
      }
    }
    return false;
  };
  for (std::size_t i = 0; i < kRegistrySize; ++i) {
    const std::string code = kRegistry[i];
    const auto it = constant_of.find(code);
    ASSERT_TRUE(it != constant_of.end())
        << code << " is in kRegistry but has no named constant";
    EXPECT_TRUE(identifier_used(it->second))
        << code << " (" << it->second
        << ") is registered but never referenced outside diagnostics.hpp";
  }
}

TEST(DiagnosticsRegistryTest, EveryRegisteredCodeIsDocumented) {
  const fs::path design = fs::path(RD_SOURCE_DIR) / "DESIGN.md";
  ASSERT_TRUE(fs::is_regular_file(design)) << design;
  const std::string text = read_file(design);
  for (std::size_t i = 0; i < kRegistrySize; ++i) {
    EXPECT_NE(text.find(kRegistry[i]), std::string::npos)
        << kRegistry[i] << " is not documented in DESIGN.md";
  }
}

}  // namespace
