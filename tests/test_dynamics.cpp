// Tests for session-failure update streams.
#include <gtest/gtest.h>

#include <sstream>

#include "data/dynamics.hpp"

namespace {

using data::BgpDataset;
using data::DynamicsConfig;
using data::UpdateStream;
using topo::AsPath;

struct Fixture {
  data::Internet net;
  data::GroundTruth gt;
  BgpDataset base;

  Fixture() {
    data::InternetConfig config;
    config.seed = 21;
    config.num_tier1 = 3;
    config.num_level2 = 8;
    config.num_level3 = 14;
    config.num_stub_multi = 18;
    config.num_stub_single = 8;
    net = data::generate_internet(config);
    gt = data::build_ground_truth(net, data::GroundTruthConfig{});
    data::ObservationConfig obs;
    bgp::ThreadPool pool(1);
    base = data::observe(gt, net, obs, pool);
  }
};

TEST(DynamicsTest, EventsProduceUpdates) {
  Fixture f;
  DynamicsConfig config;
  config.num_events = 6;
  bgp::ThreadPool pool(1);
  auto stream = data::simulate_session_failures(f.gt, f.base, config, pool);
  EXPECT_EQ(stream.events.size(), 6u);
  EXPECT_GT(stream.updates.size(), 0u);
  EXPECT_GT(stream.announcements(), 0u);
  // Every update references a valid event and point, and update paths are
  // loop-free and start at the observation AS.
  for (const auto& update : stream.updates) {
    ASSERT_LT(update.event, stream.events.size());
    ASSERT_LT(update.point, f.base.points.size());
    if (update.path.has_value()) {
      EXPECT_FALSE(update.path->has_loop());
      EXPECT_EQ(update.path->observer(),
                f.base.points[update.point].router.asn());
      EXPECT_EQ(update.path->origin(), update.origin);
    }
  }
}

TEST(DynamicsTest, DeterministicInSeed) {
  Fixture f;
  DynamicsConfig config;
  config.num_events = 4;
  bgp::ThreadPool pool(1);
  auto a = data::simulate_session_failures(f.gt, f.base, config, pool);
  auto b = data::simulate_session_failures(f.gt, f.base, config, pool);
  ASSERT_EQ(a.updates.size(), b.updates.size());
  for (std::size_t i = 0; i < a.updates.size(); ++i) {
    EXPECT_EQ(a.updates[i].point, b.updates[i].point);
    EXPECT_EQ(a.updates[i].origin, b.updates[i].origin);
    EXPECT_EQ(a.updates[i].path, b.updates[i].path);
  }
}

TEST(DynamicsTest, GroundTruthModelRestoredAfterSimulation) {
  Fixture f;
  const std::size_t sessions_before = f.gt.model.num_sessions();
  DynamicsConfig config;
  config.num_events = 5;
  bgp::ThreadPool pool(1);
  data::simulate_session_failures(f.gt, f.base, config, pool);
  EXPECT_EQ(f.gt.model.num_sessions(), sessions_before);
}

TEST(DynamicsTest, UpdatesAreRealDifferences) {
  // An update either differs from the base route or is a withdrawal of it.
  Fixture f;
  DynamicsConfig config;
  config.num_events = 4;
  bgp::ThreadPool pool(1);
  auto stream = data::simulate_session_failures(f.gt, f.base, config, pool);
  std::map<std::pair<std::uint32_t, nb::Asn>, AsPath> base_paths;
  for (const auto& record : f.base.records)
    base_paths[{record.point, record.origin}] = record.path;
  for (const auto& update : stream.updates) {
    auto it = base_paths.find({update.point, update.origin});
    if (update.path.has_value() && it != base_paths.end()) {
      EXPECT_NE(*update.path, it->second);
    }
  }
}

TEST(DynamicsTest, MergeAddsOnlyNewPaths) {
  Fixture f;
  DynamicsConfig config;
  config.num_events = 6;
  bgp::ThreadPool pool(1);
  auto stream = data::simulate_session_failures(f.gt, f.base, config, pool);
  BgpDataset merged = stream.merge_into(f.base);
  EXPECT_GE(merged.records.size(), f.base.records.size());
  // No duplicates in the merged dataset.
  std::set<std::tuple<std::uint32_t, nb::Asn, std::vector<nb::Asn>>> seen;
  for (const auto& record : merged.records) {
    EXPECT_TRUE(
        seen.insert({record.point, record.origin, record.path.hops()})
            .second);
  }
}

TEST(DynamicsTest, RoundTripSerialization) {
  Fixture f;
  DynamicsConfig config;
  config.num_events = 3;
  bgp::ThreadPool pool(1);
  auto stream = data::simulate_session_failures(f.gt, f.base, config, pool);
  std::ostringstream out;
  data::write_updates(out, stream);
  std::istringstream in(out.str());
  std::string error;
  auto parsed = data::read_updates(in, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->events.size(), stream.events.size());
  ASSERT_EQ(parsed->updates.size(), stream.updates.size());
  for (std::size_t i = 0; i < stream.updates.size(); ++i) {
    EXPECT_EQ(parsed->updates[i].event, stream.updates[i].event);
    EXPECT_EQ(parsed->updates[i].path, stream.updates[i].path);
  }
}

TEST(DynamicsTest, ReaderRejectsMalformed) {
  std::string error;
  std::istringstream bad1("event 1 1.0 2.0\n");  // index must start at 0
  EXPECT_FALSE(data::read_updates(bad1, &error).has_value());
  std::istringstream bad2("update 0 0 9 9\n");  // references unknown event
  EXPECT_FALSE(data::read_updates(bad2, &error).has_value());
  std::istringstream bad3("event 0 1.0 2.0\nupdate 0 0 9 10 8\n");
  EXPECT_FALSE(data::read_updates(bad3, &error).has_value());  // wrong origin
}

TEST(DynamicsTest, NoCandidatesYieldsEmptyStream) {
  // A two-router network has no session whose endpoints both have >= 2
  // peers.
  data::GroundTruth gt;
  nb::RouterId a = gt.model.add_router(1);
  nb::RouterId b = gt.model.add_router(2);
  gt.model.add_session(a, b);
  BgpDataset base;
  base.points.push_back({a});
  bgp::ThreadPool pool(1);
  auto stream =
      data::simulate_session_failures(gt, base, DynamicsConfig{}, pool);
  EXPECT_TRUE(stream.events.empty());
  EXPECT_TRUE(stream.updates.empty());
}

}  // namespace
