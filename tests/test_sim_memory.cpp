// Arena simulation memory (bgp/sim_memory.hpp): Engine::run_into /
// run_compacted_into against one reused per-worker SimMemory must be
// bit-for-bit the allocating run() / run_compacted() for ANY arena
// history -- across every per-AS prefix of policy-rich generated
// topologies, across models of different sizes sharing one arena, under
// candidate fan-in past the indexed-map capacity, and for the compacted
// working-set path.  This is the unit-level half of the byte-identity
// argument in DESIGN.md section 13; tests/test_refine_parallel.cpp
// proves the end-to-end half on fitted models.
#include "bgp/sim_memory.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "analysis/workset.hpp"
#include "bgp/engine.hpp"
#include "data/ground_truth.hpp"
#include "data/internet_gen.hpp"

namespace {

using bgp::Engine;
using bgp::PrefixSimResult;
using bgp::SimCounters;
using bgp::SimMemory;
using nb::Asn;
using nb::Prefix;
using topo::Model;

/// Canonical text form of a simulation result: every field the decision
/// process and downstream refinement can observe, in deterministic order.
/// Two results with equal text are interchangeable for the fit.
std::string sim_text(const PrefixSimResult& sim) {
  std::ostringstream out;
  out << sim.prefix.str() << " origin=" << sim.origin
      << " converged=" << sim.converged << " messages=" << sim.messages
      << " activations=" << sim.activations << " cap=" << sim.message_cap
      << '\n';
  for (std::size_t slot = 0; slot < sim.routers.size(); ++slot) {
    const bgp::RouterState& state = sim.routers[slot];
    out << "slot " << slot << " dense=" << sim.full_index(slot)
        << " best=" << state.best << " best_external=" << state.best_external
        << '\n';
    for (const bgp::Route& route : state.rib_in) {
      out << "  sender=" << route.sender << " lp=" << route.local_pref
          << " med=" << route.med << " igp=" << route.igp_cost
          << " ibgp=" << route.ibgp << " path=[";
      for (Asn asn : route.path) out << asn << ' ';
      out << "]\n";
    }
  }
  return out.str();
}

std::string counter_text(const SimCounters& counters) {
  std::ostringstream out;
  out << counters.messages << ' ' << counters.activations << ' '
      << counters.rib_inserts << ' ' << counters.rib_replacements << ' '
      << counters.withdrawals << ' ' << counters.selection_changes;
  return out.str();
}

struct Fixture {
  data::Internet internet;
  data::GroundTruth gt;
};

Fixture generated(double scale, unsigned seed) {
  data::InternetConfig config;
  config = config.scaled(scale);
  config.seed = seed;
  Fixture fixture;
  fixture.internet = data::generate_internet(config);
  fixture.gt = data::build_ground_truth(fixture.internet, {});
  return fixture;
}

/// Sweeps every per-AS prefix of `model` twice -- allocating run() and
/// run_into() against the single `memory` the caller threads through, so
/// each prefix sees the arena state the previous ones left behind -- and
/// requires identical results, counters and activation flags.
void expect_arena_matches_full(const Model& model,
                               const bgp::EngineOptions& options,
                               SimMemory& memory, const std::string& label) {
  const Engine engine(model, options);
  PrefixSimResult arena_result;
  for (Asn origin : model.asns()) {
    const Prefix prefix = Prefix::for_asn(origin);
    SimCounters fresh_counters, arena_counters;
    std::vector<char> fresh_activated, arena_activated;
    const PrefixSimResult fresh =
        engine.run(prefix, origin, &fresh_counters, &fresh_activated);
    engine.run_into(prefix, origin, memory, &arena_counters, &arena_activated,
                    arena_result);
    ASSERT_EQ(sim_text(fresh), sim_text(arena_result))
        << label << ": prefix " << prefix.str();
    EXPECT_EQ(counter_text(fresh_counters), counter_text(arena_counters))
        << label << ": prefix " << prefix.str();
    EXPECT_EQ(fresh_activated, arena_activated)
        << label << ": prefix " << prefix.str();
  }
}

TEST(SimMemoryTest, ArenaRunMatchesAllocatingRunOnGeneratedTopologies) {
  // Policy-rich ground truths (relationship policies, filters, local-pref
  // overrides) at two scales/seeds, all sweeping through ONE arena: the
  // second topology inherits whatever high-water buffers the first grew.
  SimMemory memory;
  for (const auto& [scale, seed] : {std::pair<double, unsigned>{0.05, 1},
                                    std::pair<double, unsigned>{0.08, 6}}) {
    const Fixture fixture = generated(scale, seed);
    expect_arena_matches_full(fixture.gt.model,
                              fixture.gt.config.engine_options(), memory,
                              "scale " + std::to_string(scale));
  }
}

TEST(SimMemoryTest, ArenaSurvivesFanInPastIndexedCapacity) {
  // Origin AS 100 feeds kIndexedFanIn + 8 spokes which all announce into
  // hub AS 1, so the hub's slot overflows the fixed indexed sender map and
  // exercises the linear-scan fallback -- insertion order (the decision
  // tie-break input) must survive the overflow.
  topo::AsGraph graph;
  const Asn spokes = static_cast<Asn>(SimMemory::kIndexedFanIn + 8);
  for (Asn s = 0; s < spokes; ++s) {
    graph.add_edge(100, static_cast<Asn>(2 + s));
    graph.add_edge(1, static_cast<Asn>(2 + s));
  }
  const Model model = Model::one_router_per_as(graph);
  const Engine engine(model);
  SimMemory memory;
  PrefixSimResult arena_result;
  const PrefixSimResult fresh = engine.run(Prefix::for_asn(100), 100);
  engine.run_into(Prefix::for_asn(100), 100, memory, nullptr, nullptr,
                  arena_result);
  const std::size_t hub = model.dense(nb::RouterId{1, 0});
  ASSERT_GT(fresh.routers[hub].rib_in.size(), SimMemory::kIndexedFanIn);
  EXPECT_EQ(sim_text(fresh), sim_text(arena_result));
}

TEST(SimMemoryTest, ArenaCompactedRunMatchesAllocatingCompactedRun) {
  // Default (agnostic) engine options: relationship policies, IGP costs
  // and the iBGP mesh rule out build_view entirely, and refinement fits
  // models under the agnostic engine -- the configuration the compacted
  // sweep actually runs in.
  const Fixture fixture = generated(0.08, 6);
  const Model& model = fixture.gt.model;
  const Engine engine(model);
  SimMemory memory;
  PrefixSimResult arena_result;
  std::size_t views_checked = 0;
  for (Asn origin : model.asns()) {
    const Prefix prefix = Prefix::for_asn(origin);
    const analysis::PrefixWorkset workset =
        analysis::compute_working_set(engine, prefix, origin, {});
    auto view = engine.build_view(prefix, origin, workset.members);
    if (view == nullptr) continue;  // options rule out the compacted loop
    ++views_checked;
    SimCounters fresh_counters, arena_counters;
    const PrefixSimResult fresh = engine.run_compacted(view, &fresh_counters);
    engine.run_compacted_into(std::move(view), memory, &arena_counters,
                              arena_result);
    ASSERT_EQ(sim_text(fresh), sim_text(arena_result))
        << "prefix " << prefix.str();
    EXPECT_EQ(counter_text(fresh_counters), counter_text(arena_counters))
        << "prefix " << prefix.str();
  }
  EXPECT_GT(views_checked, 0u);
}

}  // namespace
