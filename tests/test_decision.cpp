// Unit tests for the BGP decision process and its decisive-step reporting.
#include <gtest/gtest.h>

#include "bgp/decision.hpp"

namespace {

using bgp::Comparison;
using bgp::DecisionStep;
using bgp::Route;

std::vector<std::uint32_t> ids_for(std::initializer_list<std::uint32_t> v) {
  return std::vector<std::uint32_t>(v);
}

Route make(std::uint32_t sender, std::vector<nb::Asn> path,
           std::uint32_t lp = 100, std::uint32_t med = 100,
           std::uint32_t igp = 0) {
  Route r;
  r.sender = sender;
  r.path = std::move(path);
  r.local_pref = lp;
  r.med = med;
  r.igp_cost = igp;
  return r;
}

TEST(DecisionTest, LocalPrefDominates) {
  auto ids = ids_for({10, 20});
  Route a = make(0, {1, 2, 3}, 130);
  Route b = make(1, {9}, 100);
  Comparison cmp = bgp::compare_routes(a, b, ids);
  EXPECT_LT(cmp.order, 0);
  EXPECT_EQ(cmp.step, DecisionStep::kLocalPref);
}

TEST(DecisionTest, ShorterPathWins) {
  auto ids = ids_for({10, 20});
  Route a = make(0, {1, 2});
  Route b = make(1, {3});
  Comparison cmp = bgp::compare_routes(a, b, ids);
  EXPECT_GT(cmp.order, 0);
  EXPECT_EQ(cmp.step, DecisionStep::kPathLength);
}

TEST(DecisionTest, MedComparedAcrossNeighbors) {
  auto ids = ids_for({10, 20});
  Route a = make(0, {1, 3}, 100, 0);    // preferred neighbor (MED 0)
  Route b = make(1, {2, 3}, 100, 100);  // different neighbor AS
  Comparison cmp = bgp::compare_routes(a, b, ids);
  EXPECT_LT(cmp.order, 0);
  EXPECT_EQ(cmp.step, DecisionStep::kMed);
}

TEST(DecisionTest, IgpCostBeforeTieBreak) {
  auto ids = ids_for({10, 20});
  Route a = make(0, {1, 3}, 100, 100, 8);
  Route b = make(1, {2, 3}, 100, 100, 2);
  Comparison cmp = bgp::compare_routes(a, b, ids);
  EXPECT_GT(cmp.order, 0);
  EXPECT_EQ(cmp.step, DecisionStep::kIgpCost);
}

TEST(DecisionTest, TieBreakLowestRouterId) {
  auto ids = ids_for({20, 10});
  Route a = make(0, {1, 3});
  Route b = make(1, {2, 3});
  Comparison cmp = bgp::compare_routes(a, b, ids);
  EXPECT_GT(cmp.order, 0);  // b's sender id (10) < a's (20)
  EXPECT_EQ(cmp.step, DecisionStep::kTieBreak);
}

TEST(DecisionTest, IdenticalRoutesEqual) {
  auto ids = ids_for({10});
  Route a = make(0, {1, 3});
  Comparison cmp = bgp::compare_routes(a, a, ids);
  EXPECT_EQ(cmp.order, 0);
  EXPECT_EQ(cmp.step, DecisionStep::kEqual);
}

TEST(DecisionTest, StepOrderingIsStrict) {
  // local-pref beats a shorter path; path length beats MED; MED beats IGP.
  auto ids = ids_for({10, 20});
  Route high_lp_long = make(0, {1, 2, 3, 4}, 200, 100, 100);
  Route low_lp_short = make(1, {5}, 100, 0, 0);
  EXPECT_LT(bgp::compare_routes(high_lp_long, low_lp_short, ids).order, 0);

  Route short_bad_med = make(0, {1, 2}, 100, 100);
  Route long_good_med = make(1, {3, 4, 5}, 100, 0);
  EXPECT_LT(bgp::compare_routes(short_bad_med, long_good_med, ids).order, 0);

  Route med_bad_igp = make(0, {1, 2}, 100, 0, 100);
  Route igp_good_med_bad = make(1, {3, 4}, 100, 100, 0);
  EXPECT_LT(bgp::compare_routes(med_bad_igp, igp_good_med_bad, ids).order, 0);
}

TEST(DecisionTest, SelectBestEmpty) {
  auto ids = ids_for({});
  EXPECT_EQ(bgp::select_best({}, ids), -1);
}

TEST(DecisionTest, SelectBestPicksOverallWinner) {
  auto ids = ids_for({30, 20, 10});
  std::vector<Route> candidates{
      make(0, {1, 9}),         // len 2
      make(1, {2, 9}),         // len 2, lower id than 0
      make(2, {3, 4, 9}),      // len 3
  };
  EXPECT_EQ(bgp::select_best(candidates, ids), 1);
}

TEST(DecisionTest, SelectBestStableForEqualCandidates) {
  auto ids = ids_for({10, 10});
  std::vector<Route> candidates{make(0, {1, 9}), make(1, {2, 9})};
  // Same id value cannot happen through the engine (unique senders), but the
  // selection must still be deterministic: first wins.
  candidates[1].sender = 0;
  EXPECT_EQ(bgp::select_best(candidates, ids), 0);
}

TEST(DecisionTest, EmptyPathIsShortest) {
  auto ids = ids_for({10, 20});
  Route originated = make(0, {});
  Route learned = make(1, {2});
  EXPECT_LT(bgp::compare_routes(originated, learned, ids).order, 0);
}

TEST(DecisionTest, StepNames) {
  EXPECT_STREQ(bgp::decision_step_name(DecisionStep::kLocalPref), "local-pref");
  EXPECT_STREQ(bgp::decision_step_name(DecisionStep::kTieBreak),
               "lowest-router-id");
}

}  // namespace
