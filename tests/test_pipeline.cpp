// End-to-end pipeline integration tests at small scale.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "core/report.hpp"

namespace {

class PipelineFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::PipelineConfig config = core::PipelineConfig::with(0.1, 3);
    config.refine.validate = true;  // analysis hooks always on in tests
    pipeline_ = new core::Pipeline(core::run_full_pipeline(config));
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    pipeline_ = nullptr;
  }
  static core::Pipeline* pipeline_;
};

core::Pipeline* PipelineFixture::pipeline_ = nullptr;

TEST_F(PipelineFixture, DataStagesProduceConsistentDataset) {
  const auto& p = *pipeline_;
  EXPECT_GT(p.dataset.points.size(), 0u);
  EXPECT_GT(p.dataset.records.size(), 0u);
  EXPECT_LE(p.dataset.records.size(), p.raw_dataset.records.size());
  // Reduced dataset contains no single-homed stub hop.
  for (const auto& record : p.dataset.records) {
    for (nb::Asn hop : record.path.hops())
      EXPECT_FALSE(p.single_homed.count(hop)) << hop;
  }
}

TEST_F(PipelineFixture, GraphCoversAllRecordedHops) {
  const auto& p = *pipeline_;
  for (const auto& record : p.dataset.records) {
    const auto& hops = record.path.hops();
    for (std::size_t i = 0; i + 1 < hops.size(); ++i)
      EXPECT_TRUE(p.graph.has_edge(hops[i], hops[i + 1]));
  }
}

TEST_F(PipelineFixture, HierarchyFindsAClique) {
  const auto& p = *pipeline_;
  EXPECT_GE(p.hierarchy.level1.size(), 3u);
  for (nb::Asn a : p.hierarchy.level1) {
    for (nb::Asn b : p.hierarchy.level1) {
      if (a != b) {
        EXPECT_TRUE(p.graph.has_edge(a, b));
      }
    }
  }
}

TEST_F(PipelineFixture, DetectedCliqueMatchesGeneratorTier1) {
  // The seeded clique growth should rediscover the generator's tier-1 core
  // (it may legitimately add other fully-meshed ASes).
  const auto& p = *pipeline_;
  std::size_t found = 0;
  for (nb::Asn asn : p.internet.tier1)
    found += p.hierarchy.level1.count(asn);
  EXPECT_GE(found, p.internet.tier1.size() - 1);
}

TEST_F(PipelineFixture, TrainingReachesExactMatch) {
  const auto& p = *pipeline_;
  EXPECT_TRUE(p.refine_result.success);
  EXPECT_DOUBLE_EQ(p.training_eval.stats.rib_out_rate(), 1.0);
  EXPECT_EQ(p.training_eval.stats.not_available, 0u);
}

TEST_F(PipelineFixture, ValidationBeatsThePaperHeadline) {
  // Section 5 headline: >80% of held-out paths match down to the final
  // tie-break.
  const auto& p = *pipeline_;
  EXPECT_GT(p.validation_eval.stats.total, 0u);
  EXPECT_GT(p.validation_eval.stats.potential_or_better_rate(), 0.8);
  // And RIB-In (availability) should be near the ceiling.
  EXPECT_GT(p.validation_eval.stats.rib_in_rate(), 0.85);
}

TEST_F(PipelineFixture, ModelGrewQuasiRouters) {
  const auto& p = *pipeline_;
  EXPECT_GT(p.model.num_routers(), p.graph.num_nodes());
  std::size_t multi = 0;
  for (auto& [asn, count] : p.model.router_counts())
    if (count > 1) ++multi;
  EXPECT_GT(multi, 0u);
}

TEST_F(PipelineFixture, ValidationHooksStayQuiet) {
  // Every per-prefix simulation during refinement passed the convergence
  // checker and the fitted model passed the full lint, closure included.
  const auto& p = *pipeline_;
  EXPECT_TRUE(p.refine_result.diagnostics.empty())
      << analysis::render_diagnostics(p.refine_result.diagnostics);
  EXPECT_TRUE(p.lint.empty()) << analysis::render_diagnostics(p.lint);
}

TEST_F(PipelineFixture, ReportsRenderNonEmpty) {
  const auto& p = *pipeline_;
  EXPECT_FALSE(core::render_refine_log(p.refine_result).empty());
  EXPECT_FALSE(
      core::render_validation("validation", p.validation_eval.stats).empty());
}

TEST(PipelineDeterminismTest, SameSeedSameResults) {
  core::PipelineConfig config = core::PipelineConfig::with(0.08, 9);
  auto a = core::run_full_pipeline(config);
  auto b = core::run_full_pipeline(config);
  EXPECT_EQ(a.dataset.records.size(), b.dataset.records.size());
  EXPECT_EQ(a.model.num_routers(), b.model.num_routers());
  EXPECT_EQ(a.refine_result.iterations, b.refine_result.iterations);
  EXPECT_EQ(a.validation_eval.stats.rib_out, b.validation_eval.stats.rib_out);
  EXPECT_EQ(a.validation_eval.stats.potential_rib_out,
            b.validation_eval.stats.potential_rib_out);
}

TEST(PipelineDeterminismTest, DifferentSeedDifferentData) {
  auto a = core::run_full_pipeline(core::PipelineConfig::with(0.08, 9));
  auto c = core::run_full_pipeline(core::PipelineConfig::with(0.08, 10));
  EXPECT_NE(a.dataset.records.size(), c.dataset.records.size());
}

}  // namespace
