// refine-checkpoint v1 round-trip and hardening tests: field fidelity,
// atomic save semantics, rejection (never a crash, always a line number)
// of truncated or corrupted checkpoint files, and SIGTERM-during-fit
// atomicity -- an interrupt landing on a checkpoint-every-iteration fit
// must leave one complete, loadable checkpoint and no temp debris.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/fault_inject.hpp"
#include "core/refine.hpp"
#include "topology/model_io.hpp"

namespace {

using nb::Prefix;
using nb::RouterId;
using topo::Model;
using topo::PrefixCheckpointState;
using topo::RefineCheckpoint;

Model small_model() {
  topo::AsGraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  Model model = Model::one_router_per_as(g);
  model.set_lp_override(RouterId{1, 0}, Prefix::for_asn(3), 2, 200);
  return model;
}

RefineCheckpoint sample_checkpoint() {
  RefineCheckpoint ck;
  ck.iteration = 7;
  ck.dataset_hash = 0x0123456789abcdefull;
  ck.messages_simulated = 4242;
  ck.routers_added = 3;
  ck.policies_changed = 9;
  ck.filters_relaxed = 1;

  PrefixCheckpointState active;
  active.origin = 3;
  active.state = "active";
  active.matched = 2;
  active.paths_total = 5;
  active.active_iterations = 7;
  active.best_matched = 4;
  active.hits = 1;
  active.freeze_pending = true;
  active.freeze_countdown = 11;
  active.fingerprints = {0xdeadbeefcafef00dull, 0x1ull};
  ck.prefixes.push_back(active);

  PrefixCheckpointState frozen;
  frozen.origin = 2;
  frozen.state = "oscillating";
  frozen.matched = 1;
  frozen.paths_total = 1;
  frozen.frozen_iteration = 4;
  ck.prefixes.push_back(frozen);

  ck.model = small_model();
  return ck;
}

std::string to_string(const RefineCheckpoint& ck) {
  std::ostringstream out;
  topo::write_refine_checkpoint(out, ck);
  return out.str();
}

TEST(CheckpointTest, RoundTripPreservesEveryField) {
  const RefineCheckpoint ck = sample_checkpoint();
  const std::string text = to_string(ck);

  std::istringstream in(text);
  std::string error;
  auto loaded = topo::read_refine_checkpoint(in, &error);
  ASSERT_TRUE(loaded.has_value()) << error;

  EXPECT_EQ(loaded->iteration, ck.iteration);
  EXPECT_EQ(loaded->dataset_hash, ck.dataset_hash);
  EXPECT_EQ(loaded->messages_simulated, ck.messages_simulated);
  EXPECT_EQ(loaded->routers_added, ck.routers_added);
  EXPECT_EQ(loaded->policies_changed, ck.policies_changed);
  EXPECT_EQ(loaded->filters_relaxed, ck.filters_relaxed);
  ASSERT_EQ(loaded->prefixes.size(), ck.prefixes.size());
  for (std::size_t i = 0; i < ck.prefixes.size(); ++i) {
    const PrefixCheckpointState& a = ck.prefixes[i];
    const PrefixCheckpointState& b = loaded->prefixes[i];
    EXPECT_EQ(b.origin, a.origin);
    EXPECT_EQ(b.state, a.state);
    EXPECT_EQ(b.matched, a.matched);
    EXPECT_EQ(b.paths_total, a.paths_total);
    EXPECT_EQ(b.active_iterations, a.active_iterations);
    EXPECT_EQ(b.frozen_iteration, a.frozen_iteration);
    EXPECT_EQ(b.best_matched, a.best_matched);
    EXPECT_EQ(b.hits, a.hits);
    EXPECT_EQ(b.freeze_pending, a.freeze_pending);
    EXPECT_EQ(b.freeze_countdown, a.freeze_countdown);
    EXPECT_EQ(b.fingerprints, a.fingerprints);
  }
  EXPECT_EQ(topo::model_to_string(loaded->model),
            topo::model_to_string(ck.model));

  // Serialization is canonical: writing the loaded checkpoint reproduces
  // the original bytes.
  EXPECT_EQ(to_string(*loaded), text);
}

TEST(CheckpointTest, EveryTruncationFailsCleanly) {
  const std::string text = to_string(sample_checkpoint());
  ASSERT_GT(text.size(), 0u);
  for (std::size_t cut = 0; cut < text.size(); ++cut) {
    std::istringstream in(text.substr(0, cut));
    std::string error;
    std::optional<RefineCheckpoint> loaded;
    EXPECT_NO_THROW(loaded = topo::read_refine_checkpoint(in, &error));
    EXPECT_FALSE(loaded.has_value()) << "cut at " << cut;
    EXPECT_FALSE(error.empty()) << "cut at " << cut;
  }
}

TEST(CheckpointTest, RejectsForeignHeader) {
  std::istringstream in("model v1\n");
  std::string error;
  EXPECT_FALSE(topo::read_refine_checkpoint(in, &error).has_value());
  EXPECT_NE(error.find("refine-checkpoint"), std::string::npos);
}

TEST(CheckpointTest, RejectsMalformedLines) {
  const struct {
    const char* mutation;
    const char* needle;  // must appear in the error
  } cases[] = {
      {"dataset-hash xyz\n", "line"},
      {"dataset-hash 123\n", "line"},  // not 16 digits
      {"prefix 3 bogus-state 0 1 0 0 0 0 -\n", "line"},
      {"prefix 3 active 5 1 0 0 0 0 -\n", "line"},  // matched > total
      {"fp 99 0000000000000001\n", "line"},         // undeclared prefix
      {"unknown-directive 1\n", "line"},
  };
  for (const auto& c : cases) {
    std::string text = "refine-checkpoint v1\niteration 1\n";
    text += c.mutation;
    std::istringstream in(text);
    std::string error;
    EXPECT_FALSE(topo::read_refine_checkpoint(in, &error).has_value())
        << c.mutation;
    EXPECT_NE(error.find(c.needle), std::string::npos)
        << c.mutation << " -> " << error;
  }
}

TEST(CheckpointTest, RejectsDuplicateOrigins) {
  std::string text =
      "refine-checkpoint v1\n"
      "iteration 1\n"
      "dataset-hash 00000000000000ff\n"
      "prefix 3 active 0 1 0 0 0 0 -\n"
      "prefix 3 active 0 1 0 0 0 0 -\n";
  std::istringstream in(text);
  std::string error;
  EXPECT_FALSE(topo::read_refine_checkpoint(in, &error).has_value());
  EXPECT_NE(error.find("duplicate"), std::string::npos);
}

TEST(CheckpointTest, TruncationBeforeModelSectionIsNamed) {
  std::string text =
      "refine-checkpoint v1\n"
      "iteration 1\n"
      "dataset-hash 00000000000000ff\n";
  std::istringstream in(text);
  std::string error;
  EXPECT_FALSE(topo::read_refine_checkpoint(in, &error).has_value());
  EXPECT_NE(error.find("truncated"), std::string::npos);
}

TEST(CheckpointTest, ModelSectionErrorsCarryAbsoluteLines) {
  std::string text = to_string(sample_checkpoint());
  // Corrupt the first line after the embedded model header.
  const std::size_t model_at = text.find("model v1\n");
  ASSERT_NE(model_at, std::string::npos);
  const std::size_t line_end = text.find('\n', model_at + 9);
  text.replace(model_at + 9, line_end - (model_at + 9), "garbage here");
  std::istringstream in(text);
  std::string error;
  EXPECT_FALSE(topo::read_refine_checkpoint(in, &error).has_value());
  EXPECT_NE(error.find("model section line"), std::string::npos) << error;
}

TEST(CheckpointTest, SaveIsAtomicAndLoadable) {
  const std::string path = testing::TempDir() + "ckpt_atomic_test";
  const RefineCheckpoint ck = sample_checkpoint();
  std::string error;
  ASSERT_TRUE(topo::save_refine_checkpoint(path, ck, &error)) << error;
  // No temporary left behind.
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  auto loaded = topo::load_refine_checkpoint(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->iteration, ck.iteration);
  std::remove(path.c_str());
}

TEST(CheckpointTest, FailedSaveLeavesDestinationUntouched) {
  const std::string dir = testing::TempDir() + "ckpt_no_such_dir_xyz";
  const std::string path = dir + "/checkpoint";
  std::string error;
  EXPECT_FALSE(topo::save_refine_checkpoint(path, sample_checkpoint(),
                                            &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(std::ifstream(path).good());
}

TEST(CheckpointTest, LoadReportsMissingFile) {
  std::string error;
  EXPECT_FALSE(topo::load_refine_checkpoint(
                   testing::TempDir() + "ckpt_does_not_exist", &error)
                   .has_value());
  EXPECT_FALSE(error.empty());
}

// ---- SIGTERM-during-fit atomicity -----------------------------------------

/// A fit needing several iterations (the observed path goes the long way
/// around a ring, so the 1-6 shortcut must be filtered away and the suffix
/// propagated iteration by iteration) -- enough runway for an interrupt to
/// land while checkpoints are being written every iteration.
data::BgpDataset ring_dataset() {
  data::BgpDataset dataset;
  dataset.points.push_back({RouterId{1, 0}});
  topo::AsPath path{1, 2, 3, 4, 5, 6};
  dataset.records.push_back({0, path.origin(), path});
  return dataset;
}

Model ring_model() {
  topo::AsGraph g;
  for (nb::Asn a = 1; a < 6; ++a) g.add_edge(a, a + 1);
  g.add_edge(1, 6);
  return Model::one_router_per_as(g);
}

/// Reads a file fully; "" when absent.
std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(CheckpointInterruptTest, SigtermLeavesCompleteCheckpointAndNoTmp) {
  const std::string path = testing::TempDir() + "ckpt_sigterm_test";
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());

  // The rdtool SIGTERM path verbatim: the handler sets the interrupt flag,
  // the loop observes it between iterations and checkpoints before
  // returning kInterrupted.  Pre-raising the flag makes the very first
  // poll hit -- the checkpoint write happens entirely "after SIGTERM".
  std::atomic<bool> interrupt{true};
  Model model = ring_model();
  core::RefineConfig config;
  config.interrupt = &interrupt;
  config.checkpoint_path = path;
  config.checkpoint_every = 1;
  const auto result = core::refine_model(model, ring_dataset(), config);
  EXPECT_EQ(result.stop, core::RefineStop::kInterrupted);
  ASSERT_TRUE(result.checkpoint_written);

  // Atomic save contract at the interrupt edge: no temp debris, a complete
  // header, and the on-disk bytes equal a full re-serialization of what
  // loads back -- i.e. not one byte of truncation.
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  const std::string on_disk = slurp(path);
  EXPECT_EQ(on_disk.rfind("refine-checkpoint v1", 0), 0u);
  std::string error;
  const auto loaded = topo::load_refine_checkpoint(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(on_disk, to_string(*loaded));
  std::remove(path.c_str());
}

#ifdef RD_FAULT_INJECTION
TEST(CheckpointInterruptTest, InterruptOverwritesPriorCheckpointAtomically) {
  const std::string path = testing::TempDir() + "ckpt_overwrite_test";
  std::remove(path.c_str());

  // checkpoint_every=1 plus an injected interrupt at iteration 2: the
  // iteration-1 checkpoint is already on disk when the interrupt-edge save
  // renames over it.  The survivor must be the complete iteration-2 state,
  // never a mix or a partial file.
  Model model = ring_model();
  core::FaultPlan plan;
  plan.interrupt_iteration = 2;
  core::RefineConfig config;
  config.fault_plan = &plan;
  config.checkpoint_path = path;
  config.checkpoint_every = 1;
  const auto result = core::refine_model(model, ring_dataset(), config);
  EXPECT_EQ(result.stop, core::RefineStop::kInterrupted);
  ASSERT_TRUE(result.checkpoint_written);

  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::string error;
  const auto loaded = topo::load_refine_checkpoint(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->iteration, 2u);
  EXPECT_EQ(slurp(path), to_string(*loaded));

  // And the surviving checkpoint is genuinely resumable.
  Model resumed = loaded->model;
  core::RefineConfig resume_config;
  resume_config.resume = &*loaded;
  EXPECT_TRUE(
      core::refine_model(resumed, ring_dataset(), resume_config).success);
  std::remove(path.c_str());
}
#endif  // RD_FAULT_INJECTION

}  // namespace
