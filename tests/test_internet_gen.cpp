// Tests for the synthetic Internet generator and the ground-truth network:
// structural invariants the rest of the reproduction depends on.
#include <gtest/gtest.h>

#include "data/ground_truth.hpp"
#include "data/internet_gen.hpp"

namespace {

using data::GroundTruthConfig;
using data::Internet;
using data::InternetConfig;

InternetConfig small_config(std::uint64_t seed = 1) {
  InternetConfig config;
  config.seed = seed;
  config.num_tier1 = 4;
  config.num_level2 = 10;
  config.num_level3 = 20;
  config.num_stub_multi = 30;
  config.num_stub_single = 15;
  return config;
}

TEST(InternetGenTest, PopulationCounts) {
  Internet net = data::generate_internet(small_config());
  EXPECT_EQ(net.tier1.size(), 4u);
  EXPECT_EQ(net.level2.size(), 10u);
  EXPECT_EQ(net.level3.size(), 20u);
  EXPECT_EQ(net.stubs_multi.size(), 30u);
  EXPECT_EQ(net.stubs_single.size(), 15u);
  EXPECT_EQ(net.graph.num_nodes(), 4u + 10 + 20 + 30 + 15);
}

TEST(InternetGenTest, Tier1IsClique) {
  Internet net = data::generate_internet(small_config());
  for (nb::Asn a : net.tier1)
    for (nb::Asn b : net.tier1)
      if (a != b) {
        EXPECT_TRUE(net.graph.has_edge(a, b));
        EXPECT_EQ(net.relationships.get(a, b),
                  topo::Relationship::kPeerPeer);
      }
}

TEST(InternetGenTest, GraphIsConnected) {
  for (std::uint64_t seed : {1, 2, 3, 4, 5}) {
    Internet net = data::generate_internet(small_config(seed));
    EXPECT_EQ(net.graph.num_components(), 1u) << "seed " << seed;
  }
}

TEST(InternetGenTest, EveryNonTier1HasProvider) {
  Internet net = data::generate_internet(small_config());
  auto has_provider = [&](nb::Asn asn) {
    for (nb::Asn peer : net.graph.neighbors(asn)) {
      if (net.relationships.get(asn, peer) ==
          topo::Relationship::kCustomerProvider)
        return true;
    }
    return false;
  };
  for (nb::Asn asn : net.level2) EXPECT_TRUE(has_provider(asn)) << asn;
  for (nb::Asn asn : net.level3) EXPECT_TRUE(has_provider(asn)) << asn;
  for (nb::Asn asn : net.stubs_multi) EXPECT_TRUE(has_provider(asn)) << asn;
  for (nb::Asn asn : net.stubs_single) EXPECT_TRUE(has_provider(asn)) << asn;
}

TEST(InternetGenTest, SingleHomedStubsHaveOneNeighbor) {
  Internet net = data::generate_internet(small_config());
  for (nb::Asn asn : net.stubs_single)
    EXPECT_EQ(net.graph.degree(asn), 1u) << asn;
  for (nb::Asn asn : net.stubs_multi)
    EXPECT_GE(net.graph.degree(asn), 2u) << asn;
}

TEST(InternetGenTest, DeterministicInSeed) {
  Internet a = data::generate_internet(small_config(7));
  Internet b = data::generate_internet(small_config(7));
  EXPECT_EQ(a.graph.edges(), b.graph.edges());
  EXPECT_EQ(a.prefix_counts, b.prefix_counts);
  Internet c = data::generate_internet(small_config(8));
  EXPECT_NE(a.graph.edges(), c.graph.edges());
}

TEST(InternetGenTest, PrefixCountsPositiveAndCapped) {
  InternetConfig config = small_config();
  config.prefix_count_cap = 16;
  Internet net = data::generate_internet(config);
  bool any_above_one = false;
  for (auto& [asn, count] : net.prefix_counts) {
    EXPECT_GE(count, 1u);
    EXPECT_LE(count, 16u);
    any_above_one |= count > 1;
  }
  EXPECT_TRUE(any_above_one);  // heavy tail produces multi-prefix ASes
}

TEST(InternetGenTest, ScaledConfigScalesCounts) {
  InternetConfig config;  // defaults
  InternetConfig half = config.scaled(0.5);
  EXPECT_EQ(half.num_level2, config.num_level2 / 2);
  EXPECT_GE(half.num_tier1, 3u);
  InternetConfig tiny = config.scaled(0.0001);
  EXPECT_GE(tiny.num_tier1, 3u);
  EXPECT_GE(tiny.num_level2, 1u);
}

TEST(InternetGenTest, IsStubClassifier) {
  Internet net = data::generate_internet(small_config());
  EXPECT_TRUE(net.is_stub(net.stubs_multi.front()));
  EXPECT_TRUE(net.is_stub(net.stubs_single.back()));
  EXPECT_FALSE(net.is_stub(net.tier1.front()));
  EXPECT_FALSE(net.is_stub(net.level3.front()));
}

TEST(GroundTruthTest, EveryAsHasRouters) {
  Internet net = data::generate_internet(small_config());
  GroundTruthConfig config;
  auto gt = data::build_ground_truth(net, config);
  for (nb::Asn asn : net.graph.nodes()) {
    EXPECT_GE(gt.model.routers_of(asn).size(), 1u) << asn;
  }
  // Stubs stay single-router.
  for (nb::Asn asn : net.stubs_single)
    EXPECT_EQ(gt.model.routers_of(asn).size(), 1u);
}

TEST(GroundTruthTest, EveryAsEdgeHasAtLeastOneSession) {
  Internet net = data::generate_internet(small_config());
  auto gt = data::build_ground_truth(net, GroundTruthConfig{});
  for (auto [a, b] : net.graph.edges()) {
    bool any = false;
    for (topo::Model::Dense r : gt.model.routers_of(a)) {
      for (topo::Model::Dense peer : gt.model.peers(r)) {
        any |= gt.model.router_id(peer).asn() == b;
      }
    }
    EXPECT_TRUE(any) << a << "-" << b;
  }
}

TEST(GroundTruthTest, SomeAsesHaveMultipleRouters) {
  Internet net = data::generate_internet(small_config());
  auto gt = data::build_ground_truth(net, GroundTruthConfig{});
  std::size_t multi = 0;
  for (auto& [asn, count] : gt.model.router_counts())
    if (count > 1) ++multi;
  EXPECT_GT(multi, 0u);
}

TEST(GroundTruthTest, IgpCostsAssigned) {
  Internet net = data::generate_internet(small_config());
  auto gt = data::build_ground_truth(net, GroundTruthConfig{});
  bool any_nonzero = false;
  for (topo::Model::Dense r = 0; r < gt.model.num_routers(); ++r)
    for (topo::Model::Dense peer : gt.model.peers(r))
      any_nonzero |= gt.model.igp_cost(r, peer) > 0;
  EXPECT_TRUE(any_nonzero);
}

TEST(GroundTruthTest, RelationshipsAdopted) {
  Internet net = data::generate_internet(small_config());
  auto gt = data::build_ground_truth(net, GroundTruthConfig{});
  auto [a, b] = net.graph.edges().front();
  EXPECT_NE(gt.model.neighbor_class(a, b), topo::NeighborClass::kUnknown);
}

TEST(GroundTruthTest, WeirdPoliciesOnlyWhenConfigured) {
  Internet net = data::generate_internet(small_config());
  GroundTruthConfig none;
  none.weird_as_fraction = 0;
  auto gt = data::build_ground_truth(net, none);
  EXPECT_TRUE(gt.weird_ases.empty());
  auto stats = gt.model.policy_stats();
  EXPECT_EQ(stats.lp_overrides, 0u);
  EXPECT_EQ(stats.filters, 0u);

  GroundTruthConfig all;
  all.weird_as_fraction = 1.0;
  auto gt2 = data::build_ground_truth(net, all);
  EXPECT_FALSE(gt2.weird_ases.empty());
  auto stats2 = gt2.model.policy_stats();
  EXPECT_GT(stats2.lp_overrides + stats2.filters, 0u);
}

TEST(GroundTruthTest, DeterministicInSeed) {
  Internet net = data::generate_internet(small_config());
  auto a = data::build_ground_truth(net, GroundTruthConfig{});
  auto b = data::build_ground_truth(net, GroundTruthConfig{});
  EXPECT_EQ(a.model.num_routers(), b.model.num_routers());
  EXPECT_EQ(a.model.num_sessions(), b.model.num_sessions());
  EXPECT_EQ(a.weird_ases, b.weird_ases);
}

}  // namespace
