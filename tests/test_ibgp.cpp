// Tests for the iBGP-mesh experiment mode -- the alternative the paper
// rejected in Section 4.6 ("extremely difficult to control route
// selection").
#include <gtest/gtest.h>

#include "core/refine.hpp"
#include "bgp/engine.hpp"

namespace {

using nb::Asn;
using nb::Prefix;
using nb::RouterId;
using topo::Model;

// AS 1 has two routers: 1.0 peers with AS 2, 1.1 peers with AS 3; both
// upstreams reach origin 9.
Model split_as() {
  Model m;
  RouterId r10 = m.add_router(1);
  RouterId r11 = m.add_router(1);
  RouterId r2 = m.add_router(2);
  RouterId r3 = m.add_router(3);
  RouterId r9 = m.add_router(9);
  m.add_session(r10, r2);
  m.add_session(r11, r3);
  m.add_session(r2, r9);
  m.add_session(r3, r9);
  return m;
}

TEST(IbgpTest, WithoutMeshRoutersAreIsolated) {
  Model m = split_as();
  bgp::Engine engine(m);
  auto sim = engine.run(Prefix::for_asn(9), 9);
  // Each router only knows its own upstream.
  EXPECT_EQ(sim.routers[m.dense(RouterId{1, 0})].rib_in.size(), 1u);
  EXPECT_EQ(sim.routers[m.dense(RouterId{1, 1})].rib_in.size(), 1u);
  EXPECT_EQ(sim.routers[m.dense(RouterId{1, 0})].best_route()->path,
            (std::vector<Asn>{2, 9}));
  EXPECT_EQ(sim.routers[m.dense(RouterId{1, 1})].best_route()->path,
            (std::vector<Asn>{3, 9}));
}

TEST(IbgpTest, MeshSharesExternalRoutes) {
  Model m = split_as();
  bgp::EngineOptions options;
  options.use_ibgp_mesh = true;
  bgp::Engine engine(m, options);
  auto sim = engine.run(Prefix::for_asn(9), 9);
  // Each router of AS 1 now also holds the mate's route, flagged iBGP.
  const auto& rib0 = sim.routers[m.dense(RouterId{1, 0})].rib_in;
  ASSERT_EQ(rib0.size(), 2u);
  bool has_ibgp = false;
  for (const auto& entry : rib0) {
    if (entry.ibgp) {
      has_ibgp = true;
      EXPECT_EQ(entry.path, (std::vector<Asn>{3, 9}));
    }
  }
  EXPECT_TRUE(has_ibgp);
  // eBGP wins over iBGP at equal preference: own external stays best.
  EXPECT_EQ(sim.routers[m.dense(RouterId{1, 0})].best_route()->path,
            (std::vector<Asn>{2, 9}));
  EXPECT_FALSE(sim.routers[m.dense(RouterId{1, 0})].best_route()->ibgp);
}

TEST(IbgpTest, ShorterIbgpRouteWinsOverLongerExternal) {
  // 1.1's external route is longer (via 3-5-9); the mate's shared route via
  // 2-9 is shorter and must win despite being iBGP.
  Model m;
  RouterId r10 = m.add_router(1);
  RouterId r11 = m.add_router(1);
  RouterId r2 = m.add_router(2);
  RouterId r3 = m.add_router(3);
  RouterId r5 = m.add_router(5);
  RouterId r9 = m.add_router(9);
  m.add_session(r10, r2);
  m.add_session(r11, r3);
  m.add_session(r2, r9);
  m.add_session(r3, r5);
  m.add_session(r5, r9);
  bgp::EngineOptions options;
  options.use_ibgp_mesh = true;
  bgp::Engine engine(m, options);
  auto sim = engine.run(Prefix::for_asn(9), 9);
  const bgp::Route* best = sim.routers[m.dense(r11)].best_route();
  ASSERT_NE(best, nullptr);
  EXPECT_TRUE(best->ibgp);
  EXPECT_EQ(best->path, (std::vector<Asn>{2, 9}));
  // external_route still reports the eBGP choice.
  EXPECT_EQ(sim.routers[m.dense(r11)].external_route()->path,
            (std::vector<Asn>{3, 5, 9}));
}

TEST(IbgpTest, IbgpRoutesAreNotReAdvertisedIntoTheMesh) {
  // Three routers in AS 1; only 1.0 has an upstream.  1.1 and 1.2 learn the
  // route over iBGP from 1.0 directly; the sender must always be 1.0 (no
  // relay through 1.1).
  Model m;
  RouterId r10 = m.add_router(1);
  RouterId r11 = m.add_router(1);
  RouterId r12 = m.add_router(1);
  RouterId r2 = m.add_router(2);
  m.add_session(r10, r2);
  (void)r11;
  (void)r12;
  bgp::EngineOptions options;
  options.use_ibgp_mesh = true;
  bgp::Engine engine(m, options);
  auto sim = engine.run(Prefix::for_asn(2), 2);
  for (RouterId router : {r11, r12}) {
    const auto& rib = sim.routers[m.dense(router)].rib_in;
    ASSERT_EQ(rib.size(), 1u) << router.str();
    EXPECT_TRUE(rib[0].ibgp);
    EXPECT_EQ(rib[0].sender, m.dense(r10));
    // And since it is iBGP-learned, it IS still advertised over eBGP...
    // (no eBGP peers here to check; covered below).
  }
}

TEST(IbgpTest, IbgpLearnedRouteExportedOverEbgp) {
  // 1.1 has no upstream of its own but peers with AS 4; the iBGP-learned
  // route must be advertised to 4 with AS 1 prepended.
  Model m;
  RouterId r10 = m.add_router(1);
  RouterId r11 = m.add_router(1);
  RouterId r2 = m.add_router(2);
  RouterId r4 = m.add_router(4);
  m.add_session(r10, r2);
  m.add_session(r11, r4);
  bgp::EngineOptions options;
  options.use_ibgp_mesh = true;
  bgp::Engine engine(m, options);
  auto sim = engine.run(Prefix::for_asn(2), 2);
  const bgp::Route* best = sim.routers[m.dense(r4)].best_route();
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->path, (std::vector<Asn>{1, 2}));
  EXPECT_FALSE(best->ibgp);  // eBGP again from 4's perspective
}

TEST(IbgpTest, MeshPreservesEqualLengthDiversity) {
  // With EQUAL-length externals the eBGP-over-iBGP step keeps each router
  // on its own exit (hot-potato): diversity survives the mesh.
  Model m;
  RouterId r10 = m.add_router(1);
  RouterId r11 = m.add_router(1);
  RouterId r2 = m.add_router(2);
  RouterId r3 = m.add_router(3);
  RouterId r9 = m.add_router(9);
  RouterId r6a = m.add_router(6);
  RouterId r6b = m.add_router(6);
  m.add_session(r10, r2);
  m.add_session(r11, r3);
  m.add_session(r2, r9);
  m.add_session(r3, r9);
  m.add_session(r10, r6a);
  m.add_session(r11, r6b);

  auto distinct_paths_at_6 = [&](bool mesh) {
    bgp::EngineOptions options;
    options.use_ibgp_mesh = mesh;
    bgp::Engine engine(m, options);
    auto sim = engine.run(Prefix::for_asn(9), 9);
    std::set<std::vector<Asn>> paths;
    for (RouterId router : {r6a, r6b}) {
      const bgp::Route* best = sim.routers[m.dense(router)].best_route();
      if (best != nullptr) paths.insert(best->path);
    }
    return paths.size();
  };
  EXPECT_EQ(distinct_paths_at_6(false), 2u);
  EXPECT_EQ(distinct_paths_at_6(true), 2u);
}

TEST(IbgpTest, MeshCollapsesUnequalLengthDiversity) {
  // The Section 4.6 problem in miniature: the longer external (via 3-5)
  // loses the length step to the mate's iBGP-shared shorter route, so both
  // routers of AS 1 advertise the same path and the downstream diversity
  // disappears -- isolated quasi-routers keep it.
  Model m;
  RouterId r10 = m.add_router(1);
  RouterId r11 = m.add_router(1);
  RouterId r2 = m.add_router(2);
  RouterId r3 = m.add_router(3);
  RouterId r5 = m.add_router(5);
  RouterId r9 = m.add_router(9);
  RouterId r6a = m.add_router(6);
  RouterId r6b = m.add_router(6);
  m.add_session(r10, r2);
  m.add_session(r11, r3);
  m.add_session(r2, r9);
  m.add_session(r3, r5);
  m.add_session(r5, r9);
  m.add_session(r10, r6a);
  m.add_session(r11, r6b);

  auto distinct_paths_at_6 = [&](bool mesh) {
    bgp::EngineOptions options;
    options.use_ibgp_mesh = mesh;
    bgp::Engine engine(m, options);
    auto sim = engine.run(Prefix::for_asn(9), 9);
    std::set<std::vector<Asn>> paths;
    for (RouterId router : {r6a, r6b}) {
      const bgp::Route* best = sim.routers[m.dense(router)].best_route();
      if (best != nullptr) paths.insert(best->path);
    }
    return paths.size();
  };
  EXPECT_EQ(distinct_paths_at_6(false), 2u);
  EXPECT_EQ(distinct_paths_at_6(true), 1u);
}

TEST(IbgpTest, RefinementDegradesUnderMesh) {
  // Fitting observed diversity of UNEQUAL path lengths with an iBGP mesh
  // inside every AS must fail where the isolated quasi-router model
  // succeeds: the mate's shorter external route arrives over the mesh,
  // wins the length step, and no session filter can block it -- the
  // paper's "extremely difficult to control route selection, in particular
  // to install different routes at neighboring ibgp routers" (Section 4.6).
  topo::AsGraph g;
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 9);
  g.add_edge(3, 5);
  g.add_edge(5, 9);
  g.add_edge(6, 1);
  data::BgpDataset training;
  training.points.push_back({RouterId{6, 0}});
  training.records.push_back({0, 9, topo::AsPath{6, 1, 2, 9}});
  training.records.push_back({0, 9, topo::AsPath{6, 1, 3, 5, 9}});

  core::RefineConfig config;
  Model isolated = Model::one_router_per_as(g);
  auto plain = core::refine_model(isolated, training, config);
  EXPECT_TRUE(plain.success);

  Model meshed = Model::one_router_per_as(g);
  core::RefineConfig mesh_config = config;
  mesh_config.engine.use_ibgp_mesh = true;
  mesh_config.max_iterations = 24;
  auto mesh = core::refine_model(meshed, training, mesh_config);
  EXPECT_FALSE(mesh.success);
}

}  // namespace
