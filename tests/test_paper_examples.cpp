// The paper's worked examples, encoded as tests:
//
//  * Figure 5 -- refining a 5-AS model for two prefixes: a wrong tie-break
//    fixed by a ranking policy, and route diversity accommodated by a second
//    quasi-router plus filter;
//  * Figure 7 -- filter deletion: a filter installed while fixing one path
//    blocks another observed path and must be relaxed (toward a duplicate);
//  * Figure 3 -- a multi-homed origin whose two upstreams hand multiple
//    paths to the core, requiring several quasi-routers to re-propagate.
#include <gtest/gtest.h>

#include "bgp/engine.hpp"
#include "core/metrics.hpp"
#include "core/predict.hpp"
#include "core/refine.hpp"

namespace {

using core::MatchKind;
using data::BgpDataset;
using nb::Asn;
using nb::Prefix;
using nb::RouterId;
using topo::AsPath;
using topo::Model;

BgpDataset dataset_at(Asn observer, std::vector<AsPath> paths) {
  BgpDataset dataset;
  dataset.points.push_back({RouterId{observer, 0}});
  for (AsPath& path : paths) {
    dataset.records.push_back({0, path.origin(), path});
  }
  return dataset;
}

core::EvalResult eval(const Model& model, const BgpDataset& dataset) {
  return core::evaluate_predictions(model, dataset, core::EvalOptions{});
}

TEST(Figure5Test, RefinementReproducesBothPrefixes) {
  // Figure 5 topology: AS1 connects to AS2, AS4, AS5; AS2-AS3; AS4-AS3;
  // AS5-AS4.  Prefix p1 at AS3, p2 at AS4.  Observed at AS1:
  //   p1: 1-4-3   (initial simulation wrongly picks 1-2-3 via tie-break)
  //   p2: 1-4 AND 1-5-4  (diversity: needs a second quasi-router)
  topo::AsGraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(1, 4);
  g.add_edge(4, 3);
  g.add_edge(1, 5);
  g.add_edge(5, 4);

  BgpDataset training = dataset_at(1, {AsPath{1, 4, 3}, AsPath{1, 4},
                                       AsPath{1, 5, 4}});

  Model model = Model::one_router_per_as(g);

  // Pre-check the initial defect the paper describes: the simulation picks
  // 1-2-3 for p1 (tie-break, 2.0 < 4.0), so 1-4-3 is only a potential
  // RIB-Out match.
  {
    bgp::Engine engine(model);
    auto sim = engine.run(Prefix::for_asn(3), 3);
    auto ids = bgp::dense_ids(model);
    auto match = core::classify_path(model, sim, AsPath{1, 4, 3}, ids);
    EXPECT_EQ(match.kind, MatchKind::kPotentialRibOut);
    EXPECT_EQ(match.lost_at, bgp::DecisionStep::kTieBreak);
  }

  core::RefineConfig config;
  auto result = core::refine_model(model, training, config);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.unmatched_paths, 0u);

  // The paper's outcome: AS 1 ends up with two quasi-routers; all other
  // ASes keep one.
  EXPECT_EQ(model.routers_of(1).size(), 2u);
  EXPECT_EQ(model.routers_of(4).size(), 1u);

  auto outcome = eval(model, training);
  EXPECT_DOUBLE_EQ(outcome.stats.rib_out_rate(), 1.0);

  // And the fixes are per-prefix: p1's policies exist at prefix p1, not p2.
  const topo::PrefixPolicy* p1 = model.find_policy(Prefix::for_asn(3));
  ASSERT_NE(p1, nullptr);
  EXPECT_FALSE(p1->rankings.empty());
}

TEST(Figure5Test, RankingRealizesPreferAs4) {
  // After refinement the quasi-router serving p1 at AS 1 must prefer
  // routes announced by AS 4 (the paper's "policy at the quasi-router in
  // AS 1 to prefer routes learned from AS 4 for prefix p1").
  topo::AsGraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(1, 4);
  g.add_edge(4, 3);
  Model model = Model::one_router_per_as(g);
  BgpDataset training = dataset_at(1, {AsPath{1, 4, 3}});
  auto result = core::refine_model(model, training, core::RefineConfig{});
  EXPECT_TRUE(result.success);
  const topo::PrefixPolicy* policy = model.find_policy(Prefix::for_asn(3));
  ASSERT_NE(policy, nullptr);
  auto it = policy->rankings.find(RouterId{1, 0}.value());
  ASSERT_NE(it, policy->rankings.end());
  EXPECT_EQ(it->second.preferred_neighbor, 4u);
}

TEST(Figure7Test, FilterDeletionUnblocksObservedPath) {
  // Fig. 7 situation, constructed directly: an earlier refinement episode
  // left a filter on the session AS7 -> AS1 (owned by AS1's quasi-router,
  // protecting its assigned path) that blocks the observed path 1-7-5-9.
  // The heuristic must detect the RIB-Out match at the announcing neighbor,
  // relax the filter -- toward a fresh duplicate, because the filter's owner
  // protects another path -- and converge.
  topo::AsGraph g;
  g.add_edge(1, 7);
  g.add_edge(7, 4);
  g.add_edge(7, 5);
  g.add_edge(4, 9);
  g.add_edge(5, 9);

  Model model = Model::one_router_per_as(g);
  const Prefix p = Prefix::for_asn(9);
  // The pre-existing filter: deny routes shorter than length 4 toward AS 1
  // (blocks every real route to prefix 9, lengths <= 3), owned by 1.0.
  model.set_export_filter(RouterId{7, 0}, RouterId{1, 0}, p, 4,
                          RouterId{1, 0});

  BgpDataset training = dataset_at(1, {AsPath{1, 7, 5, 9}});
  auto result = core::refine_model(model, training, core::RefineConfig{});
  EXPECT_TRUE(result.success) << result.unmatched_paths << " unmatched";
  EXPECT_GT(result.filters_relaxed, 0u) << "expected Fig. 7 filter deletion";
  // The blocked path landed on a duplicate: AS 1 now has two quasi-routers
  // ("the removal of the filter leads to the creation of a new quasi-router
  // at AS 1").
  EXPECT_GE(model.routers_of(1).size(), 2u);
  auto outcome = eval(model, training);
  EXPECT_DOUBLE_EQ(outcome.stats.rib_out_rate(), 1.0);
}

TEST(Figure7Test, UnownedFilterRelaxedInPlace) {
  // Same situation but the blocking filter has no owner (e.g. hand-written
  // config): it is relaxed in place, no duplicate needed.
  topo::AsGraph g;
  g.add_edge(1, 7);
  g.add_edge(7, 5);
  g.add_edge(5, 9);
  Model model = Model::one_router_per_as(g);
  const Prefix p = Prefix::for_asn(9);
  model.set_export_filter(RouterId{7, 0}, RouterId{1, 0}, p,
                          topo::ExportFilter::kDenyAll, nb::kInvalidRouterId);
  BgpDataset training = dataset_at(1, {AsPath{1, 7, 5, 9}});
  auto result = core::refine_model(model, training, core::RefineConfig{});
  EXPECT_TRUE(result.success);
  EXPECT_GT(result.filters_relaxed, 0u);
  EXPECT_EQ(model.routers_of(1).size(), 1u);
}

TEST(Figure3Test, MultiHomedOriginDiversityReachesCore) {
  // Figure 3 flavor: origin AS 24249 is multi-homed to AS 4694 and 4651;
  // both propagate to a "tier-1" AS 5511 that must carry several distinct
  // paths onward.  We check that refinement equips the core AS with enough
  // quasi-routers to re-advertise every observed path.
  topo::AsGraph g;
  const Asn origin = 24249, up1 = 4694, up2 = 4651, core1 = 5511,
            obs = 2914;
  g.add_edge(origin, up1);
  g.add_edge(origin, up2);
  g.add_edge(up1, core1);
  g.add_edge(up2, core1);
  g.add_edge(core1, obs);

  BgpDataset training = dataset_at(
      obs, {AsPath{obs, core1, up1, origin}, AsPath{obs, core1, up2, origin}});
  Model model = Model::one_router_per_as(g);
  auto result = core::refine_model(model, training, core::RefineConfig{});
  EXPECT_TRUE(result.success);
  // AS 5511 must be modeled by at least two quasi-routers (paper: "it needs
  // to be modeled by at least two different routers").
  EXPECT_GE(model.routers_of(core1).size(), 2u);
  auto outcome = eval(model, training);
  EXPECT_DOUBLE_EQ(outcome.stats.rib_out_rate(), 1.0);
}

TEST(Figure6Test, IterationsBoundedByPathLengthMultiple) {
  // The paper: "Perfect RIB-Out matches are achieved after a total number
  // of iterations that is a multiple of the maximum AS-path length."
  // A long chain with a forced non-shortest observed path must converge in
  // a small multiple of its length.
  topo::AsGraph g;
  // Chain 1-2-3-4-5-6 plus shortcut 1-6 making the chain non-shortest.
  for (Asn a = 1; a < 6; ++a) g.add_edge(a, a + 1);
  g.add_edge(1, 6);
  BgpDataset training =
      dataset_at(1, {AsPath{1, 2, 3, 4, 5, 6}});
  Model model = Model::one_router_per_as(g);
  auto result = core::refine_model(model, training, core::RefineConfig{});
  EXPECT_TRUE(result.success);
  EXPECT_LE(result.iterations, 3u * 6u);
}

TEST(AblationTest, NoDuplicationCannotCarryDiversity) {
  // Without quasi-router duplication, two simultaneous paths at one AS are
  // impossible -- exactly the single-router limitation of Section 3.3.
  topo::AsGraph g;
  g.add_edge(1, 4);
  g.add_edge(1, 5);
  g.add_edge(5, 4);
  BgpDataset training = dataset_at(1, {AsPath{1, 4}, AsPath{1, 5, 4}});
  Model model = Model::one_router_per_as(g);
  core::RefineConfig config;
  config.allow_duplication = false;
  auto result = core::refine_model(model, training, config);
  EXPECT_FALSE(result.success);
  EXPECT_EQ(model.routers_of(1).size(), 1u);
  EXPECT_GT(result.unmatched_paths, 0u);
}

TEST(AblationTest, NoFiltersCannotForceLongerPath) {
  // Without filters a longer-than-best observed path cannot be selected
  // (length is evaluated before MED).
  topo::AsGraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 4);
  g.add_edge(1, 3);
  g.add_edge(3, 5);
  g.add_edge(5, 4);
  BgpDataset training = dataset_at(1, {AsPath{1, 3, 5, 4}});
  Model model = Model::one_router_per_as(g);
  core::RefineConfig config;
  config.allow_filters = false;
  auto result = core::refine_model(model, training, config);
  EXPECT_FALSE(result.success);
}

TEST(AblationTest, NoRankingStillFixableByFilters) {
  // A pure tie-break defect can be fixed by filters alone (blocking the
  // equal-length competitor), so disabling ranking must not break this case.
  topo::AsGraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(1, 4);
  g.add_edge(4, 3);
  BgpDataset training = dataset_at(1, {AsPath{1, 4, 3}});
  Model model = Model::one_router_per_as(g);
  core::RefineConfig config;
  config.allow_ranking = false;
  auto result = core::refine_model(model, training, config);
  EXPECT_TRUE(result.success) << result.unmatched_paths;
}

}  // namespace
