// Tests for the Section 4.2 match metrics, including the Figure 4 toy
// example semantics (RIB-In match / potential RIB-Out / RIB-Out).
#include <gtest/gtest.h>

#include "bgp/engine.hpp"
#include "core/metrics.hpp"

namespace {

using core::MatchKind;
using core::MatchStats;
using core::PathMatch;
using nb::Asn;
using nb::Prefix;
using nb::RouterId;
using topo::AsPath;
using topo::Model;

// Two equal-length routes into AS 1 (via 2 and via 3); tie-break picks the
// route via 2 (lower sender id).
struct TieBreakFixture {
  Model model;
  bgp::PrefixSimResult sim;
  std::vector<std::uint32_t> ids;

  TieBreakFixture() {
    topo::AsGraph g;
    g.add_edge(1, 2);
    g.add_edge(1, 3);
    g.add_edge(2, 4);
    g.add_edge(3, 4);
    model = Model::one_router_per_as(g);
    bgp::Engine engine(model);
    sim = engine.run(Prefix::for_asn(4), 4);
    ids = bgp::dense_ids(model);
  }
};

TEST(MetricsTest, RibOutMatch) {
  TieBreakFixture f;
  PathMatch match =
      core::classify_path(f.model, f.sim, AsPath{1, 2, 4}, f.ids);
  EXPECT_EQ(match.kind, MatchKind::kRibOut);
  EXPECT_EQ(f.model.router_id(match.router), (RouterId{1, 0}));
}

TEST(MetricsTest, PotentialRibOutLostAtTieBreak) {
  TieBreakFixture f;
  PathMatch match =
      core::classify_path(f.model, f.sim, AsPath{1, 3, 4}, f.ids);
  EXPECT_EQ(match.kind, MatchKind::kPotentialRibOut);
  EXPECT_EQ(match.lost_at, bgp::DecisionStep::kTieBreak);
}

TEST(MetricsTest, RibInOnlyLostAtLength) {
  // Longer observed path that is received but loses on length.
  topo::AsGraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 4);
  g.add_edge(1, 3);
  g.add_edge(3, 5);
  g.add_edge(5, 4);
  Model m = Model::one_router_per_as(g);
  bgp::Engine engine(m);
  auto sim = engine.run(Prefix::for_asn(4), 4);
  auto ids = bgp::dense_ids(m);
  PathMatch match = core::classify_path(m, sim, AsPath{1, 3, 5, 4}, ids);
  EXPECT_EQ(match.kind, MatchKind::kRibInOnly);
  EXPECT_EQ(match.lost_at, bgp::DecisionStep::kPathLength);
}

TEST(MetricsTest, NotAvailable) {
  TieBreakFixture f;
  PathMatch match =
      core::classify_path(f.model, f.sim, AsPath{1, 3, 2, 4}, f.ids);
  EXPECT_EQ(match.kind, MatchKind::kNotAvailable);
}

TEST(MetricsTest, ObservationAtOriginMatches) {
  TieBreakFixture f;
  PathMatch match = core::classify_path(f.model, f.sim, AsPath{4}, f.ids);
  EXPECT_EQ(match.kind, MatchKind::kRibOut);
}

TEST(MetricsTest, HasRibOutHelper) {
  TieBreakFixture f;
  std::vector<Asn> via2{2, 4};
  std::vector<Asn> via3{3, 4};
  EXPECT_TRUE(core::has_rib_out(f.model, f.sim, 1, via2));
  EXPECT_FALSE(core::has_rib_out(f.model, f.sim, 1, via3));
}

TEST(MetricsTest, MultiRouterAsAnyRouterCounts) {
  // Duplicate AS 1's router and rank the duplicate toward AS 3: both
  // observed paths become RIB-Out matches somewhere in the AS.
  topo::AsGraph g;
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 4);
  g.add_edge(3, 4);
  Model m = Model::one_router_per_as(g);
  RouterId dup = m.duplicate_router(RouterId{1, 0});
  Prefix p = Prefix::for_asn(4);
  m.set_ranking(dup, p, 3);
  bgp::Engine engine(m);
  auto sim = engine.run(p, 4);
  auto ids = bgp::dense_ids(m);
  EXPECT_EQ(core::classify_path(m, sim, AsPath{1, 2, 4}, ids).kind,
            MatchKind::kRibOut);
  EXPECT_EQ(core::classify_path(m, sim, AsPath{1, 3, 4}, ids).kind,
            MatchKind::kRibOut);
}

TEST(MatchStatsTest, AggregationAndRates) {
  MatchStats stats;
  PathMatch rib_out{MatchKind::kRibOut, bgp::DecisionStep::kEqual, 0};
  PathMatch potential{MatchKind::kPotentialRibOut,
                      bgp::DecisionStep::kTieBreak, 0};
  PathMatch rib_in{MatchKind::kRibInOnly, bgp::DecisionStep::kPathLength, 0};
  PathMatch missing{MatchKind::kNotAvailable, bgp::DecisionStep::kEqual,
                    Model::kNoRouter};
  stats.add(rib_out);
  stats.add(rib_out);
  stats.add(potential);
  stats.add(rib_in);
  stats.add(missing);
  EXPECT_EQ(stats.total, 5u);
  EXPECT_DOUBLE_EQ(stats.rib_out_rate(), 0.4);
  EXPECT_DOUBLE_EQ(stats.potential_or_better_rate(), 0.6);
  EXPECT_DOUBLE_EQ(stats.rib_in_rate(), 0.8);
  EXPECT_DOUBLE_EQ(stats.not_available_rate(), 0.2);
  EXPECT_EQ(stats.lost_at[static_cast<std::size_t>(
                bgp::DecisionStep::kPathLength)],
            1u);
}

TEST(MatchStatsTest, PrefixCoverage) {
  MatchStats stats;
  stats.add_prefix_coverage(2, 2);   // 100%
  stats.add_prefix_coverage(9, 10);  // 90%
  stats.add_prefix_coverage(1, 2);   // 50%
  stats.add_prefix_coverage(0, 3);   // 0%
  stats.add_prefix_coverage(0, 0);   // ignored
  EXPECT_EQ(stats.prefixes, 4u);
  EXPECT_EQ(stats.prefixes_50, 3u);
  EXPECT_EQ(stats.prefixes_90, 2u);
  EXPECT_EQ(stats.prefixes_100, 1u);
}

TEST(MetricsTest, KindNames) {
  EXPECT_STREQ(core::match_kind_name(MatchKind::kRibOut), "rib-out");
  EXPECT_STREQ(core::match_kind_name(MatchKind::kNotAvailable),
               "not-available");
}

}  // namespace
