// Structural invariants of fitted models, checked across seeds (TEST_P):
// these are the properties the refinement's convergence argument rests on
// (see DESIGN.md "Design notes on faithful mechanics").
#include <gtest/gtest.h>

#include "core/pipeline.hpp"

namespace {

using topo::Model;

class FittedModelInvariants : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static core::Pipeline fit(std::uint64_t seed) {
    return core::run_full_pipeline(core::PipelineConfig::with(0.07, seed));
  }
};

TEST_P(FittedModelInvariants, SessionsStayPairwiseComplete) {
  // Duplication copies every session of the source, so any two routers of
  // neighboring ASes must share a session -- the completeness property the
  // filter-deletion step relies on ("sessions exist per construction").
  auto pipeline = fit(GetParam());
  ASSERT_TRUE(pipeline.refine_result.success);
  const Model& model = pipeline.model;
  for (auto [a, b] : pipeline.graph.edges()) {
    for (Model::Dense ra : model.routers_of(a)) {
      for (Model::Dense rb : model.routers_of(b)) {
        EXPECT_TRUE(model.has_session(model.router_id(ra),
                                      model.router_id(rb)))
            << model.router_id(ra).str() << " <-> "
            << model.router_id(rb).str();
      }
    }
  }
}

TEST_P(FittedModelInvariants, FilterOwnersAreTheImportingRouter) {
  // Every refinement-created filter protects exactly the quasi-router it is
  // installed toward (provenance invariant used by filter deletion).
  auto pipeline = fit(GetParam());
  const Model& model = pipeline.model;
  for (auto& [prefix, policy] : model.prefix_policies()) {
    for (auto& [key, filter] : policy.filters) {
      if (!filter.owner_target.valid()) continue;  // ground-truth style rule
      const nb::RouterId to =
          nb::RouterId::from_value(static_cast<std::uint32_t>(key));
      EXPECT_EQ(filter.owner_target, to);
      EXPECT_TRUE(model.has_router(to));
    }
  }
}

TEST_P(FittedModelInvariants, RankingsNameActualNeighborAses) {
  auto pipeline = fit(GetParam());
  const Model& model = pipeline.model;
  for (auto& [prefix, policy] : model.prefix_policies()) {
    for (auto& [router_value, rule] : policy.rankings) {
      const nb::RouterId router = nb::RouterId::from_value(router_value);
      ASSERT_TRUE(model.has_router(router));
      bool is_neighbor = false;
      for (Model::Dense peer : model.peers(model.dense(router)))
        is_neighbor |= model.router_id(peer).asn() == rule.preferred_neighbor;
      EXPECT_TRUE(is_neighbor)
          << router.str() << " prefers non-neighbor AS "
          << rule.preferred_neighbor;
    }
  }
}

TEST_P(FittedModelInvariants, RouterIndicesAreDensePerAs) {
  auto pipeline = fit(GetParam());
  const Model& model = pipeline.model;
  for (nb::Asn asn : model.asns()) {
    const auto& routers = model.routers_of(asn);
    for (std::size_t i = 0; i < routers.size(); ++i) {
      EXPECT_EQ(model.router_id(routers[i]),
                (nb::RouterId{asn, static_cast<std::uint16_t>(i)}));
    }
  }
}

TEST_P(FittedModelInvariants, FittedModelIsAgnostic) {
  // The paper's model never uses relationship classes, local-pref overrides
  // or leaks -- only filters and rankings.
  auto pipeline = fit(GetParam());
  auto stats = pipeline.model.policy_stats();
  EXPECT_EQ(stats.lp_overrides, 0u);
  EXPECT_EQ(stats.export_allows, 0u);
  for (auto [a, b] : pipeline.graph.edges()) {
    EXPECT_EQ(pipeline.model.neighbor_class(a, b),
              topo::NeighborClass::kUnknown);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FittedModelInvariants,
                         ::testing::Values(31, 32, 33));

}  // namespace
