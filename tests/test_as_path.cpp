// Unit tests for AS-path semantics (observer-first convention).
#include <gtest/gtest.h>

#include <unordered_set>

#include "topology/as_path.hpp"

namespace {

using topo::AsPath;
using topo::AsPathHash;

TEST(AsPathTest, BasicAccessors) {
  AsPath p{1, 7, 6};
  EXPECT_EQ(p.length(), 3u);
  EXPECT_EQ(p.observer(), 1u);
  EXPECT_EQ(p.origin(), 6u);
  EXPECT_EQ(p.str(), "1 7 6");
}

TEST(AsPathTest, PrependAddsAtObserverSide) {
  AsPath p{7, 6};
  p.prepend(1);
  EXPECT_EQ(p, (AsPath{1, 7, 6}));
}

TEST(AsPathTest, LoopDetection) {
  EXPECT_FALSE((AsPath{1, 2, 3}).has_loop());
  EXPECT_TRUE((AsPath{1, 2, 1}).has_loop());
  EXPECT_TRUE((AsPath{2, 2}).has_loop());
  EXPECT_FALSE((AsPath{5}).has_loop());
}

TEST(AsPathTest, Contains) {
  AsPath p{1, 2, 3};
  EXPECT_TRUE(p.contains(2));
  EXPECT_FALSE(p.contains(9));
}

TEST(AsPathTest, WithoutPrependingCollapsesRuns) {
  AsPath p{1, 1, 2, 2, 2, 3};
  EXPECT_EQ(p.without_prepending(), (AsPath{1, 2, 3}));
  // Non-consecutive repetitions (true loops) stay.
  AsPath loop{1, 2, 1};
  EXPECT_EQ(loop.without_prepending(), loop);
}

TEST(AsPathTest, SuffixFrom) {
  AsPath p{1, 7, 6, 9};
  EXPECT_EQ(p.suffix_from(0), p);
  EXPECT_EQ(p.suffix_from(2), (AsPath{6, 9}));
  EXPECT_EQ(p.suffix_from(3), (AsPath{9}));
}

TEST(AsPathTest, MatchesRoutePath) {
  // Observed suffix "3 7 6" at AS 3 corresponds to a stored route whose
  // path is [7 6].
  AsPath suffix{3, 7, 6};
  std::vector<nb::Asn> route{7, 6};
  EXPECT_TRUE(suffix.matches_route_path(route));
  std::vector<nb::Asn> wrong{8, 6};
  EXPECT_FALSE(suffix.matches_route_path(wrong));
  std::vector<nb::Asn> shorter{6};
  EXPECT_FALSE(suffix.matches_route_path(shorter));
  // An origin-only suffix matches the empty (originated) route path.
  AsPath origin_only{6};
  EXPECT_TRUE(origin_only.matches_route_path({}));
}

TEST(AsPathTest, ParseAcceptsSpacesAndDashes) {
  EXPECT_EQ(AsPath::parse("1 7 6"), (AsPath{1, 7, 6}));
  EXPECT_EQ(AsPath::parse("1-7-6"), (AsPath{1, 7, 6}));
  EXPECT_EQ(AsPath::parse(" 1  7-6 "), (AsPath{1, 7, 6}));
  EXPECT_FALSE(AsPath::parse("").has_value());
  EXPECT_FALSE(AsPath::parse("1 x 3").has_value());
}

TEST(AsPathTest, OrderingIsLexicographic) {
  EXPECT_LT((AsPath{1, 2}), (AsPath{1, 3}));
  EXPECT_LT((AsPath{1, 2}), (AsPath{1, 2, 3}));
}

TEST(AsPathHashTest, EqualPathsHashEqual) {
  AsPathHash h;
  EXPECT_EQ(h(AsPath{1, 2, 3}), h(AsPath{1, 2, 3}));
}

TEST(AsPathHashTest, WorksInUnorderedSet) {
  std::unordered_set<AsPath, AsPathHash> set;
  set.insert(AsPath{1, 2});
  set.insert(AsPath{1, 2});
  set.insert(AsPath{2, 1});
  EXPECT_EQ(set.size(), 2u);
}

TEST(AsPathHashTest, FewCollisionsOnDistinctShortPaths) {
  AsPathHash h;
  std::unordered_set<std::size_t> hashes;
  int total = 0;
  for (nb::Asn a = 1; a <= 30; ++a) {
    for (nb::Asn b = 1; b <= 30; ++b) {
      if (a == b) continue;
      hashes.insert(h(AsPath{a, b}));
      ++total;
    }
  }
  // Allow a handful of collisions, not wholesale degeneracy.
  EXPECT_GT(hashes.size(), static_cast<std::size_t>(total * 0.99));
}

}  // namespace
