// Tests for the RIB-dump text format.
#include <gtest/gtest.h>

#include "data/rib_io.hpp"

namespace {

using data::BgpDataset;
using topo::AsPath;

BgpDataset sample() {
  BgpDataset dataset;
  dataset.points.push_back({nb::RouterId{701, 0}});
  dataset.points.push_back({nb::RouterId{1239, 2}});
  dataset.records.push_back({0, 9, AsPath{701, 5, 9}});
  dataset.records.push_back({1, 9, AsPath{1239, 9}});
  dataset.records.push_back({1, 7, AsPath{1239, 5, 7}});
  return dataset;
}

TEST(RibIoTest, RoundTrip) {
  BgpDataset original = sample();
  std::string text = data::dataset_to_string(original);
  std::string error;
  auto parsed = data::dataset_from_string(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->points.size(), original.points.size());
  for (std::size_t i = 0; i < original.points.size(); ++i)
    EXPECT_EQ(parsed->points[i].router, original.points[i].router);
  ASSERT_EQ(parsed->records.size(), original.records.size());
  for (std::size_t i = 0; i < original.records.size(); ++i) {
    EXPECT_EQ(parsed->records[i].point, original.records[i].point);
    EXPECT_EQ(parsed->records[i].origin, original.records[i].origin);
    EXPECT_EQ(parsed->records[i].path, original.records[i].path);
  }
}

TEST(RibIoTest, CommentsAndBlanksIgnored) {
  std::string text =
      "# heading\n\npoint 0 10.1\n  # indented comment\nroute 0 9 10 9\n";
  auto parsed = data::dataset_from_string(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->records.size(), 1u);
}

TEST(RibIoTest, RejectsUnknownDirective) {
  std::string error;
  EXPECT_FALSE(data::dataset_from_string("bogus 1 2\n", &error).has_value());
  EXPECT_NE(error.find("unknown directive"), std::string::npos);
}

TEST(RibIoTest, RejectsOutOfOrderPoints) {
  std::string error;
  EXPECT_FALSE(
      data::dataset_from_string("point 1 10.0\n", &error).has_value());
  EXPECT_NE(error.find("dense"), std::string::npos);
}

TEST(RibIoTest, RejectsRouteWithUnknownPoint) {
  std::string error;
  EXPECT_FALSE(
      data::dataset_from_string("route 0 9 10 9\n", &error).has_value());
}

TEST(RibIoTest, RejectsPathNotEndingAtOrigin) {
  std::string error;
  std::string text = "point 0 10.0\nroute 0 9 10 8\n";
  EXPECT_FALSE(data::dataset_from_string(text, &error).has_value());
  EXPECT_NE(error.find("origin"), std::string::npos);
}

TEST(RibIoTest, RejectsMalformedRouterId) {
  std::string error;
  EXPECT_FALSE(
      data::dataset_from_string("point 0 banana\n", &error).has_value());
}

TEST(RibIoTest, ErrorIncludesLineNumber) {
  std::string error;
  std::string text = "point 0 10.0\nbroken\n";
  EXPECT_FALSE(data::dataset_from_string(text, &error).has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos);
}

TEST(RibIoTest, EmptyInputYieldsEmptyDataset) {
  auto parsed = data::dataset_from_string("");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->points.empty());
  EXPECT_TRUE(parsed->records.empty());
}

}  // namespace
