// Fault-tolerance tests for the refinement loop: the oscillation guard on a
// real dispute wheel (BAD GADGET), budget exhaustion with graceful
// degradation, checkpoint/resume byte-identity across an injected
// interrupt, and -- when the library is built with RD_FAULT_INJECTION --
// injected sweep faults (worker exceptions, allocation failure, forced
// non-convergence).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "analysis/diagnostics.hpp"
#include "analysis/fixtures.hpp"
#include "core/fault_inject.hpp"
#include "core/oscillation.hpp"
#include "core/refine.hpp"
#include "topology/model_io.hpp"

namespace {

using analysis::contains_code;
using data::BgpDataset;
using nb::Asn;
using nb::RouterId;
using topo::AsPath;
using topo::Model;

namespace codes = analysis::codes;

BgpDataset dataset_of(std::vector<std::pair<Asn, AsPath>> records) {
  BgpDataset dataset;
  std::map<Asn, std::uint32_t> points;
  for (auto& [observer, path] : records) {
    if (!points.count(observer)) {
      points[observer] = static_cast<std::uint32_t>(dataset.points.size());
      dataset.points.push_back({RouterId{observer, 0}});
    }
    dataset.records.push_back({points[observer], path.origin(), path});
  }
  return dataset;
}

/// A fit that needs several iterations: the observed path goes the long way
/// around a ring, so the direct 1-6 shortcut must be filtered away and the
/// suffix has to propagate across iterations.
BgpDataset ring_dataset() {
  return dataset_of({{1, AsPath{1, 2, 3, 4, 5, 6}}});
}

Model ring_model() {
  topo::AsGraph g;
  for (Asn a = 1; a < 6; ++a) g.add_edge(a, a + 1);
  g.add_edge(1, 6);
  return Model::one_router_per_as(g);
}

TEST(FaultToleranceTest, BadGadgetFreezesAsOscillatingNotIterationBurn) {
  // Refining on top of the BAD GADGET local-pref wheel makes every
  // simulation of AS 4's prefix diverge (the guard trips).  The fit must
  // freeze the prefix with a structured diagnostic within the first
  // iterations -- not burn all 96 silently as it used to.
  auto fixture = analysis::audit_fixture("bad-gadget");
  ASSERT_TRUE(fixture.has_value());
  Model model = std::move(*fixture);
  BgpDataset training = dataset_of({{1, AsPath{1, 4}}});

  core::RefineConfig config;
  auto result = core::refine_model(model, training, config);

  EXPECT_LE(result.iterations, 3u);
  EXPECT_FALSE(result.success);
  EXPECT_TRUE(result.degraded());
  EXPECT_EQ(result.prefixes_oscillating, 1u);
  ASSERT_EQ(result.outcomes.size(), 1u);
  EXPECT_EQ(result.outcomes[0].outcome, core::PrefixOutcome::kOscillating);
  EXPECT_EQ(result.outcomes[0].origin, 4u);
  EXPECT_GT(result.outcomes[0].frozen_iteration, 0u);
  EXPECT_TRUE(contains_code(result.diagnostics, codes::kEngineDiverged));
}

TEST(FaultToleranceTest, PrefixIterationBudgetFreezesJustThatPrefix) {
  Model model = ring_model();
  core::RefineConfig config;
  config.prefix_iteration_budget = 1;
  auto result = core::refine_model(model, ring_dataset(), config);

  EXPECT_FALSE(result.success);
  EXPECT_TRUE(result.degraded());
  EXPECT_EQ(result.prefixes_budget_exhausted, 1u);
  ASSERT_EQ(result.outcomes.size(), 1u);
  EXPECT_EQ(result.outcomes[0].outcome,
            core::PrefixOutcome::kBudgetExhausted);
  EXPECT_TRUE(contains_code(result.diagnostics,
                            codes::kPrefixBudgetExhausted));
  // Frozen means frozen: the loop must not keep iterating on it.
  EXPECT_LE(result.iterations, 2u);
}

TEST(FaultToleranceTest, WallClockBudgetStopsTheFit) {
  Model model = ring_model();
  core::RefineConfig config;
  config.wall_clock_budget_seconds = 1e-9;  // expires after iteration 1
  auto result = core::refine_model(model, ring_dataset(), config);

  EXPECT_EQ(result.stop, core::RefineStop::kWallClock);
  EXPECT_FALSE(result.success);
  EXPECT_TRUE(result.degraded());
  EXPECT_EQ(result.prefixes_budget_exhausted, 1u);
  EXPECT_TRUE(contains_code(result.diagnostics, codes::kWallClockExhausted));
  // The partial result still reports coverage for the frozen prefix.
  ASSERT_EQ(result.outcomes.size(), 1u);
  EXPECT_EQ(result.outcomes[0].paths_total, 1u);
}

TEST(FaultToleranceTest, ResumeRejectsForeignDataset) {
  Model model = ring_model();
  topo::RefineCheckpoint ck;
  ck.iteration = 1;
  ck.dataset_hash = 0x1234;  // not ring_dataset()'s hash
  ck.model = model;
  core::RefineConfig config;
  config.resume = &ck;
  auto result = core::refine_model(model, ring_dataset(), config);

  EXPECT_EQ(result.stop, core::RefineStop::kFault);
  EXPECT_FALSE(result.success);
  EXPECT_TRUE(contains_code(result.diagnostics, codes::kResumeMismatch));
}

TEST(FaultToleranceTest, ResumeRejectsMissingPrefixState) {
  Model model = ring_model();
  const BgpDataset training = ring_dataset();
  topo::RefineCheckpoint ck;
  ck.iteration = 1;
  ck.dataset_hash = core::dataset_fingerprint(training);
  ck.model = model;  // no per-prefix state for origin 6
  core::RefineConfig config;
  config.resume = &ck;
  auto result = core::refine_model(model, training, config);

  EXPECT_EQ(result.stop, core::RefineStop::kFault);
  EXPECT_TRUE(contains_code(result.diagnostics, codes::kResumeMismatch));
}

TEST(FaultToleranceTest, ResumedFreezePendingPrefixFreezesBeforeMutating) {
  // A checkpoint can carry a confirmed-cycle detector (freeze_pending with
  // an expired countdown).  The resumed iteration must then freeze the
  // prefix via the count-only pass -- the R700 path -- without mutating it
  // past the frozen state.
  Model model = ring_model();
  const BgpDataset training = ring_dataset();
  topo::RefineCheckpoint ck;
  ck.iteration = 1;
  ck.dataset_hash = core::dataset_fingerprint(training);
  ck.model = model;
  topo::PrefixCheckpointState p;
  p.origin = 6;
  p.state = "active";
  p.matched = 0;
  p.paths_total = 1;
  p.active_iterations = 1;
  p.best_matched = 2;  // never reachable: forces the countdown valve
  p.hits = 2;
  p.freeze_pending = true;
  p.freeze_countdown = 0;  // expired: freeze on the first resumed iteration
  ck.prefixes.push_back(p);
  core::RefineConfig config;
  config.resume = &ck;
  const std::string before = topo::model_to_string(model);
  auto result = core::refine_model(model, training, config);

  EXPECT_EQ(result.prefixes_oscillating, 1u);
  ASSERT_EQ(result.outcomes.size(), 1u);
  EXPECT_EQ(result.outcomes[0].outcome, core::PrefixOutcome::kOscillating);
  EXPECT_TRUE(contains_code(result.diagnostics, codes::kRefineOscillation));
  // Frozen at the checkpointed policy state, not mutated beyond it.
  EXPECT_EQ(topo::model_to_string(model), before);
}

#ifdef RD_FAULT_INJECTION

TEST(FaultInjectionTest, ForcedSimDivergenceFreezesThePrefix) {
  Model model = ring_model();
  core::FaultPlan plan;
  plan.fail_sim_iteration = 1;
  plan.fail_sim_origin = 6;
  core::RefineConfig config;
  config.fault_plan = &plan;
  auto result = core::refine_model(model, ring_dataset(), config);

  EXPECT_TRUE(result.degraded());
  EXPECT_EQ(result.prefixes_oscillating, 1u);
  EXPECT_TRUE(contains_code(result.diagnostics, codes::kEngineDiverged));
}

TEST(FaultInjectionTest, WorkerExceptionYieldsFaultStopAndCheckpoint) {
  const std::string ck_path =
      testing::TempDir() + "fault_worker_exception.ckpt";
  std::remove(ck_path.c_str());
  Model model = ring_model();
  core::FaultPlan plan;
  plan.throw_iteration = 2;
  core::RefineConfig config;
  config.fault_plan = &plan;
  config.threads = 2;  // fault crosses the pool boundary
  config.checkpoint_path = ck_path;
  auto result = core::refine_model(model, ring_dataset(), config);

  EXPECT_EQ(result.stop, core::RefineStop::kFault);
  EXPECT_FALSE(result.success);
  EXPECT_TRUE(contains_code(result.diagnostics, codes::kSweepFault));
  // The abort checkpoint reflects the last completed iteration and loads
  // cleanly -- a faulted run never leaves a corrupt checkpoint behind.
  ASSERT_TRUE(result.checkpoint_written);
  std::string error;
  auto saved = topo::load_refine_checkpoint(ck_path, &error);
  ASSERT_TRUE(saved.has_value()) << error;
  EXPECT_EQ(saved->iteration, 1u);
  std::remove(ck_path.c_str());
}

TEST(FaultInjectionTest, AllocationFailureMidSweepIsAFaultNotACrash) {
  Model model = ring_model();
  core::FaultPlan plan;
  plan.throw_iteration = 1;
  plan.throw_bad_alloc = true;
  core::RefineConfig config;
  config.fault_plan = &plan;
  config.threads = 2;
  auto result = core::refine_model(model, ring_dataset(), config);

  EXPECT_EQ(result.stop, core::RefineStop::kFault);
  EXPECT_TRUE(contains_code(result.diagnostics, codes::kSweepFault));
}

TEST(FaultInjectionTest, InjectedInterruptResumesToIdenticalModel) {
  const std::string ck_path = testing::TempDir() + "fault_interrupt.ckpt";
  std::remove(ck_path.c_str());
  const BgpDataset training = ring_dataset();

  Model uninterrupted = ring_model();
  auto baseline =
      core::refine_model(uninterrupted, training, core::RefineConfig{});
  ASSERT_TRUE(baseline.success);
  ASSERT_GT(baseline.iterations, 2u) << "fixture too easy to interrupt";

  Model interrupted = ring_model();
  core::FaultPlan plan;
  plan.interrupt_iteration = 2;
  core::RefineConfig config;
  config.fault_plan = &plan;
  config.checkpoint_path = ck_path;
  config.checkpoint_every = 1;
  auto partial = core::refine_model(interrupted, training, config);
  EXPECT_EQ(partial.stop, core::RefineStop::kInterrupted);
  EXPECT_EQ(partial.iterations, 2u);
  ASSERT_TRUE(partial.checkpoint_written);

  std::string error;
  auto saved = topo::load_refine_checkpoint(ck_path, &error);
  ASSERT_TRUE(saved.has_value()) << error;
  Model resumed = saved->model;
  core::RefineConfig resume_config;
  resume_config.resume = &*saved;
  auto completed = core::refine_model(resumed, training, resume_config);
  EXPECT_TRUE(completed.success);
  EXPECT_EQ(completed.stop, core::RefineStop::kCompleted);
  EXPECT_EQ(completed.iterations, baseline.iterations);
  EXPECT_EQ(completed.messages_simulated, baseline.messages_simulated);
  EXPECT_EQ(topo::model_to_string(resumed),
            topo::model_to_string(uninterrupted));
  std::remove(ck_path.c_str());
}

TEST(FaultInjectionTest, CheckpointWriteFailureDegradesGracefully) {
  // An unwritable checkpoint path must not kill the fit: it warns (R705)
  // and completes.
  Model model = ring_model();
  core::RefineConfig config;
  config.checkpoint_path =
      testing::TempDir() + "no_such_dir_xyz/refine.ckpt";
  config.checkpoint_every = 1;
  auto result = core::refine_model(model, ring_dataset(), config);

  EXPECT_TRUE(result.success);
  EXPECT_FALSE(result.checkpoint_written);
  EXPECT_TRUE(contains_code(result.diagnostics, codes::kCheckpointError));
}

#endif  // RD_FAULT_INJECTION

}  // namespace
