// Tests for the paper-style report rendering.
#include <gtest/gtest.h>

#include "core/report.hpp"

namespace {

core::MatchStats sample_stats() {
  core::MatchStats stats;
  // 10 paths: 4 RIB-Out, 2 potential (tie-break), 1 length loss, 1 med
  // loss, 2 unavailable.
  for (int i = 0; i < 4; ++i)
    stats.add({core::MatchKind::kRibOut, bgp::DecisionStep::kEqual, 0});
  for (int i = 0; i < 2; ++i)
    stats.add({core::MatchKind::kPotentialRibOut,
               bgp::DecisionStep::kTieBreak, 0});
  stats.add({core::MatchKind::kRibInOnly, bgp::DecisionStep::kPathLength, 0});
  stats.add({core::MatchKind::kRibInOnly, bgp::DecisionStep::kMed, 0});
  for (int i = 0; i < 2; ++i)
    stats.add({core::MatchKind::kNotAvailable, bgp::DecisionStep::kEqual,
               topo::Model::kNoRouter});
  stats.add_prefix_coverage(4, 4);
  stats.add_prefix_coverage(1, 3);
  return stats;
}

TEST(ReportTest, MatchBreakdownPercentages) {
  std::string text = core::render_match_breakdown("model", sample_stats());
  EXPECT_NE(text.find("40.0%"), std::string::npos);  // agree
  EXPECT_NE(text.find("60.0%"), std::string::npos);  // disagree
  EXPECT_NE(text.find("20.0%"), std::string::npos);  // not available / tie
  EXPECT_NE(text.find("10.0%"), std::string::npos);  // shorter path
}

TEST(ReportTest, Table2HasPaperColumns) {
  std::string text = core::render_table2(sample_stats(), sample_stats());
  EXPECT_NE(text.find("23.5%"), std::string::npos);
  EXPECT_NE(text.find("12.5%"), std::string::npos);
  EXPECT_NE(text.find("Shortest Path"), std::string::npos);
  EXPECT_NE(text.find("lowest neighbor ID"), std::string::npos);
}

TEST(ReportTest, ValidationRates) {
  std::string text = core::render_validation("val", sample_stats());
  // RIB-Out 40%, down-to-tie-break 60%, RIB-In 80%.
  EXPECT_NE(text.find("40.0%"), std::string::npos);
  EXPECT_NE(text.find("60.0%"), std::string::npos);
  EXPECT_NE(text.find("80.0%"), std::string::npos);
  // Coverage: 2 prefixes, 1 full (50.0%), >=50%: 1 of... 4/4=100% and 1/3.
  EXPECT_NE(text.find("prefixes evaluated"), std::string::npos);
}

TEST(ReportTest, RefineLogRendersRows) {
  core::RefineResult result;
  result.success = true;
  result.iterations = 2;
  core::RefineIterationLog log;
  log.iteration = 1;
  log.paths_total = 10;
  log.paths_matched = 7;
  log.routers = 42;
  result.log.push_back(log);
  log.iteration = 2;
  log.paths_matched = 10;
  result.log.push_back(log);
  std::string text = core::render_refine_log(result);
  EXPECT_NE(text.find("converged: yes"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_NE(text.find("iterations: 2"), std::string::npos);
}

TEST(ReportTest, RefineLogReportsFailure) {
  core::RefineResult result;
  result.success = false;
  result.unmatched_paths = 3;
  std::string text = core::render_refine_log(result);
  EXPECT_NE(text.find("NO"), std::string::npos);
  EXPECT_NE(text.find("unmatched paths: 3"), std::string::npos);
}

TEST(ReportTest, Table1RendersPercentiles) {
  data::DiversityStats stats;
  for (std::uint64_t v : {1, 1, 2, 2, 3, 5, 11}) {
    stats.max_unique_received.add(v);
  }
  std::string text = core::render_table1(stats);
  EXPECT_NE(text.find("Percentile"), std::string::npos);
  EXPECT_NE(text.find(">10"), std::string::npos);  // paper column
}

TEST(ReportTest, Table1HandlesEmpty) {
  data::DiversityStats stats;
  std::string text = core::render_table1(stats);
  EXPECT_NE(text.find("-"), std::string::npos);
}

}  // namespace
