// Unit tests for the AS-level graph.
#include <gtest/gtest.h>

#include "topology/as_graph.hpp"

namespace {

using topo::AsGraph;
using topo::AsPath;

TEST(AsGraphTest, AddEdgeCreatesNodesOnce) {
  AsGraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 1);  // duplicate, reversed
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(2, 1));
}

TEST(AsGraphTest, SelfLoopsIgnored) {
  AsGraph g;
  g.add_edge(3, 3);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(AsGraphTest, NeighborsSorted) {
  AsGraph g;
  g.add_edge(5, 9);
  g.add_edge(5, 2);
  g.add_edge(5, 7);
  EXPECT_EQ(g.neighbors(5), (std::vector<nb::Asn>{2, 7, 9}));
  EXPECT_TRUE(g.neighbors(99).empty());
}

TEST(AsGraphTest, RemoveNodeCleansIncidentEdges) {
  AsGraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(1, 3);
  g.remove_node(2);
  EXPECT_FALSE(g.has_node(2));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.has_edge(1, 3));
  EXPECT_FALSE(g.has_edge(1, 2));
}

TEST(AsGraphTest, EdgesSortedCanonical) {
  AsGraph g;
  g.add_edge(4, 1);
  g.add_edge(2, 3);
  auto edges = g.edges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], (std::pair<nb::Asn, nb::Asn>{1, 4}));
  EXPECT_EQ(edges[1], (std::pair<nb::Asn, nb::Asn>{2, 3}));
}

TEST(AsGraphTest, FromPathsAddsConsecutivePairs) {
  std::vector<AsPath> paths{{1, 2, 3}, {2, 4}};
  AsGraph g = AsGraph::from_paths(paths);
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_TRUE(g.has_edge(2, 4));
  EXPECT_FALSE(g.has_edge(1, 3));
}

TEST(AsGraphTest, FromPathsSkipsLoopedPaths) {
  std::vector<AsPath> paths{{1, 2, 1}};
  AsGraph g = AsGraph::from_paths(paths);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(AsGraphTest, FromPathsKeepsSingletonOrigin) {
  std::vector<AsPath> paths{{7}};
  AsGraph g = AsGraph::from_paths(paths);
  EXPECT_TRUE(g.has_node(7));
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(AsGraphTest, Components) {
  AsGraph g;
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  g.add_node(5);
  EXPECT_EQ(g.num_components(), 3u);
  g.add_edge(2, 3);
  EXPECT_EQ(g.num_components(), 2u);
}

TEST(AsGraphTest, DegreeCounts) {
  AsGraph g;
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  g.add_edge(1, 4);
  EXPECT_EQ(g.degree(1), 3u);
  EXPECT_EQ(g.degree(2), 1u);
  EXPECT_EQ(g.degree(42), 0u);
}

}  // namespace
