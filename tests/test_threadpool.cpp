// Thread-pool tests (single- and multi-thread paths).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "bgp/threadpool.hpp"

namespace {

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  bgp::ThreadPool pool(1);
  std::vector<int> order;
  pool.parallel_for(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, AllIndicesProcessedExactlyOnce) {
  bgp::ThreadPool pool(4);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(kCount, [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ZeroCountIsNoop) {
  bgp::ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  bgp::ThreadPool pool(3);
  std::atomic<long> sum{0};
  for (int round = 0; round < 10; ++round) {
    pool.parallel_for(100, [&](std::size_t i) { sum += static_cast<long>(i); });
  }
  EXPECT_EQ(sum.load(), 10 * (99 * 100 / 2));
}

TEST(ThreadPoolTest, DefaultSizeAtLeastOne) {
  bgp::ThreadPool pool;
  std::atomic<int> count{0};
  pool.parallel_for(8, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 8);
}

}  // namespace
