// Thread-pool tests (single- and multi-thread paths), including exception
// propagation and misuse detection.
#include <gtest/gtest.h>

#include <atomic>
#include <new>
#include <numeric>
#include <stdexcept>

#include "bgp/threadpool.hpp"
#include "obs/registry.hpp"

namespace {

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  bgp::ThreadPool pool(1);
  std::vector<int> order;
  pool.parallel_for(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, AllIndicesProcessedExactlyOnce) {
  bgp::ThreadPool pool(4);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(kCount, [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ZeroCountIsNoop) {
  bgp::ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  bgp::ThreadPool pool(3);
  std::atomic<long> sum{0};
  for (int round = 0; round < 10; ++round) {
    pool.parallel_for(100, [&](std::size_t i) { sum += static_cast<long>(i); });
  }
  EXPECT_EQ(sum.load(), 10 * (99 * 100 / 2));
}

TEST(ThreadPoolTest, DefaultSizeAtLeastOne) {
  bgp::ThreadPool pool;
  std::atomic<int> count{0};
  pool.parallel_for(8, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPoolTest, BodyExceptionPropagatesToCaller) {
  bgp::ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i) {
                          if (i == 37) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPoolTest, ExceptionMessageIsPreserved) {
  bgp::ThreadPool pool(2);
  try {
    pool.parallel_for(10, [&](std::size_t i) {
      if (i == 3) throw std::runtime_error("index 3 failed");
    });
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "index 3 failed");
  }
}

TEST(ThreadPoolTest, SingleThreadExceptionPropagates) {
  // The inline (no workers) path must behave the same as the pooled one.
  bgp::ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_for(
                   5, [&](std::size_t i) {
                     if (i == 2) throw std::runtime_error("inline boom");
                   }),
               std::runtime_error);
}

TEST(ThreadPoolTest, PoolReusableAfterException) {
  bgp::ThreadPool pool(4);
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(
        pool.parallel_for(50,
                          [&](std::size_t i) {
                            if (i % 7 == 3) throw std::runtime_error("again");
                          }),
        std::runtime_error);
    std::atomic<int> count{0};
    pool.parallel_for(50, [&](std::size_t) { count++; });
    EXPECT_EQ(count.load(), 50);
  }
}

TEST(ThreadPoolTest, AllBodiesThrowingYieldsOneException) {
  bgp::ThreadPool pool(4);
  std::atomic<int> thrown{0};
  int caught = 0;
  try {
    pool.parallel_for(64, [&](std::size_t) {
      thrown++;
      throw std::runtime_error("every index throws");
    });
  } catch (const std::runtime_error&) {
    caught++;
  }
  EXPECT_EQ(caught, 1);
  // The failing batch is abandoned after the first error, so not every
  // index need run -- but at least one did.
  EXPECT_GE(thrown.load(), 1);
  EXPECT_LE(thrown.load(), 64);
}

TEST(ThreadPoolTest, NestedParallelForOnSamePoolIsRejected) {
  bgp::ThreadPool pool(2);
  std::atomic<int> misuse{0};
  pool.parallel_for(4, [&](std::size_t) {
    try {
      pool.parallel_for(2, [](std::size_t) {});
    } catch (const std::logic_error&) {
      misuse++;
    }
  });
  EXPECT_EQ(misuse.load(), 4);
}

TEST(ThreadPoolTest, NestedParallelForOnOtherPoolIsAllowed) {
  bgp::ThreadPool outer(2);
  bgp::ThreadPool inner(1);  // inline execution, safe to call from workers
  std::atomic<int> count{0};
  outer.parallel_for(4, [&](std::size_t) {
    inner.parallel_for(8, [&](std::size_t) { count++; });
  });
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPoolTest, WorkerExceptionPropagatesFromParallelForWorker) {
  bgp::ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for_worker(100,
                               [&](unsigned, std::size_t i) {
                                 if (i == 41)
                                   throw std::runtime_error("worker boom");
                               }),
      std::runtime_error);
  // The pool is not poisoned: the next worker batch runs to completion.
  std::atomic<int> count{0};
  pool.parallel_for_worker(64, [&](unsigned, std::size_t) { count++; });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, WorkerExceptionDoesNotDeadlockShardMerge) {
  // The refine sweep's shape: per-worker metric shards merged by ShardGroup
  // after the batch barrier.  A body throwing mid-batch must neither
  // deadlock the barrier nor corrupt the merge of the work that did finish.
  bgp::ThreadPool pool(4);
  obs::Registry registry;
  const obs::CounterId done = registry.counter("test.done");
  std::atomic<std::uint64_t> completed{0};
  try {
    obs::ShardGroup shards(registry, pool.shard_count());
    pool.parallel_for_worker(200, [&](unsigned worker, std::size_t i) {
      if (i == 97) throw std::runtime_error("mid-sweep fault");
      shards.shard(worker).add(done, 1);
      completed++;
    });
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "mid-sweep fault");
  }
  // ~ShardGroup ran inside the try: every increment a worker completed
  // before the fault was merged exactly once.
  EXPECT_EQ(registry.value(done), completed.load());

  // And the pool + a fresh ShardGroup still work for the next sweep.
  {
    obs::ShardGroup shards(registry, pool.shard_count());
    pool.parallel_for_worker(50, [&](unsigned worker, std::size_t) {
      shards.shard(worker).add(done, 1);
    });
  }
  EXPECT_EQ(registry.value(done), completed.load() + 50);
}

TEST(ThreadPoolTest, BadAllocPropagatesLikeAnyException) {
  bgp::ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [&](std::size_t i) {
                                   if (i == 5) throw std::bad_alloc();
                                 }),
               std::bad_alloc);
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, ContentionStress) {
  // Many small batches back to back; primarily a TSan target for the
  // batch-handoff and completion-signalling paths.
  bgp::ThreadPool pool(4);
  std::atomic<long> sum{0};
  for (int round = 0; round < 200; ++round) {
    pool.parallel_for(16, [&](std::size_t i) { sum += static_cast<long>(i); });
  }
  EXPECT_EQ(sum.load(), 200L * (15 * 16 / 2));
}

}  // namespace
