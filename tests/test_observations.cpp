// Tests for observation-point placement, dataset extraction and splits.
#include <gtest/gtest.h>

#include "data/observations.hpp"

namespace {

using data::BgpDataset;
using data::ObservationConfig;
using data::ObservedRecord;
using topo::AsPath;

data::Internet small_net() {
  data::InternetConfig config;
  config.seed = 11;
  config.num_tier1 = 3;
  config.num_level2 = 6;
  config.num_level3 = 12;
  config.num_stub_multi = 15;
  config.num_stub_single = 8;
  return data::generate_internet(config);
}

BgpDataset observe_small(const data::Internet& net, const data::GroundTruth& gt) {
  ObservationConfig config;
  config.seed = 13;
  bgp::ThreadPool pool(1);
  return data::observe(gt, net, config, pool);
}

TEST(ObserveTest, RecordsExistAndAreWellFormed) {
  auto net = small_net();
  auto gt = data::build_ground_truth(net, data::GroundTruthConfig{});
  auto dataset = observe_small(net, gt);
  ASSERT_FALSE(dataset.points.empty());
  ASSERT_FALSE(dataset.records.empty());
  for (const ObservedRecord& record : dataset.records) {
    ASSERT_LT(record.point, dataset.points.size());
    // Path runs observer-first, origin-last.
    EXPECT_EQ(record.path.observer(),
              dataset.points[record.point].router.asn());
    EXPECT_EQ(record.path.origin(), record.origin);
    EXPECT_FALSE(record.path.has_loop());
  }
}

TEST(ObserveTest, EveryPointSeesMostPrefixes) {
  auto net = small_net();
  auto gt = data::build_ground_truth(net, data::GroundTruthConfig{});
  auto dataset = observe_small(net, gt);
  std::map<std::uint32_t, std::size_t> per_point;
  for (const auto& record : dataset.records) ++per_point[record.point];
  const std::size_t total_ases = net.graph.num_nodes();
  for (auto& [point, count] : per_point) {
    // Weird selective-export policies may hide a few prefixes, but
    // connectivity guarantees broad reachability.
    EXPECT_GT(count, total_ases * 3 / 4);
  }
}

TEST(ObserveTest, MultiFeedAsesOccur) {
  auto net = small_net();
  auto gt = data::build_ground_truth(net, data::GroundTruthConfig{});
  ObservationConfig config;
  config.seed = 13;
  config.multi_point_prob = 1.0;  // force multi feeds where possible
  bgp::ThreadPool pool(1);
  auto dataset = data::observe(gt, net, config, pool);
  EXPECT_GT(dataset.multi_feed_ases(), 0u);
}

TEST(ObserveTest, DeterministicInSeed) {
  auto net = small_net();
  auto gt = data::build_ground_truth(net, data::GroundTruthConfig{});
  auto a = observe_small(net, gt);
  auto b = observe_small(net, gt);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i)
    EXPECT_EQ(a.records[i].path, b.records[i].path);
}

TEST(DatasetTest, PathsByOriginDedupesAndSorts) {
  BgpDataset dataset;
  dataset.points.push_back({nb::RouterId{1, 0}});
  dataset.points.push_back({nb::RouterId{2, 0}});
  dataset.records.push_back({0, 9, AsPath{1, 5, 9}});
  dataset.records.push_back({1, 9, AsPath{2, 9}});
  dataset.records.push_back({0, 9, AsPath{1, 5, 9}});  // duplicate
  auto by_origin = dataset.paths_by_origin();
  ASSERT_EQ(by_origin.size(), 1u);
  ASSERT_EQ(by_origin[9].size(), 2u);
  EXPECT_EQ(by_origin[9][0], (AsPath{2, 9}));  // shorter first
  EXPECT_EQ(by_origin[9][1], (AsPath{1, 5, 9}));
}

TEST(DatasetTest, AsPairCount) {
  BgpDataset dataset;
  dataset.points.push_back({nb::RouterId{1, 0}});
  dataset.points.push_back({nb::RouterId{1, 1}});
  dataset.records.push_back({0, 9, AsPath{1, 9}});
  dataset.records.push_back({1, 9, AsPath{1, 5, 9}});  // same AS pair
  dataset.records.push_back({0, 8, AsPath{1, 8}});
  EXPECT_EQ(dataset.as_pair_count(), 2u);
}

TEST(ReduceStubsTest, TransfersOriginAndDedupes) {
  BgpDataset dataset;
  dataset.points.push_back({nb::RouterId{1, 0}});
  dataset.records.push_back({0, 100, AsPath{1, 7, 100}});
  dataset.records.push_back({0, 7, AsPath{1, 7}});
  auto reduced = data::reduce_stubs(dataset, {100});
  ASSERT_EQ(reduced.records.size(), 1u);
  EXPECT_EQ(reduced.records[0].origin, 7u);
  EXPECT_EQ(reduced.records[0].path, (AsPath{1, 7}));
}

TEST(ReduceStubsTest, ObserverStubTrimmed) {
  BgpDataset dataset;
  dataset.points.push_back({nb::RouterId{100, 0}});
  dataset.records.push_back({0, 9, AsPath{100, 7, 9}});
  auto reduced = data::reduce_stubs(dataset, {100});
  ASSERT_EQ(reduced.records.size(), 1u);
  EXPECT_EQ(reduced.records[0].path, (AsPath{7, 9}));
}

TEST(SplitTest, PointsPartitionRecords) {
  auto net = small_net();
  auto gt = data::build_ground_truth(net, data::GroundTruthConfig{});
  auto dataset = observe_small(net, gt);
  data::SplitConfig config;
  auto split = data::split_by_points(dataset, config);
  EXPECT_EQ(split.training.records.size() + split.validation.records.size(),
            dataset.records.size());
  EXPECT_FALSE(split.training.records.empty());
  EXPECT_FALSE(split.validation.records.empty());
  // No observation point appears on both sides.
  std::set<std::uint32_t> train_points, val_points;
  for (const auto& r : split.training.records) train_points.insert(r.point);
  for (const auto& r : split.validation.records) val_points.insert(r.point);
  for (std::uint32_t p : train_points) EXPECT_FALSE(val_points.count(p));
}

TEST(SplitTest, OriginsPartitionRecords) {
  auto net = small_net();
  auto gt = data::build_ground_truth(net, data::GroundTruthConfig{});
  auto dataset = observe_small(net, gt);
  auto split = data::split_by_origins(dataset, data::SplitConfig{});
  EXPECT_EQ(split.training.records.size() + split.validation.records.size(),
            dataset.records.size());
  std::set<nb::Asn> train_origins, val_origins;
  for (const auto& r : split.training.records) train_origins.insert(r.origin);
  for (const auto& r : split.validation.records) val_origins.insert(r.origin);
  for (nb::Asn o : train_origins) EXPECT_FALSE(val_origins.count(o));
  EXPECT_FALSE(train_origins.empty());
  EXPECT_FALSE(val_origins.empty());
}

TEST(SplitTest, TrainingFractionRoughlyHonored) {
  auto net = small_net();
  auto gt = data::build_ground_truth(net, data::GroundTruthConfig{});
  auto dataset = observe_small(net, gt);
  data::SplitConfig config;
  config.training_fraction = 0.8;
  auto split = data::split_by_points(dataset, config);
  double fraction = static_cast<double>(split.training.records.size()) /
                    static_cast<double>(dataset.records.size());
  EXPECT_GT(fraction, 0.5);
}

}  // namespace
