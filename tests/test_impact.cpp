// Static edit-impact sets (analysis/impact): the dynamic soundness
// guarantee.  For sampled edits on several generated topologies, every
// router whose steady-state selection changes under a full re-simulation
// must be contained in the statically computed impact set -- the
// acceptance criterion of the route-space analyzer.
#include "analysis/impact.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/pipeline.hpp"

namespace {

using analysis::ImpactOptions;
using analysis::ImpactResult;
using analysis::ModelEdit;
using nb::Prefix;
using nb::RouterId;
using topo::Model;

/// The k-th session of the model (deterministic order: dense router index,
/// then peers ascending), as a (lower, higher) RouterId pair.
std::pair<RouterId, RouterId> nth_session(const Model& model, std::size_t k) {
  std::size_t seen = 0;
  for (Model::Dense v = 0; v < model.num_routers(); ++v) {
    for (const Model::Dense u : model.peers(v)) {
      if (model.router_id(v).value() >= model.router_id(u).value()) continue;
      if (seen++ == k) return {model.router_id(v), model.router_id(u)};
    }
  }
  ADD_FAILURE() << "model has fewer than " << k + 1 << " sessions";
  return {RouterId{}, RouterId{}};
}

std::size_t count_sessions(const Model& model) {
  std::size_t n = 0;
  for (Model::Dense v = 0; v < model.num_routers(); ++v) {
    n += model.peers(v).size();
  }
  return n / 2;
}

/// All (prefix, origin) pairs the impact analysis would target.
std::vector<std::pair<Prefix, nb::Asn>> derivable_targets(const Model& model) {
  std::vector<std::pair<Prefix, nb::Asn>> targets;
  for (const auto& [prefix, policy] : model.prefix_policies()) {
    if (policy.empty()) continue;
    const nb::Asn origin = analysis::derive_origin(model, prefix);
    if (origin != nb::kInvalidAsn) targets.emplace_back(prefix, origin);
  }
  return targets;
}

bool routes_differ(const bgp::Route* x, const bgp::Route* y) {
  if ((x == nullptr) != (y == nullptr)) return true;
  if (x == nullptr) return false;
  return x->path != y->path || x->sender != y->sender ||
         x->local_pref != y->local_pref || x->med != y->med ||
         x->igp_cost != y->igp_cost;
}

/// Re-simulates every targeted prefix pre- and post-edit and asserts that
/// each router whose best selection changed is inside the static impact
/// set for that prefix.  Returns the number of changed (prefix, router)
/// pairs so callers can assert the exercise was not vacuous.
std::size_t check_soundness(const Model& base, const ModelEdit& edit,
                            const bgp::EngineOptions& engine_options,
                            const std::string& label) {
  ImpactOptions options;
  options.engine = engine_options;
  const ImpactResult impact = analysis::compute_impact(base, edit, options);

  std::map<Prefix, std::set<std::uint32_t>> impact_by_prefix;
  for (const auto& prefix : impact.prefixes) {
    auto& set = impact_by_prefix[prefix.prefix];
    for (const RouterId id : prefix.routers) set.insert(id.value());
  }

  const Model post = analysis::apply_edit(base, edit);
  const bgp::Engine engine_pre(base, engine_options);
  const bgp::Engine engine_post(post, engine_options);

  std::size_t changed_total = 0;
  for (const auto& [prefix, origin] : derivable_targets(base)) {
    const bgp::PrefixSimResult pre = engine_pre.run(prefix, origin);
    const bgp::PrefixSimResult sim_post = engine_post.run(prefix, origin);
    EXPECT_TRUE(pre.converged && sim_post.converged) << label;
    const auto it = impact_by_prefix.find(prefix);
    for (Model::Dense r = 0; r < base.num_routers(); ++r) {
      // apply_edit never removes routers, so dense indices agree.
      if (!routes_differ(pre.state(r).best_route(),
                         sim_post.state(r).best_route())) {
        continue;
      }
      ++changed_total;
      const std::uint32_t id = base.router_id(r).value();
      const bool covered =
          it != impact_by_prefix.end() && it->second.count(id) != 0;
      EXPECT_TRUE(covered) << label << ": " << edit.str() << " changed "
                           << base.router_id(r).str() << " for "
                           << prefix.str()
                           << " outside the static impact set";
    }
  }
  return changed_total;
}

/// Deterministic edit samples spread across the model's session list.
std::vector<ModelEdit> sample_edits(const Model& model) {
  std::vector<ModelEdit> edits;
  const std::size_t sessions = count_sessions(model);
  const auto targets = derivable_targets(model);
  if (sessions == 0 || targets.empty()) return edits;

  for (const std::size_t k :
       {std::size_t{0}, sessions / 3, (2 * sessions) / 3}) {
    ModelEdit down;
    down.kind = ModelEdit::Kind::kSessionDown;
    std::tie(down.a, down.b) = nth_session(model, k % sessions);
    edits.push_back(down);
  }

  // Ranking edits: prefer the first peer's AS at one endpoint of a session,
  // for a prefix staggered across the overlay list.
  for (std::size_t i = 0; i < 2; ++i) {
    const auto [prefix, origin] = targets[(i * 5 + 1) % targets.size()];
    const auto [a, b] = nth_session(model, (i * 11 + 3) % sessions);
    ModelEdit rank;
    rank.kind = ModelEdit::Kind::kPolicyChange;
    rank.router = a;
    rank.prefix = prefix;
    rank.preferred = b.asn();
    edits.push_back(rank);
  }

  // Filter edits: one new deny-below filter, one kDenyAll.
  for (std::size_t i = 0; i < 2; ++i) {
    const auto [prefix, origin] = targets[(i * 7 + 2) % targets.size()];
    const auto [a, b] = nth_session(model, (i * 13 + 5) % sessions);
    ModelEdit filter;
    filter.kind = ModelEdit::Kind::kFilterEdit;
    filter.a = a;
    filter.b = b;
    filter.prefix = prefix;
    filter.deny_below_len =
        i == 0 ? 4u : topo::ExportFilter::kDenyAll;
    edits.push_back(filter);
  }
  return edits;
}

TEST(ImpactSoundnessTest, ChangedRoutersAreContainedInImpactSet) {
  // Three generated topologies; fitted models under the default engine and
  // one ground truth under relationship policies + IGP costs.
  struct Scenario {
    double scale;
    std::uint64_t seed;
    bool ground_truth;
  };
  const Scenario scenarios[] = {
      {0.05, 3, false},
      {0.06, 5, true},
      {0.08, 11, false},
  };
  std::size_t changed_total = 0;
  for (const Scenario& scenario : scenarios) {
    core::Pipeline pipeline = core::run_full_pipeline(
        core::PipelineConfig::with(scenario.scale, scenario.seed));
    ASSERT_TRUE(pipeline.refine_result.success);
    const Model& model =
        scenario.ground_truth ? pipeline.ground_truth.model : pipeline.model;
    const bgp::EngineOptions engine_options =
        scenario.ground_truth
            ? pipeline.ground_truth.config.engine_options()
            : bgp::EngineOptions{};
    const std::string label =
        (scenario.ground_truth ? "ground-truth " : "fitted ") +
        std::to_string(scenario.scale) + "/" +
        std::to_string(scenario.seed);
    for (const ModelEdit& edit : sample_edits(model)) {
      changed_total += check_soundness(model, edit, engine_options, label);
    }
  }
  // The guarantee must have been exercised, not vacuously satisfied:
  // across 21 sampled edits some simulations must actually change.
  EXPECT_GT(changed_total, 0u);
}

TEST(ImpactTest, SessionDownSeedsBothEndpoints) {
  core::Pipeline pipeline =
      core::run_full_pipeline(core::PipelineConfig::with(0.05, 3));
  ASSERT_TRUE(pipeline.refine_result.success);
  const Model& model = pipeline.model;
  ModelEdit edit;
  edit.kind = ModelEdit::Kind::kSessionDown;
  std::tie(edit.a, edit.b) = nth_session(model, 0);
  const ImpactResult impact = analysis::compute_impact(model, edit);
  ASSERT_FALSE(impact.prefixes.empty());
  // Both endpoints are seeds, so they appear in every per-prefix set that
  // they can hold a route for.
  for (const auto& prefix : impact.prefixes) {
    EXPECT_FALSE(prefix.routers.empty()) << prefix.prefix.str();
  }
  EXPECT_GT(impact.routers_total, 0u);
}

TEST(ImpactTest, EditOnMissingSessionIsEmpty) {
  core::Pipeline pipeline =
      core::run_full_pipeline(core::PipelineConfig::with(0.05, 3));
  const Model& model = pipeline.model;
  ModelEdit edit;
  edit.kind = ModelEdit::Kind::kSessionDown;
  edit.a = RouterId{0xfffe, 0};
  edit.b = RouterId{0xfffd, 0};
  const ImpactResult impact = analysis::compute_impact(model, edit);
  EXPECT_TRUE(impact.prefixes.empty());
  EXPECT_EQ(impact.routers_total, 0u);
  // apply_edit of an unknown session is a no-op, not an error.
  const Model post = analysis::apply_edit(model, edit);
  EXPECT_EQ(post.num_routers(), model.num_routers());
}

TEST(ImpactTest, PolicyChangeOnlyTargetsItsOwnPrefix) {
  core::Pipeline pipeline =
      core::run_full_pipeline(core::PipelineConfig::with(0.05, 3));
  const Model& model = pipeline.model;
  const auto targets = derivable_targets(model);
  ASSERT_GT(targets.size(), 1u);
  const auto [a, b] = nth_session(model, 0);
  ModelEdit edit;
  edit.kind = ModelEdit::Kind::kPolicyChange;
  edit.router = a;
  edit.prefix = targets.front().first;
  edit.preferred = b.asn();
  const ImpactResult impact = analysis::compute_impact(model, edit);
  for (const auto& prefix : impact.prefixes) {
    EXPECT_EQ(prefix.prefix, edit.prefix);
  }
}

}  // namespace
