// Unit tests for the netbase utility layer.
#include <gtest/gtest.h>

#include <set>

#include "netbase/cli.hpp"
#include "netbase/ids.hpp"
#include "netbase/ip.hpp"
#include "netbase/rng.hpp"
#include "netbase/stats.hpp"
#include "netbase/strings.hpp"
#include "netbase/sysinfo.hpp"
#include "netbase/table.hpp"

namespace {

using nb::Ipv4Address;
using nb::Prefix;
using nb::RouterId;

TEST(Ipv4Address, ParsesDottedQuad) {
  auto addr = Ipv4Address::parse("10.1.2.3");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->value(), 0x0a010203u);
  EXPECT_EQ(addr->str(), "10.1.2.3");
}

TEST(Ipv4Address, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Address::parse("").has_value());
  EXPECT_FALSE(Ipv4Address::parse("10.1.2").has_value());
  EXPECT_FALSE(Ipv4Address::parse("10.1.2.3.4").has_value());
  EXPECT_FALSE(Ipv4Address::parse("10.1.2.256").has_value());
  EXPECT_FALSE(Ipv4Address::parse("a.b.c.d").has_value());
  EXPECT_FALSE(Ipv4Address::parse("10.1.2.3 ").has_value());
  EXPECT_FALSE(Ipv4Address::parse("10..2.3").has_value());
}

TEST(Ipv4Address, OrderingFollowsValue) {
  EXPECT_LT(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2));
  EXPECT_LT(Ipv4Address(9, 255, 255, 255), Ipv4Address(10, 0, 0, 0));
}

TEST(PrefixTest, ConstructionMasksAndValidates) {
  Prefix p{Ipv4Address(192, 168, 4, 0), 24};
  EXPECT_EQ(p.str(), "192.168.4.0/24");
  EXPECT_THROW((Prefix{Ipv4Address(192, 168, 4, 1), 24}),
               std::invalid_argument);
  EXPECT_THROW((Prefix{Ipv4Address(0, 0, 0, 0), 33}), std::invalid_argument);
}

TEST(PrefixTest, ParseRoundTrip) {
  auto p = Prefix::parse("10.20.0.0/16");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length(), 16);
  EXPECT_EQ(p->str(), "10.20.0.0/16");
  EXPECT_FALSE(Prefix::parse("10.20.0.1/16").has_value());  // host bits
  EXPECT_FALSE(Prefix::parse("10.20.0.0/33").has_value());
  EXPECT_FALSE(Prefix::parse("10.20.0.0").has_value());
}

TEST(PrefixTest, ContainsAndCovers) {
  Prefix p{Ipv4Address(10, 1, 0, 0), 16};
  EXPECT_TRUE(p.contains(Ipv4Address(10, 1, 200, 3)));
  EXPECT_FALSE(p.contains(Ipv4Address(10, 2, 0, 0)));
  EXPECT_TRUE(p.covers(Prefix{Ipv4Address(10, 1, 7, 0), 24}));
  EXPECT_FALSE(p.covers(Prefix{Ipv4Address(10, 0, 0, 0), 8}));
  Prefix zero{Ipv4Address(0, 0, 0, 0), 0};
  EXPECT_TRUE(zero.contains(Ipv4Address(255, 255, 255, 255)));
}

TEST(PrefixTest, ForAsnIsDisjointPerAsn) {
  std::set<Prefix> prefixes;
  for (std::uint32_t asn = 1; asn < 500; ++asn)
    prefixes.insert(Prefix::for_asn(asn));
  EXPECT_EQ(prefixes.size(), 499u);
}

TEST(RouterIdTest, EncodesAsnAndIndex) {
  RouterId id{701, 3};
  EXPECT_EQ(id.asn(), 701u);
  EXPECT_EQ(id.index(), 3u);
  EXPECT_EQ(id.str(), "701.3");
  EXPECT_TRUE(id.valid());
  EXPECT_FALSE(nb::kInvalidRouterId.valid());
}

TEST(RouterIdTest, OrderingMatchesTieBreakSemantics) {
  // Lower ASN wins; within an AS, lower index wins.
  EXPECT_LT(RouterId(100, 9), RouterId(101, 0));
  EXPECT_LT(RouterId(100, 0), RouterId(100, 1));
}

TEST(SysInfoTest, ResolveThreadsCentralizesTheZeroConvention) {
  // 0 = "use the hardware": at least one thread, stable across calls, and
  // the single place every --threads consumer resolves through.
  EXPECT_GE(nb::resolve_threads(0), 1u);
  EXPECT_EQ(nb::resolve_threads(0), nb::resolve_threads(0));
  EXPECT_LE(nb::resolve_threads(0), nb::kMaxResolvedThreads);
  // Explicit requests pass through unchanged up to the clamp.
  EXPECT_EQ(nb::resolve_threads(1), 1u);
  EXPECT_EQ(nb::resolve_threads(7), 7u);
  EXPECT_EQ(nb::resolve_threads(nb::kMaxResolvedThreads),
            nb::kMaxResolvedThreads);
  // A runaway request (corrupt config, unit mix-up) is clamped, not obeyed.
  EXPECT_EQ(nb::resolve_threads(1u << 20), nb::kMaxResolvedThreads);
}

TEST(RngTest, DeterministicForSeed) {
  nb::Rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiffer) {
  nb::Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(RngTest, BelowIsInRangeAndRoughlyUniform) {
  nb::Rng rng{7};
  std::array<int, 10> counts{};
  for (int i = 0; i < 10000; ++i) {
    auto v = rng.below(10);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  for (int c : counts) EXPECT_NEAR(c, 1000, 200);
}

TEST(RngTest, RangeInclusive) {
  nb::Rng rng{7};
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.range(2, 4);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 4);
    saw_lo |= v == 2;
    saw_hi |= v == 4;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformInUnitInterval) {
  nb::Rng rng{3};
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, WeightedRespectsZeroWeights) {
  nb::Rng rng{3};
  std::vector<double> weights{0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.weighted(weights), 1u);
}

TEST(RngTest, ParetoAtLeastOne) {
  nb::Rng rng{3};
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(1.5), 1.0);
}

TEST(RngTest, ShuffleIsPermutation) {
  nb::Rng rng{5};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ForkProducesIndependentStream) {
  nb::Rng a{9};
  nb::Rng child = a.fork(1);
  EXPECT_NE(a(), child());
}

TEST(Strings, SplitKeepsEmptyFields) {
  auto parts = nb::split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(Strings, SplitWsDropsEmpty) {
  auto parts = nb::split_ws("  a \t b\nc  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, Trim) {
  EXPECT_EQ(nb::trim("  x  "), "x");
  EXPECT_EQ(nb::trim(""), "");
  EXPECT_EQ(nb::trim(" \t\n "), "");
}

TEST(Strings, ParseU64) {
  EXPECT_EQ(nb::parse_u64("123").value(), 123u);
  EXPECT_FALSE(nb::parse_u64("12x").has_value());
  EXPECT_FALSE(nb::parse_u64("").has_value());
  EXPECT_FALSE(nb::parse_u64("-1").has_value());
}

TEST(Strings, FmtCount) {
  EXPECT_EQ(nb::fmt_count(0), "0");
  EXPECT_EQ(nb::fmt_count(95), "95");  // regression: no stray separator
  EXPECT_EQ(nb::fmt_count(100), "100");
  EXPECT_EQ(nb::fmt_count(1000), "1,000");
  EXPECT_EQ(nb::fmt_count(4730222), "4,730,222");
}

TEST(Strings, FmtPercentAndFixed) {
  EXPECT_EQ(nb::fmt_percent(0.235), "23.5%");
  EXPECT_EQ(nb::fmt_fixed(1.005, 1), "1.0");
}

TEST(HistogramTest, PercentilesAndCounts) {
  nb::Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(static_cast<std::uint64_t>(i));
  EXPECT_EQ(h.total(), 100u);
  EXPECT_EQ(h.percentile(50), 50u);
  EXPECT_EQ(h.percentile(90), 90u);
  EXPECT_EQ(h.percentile(100), 100u);
  EXPECT_EQ(h.count_at_least(91), 10u);
  EXPECT_DOUBLE_EQ(h.fraction_at_least(51), 0.5);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_NEAR(h.mean(), 50.5, 1e-9);
}

TEST(HistogramTest, AddWithMultiplicity) {
  nb::Histogram h;
  h.add(2, 5);
  h.add(7, 5);
  EXPECT_EQ(h.total(), 10u);
  EXPECT_EQ(h.count_of(2), 5u);
  EXPECT_EQ(h.percentile(50), 2u);
  EXPECT_EQ(h.percentile(51), 7u);
}

TEST(HistogramTest, RenderFoldsTail) {
  nb::Histogram h;
  for (std::uint64_t v : {1, 2, 3, 40, 41, 90}) h.add(v);
  std::string text = h.render(4);
  EXPECT_NE(text.find("1 "), std::string::npos);
  EXPECT_NE(text.find("-"), std::string::npos);  // folded ranges
}

TEST(StatsTest, PercentileOfSamples) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(nb::percentile(xs, 0), 1);
  EXPECT_DOUBLE_EQ(nb::percentile(xs, 50), 3);
  EXPECT_DOUBLE_EQ(nb::percentile(xs, 100), 5);
}

TEST(StatsTest, FitLineRecoversSlope) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 + 2.0 * i);
  }
  auto fit = nb::fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(CliTest, ParsesFlagsBothStyles) {
  // Note: a bare "--flag value" pair binds the value to the flag, so the
  // positional argument goes first.
  const char* argv[] = {"prog", "positional", "--seed=7", "--scale", "0.5",
                        "--verbose"};
  nb::Cli cli(6, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_u64("seed", 1), 7u);
  EXPECT_DOUBLE_EQ(cli.get_double("scale", 1.0), 0.5);
  EXPECT_TRUE(cli.get_bool("verbose"));
  EXPECT_EQ(cli.get_u64("missing", 9), 9u);
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "positional");
}

TEST(CliTest, UnusedDetection) {
  const char* argv[] = {"prog", "--typo=1"};
  nb::Cli cli(2, const_cast<char**>(argv));
  EXPECT_EQ(cli.unused().size(), 1u);
  (void)cli.get_u64("typo", 0);
  EXPECT_TRUE(cli.unused().empty());
}

TEST(TableTest, AlignsColumns) {
  nb::TextTable t({"a", "long-header"});
  t.add_row({"xx", "1"});
  t.add_rule();
  t.add_row({"y", "22"});
  std::string text = t.render();
  EXPECT_NE(text.find("a   long-header"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
}

}  // namespace
