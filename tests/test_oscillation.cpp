// Oscillation-detector unit tests: fingerprint invariances and the
// observe/should_freeze protocol the refinement loop drives (confirm a
// cycle, wait for the best-matched state to recur, countdown safety valve,
// checkpoint round-trip of detector state).
#include <gtest/gtest.h>

#include <vector>

#include "bgp/engine.hpp"
#include "core/oscillation.hpp"
#include "topology/model.hpp"

namespace {

using core::OscillationDetector;
using Verdict = core::OscillationDetector::Verdict;
using nb::Prefix;
using nb::RouterId;
using topo::Model;

Model square_model() {
  topo::AsGraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 1);
  return Model::one_router_per_as(g);
}

TEST(FingerprintTest, MixAvalanche) {
  EXPECT_NE(core::mix_u64(0), 0u);
  EXPECT_NE(core::mix_u64(1), core::mix_u64(2));
  EXPECT_NE(core::mix_u64(1), core::mix_u64(1) ^ core::mix_u64(2));
}

TEST(FingerprintTest, PolicyFingerprintIsOrderIndependent) {
  const Prefix prefix = Prefix::for_asn(3);
  Model a = square_model();
  a.set_lp_override(RouterId{1, 0}, prefix, 2, 200);
  a.set_lp_override(RouterId{2, 0}, prefix, 3, 150);
  Model b = square_model();
  b.set_lp_override(RouterId{2, 0}, prefix, 3, 150);  // reversed insertion
  b.set_lp_override(RouterId{1, 0}, prefix, 2, 200);
  EXPECT_EQ(core::fingerprint_policy(a, prefix),
            core::fingerprint_policy(b, prefix));
}

TEST(FingerprintTest, PolicyFingerprintSeesEveryRuleKind) {
  const Prefix prefix = Prefix::for_asn(3);
  Model base = square_model();
  const std::uint64_t empty = core::fingerprint_policy(base, prefix);

  Model with_lp = square_model();
  with_lp.set_lp_override(RouterId{1, 0}, prefix, 2, 200);
  EXPECT_NE(core::fingerprint_policy(with_lp, prefix), empty);

  Model other_lp = square_model();
  other_lp.set_lp_override(RouterId{1, 0}, prefix, 2, 150);
  EXPECT_NE(core::fingerprint_policy(other_lp, prefix),
            core::fingerprint_policy(with_lp, prefix));

  // Policies of another prefix are invisible.
  Model other_prefix = square_model();
  other_prefix.set_lp_override(RouterId{1, 0}, Prefix::for_asn(2), 2, 200);
  EXPECT_EQ(core::fingerprint_policy(other_prefix, prefix), empty);
}

TEST(FingerprintTest, SelectionFingerprintIsDeterministic) {
  Model model = square_model();
  bgp::Engine engine(model);
  const auto ids = engine.context()->ids;
  auto first = engine.run(Prefix::for_asn(3), 3);
  auto second = engine.run(Prefix::for_asn(3), 3);
  EXPECT_EQ(core::fingerprint_selections(first, ids),
            core::fingerprint_selections(second, ids));
  // A different prefix routes differently and must hash differently.
  auto other = engine.run(Prefix::for_asn(2), 2);
  EXPECT_NE(core::fingerprint_selections(first, ids),
            core::fingerprint_selections(other, ids));
}

TEST(OscillationDetectorTest, DistinctFingerprintsStayStable) {
  OscillationDetector detector(8, 2);
  for (std::uint64_t fp = 1; fp <= 32; ++fp)
    EXPECT_EQ(detector.observe(fp, 1, true), Verdict::kStable);
  EXPECT_FALSE(detector.freeze_pending());
}

TEST(OscillationDetectorTest, RecurrenceWithoutEditsIsConvergenceNotCycle) {
  OscillationDetector detector(8, 2);
  for (int i = 0; i < 16; ++i)
    EXPECT_EQ(detector.observe(42, 3, /*changed=*/false), Verdict::kStable);
  EXPECT_FALSE(detector.freeze_pending());
}

TEST(OscillationDetectorTest, PeriodTwoCycleConfirms) {
  OscillationDetector detector(8, 2);
  EXPECT_EQ(detector.observe(1, 2, true), Verdict::kStable);
  EXPECT_EQ(detector.observe(2, 3, true), Verdict::kStable);
  EXPECT_EQ(detector.observe(1, 2, true), Verdict::kSuspected);
  EXPECT_EQ(detector.observe(2, 3, true), Verdict::kFreezePending);
  EXPECT_TRUE(detector.freeze_pending());
  EXPECT_EQ(detector.best_matched(), 3u);
}

TEST(OscillationDetectorTest, LongerPeriodWithinWindowConfirms) {
  OscillationDetector detector(8, 2);
  Verdict last = Verdict::kStable;
  // Period-3 cycle: A B C A B C ...
  const std::uint64_t cycle[] = {7, 8, 9};
  for (int i = 0; i < 12 && last != Verdict::kFreezePending; ++i)
    last = detector.observe(cycle[i % 3], 1, true);
  EXPECT_EQ(last, Verdict::kFreezePending);
}

TEST(OscillationDetectorTest, PeriodBeyondWindowIsInvisible) {
  OscillationDetector detector(4, 2);
  // Period 6 > window 4: every recurrence falls off the ring first.
  for (int i = 0; i < 60; ++i)
    EXPECT_EQ(detector.observe(static_cast<std::uint64_t>(i % 6) + 1, 1, true),
              Verdict::kStable);
}

TEST(OscillationDetectorTest, FreezeWaitsForBestMatchedState) {
  OscillationDetector detector(8, 2);
  detector.observe(1, 5, true);
  detector.observe(2, 2, true);
  detector.observe(1, 5, true);
  ASSERT_EQ(detector.observe(2, 2, true), Verdict::kFreezePending);
  ASSERT_EQ(detector.best_matched(), 5u);
  // The worse phase of the cycle does not freeze; the best one does.
  EXPECT_FALSE(detector.should_freeze(2));
  EXPECT_TRUE(detector.should_freeze(5));
}

TEST(OscillationDetectorTest, CountdownSafetyValveExpires) {
  OscillationDetector detector(3, 1);
  detector.observe(1, 9, true);
  ASSERT_EQ(detector.observe(1, 9, true), Verdict::kFreezePending);
  // best_matched is 9 and never offered again; the window-sized countdown
  // must still terminate the wait.
  EXPECT_FALSE(detector.should_freeze(0));
  EXPECT_FALSE(detector.should_freeze(0));
  EXPECT_FALSE(detector.should_freeze(0));
  EXPECT_TRUE(detector.should_freeze(0));
}

TEST(OscillationDetectorTest, StateRoundTripsThroughRestore) {
  OscillationDetector detector(8, 2);
  detector.observe(1, 4, true);
  detector.observe(2, 1, true);
  detector.observe(1, 4, true);
  ASSERT_EQ(detector.observe(2, 1, true), Verdict::kFreezePending);

  OscillationDetector resumed(8, 2);
  resumed.restore(detector.state());
  EXPECT_TRUE(resumed.freeze_pending());
  EXPECT_EQ(resumed.best_matched(), 4u);
  // The restored detector continues the same freeze protocol.
  EXPECT_FALSE(resumed.should_freeze(1));
  EXPECT_TRUE(resumed.should_freeze(4));
}

TEST(OscillationDetectorTest, WindowZeroDisablesTheGuard) {
  OscillationDetector detector(0, 1);
  for (int i = 0; i < 32; ++i)
    EXPECT_EQ(detector.observe(1, 1, true), Verdict::kStable);
  EXPECT_FALSE(detector.freeze_pending());
}

}  // namespace
