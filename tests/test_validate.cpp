// Linter and convergence-checker tests: every corrupted fixture must trip
// its documented diagnostic code, clean models must lint clean at any seed,
// and engine fixed points must satisfy the convergence checker.
#include <gtest/gtest.h>

#include "analysis/check_convergence.hpp"
#include "analysis/fixtures.hpp"
#include "analysis/validate_model.hpp"
#include "bgp/engine.hpp"
#include "core/pipeline.hpp"

namespace {

using nb::Asn;
using nb::Prefix;
using nb::RouterId;
using topo::AsGraph;
using topo::Model;

AsGraph diamond() {
  AsGraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 1);
  g.add_edge(1, 3);
  return g;
}

TEST(ValidateModelTest, CleanModelHasNoDiagnostics) {
  Model model = Model::one_router_per_as(diamond());
  analysis::ValidateOptions options;
  options.pairwise_sessions = true;
  options.agnostic = true;
  const auto diagnostics = analysis::validate_model(model, options);
  EXPECT_TRUE(diagnostics.empty()) << analysis::render_diagnostics(diagnostics);
}

TEST(ValidateModelTest, EveryFixtureTripsItsDocumentedCode) {
  for (std::string_view name : analysis::fixture_names()) {
    auto model = analysis::corrupted_fixture(name);
    ASSERT_TRUE(model.has_value()) << name;
    const auto diagnostics = analysis::validate_model(*model);
    EXPECT_TRUE(analysis::has_errors(diagnostics)) << name;
    EXPECT_TRUE(analysis::contains_code(
        diagnostics, analysis::fixture_expected_code(name)))
        << name << " expected " << analysis::fixture_expected_code(name)
        << " but got:\n"
        << analysis::render_diagnostics(diagnostics);
  }
}

TEST(ValidateModelTest, UnknownFixtureNameReturnsNullopt) {
  EXPECT_FALSE(analysis::corrupted_fixture("no-such-fixture").has_value());
}

TEST(ValidateModelTest, FixtureDiagnosticsAreSpecific) {
  // Corruptions must not cascade: the dangling peer entry is skipped from
  // the session count so only M100 fires, not M103 as collateral.
  auto model = analysis::corrupted_fixture("dangling-session");
  ASSERT_TRUE(model.has_value());
  const auto diagnostics = analysis::validate_model(*model);
  EXPECT_EQ(analysis::count(diagnostics, analysis::Severity::kError), 1u)
      << analysis::render_diagnostics(diagnostics);
}

TEST(ValidateModelTest, DuplicatedRouterStaysClean) {
  // Model::duplicate_router rewires sessions through the public API; the
  // result must satisfy every structural invariant.
  Model model = Model::one_router_per_as(diamond());
  model.duplicate_router(RouterId{3, 0});
  analysis::ValidateOptions options;
  options.pairwise_sessions = true;
  const auto diagnostics = analysis::validate_model(model, options);
  EXPECT_TRUE(diagnostics.empty()) << analysis::render_diagnostics(diagnostics);
}

TEST(ValidateModelTest, GeneratedTopologiesLintCleanAcrossSeeds) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    core::PipelineConfig config = core::PipelineConfig::with(0.08, seed);
    core::Pipeline pipeline = core::make_pipeline(config);
    core::run_data_stages(pipeline);
    Model model = Model::one_router_per_as(pipeline.graph);
    analysis::ValidateOptions options;
    options.pairwise_sessions = true;
    options.agnostic = true;
    const auto diagnostics = analysis::validate_model(model, options);
    EXPECT_TRUE(diagnostics.empty())
        << "seed " << seed << ":\n"
        << analysis::render_diagnostics(diagnostics);
  }
}

TEST(CheckConvergenceTest, FixedPointPassesOnSimpleTopology) {
  Model model = Model::one_router_per_as(diamond());
  bgp::Engine engine(model);
  for (Asn origin = 1; origin <= 4; ++origin) {
    const auto sim = engine.run(Prefix::for_asn(origin), origin);
    const auto diagnostics = analysis::check_convergence(engine, sim);
    EXPECT_TRUE(diagnostics.empty())
        << "origin " << origin << ":\n"
        << analysis::render_diagnostics(diagnostics);
  }
}

TEST(CheckConvergenceTest, StaleResultIsRejected) {
  Model model = Model::one_router_per_as(diamond());
  bgp::Engine engine(model);
  auto sim = engine.run(Prefix::for_asn(1), 1);
  model.duplicate_router(RouterId{2, 0});  // sim size no longer matches
  const auto diagnostics = analysis::check_convergence(engine, sim);
  EXPECT_TRUE(
      analysis::contains_code(diagnostics, analysis::codes::kSimStale))
      << analysis::render_diagnostics(diagnostics);
}

TEST(CheckConvergenceTest, TamperedBestChoiceIsRejected) {
  Model model = Model::one_router_per_as(diamond());
  bgp::Engine engine(model);
  auto sim = engine.run(Prefix::for_asn(4), 4);
  // Find a router with >= 2 RIB-In routes and force a non-best choice.
  bool tampered = false;
  for (auto& state : sim.routers) {
    if (state.rib_in.size() >= 2 && state.best >= 0) {
      state.best =
          (state.best + 1) % static_cast<int>(state.rib_in.size());
      tampered = true;
      break;
    }
  }
  ASSERT_TRUE(tampered) << "diamond run should offer an alternative route";
  const auto diagnostics = analysis::check_convergence(engine, sim);
  EXPECT_TRUE(analysis::has_errors(diagnostics))
      << analysis::render_diagnostics(diagnostics);
}

TEST(CheckConvergenceTest, DroppedRibInEntryIsRejected) {
  Model model = Model::one_router_per_as(diamond());
  bgp::Engine engine(model);
  auto sim = engine.run(Prefix::for_asn(4), 4);
  // Deleting a non-best RIB-In entry breaks the fixed point: the neighbor
  // still exports a route that the tampered state no longer holds.
  bool tampered = false;
  for (auto& state : sim.routers) {
    if (state.rib_in.size() >= 2 && state.best == 0) {
      state.rib_in.pop_back();
      tampered = true;
      break;
    }
  }
  ASSERT_TRUE(tampered);
  const auto diagnostics = analysis::check_convergence(engine, sim);
  EXPECT_TRUE(
      analysis::contains_code(diagnostics, analysis::codes::kRibInStale))
      << analysis::render_diagnostics(diagnostics);
}

TEST(ValidationHooksTest, RefineReportsNoDiagnosticsWhenConverging) {
  core::PipelineConfig config = core::PipelineConfig::with(0.08, 11);
  config.refine.validate = true;
  core::Pipeline pipeline = core::run_full_pipeline(config);
  ASSERT_TRUE(pipeline.refine_result.success);
  EXPECT_TRUE(pipeline.refine_result.diagnostics.empty())
      << analysis::render_diagnostics(pipeline.refine_result.diagnostics);
  EXPECT_TRUE(pipeline.lint.empty())
      << analysis::render_diagnostics(pipeline.lint);
}

}  // namespace
