#include "data/dataset_stats.hpp"

#include <set>
#include <unordered_map>
#include <unordered_set>

namespace data {

using topo::AsPath;
using topo::AsPathHash;

DiversityStats compute_diversity(
    const BgpDataset& dataset,
    const std::map<Asn, std::uint32_t>* prefix_counts) {
  DiversityStats stats;
  stats.records = dataset.records.size();

  // Distinct paths per (origin, observer-AS) pair.
  std::map<std::pair<Asn, Asn>, std::set<AsPath>> per_pair;
  // Globally unique paths.
  std::unordered_set<AsPath, AsPathHash> unique_paths;
  // AS -> origin -> unique received suffixes (as hash set of path hashes --
  // exact paths kept to avoid collisions).
  std::map<Asn, std::map<Asn, std::set<std::vector<Asn>>>> received;

  for (const auto& record : dataset.records) {
    const auto& hops = record.path.hops();
    per_pair[{record.origin, record.path.observer()}].insert(record.path);
    unique_paths.insert(record.path);
    // Every AS on the path except the origin "received" the suffix that
    // follows it.
    for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
      received[hops[i]][record.origin].insert(
          std::vector<Asn>(hops.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                           hops.end()));
    }
  }

  for (auto& [pair, paths] : per_pair)
    stats.paths_per_pair.add(paths.size());
  stats.as_pairs = per_pair.size();
  stats.unique_paths = unique_paths.size();

  for (const AsPath& path : unique_paths) {
    std::uint32_t count = 1;
    if (prefix_counts != nullptr) {
      auto it = prefix_counts->find(path.origin());
      if (it != prefix_counts->end()) count = it->second;
    }
    stats.prefixes_per_path.add(count);
  }

  for (auto& [asn, by_origin] : received) {
    std::size_t max_unique = 0;
    for (auto& [origin, suffixes] : by_origin)
      max_unique = std::max(max_unique, suffixes.size());
    stats.max_unique_received.add(max_unique);
  }
  return stats;
}

}  // namespace data
