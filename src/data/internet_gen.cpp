#include "data/internet_gen.hpp"

#include <algorithm>
#include <cmath>

namespace data {

using topo::Relationship;

InternetConfig InternetConfig::scaled(double f) const {
  InternetConfig out = *this;
  f = std::max(0.1, f);
  auto scale = [&](std::size_t v) {
    return static_cast<std::size_t>(std::max(1.0, std::round(v * f)));
  };
  out.num_tier1 = std::max<std::size_t>(3, scale(num_tier1));
  out.num_level2 = scale(num_level2);
  out.num_level3 = scale(num_level3);
  out.num_stub_multi = scale(num_stub_multi);
  out.num_stub_single = scale(num_stub_single);
  return out;
}

std::vector<Asn> Internet::all_ases() const { return graph.nodes(); }

bool Internet::is_stub(Asn asn) const {
  return std::binary_search(stubs_multi.begin(), stubs_multi.end(), asn) ||
         std::binary_search(stubs_single.begin(), stubs_single.end(), asn);
}

namespace {

// Picks `count` distinct providers from `pool`, weighted by `weights`
// (degree-preferential attachment makes realistic skewed provider degrees).
std::vector<Asn> pick_providers(nb::Rng& rng, const std::vector<Asn>& pool,
                                const std::vector<double>& weights,
                                std::size_t count) {
  std::vector<Asn> chosen;
  std::vector<double> w = weights;
  count = std::min(count, pool.size());
  while (chosen.size() < count) {
    std::size_t index = rng.weighted(w);
    if (w[index] <= 0) {
      // All weight exhausted (defensive); fall back to first unused.
      bool found = false;
      for (std::size_t i = 0; i < pool.size(); ++i) {
        if (std::find(chosen.begin(), chosen.end(), pool[i]) == chosen.end()) {
          chosen.push_back(pool[i]);
          found = true;
          break;
        }
      }
      if (!found) break;
      continue;
    }
    w[index] = 0;
    chosen.push_back(pool[index]);
  }
  return chosen;
}

}  // namespace

Internet generate_internet(const InternetConfig& config) {
  Internet net;
  net.config = config;
  nb::Rng rng{config.seed};

  auto add_range = [](std::vector<Asn>& out, Asn first, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i)
      out.push_back(first + static_cast<Asn>(i));
  };
  add_range(net.tier1, 11, config.num_tier1);
  add_range(net.level2, 101, config.num_level2);
  add_range(net.level3, 1001, config.num_level3);
  add_range(net.stubs_multi, 10001, config.num_stub_multi);
  add_range(net.stubs_single, 10001 + static_cast<Asn>(config.num_stub_multi),
            config.num_stub_single);

  auto peer = [&](Asn a, Asn b) {
    net.graph.add_edge(a, b);
    net.relationships.set(a, b, Relationship::kPeerPeer);
  };
  auto provide = [&](Asn provider, Asn customer) {
    net.graph.add_edge(provider, customer);
    net.relationships.set(provider, customer, Relationship::kProviderCustomer);
  };

  // Tier-1 clique, all peerings.
  for (std::size_t i = 0; i < net.tier1.size(); ++i)
    for (std::size_t j = i + 1; j < net.tier1.size(); ++j)
      peer(net.tier1[i], net.tier1[j]);

  // Degree-preferential weights evolve as customers attach.
  auto weights_of = [&](const std::vector<Asn>& pool) {
    std::vector<double> w;
    w.reserve(pool.size());
    for (Asn asn : pool)
      w.push_back(1.0 + static_cast<double>(net.graph.degree(asn)));
    return w;
  };

  for (Asn asn : net.level2) {
    auto count = static_cast<std::size_t>(rng.range(
        config.level2_providers_min, config.level2_providers_max));
    for (Asn provider :
         pick_providers(rng, net.tier1, weights_of(net.tier1), count))
      provide(provider, asn);
  }
  for (std::size_t i = 0; i < net.level2.size(); ++i)
    for (std::size_t j = i + 1; j < net.level2.size(); ++j)
      if (rng.chance(config.level2_peer_prob))
        peer(net.level2[i], net.level2[j]);

  for (Asn asn : net.level3) {
    auto count = static_cast<std::size_t>(rng.range(
        config.level3_providers_min, config.level3_providers_max));
    for (Asn provider :
         pick_providers(rng, net.level2, weights_of(net.level2), count))
      provide(provider, asn);
    if (rng.chance(config.level3_tier1_prob)) {
      for (Asn provider : pick_providers(rng, net.tier1,
                                         weights_of(net.tier1), 1))
        provide(provider, asn);
    }
  }
  for (std::size_t i = 0; i < net.level3.size(); ++i)
    for (std::size_t j = i + 1; j < net.level3.size(); ++j)
      if (rng.chance(config.level3_peer_prob))
        peer(net.level3[i], net.level3[j]);

  // Stub providers come from the transit levels (level-3 mostly, some
  // level-2), so stub paths exercise the full hierarchy.
  std::vector<Asn> transit_pool = net.level3;
  transit_pool.insert(transit_pool.end(), net.level2.begin(),
                      net.level2.end());
  for (Asn asn : net.stubs_multi) {
    auto count = static_cast<std::size_t>(
        rng.range(config.stub_providers_min, config.stub_providers_max));
    for (Asn provider :
         pick_providers(rng, transit_pool, weights_of(transit_pool), count))
      provide(provider, asn);
  }
  for (Asn asn : net.stubs_single) {
    for (Asn provider :
         pick_providers(rng, transit_pool, weights_of(transit_pool), 1))
      provide(provider, asn);
  }

  // Heavy-tailed per-AS prefix counts.
  for (Asn asn : net.graph.nodes()) {
    double draw = rng.pareto(config.prefix_count_alpha);
    net.prefix_counts[asn] = static_cast<std::uint32_t>(
        std::min<double>(config.prefix_count_cap, std::floor(draw)));
    if (net.prefix_counts[asn] == 0) net.prefix_counts[asn] = 1;
  }
  return net;
}

}  // namespace data
