#include "data/rib_io.hpp"

#include <ostream>
#include <sstream>

#include "netbase/strings.hpp"

namespace data {

void write_dataset(std::ostream& out, const BgpDataset& dataset) {
  out << "# route-diversity RIB dump v1\n";
  out << "# points=" << dataset.points.size()
      << " records=" << dataset.records.size() << "\n";
  for (std::size_t i = 0; i < dataset.points.size(); ++i) {
    out << "point " << i << " " << dataset.points[i].router.str() << "\n";
  }
  for (const auto& record : dataset.records) {
    out << "route " << record.point << " " << record.origin << " "
        << record.path.str() << "\n";
  }
}

std::string dataset_to_string(const BgpDataset& dataset) {
  std::ostringstream out;
  write_dataset(out, dataset);
  return out.str();
}

namespace {

bool fail(std::string* error, const std::string& message, std::size_t line) {
  if (error != nullptr)
    *error = "line " + std::to_string(line) + ": " + message;
  return false;
}

bool parse_into(std::istream& in, BgpDataset& dataset, std::string* error) {
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::string_view text = nb::trim(line);
    if (text.empty() || text[0] == '#') continue;
    auto fields = nb::split_ws(text);
    if (fields[0] == "point") {
      if (fields.size() != 3)
        return fail(error, "point needs 2 fields", line_number);
      auto index = nb::parse_u64(fields[1]);
      if (!index || *index != dataset.points.size())
        return fail(error, "point indices must be dense and in order",
                    line_number);
      auto dot = fields[2].find('.');
      if (dot == std::string_view::npos)
        return fail(error, "malformed router id", line_number);
      auto asn = nb::parse_u64(fields[2].substr(0, dot));
      auto router = nb::parse_u64(fields[2].substr(dot + 1));
      if (!asn || !router || *asn > 0xffff || *router > 0xffff)
        return fail(error, "malformed router id", line_number);
      dataset.points.push_back(
          {nb::RouterId{static_cast<nb::Asn>(*asn),
                        static_cast<std::uint16_t>(*router)}});
    } else if (fields[0] == "route") {
      if (fields.size() < 4)
        return fail(error, "route needs at least 3 fields", line_number);
      auto point = nb::parse_u64(fields[1]);
      auto origin = nb::parse_u64(fields[2]);
      if (!point || *point >= dataset.points.size())
        return fail(error, "route references unknown point", line_number);
      // AS numbers above the invalid sentinel would silently truncate
      // through the uint32_t cast.
      if (!origin || *origin >= nb::kInvalidAsn)
        return fail(error, "malformed origin", line_number);
      std::vector<nb::Asn> hops;
      for (std::size_t i = 3; i < fields.size(); ++i) {
        auto hop = nb::parse_u64(fields[i]);
        if (!hop || *hop >= nb::kInvalidAsn)
          return fail(error, "malformed path hop", line_number);
        hops.push_back(static_cast<nb::Asn>(*hop));
      }
      if (hops.back() != *origin)
        return fail(error, "path must end at the origin", line_number);
      dataset.records.push_back({static_cast<std::uint32_t>(*point),
                                 static_cast<nb::Asn>(*origin),
                                 topo::AsPath{std::move(hops)}});
    } else {
      return fail(error, "unknown directive", line_number);
    }
  }
  return true;
}

}  // namespace

std::optional<BgpDataset> read_dataset(std::istream& in, std::string* error) {
  BgpDataset dataset;
  if (!parse_into(in, dataset, error)) return std::nullopt;
  return dataset;
}

std::optional<BgpDataset> dataset_from_string(const std::string& text,
                                              std::string* error) {
  std::istringstream in(text);
  return read_dataset(in, error);
}

}  // namespace data
