#include "data/ground_truth.hpp"

#include <algorithm>

namespace data {

using nb::RouterId;
using topo::Model;

namespace {

std::pair<int, int> router_range_for(const Internet& net,
                                     const GroundTruthConfig& config,
                                     Asn asn) {
  if (std::binary_search(net.tier1.begin(), net.tier1.end(), asn))
    return {config.routers_core_min, config.routers_tier1_max};
  if (std::binary_search(net.level2.begin(), net.level2.end(), asn))
    return {config.routers_core_min, config.routers_level2_max};
  if (std::binary_search(net.level3.begin(), net.level3.end(), asn))
    return {std::min(config.routers_level3_min, config.routers_level3_max),
            config.routers_level3_max};
  return {1, 1};  // stubs
}

}  // namespace

GroundTruth build_ground_truth(const Internet& net,
                               const GroundTruthConfig& config) {
  GroundTruth gt;
  gt.config = config;
  nb::Rng rng{config.seed};

  // Routers per AS.
  std::map<Asn, int> router_count;
  for (Asn asn : net.graph.nodes()) {
    auto [min_routers, max_routers] = router_range_for(net, config, asn);
    min_routers = std::min(min_routers, max_routers);
    int count = max_routers <= min_routers
                    ? min_routers
                    : static_cast<int>(rng.range(min_routers, max_routers));
    router_count[asn] = count;
    for (int i = 0; i < count; ++i) gt.model.add_router(asn);
  }

  // Sessions per AS edge: every edge gets at least one session; each router
  // on either side gets a session on this edge with probability
  // extra_session_prob (so multi-router ASes really do have multiple,
  // differently-homed exits -- the paper's "multiple connections between
  // ASes, typically from different routers").
  for (auto [a, b] : net.graph.edges()) {
    const int ca = router_count[a];
    const int cb = router_count[b];
    bool any = false;
    for (int i = 0; i < ca; ++i) {
      for (int j = 0; j < cb; ++j) {
        bool mandatory = (i == 0 && j == 0) ||  // base session
                         // Give every router a chance to reach this edge.
                         (j == 0 && i > 0 && rng.chance(0.5)) ||
                         (i == 0 && j > 0 && rng.chance(0.5));
        if (mandatory || rng.chance(config.extra_session_prob)) {
          gt.model.add_session(RouterId{a, static_cast<std::uint16_t>(i)},
                               RouterId{b, static_cast<std::uint16_t>(j)});
          any = true;
        }
      }
    }
    if (!any)
      gt.model.add_session(RouterId{a, 0}, RouterId{b, 0});
  }

  // Hot-potato diversity: every session end gets a random IGP cost.
  for (Model::Dense r = 0; r < gt.model.num_routers(); ++r) {
    for (Model::Dense peer : gt.model.peers(r)) {
      gt.model.set_igp_cost(
          gt.model.router_id(r), gt.model.router_id(peer),
          static_cast<std::uint32_t>(rng.range(1, config.igp_cost_max)));
    }
  }

  // Business relationships drive local-pref and valley-free export.
  gt.model.adopt_relationships(net.graph, net.relationships);

  // Weird per-prefix policies at a fraction of transit ASes.
  std::vector<Asn> transit;
  transit.insert(transit.end(), net.level2.begin(), net.level2.end());
  transit.insert(transit.end(), net.level3.begin(), net.level3.end());
  std::sort(transit.begin(), transit.end());
  std::vector<Asn> all = net.graph.nodes();
  for (Asn asn : transit) {
    if (!rng.chance(config.weird_as_fraction)) continue;
    gt.weird_ases.push_back(asn);
    const auto& routers = gt.model.routers_of(asn);
    const auto& neighbors = net.graph.neighbors(asn);
    for (int k = 0; k < config.weird_prefixes_per_as; ++k) {
      Asn origin = rng.pick(all);
      if (origin == asn) continue;
      nb::Prefix prefix = nb::Prefix::for_asn(origin);
      const double flavor = rng.uniform();
      if (flavor < 0.34) {
        // Route leak: export this prefix to one peer/provider even when the
        // route was learned from another peer/provider.
        Asn victim = rng.pick(neighbors);
        for (Model::Dense r : routers) {
          RouterId rid = gt.model.router_id(r);
          for (Model::Dense peer : gt.model.peers(r)) {
            RouterId pid = gt.model.router_id(peer);
            if (pid.asn() == victim)
              gt.model.set_export_allow(rid, pid, prefix);
          }
        }
      } else if (flavor < 0.67) {
        // Rank routes via a neighbor that relationships would not pick:
        // raise local-pref for one random neighbor AS at every router.
        Asn preferred = rng.pick(neighbors);
        for (Model::Dense r : routers) {
          gt.model.set_lp_override(gt.model.router_id(r), prefix, preferred,
                                   150);
        }
      } else {
        // Selective export: refuse to announce this prefix to one neighbor.
        Asn victim = rng.pick(neighbors);
        for (Model::Dense r : routers) {
          RouterId rid = gt.model.router_id(r);
          for (Model::Dense peer : gt.model.peers(r)) {
            RouterId pid = gt.model.router_id(peer);
            if (pid.asn() == victim) {
              gt.model.set_export_filter(rid, pid, prefix,
                                         topo::ExportFilter::kDenyAll,
                                         nb::kInvalidRouterId);
            }
          }
        }
      }
    }
  }
  return gt;
}

}  // namespace data
