// Observation points, observed-route datasets and training/validation splits.
//
// An observation point is a BGP feed from one ground-truth router (the paper
// peers a workstation with a router inside the observation AS and records its
// best routes).  The dataset is the union of all feeds: one record per
// (observation point, prefix) with the AS-path the fed router selected.
//
// Splits (paper Section 4.2): by observation point (the paper's main
// methodology -- all paths from a point land in exactly one subset) and by
// originating AS (the "other prefixes" experiment of Section 4.7).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "bgp/driver.hpp"
#include "data/ground_truth.hpp"
#include "data/internet_gen.hpp"
#include "netbase/rng.hpp"
#include "topology/as_path.hpp"

namespace data {

struct ObservationConfig {
  std::uint64_t seed = 3;
  // Fraction of ASes per level hosting at least one observation point; the
  // paper's feeds skew heavily toward the well-connected core.
  double frac_tier1 = 1.0;
  double frac_level2 = 0.8;
  double frac_level3 = 0.5;
  double frac_stub = 0.08;
  /// Probability that an observed AS contributes feeds from *all* its
  /// routers rather than one (paper: multiple locations in 30% of ASes).
  double multi_point_prob = 0.9;
};

struct ObservationPoint {
  nb::RouterId router;  // ground-truth router providing the feed
};

struct ObservedRecord {
  std::uint32_t point = 0;  // index into BgpDataset::points
  Asn origin = nb::kInvalidAsn;
  topo::AsPath path;        // observer AS first ... origin last
};

struct BgpDataset {
  std::vector<ObservationPoint> points;
  std::vector<ObservedRecord> records;

  std::set<Asn> observation_ases() const;
  /// Number of observation ASes with more than one feed.
  std::size_t multi_feed_ases() const;
  /// All observed paths (not deduplicated).
  std::vector<topo::AsPath> all_paths() const;
  /// Deduplicated observed paths per originating AS, deterministically
  /// sorted (shorter first, then lexicographic).
  std::map<Asn, std::vector<topo::AsPath>> paths_by_origin() const;
  /// Distinct (origin, observer-AS) pairs.
  std::size_t as_pair_count() const;
};

/// Places observation points on the ground truth and records every feed's
/// best routes by simulating all prefixes (one per AS).
BgpDataset observe(const GroundTruth& gt, const Internet& net,
                   const ObservationConfig& config, bgp::ThreadPool& pool);

/// Rewrites the dataset after single-homed-stub removal: stub origins are
/// transferred to their provider (paths shortened by one hop), observer-side
/// stub hops are trimmed, and duplicate records are dropped.
BgpDataset reduce_stubs(const BgpDataset& dataset,
                        const std::set<Asn>& single_homed);

struct SplitConfig {
  std::uint64_t seed = 4;
  double training_fraction = 2.0 / 3.0;
};

struct DatasetSplit {
  BgpDataset training;
  BgpDataset validation;
};

/// Random assignment of observation points to training/validation.
DatasetSplit split_by_points(const BgpDataset& dataset,
                             const SplitConfig& config);

/// Random assignment of originating ASes to training/validation (both halves
/// keep all observation points).
DatasetSplit split_by_origins(const BgpDataset& dataset,
                              const SplitConfig& config);

}  // namespace data
