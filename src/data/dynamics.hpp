// BGP update streams from session failures -- the paper's stated future
// work ("In the future we are planning to also incorporate the AS-path
// information from BGP updates", Section 3.1).
//
// The paper models equilibrium routing; consistently with that, an update
// stream is generated quasi-statically: each event takes one ground-truth
// eBGP session down, the network re-converges, and every observation point
// reports its (possibly changed or withdrawn) best route for every prefix --
// exactly the announcements/withdrawals a route monitor would log.  The
// session is then restored before the next event.
//
// The payoff mirrors the paper's motivation: failures expose BACKUP paths
// that a single table dump never shows, so merging update-revealed paths
// into the training data enriches the diversity the model can learn
// (bench_updates measures the effect).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <vector>

#include "bgp/threadpool.hpp"
#include "data/ground_truth.hpp"
#include "data/observations.hpp"

namespace data {

struct DynamicsConfig {
  std::uint64_t seed = 7;
  /// Number of single-session failure events.
  std::size_t num_events = 12;
  /// Only fail sessions whose endpoints both have this minimum degree
  /// (failing a stub access link reveals little).
  std::size_t min_endpoint_peers = 2;
};

struct SessionEvent {
  nb::RouterId a;
  nb::RouterId b;
};

struct UpdateRecord {
  std::uint32_t event = 0;  // index into UpdateStream::events
  std::uint32_t point = 0;  // index into the base dataset's points
  Asn origin = nb::kInvalidAsn;
  /// The new best path at the observation point during the failure;
  /// nullopt = the point withdrew the route entirely.
  std::optional<topo::AsPath> path;
};

struct UpdateStream {
  std::vector<SessionEvent> events;
  /// Only differences against the base table dump are recorded (as a real
  /// monitor would log only updates).
  std::vector<UpdateRecord> updates;

  std::size_t announcements() const;
  std::size_t withdrawals() const;

  /// Base dataset plus every update-revealed path as additional records
  /// (duplicates removed).  Withdrawals contribute nothing.
  BgpDataset merge_into(const BgpDataset& base) const;
};

/// Simulates `config.num_events` single-session failures on the ground
/// truth and records the resulting updates at the base dataset's
/// observation points.  Deterministic in config.seed.
UpdateStream simulate_session_failures(const GroundTruth& gt,
                                       const BgpDataset& base,
                                       const DynamicsConfig& config,
                                       bgp::ThreadPool& pool);

/// Text serialization:
///   event <index> <asn>.<idx> <asn>.<idx>
///   update <event> <point> <origin> withdrawn | <path...>
void write_updates(std::ostream& out, const UpdateStream& stream);
std::optional<UpdateStream> read_updates(std::istream& in,
                                         std::string* error = nullptr);

}  // namespace data
