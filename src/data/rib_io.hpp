// Plain-text serialization of observed-route datasets, in the spirit of the
// route-monitor table dumps the paper consumes.  Format (one item per line):
//
//   # comments / blank lines ignored
//   point <index> <asn>.<router-index>
//   route <point-index> <origin-asn> <asn> <asn> ... <origin-asn>
//
// The path is written observer first, origin last, matching the paper's
// notation.  Reading validates point indices and path well-formedness.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "data/observations.hpp"

namespace data {

void write_dataset(std::ostream& out, const BgpDataset& dataset);
std::string dataset_to_string(const BgpDataset& dataset);

/// Returns nullopt (and sets *error when given) on malformed input.
std::optional<BgpDataset> read_dataset(std::istream& in,
                                       std::string* error = nullptr);
std::optional<BgpDataset> dataset_from_string(const std::string& text,
                                              std::string* error = nullptr);

}  // namespace data
