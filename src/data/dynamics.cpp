#include "data/dynamics.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <set>
#include <sstream>

#include "bgp/driver.hpp"
#include "netbase/strings.hpp"

namespace data {

using topo::AsPath;
using topo::Model;

std::size_t UpdateStream::announcements() const {
  std::size_t count = 0;
  for (const auto& update : updates)
    if (update.path.has_value()) ++count;
  return count;
}

std::size_t UpdateStream::withdrawals() const {
  return updates.size() - announcements();
}

BgpDataset UpdateStream::merge_into(const BgpDataset& base) const {
  BgpDataset merged;
  merged.points = base.points;
  std::set<std::tuple<std::uint32_t, Asn, std::vector<Asn>>> seen;
  for (const auto& record : base.records) {
    if (seen.insert({record.point, record.origin, record.path.hops()})
            .second) {
      merged.records.push_back(record);
    }
  }
  for (const auto& update : updates) {
    if (!update.path.has_value()) continue;
    if (seen.insert({update.point, update.origin, update.path->hops()})
            .second) {
      merged.records.push_back({update.point, update.origin, *update.path});
    }
  }
  return merged;
}

namespace {

// The base dataset's best path per (point, origin), for diffing.
std::map<std::pair<std::uint32_t, Asn>, std::vector<nb::Asn>> base_routes(
    const BgpDataset& base) {
  std::map<std::pair<std::uint32_t, Asn>, std::vector<nb::Asn>> out;
  for (const auto& record : base.records)
    out[{record.point, record.origin}] = record.path.hops();
  return out;
}

}  // namespace

UpdateStream simulate_session_failures(const GroundTruth& gt,
                                       const BgpDataset& base,
                                       const DynamicsConfig& config,
                                       bgp::ThreadPool& pool) {
  UpdateStream stream;
  nb::Rng rng{config.seed};

  // Candidate sessions: well-connected endpoints only, canonical order.
  std::vector<std::pair<nb::RouterId, nb::RouterId>> candidates;
  for (Model::Dense r = 0; r < gt.model.num_routers(); ++r) {
    if (gt.model.peers(r).size() < config.min_endpoint_peers) continue;
    for (Model::Dense peer : gt.model.peers(r)) {
      if (gt.model.peers(peer).size() < config.min_endpoint_peers) continue;
      nb::RouterId a = gt.model.router_id(r);
      nb::RouterId b = gt.model.router_id(peer);
      if (a < b) candidates.emplace_back(a, b);
    }
  }
  if (candidates.empty()) return stream;

  const auto baseline = base_routes(base);
  // Only monitors that contributed records to the base dump are live feeds
  // (a dataset's `points` vector may list monitors of other splits too).
  std::set<std::uint32_t> live_points;
  for (const auto& record : base.records) live_points.insert(record.point);
  std::vector<std::pair<std::uint32_t, Model::Dense>> feeds;
  for (std::uint32_t i = 0; i < base.points.size(); ++i) {
    if (live_points.count(i))
      feeds.emplace_back(i, gt.model.dense(base.points[i].router));
  }

  Model working = gt.model;  // mutated per event, restored afterwards
  bgp::Engine engine(working, gt.config.engine_options());
  std::vector<bgp::SimJob> jobs = bgp::jobs_for_all_ases(working);

  for (std::size_t e = 0; e < config.num_events; ++e) {
    auto [a, b] = candidates[rng.below(candidates.size())];
    stream.events.push_back({a, b});
    const auto event_index = static_cast<std::uint32_t>(stream.events.size() - 1);
    working.remove_session(a, b);

    std::vector<std::vector<UpdateRecord>> per_job(jobs.size());
    bgp::run_jobs(engine, jobs, pool,
                  [&](std::size_t j, bgp::PrefixSimResult&& sim) {
                    auto& out = per_job[j];
                    for (auto& [point, dense] : feeds) {
                      const bgp::Route* best =
                          sim.routers[dense].best_route();
                      auto it = baseline.find({point, sim.origin});
                      const bool had = it != baseline.end();
                      if (best == nullptr) {
                        if (had)
                          out.push_back({event_index, point, sim.origin,
                                         std::nullopt});
                        continue;
                      }
                      std::vector<nb::Asn> hops;
                      hops.reserve(best->path.size() + 1);
                      hops.push_back(base.points[point].router.asn());
                      hops.insert(hops.end(), best->path.begin(),
                                  best->path.end());
                      if (had && it->second == hops) continue;  // unchanged
                      out.push_back({event_index, point, sim.origin,
                                     AsPath{std::move(hops)}});
                    }
                  });
    for (auto& records : per_job)
      stream.updates.insert(stream.updates.end(), records.begin(),
                            records.end());
    working.add_session(a, b);  // restore for the next event
  }
  return stream;
}

void write_updates(std::ostream& out, const UpdateStream& stream) {
  out << "# route-diversity update stream v1\n";
  for (std::size_t e = 0; e < stream.events.size(); ++e) {
    out << "event " << e << " " << stream.events[e].a.str() << " "
        << stream.events[e].b.str() << "\n";
  }
  for (const auto& update : stream.updates) {
    out << "update " << update.event << " " << update.point << " "
        << update.origin << " ";
    if (update.path.has_value()) {
      out << update.path->str();
    } else {
      out << "withdrawn";
    }
    out << "\n";
  }
}

namespace {

bool fail(std::string* error, const std::string& message, std::size_t line) {
  if (error != nullptr)
    *error = "line " + std::to_string(line) + ": " + message;
  return false;
}

std::optional<nb::RouterId> parse_router(std::string_view text) {
  auto dot = text.find('.');
  if (dot == std::string_view::npos) return std::nullopt;
  auto asn = nb::parse_u64(text.substr(0, dot));
  auto index = nb::parse_u64(text.substr(dot + 1));
  if (!asn || !index || *asn > 0xffff || *index > 0xffff)
    return std::nullopt;
  return nb::RouterId{static_cast<Asn>(*asn),
                      static_cast<std::uint16_t>(*index)};
}

bool parse_into(std::istream& in, UpdateStream& stream, std::string* error) {
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::string_view text = nb::trim(line);
    if (text.empty() || text[0] == '#') continue;
    auto fields = nb::split_ws(text);
    if (fields[0] == "event") {
      if (fields.size() != 4)
        return fail(error, "event needs 3 fields", line_number);
      auto index = nb::parse_u64(fields[1]);
      auto a = parse_router(fields[2]);
      auto b = parse_router(fields[3]);
      if (!index || *index != stream.events.size() || !a || !b)
        return fail(error, "malformed event", line_number);
      stream.events.push_back({*a, *b});
    } else if (fields[0] == "update") {
      if (fields.size() < 5)
        return fail(error, "update needs at least 4 fields", line_number);
      auto event = nb::parse_u64(fields[1]);
      auto point = nb::parse_u64(fields[2]);
      auto origin = nb::parse_u64(fields[3]);
      if (!event || *event >= stream.events.size() || !point || !origin)
        return fail(error, "malformed update", line_number);
      UpdateRecord record;
      record.event = static_cast<std::uint32_t>(*event);
      record.point = static_cast<std::uint32_t>(*point);
      record.origin = static_cast<Asn>(*origin);
      if (fields.size() == 5 && fields[4] == "withdrawn") {
        record.path = std::nullopt;
      } else {
        std::vector<Asn> hops;
        for (std::size_t i = 4; i < fields.size(); ++i) {
          auto hop = nb::parse_u64(fields[i]);
          if (!hop) return fail(error, "malformed update path", line_number);
          hops.push_back(static_cast<Asn>(*hop));
        }
        if (hops.back() != record.origin)
          return fail(error, "update path must end at origin", line_number);
        record.path = AsPath{std::move(hops)};
      }
      stream.updates.push_back(std::move(record));
    } else {
      return fail(error, "unknown directive", line_number);
    }
  }
  return true;
}

}  // namespace

std::optional<UpdateStream> read_updates(std::istream& in,
                                         std::string* error) {
  UpdateStream stream;
  if (!parse_into(in, stream, error)) return std::nullopt;
  return stream;
}

}  // namespace data
