// Dataset statistics reproducing Section 3.1/3.2 of the paper:
//
//  * Figure 2 -- histogram of the number of distinct AS-paths observed
//    between (origin AS, observation AS) pairs;
//  * the prefixes-per-AS-path histogram (log-log linear, Section 3.2);
//  * Table 1 -- percentiles of the maximum number of unique AS-paths each AS
//    receives toward any destination prefix (lower bound on the number of
//    quasi-routers the AS needs).
//
// All statistics are computed the way the paper computes them: from observed
// records only (an AS "receives" a path if some observed path continues
// through it).
#pragma once

#include <cstdint>
#include <map>

#include "data/observations.hpp"
#include "netbase/stats.hpp"

namespace data {

struct DiversityStats {
  /// Distinct AS-paths per (origin AS, observation AS) pair.
  nb::Histogram paths_per_pair;
  /// For each globally unique AS-path: number of prefixes propagated along
  /// it (per-AS prefix counts supplied by the generator; 1 if absent).
  nb::Histogram prefixes_per_path;
  /// Per AS: max over destination prefixes of the number of unique AS-paths
  /// the AS receives (Table 1's quantity).
  nb::Histogram max_unique_received;

  std::size_t as_pairs = 0;
  std::size_t unique_paths = 0;
  std::size_t records = 0;
};

DiversityStats compute_diversity(
    const BgpDataset& dataset,
    const std::map<Asn, std::uint32_t>* prefix_counts = nullptr);

}  // namespace data
