// Ground-truth router-level network built on top of a synthetic Internet.
//
// This plays the role of "the real Internet" in the reproduction: the model
// of the paper is fitted to routes *observed* from this network and validated
// against held-out observations.  Route diversity has the same causes as in
// the wild (paper Section 3.2):
//
//  * several routers per AS, each with its own hot-potato (IGP-cost)
//    preferences, so different routers of one AS pick different best routes;
//  * multiple inter-AS links between AS pairs, landing on different routers;
//  * business-relationship policies (local-pref + valley-free export);
//  * a sprinkling of "weird" per-prefix policies (local-pref overrides and
//    selective export denials) that do NOT follow the customer/peer schema --
//    the paper's reason for staying policy-agnostic.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "bgp/engine.hpp"
#include "data/internet_gen.hpp"
#include "netbase/rng.hpp"
#include "topology/model.hpp"

namespace data {

struct GroundTruthConfig {
  std::uint64_t seed = 2;

  int routers_tier1_max = 8;
  int routers_level2_max = 5;
  int routers_level3_max = 3;
  int routers_level3_min = 2;
  /// Minimum routers for tier-1/level-2 ASes (the core is never a single
  /// box; this drives the hot-potato diversity of Section 3.2).
  int routers_core_min = 2;
  // Stubs always get one router.

  /// Probability that an additional (router, router) session is created on an
  /// AS edge beyond the minimum cover.
  double extra_session_prob = 0.6;

  std::uint32_t igp_cost_max = 16;

  /// Fraction of transit ASes with weird per-prefix policies.
  double weird_as_fraction = 0.30;
  /// Number of prefixes (origins) each weird AS tweaks.
  int weird_prefixes_per_as = 12;

  bgp::EngineOptions engine_options() const {
    bgp::EngineOptions opts;
    opts.use_relationship_policies = true;
    opts.use_igp_cost = true;
    return opts;
  }
};

struct GroundTruth {
  GroundTruthConfig config;
  topo::Model model;
  /// ASes that carry weird per-prefix policies (sorted), for reporting.
  std::vector<Asn> weird_ases;
};

/// Builds the ground-truth network.  Deterministic in config.seed.
GroundTruth build_ground_truth(const Internet& net,
                               const GroundTruthConfig& config);

}  // namespace data
