#include "data/observations.hpp"

#include <algorithm>
#include <unordered_set>

namespace data {

using topo::AsPath;

std::set<Asn> BgpDataset::observation_ases() const {
  std::set<Asn> out;
  for (const auto& point : points) out.insert(point.router.asn());
  return out;
}

std::size_t BgpDataset::multi_feed_ases() const {
  std::map<Asn, std::size_t> counts;
  for (const auto& point : points) ++counts[point.router.asn()];
  std::size_t multi = 0;
  for (auto& [asn, count] : counts)
    if (count > 1) ++multi;
  return multi;
}

std::vector<AsPath> BgpDataset::all_paths() const {
  std::vector<AsPath> out;
  out.reserve(records.size());
  for (const auto& record : records) out.push_back(record.path);
  return out;
}

std::map<Asn, std::vector<AsPath>> BgpDataset::paths_by_origin() const {
  std::map<Asn, std::set<AsPath>> sets;
  for (const auto& record : records) sets[record.origin].insert(record.path);
  std::map<Asn, std::vector<AsPath>> out;
  for (auto& [origin, paths] : sets) {
    std::vector<AsPath> list(paths.begin(), paths.end());
    std::stable_sort(list.begin(), list.end(),
                     [](const AsPath& a, const AsPath& b) {
                       if (a.length() != b.length())
                         return a.length() < b.length();
                       return a.hops() < b.hops();
                     });
    out[origin] = std::move(list);
  }
  return out;
}

std::size_t BgpDataset::as_pair_count() const {
  std::set<std::pair<Asn, Asn>> pairs;
  for (const auto& record : records)
    pairs.insert({record.origin, record.path.observer()});
  return pairs.size();
}

BgpDataset observe(const GroundTruth& gt, const Internet& net,
                   const ObservationConfig& config, bgp::ThreadPool& pool) {
  BgpDataset dataset;
  nb::Rng rng{config.seed};

  auto place = [&](const std::vector<Asn>& ases, double fraction) {
    for (Asn asn : ases) {
      if (!rng.chance(fraction)) continue;
      const auto& routers = gt.model.routers_of(asn);
      if (routers.empty()) continue;
      if (routers.size() > 1 && rng.chance(config.multi_point_prob)) {
        for (topo::Model::Dense r : routers)
          dataset.points.push_back({gt.model.router_id(r)});
      } else {
        topo::Model::Dense r =
            routers[rng.below(routers.size())];
        dataset.points.push_back({gt.model.router_id(r)});
      }
    }
  };
  place(net.tier1, config.frac_tier1);
  place(net.level2, config.frac_level2);
  place(net.level3, config.frac_level3);
  place(net.stubs_multi, config.frac_stub);
  place(net.stubs_single, config.frac_stub);

  // Record every feed's best route for every prefix (one per AS).
  bgp::Engine engine(gt.model, gt.config.engine_options());
  std::vector<bgp::SimJob> jobs = bgp::jobs_for_all_ases(gt.model);
  std::vector<std::pair<std::uint32_t, topo::Model::Dense>> feed_routers;
  for (std::uint32_t i = 0; i < dataset.points.size(); ++i)
    feed_routers.emplace_back(i, gt.model.dense(dataset.points[i].router));

  std::vector<std::vector<ObservedRecord>> per_job(jobs.size());
  bgp::run_jobs(engine, jobs, pool,
                [&](std::size_t j, bgp::PrefixSimResult&& result) {
                  auto& out = per_job[j];
                  for (auto& [index, dense] : feed_routers) {
                    const bgp::Route* best =
                        result.routers[dense].best_route();
                    if (best == nullptr) continue;
                    std::vector<Asn> hops;
                    hops.reserve(best->path.size() + 1);
                    hops.push_back(dataset.points[index].router.asn());
                    hops.insert(hops.end(), best->path.begin(),
                                best->path.end());
                    out.push_back({index, result.origin,
                                   AsPath{std::move(hops)}});
                  }
                });
  for (auto& job_records : per_job)
    dataset.records.insert(dataset.records.end(), job_records.begin(),
                           job_records.end());
  return dataset;
}

BgpDataset reduce_stubs(const BgpDataset& dataset,
                        const std::set<Asn>& single_homed) {
  BgpDataset out;
  out.points = dataset.points;
  std::set<std::tuple<std::uint32_t, Asn, std::vector<Asn>>> seen;
  for (const auto& record : dataset.records) {
    if (record.path.has_loop()) continue;
    std::vector<Asn> hops = record.path.hops();
    while (hops.size() > 1 && single_homed.count(hops.back()))
      hops.pop_back();
    std::size_t begin = 0;
    while (begin + 1 < hops.size() && single_homed.count(hops[begin])) ++begin;
    hops.erase(hops.begin(), hops.begin() + static_cast<std::ptrdiff_t>(begin));
    if (hops.empty()) continue;
    // A self-observation at a removed stub carries no path information.
    if (hops.size() == 1 && single_homed.count(hops[0])) continue;
    Asn new_origin = hops.back();
    if (!seen.insert({record.point, new_origin, hops}).second) continue;
    out.records.push_back({record.point, new_origin, AsPath{std::move(hops)}});
  }
  return out;
}

namespace {

BgpDataset filter_records(const BgpDataset& dataset,
                          const std::function<bool(const ObservedRecord&)>& keep) {
  BgpDataset out;
  out.points = dataset.points;
  for (const auto& record : dataset.records)
    if (keep(record)) out.records.push_back(record);
  return out;
}

}  // namespace

DatasetSplit split_by_points(const BgpDataset& dataset,
                             const SplitConfig& config) {
  nb::Rng rng{config.seed};
  std::vector<char> in_training(dataset.points.size(), 0);
  for (std::size_t i = 0; i < dataset.points.size(); ++i)
    in_training[i] = rng.chance(config.training_fraction) ? 1 : 0;
  // Guarantee both sides are non-empty when possible.
  if (dataset.points.size() >= 2) {
    if (std::count(in_training.begin(), in_training.end(), 1) == 0)
      in_training[0] = 1;
    if (std::count(in_training.begin(), in_training.end(), 1) ==
        static_cast<std::ptrdiff_t>(in_training.size()))
      in_training[in_training.size() - 1] = 0;
  }
  DatasetSplit split;
  split.training = filter_records(dataset, [&](const ObservedRecord& r) {
    return in_training[r.point] != 0;
  });
  split.validation = filter_records(dataset, [&](const ObservedRecord& r) {
    return in_training[r.point] == 0;
  });
  return split;
}

DatasetSplit split_by_origins(const BgpDataset& dataset,
                              const SplitConfig& config) {
  nb::Rng rng{config.seed};
  std::set<Asn> origins;
  for (const auto& record : dataset.records) origins.insert(record.origin);
  std::set<Asn> training_origins;
  for (Asn origin : origins)
    if (rng.chance(config.training_fraction)) training_origins.insert(origin);
  if (!origins.empty()) {
    if (training_origins.empty()) training_origins.insert(*origins.begin());
    if (training_origins.size() == origins.size())
      training_origins.erase(*origins.rbegin());
  }
  DatasetSplit split;
  split.training = filter_records(dataset, [&](const ObservedRecord& r) {
    return training_origins.count(r.origin) > 0;
  });
  split.validation = filter_records(dataset, [&](const ObservedRecord& r) {
    return training_origins.count(r.origin) == 0;
  });
  return split;
}

}  // namespace data
