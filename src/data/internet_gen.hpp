// Synthetic Internet topology generator.
//
// Substitute for the paper's measured Nov-2005 BGP dataset (see DESIGN.md):
// produces a hierarchical AS-level graph with known ground-truth business
// relationships, mirroring the structure the paper reports in Section 3.1 --
// a fully meshed tier-1 clique, transit levels below it, peering edges inside
// levels, and a large population of single-/multi-homed stub ASes.
//
// ASN ranges are chosen for readability of dumps and reports:
//   tier-1: 11..        level-2 transit: 101..
//   level-3 transit: 1001..    stubs: 10001..
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "netbase/rng.hpp"
#include "topology/as_graph.hpp"
#include "topology/relationships.hpp"

namespace data {

using nb::Asn;

struct InternetConfig {
  std::uint64_t seed = 1;

  std::size_t num_tier1 = 8;
  std::size_t num_level2 = 48;
  std::size_t num_level3 = 140;
  std::size_t num_stub_multi = 260;
  std::size_t num_stub_single = 120;

  // Providers drawn per AS (uniform in [min, max]).
  int level2_providers_min = 1, level2_providers_max = 3;   // from tier-1
  int level3_providers_min = 2, level3_providers_max = 4;   // from level-2
  int stub_providers_min = 2, stub_providers_max = 5;       // multi-homed

  // Probability that a level-3 AS additionally buys transit from a tier-1
  // (the "large interconnectivity in the core", Section 3.2).
  double level3_tier1_prob = 0.20;

  // Intra-level peering probabilities.
  double level2_peer_prob = 0.15;
  double level3_peer_prob = 0.04;

  // Heavy-tailed number of prefixes originated per AS (Pareto shape); used
  // by the Fig. 2 "prefixes per AS-path" series.
  double prefix_count_alpha = 1.3;
  std::uint32_t prefix_count_cap = 64;

  /// Scales every population count by f (>= 0.1), for size sweeps.
  InternetConfig scaled(double f) const;
};

struct Internet {
  InternetConfig config;
  topo::AsGraph graph;
  topo::RelationshipMap relationships;  // ground truth
  std::vector<Asn> tier1;               // the clique (sorted)
  std::vector<Asn> level2;
  std::vector<Asn> level3;
  std::vector<Asn> stubs_multi;
  std::vector<Asn> stubs_single;
  /// Prefix count originated per AS (>= 1), for dataset statistics.
  std::map<Asn, std::uint32_t> prefix_counts;

  std::vector<Asn> all_ases() const;  // sorted
  bool is_stub(Asn asn) const;
};

/// Generates a connected hierarchical topology.  Deterministic in the seed.
Internet generate_internet(const InternetConfig& config);

}  // namespace data
