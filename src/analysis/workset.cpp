#include "analysis/workset.hpp"

#include <algorithm>

#include "analysis/reachability_cache.hpp"
#include "netbase/check.hpp"

namespace analysis {

using topo::Model;

namespace {

/// In iBGP-mesh mode a router's pushed external best reaches every AS-mate
/// without an eBGP import, so membership must be closed under AS-mates.
void close_under_as_mates(const Model& model, std::vector<char>& members) {
  for (const nb::Asn asn : model.asns()) {
    const std::vector<Model::Dense>& mates = model.routers_of(asn);
    const bool any = std::any_of(mates.begin(), mates.end(),
                                 [&](Model::Dense r) { return members[r]; });
    if (!any) continue;
    for (const Model::Dense r : mates) members[r] = 1;
  }
}

}  // namespace

PrefixWorkset compute_working_set(const bgp::Engine& engine,
                                  const nb::Prefix& prefix, nb::Asn origin,
                                  const WorksetOptions& options,
                                  ReachabilityCache* cache,
                                  Diagnostics* diags) {
  const Model& model = engine.model();
  const std::size_t n = model.num_routers();

  PrefixWorkset ws;
  ws.prefix = prefix;
  ws.origin = origin;

  // Exact pass: the MAY-non-empty set, valid only when enumeration covered
  // the whole permitted-path universe.
  RouteSpace space;
  bool have_exact = false;
  if (options.exact) {
    space = build_route_space(engine, prefix, origin, options.space);
    have_exact = !space.truncated;
  }

  if (have_exact) {
    ws.members.assign(n, 0);
    for (Model::Dense r = 0; r < n; ++r) {
      if (space.may_reach(r)) ws.members[r] = 1;
    }
  } else {
    ws.relaxed = true;
    if (cache != nullptr) {
      ws.members = *cache->relaxed(model, prefix, origin);
    } else {
      ws.members = relaxed_reachable(model, model.find_policy(prefix), origin);
    }
    if (diags != nullptr) {
      diags->push_back(
          {Severity::kWarning, codes::kWorksetRelaxed, prefix.str(),
           options.exact
               ? "MAY enumeration truncated; working set degraded to the "
                 "relaxed reachability bound (cost estimate is coarse)"
               : "exact pass disabled; working set is the relaxed "
                 "reachability bound (cost estimate is coarse)"});
    }
  }

  if (engine.options().use_ibgp_mesh) close_under_as_mates(model, ws.members);

  // Origin routers originate unconditionally; both bounds start from them.
  for (const Model::Dense r : model.routers_of(origin)) {
    RD_CHECK(ws.members[r] != 0,
             "compute_working_set: origin router outside its own bound");
  }

  RD_CHECK(ws.members.size() == n, "compute_working_set: stale model read");
  const topo::PrefixPolicy* policy = model.find_policy(prefix);
  const std::uint64_t max_len =
      std::max<std::uint64_t>(1, options.space.max_path_length);
  for (Model::Dense r = 0; r < n; ++r) {
    if (ws.members[r] == 0) continue;
    ++ws.size;
    if (have_exact) {
      ws.bounded_messages +=
          model.peers(r).size() *
          std::max<std::uint64_t>(1, space.by_router[r].size());
    } else {
      // Filter-aware relaxed bound: an edge whose export filter denies
      // lengths below d passes only paths of length >= d out of the
      // plausible 1..max_path_length, so attenuate its per-edge path cap
      // proportionally (kDenyAll -> 0).  This is what keeps per-prefix
      // cost variance alive when every working set degrades to the same
      // relaxed component -- the prefixes still differ in their filters.
      for (const Model::Dense peer : model.peers(r)) {
        const topo::ExportFilter* filter =
            model.find_export_filter(r, peer, policy);
        const std::uint64_t denied =
            filter == nullptr
                ? 0
                : std::min<std::uint64_t>(filter->deny_below_len, max_len);
        ws.bounded_messages += options.space.max_paths_per_router *
                               (max_len - denied) / max_len;
      }
    }
  }
  ws.cost = static_cast<std::uint64_t>(ws.size) * ws.bounded_messages;
  return ws;
}

std::vector<PrefixWorkset> compute_all_worksets(const bgp::Engine& engine,
                                                const WorksetOptions& options,
                                                ReachabilityCache* cache,
                                                Diagnostics* diags) {
  std::vector<PrefixWorkset> result;
  const std::vector<nb::Asn> asns = engine.model().asns();
  result.reserve(asns.size());
  for (const nb::Asn asn : asns) {
    result.push_back(compute_working_set(engine, nb::Prefix::for_asn(asn),
                                         asn, options, cache, diags));
  }
  return result;
}

}  // namespace analysis
