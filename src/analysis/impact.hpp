// Static edit-impact sets: which routers CAN a model edit touch?
//
// Given a model and a candidate edit (session teardown, ranking change,
// filter change), computes per prefix an over-approximation of the routers
// whose steady-state route selection may differ between the pre-edit and
// post-edit models -- the "dirty frontier" an incremental re-convergence
// pass has to re-simulate, and a reviewer's blast-radius answer, both
// without running either simulation.
//
// The closure is a reverse-dependence argument over the session graph.  A
// router's selection is a function of its RIB-In; its RIB-In changes only
// when a peer's advertisement to it changes; an advertisement changes only
// when the peer's own selection changed or the edit rewired the very
// session/filter it crosses.  Inductively every changed router is reachable
// from the edit's seed routers
//
//   session-down  {both endpoints}     (their RIB-Ins lose entries directly)
//   policy-change {the ranked router}  (its import preferences change)
//   filter-edit   {the receiver}       (what it imports changes; the
//                                       announcer's own state cannot)
//
// through sessions existing in either model, excluding only edges whose
// export filter is kDenyAll in BOTH models (those transmit nothing in
// either world; any weaker filter passes some lengths, and which lengths
// arrive depends on state we are abstracting away).  The closure is then
// intersected with may_pre ∪ may_post (route_space.hpp): a router whose MAY
// set is empty in both models never holds a route in either, so its
// selection cannot differ.  For prefixes whose enumeration was truncated the
// incomplete MAY sets prove nothing, so the intersection falls back to
// relaxed_reachable (route_space.hpp) -- a weaker but complete bound.
//
// Soundness (router changed under full re-simulation => router in impact
// set) is enforced dynamically by tests/test_impact.cpp over sampled edits
// on generated topologies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/route_space.hpp"
#include "bgp/engine.hpp"
#include "topology/model.hpp"

namespace analysis {

class ReachabilityCache;

struct ModelEdit {
  enum class Kind : std::uint8_t {
    kSessionDown,    // remove the a<->b session
    kPolicyChange,   // set (or clear) router's per-prefix MED ranking
    kFilterEdit,     // set (or remove) the export filter on a->b for prefix
  };

  Kind kind = Kind::kSessionDown;
  /// kSessionDown / kFilterEdit endpoints; for filters `a` announces to `b`.
  nb::RouterId a;
  nb::RouterId b;
  /// kPolicyChange: the router whose ranking changes.
  nb::RouterId router;
  /// kPolicyChange / kFilterEdit: the targeted prefix overlay.
  nb::Prefix prefix;
  /// kPolicyChange: new preferred neighbor AS; kInvalidAsn clears the rule.
  nb::Asn preferred = nb::kInvalidAsn;
  /// kFilterEdit: new deny-below-length threshold; 0 removes the filter.
  std::uint32_t deny_below_len = 0;

  std::string str() const;
};

/// The post-edit model (value copy; the base is untouched).  Unknown
/// routers/sessions make the edit a no-op of the corresponding part, same
/// as the Model mutators it delegates to.
topo::Model apply_edit(const topo::Model& base, const ModelEdit& edit);

struct ImpactOptions {
  /// How the engine interprets the model, as in AuditOptions::engine.
  bgp::EngineOptions engine;
  RouteSpaceOptions space;

  /// Origin ASes whose prefixes to analyze.  Empty: derive one origin per
  /// policy overlay of the base model (session-down edits affect every
  /// announced prefix; policy/filter edits only their own overlay's).
  std::vector<nb::Asn> origins;

  /// Cache for the BASE model's relaxed-reachability bounds (consulted for
  /// truncated prefixes), shared across compute_impact calls that analyze
  /// many candidate edits against one model.  The post-edit model is a
  /// per-call copy, so its bound is always computed fresh.  May be null.
  ReachabilityCache* cache = nullptr;
};

struct PrefixImpact {
  nb::Prefix prefix;
  nb::Asn origin = nb::kInvalidAsn;
  /// Routers whose selection MAY change, ascending by router id.  Sound
  /// over-approximation; typically small relative to the model.
  std::vector<nb::RouterId> routers;
  /// MAY-set tightening was unavailable (enumeration cap hit); the set
  /// above was tightened by relaxed reachability instead.
  bool truncated = false;
};

struct ImpactResult {
  std::vector<PrefixImpact> prefixes;  // analysis-target order
  std::size_t routers_total = 0;       // sum over prefixes
  bool truncated = false;              // any prefix truncated
};

ImpactResult compute_impact(const topo::Model& base, const ModelEdit& edit,
                            const ImpactOptions& options = {});

}  // namespace analysis
