#include "analysis/dispute_graph.hpp"

#include <algorithm>
#include <string>
#include <vector>

namespace analysis {

using topo::Model;

DisputeGraph build_dispute_graph(const bgp::Engine& engine,
                                 const nb::Prefix& prefix, nb::Asn origin,
                                 const DisputeGraphOptions& options) {
  return build_dispute_graph(engine,
                             build_route_space(engine, prefix, origin, options));
}

DisputeGraph build_dispute_graph(const bgp::Engine& engine,
                                 const RouteSpace& space) {
  DisputeGraph graph;
  const Model& model = engine.model();
  const std::vector<std::uint32_t> ids = bgp::dense_ids(model);

  // The node universe IS the route space; dependence arcs were recorded
  // during its BFS (child -> announcing parent).
  graph.by_router = space.by_router;
  graph.truncated = space.truncated;
  graph.nodes.reserve(space.nodes.size());
  graph.arcs.resize(space.nodes.size());
  for (std::size_t j = 0; j < space.nodes.size(); ++j) {
    graph.nodes.push_back({space.nodes[j].router, space.nodes[j].route});
    for (const std::size_t parent : space.dependence[j]) {
      graph.arcs[j].push_back({parent, DisputeGraph::ArcKind::kDependence});
    }
  }

  // Dispute arcs: for every dependence (u, vQ) -> (v, Q), v abandoning Q for
  // a strictly preferred Q' destabilizes u's path.
  for (std::size_t j = 0; j < graph.nodes.size(); ++j) {
    for (const std::size_t i : space.dependence[j]) {
      const Model::Dense v = graph.nodes[i].router;
      for (const std::size_t k : graph.by_router[v]) {
        if (k == i) continue;
        if (bgp::compare_routes(graph.nodes[k].route, graph.nodes[i].route,
                                ids)
                .order >= 0) {
          continue;
        }
        auto& arcs = graph.arcs[j];
        if (std::none_of(arcs.begin(), arcs.end(),
                         [&](const DisputeGraph::Arc& a) {
                           return a.to == k &&
                                  a.kind == DisputeGraph::ArcKind::kDispute;
                         })) {
          arcs.push_back({k, DisputeGraph::ArcKind::kDispute});
          ++graph.dispute_arcs;
        }
      }
    }
  }
  return graph;
}

std::vector<std::size_t> find_dispute_cycle(const DisputeGraph& graph) {
  enum : char { kWhite, kGray, kBlack };
  std::vector<char> color(graph.nodes.size(), kWhite);
  std::vector<std::size_t> stack;  // routers on the current DFS path
  struct Frame {
    std::size_t node;
    std::size_t next_arc;
  };
  for (std::size_t root = 0; root < graph.nodes.size(); ++root) {
    if (color[root] != kWhite) continue;
    std::vector<Frame> frames{{root, 0}};
    color[root] = kGray;
    stack.clear();
    stack.push_back(root);
    while (!frames.empty()) {
      Frame& frame = frames.back();
      if (frame.next_arc < graph.arcs[frame.node].size()) {
        const std::size_t to = graph.arcs[frame.node][frame.next_arc++].to;
        if (color[to] == kGray) {
          const auto at = std::find(stack.begin(), stack.end(), to);
          return {at, stack.end()};
        }
        if (color[to] == kWhite) {
          color[to] = kGray;
          stack.push_back(to);
          frames.push_back({to, 0});
        }
      } else {
        color[frame.node] = kBlack;
        stack.pop_back();
        frames.pop_back();
      }
    }
  }
  return {};
}

std::string render_cycle(const topo::Model& model, const DisputeGraph& graph,
                         const std::vector<std::size_t>& cycle) {
  std::string out;
  auto render_node = [&](std::size_t id) {
    const DisputeGraph::Node& node = graph.nodes[id];
    out += model.router_id(node.router).str();
    out += '[';
    bool first = true;
    for (const nb::Asn hop : node.route.path) {
      if (!first) out += ' ';
      first = false;
      out += std::to_string(hop);
    }
    out += ']';
  };
  for (const std::size_t id : cycle) {
    render_node(id);
    out += " -> ";
  }
  if (!cycle.empty()) render_node(cycle.front());
  return out;
}

}  // namespace analysis
