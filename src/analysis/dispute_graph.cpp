#include "analysis/dispute_graph.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <optional>
#include <utility>

namespace analysis {

using bgp::Route;
using topo::Model;

DisputeGraph build_dispute_graph(const bgp::Engine& engine,
                                 const nb::Prefix& prefix, nb::Asn origin,
                                 const DisputeGraphOptions& options) {
  DisputeGraph graph;
  const Model& model = engine.model();
  const topo::PrefixPolicy* policy = model.find_policy(prefix);
  const std::vector<std::uint32_t> ids = bgp::dense_ids(model);
  graph.by_router.resize(model.num_routers());

  // (router, path) -> node id.  std::map keeps rediscovery deterministic.
  std::map<std::pair<Model::Dense, std::vector<nb::Asn>>, std::size_t> index;
  std::deque<std::size_t> queue;

  auto add_node = [&](Model::Dense router, Route route) {
    const std::size_t id = graph.nodes.size();
    index.emplace(std::make_pair(router, route.path), id);
    graph.by_router[router].push_back(id);
    graph.nodes.push_back({router, std::move(route)});
    graph.arcs.emplace_back();
    queue.push_back(id);
    return id;
  };

  // Origination, exactly as Engine::run seeds it (empty path, MED 0).
  for (const Model::Dense r : model.routers_of(origin)) {
    Route self;
    self.sender = r;
    self.med = 0;
    add_node(r, std::move(self));
  }

  while (!queue.empty()) {
    const std::size_t parent = queue.front();
    queue.pop_front();
    const Model::Dense v = graph.nodes[parent].router;
    if (graph.nodes[parent].route.path.size() + 1 > options.max_path_length) {
      graph.truncated = true;
      continue;
    }
    for (const Model::Dense u : model.peers(v)) {
      // The propagated route depends only on the parent's PATH (export and
      // import both recompute attributes), so the representative choice
      // below never requires re-propagation.
      std::optional<Route> imported =
          engine.propagate(policy, v, u, graph.nodes[parent].route);
      if (!imported.has_value()) continue;
      auto it = index.find(std::make_pair(u, imported->path));
      std::size_t child;
      if (it != index.end()) {
        child = it->second;
        // Keep the best-ranked sender as the representative for preference
        // comparisons (the engine would install exactly one of these).
        if (bgp::compare_routes(*imported, graph.nodes[child].route, ids)
                .order < 0) {
          graph.nodes[child].route = std::move(*imported);
        }
      } else {
        if (graph.by_router[u].size() >= options.max_paths_per_router ||
            graph.nodes.size() >= options.max_nodes) {
          graph.truncated = true;
          continue;
        }
        child = add_node(u, std::move(*imported));
      }
      auto& arcs = graph.arcs[child];
      if (std::none_of(arcs.begin(), arcs.end(), [&](const DisputeGraph::Arc& a) {
            return a.to == parent &&
                   a.kind == DisputeGraph::ArcKind::kDependence;
          })) {
        arcs.push_back({parent, DisputeGraph::ArcKind::kDependence});
      }
    }
  }

  // Dispute arcs: for every dependence (u, vQ) -> (v, Q), v abandoning Q for
  // a strictly preferred Q' destabilizes u's path.
  for (std::size_t j = 0; j < graph.nodes.size(); ++j) {
    const std::vector<DisputeGraph::Arc> dependence = graph.arcs[j];
    for (const DisputeGraph::Arc& dep : dependence) {
      const std::size_t i = dep.to;
      const Model::Dense v = graph.nodes[i].router;
      for (const std::size_t k : graph.by_router[v]) {
        if (k == i) continue;
        if (bgp::compare_routes(graph.nodes[k].route, graph.nodes[i].route,
                                ids)
                .order >= 0) {
          continue;
        }
        auto& arcs = graph.arcs[j];
        if (std::none_of(arcs.begin(), arcs.end(),
                         [&](const DisputeGraph::Arc& a) {
                           return a.to == k &&
                                  a.kind == DisputeGraph::ArcKind::kDispute;
                         })) {
          arcs.push_back({k, DisputeGraph::ArcKind::kDispute});
          ++graph.dispute_arcs;
        }
      }
    }
  }
  return graph;
}

std::vector<std::size_t> find_dispute_cycle(const DisputeGraph& graph) {
  enum : char { kWhite, kGray, kBlack };
  std::vector<char> color(graph.nodes.size(), kWhite);
  std::vector<std::size_t> stack;  // routers on the current DFS path
  struct Frame {
    std::size_t node;
    std::size_t next_arc;
  };
  for (std::size_t root = 0; root < graph.nodes.size(); ++root) {
    if (color[root] != kWhite) continue;
    std::vector<Frame> frames{{root, 0}};
    color[root] = kGray;
    stack.clear();
    stack.push_back(root);
    while (!frames.empty()) {
      Frame& frame = frames.back();
      if (frame.next_arc < graph.arcs[frame.node].size()) {
        const std::size_t to = graph.arcs[frame.node][frame.next_arc++].to;
        if (color[to] == kGray) {
          const auto at = std::find(stack.begin(), stack.end(), to);
          return {at, stack.end()};
        }
        if (color[to] == kWhite) {
          color[to] = kGray;
          stack.push_back(to);
          frames.push_back({to, 0});
        }
      } else {
        color[frame.node] = kBlack;
        stack.pop_back();
        frames.pop_back();
      }
    }
  }
  return {};
}

std::string render_cycle(const topo::Model& model, const DisputeGraph& graph,
                         const std::vector<std::size_t>& cycle) {
  std::string out;
  auto render_node = [&](std::size_t id) {
    const DisputeGraph::Node& node = graph.nodes[id];
    out += model.router_id(node.router).str();
    out += '[';
    bool first = true;
    for (const nb::Asn hop : node.route.path) {
      if (!first) out += ' ';
      first = false;
      out += std::to_string(hop);
    }
    out += ']';
  };
  for (const std::size_t id : cycle) {
    render_node(id);
    out += " -> ";
  }
  if (!cycle.empty()) render_node(cycle.front());
  return out;
}

}  // namespace analysis
