#include "analysis/check_convergence.hpp"

#include <set>
#include <string>

#include "bgp/decision.hpp"

namespace analysis {
namespace {

using bgp::PrefixSimResult;
using bgp::Route;
using bgp::RouterState;
using nb::Asn;
using topo::Model;

std::string router_loc(const Model& model, Model::Dense r) {
  return "router " + model.router_id(r).str();
}

bool same_attributes(const Route& a, const Route& b) {
  return a.path == b.path && a.local_pref == b.local_pref && a.med == b.med &&
         a.igp_cost == b.igp_cost;
}

class Checker {
 public:
  Checker(const bgp::Engine& engine, const PrefixSimResult& result,
          const ConvergenceOptions& options)
      : engine_(engine),
        model_(engine.model()),
        result_(result),
        options_(options) {}

  Diagnostics run() {
    // dense_size() is the model's router count at run time, for full and
    // compacted results alike; routers outside a compacted view read as
    // default-empty through state(), which is provably what a full run
    // leaves them with (Engine::run_compacted contract).
    if (result_.dense_size() != model_.num_routers()) {
      error(codes::kSimStale, "simulation",
            "result covers " + std::to_string(result_.dense_size()) +
                " routers but the model now has " +
                std::to_string(model_.num_routers()) +
                " (model mutated after the run)");
      return std::move(out_);
    }
    if (!result_.converged) {
      error(codes::kSimNotConverged, "simulation",
            "divergence guard tripped: " + std::to_string(result_.messages) +
                " messages exceeded the cap of " +
                std::to_string(result_.message_cap) + " after " +
                std::to_string(result_.activations) +
                " router activations; RIB state is mid-flight");
      return std::move(out_);
    }
    ctx_ = engine_.context();  // shared per-epoch ids, no per-check rebuild
    ids_ = ctx_->ids;
    for (Model::Dense r = 0; r < result_.dense_size(); ++r)
      check_router(r);
    if (options_.check_fixed_point) check_fixed_point();
    return std::move(out_);
  }

 private:
  void error(const char* code, std::string location, std::string message) {
    out_.push_back(Diagnostic{Severity::kError, code, std::move(location),
                              std::move(message)});
  }

  void check_router(Model::Dense r) {
    const RouterState& state = result_.state(r);
    const Asn own_as = model_.router_id(r).asn();
    const int size = static_cast<int>(state.rib_in.size());
    const std::string loc = router_loc(model_, r);

    if (state.best < -1 || state.best >= size) {
      error(codes::kBestIndexInvalid, loc,
            "best index " + std::to_string(state.best) + " outside RIB-In of " +
                std::to_string(size) + " entries");
      return;
    }
    if (state.best_external < -1 || state.best_external >= size) {
      error(codes::kBestIndexInvalid, loc,
            "best_external index " + std::to_string(state.best_external) +
                " outside RIB-In of " + std::to_string(size) + " entries");
      return;
    }
    if (!engine_.options().use_ibgp_mesh &&
        state.best_external != state.best) {
      error(codes::kBestExternalInvalid, loc,
            "best_external diverges from best outside ibgp-mesh mode");
    }
    if (const Route* external = state.external_route();
        external != nullptr && external->ibgp) {
      error(codes::kBestExternalInvalid, loc,
            "best_external selects an iBGP-learned route");
    }

    if (bgp::select_best(state.rib_in, ids_) != state.best) {
      error(codes::kBestNotWinning, loc,
            "installed best does not win the decision process against the "
            "current candidates");
    }

    std::set<std::uint32_t> senders;
    for (const Route& entry : state.rib_in) {
      if (!senders.insert(entry.sender).second) {
        error(codes::kRibInDuplicateSender, loc,
              "two RIB-In entries from announcing router index " +
                  std::to_string(entry.sender));
      }
      check_entry(r, own_as, entry);
    }

    const bool is_origin = own_as == result_.origin && model_.has_as(own_as);
    if (is_origin) {
      const Route* best = state.best_route();
      if (best == nullptr || !best->originated() || best->sender != r) {
        error(codes::kOriginNotOriginating, loc,
              "origin-AS router does not select its self-originated route");
      }
    }
  }

  void check_entry(Model::Dense r, Asn own_as, const Route& entry) {
    const std::string loc = router_loc(model_, r);
    if (entry.sender >= model_.num_routers()) {
      error(codes::kRibInUnknownSender, loc,
            "RIB-In entry from dead router index " +
                std::to_string(entry.sender));
      return;
    }
    const Model::Dense sender = entry.sender;
    if (sender == r) {
      if (own_as != result_.origin || !entry.originated()) {
        error(codes::kRibInUnknownSender, loc,
              "self-announced entry at a non-origin router");
      }
    } else if (entry.ibgp) {
      const bool mate = model_.router_id(sender).asn() == own_as;
      if (!engine_.options().use_ibgp_mesh || !mate) {
        error(codes::kRibInUnknownSender, loc,
              "iBGP entry from " + model_.router_id(sender).str() +
                  " outside an ibgp-mesh AS");
      }
    } else if (!model_.has_session(model_.router_id(r),
                                   model_.router_id(sender))) {
      error(codes::kRibInUnknownSender, loc,
            "entry from " + model_.router_id(sender).str() +
                " without a session");
    }
    // AS-loop freedom: the stored path never revisits an AS and never
    // contains the storing router's own AS.
    std::set<Asn> seen;
    for (Asn hop : entry.path) {
      if (hop == own_as || !seen.insert(hop).second) {
        error(codes::kAsLoop, loc,
              "RIB-In path from " + model_.router_id(sender).str() +
                  " loops through AS " + std::to_string(hop));
        break;
      }
    }
  }

  void check_fixed_point() {
    // Replaying propagation over EVERY session -- including edges that
    // cross out of a compacted view's working set -- doubles as a dynamic
    // soundness check of the working set itself: if a member's best could
    // propagate into a non-member, the non-member's empty RIB-In would
    // report kRibInStale here.
    const topo::PrefixPolicy* policy = model_.find_policy(result_.prefix);
    for (Model::Dense r = 0; r < result_.dense_size(); ++r) {
      const Route* best = result_.state(r).best_route();
      for (Model::Dense peer : model_.peers(r)) {
        if (peer >= result_.dense_size()) continue;  // linter territory
        std::optional<Route> expected;
        if (best != nullptr)
          expected = engine_.propagate(policy, r, peer, *best);
        compare_adjacency(r, peer, /*ibgp=*/false, expected);
      }
      if (engine_.options().use_ibgp_mesh) check_mesh_adjacencies(r);
    }
  }

  void check_mesh_adjacencies(Model::Dense r) {
    const Route* external = result_.state(r).external_route();
    for (Model::Dense mate :
         model_.routers_of(model_.router_id(r).asn())) {
      if (mate == r || mate >= result_.dense_size()) continue;
      std::optional<Route> expected;
      if (external != nullptr) {
        Route shared = *external;
        shared.sender = r;
        shared.ibgp = true;
        shared.igp_cost = engine_.options().use_igp_cost
                              ? model_.igp_cost(mate, r)
                              : 0;
        expected = std::move(shared);
      }
      compare_adjacency(r, mate, /*ibgp=*/true, expected);
    }
  }

  /// The stability core: the stored entry at `to` from announcer `from` must
  /// equal what one more propagation step would deliver right now.
  void compare_adjacency(Model::Dense from, Model::Dense to, bool ibgp,
                         const std::optional<Route>& expected) {
    const RouterState& state = result_.state(to);
    const Route* actual = nullptr;
    for (const Route& entry : state.rib_in) {
      if (entry.sender == from && entry.ibgp == ibgp && from != to) {
        actual = &entry;
        break;
      }
    }
    const std::string loc = "adjacency " + model_.router_id(from).str() +
                            "->" + model_.router_id(to).str();
    if (expected.has_value() && actual == nullptr) {
      error(codes::kRibInStale, loc,
            "announcer's best route is missing from the receiver's RIB-In "
            "(a message is still pending)");
    } else if (!expected.has_value() && actual != nullptr) {
      error(codes::kRibInStale, loc,
            "RIB-In holds a route the announcer would no longer advertise");
    } else if (expected.has_value() && actual != nullptr &&
               !same_attributes(*expected, *actual)) {
      error(codes::kRibInStale, loc,
            "stored route differs from a fresh propagation of the "
            "announcer's best");
    }
  }

  const bgp::Engine& engine_;
  const Model& model_;
  const PrefixSimResult& result_;
  const ConvergenceOptions& options_;
  std::shared_ptr<const bgp::SimContext> ctx_;
  std::span<const std::uint32_t> ids_;
  Diagnostics out_;
};

}  // namespace

Diagnostics check_convergence(const bgp::Engine& engine,
                              const bgp::PrefixSimResult& result,
                              const ConvergenceOptions& options) {
  return Checker(engine, result, options).run();
}

}  // namespace analysis
