#include "analysis/diagnostics.hpp"

#include <cstdio>

namespace analysis {

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

bool has_errors(const Diagnostics& diagnostics) {
  for (const Diagnostic& d : diagnostics)
    if (d.severity == Severity::kError) return true;
  return false;
}

std::size_t count(const Diagnostics& diagnostics, Severity severity) {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics)
    if (d.severity == severity) ++n;
  return n;
}

bool contains_code(const Diagnostics& diagnostics, std::string_view code) {
  for (const Diagnostic& d : diagnostics)
    if (d.code == code) return true;
  return false;
}

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string diagnostics_to_json(std::string_view tool, std::string_view subject,
                                const Diagnostics& diagnostics,
                                std::string_view extra_json) {
  std::string out = "{\"tool\": \"" + json_escape(tool) + "\", \"subject\": \"" +
                    json_escape(subject) + "\", \"errors\": " +
                    std::to_string(count(diagnostics, Severity::kError)) +
                    ", \"warnings\": " +
                    std::to_string(count(diagnostics, Severity::kWarning)) +
                    ", \"diagnostics\": [";
  bool first = true;
  for (const Diagnostic& d : diagnostics) {
    if (!first) out += ", ";
    first = false;
    out += "{\"severity\": \"";
    out += severity_name(d.severity);
    out += "\", \"code\": \"" + json_escape(d.code) + "\", \"location\": \"" +
           json_escape(d.location) + "\", \"message\": \"" +
           json_escape(d.message) + "\"}";
  }
  out += ']';
  if (!extra_json.empty()) {
    out += ", ";
    out += extra_json;
  }
  out += "}\n";
  return out;
}

std::string render_diagnostics(const Diagnostics& diagnostics) {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += severity_name(d.severity);
    out += ' ';
    out += d.code;
    out += ": ";
    if (!d.location.empty()) {
      out += d.location;
      out += ": ";
    }
    out += d.message;
    out += '\n';
  }
  return out;
}

}  // namespace analysis
