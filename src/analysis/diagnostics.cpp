#include "analysis/diagnostics.hpp"

#include <cstdint>

#include "netbase/json.hpp"

namespace analysis {

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

bool has_errors(const Diagnostics& diagnostics) {
  for (const Diagnostic& d : diagnostics)
    if (d.severity == Severity::kError) return true;
  return false;
}

std::size_t count(const Diagnostics& diagnostics, Severity severity) {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics)
    if (d.severity == severity) ++n;
  return n;
}

bool contains_code(const Diagnostics& diagnostics, std::string_view code) {
  for (const Diagnostic& d : diagnostics)
    if (d.code == code) return true;
  return false;
}

std::string diagnostics_to_json(std::string_view tool, std::string_view subject,
                                const Diagnostics& diagnostics,
                                std::string_view extra_json) {
  nb::JsonWriter w;
  w.begin_object();
  w.key("tool").value(tool);
  w.key("subject").value(subject);
  w.key("errors").value(
      static_cast<std::uint64_t>(count(diagnostics, Severity::kError)));
  w.key("warnings").value(
      static_cast<std::uint64_t>(count(diagnostics, Severity::kWarning)));
  w.key("diagnostics").begin_array();
  for (const Diagnostic& d : diagnostics) {
    w.begin_object();
    w.key("severity").value(severity_name(d.severity));
    w.key("code").value(d.code);
    w.key("location").value(d.location);
    w.key("message").value(d.message);
    w.end_object();
  }
  w.end_array();
  // Caller-rendered members spliced verbatim after the array, preserving
  // the historical `..., "extra": ...}` layout.
  if (!extra_json.empty()) w.raw(extra_json);
  w.end_object();
  return w.str() + "\n";
}

std::string render_diagnostics(const Diagnostics& diagnostics) {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += severity_name(d.severity);
    out += ' ';
    out += d.code;
    out += ": ";
    if (!d.location.empty()) {
      out += d.location;
      out += ": ";
    }
    out += d.message;
    out += '\n';
  }
  return out;
}

}  // namespace analysis
