#include "analysis/diagnostics.hpp"

namespace analysis {

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

bool has_errors(const Diagnostics& diagnostics) {
  for (const Diagnostic& d : diagnostics)
    if (d.severity == Severity::kError) return true;
  return false;
}

std::size_t count(const Diagnostics& diagnostics, Severity severity) {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics)
    if (d.severity == severity) ++n;
  return n;
}

bool contains_code(const Diagnostics& diagnostics, std::string_view code) {
  for (const Diagnostic& d : diagnostics)
    if (d.code == code) return true;
  return false;
}

std::string render_diagnostics(const Diagnostics& diagnostics) {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += severity_name(d.severity);
    out += ' ';
    out += d.code;
    out += ": ";
    if (!d.location.empty()) {
      out += d.location;
      out += ": ";
    }
    out += d.message;
    out += '\n';
  }
  return out;
}

}  // namespace analysis
