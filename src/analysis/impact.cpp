#include "analysis/impact.hpp"

#include <algorithm>
#include <deque>
#include <memory>
#include <utility>

#include "analysis/reachability_cache.hpp"

namespace analysis {

using topo::ExportFilter;
using topo::Model;

std::string ModelEdit::str() const {
  switch (kind) {
    case Kind::kSessionDown:
      return "session-down " + a.str() + ":" + b.str();
    case Kind::kPolicyChange:
      return "policy-change " + router.str() + " prefix " + prefix.str() +
             (preferred == nb::kInvalidAsn
                  ? std::string(" clear")
                  : " prefer AS " + std::to_string(preferred));
    case Kind::kFilterEdit:
      return "filter-edit " + a.str() + "->" + b.str() + " prefix " +
             prefix.str() +
             (deny_below_len == 0
                  ? std::string(" remove")
                  : " deny-below " + std::to_string(deny_below_len));
  }
  return "edit";
}

topo::Model apply_edit(const topo::Model& base, const ModelEdit& edit) {
  Model post = base;
  switch (edit.kind) {
    case ModelEdit::Kind::kSessionDown:
      post.remove_session(edit.a, edit.b);
      break;
    case ModelEdit::Kind::kPolicyChange:
      if (!post.has_router(edit.router)) break;
      if (edit.preferred == nb::kInvalidAsn) {
        post.clear_ranking(edit.router, edit.prefix);
      } else {
        post.set_ranking(edit.router, edit.prefix, edit.preferred);
      }
      break;
    case ModelEdit::Kind::kFilterEdit:
      if (!post.has_router(edit.a) || !post.has_router(edit.b)) break;
      if (edit.deny_below_len == 0) {
        if (post.find_policy(edit.prefix) != nullptr) {
          post.policy(edit.prefix)
              .filters.erase(topo::session_key(edit.a, edit.b));
          post.drop_empty_policies();
        }
      } else {
        post.set_export_filter(edit.a, edit.b, edit.prefix,
                               edit.deny_below_len, nb::kInvalidRouterId);
      }
      break;
  }
  return post;
}

namespace {

/// True when the v->u export is kDenyAll for this prefix -- the only filter
/// state that provably transmits NOTHING regardless of route lengths.
bool edge_denied(const Model& model, const topo::PrefixPolicy* policy,
                 Model::Dense v, Model::Dense u) {
  if (policy == nullptr) return false;
  const ExportFilter* filter =
      model.find_export_filter(v, u, policy);
  return filter != nullptr &&
         filter->deny_below_len == ExportFilter::kDenyAll;
}

/// Seed routers of the edit for one prefix, as base-model dense indices.
std::vector<Model::Dense> edit_seeds(const Model& base, const ModelEdit& edit,
                                     const nb::Prefix& prefix) {
  std::vector<Model::Dense> seeds;
  switch (edit.kind) {
    case ModelEdit::Kind::kSessionDown:
      // Affects every prefix; both endpoints lose RIB-In entries directly.
      if (base.has_session(edit.a, edit.b)) {
        seeds.push_back(base.dense(edit.a));
        seeds.push_back(base.dense(edit.b));
      }
      break;
    case ModelEdit::Kind::kPolicyChange:
      if (edit.prefix == prefix && base.has_router(edit.router)) {
        seeds.push_back(base.dense(edit.router));
      }
      break;
    case ModelEdit::Kind::kFilterEdit:
      // The announcer's own selection cannot depend on its export filter;
      // only the receiver's imports change.
      if (edit.prefix == prefix && base.has_router(edit.b) &&
          base.has_session(edit.a, edit.b)) {
        seeds.push_back(base.dense(edit.b));
      }
      break;
  }
  return seeds;
}

}  // namespace

ImpactResult compute_impact(const topo::Model& base, const ModelEdit& edit,
                            const ImpactOptions& options) {
  ImpactResult result;
  const Model post = apply_edit(base, edit);
  const bgp::Engine engine_pre(base, options.engine);
  const bgp::Engine engine_post(post, options.engine);

  std::vector<std::pair<nb::Prefix, nb::Asn>> targets;
  if (!options.origins.empty()) {
    for (const nb::Asn origin : options.origins) {
      targets.emplace_back(nb::Prefix::for_asn(origin), origin);
    }
  } else {
    for (const auto& [prefix, policy] : base.prefix_policies()) {
      if (policy.empty()) continue;
      const nb::Asn origin = derive_origin(base, prefix);
      if (origin != nb::kInvalidAsn) targets.emplace_back(prefix, origin);
    }
  }

  for (const auto& [prefix, origin] : targets) {
    std::vector<Model::Dense> seeds = edit_seeds(base, edit, prefix);
    if (seeds.empty()) continue;  // the edit cannot touch this prefix

    const topo::PrefixPolicy* policy_pre = base.find_policy(prefix);
    const topo::PrefixPolicy* policy_post = post.find_policy(prefix);

    // Reverse-dependence closure: BFS from the seeds over sessions existing
    // in either model, skipping edges kDenyAll-filtered in BOTH (see header
    // for the induction).  Influence is symmetric at the session level -- a
    // selection change at v reaches u over v->u -- so the walk follows each
    // session in the transmitting direction.
    std::vector<char> in_closure(base.num_routers(), 0);
    std::deque<Model::Dense> work;
    for (const Model::Dense s : seeds) {
      if (in_closure[s] == 0) {
        in_closure[s] = 1;
        work.push_back(s);
      }
    }
    auto visit_peers = [&](const Model& model, Model::Dense v) {
      for (const Model::Dense u : model.peers(v)) {
        if (in_closure[u] != 0) continue;
        const bool live_pre =
            base.has_session(base.router_id(v), base.router_id(u)) &&
            !edge_denied(base, policy_pre, v, u);
        const bool live_post =
            post.has_session(post.router_id(v), post.router_id(u)) &&
            !edge_denied(post, policy_post, v, u);
        if (!live_pre && !live_post) continue;
        in_closure[u] = 1;
        work.push_back(u);
      }
    };
    while (!work.empty()) {
      const Model::Dense v = work.front();
      work.pop_front();
      visit_peers(base, v);
      visit_peers(post, v);
    }

    // MAY-set tightening: a changed router holds a route pre or post, so it
    // is may-reachable in at least one of the two worlds.  When enumeration
    // truncates, the incomplete MAY sets cannot exclude anything; fall back
    // to relaxed reachability, which is complete by construction.
    const RouteSpace space_pre =
        build_route_space(engine_pre, prefix, origin, options.space);
    const RouteSpace space_post =
        build_route_space(engine_post, prefix, origin, options.space);
    const bool truncated = space_pre.truncated || space_post.truncated;
    std::shared_ptr<const std::vector<char>> relaxed_pre;
    std::vector<char> relaxed_post;
    if (truncated) {
      // The base model's bound is cacheable across edits (ImpactOptions::
      // cache); the post model is this call's private copy.
      relaxed_pre =
          options.cache != nullptr
              ? options.cache->relaxed(base, prefix, origin)
              : std::make_shared<const std::vector<char>>(
                    relaxed_reachable(base, policy_pre, origin));
      relaxed_post = relaxed_reachable(post, policy_post, origin);
    }
    auto may_hold = [&](Model::Dense r) {
      if (truncated) {
        return (*relaxed_pre)[r] != 0 ||
               relaxed_post[post.dense(base.router_id(r))] != 0;
      }
      return space_pre.may_reach(r) || space_post.may_reach(r);
    };

    PrefixImpact impact;
    impact.prefix = prefix;
    impact.origin = origin;
    impact.truncated = truncated;
    for (Model::Dense r = 0; r < base.num_routers(); ++r) {
      if (in_closure[r] == 0 || !may_hold(r)) continue;
      impact.routers.push_back(base.router_id(r));
    }
    std::sort(impact.routers.begin(), impact.routers.end(),
              [](nb::RouterId x, nb::RouterId y) {
                return x.value() < y.value();
              });
    result.routers_total += impact.routers.size();
    result.truncated |= truncated;
    result.prefixes.push_back(std::move(impact));
  }
  return result;
}

}  // namespace analysis
