#include "analysis/reachability_cache.hpp"

#include "analysis/route_space.hpp"

namespace analysis {

std::shared_ptr<const std::vector<char>> ReachabilityCache::relaxed(
    const topo::Model& model, const nb::Prefix& prefix, nb::Asn origin) {
  const std::uint64_t generation = model.generation();
  const Key key(prefix, origin);
  {
    nb::MutexLock lock(mutex_);
    if (!primed_ || epoch_ != generation) {
      if (primed_) ++stats_.invalidations;
      primed_ = true;
      epoch_ = generation;
      entries_.clear();
    }
    if (auto it = entries_.find(key); it != entries_.end()) {
      ++stats_.hits;
      return it->second;
    }
    ++stats_.misses;
  }

  // Compute outside the lock: the BFS is the expensive part, and concurrent
  // misses on the same key produce identical vectors.
  auto value = std::make_shared<const std::vector<char>>(
      relaxed_reachable(model, model.find_policy(prefix), origin));

  nb::MutexLock lock(mutex_);
  // A mutation may have raced the BFS; a stale result must not be cached
  // (it is still correct for the generation the caller observed, so return
  // it either way).
  if (primed_ && epoch_ == generation) entries_.emplace(key, value);
  return value;
}

ReachabilityCache::Stats ReachabilityCache::stats() const {
  nb::MutexLock lock(mutex_);
  return stats_;
}

}  // namespace analysis
