// Deliberately corrupted models, one per linter failure mode.  Used by
// tests/test_validate.cpp and by `rdtool lint --fixture NAME` (wired into
// ctest as expected-to-fail lint runs), so every diagnostic the linter can
// emit is proven reachable end to end.
//
// Most corruptions are reachable through the public Model API (it validates
// sessions but deliberately not policy keys -- the refinement hot path must
// not pay for lookups it just did).  The two session-level corruptions are
// not constructible publicly; ModelMutator is the declared-friend backdoor
// that plants them.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "topology/model.hpp"

namespace topo {

/// Test-only friend of Model (see the friend declaration in model.hpp).
class ModelMutator {
 public:
  /// Appends a peer entry to `at`'s list without reciprocity, AS checks or
  /// session accounting -- the "dangling session" corruption.
  static void force_peer_entry(Model& model, Model::Dense at,
                               Model::Dense peer) {
    model.routers_[at].peers.push_back(peer);
  }

  /// Establishes a session bypassing the different-AS check -- the
  /// "intra-AS session" (iBGP link) corruption.  Counts are kept
  /// consistent so only the intra-AS diagnostic fires.
  static void force_session(Model& model, nb::RouterId a, nb::RouterId b) {
    const Model::Dense da = model.dense(a), db = model.dense(b);
    model.insert_peer(da, db);
    model.insert_peer(db, da);
    ++model.num_sessions_;
  }
};

}  // namespace topo

namespace analysis {

/// Names accepted by corrupted_fixture, mirroring the linter test matrix:
/// dangling-session, intra-as-session, orphan-ranking, orphan-filter,
/// asymmetric-relationship.
std::vector<std::string_view> fixture_names();

/// Builds the named corrupted model (nullopt for unknown names).  Every
/// fixture starts from the same small valid topology and plants exactly one
/// class of corruption; expected_code names the diagnostic it must trip.
std::optional<topo::Model> corrupted_fixture(std::string_view name);

/// The diagnostic code the named fixture is built to trigger (nullptr for
/// unknown names).
const char* fixture_expected_code(std::string_view name);

/// Names accepted by audit_fixture, mirroring the policy-audit test matrix:
/// bad-gadget, shadowed-filter.  These models lint clean -- their defects are
/// behavioral (divergence risk, dead rules), visible only to `rdtool audit`.
std::vector<std::string_view> audit_fixture_names();

/// Builds the named unsafe/wasteful model (nullopt for unknown names).
/// bad-gadget: the classic three-AS local-pref dispute wheel of
/// Griffin/Wilfong around an origin AS (S500).  shadowed-filter: a chain
/// where a kDenyAll filter upstream starves a later deny-below filter (D601).
std::optional<topo::Model> audit_fixture(std::string_view name);

/// The diagnostic code the named audit fixture must trigger (nullptr for
/// unknown names).
const char* audit_fixture_expected_code(std::string_view name);

}  // namespace analysis
