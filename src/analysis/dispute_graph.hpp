// The dispute digraph of Griffin/Shepherd/Wilfong ("An Analysis of BGP
// Convergence Properties", SIGCOMM'99), built statically from a model's
// per-prefix policies -- no simulation involved.
//
// Nodes are (quasi-router, permitted path) pairs: a path is *permitted* at a
// router when every hop of it survives the model's export rules (valley-free
// classes where enabled, per-prefix deny-below-length filters) and import
// rules (AS-loop rejection).  Permitted paths are enumerated breadth-first
// from the origin through the exact export+import code path of the engine
// (Engine::propagate), so the universe here is by construction the superset
// of every route any simulation of this prefix can ever install.
//
// Arcs encode how one router's choice can destabilize another's:
//
//   * dependence arc (u, vQ) -> (v, Q): u can only hold path vQ while v
//     selects Q (BGP re-advertises best routes only);
//   * dispute arc (u, vQ) -> (v, Q'): v strictly prefers Q' over Q under its
//     import policies (local-pref overrides / relationship classes, path
//     length, MED ranking, router-id tie-break) -- if v gets its way, u
//     loses vQ.
//
// A cycle therefore witnesses a dispute wheel: a ring of routers each of
// whose preferred path requires a neighbor to give up *its* preferred path.
// Models free of such cycles are provably safe (GSW theorem 2); models with
// one can diverge under some message orderings (the BAD GADGET).  The
// fitted models of the paper are safe by construction -- uniform local-pref
// makes every arc strictly decrease path length -- which this analyzer
// proves instead of assumes; ground-truth "weird" local-pref overrides can
// genuinely create wheels, which is exactly what Section 4.6 avoids MED for.
//
// Detection is conservative in both directions of cost: enumeration is
// capped (truncated graphs prove nothing about the paths beyond the cap,
// reported via DisputeGraph::truncated), and a reported cycle is a
// *potential* divergence, not a reproduced one.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/route_space.hpp"
#include "bgp/engine.hpp"
#include "topology/model.hpp"

namespace analysis {

/// The permitted-path universe and its caps live in route_space.hpp; the
/// dispute digraph is a view over that shared enumeration.
using DisputeGraphOptions = RouteSpaceOptions;

struct DisputeGraph {
  enum class ArcKind : std::uint8_t { kDependence, kDispute };

  struct Arc {
    std::size_t to = 0;
    ArcKind kind = ArcKind::kDependence;
  };

  /// One permitted (router, path) pair.  `route` carries the path in RIB-In
  /// form ([announcing AS ... origin], router's own AS excluded) plus the
  /// import attributes of the best-ranked sender producing it -- the
  /// representative used for preference comparisons.
  struct Node {
    topo::Model::Dense router = 0;
    bgp::Route route;
  };

  std::vector<Node> nodes;
  std::vector<std::vector<Arc>> arcs;          // indexed like nodes
  std::vector<std::vector<std::size_t>> by_router;  // dense -> node indices
  std::size_t dispute_arcs = 0;
  bool truncated = false;
};

/// Enumerates the permitted-path universe of (prefix, origin) and builds the
/// dispute digraph over it.  Deterministic: routers and paths are visited in
/// model order.
DisputeGraph build_dispute_graph(const bgp::Engine& engine,
                                 const nb::Prefix& prefix, nb::Asn origin,
                                 const DisputeGraphOptions& options = {});

/// Same digraph over a route space already enumerated with build_route_space
/// (the engine must be the one the space was built from).  Lets callers that
/// need both the route-space abstraction and safety analysis -- policy_audit
/// foremost -- run the BFS once.
DisputeGraph build_dispute_graph(const bgp::Engine& engine,
                                 const RouteSpace& space);

/// A cycle as node indices (first == last omitted); empty when acyclic.
/// Any cycle necessarily crosses a dispute arc: dependence arcs strictly
/// shorten the path, so they cannot close a loop on their own.
std::vector<std::size_t> find_dispute_cycle(const DisputeGraph& graph);

/// "1.0[2 4] -> 2.1[3 4] -> ..." rendering of a cycle for diagnostics.
std::string render_cycle(const topo::Model& model, const DisputeGraph& graph,
                         const std::vector<std::size_t>& cycle);

}  // namespace analysis
