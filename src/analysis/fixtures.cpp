#include "analysis/fixtures.hpp"

#include "analysis/diagnostics.hpp"
#include "topology/as_graph.hpp"

namespace analysis {
namespace {

using nb::Prefix;
using nb::RouterId;
using topo::Model;

/// The shared healthy starting point: a square with one diagonal, one
/// quasi-router per AS (lints clean).
Model base_model() {
  topo::AsGraph graph;
  graph.add_edge(1, 2);
  graph.add_edge(2, 3);
  graph.add_edge(3, 4);
  graph.add_edge(4, 1);
  graph.add_edge(1, 3);
  return Model::one_router_per_as(graph);
}

}  // namespace

std::vector<std::string_view> fixture_names() {
  return {"dangling-session", "intra-as-session", "orphan-ranking",
          "orphan-filter", "asymmetric-relationship"};
}

const char* fixture_expected_code(std::string_view name) {
  if (name == "dangling-session") return codes::kSessionPeerDead;
  if (name == "intra-as-session") return codes::kSessionIntraAs;
  if (name == "orphan-ranking") return codes::kRankingOrphanRouter;
  if (name == "orphan-filter") return codes::kFilterDanglingSession;
  if (name == "asymmetric-relationship")
    return codes::kRelationshipAsymmetric;
  return nullptr;
}

std::optional<topo::Model> corrupted_fixture(std::string_view name) {
  Model model = base_model();
  if (name == "dangling-session") {
    // AS 1's router claims a session with a router index that does not
    // exist (as if its peer had been deleted without cleanup).
    topo::ModelMutator::force_peer_entry(
        model, model.dense(RouterId{1, 0}),
        static_cast<Model::Dense>(model.num_routers() + 7));
    return model;
  }
  if (name == "intra-as-session") {
    // Two quasi-routers of AS 2 connected to each other: the iBGP link the
    // model definition forbids (quasi-routers select independently).
    model.add_router(2);
    topo::ModelMutator::force_session(model, RouterId{2, 0}, RouterId{2, 1});
    return model;
  }
  if (name == "orphan-ranking") {
    // A MED ranking keyed to a router of an AS the model has never seen.
    model.set_ranking(RouterId{99, 0}, Prefix::for_asn(4), 1);
    return model;
  }
  if (name == "orphan-filter") {
    // A filter installed on a live session that is subsequently removed:
    // the policy key now dangles.
    model.set_export_filter(RouterId{1, 0}, RouterId{3, 0},
                            Prefix::for_asn(4), 2, RouterId{3, 0});
    model.remove_session(RouterId{1, 0}, RouterId{3, 0});
    return model;
  }
  if (name == "asymmetric-relationship") {
    // AS 1 calls AS 2 a customer, but AS 2 never calls AS 1 a provider:
    // valley-free export would apply on one side only.
    model.set_neighbor_class(1, 2, topo::NeighborClass::kCustomer);
    return model;
  }
  return std::nullopt;
}

std::vector<std::string_view> audit_fixture_names() {
  return {"bad-gadget", "shadowed-filter"};
}

const char* audit_fixture_expected_code(std::string_view name) {
  if (name == "bad-gadget") return codes::kDisputeWheel;
  if (name == "shadowed-filter") return codes::kFilterShadowed;
  return nullptr;
}

std::optional<topo::Model> audit_fixture(std::string_view name) {
  if (name == "bad-gadget") {
    // BAD GADGET (Griffin/Shepherd/Wilfong): origin AS 4 in the middle of a
    // triangle 1-2-3; each triangle AS local-prefs the route through its
    // clockwise neighbor above its own direct route, so every stable choice
    // of one AS destroys the preferred path of the previous one.
    topo::AsGraph graph;
    graph.add_edge(1, 2);
    graph.add_edge(2, 3);
    graph.add_edge(3, 1);
    graph.add_edge(4, 1);
    graph.add_edge(4, 2);
    graph.add_edge(4, 3);
    Model model = Model::one_router_per_as(graph);
    const Prefix prefix = Prefix::for_asn(4);
    model.set_lp_override(RouterId{1, 0}, prefix, 2, 200);
    model.set_lp_override(RouterId{2, 0}, prefix, 3, 200);
    model.set_lp_override(RouterId{3, 0}, prefix, 1, 200);
    return model;
  }
  if (name == "shadowed-filter") {
    // Chain 1-2-3-4 announcing AS 1's prefix.  The kDenyAll on 2->3 starves
    // everything downstream, so the deny-below filter on 3->4 can never see
    // a route: dead by shadowing.
    topo::AsGraph graph;
    graph.add_edge(1, 2);
    graph.add_edge(2, 3);
    graph.add_edge(3, 4);
    Model model = Model::one_router_per_as(graph);
    const Prefix prefix = Prefix::for_asn(1);
    model.set_export_filter(RouterId{2, 0}, RouterId{3, 0}, prefix,
                            topo::ExportFilter::kDenyAll, RouterId{3, 0});
    model.set_export_filter(RouterId{3, 0}, RouterId{4, 0}, prefix, 2,
                            RouterId{4, 0});
    return model;
  }
  return std::nullopt;
}

}  // namespace analysis
