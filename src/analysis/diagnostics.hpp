// Structured findings emitted by the static-analysis layer (the model
// linter in validate_model and the engine post-state checker in
// check_convergence).  Checks report diagnostics instead of asserting so
// that callers -- tests, the refinement hooks, `rdtool lint` -- decide
// whether a finding is fatal.
//
// Diagnostic codes are stable identifiers (grep for the code to find the
// emitting check).  Numbering groups:
//   M1xx  model structure (sessions, router indexing, relationship table)
//   P2xx  per-prefix policy tables (filters, rankings, overrides, leaks)
//   F3xx  fitted-model invariants (opt-in; refinement-specific closure)
//   C4xx  engine post-state / convergence fixed point
//   S5xx  static safety (policy_audit: dispute-wheel detection)
//   D6xx  dead policies (policy_audit: rules that can never take effect)
//   R7xx  runtime refinement faults (core/refine: oscillation freezes,
//         budget exhaustion, sweep faults, checkpoint errors)
//   A8xx  static route-space analysis (route_space / model_diff: blackholes,
//         enumeration caps, abstract route-set differences)
//
// Every code, its family and its numeric slot are registered in
// codes::kRegistry below; tests/test_diagnostics_registry.cpp asserts the
// table is unique, family-consistent, covers every code emitted anywhere in
// src/, and that each code is documented in DESIGN.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace analysis {

enum class Severity : std::uint8_t {
  kWarning,  // suspicious but cannot corrupt predictions by itself
  kError,    // violates an invariant the engine or refinement relies on
};

const char* severity_name(Severity severity);

struct Diagnostic {
  Severity severity = Severity::kError;
  std::string code;      // stable identifier, e.g. "M102-session-intra-as"
  std::string location;  // model/result coordinates, e.g. "session 12.0->47.1"
  std::string message;   // human explanation of the violated invariant
};

using Diagnostics = std::vector<Diagnostic>;

bool has_errors(const Diagnostics& diagnostics);
std::size_t count(const Diagnostics& diagnostics, Severity severity);
/// True if any diagnostic carries `code`.
bool contains_code(const Diagnostics& diagnostics, std::string_view code);

/// One line per diagnostic: "error M102-session-intra-as: <location>: <msg>".
std::string render_diagnostics(const Diagnostics& diagnostics);

/// Machine-readable rendering shared by `rdtool lint --json` and
/// `rdtool audit --json`:
///   {"tool": <tool>, "subject": <subject>, "errors": N, "warnings": N,
///    "diagnostics": [{"severity","code","location","message"}, ...]}
/// `extra_json`, when non-empty, is spliced verbatim as additional top-level
/// fields (callers pass pre-rendered `"key": value, ...` pairs, e.g.
/// timings), keeping the base schema stable for existing consumers.
std::string diagnostics_to_json(std::string_view tool, std::string_view subject,
                                const Diagnostics& diagnostics,
                                std::string_view extra_json = {});

// ---- stable code registry ---------------------------------------------------

namespace codes {

// Model structure.
inline constexpr const char* kSessionPeerDead = "M100-session-peer-dead";
inline constexpr const char* kSessionAsymmetric = "M101-session-asymmetric";
inline constexpr const char* kSessionIntraAs = "M102-session-intra-as";
inline constexpr const char* kSessionCountMismatch =
    "M103-session-count-mismatch";
inline constexpr const char* kRouterIndexBroken = "M104-router-index-broken";
inline constexpr const char* kPeerOrderBroken = "M105-peer-order-broken";
inline constexpr const char* kRelationshipAsymmetric =
    "M110-relationship-asymmetric";
inline constexpr const char* kRelationshipDangling =
    "M111-relationship-dangling";

// Per-prefix policies.
inline constexpr const char* kFilterDanglingSession =
    "P200-filter-dangling-session";
inline constexpr const char* kFilterOwnerMismatch =
    "P201-filter-owner-mismatch";
inline constexpr const char* kFilterNoop = "P202-filter-noop";
inline constexpr const char* kIgpCostDanglingSession =
    "P203-igp-cost-dangling-session";
inline constexpr const char* kRankingOrphanRouter =
    "P210-ranking-orphan-router";
inline constexpr const char* kRankingNonNeighbor =
    "P211-ranking-non-neighbor";
inline constexpr const char* kDefaultRankingOrphan =
    "P212-default-ranking-orphan";
inline constexpr const char* kLpOverrideOrphan = "P220-lp-override-orphan";
inline constexpr const char* kExportAllowDangling =
    "P230-export-allow-dangling";
inline constexpr const char* kPolicyEmpty = "P240-policy-empty";

// Fitted-model invariants (ValidateOptions opt-ins).
inline constexpr const char* kSessionsNotPairwiseComplete =
    "F300-sessions-not-pairwise-complete";
inline constexpr const char* kNeighborSetDivergence =
    "F301-neighbor-set-divergence";
inline constexpr const char* kModelNotAgnostic = "F302-model-not-agnostic";

// Engine post-state.
inline constexpr const char* kSimStale = "C400-sim-stale";
inline constexpr const char* kSimNotConverged = "C401-sim-not-converged";
inline constexpr const char* kBestIndexInvalid = "C402-best-index-invalid";
inline constexpr const char* kBestNotWinning = "C403-best-not-winning";
inline constexpr const char* kAsLoop = "C404-as-loop";
inline constexpr const char* kRibInDuplicateSender =
    "C405-rib-in-duplicate-sender";
inline constexpr const char* kRibInUnknownSender =
    "C406-rib-in-unknown-sender";
inline constexpr const char* kOriginNotOriginating =
    "C407-origin-not-originating";
inline constexpr const char* kRibInStale = "C408-rib-in-stale";
inline constexpr const char* kBestExternalInvalid =
    "C409-best-external-invalid";

// Static safety (policy_audit / dispute_graph).
inline constexpr const char* kDisputeWheel = "S500-dispute-wheel";
inline constexpr const char* kAuditTruncated = "S501-audit-truncated";
inline constexpr const char* kAuditSkippedPrefix = "S502-audit-skipped-prefix";

// Dead policies (policy_audit).
inline constexpr const char* kFilterNeverBlocks = "D600-filter-never-blocks";
inline constexpr const char* kFilterShadowed = "D601-filter-shadowed";
inline constexpr const char* kRankingDead = "D610-ranking-dead";

// Runtime refinement faults (core/refine).  R700/R701 freeze a prefix at
// its best-matched state and name the suspected dispute wheel (see
// dispute_graph.hpp); R702/R703 report budget exhaustion; R704/R705 report
// faults of the loop machinery itself.
inline constexpr const char* kRefineOscillation = "R700-refine-oscillation";
inline constexpr const char* kEngineDiverged = "R701-engine-diverged";
inline constexpr const char* kPrefixBudgetExhausted =
    "R702-prefix-budget-exhausted";
inline constexpr const char* kWallClockExhausted =
    "R703-wall-clock-exhausted";
inline constexpr const char* kSweepFault = "R704-sweep-fault";
inline constexpr const char* kCheckpointError = "R705-checkpoint-error";
inline constexpr const char* kResumeMismatch = "R706-resume-mismatch";
inline constexpr const char* kFlightDumpError = "R707-flight-dump-error";

// Serve-daemon runtime faults (serve/server; DESIGN.md section 15).  These
// travel in the `code` member of serve protocol responses rather than
// through analysis::Diagnostics: R710 marks a degraded (deadline-truncated)
// answer, R711 a load-shed rejection, R712 a handler fault the worker
// absorbed, R713 a quarantined connection (persistent malformed frames),
// R714 a rejection because the daemon is draining, R715 a malformed or
// unintelligible request.
inline constexpr const char* kServeDeadline = "R710-serve-deadline";
inline constexpr const char* kServeOverload = "R711-serve-overload";
inline constexpr const char* kServeHandlerFault = "R712-serve-handler-fault";
inline constexpr const char* kServeQuarantine = "R713-serve-quarantine";
inline constexpr const char* kServeDraining = "R714-serve-draining";
inline constexpr const char* kServeBadRequest = "R715-serve-bad-request";

// Static route-space analysis (route_space / model_diff).  A800 proves a
// router can never install any route for a prefix; A801 marks the proof
// surface as incomplete (enumeration caps hit); A81x report abstract
// route-set / structural differences found by `rdtool diff`.
inline constexpr const char* kStaticBlackhole = "A800-static-blackhole";
inline constexpr const char* kRouteSpaceTruncated =
    "A801-route-space-truncated";
inline constexpr const char* kRouteSetDiffers = "A810-route-set-differs";
inline constexpr const char* kStructureDiffers = "A811-structure-differs";

// Working-set & shard-plan analysis (workset / partition).  A820 marks a
// prefix whose working set fell back to the relaxed reachability bound
// (MAY enumeration truncated), so its cost estimate is coarse; A821 warns
// that the emitted shard plan exceeds the balanced-load target.  A822
// rejects an externally supplied shard plan whose dataset fingerprint does
// not match the model being refined (the plan's workset indices would be
// mis-mapped); refine_model stops with RefineStop::kFault.
inline constexpr const char* kWorksetRelaxed = "A820-workset-relaxed";
inline constexpr const char* kPlanImbalance = "A821-plan-imbalance";
inline constexpr const char* kPlanFingerprintMismatch =
    "A822-plan-fingerprint-mismatch";

// Single source of truth for every stable diagnostic code.  New codes must
// be added here (and documented in DESIGN.md); tests assert the table is
// duplicate-free, that each entry's family letter matches its hundreds
// digit group, and that every code string emitted from src/ appears here.
inline constexpr const char* kRegistry[] = {
    // M1xx model structure
    kSessionPeerDead, kSessionAsymmetric, kSessionIntraAs,
    kSessionCountMismatch, kRouterIndexBroken, kPeerOrderBroken,
    kRelationshipAsymmetric, kRelationshipDangling,
    // P2xx per-prefix policies
    kFilterDanglingSession, kFilterOwnerMismatch, kFilterNoop,
    kIgpCostDanglingSession, kRankingOrphanRouter, kRankingNonNeighbor,
    kDefaultRankingOrphan, kLpOverrideOrphan, kExportAllowDangling,
    kPolicyEmpty,
    // F3xx fitted-model invariants
    kSessionsNotPairwiseComplete, kNeighborSetDivergence, kModelNotAgnostic,
    // C4xx engine post-state
    kSimStale, kSimNotConverged, kBestIndexInvalid, kBestNotWinning, kAsLoop,
    kRibInDuplicateSender, kRibInUnknownSender, kOriginNotOriginating,
    kRibInStale, kBestExternalInvalid,
    // S5xx static safety
    kDisputeWheel, kAuditTruncated, kAuditSkippedPrefix,
    // D6xx dead policies
    kFilterNeverBlocks, kFilterShadowed, kRankingDead,
    // R7xx runtime refinement faults
    kRefineOscillation, kEngineDiverged, kPrefixBudgetExhausted,
    kWallClockExhausted, kSweepFault, kCheckpointError, kResumeMismatch,
    kFlightDumpError,
    // R71x serve-daemon runtime faults
    kServeDeadline, kServeOverload, kServeHandlerFault, kServeQuarantine,
    kServeDraining, kServeBadRequest,
    // A8xx static route-space analysis
    kStaticBlackhole, kRouteSpaceTruncated, kRouteSetDiffers,
    kStructureDiffers, kWorksetRelaxed, kPlanImbalance,
    kPlanFingerprintMismatch,
};

inline constexpr std::size_t kRegistrySize =
    sizeof(kRegistry) / sizeof(kRegistry[0]);

}  // namespace codes

}  // namespace analysis
