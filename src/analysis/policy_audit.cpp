#include "analysis/policy_audit.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <set>
#include <utility>

#include "analysis/route_space.hpp"
#include "bgp/threadpool.hpp"

namespace analysis {

using topo::ExportFilter;
using topo::Model;

namespace {

constexpr std::size_t kUnreached = std::numeric_limits<std::size_t>::max();

/// BFS from the origin's routers over sessions, skipping edges whose export
/// filter is kDenyAll for this prefix.  dist[r] is a LOWER bound on the
/// AS-hop count of any route r can announce (loop and valley-free
/// constraints, ignored here, only lengthen real paths), and kUnreached
/// routers provably never hold a route for the prefix.
std::vector<std::size_t> relaxed_distances(const Model& model,
                                           const topo::PrefixPolicy& policy,
                                           nb::Asn origin) {
  std::vector<std::size_t> dist(model.num_routers(), kUnreached);
  std::deque<Model::Dense> queue;
  for (const Model::Dense r : model.routers_of(origin)) {
    dist[r] = 0;
    queue.push_back(r);
  }
  while (!queue.empty()) {
    const Model::Dense v = queue.front();
    queue.pop_front();
    for (const Model::Dense u : model.peers(v)) {
      if (dist[u] != kUnreached) continue;
      const auto it = policy.filters.find(
          topo::session_key(model.router_id(v), model.router_id(u)));
      if (it != policy.filters.end() &&
          it->second.deny_below_len == ExportFilter::kDenyAll) {
        continue;
      }
      dist[u] = dist[v] + 1;
      queue.push_back(u);
    }
  }
  return dist;
}

/// D6xx-dead rules of one prefix overlay, as policy-map keys.
struct DeadRules {
  std::vector<std::uint64_t> filters_never_block;  // D600 session keys
  std::vector<std::uint64_t> filters_shadowed;     // D601 session keys
  std::vector<std::uint32_t> rankings;             // D610 router id values
};

/// Dead rules against the exact permitted-path universe.  Tighter than the
/// relaxed BFS in every direction -- valley-free export, AS-loop rejection
/// and deny-below filters all shrink the MAY sets -- and still sound: a rule
/// that cannot fire against the complete universe cannot fire in any
/// simulation.  Requires !space.truncated.
DeadRules find_dead_rules_exact(const Model& model,
                                const topo::PrefixPolicy& policy,
                                const RouteSpace& space) {
  DeadRules dead;
  for (const auto& [key, filter] : policy.filters) {
    const nb::RouterId from =
        nb::RouterId::from_value(static_cast<std::uint32_t>(key >> 32));
    if (!model.has_router(from)) continue;  // linter territory (P200)
    const Model::Dense announcer = model.dense(from);
    if (!space.may_reach(announcer)) {
      dead.filters_shadowed.push_back(key);
    } else if (filter.deny_below_len != ExportFilter::kDenyAll &&
               space.min_announced_len(announcer) >= filter.deny_below_len) {
      // Every permitted arriving path is at least as long as the announcer's
      // shortest selectable route plus its own AS.
      dead.filters_never_block.push_back(key);
    }
  }

  for (const auto& [router_value, rule] : policy.rankings) {
    const nb::RouterId router = nb::RouterId::from_value(router_value);
    if (!model.has_router(router)) continue;  // linter territory (P210)
    const Model::Dense r = model.dense(router);
    // A per-prefix ranking masks the default one (the engine consults the
    // default only when no per-prefix rule exists), so removing a dead rule
    // here would un-mask it and change behavior.
    if (model.default_ranking(r) != nb::kInvalidAsn) continue;
    // Live iff some permitted route AT the router was announced by the
    // preferred AS (path head = announcing AS) -- the exact condition for
    // the MED rewrite to ever fire.
    bool preferred_can_announce = false;
    for (const std::size_t id : space.by_router[r]) {
      const std::vector<nb::Asn>& path = space.nodes[id].route.path;
      if (!path.empty() && path.front() == rule.preferred_neighbor) {
        preferred_can_announce = true;
        break;
      }
    }
    if (!preferred_can_announce) dead.rankings.push_back(router_value);
  }

  std::sort(dead.filters_never_block.begin(), dead.filters_never_block.end());
  std::sort(dead.filters_shadowed.begin(), dead.filters_shadowed.end());
  std::sort(dead.rankings.begin(), dead.rankings.end());
  return dead;
}

/// find_dead_rules_exact when the enumeration completed, else the PR 2
/// relaxed-BFS bounds (sound on truncated spaces precisely because they
/// ignore the constraints the enumeration ran out of budget exploring).
DeadRules find_dead_rules(const Model& model, const topo::PrefixPolicy& policy,
                          nb::Asn origin, const RouteSpace& space) {
  if (!space.truncated) return find_dead_rules_exact(model, policy, space);

  DeadRules dead;
  const std::vector<std::size_t> dist =
      relaxed_distances(model, policy, origin);

  for (const auto& [key, filter] : policy.filters) {
    const nb::RouterId from =
        nb::RouterId::from_value(static_cast<std::uint32_t>(key >> 32));
    if (!model.has_router(from)) continue;  // linter territory (P200)
    const std::size_t from_dist = dist[model.dense(from)];
    if (from_dist == kUnreached) {
      dead.filters_shadowed.push_back(key);
    } else if (filter.deny_below_len != ExportFilter::kDenyAll &&
               from_dist + 1 >= filter.deny_below_len) {
      // Every arriving path carries >= dist(announcer)+1 AS hops.
      dead.filters_never_block.push_back(key);
    }
  }

  for (const auto& [router_value, rule] : policy.rankings) {
    const nb::RouterId router = nb::RouterId::from_value(router_value);
    if (!model.has_router(router)) continue;  // linter territory (P210)
    const Model::Dense r = model.dense(router);
    if (model.default_ranking(r) != nb::kInvalidAsn) continue;
    bool preferred_can_announce = false;
    for (const Model::Dense p : model.peers(r)) {
      if (model.router_id(p).asn() == rule.preferred_neighbor &&
          dist[p] != kUnreached) {
        preferred_can_announce = true;
        break;
      }
    }
    if (!preferred_can_announce) dead.rankings.push_back(router_value);
  }

  std::sort(dead.filters_never_block.begin(), dead.filters_never_block.end());
  std::sort(dead.filters_shadowed.begin(), dead.filters_shadowed.end());
  std::sort(dead.rankings.begin(), dead.rankings.end());
  return dead;
}

std::string session_str(std::uint64_t key) {
  return nb::RouterId::from_value(static_cast<std::uint32_t>(key >> 32)).str() +
         "->" + nb::RouterId::from_value(static_cast<std::uint32_t>(key)).str();
}

/// The (prefix, origin) pairs to audit, with S502 for underivable overlays.
std::vector<std::pair<nb::Prefix, nb::Asn>> audit_targets(
    const Model& model, const AuditOptions& options, Diagnostics* out) {
  std::vector<std::pair<nb::Prefix, nb::Asn>> targets;
  if (!options.origins.empty()) {
    for (const nb::Asn origin : options.origins) {
      targets.emplace_back(nb::Prefix::for_asn(origin), origin);
    }
    return targets;
  }
  for (const auto& [prefix, policy] : model.prefix_policies()) {
    if (policy.empty()) continue;
    const nb::Asn origin = derive_origin(model, prefix);
    if (origin == nb::kInvalidAsn) {
      if (out != nullptr) {
        out->push_back({Severity::kWarning, codes::kAuditSkippedPrefix,
                        "prefix " + prefix.str(),
                        "cannot derive an origin AS for this policy overlay; "
                        "prefix not audited"});
      }
      continue;
    }
    targets.emplace_back(prefix, origin);
  }
  return targets;
}

/// Everything one target's audit produces; built independently per prefix so
/// the targets can fan across threads, merged serially in target order.
struct TargetOutcome {
  Diagnostics diags;
  PrefixAuditStats stats;
  std::size_t dead_filters = 0;
  std::size_t dead_rankings = 0;
  std::size_t unreachable_routers = 0;
};

TargetOutcome audit_one(const Model& model, const bgp::Engine& engine,
                        const AuditOptions& options, const nb::Prefix& prefix,
                        nb::Asn origin) {
  TargetOutcome out;
  PrefixAuditStats& stats = out.stats;
  stats.prefix = prefix;
  stats.origin = origin;
  const std::string where = "prefix " + prefix.str();

  // One BFS feeds every pass: dead rules, blackholes, safety, diversity.
  const RouteSpace space =
      build_route_space(engine, prefix, origin, options.graph);
  stats.permitted_paths = space.nodes.size();
  stats.truncated = space.truncated;

  if (options.check_dead) {
    if (const topo::PrefixPolicy* policy = model.find_policy(prefix)) {
      const DeadRules dead = find_dead_rules(model, *policy, origin, space);
      for (const std::uint64_t key : dead.filters_never_block) {
        out.diags.push_back(
            {Severity::kWarning, codes::kFilterNeverBlocks,
             where + " filter " + session_str(key),
             "deny_below_len " +
                 std::to_string(policy->filters.at(key).deny_below_len) +
                 " can never match: every permitted arriving path is at "
                 "least that long"});
      }
      for (const std::uint64_t key : dead.filters_shadowed) {
        out.diags.push_back(
            {Severity::kWarning, codes::kFilterShadowed,
             where + " filter " + session_str(key),
             "announcer is cut off from the origin by kDenyAll filters; "
             "this filter can never see a route"});
      }
      for (const std::uint32_t router_value : dead.rankings) {
        const nb::RouterId router = nb::RouterId::from_value(router_value);
        out.diags.push_back(
            {Severity::kWarning, codes::kRankingDead,
             where + " ranking at " + router.str(),
             "preferred neighbor AS " +
                 std::to_string(
                     policy->rankings.at(router_value).preferred_neighbor) +
                 " can never announce this prefix to the router"});
      }
      out.dead_filters +=
          dead.filters_never_block.size() + dead.filters_shadowed.size();
      out.dead_rankings += dead.rankings.size();
    }
  }

  if (options.check_blackholes) {
    // Emits A801 when truncated; the S501 below already covers that for the
    // safety/diversity passes, so skip the duplicate.
    if (!space.truncated || !(options.check_safety || options.compute_diversity)) {
      out.unreachable_routers += report_blackholes(model, space, out.diags);
    }
    stats.unreachable_routers = out.unreachable_routers;
  }

  if (options.check_safety || options.compute_diversity) {
    if (space.truncated) {
      out.diags.push_back(
          {Severity::kWarning, codes::kAuditTruncated, where,
           "permitted-path enumeration hit a cap (" +
               std::to_string(space.nodes.size()) +
               " nodes kept); safety and diversity results are partial"});
    }
    if (options.check_safety) {
      const DisputeGraph graph = build_dispute_graph(engine, space);
      stats.dispute_arcs = graph.dispute_arcs;
      const std::vector<std::size_t> cycle = find_dispute_cycle(graph);
      if (!cycle.empty()) {
        stats.wheel = true;
        out.diags.push_back(
            {Severity::kError, codes::kDisputeWheel, where,
             "potential dispute wheel (BAD GADGET): " +
                 render_cycle(model, graph, cycle)});
      }
    }
    if (options.compute_diversity) {
      std::map<nb::Asn, std::set<std::vector<nb::Asn>>> paths_by_as;
      for (const RouteSpace::Node& node : space.nodes) {
        paths_by_as[model.router_id(node.router).asn()].insert(
            node.route.path);
      }
      for (const auto& [asn, paths] : paths_by_as) {
        stats.diversity_bound[asn] = paths.size();
      }
    }
  }
  return out;
}

}  // namespace

AuditResult audit_model(const topo::Model& model, const AuditOptions& options) {
  AuditResult result;
  const bgp::Engine engine(model, options.engine);
  const std::vector<std::pair<nb::Prefix, nb::Asn>> targets =
      audit_targets(model, options, &result.diagnostics);

  // The per-target passes are read-only over the model and independent of
  // each other, so they fan across the pool; outcomes land in slots and
  // merge below in target order, keeping the result thread-count invariant.
  std::vector<TargetOutcome> outcomes(targets.size());
  engine.context();  // build the shared epoch snapshot once, not per worker
  bgp::ThreadPool pool(options.threads);
  pool.parallel_for(targets.size(), [&](std::size_t i) {
    outcomes[i] = audit_one(model, engine, options, targets[i].first,
                            targets[i].second);
  });

  for (TargetOutcome& out : outcomes) {
    std::move(out.diags.begin(), out.diags.end(),
              std::back_inserter(result.diagnostics));
    result.dead_filters += out.dead_filters;
    result.dead_rankings += out.dead_rankings;
    result.unreachable_routers += out.unreachable_routers;
    result.truncated |= out.stats.truncated;
    if (out.stats.wheel) ++result.wheels;
    result.prefixes.push_back(std::move(out.stats));
  }
  return result;
}

PruneResult prune_dead_policies(topo::Model& model,
                                const AuditOptions& options) {
  PruneResult result;
  const std::vector<std::pair<nb::Prefix, nb::Asn>> targets =
      audit_targets(model, options, nullptr);

  // The exact dead-rule bounds need the permitted-path universe, which
  // needs an engine view of the model; removals bump the model generation,
  // so the engine re-snapshots between prefixes automatically.
  const bgp::Engine engine(model, options.engine);
  for (const auto& [prefix, origin] : targets) {
    topo::PrefixPolicy* policy = nullptr;
    // audit_targets only returns prefixes that already carry an overlay, so
    // Model::policy never creates one here.
    if (model.find_policy(prefix) == nullptr) continue;
    const RouteSpace space =
        build_route_space(engine, prefix, origin, options.graph);
    policy = &model.policy(prefix);
    const DeadRules dead = find_dead_rules(model, *policy, origin, space);
    for (const std::uint64_t key : dead.filters_never_block) {
      result.filters_removed += policy->filters.erase(key);
    }
    for (const std::uint64_t key : dead.filters_shadowed) {
      result.filters_removed += policy->filters.erase(key);
    }
    for (const std::uint32_t router_value : dead.rankings) {
      result.rankings_removed += policy->rankings.erase(router_value);
    }
  }
  result.policies_dropped = model.drop_empty_policies();
  return result;
}

}  // namespace analysis
