// Static model diff: do two models route the same way -- without simulating
// either?
//
// Structural pass (A811): routers or sessions present in exactly one model.
// Semantic pass (A810): per analyzed prefix, the per-router abstract route
// sets -- each permitted path with the import attributes (local-pref, MED,
// IGP cost) of its best-ranked sender, from route_space.hpp -- are compared
// between the models; routers whose sets differ are reported.
//
// Equal abstract sets mean equal simulations: Engine::run only ever installs
// routes from the permitted universe, and selection is a deterministic
// function of the installed candidates' attributes.  Differences in inputs
// that matter (relationship classes, IGP costs, filters, rankings,
// local-pref overrides) all surface through the enumerated paths or their
// attributes, so they need no structural rules of their own.  Two caveats,
// inherited from the representative-attribute abstraction: (1) attributes
// are those of the best-ranked SENDER of each path -- a model pair whose
// sets differ only in non-best senders of the same path compares equal (the
// engine would never install those senders' copies anyway, but the RIB-In
// contents can differ); (2) on truncated enumerations (A801) equality of
// the enumerated portion proves nothing about the remainder, so the prefix
// is flagged rather than claimed equivalent -- identical models still
// compare clean because the enumeration is deterministic.
//
// A model diffed against itself reports zero differences (enforced in CI).
#pragma once

#include <cstddef>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/route_space.hpp"
#include "bgp/engine.hpp"
#include "topology/model.hpp"

namespace analysis {

struct DiffOptions {
  /// Engine interpretation per side (a ground-truth model wants
  /// relationship policies + IGP costs; a fitted one wants the defaults).
  bgp::EngineOptions engine_a;
  bgp::EngineOptions engine_b;
  RouteSpaceOptions space;

  /// Worker threads for the per-prefix comparison (0 = hardware
  /// concurrency); results merge in target order, thread-count invariant.
  unsigned threads = 1;

  /// Origin ASes to compare (prefix = Prefix::for_asn).  Empty: derive one
  /// origin per policy overlay found in EITHER model; overlays with no
  /// derivable origin are skipped (counted, not reported -- a self-diff
  /// must stay empty).
  std::vector<nb::Asn> origins;
};

struct PrefixDiff {
  nb::Prefix prefix;
  nb::Asn origin = nb::kInvalidAsn;
  /// Routers (present in both models) whose abstract route sets differ,
  /// ascending by router id.
  std::vector<nb::RouterId> routers;
  bool truncated = false;  // either side hit an enumeration cap (A801)
};

struct DiffResult {
  /// A811 structural findings, then per-prefix A810/A801 in target order.
  Diagnostics diagnostics;
  /// Only prefixes with differing routers or truncation.
  std::vector<PrefixDiff> prefixes;
  std::size_t prefixes_compared = 0;
  std::size_t prefixes_skipped = 0;   // no derivable origin
  std::size_t routers_differing = 0;  // A810 total across prefixes
  std::size_t structure_findings = 0;  // A811 count
  bool truncated = false;

  /// No observable difference found.  Truncation does not break identity
  /// (deterministic enumeration) but does weaken it to the enumerated
  /// universe; callers needing a proof must also check !truncated.
  bool identical() const {
    return routers_differing == 0 && structure_findings == 0;
  }
};

DiffResult diff_models(const topo::Model& a, const topo::Model& b,
                       const DiffOptions& options = {});

}  // namespace analysis
