// Engine post-state checker: proves a PrefixSimResult is a genuine BGP
// fixed point of the model it was computed from (diagnostic codes C4xx).
//
// What "converged" must mean for the steady-state engine (and what this
// checker verifies, without trusting the engine's own bookkeeping):
//
//   * the dirty queue drained below the message cap (converged flag);
//   * every installed best route wins the decision process against every
//     current Adj-RIB-In candidate at its router (select_best replay);
//   * no installed route's AS-path loops through the storing router's AS or
//     revisits an AS;
//   * Adj-RIB-In is well-formed: at most one entry per announcing router,
//     every sender is a live session peer (or self at the origin, or an
//     AS-mate in ibgp-mesh mode), origin routers select their originated
//     route;
//   * stability ("empty dirty queue"): replaying one propagation step over
//     every session -- Engine::propagate on the announcer's best route --
//     reproduces exactly the receiver's stored Adj-RIB-In entry, i.e. no
//     message could still change any RIB.
//
// The checks run on the engine's public surface only, so they remain valid
// as the engine gains optimizations (this is the regression tripwire for
// the parallel/incremental work the roadmap plans).
#pragma once

#include "analysis/diagnostics.hpp"
#include "bgp/engine.hpp"

namespace analysis {

struct ConvergenceOptions {
  /// Replay export+import over every session and compare against the stored
  /// Adj-RIB-In (the expensive part, O(sessions); on in tests).
  bool check_fixed_point = true;
};

/// Checks `result` against the engine's CURRENT model; if the model was
/// mutated after the simulation, C400-sim-stale is reported and the
/// remaining checks are skipped.
Diagnostics check_convergence(const bgp::Engine& engine,
                              const bgp::PrefixSimResult& result,
                              const ConvergenceOptions& options = {});

}  // namespace analysis
