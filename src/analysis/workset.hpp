// Static per-prefix working sets: a sound over-approximation of the
// routers a full simulation of (prefix, origin) can ever activate, plus
// the static cost model built on top of it (partition.hpp consumes both).
//
// Soundness argument.  Engine::run activates (pops off the dirty queue)
// exactly: the origin's routers, and routers whose route selection changed
// after an import event.  A selection change requires an Adj-RIB-In
// insert, replace or withdrawal, each of which requires a SUCCESSFUL
// import at some point in the run -- so every activated router holds a
// permitted route at some time, i.e. its MAY set (route_space.hpp) is
// non-empty.  Therefore
//
//     activated(run)  SUBSETOF  { r : MAY(r) != empty }  UNION  origin,
//
// and since origin routers trivially have non-empty MAY sets (the
// originated route), the MAY-non-empty set IS a working set -- when the
// enumeration completes.  When it truncates, the incomplete MAY sets can
// exclude nothing; the analyzer degrades to relaxed_reachable (complete
// by construction, strictly contains the true MAY-reachable set) and
// flags the prefix A820.  Under the iBGP mesh option, AS-mates of a
// reachable router additionally receive its pushed external best without
// any eBGP import of their own, so both bounds are closed under AS
// membership in that mode.
//
// The bound is static: it never depends on runtime refinement state, so
// prefixes frozen by the oscillation guard (R700) or stopped by budgets
// (R702/R703) report the same sound set as healthy ones.
//
// tests/test_workset.cpp enforces the subset relation dynamically
// (activated flags from Engine::run vs these sets) across generated
// topologies and under fault injection, the same way test_impact.cpp
// gates the impact closure.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/route_space.hpp"
#include "bgp/engine.hpp"

namespace analysis {

class ReachabilityCache;

struct WorksetOptions {
  /// Enumeration caps for the exact MAY pass.
  RouteSpaceOptions space;
  /// Attempt the exact MAY enumeration first; false skips straight to the
  /// relaxed bound (cheaper, coarser -- every prefix reports A820).
  bool exact = true;
};

struct PrefixWorkset {
  nb::Prefix prefix;
  nb::Asn origin = nb::kInvalidAsn;
  /// Dense-indexed membership flags (size == model.num_routers()).
  std::vector<char> members;
  /// Member count (popcount of `members`).
  std::size_t size = 0;
  /// True when the set is the relaxed reachability bound (MAY enumeration
  /// truncated or skipped); the cost estimate is coarse (A820).
  bool relaxed = false;
  /// Static bound on messages a sweep of this prefix processes.  Exact:
  /// per member, degree x number of distinct permitted paths it can
  /// announce.  Relaxed: per member out-edge, the per-router enumeration
  /// cap attenuated by the edge's export-filter threshold (a deny-below-d
  /// filter passes only lengths >= d of the plausible 1..max_path_length,
  /// kDenyAll passes none) -- filters are per prefix, so relaxed costs
  /// still rank prefixes even when every working set is the same full
  /// component.  Not a guarantee -- the engine's divergence cap is -- but
  /// a monotone workload estimate.
  std::uint64_t bounded_messages = 0;
  /// Planner cost: working-set size x bounded message count.
  std::uint64_t cost = 0;

  bool contains(topo::Model::Dense r) const { return members[r] != 0; }
};

/// Computes the working set of (prefix, origin) against the engine's model
/// and options.  `cache`, when non-null, serves/stores the relaxed bound
/// (only consulted when the exact pass truncates or is disabled).  `diags`,
/// when non-null, receives one A820 warning per relaxed fallback.
PrefixWorkset compute_working_set(const bgp::Engine& engine,
                                  const nb::Prefix& prefix, nb::Asn origin,
                                  const WorksetOptions& options = {},
                                  ReachabilityCache* cache = nullptr,
                                  Diagnostics* diags = nullptr);

/// Working sets for every prefix the refinement sweep simulates: one
/// Prefix::for_asn(asn) per AS of the model, in ascending AS order.
std::vector<PrefixWorkset> compute_all_worksets(
    const bgp::Engine& engine, const WorksetOptions& options = {},
    ReachabilityCache* cache = nullptr, Diagnostics* diags = nullptr);

}  // namespace analysis
