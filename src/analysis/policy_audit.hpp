// Static per-prefix policy auditor (no simulation): proves safety via the
// dispute digraph, finds dead policies, and bounds route diversity.
//
// Three passes over Model + PrefixPolicy, all purely static:
//
//  1. SAFETY (S5xx).  Builds the dispute digraph (see dispute_graph.hpp) per
//     audited prefix and reports a cycle -- a potential dispute wheel -- as
//     S500 with the offending router/path ring in the message.  Acyclic
//     digraphs prove the prefix converges under every message ordering;
//     cycles are conservative (the GSW theorem is one-directional), which is
//     the right polarity for a gate that runs before expensive simulation.
//
//  2. DEAD POLICIES (D6xx).  Rules that provably never take effect:
//       D600  a deny-below-length filter no permitted arriving path can
//             match (the announcer's shortest selectable route already meets
//             the threshold);
//       D601  a filter on a session whose announcer can never hold a route
//             for the prefix (empty MAY set);
//       D610  a ranking whose preferred neighbor AS can never announce to
//             the router (no permitted route at the router is headed by that
//             AS) -- only reported when the router has no default ranking,
//             because a per-prefix ranking MASKS the default one even when
//             its preferred AS is dead.
//     Reachability and length bounds come from the exact permitted-path
//     universe (route_space.hpp) when its enumeration completes -- valley-
//     free export, AS-loop rejection and deny-below filters all credited --
//     and fall back to the PR 2 relaxed-BFS lower bounds when a cap was hit
//     (those ignore exactly the constraints the enumeration ran out of
//     budget exploring, so they stay sound on the truncated remainder).
//     Either way a reported rule cannot fire in any simulation, so
//     prune_dead_policies removes exactly the reported rules --
//     behavior-preserving -- and fitted models ship minimal.
//
//  2b. BLACKHOLES (A800, opt-in via check_blackholes).  Routers whose MAY
//     set is empty can never install any route for the audited prefix; see
//     route_space.hpp for the soundness argument and the truncation
//     behavior (A801 instead of claims).
//
//  3. DIVERSITY BOUNDS.  The dispute-graph node universe doubles as a static
//     ceiling on route diversity: the number of distinct permitted AS-paths
//     across an AS's quasi-routers bounds what any simulation -- and hence
//     any refinement -- can make that AS observe.  Reported per prefix so
//     validation numbers can be read against the achievable maximum.
#pragma once

#include <map>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/dispute_graph.hpp"
#include "bgp/engine.hpp"
#include "topology/model.hpp"

namespace analysis {

struct AuditOptions {
  /// How to interpret the model (relationship policies, IGP costs) -- pass
  /// GroundTruth::engine_options() for ground-truth models, defaults for
  /// fitted ones.
  bgp::EngineOptions engine;
  DisputeGraphOptions graph;

  bool check_safety = true;
  bool check_dead = true;
  bool compute_diversity = true;
  /// Report statically unreachable routers per audited prefix (A800).
  /// Opt-in: ground-truth models legitimately strand routers behind
  /// kDenyAll business filters, so blackholes are findings only where a
  /// reachability expectation exists (fitted-model validation, diffs).
  bool check_blackholes = false;

  /// Worker threads for the per-prefix audit passes (0 = hardware
  /// concurrency).  Prefixes are audited independently and findings merge in
  /// target order, so the result is identical for every thread count.
  unsigned threads = 1;

  /// Origin ASes to audit (prefix = Prefix::for_asn).  Empty: derive one
  /// origin per per-prefix policy overlay from the for_asn convention;
  /// overlays whose prefix does not match any AS are skipped with S502.
  std::vector<nb::Asn> origins;
};

/// Per-prefix audit outcome (diagnostics aside).
struct PrefixAuditStats {
  nb::Prefix prefix;
  nb::Asn origin = nb::kInvalidAsn;
  std::size_t permitted_paths = 0;  // route-space nodes (MAY-set total)
  std::size_t dispute_arcs = 0;     // only populated when check_safety
  /// Statically unreachable routers (A800); only when check_blackholes.
  std::size_t unreachable_routers = 0;
  bool truncated = false;
  bool wheel = false;
  /// Static diversity ceiling: AS -> distinct permitted AS-paths across its
  /// quasi-routers.  Empty unless compute_diversity.
  std::map<nb::Asn, std::size_t> diversity_bound;
};

struct AuditResult {
  Diagnostics diagnostics;
  std::vector<PrefixAuditStats> prefixes;
  std::size_t wheels = 0;         // S500 count
  std::size_t dead_filters = 0;   // D600 + D601
  std::size_t dead_rankings = 0;  // D610
  std::size_t unreachable_routers = 0;  // A800 total across prefixes
  bool truncated = false;         // any prefix hit an enumeration cap
};

AuditResult audit_model(const topo::Model& model,
                        const AuditOptions& options = {});

struct PruneResult {
  std::size_t filters_removed = 0;
  std::size_t rankings_removed = 0;
  std::size_t policies_dropped = 0;  // overlays left empty by the pruning

  std::size_t rules_removed() const {
    return filters_removed + rankings_removed;
  }
};

/// Removes every D6xx-dead rule the audit reports (and then empty policy
/// overlays).  Safe by construction: only rules proven unable to fire are
/// touched, so simulation results -- and hence path reproducibility -- are
/// unchanged.  Overlays whose prefix has no derivable origin are left alone.
PruneResult prune_dead_policies(topo::Model& model,
                                const AuditOptions& options = {});

}  // namespace analysis
