// Static per-prefix policy auditor (no simulation): proves safety via the
// dispute digraph, finds dead policies, and bounds route diversity.
//
// Three passes over Model + PrefixPolicy, all purely static:
//
//  1. SAFETY (S5xx).  Builds the dispute digraph (see dispute_graph.hpp) per
//     audited prefix and reports a cycle -- a potential dispute wheel -- as
//     S500 with the offending router/path ring in the message.  Acyclic
//     digraphs prove the prefix converges under every message ordering;
//     cycles are conservative (the GSW theorem is one-directional), which is
//     the right polarity for a gate that runs before expensive simulation.
//
//  2. DEAD POLICIES (D6xx).  Rules that provably never take effect:
//       D600  a deny-below-length filter no permitted arriving path can
//             match (the announcer's static shortest distance to the origin
//             already meets the threshold);
//       D601  a filter on a session whose announcer can never hold a route
//             for the prefix (every inbound avenue crossed a kDenyAll);
//       D610  a ranking whose preferred neighbor AS can never announce to
//             the router (no session to that AS, or the AS itself is cut off
//             from the origin) -- only reported when the router has no
//             default ranking, because a per-prefix ranking MASKS the
//             default one even when its preferred AS is dead.
//     Distance/reachability arguments use BFS lower bounds that ignore
//     AS-loop and valley-free constraints, so every report is sound (the
//     real permitted universe is a subset of the relaxed one); shadowing by
//     deny-below filters is deliberately not credited, keeping D600/D601
//     independent of filter evaluation order.  prune_dead_policies removes
//     exactly the reported rules -- behavior-preserving by the same
//     arguments -- so fitted models ship minimal.
//
//  3. DIVERSITY BOUNDS.  The dispute-graph node universe doubles as a static
//     ceiling on route diversity: the number of distinct permitted AS-paths
//     across an AS's quasi-routers bounds what any simulation -- and hence
//     any refinement -- can make that AS observe.  Reported per prefix so
//     validation numbers can be read against the achievable maximum.
#pragma once

#include <map>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/dispute_graph.hpp"
#include "bgp/engine.hpp"
#include "topology/model.hpp"

namespace analysis {

struct AuditOptions {
  /// How to interpret the model (relationship policies, IGP costs) -- pass
  /// GroundTruth::engine_options() for ground-truth models, defaults for
  /// fitted ones.
  bgp::EngineOptions engine;
  DisputeGraphOptions graph;

  bool check_safety = true;
  bool check_dead = true;
  bool compute_diversity = true;

  /// Worker threads for the per-prefix audit passes (0 = hardware
  /// concurrency).  Prefixes are audited independently and findings merge in
  /// target order, so the result is identical for every thread count.
  unsigned threads = 1;

  /// Origin ASes to audit (prefix = Prefix::for_asn).  Empty: derive one
  /// origin per per-prefix policy overlay from the for_asn convention;
  /// overlays whose prefix does not match any AS are skipped with S502.
  std::vector<nb::Asn> origins;
};

/// Per-prefix audit outcome (diagnostics aside).
struct PrefixAuditStats {
  nb::Prefix prefix;
  nb::Asn origin = nb::kInvalidAsn;
  std::size_t permitted_paths = 0;  // dispute-graph nodes
  std::size_t dispute_arcs = 0;
  bool truncated = false;
  bool wheel = false;
  /// Static diversity ceiling: AS -> distinct permitted AS-paths across its
  /// quasi-routers.  Empty unless compute_diversity.
  std::map<nb::Asn, std::size_t> diversity_bound;
};

struct AuditResult {
  Diagnostics diagnostics;
  std::vector<PrefixAuditStats> prefixes;
  std::size_t wheels = 0;         // S500 count
  std::size_t dead_filters = 0;   // D600 + D601
  std::size_t dead_rankings = 0;  // D610
  bool truncated = false;         // any prefix hit an enumeration cap
};

AuditResult audit_model(const topo::Model& model,
                        const AuditOptions& options = {});

struct PruneResult {
  std::size_t filters_removed = 0;
  std::size_t rankings_removed = 0;
  std::size_t policies_dropped = 0;  // overlays left empty by the pruning

  std::size_t rules_removed() const {
    return filters_removed + rankings_removed;
  }
};

/// Removes every D6xx-dead rule the audit reports (and then empty policy
/// overlays).  Safe by construction: only rules proven unable to fire are
/// touched, so simulation results -- and hence path reproducibility -- are
/// unchanged.  Overlays whose prefix has no derivable origin are left alone.
PruneResult prune_dead_policies(topo::Model& model,
                                const AuditOptions& options = {});

}  // namespace analysis
