// Generation-keyed cache for relaxed_reachable (route_space.hpp).
//
// The relaxed bound is a pure function of (model generation, prefix,
// origin): the BFS reads only sessions and kDenyAll filter thresholds,
// both of which bump Model::generation() when they change.  The refinement
// sweep asks for the same bound once per prefix per iteration (working-set
// construction) and the impact analyzer asks again for truncated prefixes,
// so one cache per Model instance amortizes the BFS.
//
// Invalidation: entries are tagged with the generation they were computed
// from; the first lookup against a newer generation drops the whole map
// (a generation bump invalidates every prefix -- filters and sessions are
// shared state).  Generations are per-Model counters, NOT globally unique,
// so a cache must never be shared between Model instances; the cache
// stores no Model pointer and relies on callers passing the same model
// every time (checked only by the generation monotonicity it observes).
//
// Thread-safe: lookups/inserts take a mutex; the BFS itself runs outside
// the lock, so concurrent misses on the same key may compute twice
// (idempotent -- last insert wins).  Values are shared_ptr<const ...> so a
// worker can keep using a result after invalidation frees the map slot.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "netbase/ids.hpp"
#include "netbase/ip.hpp"
#include "netbase/thread_annotations.hpp"
#include "topology/model.hpp"

namespace analysis {

class ReachabilityCache {
 public:
  /// The relaxed MAY-reachability bound for (prefix, origin) against the
  /// model's CURRENT generation, computing and caching it on a miss.
  std::shared_ptr<const std::vector<char>> relaxed(const topo::Model& model,
                                                   const nb::Prefix& prefix,
                                                   nb::Asn origin);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t invalidations = 0;  // generation changes observed
  };
  Stats stats() const;

 private:
  using Key = std::pair<nb::Prefix, nb::Asn>;

  mutable nb::Mutex mutex_;
  std::uint64_t epoch_ RD_GUARDED_BY(mutex_) = 0;
  bool primed_ RD_GUARDED_BY(mutex_) = false;
  std::map<Key, std::shared_ptr<const std::vector<char>>> entries_
      RD_GUARDED_BY(mutex_);
  Stats stats_ RD_GUARDED_BY(mutex_);
};

}  // namespace analysis
