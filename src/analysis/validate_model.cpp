#include "analysis/validate_model.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <string>

namespace analysis {
namespace {

using nb::Asn;
using nb::RouterId;
using topo::Model;
using topo::NeighborClass;

std::string router_str(const Model& model, Model::Dense r) {
  return model.router_id(r).str();
}

std::string session_str(RouterId from, RouterId to) {
  return "session " + from.str() + "->" + to.str();
}

const char* class_name(NeighborClass cls) {
  switch (cls) {
    case NeighborClass::kCustomer:
      return "customer";
    case NeighborClass::kPeer:
      return "peer";
    case NeighborClass::kProvider:
      return "provider";
    case NeighborClass::kUnknown:
      return "unknown";
  }
  return "?";
}

class Linter {
 public:
  Linter(const Model& model, const ValidateOptions& options)
      : model_(model), options_(options) {}

  Diagnostics run() {
    check_router_indexing();
    check_sessions();
    check_relationships();
    check_policies();
    check_igp_costs();
    if (options_.pairwise_sessions) check_pairwise_closure();
    if (options_.agnostic) check_agnostic();
    return std::move(out_);
  }

 private:
  void emit(Severity severity, const char* code, std::string location,
            std::string message) {
    out_.push_back(Diagnostic{severity, code, std::move(location),
                              std::move(message)});
  }
  void error(const char* code, std::string location, std::string message) {
    emit(Severity::kError, code, std::move(location), std::move(message));
  }
  void warn(const char* code, std::string location, std::string message) {
    emit(Severity::kWarning, code, std::move(location), std::move(message));
  }

  bool live(Model::Dense r) const { return r < model_.num_routers(); }

  /// True when (from, to) names a live, symmetric session; used to vet
  /// policy keys without tripping over a corrupted peer list.
  bool session_exists(RouterId from, RouterId to) const {
    return model_.has_router(from) && model_.has_router(to) &&
           model_.has_session(from, to);
  }

  void check_router_indexing() {
    for (Asn asn : model_.asns()) {
      const auto& routers = model_.routers_of(asn);
      for (std::size_t i = 0; i < routers.size(); ++i) {
        const Model::Dense r = routers[i];
        if (!live(r)) {
          error(codes::kRouterIndexBroken, "AS " + std::to_string(asn),
                "router list entry " + std::to_string(i) +
                    " references dead dense index " + std::to_string(r));
          continue;
        }
        const RouterId expect{asn, static_cast<std::uint16_t>(i)};
        if (model_.router_id(r) != expect) {
          error(codes::kRouterIndexBroken, "AS " + std::to_string(asn),
                "router at position " + std::to_string(i) + " has id " +
                    model_.router_id(r).str() + ", expected " + expect.str());
        } else if (!model_.has_router(expect) ||
                   model_.dense(expect) != r) {
          error(codes::kRouterIndexBroken, "router " + expect.str(),
                "dense-index lookup does not round-trip");
        }
      }
    }
  }

  void check_sessions() {
    std::size_t peer_entries = 0;
    for (Model::Dense r = 0; r < model_.num_routers(); ++r) {
      const RouterId r_id = model_.router_id(r);
      RouterId previous;  // invalid sentinel
      bool order_ok = true;
      for (Model::Dense p : model_.peers(r)) {
        if (!live(p)) {
          error(codes::kSessionPeerDead, "router " + r_id.str(),
                "peer entry references dead dense index " +
                    std::to_string(p));
          continue;
        }
        ++peer_entries;
        const RouterId p_id = model_.router_id(p);
        if (order_ok && previous.valid() && !(previous < p_id)) {
          error(codes::kPeerOrderBroken, "router " + r_id.str(),
                "peer list not strictly ascending at " + p_id.str());
          order_ok = false;  // one report per router is enough
        }
        previous = p_id;
        if (p_id.asn() == r_id.asn() && r <= p) {
          error(codes::kSessionIntraAs, session_str(r_id, p_id),
                "iBGP link between quasi-routers of AS " +
                    std::to_string(r_id.asn()) +
                    " (quasi-routers must select independently)");
        }
        const auto& back = model_.peers(p);
        if (std::find(back.begin(), back.end(), r) == back.end()) {
          error(codes::kSessionAsymmetric, session_str(r_id, p_id),
                p_id.str() + " does not list " + r_id.str() + " back");
        }
      }
    }
    if (peer_entries != 2 * model_.num_sessions()) {
      error(codes::kSessionCountMismatch, "model",
            "session counter says " + std::to_string(model_.num_sessions()) +
                " but peer lists hold " + std::to_string(peer_entries) +
                " directed entries");
    }
  }

  void check_relationships() {
    const auto& classes = model_.neighbor_classes();
    for (const auto& [pair, cls] : classes) {
      const auto [a, b] = pair;
      if (!model_.has_as(a) || !model_.has_as(b)) {
        warn(codes::kRelationshipDangling,
             "classes (" + std::to_string(a) + ", " + std::to_string(b) + ")",
             "relationship entry names an AS absent from the model");
      }
      if (a > b) continue;  // judge each unordered pair once
      const NeighborClass mirror = model_.neighbor_class(b, a);
      const bool consistent =
          (cls == NeighborClass::kCustomer &&
           mirror == NeighborClass::kProvider) ||
          (cls == NeighborClass::kProvider &&
           mirror == NeighborClass::kCustomer) ||
          (cls == NeighborClass::kPeer && mirror == NeighborClass::kPeer) ||
          (cls == NeighborClass::kUnknown &&
           mirror == NeighborClass::kUnknown);
      if (!consistent) {
        error(codes::kRelationshipAsymmetric,
              "classes (" + std::to_string(a) + ", " + std::to_string(b) + ")",
              std::string("AS ") + std::to_string(a) + " sees " +
                  class_name(cls) + " but AS " + std::to_string(b) +
                  " sees " + class_name(mirror) +
                  "; valley-free export needs complementary classes");
      }
    }
  }

  void check_policies() {
    for (const auto& [prefix, policy] : model_.prefix_policies()) {
      const std::string where = "prefix " + prefix.str();
      if (policy.empty()) {
        warn(codes::kPolicyEmpty, where,
             "empty policy overlay left behind (should have been erased)");
        continue;
      }
      for (const auto& [key, filter] : policy.filters) {
        const RouterId from =
            RouterId::from_value(static_cast<std::uint32_t>(key >> 32));
        const RouterId to =
            RouterId::from_value(static_cast<std::uint32_t>(key));
        const std::string loc = where + " filter " + from.str() + "->" +
                                to.str();
        if (!session_exists(from, to)) {
          error(codes::kFilterDanglingSession, loc,
                "export filter keyed to a session that does not exist");
          continue;
        }
        if (filter.owner_target.valid() && filter.owner_target != to) {
          error(codes::kFilterOwnerMismatch, loc,
                "owner " + filter.owner_target.str() +
                    " is not the importing router (provenance invariant "
                    "used by filter deletion)");
        }
        if (filter.deny_below_len == 0) {
          warn(codes::kFilterNoop, loc,
               "no-op filter with deny_below_len 0 (should have been "
               "erased)");
        }
      }
      for (const auto& [router_value, rule] : policy.rankings) {
        const RouterId router = RouterId::from_value(router_value);
        const std::string loc = where + " ranking at " + router.str();
        if (!model_.has_router(router)) {
          error(codes::kRankingOrphanRouter, loc,
                "MED ranking keyed to a router absent from the model");
          continue;
        }
        if (!has_neighbor_as(router, rule.preferred_neighbor)) {
          error(codes::kRankingNonNeighbor, loc,
                "preferred neighbor AS " +
                    std::to_string(rule.preferred_neighbor) +
                    " is not adjacent; the MED partition cannot take "
                    "effect");
        }
      }
      for (const auto& [key, lp] : policy.lp_overrides) {
        const RouterId router =
            RouterId::from_value(static_cast<std::uint32_t>(key >> 32));
        const Asn neighbor = static_cast<Asn>(key & 0xffffffffu);
        const std::string loc = where + " lp-override at " + router.str() +
                                " toward AS " + std::to_string(neighbor);
        if (!model_.has_router(router) ||
            !has_neighbor_as(router, neighbor)) {
          error(codes::kLpOverrideOrphan, loc,
                "local-pref override keyed to a missing router or "
                "non-adjacent neighbor AS");
        }
      }
      for (const std::uint64_t key : policy.export_allows) {
        const RouterId from =
            RouterId::from_value(static_cast<std::uint32_t>(key >> 32));
        const RouterId to =
            RouterId::from_value(static_cast<std::uint32_t>(key));
        if (!session_exists(from, to)) {
          error(codes::kExportAllowDangling,
                where + " export-allow " + from.str() + "->" + to.str(),
                "export-allow keyed to a session that does not exist");
        }
      }
    }
    check_default_rankings();
  }

  void check_default_rankings() {
    std::size_t reachable = 0;
    for (Model::Dense r = 0; r < model_.num_routers(); ++r) {
      const Asn preferred = model_.default_ranking(r);
      if (preferred == nb::kInvalidAsn) continue;
      ++reachable;
      if (!has_neighbor_as(model_.router_id(r), preferred)) {
        error(codes::kDefaultRankingOrphan,
              "default ranking at " + router_str(model_, r),
              "preferred neighbor AS " + std::to_string(preferred) +
                  " is not adjacent");
      }
    }
    if (reachable != model_.num_default_rankings()) {
      error(codes::kDefaultRankingOrphan, "model",
            std::to_string(model_.num_default_rankings() - reachable) +
                " default ranking(s) keyed to routers absent from the "
                "model");
    }
  }

  void check_igp_costs() {
    for (const auto& [receiver, sender, cost] : model_.igp_costs()) {
      if (!session_exists(receiver, sender)) {
        error(codes::kIgpCostDanglingSession,
              "igp cost " + receiver.str() + "<-" + sender.str(),
              "IGP cost keyed to a session that does not exist");
      }
    }
  }

  bool has_neighbor_as(RouterId router, Asn asn) const {
    if (!model_.has_router(router)) return false;
    for (Model::Dense p : model_.peers(model_.dense(router))) {
      if (live(p) && model_.router_id(p).asn() == asn) return true;
    }
    return false;
  }

  void check_pairwise_closure() {
    // Derive the AS adjacency from the sessions, then require duplication
    // closure: every router pair across an adjacent AS pair shares a
    // session, and routers of one AS see the same neighbor-AS set.
    std::set<std::pair<Asn, Asn>> as_edges;
    std::map<Model::Dense, std::set<Asn>> neighbor_sets;
    for (Model::Dense r = 0; r < model_.num_routers(); ++r) {
      const Asn a = model_.router_id(r).asn();
      for (Model::Dense p : model_.peers(r)) {
        if (!live(p)) continue;  // reported by check_sessions already
        const Asn b = model_.router_id(p).asn();
        as_edges.insert({std::min(a, b), std::max(a, b)});
        neighbor_sets[r].insert(b);
      }
    }
    for (const auto& [a, b] : as_edges) {
      if (a == b) continue;  // intra-AS reported by check_sessions
      for (Model::Dense ra : model_.routers_of(a)) {
        for (Model::Dense rb : model_.routers_of(b)) {
          if (!model_.has_session(model_.router_id(ra),
                                  model_.router_id(rb))) {
            error(codes::kSessionsNotPairwiseComplete,
                  session_str(model_.router_id(ra), model_.router_id(rb)),
                  "routers of neighboring ASes " + std::to_string(a) +
                      " and " + std::to_string(b) +
                      " lack a session (duplication copies every "
                      "session)");
          }
        }
      }
    }
    for (Asn asn : model_.asns()) {
      const auto& routers = model_.routers_of(asn);
      if (routers.size() < 2) continue;
      const auto& reference = neighbor_sets[routers.front()];
      for (std::size_t i = 1; i < routers.size(); ++i) {
        if (neighbor_sets[routers[i]] != reference) {
          error(codes::kNeighborSetDivergence,
                "AS " + std::to_string(asn),
                "quasi-router " + router_str(model_, routers[i]) +
                    " reaches a different neighbor-AS set than " +
                    router_str(model_, routers.front()));
        }
      }
    }
  }

  void check_agnostic() {
    for (const auto& [pair, cls] : model_.neighbor_classes()) {
      if (cls != NeighborClass::kUnknown) {
        error(codes::kModelNotAgnostic,
              "classes (" + std::to_string(pair.first) + ", " +
                  std::to_string(pair.second) + ")",
              "fitted models are relationship-agnostic (filters and "
              "rankings only)");
      }
    }
    const auto stats = model_.policy_stats();
    if (stats.lp_overrides != 0) {
      error(codes::kModelNotAgnostic, "model",
            std::to_string(stats.lp_overrides) +
                " local-pref override(s) present in a fitted model");
    }
    if (stats.export_allows != 0) {
      error(codes::kModelNotAgnostic, "model",
            std::to_string(stats.export_allows) +
                " export-allow leak(s) present in a fitted model");
    }
  }

  const Model& model_;
  const ValidateOptions& options_;
  Diagnostics out_;
};

}  // namespace

Diagnostics validate_model(const topo::Model& model,
                           const ValidateOptions& options) {
  return Linter(model, options).run();
}

}  // namespace analysis
