#include "analysis/route_space.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <utility>

namespace analysis {

using bgp::Route;
using topo::Model;

nb::Asn derive_origin(const Model& model, const nb::Prefix& prefix) {
  const nb::Asn asn = (prefix.network().value() >> 8) & 0xffffu;
  if (nb::Prefix::for_asn(asn) != prefix || !model.has_as(asn)) {
    return nb::kInvalidAsn;
  }
  return asn;
}

std::size_t RouteSpace::min_announced_len(Model::Dense router) const {
  std::size_t held = std::numeric_limits<std::size_t>::max();
  for (const std::size_t id : by_router[router]) {
    held = std::min(held, nodes[id].route.path.size());
  }
  if (held == std::numeric_limits<std::size_t>::max()) return held;
  return held + 1;  // exporting prepends the router's own AS
}

RouteSpace build_route_space(const bgp::Engine& engine,
                             const nb::Prefix& prefix, nb::Asn origin,
                             const RouteSpaceOptions& options) {
  RouteSpace space;
  space.prefix = prefix;
  space.origin = origin;
  const Model& model = engine.model();
  const topo::PrefixPolicy* policy = model.find_policy(prefix);
  const std::vector<std::uint32_t> ids = bgp::dense_ids(model);
  space.by_router.resize(model.num_routers());

  // (router, path) -> node id.  std::map keeps rediscovery deterministic.
  std::map<std::pair<Model::Dense, std::vector<nb::Asn>>, std::size_t> index;
  std::deque<std::size_t> queue;

  auto add_node = [&](Model::Dense router, Route route) {
    const std::size_t id = space.nodes.size();
    index.emplace(std::make_pair(router, route.path), id);
    space.by_router[router].push_back(id);
    space.nodes.push_back({router, std::move(route)});
    space.dependence.emplace_back();
    queue.push_back(id);
    return id;
  };

  // Origination, exactly as Engine::run seeds it (empty path, MED 0).
  for (const Model::Dense r : model.routers_of(origin)) {
    Route self;
    self.sender = r;
    self.med = 0;
    add_node(r, std::move(self));
  }

  while (!queue.empty()) {
    const std::size_t parent = queue.front();
    queue.pop_front();
    const Model::Dense v = space.nodes[parent].router;
    if (space.nodes[parent].route.path.size() + 1 > options.max_path_length) {
      space.truncated = true;
      continue;
    }
    for (const Model::Dense u : model.peers(v)) {
      // The propagated route depends only on the parent's PATH (export and
      // import both recompute attributes), so the representative choice
      // below never requires re-propagation.
      std::optional<Route> imported =
          engine.propagate(policy, v, u, space.nodes[parent].route);
      if (!imported.has_value()) continue;
      auto it = index.find(std::make_pair(u, imported->path));
      std::size_t child;
      if (it != index.end()) {
        child = it->second;
        // Keep the best-ranked sender as the representative for preference
        // comparisons (the engine would install exactly one of these).
        if (bgp::compare_routes(*imported, space.nodes[child].route, ids)
                .order < 0) {
          space.nodes[child].route = std::move(*imported);
        }
      } else {
        if (space.by_router[u].size() >= options.max_paths_per_router ||
            space.nodes.size() >= options.max_nodes) {
          space.truncated = true;
          continue;
        }
        child = add_node(u, std::move(*imported));
      }
      auto& parents = space.dependence[child];
      if (std::find(parents.begin(), parents.end(), parent) == parents.end()) {
        parents.push_back(parent);
      }
    }
  }
  return space;
}

std::vector<char> relaxed_reachable(const Model& model,
                                    const topo::PrefixPolicy* policy,
                                    nb::Asn origin) {
  std::vector<char> reach(model.num_routers(), 0);
  std::deque<Model::Dense> queue;
  for (const Model::Dense r : model.routers_of(origin)) {
    reach[r] = 1;
    queue.push_back(r);
  }
  while (!queue.empty()) {
    const Model::Dense v = queue.front();
    queue.pop_front();
    for (const Model::Dense u : model.peers(v)) {
      if (reach[u] != 0) continue;
      if (policy != nullptr) {
        const topo::ExportFilter* filter =
            model.find_export_filter(v, u, policy);
        if (filter != nullptr &&
            filter->deny_below_len == topo::ExportFilter::kDenyAll) {
          continue;
        }
      }
      reach[u] = 1;
      queue.push_back(u);
    }
  }
  return reach;
}

std::vector<char> guaranteed_routers(const bgp::Engine& engine,
                                     const RouteSpace& space) {
  const Model& model = engine.model();
  std::vector<char> guaranteed(model.num_routers(), 0);
  std::deque<Model::Dense> work;
  for (const Model::Dense r : model.routers_of(space.origin)) {
    guaranteed[r] = 1;  // the originated route exists unconditionally
    work.push_back(r);
  }
  // Past a cap the MAY sets are incomplete, so "every route in may(v)
  // transmits" proves nothing -- claim only the origin routers.
  if (space.truncated) return guaranteed;

  const topo::PrefixPolicy* policy = model.find_policy(space.prefix);
  while (!work.empty()) {
    const Model::Dense v = work.front();
    work.pop_front();
    for (const Model::Dense u : model.peers(v)) {
      if (guaranteed[u] != 0) continue;
      // u is guaranteed when v's advertisement reaches it no matter which
      // of v's selectable routes wins: v selects SOMETHING (induction), and
      // nothing it can select is droppable on v->u.
      bool all_transmit = !space.by_router[v].empty();
      for (const std::size_t id : space.by_router[v]) {
        if (!engine.propagate(policy, v, u, space.nodes[id].route)
                 .has_value()) {
          all_transmit = false;
          break;
        }
      }
      if (all_transmit) {
        guaranteed[u] = 1;
        work.push_back(u);
      }
    }
  }
  return guaranteed;
}

std::size_t report_blackholes(const topo::Model& model,
                              const RouteSpace& space, Diagnostics& out) {
  const std::string where = "prefix " + space.prefix.str();
  if (space.truncated) {
    out.push_back({Severity::kWarning, codes::kRouteSpaceTruncated, where,
                   "permitted-path enumeration hit a cap (" +
                       std::to_string(space.nodes.size()) +
                       " nodes kept); unreachability is not provable"});
    return 0;
  }
  std::size_t unreachable = 0;
  std::string sample;
  constexpr std::size_t kSampleCap = 8;
  for (Model::Dense r = 0; r < model.num_routers(); ++r) {
    if (space.may_reach(r)) continue;
    if (unreachable < kSampleCap) {
      if (!sample.empty()) sample += ", ";
      sample += model.router_id(r).str();
    }
    ++unreachable;
  }
  if (unreachable == 0) return 0;
  std::string message = std::to_string(unreachable) +
                        " router(s) can never install any route for this "
                        "prefix (static blackhole: every inbound avenue is "
                        "filtered or export-forbidden): " +
                        sample;
  if (unreachable > kSampleCap) {
    message += ", +" + std::to_string(unreachable - kSampleCap) + " more";
  }
  out.push_back({Severity::kWarning, codes::kStaticBlackhole, where,
                 std::move(message)});
  return unreachable;
}

}  // namespace analysis
