#include "analysis/partition.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <numeric>

#include "netbase/check.hpp"
#include "netbase/json.hpp"

namespace analysis {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_mix(std::uint64_t& hash, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (byte * 8)) & 0xffu;
    hash *= kFnvPrime;
  }
}

}  // namespace

std::uint64_t plan_fingerprint(std::size_t num_routers,
                               const std::vector<PrefixWorkset>& worksets) {
  std::uint64_t hash = kFnvOffset;
  fnv_mix(hash, num_routers);
  fnv_mix(hash, worksets.size());
  for (const PrefixWorkset& ws : worksets) fnv_mix(hash, ws.origin);
  return hash;
}

std::uint64_t plan_fingerprint(const topo::Model& model) {
  std::uint64_t hash = kFnvOffset;
  fnv_mix(hash, model.num_routers());
  const std::vector<nb::Asn> asns = model.asns();
  fnv_mix(hash, asns.size());
  for (const nb::Asn asn : asns) fnv_mix(hash, asn);
  return hash;
}

ShardPlan plan_shards(const std::vector<PrefixWorkset>& worksets,
                      std::size_t num_routers, const PlanOptions& options,
                      Diagnostics* diags) {
  RD_CHECK(options.shards > 0, "plan_shards: need at least one shard");
  ShardPlan plan;
  plan.num_shards = options.shards;
  plan.shards.resize(options.shards);
  plan.fingerprint = plan_fingerprint(num_routers, worksets);

  for (const PrefixWorkset& ws : worksets) {
    RD_CHECK(ws.members.size() == num_routers,
             "plan_shards: workset from a different model");
    plan.total_cost += ws.cost;
    if (ws.relaxed) ++plan.relaxed_prefixes;
  }

  // Placement order: LPT (descending cost), origin then prefix breaking
  // ties so the order -- and hence the plan -- is total.
  std::vector<std::size_t> order(worksets.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const PrefixWorkset& x = worksets[a];
    const PrefixWorkset& y = worksets[b];
    if (x.cost != y.cost) return x.cost > y.cost;
    if (x.origin != y.origin) return x.origin < y.origin;
    return x.prefix < y.prefix;
  });

  const double target =
      static_cast<double>(plan.total_cost) / static_cast<double>(options.shards);
  std::vector<std::vector<char>> covered(options.shards,
                                         std::vector<char>(num_routers, 0));

  for (const std::size_t p : order) {
    const PrefixWorkset& ws = worksets[p];
    // Candidates: shards still below the balanced-load target; when every
    // shard is at or past it (late placements), fall back to all shards so
    // the cost-after tie-break degenerates to plain LPT.
    std::vector<std::size_t> candidates;
    for (std::size_t s = 0; s < options.shards; ++s) {
      if (static_cast<double>(plan.shards[s].cost) < target)
        candidates.push_back(s);
    }
    const bool feasible = !candidates.empty();
    if (!feasible) {
      candidates.resize(options.shards);
      std::iota(candidates.begin(), candidates.end(), 0);
    }

    std::size_t best = candidates.front();
    std::uint64_t best_cut = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t best_after = std::numeric_limits<std::uint64_t>::max();
    for (const std::size_t s : candidates) {
      // Added cut: members this shard does not cover yet -- the affinity
      // objective.  Skipped in the infeasible fallback, where balance is
      // the only concern left.
      std::uint64_t cut = 0;
      if (feasible) {
        for (std::size_t r = 0; r < num_routers; ++r) {
          if (ws.members[r] != 0 && covered[s][r] == 0) ++cut;
        }
      }
      const std::uint64_t after = plan.shards[s].cost + ws.cost;
      if (cut < best_cut || (cut == best_cut && after < best_after)) {
        best = s;
        best_cut = cut;
        best_after = after;
      }
    }

    plan.shards[best].prefixes.push_back(p);
    plan.shards[best].prefix_costs.push_back(ws.cost);
    plan.shards[best].cost += ws.cost;
    for (std::size_t r = 0; r < num_routers; ++r) {
      if (ws.members[r] != 0) covered[best][r] = 1;
    }
  }

  std::uint64_t max_cost = 0;
  for (std::size_t s = 0; s < options.shards; ++s) {
    ShardPlan::Shard& shard = plan.shards[s];
    shard.routers = static_cast<std::size_t>(
        std::count(covered[s].begin(), covered[s].end(), char{1}));
    max_cost = std::max(max_cost, shard.cost);
  }
  for (std::size_t r = 0; r < num_routers; ++r) {
    std::uint64_t copies = 0;
    for (std::size_t s = 0; s < options.shards; ++s) copies += covered[s][r];
    if (copies > 1) plan.cut_weight += copies - 1;
  }
  if (plan.total_cost > 0) {
    plan.imbalance = static_cast<double>(max_cost) / target;
  }

  if (diags != nullptr && plan.imbalance > options.imbalance_warning) {
    Diagnostic d;
    d.severity = Severity::kWarning;
    d.code = codes::kPlanImbalance;
    d.location = "shards=" + std::to_string(options.shards);
    d.message = "max shard load is " + std::to_string(plan.imbalance) +
                "x the mean (threshold " +
                std::to_string(options.imbalance_warning) +
                "); consider fewer shards or finer prefixes";
    diags->push_back(std::move(d));
  }
  return plan;
}

std::string plan_to_json(const ShardPlan& plan,
                         const std::vector<PrefixWorkset>& worksets,
                         int indent) {
  nb::JsonWriter json(indent);
  json.begin_object();
  json.key("tool").value("plan");
  json.key("version").value(ShardPlan::kVersion);
  json.key("shards").value(static_cast<std::uint64_t>(plan.num_shards));
  json.key("total_cost").value(plan.total_cost);
  json.key("cut_weight").value(plan.cut_weight);
  json.key("imbalance").value_fixed(plan.imbalance, 4);
  json.key("relaxed_prefixes")
      .value(static_cast<std::uint64_t>(plan.relaxed_prefixes));
  // Hex string, not a number: JSON doubles cannot hold 64 bits exactly.
  char fingerprint[17];
  std::snprintf(fingerprint, sizeof fingerprint, "%016llx",
                static_cast<unsigned long long>(plan.fingerprint));
  json.key("fingerprint").value(fingerprint);
  json.key("plan").begin_array();
  for (std::size_t s = 0; s < plan.shards.size(); ++s) {
    const ShardPlan::Shard& shard = plan.shards[s];
    json.begin_object();
    json.key("shard").value(static_cast<std::uint64_t>(s));
    json.key("cost").value(shard.cost);
    json.key("routers").value(static_cast<std::uint64_t>(shard.routers));
    json.key("prefixes").begin_array();
    for (const std::size_t p : shard.prefixes) {
      const PrefixWorkset& ws = worksets[p];
      json.begin_object();
      json.key("prefix").value(ws.prefix.str());
      json.key("origin").value(static_cast<std::uint64_t>(ws.origin));
      json.key("cost").value(ws.cost);
      json.key("workset").value(static_cast<std::uint64_t>(ws.size));
      json.key("relaxed").value(ws.relaxed);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

}  // namespace analysis
