// Static route-space abstraction: per (prefix, quasi-router) sets of
// selectable routes, computed by abstract interpretation over the policy
// graph -- no simulation, no message dynamics.
//
// Two approximations bracket every possible steady state of the engine:
//
//  * MAY set (over-approximation).  The permitted-path universe: every
//    (router, path) pair that survives the engine's export rules
//    (valley-free classes where enabled, per-prefix deny-below-length
//    filters) and import rules (AS-loop rejection), enumerated breadth-first
//    from the origin through Engine::propagate -- the exact export+import
//    code path `run` uses.  Any route any simulation of this prefix can
//    install at a router is in the router's MAY set; a router whose MAY set
//    is empty is a *static blackhole* for the prefix (A800).
//
//  * GUARANTEED routers (under-approximation).  The fixpoint of: origin
//    routers are guaranteed; a router u is guaranteed when some guaranteed
//    peer v transmits to u under EVERY route in v's MAY set (no filter or
//    export rule on v->u can drop any of them).  Whatever v ends up
//    selecting -- and it selects something, by induction -- u imports a
//    route, so u holds a route in every converged state.  Routers outside
//    the set are not claimed unreachable (that is what the MAY set is for).
//
// Soundness depends on the enumeration being complete, so every claim is
// withdrawn when a cap is hit (RouteSpace::truncated): blackhole detection
// reports A801 instead of A800, dead-rule tightening in policy_audit falls
// back to the relaxed BFS bounds, and the guaranteed set collapses to the
// origin routers (whose originated route exists unconditionally).
//
// The dispute digraph (dispute_graph.hpp) is a view over this same
// enumeration -- build_route_space records the dependence parents the
// dispute graph needs, so the BFS runs once per audited prefix.
#pragma once

#include <cstddef>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "bgp/engine.hpp"
#include "topology/model.hpp"

namespace analysis {

struct RouteSpaceOptions {
  /// Enumeration caps; exceeding any sets RouteSpace::truncated.
  std::size_t max_paths_per_router = 32;
  std::size_t max_path_length = 16;
  std::size_t max_nodes = 65536;
};

struct RouteSpace {
  /// One permitted (router, path) pair.  `route` carries the path in RIB-In
  /// form ([announcing AS ... origin], router's own AS excluded) plus the
  /// import attributes of the best-ranked sender producing it -- the
  /// representative used for preference comparisons.
  struct Node {
    topo::Model::Dense router = 0;
    bgp::Route route;
  };

  nb::Prefix prefix;
  nb::Asn origin = nb::kInvalidAsn;
  std::vector<Node> nodes;  // BFS discovery order from the origin
  /// dependence[j] lists the node indices whose router announced node j's
  /// path (j's path with the head popped) -- the dispute digraph's
  /// dependence arcs, recorded here so the BFS is shared.
  std::vector<std::vector<std::size_t>> dependence;
  std::vector<std::vector<std::size_t>> by_router;  // dense -> node indices
  bool truncated = false;

  /// MAY set non-empty: some simulation can install a route here.
  bool may_reach(topo::Model::Dense router) const {
    return !by_router[router].empty();
  }

  /// Exact lower bound on the AS-path length of any route announced BY
  /// `router` (announced length = held path + the router's own AS).
  /// Meaningless (SIZE_MAX) when the MAY set is empty or truncated.
  std::size_t min_announced_len(topo::Model::Dense router) const;
};

/// Recovers the origin AS of a prefix from the Prefix::for_asn convention
/// (10.<asn_hi>.<asn_lo>.0/24); kInvalidAsn when the prefix does not follow
/// it or the AS is not in the model.  Shared by every analysis that walks a
/// model's policy overlays (policy_audit, model_diff, impact).
nb::Asn derive_origin(const topo::Model& model, const nb::Prefix& prefix);

/// Enumerates the permitted-path universe of (prefix, origin).
/// Deterministic: routers and paths are visited in model order.
RouteSpace build_route_space(const bgp::Engine& engine,
                             const nb::Prefix& prefix, nb::Asn origin,
                             const RouteSpaceOptions& options = {});

/// Relaxed over-approximation of MAY-reachability that needs no enumeration:
/// BFS from the origin's routers over sessions, skipping only edges whose
/// export filter is kDenyAll for the prefix (`policy` may be null).  Ignores
/// valley-free and AS-loop constraints, so it strictly contains the true
/// MAY-reachable set -- the sound fallback when build_route_space truncates.
std::vector<char> relaxed_reachable(const topo::Model& model,
                                    const topo::PrefixPolicy* policy,
                                    nb::Asn origin);

/// The guaranteed-router under-approximation (see file header): dense-indexed
/// flags, fixpoint over the MAY sets.  On truncated spaces only origin
/// routers are claimed.
std::vector<char> guaranteed_routers(const bgp::Engine& engine,
                                     const RouteSpace& space);

/// Static blackhole detection: one A800 warning per prefix naming
/// the routers whose MAY set is empty (they can never install a route for an
/// announced prefix -- traffic they attract blackholes).  On truncated
/// spaces emits A801 instead: unreachability is not provable past the cap.
/// Returns the number of provably unreachable routers (0 when truncated).
std::size_t report_blackholes(const topo::Model& model,
                              const RouteSpace& space, Diagnostics& out);

}  // namespace analysis
