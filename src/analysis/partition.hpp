// Static shard planning: packs per-prefix working sets (workset.hpp) into
// N balanced shards for a partitioned refinement sweep.
//
// The objective mirrors distributed-simulation placement: each shard
// simulates its prefixes independently, so (a) shard loads -- summed
// static costs -- should be balanced, and (b) prefixes whose working sets
// overlap should land on the same shard, because every router replicated
// across shards duplicates model state and convergence checking
// (cut_weight counts exactly those extra copies).
//
// The planner is a greedy LPT (longest processing time first) pass with an
// affinity tie-break: prefixes are placed in descending cost order; among
// shards still below the balanced-load target the one whose router set
// already covers most of the prefix's working set wins.  Deterministic by
// construction -- the order and every tie-break are total -- so the same
// worksets always yield byte-identical plans (the CI `plan` job asserts
// this).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/workset.hpp"

namespace analysis {

struct PlanOptions {
  std::size_t shards = 4;
  /// Warn (A821) when max shard load exceeds this multiple of the mean.
  double imbalance_warning = 1.5;
};

struct ShardPlan {
  /// Plan format version, bumped whenever the JSON shape or the planner's
  /// placement rules change incompatibly.
  static constexpr int kVersion = 1;

  struct Shard {
    /// Indices into the workset vector the plan was built from, in
    /// placement order.
    std::vector<std::size_t> prefixes;
    /// Static cost of each placed prefix, aligned with `prefixes` -- lets
    /// a consumer executing the plan over a SUBSET of prefixes (the
    /// shard-executed sweep's active set) price the work it actually runs
    /// without re-deriving worksets.
    std::vector<std::uint64_t> prefix_costs;
    std::uint64_t cost = 0;
    /// Distinct routers covered by the shard's working sets.
    std::size_t routers = 0;
  };

  std::size_t num_shards = 0;
  std::vector<Shard> shards;
  std::uint64_t total_cost = 0;
  /// Sum over routers of (shards holding a copy - 1): the replication the
  /// partition forces.
  std::uint64_t cut_weight = 0;
  /// max shard cost / mean shard cost; 0 when there is no load.
  double imbalance = 0.0;
  /// Prefixes whose cost rests on the relaxed bound (A820): the plan is
  /// advisory to that extent.
  std::size_t relaxed_prefixes = 0;
  /// Dataset fingerprint (plan_fingerprint): identifies the (model router
  /// count, per-prefix origin sequence) the plan's workset indices refer
  /// to.  Consumers executing an externally supplied plan -- refine_model
  /// via RefineConfig::shard_plan -- recompute the model-side fingerprint
  /// and reject a mismatch with A822 rather than mis-mapping indices.
  std::uint64_t fingerprint = 0;
};

/// FNV-1a over the dataset identity a plan indexes into: the model's
/// router count, the prefix count, and each prefix's origin AS in index
/// order.  The workset overload hashes what the planner was given; the
/// model overload hashes what compute_all_worksets WOULD produce for
/// `model` (its ascending AS list, one Prefix::for_asn prefix each) --
/// they agree exactly when the plan was built from that model's full
/// workset sweep.
std::uint64_t plan_fingerprint(std::size_t num_routers,
                               const std::vector<PrefixWorkset>& worksets);
std::uint64_t plan_fingerprint(const topo::Model& model);

/// Plans `options.shards` shards over the given worksets (all against the
/// same model; `num_routers` = that model's router count).  `diags`, when
/// non-null, receives A821 when the imbalance threshold is exceeded.
ShardPlan plan_shards(const std::vector<PrefixWorkset>& worksets,
                      std::size_t num_routers, const PlanOptions& options = {},
                      Diagnostics* diags = nullptr);

/// Stable JSON rendering consumed by `rdtool plan --json` and the CI
/// determinism gate:
///   {"tool": "plan", "version": 1, "shards": N, "total_cost": C,
///    "cut_weight": W, "imbalance": I, "relaxed_prefixes": K,
///    "fingerprint": "1af3...b2" (hex string: JSON doubles lose 64-bit
///    precision),
///    "plan": [{"shard": i, "cost": c, "routers": m,
///              "prefixes": [{"prefix": "10.0.9.0/24", "origin": 9,
///                            "cost": c, "workset": s,
///                            "relaxed": false}, ...]}, ...]}
std::string plan_to_json(const ShardPlan& plan,
                         const std::vector<PrefixWorkset>& worksets,
                         int indent = 0);

}  // namespace analysis
