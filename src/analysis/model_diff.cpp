#include "analysis/model_diff.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <utility>

#include "bgp/threadpool.hpp"

namespace analysis {

using topo::Model;

namespace {

/// One router's abstract route set: permitted paths with representative
/// import attributes, order-normalized for comparison.
using RouteSet =
    std::set<std::tuple<std::vector<nb::Asn>, std::uint32_t, std::uint32_t,
                        std::uint32_t>>;

RouteSet route_set(const RouteSpace& space, Model::Dense router) {
  RouteSet set;
  for (const std::size_t id : space.by_router[router]) {
    const bgp::Route& route = space.nodes[id].route;
    set.emplace(route.path, route.local_pref, route.med, route.igp_cost);
  }
  return set;
}

/// "1.0, 2.1, ... (+k more)" sample rendering shared by A810/A811 messages.
std::string sample_list(const std::vector<std::string>& items,
                        std::size_t cap) {
  std::string out;
  for (std::size_t i = 0; i < items.size() && i < cap; ++i) {
    if (!out.empty()) out += ", ";
    out += items[i];
  }
  if (items.size() > cap) {
    out += ", +" + std::to_string(items.size() - cap) + " more";
  }
  return out;
}

constexpr std::size_t kSampleCap = 8;

void diff_structure(const Model& a, const Model& b, DiffResult& result) {
  std::vector<std::string> only_a;
  std::vector<std::string> only_b;
  for (Model::Dense r = 0; r < a.num_routers(); ++r) {
    if (!b.has_router(a.router_id(r))) only_a.push_back(a.router_id(r).str());
  }
  for (Model::Dense r = 0; r < b.num_routers(); ++r) {
    if (!a.has_router(b.router_id(r))) only_b.push_back(b.router_id(r).str());
  }
  auto report_routers = [&result](const std::vector<std::string>& only,
                                  const char* side) {
    if (only.empty()) return;
    ++result.structure_findings;
    result.diagnostics.push_back(
        {Severity::kError, codes::kStructureDiffers, "routers",
         std::to_string(only.size()) + " router(s) only in model " + side +
             ": " + sample_list(only, kSampleCap)});
  };
  report_routers(only_a, "A");
  report_routers(only_b, "B");

  // Sessions over the common routers (a session naming a router missing on
  // the other side is already covered above).
  auto session_set = [](const Model& m, const Model& other) {
    std::set<std::pair<std::uint32_t, std::uint32_t>> sessions;
    for (Model::Dense v = 0; v < m.num_routers(); ++v) {
      const nb::RouterId v_id = m.router_id(v);
      if (!other.has_router(v_id)) continue;
      for (const Model::Dense u : m.peers(v)) {
        const nb::RouterId u_id = m.router_id(u);
        if (!other.has_router(u_id)) continue;
        if (v_id.value() < u_id.value()) {
          sessions.emplace(v_id.value(), u_id.value());
        }
      }
    }
    return sessions;
  };
  const auto sessions_a = session_set(a, b);
  const auto sessions_b = session_set(b, a);
  auto report_sessions = [&result](const auto& own, const auto& other,
                                   const char* side) {
    std::vector<std::string> only;
    for (const auto& [x, y] : own) {
      if (other.count({x, y}) == 0) {
        only.push_back(nb::RouterId::from_value(x).str() + "--" +
                       nb::RouterId::from_value(y).str());
      }
    }
    if (only.empty()) return;
    ++result.structure_findings;
    result.diagnostics.push_back(
        {Severity::kError, codes::kStructureDiffers, "sessions",
         std::to_string(only.size()) + " session(s) only in model " + side +
             ": " + sample_list(only, kSampleCap)});
  };
  report_sessions(sessions_a, sessions_b, "A");
  report_sessions(sessions_b, sessions_a, "B");
}

}  // namespace

DiffResult diff_models(const topo::Model& a, const topo::Model& b,
                       const DiffOptions& options) {
  DiffResult result;
  diff_structure(a, b, result);

  // Comparison targets: explicit origins, else the union of both models'
  // derivable policy overlays (ordered by prefix; std::map dedupes).
  std::vector<std::pair<nb::Prefix, nb::Asn>> targets;
  if (!options.origins.empty()) {
    for (const nb::Asn origin : options.origins) {
      targets.emplace_back(nb::Prefix::for_asn(origin), origin);
    }
  } else {
    std::map<nb::Prefix, nb::Asn> derived;
    std::set<nb::Prefix> seen;  // counts a both-sided skip once, not twice
    for (const Model* m : {&a, &b}) {
      for (const auto& [prefix, policy] : m->prefix_policies()) {
        if (policy.empty() || !seen.insert(prefix).second) continue;
        // Accept an origin derivable in either model: an overlay for an AS
        // only one side knows is a real difference, not a skip -- the
        // structural pass reported the router set, and the comparison below
        // reports the route sets.
        nb::Asn origin = derive_origin(a, prefix);
        if (origin == nb::kInvalidAsn) origin = derive_origin(b, prefix);
        if (origin == nb::kInvalidAsn) {
          ++result.prefixes_skipped;
          continue;
        }
        derived.emplace(prefix, origin);
      }
    }
    targets.assign(derived.begin(), derived.end());
  }

  const bgp::Engine engine_a(a, options.engine_a);
  const bgp::Engine engine_b(b, options.engine_b);
  engine_a.context();  // build both epoch snapshots once, not per worker
  engine_b.context();

  // Per-target comparisons are independent and read-only; fan across the
  // pool, merge in target order (thread-count invariant results).
  std::vector<PrefixDiff> outcomes(targets.size());
  bgp::ThreadPool pool(options.threads);
  pool.parallel_for(targets.size(), [&](std::size_t i) {
    const auto& [prefix, origin] = targets[i];
    PrefixDiff& diff = outcomes[i];
    diff.prefix = prefix;
    diff.origin = origin;
    const RouteSpace space_a =
        build_route_space(engine_a, prefix, origin, options.space);
    const RouteSpace space_b =
        build_route_space(engine_b, prefix, origin, options.space);
    diff.truncated = space_a.truncated || space_b.truncated;
    for (Model::Dense r = 0; r < a.num_routers(); ++r) {
      const nb::RouterId id = a.router_id(r);
      if (!b.has_router(id)) continue;  // structural finding already
      if (route_set(space_a, r) != route_set(space_b, b.dense(id))) {
        diff.routers.push_back(id);
      }
    }
    std::sort(diff.routers.begin(), diff.routers.end(),
              [](nb::RouterId x, nb::RouterId y) {
                return x.value() < y.value();
              });
  });

  std::size_t truncated_prefixes = 0;
  for (PrefixDiff& diff : outcomes) {
    ++result.prefixes_compared;
    const std::string where = "prefix " + diff.prefix.str();
    if (diff.truncated) {
      result.truncated = true;
      ++truncated_prefixes;
    }
    if (!diff.routers.empty()) {
      result.routers_differing += diff.routers.size();
      std::vector<std::string> names;
      names.reserve(diff.routers.size());
      for (const nb::RouterId id : diff.routers) names.push_back(id.str());
      result.diagnostics.push_back(
          {Severity::kError, codes::kRouteSetDiffers, where,
           std::to_string(diff.routers.size()) +
               " router(s) with differing abstract route sets: " +
               sample_list(names, kSampleCap)});
    }
    if (!diff.routers.empty() || diff.truncated) {
      result.prefixes.push_back(std::move(diff));
    }
  }
  // One aggregate truncation note instead of a line per prefix: at real
  // scales most prefixes cap out, and the per-prefix flag is still in
  // result.prefixes for consumers that need it.
  if (truncated_prefixes > 0) {
    result.diagnostics.push_back(
        {Severity::kWarning, codes::kRouteSpaceTruncated, "diff",
         std::to_string(truncated_prefixes) + " of " +
             std::to_string(result.prefixes_compared) +
             " compared prefix(es) hit an enumeration cap on at least one "
             "side; their equality covers the enumerated universe only"});
  }
  return result;
}

}  // namespace analysis
