// The model linter: static structural checks over a topo::Model, emitting
// structured diagnostics (see diagnostics.hpp for the code registry).
//
// The refinement heuristic mutates the model thousands of times per fit --
// per-prefix filters, MED rankings, duplicated quasi-routers -- and a single
// dangling session, mis-keyed filter or inconsistent ranking silently
// corrupts every downstream prediction metric.  validate_model proves after
// any mutation sequence that:
//
//   * every session connects two live quasi-routers of *different* ASes and
//     is recorded symmetrically (no iBGP links, no dangling peers, peer
//     lists sorted, session count consistent);
//   * quasi-router indices are dense per AS (RouterId{asn, i} is the i-th);
//   * export filters, MED rankings, local-pref overrides, export-allows and
//     IGP costs are keyed only to existing sessions / routers / neighbor
//     ASes (a ranking whose preferred AS is not adjacent can never produce
//     the MED partition the paper's route selection relies on);
//   * the relationship table is symmetric and valley-free-consistent:
//     class(a,b) == customer  <=>  class(b,a) == provider, peers mirror;
//   * (opt-in) fitted-model closure: duplication copies every session, so
//     all routers of neighboring ASes stay pairwise connected and routers of
//     one AS see identical neighbor-AS sets; the fitted model stays
//     relationship-agnostic (filters + rankings only).
#pragma once

#include "analysis/diagnostics.hpp"
#include "topology/model.hpp"

namespace analysis {

struct ValidateOptions {
  /// Check the duplication-closure invariants of refinement-fitted models:
  /// routers of neighboring ASes are pairwise connected and routers of one
  /// AS have identical neighbor-AS sets.  Off by default because hand-built
  /// models (ground truth, tests) need not satisfy them.
  bool pairwise_sessions = false;
  /// Check the paper-model purity: no relationship classes, local-pref
  /// overrides or export-allow leaks (the fitted model uses only filters
  /// and rankings).  Off by default; ground-truth models legitimately use
  /// all three.
  bool agnostic = false;
};

/// Runs every check; returns all findings (empty == clean).
Diagnostics validate_model(const topo::Model& model,
                           const ValidateOptions& options = {});

}  // namespace analysis
