// Oscillation detection for the refinement loop.
//
// A dispute wheel in the fitted policies makes the per-prefix heuristic cycle:
// iteration k's (route selections, policy edits) state recurs at iteration
// k + p and the loop burns its entire iteration budget re-visiting the same
// states (Griffin/Shepherd/Wilfong).  The detector fingerprints each
// iteration's state and, once a fingerprint recurs often enough, asks the
// loop to freeze the prefix -- ideally at the best-matched state seen during
// the cycle, so the partial fit degrades gracefully instead of ending on an
// arbitrary phase of the oscillation.
//
// Fingerprints are commutative (an XOR of per-entry mixed terms keyed by
// RouterId *values*, not dense indices), so they are invariant to router
// enumeration order.  That matters for checkpoint/resume: reloading a model
// rebuilds dense indices in sorted order, and a recurrence that spans the
// resume boundary must still be recognised for the resumed run to stay
// byte-identical with an uninterrupted one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "bgp/engine.hpp"
#include "topology/model.hpp"

namespace core {

/// splitmix64 finalizer; good avalanche for XOR-combining per-entry terms.
std::uint64_t mix_u64(std::uint64_t value);

/// Order-independent hash of the prefix's policy state (filters, rankings,
/// lp-overrides, export-allows).  All map keys are RouterId-value based, so
/// the result survives a checkpoint/resume re-index.
std::uint64_t fingerprint_policy(const topo::Model& model, nb::Prefix prefix);

/// Order-independent hash of the converged route selections: for every
/// router, (router-id value, best path).  `ids` maps dense index ->
/// RouterId value (bgp::SimContext::ids).
std::uint64_t fingerprint_selections(
    const bgp::PrefixSimResult& sim,
    std::span<const std::uint32_t> ids);

/// One detector per refined prefix.
///
/// Protocol: after every mutation pass call observe().  Once
/// freeze_pending() turns true, start each subsequent iteration with a
/// count-only pass and ask should_freeze(count_only_matched): true means
/// freeze the prefix *before* mutating, so the frozen policy state is
/// exactly the one whose matched count is reported.
class OscillationDetector {
 public:
  /// What the refinement loop learned from this iteration.
  enum class Verdict {
    kStable,         // no recurrence evidence
    kSuspected,      // recurrence seen, waiting for more confirmations
    kFreezePending,  // cycle confirmed -- switch to the freeze protocol
  };

  /// Serializable state for checkpoint round-trips
  /// (topo::PrefixCheckpointState carries the same fields).
  struct State {
    std::vector<std::uint64_t> fingerprints;  // ring, oldest first
    std::size_t hits = 0;
    std::size_t best_matched = 0;
    bool freeze_pending = false;
    std::size_t freeze_countdown = 0;
  };

  OscillationDetector() = default;
  OscillationDetector(std::size_t window, std::size_t confirmations)
      : window_(window), confirmations_(confirmations) {}

  /// Records one completed iteration of the prefix.  `fingerprint` combines
  /// selections + policies + matched count, `matched` is the paths matched
  /// this iteration, `changed` whether the heuristic still mutated policy.
  /// A recurrence only counts while the heuristic is still making changes;
  /// a stable fingerprint with no edits is ordinary convergence.
  Verdict observe(std::uint64_t fingerprint, std::size_t matched,
                  bool changed);

  /// Freeze decision at the top of an iteration in freeze-pending mode.
  /// `matched` is the count-only (no-mutation) matched count of the current
  /// policy state.  Returns true when that state ties the best seen -- or
  /// when the countdown safety valve expires without the best state
  /// recurring (policy edits are not perfectly periodic, so the best state
  /// is not guaranteed to come around again).
  bool should_freeze(std::size_t matched);

  /// True once a cycle is confirmed: the caller should run the count-only
  /// pass + should_freeze() protocol instead of mutating immediately.
  bool freeze_pending() const { return state_.freeze_pending; }

  /// Best matched count seen over the prefix's lifetime.
  std::size_t best_matched() const { return state_.best_matched; }

  const State& state() const { return state_; }
  void restore(State state) { state_ = std::move(state); }

 private:
  std::size_t window_ = 12;
  std::size_t confirmations_ = 2;
  State state_;
};

}  // namespace core
