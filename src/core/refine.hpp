// The iterative refinement heuristic of Sections 4.3-4.6 (paper Figure 6):
// starting from the one-quasi-router-per-AS model, repeatedly
//
//   1. simulate every (not yet matched) prefix,
//   2. walk each observed AS-path from the origin toward the observation
//      point and, at the first AS where the path is not yet a RIB-Out match:
//        - RIB-Out at an unreserved quasi-router  -> reserve it;
//        - RIB-In at an unreserved quasi-router   -> reserve it and adjust
//          its per-prefix policy (deny-shorter filters at every announcing
//          neighbor + MED ranking of the correct neighbor AS);
//        - RIB-In only at reserved quasi-routers  -> duplicate one (the new
//          quasi-router inherits sessions and import filters, hence the
//          RIB-In match) and adjust the duplicate;
//        - no RIB-In anywhere, but the announcing neighbor AS has a RIB-Out
//          match -> *filter deletion* (Fig. 7): an earlier-created filter is
//          blocking the path; relax it -- toward a fresh duplicate when the
//          filter protects another path's quasi-router (provenance check),
//          in place otherwise;
//        - otherwise wait for a later iteration (the suffix first has to
//          propagate closer to this AS),
//   3. stop when every training path is a RIB-Out match and an iteration
//      makes no changes (or the iteration cap is hit).
//
// Reservations are per-(prefix, iteration): a quasi-router serves at most one
// observed path of a prefix, which is what makes multiple quasi-routers
// carry route diversity.
//
// Prefixes whose paths are all matched and untouched in an iteration are
// frozen: per-prefix policies are independent across prefixes and additional
// quasi-routers never change another prefix's best routes (a duplicate
// re-advertises an already-advertised path with a higher router id, which
// loses every tie-break), so frozen prefixes stay matched.
//
// Execution model (DESIGN.md section 8): each iteration is a simulate-in-
// parallel / mutate-serially round.  All active prefixes are simulated
// against the immutable iteration-start model (embarrassingly parallel,
// fanned across RefineConfig::threads), then the heuristic consumes the
// results serially in deterministic prefix order.  The same independence
// argument as freezing applies within a round: policies are per-prefix, and
// a duplicate another prefix's apply step adds never changes this prefix's
// simulated routes.  Duplicates minted earlier in the same apply pass ARE
// offered to later prefixes -- the candidate scan reads them through their
// source's simulated RIB (sound by the same session/policy inheritance the
// duplication step relies on), so prefixes share duplicates exactly as they
// did when the loop re-simulated after every mutation.  The fitted model is
// byte-identical for every thread count, including 1.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "bgp/engine.hpp"
#include "data/observations.hpp"
#include "obs/profiler.hpp"
#include "topology/model.hpp"

namespace obs {
struct Observer;
class FlightRecorder;
}  // namespace obs

namespace analysis {
class ReachabilityCache;
struct ShardPlan;
}  // namespace analysis

namespace topo {
struct RefineCheckpoint;
}  // namespace topo

namespace core {

struct FaultPlan;

/// Per-prefix fate of a fit.  kActive only survives into results of runs
/// that stopped early (interrupt/fault); every run that ran to a stop
/// condition resolves each prefix to one of the other three.
enum class PrefixOutcome {
  kActive,            // still being refined when the run stopped
  kConverged,         // reached a stable state (fully matched or fixpoint)
  kOscillating,       // oscillation guard froze it (R700/R701)
  kBudgetExhausted,   // an iteration or wall-clock budget froze it (R702/R703)
};

/// Stable token for serialization/JSON: active|converged|oscillating|
/// budget-exhausted.
const char* prefix_outcome_name(PrefixOutcome outcome);
std::optional<PrefixOutcome> prefix_outcome_from(std::string_view token);

/// Why refine_model returned.
enum class RefineStop {
  kCompleted,     // fixpoint or every prefix resolved
  kIterationCap,  // max_iterations exhausted with active prefixes left
  kWallClock,     // wall_clock_budget_seconds exhausted
  kInterrupted,   // RefineConfig::interrupt observed (or injected)
  kFault,         // sweep fault / resume mismatch; see diagnostics
};

const char* refine_stop_name(RefineStop stop);

/// Hash of the training paths (order-independent input identity); stored in
/// checkpoints so a resume against different data fails fast (R706).
std::uint64_t dataset_fingerprint(const data::BgpDataset& training);

struct RefineConfig {
  /// Hard cap; the paper observes convergence within a small multiple of the
  /// maximum AS-path length.
  std::size_t max_iterations = 96;
  /// Worker threads for the per-iteration simulation sweep (0 = hardware
  /// concurrency).  Per-prefix simulations are independent and run against
  /// the immutable iteration-start model; the heuristic then mutates
  /// serially in deterministic prefix order, so the fitted model is
  /// byte-identical for every thread count.
  unsigned threads = 1;

  /// How the model is interpreted during fitting.  The default (agnostic,
  /// no iBGP) is the paper's choice; use_ibgp_mesh reproduces the rejected
  /// alternative of Section 4.6.
  bgp::EngineOptions engine;

  /// Sweep compaction (DESIGN.md section 12): simulate each prefix over its
  /// static working set (analysis/workset.hpp relaxed bound, cached per
  /// model generation) through Engine::run_compacted instead of the full
  /// model.  Byte-identical fitted models with the flag on or off, at every
  /// thread count; automatically falls back to full runs when the engine
  /// options rule the specialized loop out (relationship policies, IGP
  /// costs, iBGP mesh -- Engine::build_view returns null there).
  bool compact_sweep = true;

  /// Shard-executed sweep (DESIGN.md section 13): instead of fanning the
  /// flat prefix list across workers, group each iteration's active
  /// prefixes into cost-balanced shards (analysis/partition) and hand each
  /// worker whole shards, so one giant prefix no longer gates the sweep
  /// tail.  Scheduling only: results land in per-prefix slots and the
  /// heuristic consumes them serially in deterministic order, so the
  /// fitted model stays byte-identical with the flag on or off, for every
  /// thread and shard count.
  bool shard_sweep = true;
  /// Externally supplied plan (e.g. `rdtool plan` output) executed instead
  /// of the per-iteration default.  Must cover the full per-AS prefix list
  /// of THIS model -- plan_fingerprint is verified and a mismatch stops
  /// the fit with A822 / RefineStop::kFault.  The plan is read-only and
  /// must outlive the call.
  const analysis::ShardPlan* shard_plan = nullptr;
  /// Shared generation-keyed reachability cache (analysis/workset).  When
  /// non-null, the sweep's working-set BFS results are read from / written
  /// to this cache, so callers that already ran a plan or workset analysis
  /// in-process (rdtool plan before refine) reuse them instead of
  /// recomputing; when null, refine_model keeps a private cache.
  analysis::ReachabilityCache* reachability_cache = nullptr;

  // Ablation switches (bench_ablation): disabling any of these degrades the
  // fixpoint, quantifying each mechanism's contribution.
  bool allow_duplication = true;
  bool allow_filters = true;
  bool allow_ranking = true;

  bool verbose = false;
  /// When set, every heuristic action for this origin's prefix is logged to
  /// stderr (developer aid).
  nb::Asn debug_origin = nb::kInvalidAsn;

  /// Debug hook (on in tests, opt-in elsewhere): run the analysis layer
  /// inside the loop -- analysis::check_convergence on every simulation
  /// before the heuristic consumes it, analysis::validate_model on the
  /// mutated model after every iteration, and the analysis::audit_model
  /// safety pass (dispute-wheel detection, S5xx) on the final model.
  /// Findings land in RefineResult::diagnostics; a clean fit reports none
  /// (our MED-only policies are provably safe; see dispute_graph.hpp).
  bool validate = false;

  /// After the loop, strip rules the static audit proves dead (D6xx) via
  /// analysis::prune_dead_policies.  Behavior-preserving by construction --
  /// every matched training path stays reproducible -- so fitted models
  /// ship minimal.
  bool prune_dead = false;

  /// Observability hook (DESIGN.md section 9): when non-null, the fit
  /// records metrics into observer->registry (per-worker shards inside the
  /// simulation sweep, merged deterministically at sweep exit) and emits
  /// structured trace events to observer->trace at its configured level
  /// (phase spans, per-iteration convergence counters, per-prefix
  /// simulation spans with the decision-step elimination histogram).
  /// Observation never feeds back: the fitted model is byte-identical with
  /// and without an observer, at every thread count, and the null-observer
  /// path does no observability work at all.
  const obs::Observer* observer = nullptr;

  /// Always-on flight recorder (DESIGN.md section 14): when non-null the
  /// fit records coarse lifecycle events (iteration/shard boundaries,
  /// freezes, checkpoints, faults, the stop) into the recorder's lock-free
  /// per-track rings.  Track 0 is the serial loop; track 1+w is sweep
  /// worker w -- single writer per track, so recording is one relaxed
  /// read + release store and cheap enough to leave attached by default.
  /// Like the observer, it never feeds back into the fit.
  obs::FlightRecorder* flight_recorder = nullptr;
  /// When non-empty AND a flight recorder is attached, the rings are
  /// dumped (atomically) to this path whenever the fit ends degraded or
  /// faulted -- the post-mortem a crash report can ship.  A dump failure
  /// is reported as an R707 warning diagnostic, never an error.
  std::string flight_dump_path;

  // ---- fault tolerance (DESIGN.md section 10) -------------------------------

  /// Wall-clock budget for the whole fit, 0 = unlimited.  On exhaustion the
  /// remaining active prefixes freeze as kBudgetExhausted (R703) and the
  /// fit returns a partial result with stop == kWallClock.
  double wall_clock_budget_seconds = 0;
  /// Cap on refinement iterations spent on any single prefix, 0 =
  /// unlimited.  A prefix hitting it freezes as kBudgetExhausted (R702);
  /// the rest of the fit continues.
  std::size_t prefix_iteration_budget = 0;

  /// Oscillation guard: recent-fingerprint window per prefix and how many
  /// recurrences confirm a cycle.  window 0 disables the guard.
  std::size_t oscillation_window = 12;
  std::size_t oscillation_confirmations = 2;

  /// When non-empty, a resumable checkpoint is written (atomically) to this
  /// path every `checkpoint_every` iterations and at interrupt/fault stops.
  std::string checkpoint_path;
  std::size_t checkpoint_every = 8;
  /// Resume state loaded by the caller (topo::load_refine_checkpoint).  The
  /// caller must also pass the checkpoint's model as `model`; refine_model
  /// verifies the dataset hash and per-prefix consistency (R706 on
  /// mismatch).  A resumed run produces a byte-identical final model to an
  /// uninterrupted one.
  const topo::RefineCheckpoint* resume = nullptr;

  /// Cooperative cancellation: checked between iterations.  When it reads
  /// true the fit checkpoints (if configured) and returns stop ==
  /// kInterrupted with per-prefix partial outcomes.  Safe to set from a
  /// signal handler (rdtool's SIGINT/SIGTERM path).
  const std::atomic<bool>* interrupt = nullptr;

  /// Fault-injection hooks (tests/CI only; see core/fault_inject.hpp).
  /// Ignored unless the library was built with RD_FAULT_INJECTION.
  const FaultPlan* fault_plan = nullptr;
};

struct RefineIterationLog {
  std::size_t iteration = 0;
  std::size_t paths_total = 0;
  std::size_t paths_matched = 0;  // full RIB-Out chains origin->observer
  std::size_t active_prefixes = 0;
  std::size_t routers = 0;  // model size snapshots
  std::size_t filters = 0;
  std::size_t rankings = 0;
  std::size_t routers_added = 0;    // this iteration
  std::size_t policies_changed = 0; // this iteration
};

/// Wall-clock breakdown of one refine_model call, in seconds.  The simulate
/// phase is the parallel sweep (engine runs), validate covers the optional
/// analysis hooks (convergence replay, lint, final audit), heuristic is the
/// serial mutation pass.  total >= the sum (it includes bookkeeping).
struct RefinePhaseSeconds {
  double simulate = 0;
  double heuristic = 0;
  double validate = 0;
  double total = 0;
};

/// Per-prefix outcome row of a fit (ascending origin order, one row per
/// prefix whose origin exists in the model).
struct PrefixFitOutcome {
  nb::Asn origin = nb::kInvalidAsn;
  PrefixOutcome outcome = PrefixOutcome::kActive;
  std::size_t matched = 0;
  std::size_t paths_total = 0;
  /// Iteration at which the oscillation/budget guard froze the prefix,
  /// 0 when it was never frozen.
  std::size_t frozen_iteration = 0;
};

struct RefineResult {
  bool success = false;  // every training path is a RIB-Out match
  /// Why the loop returned.  Partial results (kInterrupted/kFault) carry
  /// valid counters and outcomes up to the stop point.
  RefineStop stop = RefineStop::kCompleted;
  std::size_t iterations = 0;
  std::size_t unmatched_paths = 0;
  /// BGP messages processed across every simulation of the fit (the
  /// engine-throughput denominator for benchmarks).
  std::uint64_t messages_simulated = 0;
  /// Simulations that ran through a compacted working-set view
  /// (RefineConfig::compact_sweep); 0 when the flag is off or the engine
  /// options forced the full-run fallback.
  std::uint64_t compacted_runs = 0;
  /// Iterations whose sweep ran shard-executed (RefineConfig::shard_sweep);
  /// 0 when the flag is off or every iteration had too few active prefixes
  /// to shard.
  std::uint64_t sharded_iterations = 0;
  RefinePhaseSeconds phase_seconds;
  /// Effective worker count of the simulation sweep.
  unsigned threads_used = 1;
  /// Total model edits across all iterations.
  std::size_t routers_added = 0;
  std::size_t policies_changed = 0;
  std::size_t filters_relaxed = 0;  // Fig. 7 filter deletions
  /// Rules removed by the RefineConfig::prune_dead pass (0 when off).
  std::size_t dead_rules_pruned = 0;
  std::size_t empty_policies_dropped = 0;
  std::vector<RefineIterationLog> log;
  /// Findings from the RefineConfig::validate hooks (empty when validation
  /// is off or the fit never corrupted the model / engine state) plus any
  /// R7xx runtime-fault diagnostics the loop itself emitted.
  analysis::Diagnostics diagnostics;

  /// Per-prefix fates (graceful degradation: a partial fit still reports
  /// exactly which prefixes converged and what match coverage they reached).
  std::vector<PrefixFitOutcome> outcomes;
  std::size_t prefixes_converged = 0;
  std::size_t prefixes_oscillating = 0;
  std::size_t prefixes_budget_exhausted = 0;
  /// True if at least one checkpoint was successfully written this run.
  bool checkpoint_written = false;
  /// True if a flight-recorder post-mortem dump was written (degraded or
  /// faulted stop with RefineConfig::flight_dump_path set).
  bool flight_dump_written = false;

  /// Shared reachability-cache activity during this fit (deltas against the
  /// cache's state at entry, so a caller-shared cache reports only this
  /// fit's traffic).  All zero when no working-set machinery ran.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_invalidations = 0;

  /// Sweep-profiler raw material (DESIGN.md section 14): one sample per
  /// executed shard of every instrumented shard-executed sweep, and the
  /// sweep (simulate-phase) span of each such iteration.  Populated only
  /// when an observer with a registry or an iteration-level trace sink is
  /// attached AND the sweep ran shard-executed; empty otherwise (the
  /// zero-observer path records nothing).  obs::profile_sweep folds these
  /// into the speedup-loss attribution `rdtool profile` reports.
  std::vector<obs::SweepShardSample> shard_samples;
  std::vector<obs::SweepIterationSpan> sweep_spans;

  /// Completed, but with frozen prefixes: the model is usable yet some
  /// training paths are knowingly unmatched (rdtool exit code 3).
  bool degraded() const {
    return prefixes_oscillating + prefixes_budget_exhausted > 0;
  }
};

/// Refines `model` in place against the training dataset.
RefineResult refine_model(topo::Model& model,
                          const data::BgpDataset& training,
                          const RefineConfig& config);

}  // namespace core
