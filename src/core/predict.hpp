// Prediction evaluation: runs the model for every prefix occurring in a
// dataset and classifies each unique observed AS-path with the Section 4.2
// metrics.  Used for the Table 2 baselines, for the training fixpoint check
// and for the held-out validation experiment (Section 5).
#pragma once

#include <functional>
#include <map>

#include "bgp/driver.hpp"
#include "core/metrics.hpp"
#include "data/observations.hpp"

namespace core {

struct EvalOptions {
  bgp::EngineOptions engine;
  unsigned threads = 1;
};

struct EvalResult {
  MatchStats stats;
  /// Per-origin outcome counts (unique paths, RIB-Out matched), for drill-in
  /// reports.
  struct OriginOutcome {
    std::size_t paths = 0;
    std::size_t rib_out = 0;
  };
  std::map<nb::Asn, OriginOutcome> by_origin;
};

/// Evaluates `model` against every unique (origin, observed path) in
/// `dataset`.  `inspect`, when given, is called for each classified path.
EvalResult evaluate_predictions(
    const topo::Model& model, const data::BgpDataset& dataset,
    const EvalOptions& options,
    const std::function<void(nb::Asn origin, const topo::AsPath& path,
                             const PathMatch& match)>& inspect = nullptr);

}  // namespace core
