// Fault-injection hooks for the refinement loop.
//
// A FaultPlan describes faults for refine_model to inject at precise points
// of the fit, so tests and CI can prove the robustness story end to end:
// degraded completion instead of hangs, diagnostics instead of silent
// corruption, checkpoints that survive a crash mid-sweep.
//
// The struct is always declared (so RefineConfig can carry a pointer
// unconditionally), but the injection *sites* in refine.cpp compile only
// under RD_FAULT_INJECTION, which CMake defines PRIVATE-ly for repro_core
// (option RD_FAULT_INJECTION, default ON).  Release packagers can switch it
// off; the hooks cost nothing when `plan == nullptr` either way.
//
// Iteration numbers are 1-based, 0 = disabled.
#pragma once

#include <cstddef>

#include "netbase/ids.hpp"

namespace core {

struct FaultPlan {
  /// Force the engine result for `fail_sim_origin` to report
  /// non-convergence (as if the divergence guard tripped) during iteration
  /// `fail_sim_iteration` -- exercises the R701 freeze path without needing
  /// a real dispute wheel.
  std::size_t fail_sim_iteration = 0;
  nb::Asn fail_sim_origin = nb::kInvalidAsn;

  /// Throw std::runtime_error (or std::bad_alloc when `throw_bad_alloc`)
  /// from inside a ThreadPool worker mid-sweep during this iteration --
  /// exercises exception propagation out of parallel_for_worker, pool
  /// reusability, and the R704 abort-with-checkpoint path.
  std::size_t throw_iteration = 0;
  bool throw_bad_alloc = false;

  /// Simulate SIGINT delivery at the end of this iteration: refine writes a
  /// checkpoint and returns with stop == kInterrupted, exactly like the
  /// signal path in rdtool, but deterministically for tests.
  std::size_t interrupt_iteration = 0;
};

/// Serve-path fault injection (serve::Server; DESIGN.md section 15).
///
/// Unlike the refine plan -- which fires at a fixed iteration -- serve
/// faults are *request-addressed*: when `honor_request_faults` is set (and
/// the binary was built with RD_FAULT_INJECTION), a request may carry a
/// "fault" member naming the injection point, so tests and the CI smoke
/// job steer faults at exactly the query they are probing:
///
///   "throw"      worker throws std::runtime_error mid-handler
///   "bad-alloc"  std::bad_alloc during the what-if model fork
///   "stall"      handler sleeps `stall_ms` (or the request's "stall_ms")
///                before answering -- past the deadline, the connection
///                answers degraded while the worker finishes harmlessly
///   "diverge"    handler treats the simulation as non-converged
///                (divergence-guard degraded path, R701)
///
/// With the flag off (the default, and always in non-injection builds) the
/// "fault" member is ignored, so a malicious client cannot stall workers.
struct ServeFaultPlan {
  bool honor_request_faults = false;
  /// Default sleep for "stall" requests that carry no "stall_ms".
  std::uint64_t stall_ms = 200;
};

}  // namespace core
