#include "core/report.hpp"

#include <algorithm>

#include "netbase/strings.hpp"
#include "netbase/table.hpp"

namespace core {

using nb::fmt_count;
using nb::fmt_percent;

namespace {

double ratio(std::size_t part, std::size_t whole) {
  return whole == 0 ? 0.0
                    : static_cast<double>(part) / static_cast<double>(whole);
}

std::size_t lost_at(const MatchStats& stats, bgp::DecisionStep step) {
  return stats.lost_at[static_cast<std::size_t>(step)];
}

}  // namespace

std::string render_match_breakdown(const std::string& title,
                                   const MatchStats& stats) {
  nb::TextTable table({"Criteria", title});
  table.add_row({"AS-paths evaluated", fmt_count(stats.total)});
  table.add_row({"AS-paths which agree (RIB-Out)",
                 fmt_percent(stats.rib_out_rate())});
  table.add_row({"AS-paths which disagree",
                 fmt_percent(1.0 - stats.rib_out_rate())});
  table.add_row({"  due to AS-path not available",
                 fmt_percent(stats.not_available_rate())});
  table.add_row({"  shorter AS-path exists",
                 fmt_percent(ratio(
                     lost_at(stats, bgp::DecisionStep::kPathLength),
                     stats.total))});
  table.add_row({"  lowest neighbor ID (tie-break)",
                 fmt_percent(ratio(lost_at(stats, bgp::DecisionStep::kTieBreak),
                                   stats.total))});
  const std::size_t other =
      lost_at(stats, bgp::DecisionStep::kLocalPref) +
      lost_at(stats, bgp::DecisionStep::kMed) +
      lost_at(stats, bgp::DecisionStep::kEbgpOverIbgp) +
      lost_at(stats, bgp::DecisionStep::kIgpCost);
  table.add_row({"  other policy steps (lp/med/igp)",
                 fmt_percent(ratio(other, stats.total))});
  return table.render();
}

std::string render_table2(const MatchStats& shortest,
                          const MatchStats& policies) {
  nb::TextTable table({"Criteria", "Shortest Path", "Cust/Peer Policies",
                       "Paper SP", "Paper Pol"});
  auto pct = [](double v) { return fmt_percent(v); };
  table.add_row({"AS-Paths which agree", pct(shortest.rib_out_rate()),
                 pct(policies.rib_out_rate()), "23.5%", "12.5%"});
  table.add_row({"AS-Paths which disagree",
                 pct(1.0 - shortest.rib_out_rate()),
                 pct(1.0 - policies.rib_out_rate()), "76.4%", "87.5%"});
  table.add_row({"  due to AS-path not available",
                 pct(shortest.not_available_rate()),
                 pct(policies.not_available_rate()), "49.4%", "54.5%"});
  table.add_row(
      {"  shorter AS-path exist",
       pct(ratio(lost_at(shortest, bgp::DecisionStep::kPathLength),
                 shortest.total)),
       pct(ratio(lost_at(policies, bgp::DecisionStep::kPathLength),
                 policies.total)),
       "4.7%", "5.7%"});
  table.add_row(
      {"  lowest neighbor ID",
       pct(ratio(lost_at(shortest, bgp::DecisionStep::kTieBreak),
                 shortest.total)),
       pct(ratio(lost_at(policies, bgp::DecisionStep::kTieBreak),
                 policies.total)),
       "22.2%", "27.3%"});
  const std::size_t sp_other = lost_at(shortest, bgp::DecisionStep::kLocalPref) +
                               lost_at(shortest, bgp::DecisionStep::kMed) +
                               lost_at(shortest, bgp::DecisionStep::kEbgpOverIbgp) +
                               lost_at(shortest, bgp::DecisionStep::kIgpCost);
  const std::size_t pol_other = lost_at(policies, bgp::DecisionStep::kLocalPref) +
                                lost_at(policies, bgp::DecisionStep::kMed) +
                                lost_at(policies, bgp::DecisionStep::kEbgpOverIbgp) +
                                lost_at(policies, bgp::DecisionStep::kIgpCost);
  table.add_row({"  other policy steps", pct(ratio(sp_other, shortest.total)),
                 pct(ratio(pol_other, policies.total)), "-", "-"});
  return table.render();
}

std::string render_validation(const std::string& title,
                              const MatchStats& stats) {
  nb::TextTable table({"Metric", title});
  table.add_row({"unique AS-paths evaluated", fmt_count(stats.total)});
  table.add_row({"RIB-Out match", fmt_percent(stats.rib_out_rate())});
  table.add_row({"RIB-Out + potential RIB-Out (down to tie-break)",
                 fmt_percent(stats.potential_or_better_rate())});
  table.add_row({"RIB-In match (upper bound)",
                 fmt_percent(stats.rib_in_rate())});
  table.add_row({"AS-path not available",
                 fmt_percent(stats.not_available_rate())});
  table.add_rule();
  table.add_row({"prefixes evaluated", fmt_count(stats.prefixes)});
  table.add_row({"prefixes with >=50% paths matched",
                 fmt_percent(ratio(stats.prefixes_50, stats.prefixes))});
  table.add_row({"prefixes with >=90% paths matched",
                 fmt_percent(ratio(stats.prefixes_90, stats.prefixes))});
  table.add_row({"prefixes with 100% paths matched",
                 fmt_percent(ratio(stats.prefixes_100, stats.prefixes))});
  return table.render();
}

std::string render_refine_log(const RefineResult& result) {
  nb::TextTable table({"iter", "matched", "total", "active-prefixes",
                       "routers", "filters", "rankings", "routers+",
                       "policy-changes"});
  for (const RefineIterationLog& log : result.log) {
    table.add_row({std::to_string(log.iteration),
                   fmt_count(log.paths_matched), fmt_count(log.paths_total),
                   fmt_count(log.active_prefixes), fmt_count(log.routers),
                   fmt_count(log.filters), fmt_count(log.rankings),
                   fmt_count(log.routers_added),
                   fmt_count(log.policies_changed)});
  }
  std::string out = table.render();
  out += "converged: ";
  out += result.success ? "yes (all training paths RIB-Out matched)" : "NO";
  out += ", iterations: " + std::to_string(result.iterations);
  out += ", unmatched paths: " + std::to_string(result.unmatched_paths) + "\n";
  // Fault-tolerance epilogue, only when there is something to say: a clean
  // completed fit renders exactly as it always has.
  if (result.stop != RefineStop::kCompleted || result.degraded()) {
    out += "stop: ";
    out += refine_stop_name(result.stop);
    out += ", prefixes converged: " + std::to_string(result.prefixes_converged);
    out += ", oscillating: " + std::to_string(result.prefixes_oscillating);
    out += ", budget-exhausted: " +
           std::to_string(result.prefixes_budget_exhausted) + "\n";
    for (const PrefixFitOutcome& o : result.outcomes) {
      if (o.outcome == PrefixOutcome::kConverged) continue;
      out += "  origin " + std::to_string(o.origin) + ": ";
      out += prefix_outcome_name(o.outcome);
      out += ", matched " + std::to_string(o.matched) + "/" +
             std::to_string(o.paths_total);
      if (o.frozen_iteration != 0)
        out += ", frozen at iteration " + std::to_string(o.frozen_iteration);
      out += "\n";
    }
  }
  return out;
}

std::string render_audit(const analysis::AuditResult& result) {
  nb::TextTable table({"prefix", "origin", "permitted-paths", "dispute-arcs",
                       "safe", "max-diversity"});
  for (const analysis::PrefixAuditStats& stats : result.prefixes) {
    std::size_t max_diversity = 0;
    for (const auto& [asn, bound] : stats.diversity_bound) {
      max_diversity = std::max(max_diversity, bound);
    }
    std::string verdict = stats.wheel ? "NO (wheel)" : "yes";
    if (stats.truncated) verdict += " (partial)";
    table.add_row({stats.prefix.str(), std::to_string(stats.origin),
                   fmt_count(stats.permitted_paths),
                   fmt_count(stats.dispute_arcs), verdict,
                   stats.diversity_bound.empty() ? "-"
                                                 : fmt_count(max_diversity)});
  }
  std::string out = table.render();
  out += "prefixes audited: " + std::to_string(result.prefixes.size());
  out += ", dispute wheels: " + std::to_string(result.wheels);
  out += ", dead filters: " + std::to_string(result.dead_filters);
  out += ", dead rankings: " + std::to_string(result.dead_rankings);
  if (result.truncated) out += " (enumeration truncated)";
  out += "\n";
  return out;
}

std::string render_table1(const data::DiversityStats& stats) {
  nb::TextTable table({"Percentile", "max # of unique AS-paths", "Paper"});
  // Paper Table 1 reports the larger quantiles: >50% of ASes receive two
  // unique paths for some prefix, 10% more than 5, 2% more than 10.
  const struct {
    double percentile;
    const char* paper;
  } rows[] = {{50, "2"}, {75, "3"}, {90, ">5"}, {95, ""}, {98, ">10"}, {99, ""}};
  for (auto& row : rows) {
    std::string paper = row.paper;
    table.add_row({nb::fmt_fixed(row.percentile, 0),
                   stats.max_unique_received.empty()
                       ? "-"
                       : std::to_string(
                             stats.max_unique_received.percentile(row.percentile)),
                   paper.empty() ? "-" : paper});
  }
  return table.render();
}

}  // namespace core
