#include "core/metrics.hpp"

#include <algorithm>

namespace core {

const char* match_kind_name(MatchKind kind) {
  switch (kind) {
    case MatchKind::kRibOut:
      return "rib-out";
    case MatchKind::kPotentialRibOut:
      return "potential-rib-out";
    case MatchKind::kRibInOnly:
      return "rib-in-only";
    case MatchKind::kNotAvailable:
      return "not-available";
  }
  return "?";
}

namespace {

bool route_path_equals(std::span<const nb::Asn> route_path,
                       std::span<const nb::Asn> expected) {
  return route_path.size() == expected.size() &&
         std::equal(route_path.begin(), route_path.end(), expected.begin());
}

}  // namespace

bool has_rib_out(const Model& model, const bgp::PrefixSimResult& sim,
                 nb::Asn asn, std::span<const nb::Asn> route_path) {
  for (Model::Dense r : model.routers_of(asn)) {
    const bgp::Route* best = sim.routers[r].best_route();
    if (best != nullptr && route_path_equals(best->path, route_path))
      return true;
  }
  return false;
}

PathMatch classify_path(const Model& model, const bgp::PrefixSimResult& sim,
                        const AsPath& observed,
                        std::span<const std::uint32_t> ids) {
  PathMatch match;
  const auto& hops = observed.hops();
  const nb::Asn observer = observed.observer();
  const std::span<const nb::Asn> route_path(hops.data() + 1,
                                            hops.size() - 1);

  // A trivial observation "at the origin itself" matches iff the AS exists
  // and originates (its routers hold the self route).
  for (Model::Dense r : model.routers_of(observer)) {
    const bgp::RouterState& state = sim.routers[r];
    const bgp::Route* best = state.best_route();
    if (best != nullptr && route_path_equals(best->path, route_path)) {
      match.kind = MatchKind::kRibOut;
      match.router = r;
      return match;
    }
  }

  // No RIB-Out: find the RIB-In entry that came closest to winning.
  bool found_rib_in = false;
  bgp::DecisionStep closest = bgp::DecisionStep::kLocalPref;
  for (Model::Dense r : model.routers_of(observer)) {
    const bgp::RouterState& state = sim.routers[r];
    const bgp::Route* best = state.best_route();
    for (const bgp::Route& entry : state.rib_in) {
      if (!route_path_equals(entry.path, route_path)) continue;
      found_rib_in = true;
      if (best == nullptr) continue;  // cannot happen: entry implies a best
      bgp::Comparison cmp = bgp::compare_routes(entry, *best, ids);
      // entry != best here, so cmp.order > 0; cmp.step is the decisive step.
      if (static_cast<int>(cmp.step) >= static_cast<int>(closest)) {
        closest = cmp.step;
        match.router = r;
      }
    }
  }
  if (!found_rib_in) {
    match.kind = MatchKind::kNotAvailable;
    return match;
  }
  match.lost_at = closest;
  match.kind = closest == bgp::DecisionStep::kTieBreak
                   ? MatchKind::kPotentialRibOut
                   : MatchKind::kRibInOnly;
  return match;
}

void MatchStats::add(const PathMatch& match) {
  ++total;
  switch (match.kind) {
    case MatchKind::kRibOut:
      ++rib_out;
      break;
    case MatchKind::kPotentialRibOut:
      ++potential_rib_out;
      ++lost_at[static_cast<std::size_t>(match.lost_at)];
      break;
    case MatchKind::kRibInOnly:
      ++rib_in_only;
      ++lost_at[static_cast<std::size_t>(match.lost_at)];
      break;
    case MatchKind::kNotAvailable:
      ++not_available;
      break;
  }
}

void MatchStats::add_prefix_coverage(std::size_t matched, std::size_t paths) {
  if (paths == 0) return;
  ++prefixes;
  const double fraction =
      static_cast<double>(matched) / static_cast<double>(paths);
  if (fraction >= 0.5) ++prefixes_50;
  if (fraction >= 0.9) ++prefixes_90;
  if (matched == paths) ++prefixes_100;
}

double MatchStats::rib_out_rate() const {
  return total == 0 ? 0 : static_cast<double>(rib_out) / total;
}

double MatchStats::potential_or_better_rate() const {
  return total == 0
             ? 0
             : static_cast<double>(rib_out + potential_rib_out) / total;
}

double MatchStats::rib_in_rate() const {
  return total == 0 ? 0
                    : static_cast<double>(rib_out + potential_rib_out +
                                          rib_in_only) /
                          total;
}

double MatchStats::not_available_rate() const {
  return total == 0 ? 0 : static_cast<double>(not_available) / total;
}

}  // namespace core
