// Policy generalization -- the paper's stated future work ("inferring the
// actual policies will be addressed in future work") and the question of its
// follow-up ("In Search for an Appropriate Granularity to Model Routing
// Policies"): the refinement installs PER-PREFIX rules; how many of them are
// really prefix-independent per-neighbor preferences in disguise?
//
// analyze_policy_granularity() measures, per quasi-router, how many distinct
// preferred neighbors its per-prefix rankings use.  generalize_rankings()
// rewrites the model: a quasi-router whose per-prefix rankings all prefer
// the SAME neighbor AS gets a single prefix-independent default ranking
// instead (the engine falls back to it when no per-prefix rule exists).
// The rewrite is semantics-preserving for the prefixes that had rules and
// EXTENDS the preference to unseen prefixes -- exactly the generalization
// bet one makes when predicting routes for new prefixes (Section 4.7).
#pragma once

#include "netbase/stats.hpp"
#include "topology/model.hpp"

namespace core {

struct GranularityStats {
  std::size_t routers_total = 0;
  std::size_t routers_with_rankings = 0;
  /// Routers whose per-prefix rankings all name one neighbor.
  std::size_t routers_uniform = 0;
  std::size_t rankings_total = 0;  // per-prefix rules before rewrite
  /// Distinct preferred neighbors per ranked router.
  nb::Histogram distinct_preferences;
};

GranularityStats analyze_policy_granularity(const topo::Model& model);

struct GeneralizeResult {
  GranularityStats stats;
  std::size_t rules_removed = 0;   // per-prefix rankings collapsed
  std::size_t defaults_added = 0;  // router-level rules installed
};

/// In-place rewrite described above.  Routers with mixed preferences keep
/// their per-prefix rules untouched.
GeneralizeResult generalize_rankings(topo::Model& model);

}  // namespace core
