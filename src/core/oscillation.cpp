#include "core/oscillation.hpp"

#include <algorithm>

namespace core {
namespace {

constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ull;

/// One commutative term: tag distinguishes the policy map, key/value the
/// entry.  XORing terms makes the aggregate independent of iteration order.
std::uint64_t term(std::uint64_t tag, std::uint64_t key, std::uint64_t value) {
  return mix_u64(tag * kGolden + mix_u64(key) + mix_u64(value * kGolden + 1));
}

}  // namespace

std::uint64_t mix_u64(std::uint64_t value) {
  value += kGolden;
  value = (value ^ (value >> 30)) * 0xbf58476d1ce4e5b9ull;
  value = (value ^ (value >> 27)) * 0x94d049bb133111ebull;
  return value ^ (value >> 31);
}

std::uint64_t fingerprint_policy(const topo::Model& model, nb::Prefix prefix) {
  std::uint64_t hash =
      mix_u64((std::uint64_t{prefix.network().value()} << 8) | prefix.length());
  const topo::PrefixPolicy* policy = model.find_policy(prefix);
  if (policy == nullptr) return hash;
  for (const auto& [key, filter] : policy->filters) {
    hash ^= term(1, key,
                 (std::uint64_t{filter.deny_below_len} << 32) |
                     filter.owner_target.value());
  }
  for (const auto& [router, rule] : policy->rankings)
    hash ^= term(2, router, rule.preferred_neighbor);
  for (const auto& [key, lp] : policy->lp_overrides) hash ^= term(3, key, lp);
  for (const std::uint64_t key : policy->export_allows) hash ^= term(4, key, 0);
  return hash;
}

std::uint64_t fingerprint_selections(const bgp::PrefixSimResult& sim,
                                     std::span<const std::uint32_t> ids) {
  // Seeded by the DENSE router count and keyed by dense-index ids: a
  // compacted result (PrefixSimResult::view) hashes identically to the
  // full run it mirrors -- routers outside the working set hold no best
  // route in either, so they contribute nothing.
  std::uint64_t hash = mix_u64(sim.dense_size());
  for (std::size_t slot = 0; slot < sim.routers.size(); ++slot) {
    const bgp::Route* best = sim.routers[slot].best_route();
    if (best == nullptr) continue;
    const topo::Model::Dense r = sim.full_index(slot);
    if (r >= ids.size()) continue;
    // FNV-1a over the path; hop order matters, so this part is sequential.
    std::uint64_t path_hash = 1469598103934665603ull;
    for (const nb::Asn hop : best->path)
      path_hash = (path_hash ^ hop) * 1099511628211ull;
    hash ^= term(5, ids[r], path_hash);
  }
  return hash;
}

OscillationDetector::Verdict OscillationDetector::observe(
    std::uint64_t fingerprint, std::size_t matched, bool changed) {
  if (matched > state_.best_matched) state_.best_matched = matched;
  const bool recurred =
      std::find(state_.fingerprints.begin(), state_.fingerprints.end(),
                fingerprint) != state_.fingerprints.end();
  if (recurred && changed) {
    ++state_.hits;
  } else if (!recurred) {
    state_.hits = 0;
  }
  state_.fingerprints.push_back(fingerprint);
  if (state_.fingerprints.size() > window_)
    state_.fingerprints.erase(state_.fingerprints.begin());
  if (!state_.freeze_pending && state_.hits >= confirmations_) {
    state_.freeze_pending = true;
    state_.freeze_countdown = window_;
    return Verdict::kFreezePending;
  }
  if (state_.freeze_pending) return Verdict::kFreezePending;
  return state_.hits > 0 ? Verdict::kSuspected : Verdict::kStable;
}

bool OscillationDetector::should_freeze(std::size_t matched) {
  if (!state_.freeze_pending) return false;
  if (matched >= state_.best_matched) return true;
  if (state_.freeze_countdown == 0) return true;  // safety valve
  --state_.freeze_countdown;
  return false;
}

}  // namespace core
