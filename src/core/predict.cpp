#include "core/predict.hpp"

namespace core {

EvalResult evaluate_predictions(
    const topo::Model& model, const data::BgpDataset& dataset,
    const EvalOptions& options,
    const std::function<void(nb::Asn, const topo::AsPath&, const PathMatch&)>&
        inspect) {
  EvalResult result;
  const auto by_origin = dataset.paths_by_origin();

  std::vector<bgp::SimJob> jobs;
  std::vector<const std::vector<topo::AsPath>*> job_paths;
  for (const auto& [origin, paths] : by_origin) {
    if (!model.has_as(origin)) {
      // Origin absent from the model (e.g. an unobserved stub): every path
      // toward it is unavailable by construction.
      auto& outcome = result.by_origin[origin];
      for (const topo::AsPath& path : paths) {
        PathMatch match;  // kNotAvailable
        result.stats.add(match);
        ++outcome.paths;
        if (inspect) inspect(origin, path, match);
      }
      result.stats.add_prefix_coverage(0, paths.size());
      continue;
    }
    jobs.push_back({nb::Prefix::for_asn(origin), origin});
    job_paths.push_back(&paths);
  }

  bgp::Engine engine(model, options.engine);
  // Tie-break ids come from the engine's per-epoch context instead of a
  // bespoke dense_ids pass; the shared_ptr keeps them alive past run_jobs.
  const std::shared_ptr<const bgp::SimContext> ctx = engine.context();
  const std::span<const std::uint32_t> ids = ctx->ids;
  bgp::ThreadPool pool(options.threads);
  bgp::run_jobs(engine, jobs, pool,
                [&](std::size_t j, bgp::PrefixSimResult&& sim) {
                  const auto& paths = *job_paths[j];
                  auto& outcome = result.by_origin[sim.origin];
                  std::size_t matched = 0;
                  for (const topo::AsPath& path : paths) {
                    PathMatch match = classify_path(model, sim, path, ids);
                    result.stats.add(match);
                    ++outcome.paths;
                    if (match.kind == MatchKind::kRibOut) {
                      ++matched;
                      ++outcome.rib_out;
                    }
                    if (inspect) inspect(sim.origin, path, match);
                  }
                  result.stats.add_prefix_coverage(matched, paths.size());
                });
  return result;
}

}  // namespace core
