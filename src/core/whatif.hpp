// What-if analysis -- the paper's motivating application (Section 1):
// "what if a certain peering link was removed, or what-if we change policies
// thus?".  A scenario is a set of deltas applied to a copy of the fitted
// AS-routing model; the result is the per-(prefix, AS) difference between
// the best-route sets before and after.
//
// Because the fitted model reproduces observed routing exactly on the
// training set and predicts held-out routes well (Section 5), these diffs
// are meaningful forecasts rather than toy-graph shortest-path changes.
#pragma once

#include <atomic>
#include <optional>
#include <set>
#include <vector>

#include "bgp/engine.hpp"
#include "topology/as_path.hpp"
#include "topology/model.hpp"

namespace core {

struct WhatIfScenario {
  /// De-peering: remove every session between the two ASes.
  std::vector<std::pair<nb::Asn, nb::Asn>> remove_as_links;
  /// Remove one specific session.
  std::vector<std::pair<nb::RouterId, nb::RouterId>> remove_sessions;
  /// New peering: one session between the first quasi-routers of each AS.
  std::vector<std::pair<nb::Asn, nb::Asn>> add_as_links;
  /// Policy change: stop announcing `prefix` from AS `from` to AS `to`
  /// (deny-all filters on every session between them).
  struct PrefixDeny {
    nb::Asn from;
    nb::Asn to;
    nb::Prefix prefix;
  };
  std::vector<PrefixDeny> deny_prefix;

  bool empty() const {
    return remove_as_links.empty() && remove_sessions.empty() &&
           add_as_links.empty() && deny_prefix.empty();
  }
};

/// The model with a scenario applied (the base model is not modified).
topo::Model apply_scenario(const topo::Model& base,
                           const WhatIfScenario& scenario);

struct RouteChange {
  nb::Asn origin = nb::kInvalidAsn;  // prefix identified by its origin
  nb::Asn observer = nb::kInvalidAsn;
  /// Distinct best-route AS-paths across the AS's quasi-routers (including
  /// the observer AS itself), before and after.
  std::set<std::vector<nb::Asn>> before;
  std::set<std::vector<nb::Asn>> after;

  bool lost_reachability() const { return !before.empty() && after.empty(); }
  bool gained_reachability() const { return before.empty() && !after.empty(); }
};

struct WhatIfResult {
  std::size_t prefixes_evaluated = 0;
  std::size_t pairs_evaluated = 0;  // (prefix, AS) pairs
  std::size_t pairs_changed = 0;
  std::size_t pairs_lost_reachability = 0;
  std::size_t pairs_gained_reachability = 0;
  /// Detailed changes, capped at `max_changes` (insertion order:
  /// prefix-major, then AS).
  std::vector<RouteChange> changes;
  /// True when the wall-clock budget or the interrupt flag stopped the
  /// evaluation before every origin was diffed: the counts above cover
  /// only `prefixes_evaluated` prefixes (a structured partial result, the
  /// same contract as refine's degraded stop -- R710 when served).
  bool truncated = false;
};

struct WhatIfOptions {
  bgp::EngineOptions engine;  // must match how the model is interpreted
  /// Cap on detailed change records (counting continues past the cap).
  std::size_t max_changes = 1000;
  /// Restrict the diff to these observer ASes (empty = all ASes).
  std::set<nb::Asn> observers;
  /// Wall-clock budget in seconds (0 = unbounded), checked between
  /// prefixes -- PR 5's refine budget contract applied to what-if: on
  /// exhaustion the result is returned truncated, never abandoned.
  double wall_clock_budget_seconds = 0;
  /// Cooperative cancellation, polled between prefixes (nullptr = none);
  /// `rdtool serve` points this at the per-request deadline flag.
  const std::atomic<bool>* interrupt = nullptr;
};

/// Distinct best AS-paths across `asn`'s quasi-routers for a finished full
/// simulation, each with the observer AS prepended.  Shared by what-if
/// diffs and the serve predict handler; the empty set means the AS has no
/// route to the prefix.
std::set<std::vector<nb::Asn>> best_paths_of(const topo::Model& model,
                                             const bgp::PrefixSimResult& sim,
                                             nb::Asn asn);

/// Diffs predicted routing for the given origins between `base` and
/// `base + scenario`.
WhatIfResult evaluate_whatif(const topo::Model& base,
                             const WhatIfScenario& scenario,
                             const std::vector<nb::Asn>& origins,
                             const WhatIfOptions& options = {});

/// One prefix-slice of evaluate_whatif against pre-built engines, so a
/// long-lived caller (the serve daemon's what-if handler) can reuse a
/// cached copy-on-write fork across requests and check its own deadline
/// between prefixes.  Accumulates counts and (capped) changes into
/// `result`; `before` must simulate `base` and `after` the forked model.
void diff_origin_routes(const topo::Model& base, const bgp::Engine& before,
                        const topo::Model& changed, const bgp::Engine& after,
                        nb::Asn origin, const WhatIfOptions& options,
                        WhatIfResult* result);

}  // namespace core
