#include "core/pipeline.hpp"

#include <algorithm>

namespace core {

PipelineConfig PipelineConfig::with(double scale, std::uint64_t seed) {
  PipelineConfig config;
  config.internet = config.internet.scaled(scale);
  config.internet.seed = seed;
  config.ground_truth.seed = seed * 7919 + 1;
  config.observation.seed = seed * 104729 + 2;
  config.split.seed = seed * 1299709 + 3;
  return config;
}

Pipeline make_pipeline(const PipelineConfig& config) {
  Pipeline pipeline;
  pipeline.config = config;
  return pipeline;
}

void run_data_stages(Pipeline& pipeline) {
  const PipelineConfig& config = pipeline.config;
  pipeline.internet = data::generate_internet(config.internet);
  pipeline.ground_truth =
      data::build_ground_truth(pipeline.internet, config.ground_truth);

  bgp::ThreadPool pool(config.threads);
  pipeline.raw_dataset = data::observe(pipeline.ground_truth,
                                       pipeline.internet,
                                       config.observation, pool);

  // Stub analysis on the raw dataset (paper Section 3.1): derive the graph,
  // find single-homed non-transit ASes, transfer their path information to
  // their providers.
  const auto raw_paths = pipeline.raw_dataset.all_paths();
  topo::AsGraph raw_graph = topo::AsGraph::from_paths(raw_paths);
  topo::StubAnalysis stubs = topo::analyze_stubs(raw_graph, raw_paths);
  pipeline.single_homed = stubs.single_homed;
  pipeline.dataset =
      data::reduce_stubs(pipeline.raw_dataset, pipeline.single_homed);

  const auto reduced_paths = pipeline.dataset.all_paths();
  pipeline.graph = topo::AsGraph::from_paths(reduced_paths);

  // Level-1 detection: the paper starts from a small list of providers
  // known to be tier-1 and grows the largest clique including them.  Our
  // stand-in for that external knowledge is a handful of the generator's
  // tier-1 ASes.
  std::vector<nb::Asn> seeds(
      pipeline.internet.tier1.begin(),
      pipeline.internet.tier1.begin() +
          std::min<std::size_t>(4, pipeline.internet.tier1.size()));
  std::set<nb::Asn> level1 = topo::grow_level1_clique(pipeline.graph, seeds);
  pipeline.hierarchy = topo::classify_hierarchy(pipeline.graph, level1);

  pipeline.split = data::split_by_points(pipeline.dataset, config.split);
}

void run_model_stages(Pipeline& pipeline) {
  // Initial model (Section 4.5): one quasi-router per AS over the graph
  // derived from ALL feeds (training and validation), as the paper does.
  pipeline.model = topo::Model::one_router_per_as(pipeline.graph);

  pipeline.refine_result = refine_model(pipeline.model,
                                        pipeline.split.training,
                                        pipeline.config.refine);

  if (pipeline.config.refine.validate) {
    analysis::ValidateOptions lint;
    lint.pairwise_sessions = true;
    // The fitted model is relationship-agnostic unless refinement ran in
    // the Section 3.3 baseline mode.
    lint.agnostic =
        !pipeline.config.refine.engine.use_relationship_policies;
    pipeline.lint = analysis::validate_model(pipeline.model, lint);

    analysis::AuditOptions audit;
    audit.engine = pipeline.config.refine.engine;
    pipeline.audit = analysis::audit_model(pipeline.model, audit);
  }

  EvalOptions eval;
  eval.threads = pipeline.config.threads;
  pipeline.training_eval =
      evaluate_predictions(pipeline.model, pipeline.split.training, eval);
  pipeline.validation_eval =
      evaluate_predictions(pipeline.model, pipeline.split.validation, eval);
}

Pipeline run_full_pipeline(const PipelineConfig& config) {
  Pipeline pipeline = make_pipeline(config);
  run_data_stages(pipeline);
  run_model_stages(pipeline);
  return pipeline;
}

}  // namespace core
