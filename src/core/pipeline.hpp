// End-to-end experiment pipeline (DESIGN.md section 4):
//
//   synthetic Internet -> ground-truth router network -> observation points
//   -> full RIB dataset -> single-homed-stub reduction -> AS graph
//   -> training/validation split -> initial model -> iterative refinement
//   -> evaluation on training and validation sets.
//
// Every bench and example builds on this, each consuming the stage outputs it
// needs.  All stages are deterministic in the configured seeds.
#pragma once

#include <memory>
#include <set>

#include "analysis/policy_audit.hpp"
#include "analysis/validate_model.hpp"
#include "core/predict.hpp"
#include "core/refine.hpp"
#include "data/dataset_stats.hpp"
#include "data/ground_truth.hpp"
#include "data/internet_gen.hpp"
#include "data/observations.hpp"
#include "topology/hierarchy.hpp"

namespace core {

struct PipelineConfig {
  data::InternetConfig internet;
  data::GroundTruthConfig ground_truth;
  data::ObservationConfig observation;
  data::SplitConfig split;
  RefineConfig refine;
  unsigned threads = 1;

  /// Applies one CLI-style scale factor / seed to all stages.
  static PipelineConfig with(double scale, std::uint64_t seed);
};

struct Pipeline {
  PipelineConfig config;

  data::Internet internet;
  data::GroundTruth ground_truth;
  data::BgpDataset raw_dataset;      // all feeds, stubs included
  data::BgpDataset dataset;          // after single-homed stub reduction
  std::set<nb::Asn> single_homed;    // removed stub ASes
  topo::AsGraph graph;               // derived from the reduced dataset
  topo::Hierarchy hierarchy;         // clique-grown levels on that graph
  data::DatasetSplit split;          // training/validation by obs point

  topo::Model model;                 // the fitted AS-routing model
  RefineResult refine_result;
  EvalResult training_eval;
  EvalResult validation_eval;
  /// Final lint of the fitted model (filled when config.refine.validate is
  /// on): structural soundness plus the fitted-model closure invariants.
  analysis::Diagnostics lint;
  /// Full static audit of the fitted model (filled when
  /// config.refine.validate is on): safety, dead policies and per-prefix
  /// diversity bounds.  Kept separate from `lint` because dead-policy
  /// findings are advisory, not fit defects.
  analysis::AuditResult audit;
};

/// Stages. Each returns the pipeline for chaining; call in order.
Pipeline make_pipeline(const PipelineConfig& config);
/// Generates internet + ground truth + observations + reduction + graph +
/// split (everything before model fitting).
void run_data_stages(Pipeline& pipeline);
/// Builds the initial model, refines on the training set and evaluates on
/// both subsets.
void run_model_stages(Pipeline& pipeline);
/// Convenience: both of the above.
Pipeline run_full_pipeline(const PipelineConfig& config);

}  // namespace core
