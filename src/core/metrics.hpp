// Match metrics of Section 4.2:
//
//  * RIB-In match      -- the observed route is in the simulated RIB-In of at
//                         least one quasi-router of the observed AS;
//  * potential RIB-Out -- a RIB-In match that was eliminated ONLY in the
//                         final lowest-router-id tie-break;
//  * RIB-Out match     -- at least one quasi-router selected the observed
//                         route as best.
//
// Plus the aggregate statistics used by Table 2 (mismatch reasons) and the
// paper's per-prefix coverage counts (prefixes with RIB-Out matches for at
// least 50% / 90% / 100% of their unique AS-paths).
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "bgp/engine.hpp"
#include "topology/as_path.hpp"
#include "topology/model.hpp"

namespace core {

using topo::AsPath;
using topo::Model;

enum class MatchKind : std::uint8_t {
  kRibOut,
  kPotentialRibOut,
  kRibInOnly,     // received somewhere, lost before the tie-break
  kNotAvailable,  // no quasi-router of the AS received the route
};

const char* match_kind_name(MatchKind kind);

struct PathMatch {
  MatchKind kind = MatchKind::kNotAvailable;
  /// For kPotentialRibOut / kRibInOnly: the latest decision step (across the
  /// AS's quasi-routers) at which the observed route was eliminated.
  bgp::DecisionStep lost_at = bgp::DecisionStep::kEqual;
  /// Dense index of the matching quasi-router (RIB-Out) or of the router
  /// holding the closest RIB-In entry; Model::kNoRouter if unavailable.
  Model::Dense router = Model::kNoRouter;
};

/// Classifies an observed path against the simulation of its prefix.  The
/// path is checked at its observer AS (hops()[0]); `ids` from dense_ids().
PathMatch classify_path(const Model& model, const bgp::PrefixSimResult& sim,
                        const AsPath& observed,
                        std::span<const std::uint32_t> ids);

/// True if some quasi-router of AS `asn` selected a best route whose path
/// equals `route_path` ([neighbor ... origin], excluding `asn`).
bool has_rib_out(const Model& model, const bgp::PrefixSimResult& sim,
                 nb::Asn asn, std::span<const nb::Asn> route_path);

/// Aggregate over many classified paths.
struct MatchStats {
  std::size_t total = 0;
  std::size_t rib_out = 0;
  std::size_t potential_rib_out = 0;
  std::size_t rib_in_only = 0;
  std::size_t not_available = 0;
  /// Eliminations by decisive step, indexed by DecisionStep, over
  /// kPotentialRibOut + kRibInOnly paths.
  std::array<std::size_t, bgp::kNumDecisionSteps> lost_at{};

  // Per-prefix coverage: of the prefixes evaluated, how many had RIB-Out
  // matches for at least 50% / 90% / 100% of their unique observed paths.
  std::size_t prefixes = 0;
  std::size_t prefixes_50 = 0;
  std::size_t prefixes_90 = 0;
  std::size_t prefixes_100 = 0;

  void add(const PathMatch& match);
  /// Folds one prefix's per-path outcomes into the coverage counters.
  void add_prefix_coverage(std::size_t matched, std::size_t paths);

  double rib_out_rate() const;
  double potential_or_better_rate() const;  // RIB-Out + potential (the >80% headline)
  double rib_in_rate() const;               // any RIB-In (upper bound)
  double not_available_rate() const;
};

}  // namespace core
