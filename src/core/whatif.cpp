#include "core/whatif.hpp"

#include <chrono>

namespace core {

using topo::Model;

topo::Model apply_scenario(const Model& base, const WhatIfScenario& scenario) {
  Model model = base;
  for (auto [a, b] : scenario.remove_as_links) {
    for (Model::Dense ra : model.routers_of(a)) {
      const nb::RouterId ra_id = model.router_id(ra);
      // Collect first: removing while iterating peers would invalidate.
      std::vector<nb::RouterId> to_remove;
      for (Model::Dense rb : model.peers(ra)) {
        if (model.router_id(rb).asn() == b)
          to_remove.push_back(model.router_id(rb));
      }
      for (nb::RouterId rb_id : to_remove) model.remove_session(ra_id, rb_id);
    }
  }
  for (auto [a, b] : scenario.remove_sessions) model.remove_session(a, b);
  for (auto [a, b] : scenario.add_as_links) {
    if (!model.has_as(a) || !model.has_as(b) || a == b) continue;
    model.add_session(model.router_id(model.routers_of(a).front()),
                      model.router_id(model.routers_of(b).front()));
  }
  for (const auto& deny : scenario.deny_prefix) {
    for (Model::Dense ra : model.routers_of(deny.from)) {
      for (Model::Dense rb : model.peers(ra)) {
        if (model.router_id(rb).asn() != deny.to) continue;
        model.set_export_filter(model.router_id(ra), model.router_id(rb),
                                deny.prefix, topo::ExportFilter::kDenyAll,
                                nb::kInvalidRouterId);
      }
    }
  }
  return model;
}

std::set<std::vector<nb::Asn>> best_paths_of(const Model& model,
                                             const bgp::PrefixSimResult& sim,
                                             nb::Asn asn) {
  std::set<std::vector<nb::Asn>> out;
  for (Model::Dense r : model.routers_of(asn)) {
    const bgp::Route* best = sim.routers[r].best_route();
    if (best == nullptr) continue;
    std::vector<nb::Asn> full;
    full.reserve(best->path.size() + 1);
    full.push_back(asn);
    full.insert(full.end(), best->path.begin(), best->path.end());
    out.insert(std::move(full));
  }
  return out;
}

void diff_origin_routes(const Model& base, const bgp::Engine& before_engine,
                        const Model& changed, const bgp::Engine& after_engine,
                        nb::Asn origin, const WhatIfOptions& options,
                        WhatIfResult* result) {
  if (!base.has_as(origin)) return;
  ++result->prefixes_evaluated;
  const nb::Prefix prefix = nb::Prefix::for_asn(origin);
  auto before = before_engine.run(prefix, origin);
  auto after = after_engine.run(prefix, origin);
  for (nb::Asn asn : base.asns()) {
    if (!options.observers.empty() && !options.observers.count(asn)) continue;
    ++result->pairs_evaluated;
    auto paths_before = best_paths_of(base, before, asn);
    auto paths_after = best_paths_of(changed, after, asn);
    if (paths_before == paths_after) continue;
    ++result->pairs_changed;
    RouteChange change;
    change.origin = origin;
    change.observer = asn;
    change.before = std::move(paths_before);
    change.after = std::move(paths_after);
    if (change.lost_reachability()) ++result->pairs_lost_reachability;
    if (change.gained_reachability()) ++result->pairs_gained_reachability;
    if (result->changes.size() < options.max_changes)
      result->changes.push_back(std::move(change));
  }
}

WhatIfResult evaluate_whatif(const Model& base, const WhatIfScenario& scenario,
                             const std::vector<nb::Asn>& origins,
                             const WhatIfOptions& options) {
  WhatIfResult result;
  const Model changed = apply_scenario(base, scenario);
  bgp::Engine engine_before(base, options.engine);
  bgp::Engine engine_after(changed, options.engine);

  const auto start = std::chrono::steady_clock::now();
  for (nb::Asn origin : origins) {
    // Budget / cancellation checks between prefixes (the refine contract:
    // a bounded run returns a structured partial result, never nothing).
    if (options.interrupt != nullptr &&
        options.interrupt->load(std::memory_order_relaxed)) {
      result.truncated = true;
      break;
    }
    if (options.wall_clock_budget_seconds > 0 &&
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
                .count() >= options.wall_clock_budget_seconds) {
      result.truncated = true;
      break;
    }
    diff_origin_routes(base, engine_before, changed, engine_after, origin,
                      options, &result);
  }
  return result;
}

}  // namespace core
