#include "core/refine.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <exception>
#include <memory>
#include <new>
#include <optional>
#include <stdexcept>
#include <string>

#include <atomic>

#include "analysis/check_convergence.hpp"
#include "analysis/dispute_graph.hpp"
#include "analysis/partition.hpp"
#include "analysis/policy_audit.hpp"
#include "analysis/reachability_cache.hpp"
#include "analysis/validate_model.hpp"
#include "bgp/sim_memory.hpp"
#include "bgp/threadpool.hpp"
#include "core/fault_inject.hpp"
#include "core/oscillation.hpp"
#include "netbase/json.hpp"
#include "netbase/sysinfo.hpp"
#include "netbase/thread_annotations.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/observer.hpp"
#include "topology/model_io.hpp"

namespace core {
namespace {

using bgp::PrefixSimResult;
using nb::Asn;
using nb::Prefix;
using nb::RouterId;
using topo::AsPath;
using topo::Model;

bool route_path_equals(std::span<const Asn> route_path,
                       std::span<const Asn> expected) {
  return route_path.size() == expected.size() &&
         std::equal(route_path.begin(), route_path.end(), expected.begin());
}

struct PrefixWork {
  Asn origin = nb::kInvalidAsn;
  Prefix prefix;
  std::vector<AsPath> paths;  // deterministically sorted, shorter first
  bool done = false;
  std::size_t matched = 0;  // last iteration's fully matched paths
  // Fault-tolerance state (all checkpointed; see topo::RefineCheckpoint).
  PrefixOutcome outcome = PrefixOutcome::kActive;
  std::size_t active_iterations = 0;  // iterations this prefix was refined
  std::size_t frozen_iteration = 0;   // 0 = never frozen
  OscillationDetector detector;
};

class Refiner {
 public:
  Refiner(Model& model, const RefineConfig& config)
      : model_(model), config_(config) {}

  std::size_t routers_added = 0;
  std::size_t policies_changed = 0;
  std::size_t filters_relaxed = 0;

  /// Resets the per-iteration duplicate alias map; call once per iteration
  /// before the serial apply pass.
  void begin_iteration() {
    alias_.clear();
    pending_.clear();
  }

  /// Runs one heuristic pass for one prefix on top of its simulation.
  /// Returns true if the model was changed.
  ///
  /// mutate=false is the count-only mode of the oscillation guard's freeze
  /// protocol: reservations and matched counting are performed exactly as
  /// in a real pass (mutations never alter the *current* simulation, so the
  /// counts agree), but the model is left untouched -- the pass answers
  /// "how many paths stay matched if we freeze this prefix right now".
  bool process(PrefixWork& work, const PrefixSimResult& sim,
               bool mutate = true);

 private:
  // Candidate scan at AS `a` for the route path `route_path` (not including
  // `a`).  Routers created during this iteration's apply pass are read
  // through their snapshot ancestor's simulated RIB (see snapshot_proxy).
  struct Candidates {
    Model::Dense rib_out_unreserved = Model::kNoRouter;
    Model::Dense rib_in_unreserved = Model::kNoRouter;
    Model::Dense rib_in_any = Model::kNoRouter;
  };
  // A quasi-router is reserved for a route path (suffix), not for a whole
  // observed path: two observed paths sharing a suffix at an AS share the
  // quasi-router serving it.  The suffix is stored as a span into the
  // PrefixWork's own path storage (stable for the whole process() call), so
  // reserving never copies hop vectors.
  using Reservations = std::unordered_map<Model::Dense, std::span<const Asn>>;

  Candidates scan(const PrefixSimResult& sim, Asn a,
                  std::span<const Asn> route_path,
                  const Reservations& reserved) const;

  /// Installs the ranking + deny-shorter filters that make `target` select
  /// the route `route_path` (Section 4.6, "policy adjustment").
  /// `announcer` is the quasi-router of the announcing neighbor AS that was
  /// reserved for the rest of the path while walking from the origin
  /// (kNoRouter when the announcing AS is the origin itself, where every
  /// router announces the same route).  Filters are anchored to the
  /// announcer -- not to the simulation snapshot -- so the adjustment is
  /// stable across iterations:
  ///   * session announcer -> target:            allow >= len(route);
  ///   * other sessions from the announcing AS:  allow >  len(route)
  ///     (blocks equal-length look-alikes that would steal the tie-break);
  ///   * sessions from other ASes:               allow >= len(route)
  ///     (equal-length routes lose to the MED ranking).
  void adjust_policy(const PrefixWork& work, Model::Dense announcer,
                     RouterId target, std::span<const Asn> route_path);

  /// Fig. 7 filter deletion at AS `a` (= hops[k]) for the observed path.
  /// Returns true if a filter was relaxed (possibly toward a duplicate).
  bool try_filter_deletion(const PrefixWork& work, const PrefixSimResult& sim,
                           std::span<const Asn> hops, std::size_t k);

  /// The snapshot router whose simulated RIB stands in for `r`: identity
  /// for routers the simulation covered, the recorded ancestor for
  /// duplicates created earlier in this iteration's apply pass, kNoRouter
  /// otherwise.  A duplicate inherits its source's sessions and per-prefix
  /// policies, so for every prefix that has not customized it the duplicate
  /// would simulate to exactly its source's RIB -- the same inheritance
  /// argument the duplication step itself rests on.  Without this proxy,
  /// every prefix needing an extra quasi-router at a shared AS would mint
  /// its own duplicate in the same iteration instead of reserving one a
  /// prefix before it just created (the old interleaved loop shared them
  /// through re-simulation).
  Model::Dense snapshot_proxy(const PrefixSimResult& sim,
                              Model::Dense r) const {
    if (r < sim.dense_size()) return r;
    const auto it = alias_.find(r);
    return it == alias_.end() ? Model::kNoRouter : it->second;
  }

  /// Records a freshly minted duplicate so later PREFIXES of this iteration
  /// can scan it.  Publication is deferred to the end of process(): the old
  /// interleaved loop simulated before each prefix, so a prefix saw the
  /// duplicates of the prefixes before it but never its own same-iteration
  /// ones -- deferring reproduces that visibility exactly.  The stored
  /// ancestor is always a snapshot router (chains collapse through the
  /// already-published aliases).
  void record_duplicate(const PrefixSimResult& sim, Model::Dense source,
                        RouterId dup) {
    pending_.emplace_back(model_.dense(dup), snapshot_proxy(sim, source));
  }

  Model& model_;
  const RefineConfig& config_;
  /// False during count-only passes (see process); mutation branches then
  /// report "would change" without touching the model.
  bool mutate_ = true;
  /// This-iteration duplicate -> snapshot ancestor (kNoRouter when none).
  std::unordered_map<Model::Dense, Model::Dense> alias_;
  /// Duplicates minted by the prefix currently in process(), published to
  /// alias_ when it finishes.
  std::vector<std::pair<Model::Dense, Model::Dense>> pending_;
};

Refiner::Candidates Refiner::scan(
    const PrefixSimResult& sim, Asn a, std::span<const Asn> route_path,
    const Reservations& reserved) const {
  Candidates out;
  for (Model::Dense r : model_.routers_of(a)) {
    const Model::Dense proxy = snapshot_proxy(sim, r);
    if (proxy == Model::kNoRouter) continue;  // no simulated stand-in
    const bgp::RouterState& state = sim.state(proxy);
    const auto reservation = reserved.find(r);
    // Reserved for the same suffix == available for this suffix.
    const bool is_reserved =
        reservation != reserved.end() &&
        !route_path_equals(reservation->second, route_path);
    const bgp::Route* best = state.best_route();
    if (best != nullptr && route_path_equals(best->path, route_path)) {
      if (!is_reserved && out.rib_out_unreserved == Model::kNoRouter)
        out.rib_out_unreserved = r;
      // A RIB-Out match implies a RIB-In match.
      if (out.rib_in_any == Model::kNoRouter) out.rib_in_any = r;
      if (!is_reserved && out.rib_in_unreserved == Model::kNoRouter)
        out.rib_in_unreserved = r;
      continue;
    }
    for (const bgp::Route& entry : state.rib_in) {
      if (!route_path_equals(entry.path, route_path)) continue;
      if (out.rib_in_any == Model::kNoRouter) out.rib_in_any = r;
      if (!is_reserved && out.rib_in_unreserved == Model::kNoRouter)
        out.rib_in_unreserved = r;
      break;
    }
  }
  return out;
}

void Refiner::adjust_policy(const PrefixWork& work, Model::Dense announcer,
                            RouterId target,
                            std::span<const Asn> route_path) {
  ++policies_changed;
  model_.clear_owned_rules(work.prefix, target);
  const Asn next_as = route_path.front();
  if (config_.allow_ranking)
    model_.set_ranking(target, work.prefix, next_as);
  if (!config_.allow_filters) return;

  if (work.origin == config_.debug_origin) {
    std::fprintf(stderr, "[refine %u]   announcer=%s\n", work.origin,
                 announcer == Model::kNoRouter
                     ? "origin"
                     : model_.router_id(announcer).str().c_str());
  }
  const std::size_t arriving_len = route_path.size();
  const Model::Dense target_dense = model_.dense(target);
  for (Model::Dense peer : model_.peers(target_dense)) {
    const RouterId peer_id = model_.router_id(peer);
    std::uint32_t deny_below = static_cast<std::uint32_t>(arriving_len);
    if (peer_id.asn() == next_as) {
      if (announcer != Model::kNoRouter && peer != announcer) {
        // Same-AS session that is not the designated announcer: an
        // equal-length route over it would tie on MED and could steal the
        // lowest-router-id tie-break, so require strictly longer.
        deny_below = static_cast<std::uint32_t>(arriving_len + 1);
      }
    } else if (!config_.allow_ranking) {
      // Filters-only mode (ablation): without the MED ranking, equal-length
      // routes from other ASes would go to the tie-break, so block them too.
      deny_below = static_cast<std::uint32_t>(arriving_len + 1);
    }
    model_.set_export_filter(peer_id, target, work.prefix, deny_below,
                             target);
  }
}

bool Refiner::try_filter_deletion(const PrefixWork& work,
                                  const PrefixSimResult& sim,
                                  std::span<const Asn> hops, std::size_t k) {
  const Asn a = hops[k];
  const Asn announcing = hops[k + 1];
  const std::span<const Asn> neighbor_route(hops.data() + k + 2,
                                            hops.size() - k - 2);
  const std::size_t arriving_len = neighbor_route.size() + 1;
  const topo::PrefixPolicy* policy = model_.find_policy(work.prefix);
  if (policy == nullptr) return false;  // nothing can be blocking

  for (Model::Dense q : model_.routers_of(announcing)) {
    const Model::Dense proxy = snapshot_proxy(sim, q);
    if (proxy == Model::kNoRouter) continue;
    const bgp::Route* best = sim.state(proxy).best_route();
    if (best == nullptr || !route_path_equals(best->path, neighbor_route))
      continue;
    const RouterId q_id = model_.router_id(q);
    for (Model::Dense r : model_.routers_of(a)) {
      const topo::ExportFilter* filter =
          model_.find_export_filter(q, r, policy);
      if (filter == nullptr || !filter->blocks(arriving_len)) continue;
      if (!mutate_) return true;  // count-only: report without relaxing
      const RouterId r_id = model_.router_id(r);
      if (config_.allow_duplication && filter->owner_target.valid() &&
          filter->owner_target == r_id) {
        // The filter protects r's assigned path (Fig. 7): give the blocked
        // path a fresh landing spot instead of destroying r's setup.
        const RouterId dup = model_.duplicate_router(r_id);
        ++routers_added;
        record_duplicate(sim, r, dup);
        model_.relax_export_filter(q_id, dup, work.prefix, arriving_len);
      } else {
        model_.relax_export_filter(q_id, r_id, work.prefix, arriving_len);
      }
      ++filters_relaxed;
      return true;
    }
    // q selects the right route and no filter blocks it; the RIB-In will
    // appear once simulations catch up with this iteration's changes.
  }
  return false;
}

bool Refiner::process(PrefixWork& work, const PrefixSimResult& sim,
                      bool mutate) {
  mutate_ = mutate;
  bool changed = false;
  Reservations reserved;
  work.matched = 0;

  for (std::size_t path_index = 0; path_index < work.paths.size();
       ++path_index) {
    const AsPath& path = work.paths[path_index];
    const auto& hops = path.hops();
    bool full_match = true;
    // Quasi-router reserved for the previous (origin-side) hop; the
    // designated announcer for the next hop's policy adjustment.
    Model::Dense announcer = Model::kNoRouter;

    for (std::size_t k = hops.size(); k-- > 0;) {
      if (k + 1 == hops.size()) continue;  // the origin originates
      const Asn a = hops[k];
      const std::span<const Asn> route_path(hops.data() + k + 1,
                                            hops.size() - k - 1);
      Candidates c = scan(sim, a, route_path, reserved);

      if (c.rib_out_unreserved != Model::kNoRouter) {
        reserved.emplace(c.rib_out_unreserved, route_path);
        announcer = c.rib_out_unreserved;
        continue;  // matched here; walk on toward the observation point
      }

      full_match = false;
      const bool debug = work.origin == config_.debug_origin;
      if (c.rib_in_unreserved != Model::kNoRouter) {
        reserved.emplace(c.rib_in_unreserved, route_path);
        if (mutate_) {
          if (debug)
            std::fprintf(stderr,
                         "[refine %u] adjust %s for suffix-at %u len %zu\n",
                         work.origin,
                         model_.router_id(c.rib_in_unreserved).str().c_str(),
                         a, route_path.size());
          adjust_policy(work, announcer,
                        model_.router_id(c.rib_in_unreserved), route_path);
        }
        changed = true;
      } else if (c.rib_in_any != Model::kNoRouter) {
        if (config_.allow_duplication) {
          if (mutate_) {
            const RouterId dup =
                model_.duplicate_router(model_.router_id(c.rib_in_any));
            ++routers_added;
            record_duplicate(sim, c.rib_in_any, dup);
            reserved.emplace(model_.dense(dup), route_path);
            if (debug)
              std::fprintf(stderr, "[refine %u] duplicate %s -> %s at %u\n",
                           work.origin,
                           model_.router_id(c.rib_in_any).str().c_str(),
                           dup.str().c_str(), a);
            adjust_policy(work, announcer, dup, route_path);
          }
          changed = true;
        }
        // Without duplication the path cannot be accommodated; give up.
      } else {
        const bool deleted = try_filter_deletion(work, sim, hops, k);
        if (debug)
          std::fprintf(stderr, "[refine %u] no rib-in at %u (len %zu), "
                       "filter-deletion=%d\n",
                       work.origin, a, route_path.size(), deleted);
        if (deleted) changed = true;
      }
      break;  // one fix per path per iteration (Section 4.6)
    }
    if (full_match) ++work.matched;
  }
  for (const auto& [dup, ancestor] : pending_) alias_.emplace(dup, ancestor);
  pending_.clear();
  return changed;
}

/// Serialized access to the checkpoint file.  The loop writes between
/// iterations today, but the interrupt and fault paths can both request a
/// save around the same boundary (and sharded refiners will write from
/// more than one place), so the writer owns a mutex and clang's
/// thread-safety analysis checks it is taken for every write.
class CheckpointWriter {
 public:
  explicit CheckpointWriter(std::string path) : path_(std::move(path)) {}

  bool enabled() const { return !path_.empty(); }

  /// Atomic save (tmp + rename inside save_refine_checkpoint); returns
  /// false and fills `error` on failure.
  bool write(const topo::RefineCheckpoint& checkpoint, std::string* error)
      RD_EXCLUDES(mutex_) {
    nb::MutexLock lock(mutex_);
    return topo::save_refine_checkpoint(path_, checkpoint, error);
  }

 private:
  const std::string path_;
  nb::Mutex mutex_;
};

}  // namespace

const char* prefix_outcome_name(PrefixOutcome outcome) {
  switch (outcome) {
    case PrefixOutcome::kActive:
      return "active";
    case PrefixOutcome::kConverged:
      return "converged";
    case PrefixOutcome::kOscillating:
      return "oscillating";
    case PrefixOutcome::kBudgetExhausted:
      return "budget-exhausted";
  }
  return "active";
}

std::optional<PrefixOutcome> prefix_outcome_from(std::string_view token) {
  if (token == "active") return PrefixOutcome::kActive;
  if (token == "converged") return PrefixOutcome::kConverged;
  if (token == "oscillating") return PrefixOutcome::kOscillating;
  if (token == "budget-exhausted") return PrefixOutcome::kBudgetExhausted;
  return std::nullopt;
}

const char* refine_stop_name(RefineStop stop) {
  switch (stop) {
    case RefineStop::kCompleted:
      return "completed";
    case RefineStop::kIterationCap:
      return "iteration-cap";
    case RefineStop::kWallClock:
      return "wall-clock";
    case RefineStop::kInterrupted:
      return "interrupted";
    case RefineStop::kFault:
      return "fault";
  }
  return "completed";
}

std::uint64_t dataset_fingerprint(const data::BgpDataset& training) {
  // FNV-1a over the origin-ordered training paths: the identity refinement
  // actually consumes (points and record order are irrelevant to the fit).
  std::uint64_t hash = 1469598103934665603ull;
  const auto mixin = [&hash](std::uint64_t value) {
    hash = (hash ^ value) * 1099511628211ull;
  };
  for (const auto& [origin, paths] : training.paths_by_origin()) {
    mixin(origin);
    mixin(paths.size());
    for (const AsPath& path : paths) {
      mixin(path.hops().size());
      for (const Asn hop : path.hops()) mixin(hop);
    }
  }
  return hash;
}

RefineResult refine_model(topo::Model& model,
                          const data::BgpDataset& training,
                          const RefineConfig& config) {
  // Observability (RefineConfig::observer): both sinks optional and
  // one-directional -- nothing read back from them feeds the heuristic, so
  // the fitted model is byte-identical with and without them.
  obs::Registry* reg =
      config.observer != nullptr ? config.observer->registry : nullptr;
  obs::TraceSink* trace =
      config.observer != nullptr ? config.observer->trace : nullptr;
  if (trace != nullptr && trace->level() == obs::TraceLevel::kOff)
    trace = nullptr;
  obs::RefineMetricSet metrics;
  if (reg != nullptr) metrics = obs::RefineMetricSet::define(*reg);
  // Flight recorder (RefineConfig::flight_recorder): same one-directional
  // contract as the observer, but cheap enough -- one ring-slot write per
  // coarse loop event -- to stay attached on every production run.
  obs::FlightRecorder* flight = config.flight_recorder;
  // Phase-span args ({"iteration": N}); empty (unallocated) unless the
  // trace actually records phases.
  const auto iter_args = [&](std::size_t iteration) -> std::string {
    if (trace == nullptr || !trace->enabled(obs::TraceLevel::kPhase))
      return {};
    nb::JsonWriter w;
    w.begin_object()
        .key("iteration")
        .value(static_cast<std::uint64_t>(iteration))
        .end_object();
    return w.str();
  };
  obs::PhaseTimer total_timer(reg, metrics.total_ns, trace, "refine");

  RefineResult result;
  std::vector<PrefixWork> work;
  std::size_t total_paths = 0;
  std::size_t unmatchable = 0;
  for (auto& [origin, paths] : training.paths_by_origin()) {
    total_paths += paths.size();
    if (!model.has_as(origin)) {
      unmatchable += paths.size();  // origin absent from the model graph
      continue;
    }
    PrefixWork w;
    w.origin = origin;
    w.prefix = Prefix::for_asn(origin);
    w.paths = paths;
    work.push_back(std::move(w));
  }

  bgp::Engine engine(model, config.engine);  // default: policy-agnostic
  Refiner refiner(model, config);
  bgp::ThreadPool pool(config.threads);
  result.threads_used = pool.size() == 0 ? 1 : pool.size();

  for (PrefixWork& w : work) {
    w.detector =
        OscillationDetector(config.oscillation_window,
                            config.oscillation_confirmations);
  }

  const std::uint64_t dataset_hash = dataset_fingerprint(training);
  const auto wall_start = std::chrono::steady_clock::now();
  // Timestamp source for shard samples and sweep spans: the trace clock
  // when a sink is attached (so profiler spans align with phase spans in
  // the same file), the fit's own steady clock otherwise -- consistent
  // within one fit either way.
  const auto sweep_now_us = [&]() -> std::uint64_t {
    if (trace != nullptr) return trace->now_us();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - wall_start)
            .count());
  };
  const auto push_diag = [&result](analysis::Severity severity,
                                   const char* code, std::string location,
                                   std::string message) {
    result.diagnostics.push_back(analysis::Diagnostic{
        severity, code, std::move(location), std::move(message)});
  };
  const auto freeze = [&flight](PrefixWork& w, PrefixOutcome outcome,
                                std::size_t iteration) {
    w.done = true;
    w.outcome = outcome;
    w.frozen_iteration = iteration;
    if (flight != nullptr)
      flight->record(0, obs::FlightEventType::kPrefixFrozen, iteration,
                     w.origin, static_cast<std::uint64_t>(outcome));
  };
  // Forensic pass behind an R700/R701 freeze: name the dispute wheel the
  // static analyzer can pin on this prefix (cross-link to dispute_graph).
  // Enumeration caps are far below the audit's defaults -- this runs inside
  // the fit, so it must stay cheap even on hostile policy states.
  const auto suspect_wheel = [&](const PrefixWork& w) -> std::string {
    analysis::DisputeGraphOptions options;
    options.max_paths_per_router = 16;
    options.max_path_length = 12;
    options.max_nodes = 4096;
    const analysis::DisputeGraph graph =
        analysis::build_dispute_graph(engine, w.prefix, w.origin, options);
    const std::vector<std::size_t> cycle = analysis::find_dispute_cycle(graph);
    if (cycle.empty()) {
      return graph.truncated
                 ? "no dispute cycle found within enumeration caps"
                 : "no static dispute cycle found";
    }
    return "suspected dispute wheel: " +
           analysis::render_cycle(model, graph, cycle);
  };
  // Atomic full-state snapshot after `completed_iteration`; resuming from it
  // reproduces the uninterrupted run byte for byte.  A failed save degrades
  // to a warning (R705): losing checkpoints must not lose the fit.
  CheckpointWriter checkpoint_writer(config.checkpoint_path);
  const auto write_checkpoint = [&](std::size_t completed_iteration) {
    if (!checkpoint_writer.enabled()) return;
    topo::RefineCheckpoint ck;
    ck.iteration = completed_iteration;
    ck.dataset_hash = dataset_hash;
    ck.messages_simulated = result.messages_simulated;
    ck.routers_added = refiner.routers_added;
    ck.policies_changed = refiner.policies_changed;
    ck.filters_relaxed = refiner.filters_relaxed;
    ck.prefixes.reserve(work.size());
    for (const PrefixWork& w : work) {
      topo::PrefixCheckpointState p;
      p.origin = w.origin;
      p.state = prefix_outcome_name(w.outcome);
      p.matched = w.matched;
      p.paths_total = w.paths.size();
      p.active_iterations = w.active_iterations;
      p.frozen_iteration = w.frozen_iteration;
      const OscillationDetector::State& st = w.detector.state();
      p.best_matched = st.best_matched;
      p.hits = st.hits;
      p.freeze_pending = st.freeze_pending;
      p.freeze_countdown = st.freeze_countdown;
      p.fingerprints = st.fingerprints;
      ck.prefixes.push_back(std::move(p));
    }
    ck.model = model;
    std::string save_error;
    const bool saved = checkpoint_writer.write(ck, &save_error);
    if (saved) {
      result.checkpoint_written = true;
    } else {
      push_diag(analysis::Severity::kWarning,
                analysis::codes::kCheckpointError, "checkpoint",
                save_error + "; fit continues without this checkpoint");
    }
    if (flight != nullptr)
      flight->record(0, obs::FlightEventType::kCheckpoint,
                     completed_iteration, saved ? 1 : 0);
  };
  // Reachability bounds are shared with the shard planner and -- via
  // RefineConfig::reachability_cache -- with callers that already computed
  // worksets for this model in-process (rdtool plan | refine); the cache is
  // generation-keyed, so a stale injected cache just misses.  Stats are
  // reported as deltas against entry so a shared cache only charges this
  // fit's traffic.
  analysis::ReachabilityCache local_cache;
  analysis::ReachabilityCache& reach_cache =
      config.reachability_cache != nullptr ? *config.reachability_cache
                                           : local_cache;
  const analysis::ReachabilityCache::Stats cache_start = reach_cache.stats();
  const auto finish = [&]() -> RefineResult {
    total_timer.stop();
    result.phase_seconds.total = total_timer.seconds();
    const analysis::ReachabilityCache::Stats cache_end = reach_cache.stats();
    result.cache_hits = cache_end.hits - cache_start.hits;
    result.cache_misses = cache_end.misses - cache_start.misses;
    result.cache_invalidations =
        cache_end.invalidations - cache_start.invalidations;
    if (reg != nullptr) {
      reg->add(metrics.cache_hits, result.cache_hits);
      reg->add(metrics.cache_misses, result.cache_misses);
      reg->add(metrics.cache_invalidations, result.cache_invalidations);
      reg->set_gauge(metrics.peak_rss_bytes, nb::peak_rss_bytes());
    }
    if (flight != nullptr) {
      flight->record(0, obs::FlightEventType::kStop,
                     static_cast<std::uint64_t>(result.stop),
                     result.iterations);
      // The post-mortem trigger: any degraded or faulted stop dumps the
      // rings, so the last moments of a bad run are always inspectable.
      if ((result.degraded() || result.stop == RefineStop::kFault) &&
          !config.flight_dump_path.empty()) {
        std::string dump_error;
        if (flight->dump_to_file(config.flight_dump_path, &dump_error)) {
          result.flight_dump_written = true;
        } else {
          push_diag(analysis::Severity::kWarning,
                    analysis::codes::kFlightDumpError, "flight-recorder",
                    dump_error + "; post-mortem dump skipped");
        }
      }
    }
    return std::move(result);
  };

  // Externally supplied shard plan (RefineConfig::shard_plan): its workset
  // indices refer to compute_all_worksets order -- the INITIAL model's
  // ascending AS list -- so it is only meaningful if its dataset
  // fingerprint matches this model.  Verified once up front; executing a
  // mismatched plan would silently mis-map prefixes to shards, so reject
  // it loudly (A822, kFault) instead.  The check is against the pre-fit
  // model on purpose: refinement adds routers, and the plan's shard
  // ASSIGNMENT (origin -> shard) stays valid regardless because origins
  // never change.
  std::vector<std::size_t> work_shard;  // work index -> assigned shard
  std::vector<std::uint64_t> work_cost;  // work index -> planned cost
  if (config.shard_plan != nullptr) {
    const analysis::ShardPlan& plan = *config.shard_plan;
    const std::uint64_t model_fp = analysis::plan_fingerprint(model);
    bool indices_ok = plan.num_shards > 0;
    const std::vector<Asn> asns = model.asns();
    for (const analysis::ShardPlan::Shard& shard : plan.shards) {
      for (const std::size_t p : shard.prefixes)
        indices_ok = indices_ok && p < asns.size();
    }
    if (plan.fingerprint != model_fp || !indices_ok) {
      char have[17], want[17];
      std::snprintf(have, sizeof have, "%016llx",
                    static_cast<unsigned long long>(plan.fingerprint));
      std::snprintf(want, sizeof want, "%016llx",
                    static_cast<unsigned long long>(model_fp));
      push_diag(analysis::Severity::kError,
                analysis::codes::kPlanFingerprintMismatch, "shard-plan",
                std::string("externally supplied shard plan does not match "
                            "the model being refined (plan fingerprint ") +
                    have + ", model " + want +
                    (indices_ok ? "" : "; plan indexes past the AS list") +
                    "); refusing to execute it");
      result.stop = RefineStop::kFault;
      if (flight != nullptr)
        flight->record(0, obs::FlightEventType::kFault, 0, /*kind=*/1);
      return finish();
    }
    // Map each work item's origin to its planned shard (and its planned
    // per-prefix cost, so the profiler can price the shards the plan's
    // assignment yields over each iteration's ACTIVE subset).  asns is
    // ascending and plan index p names asns[p]'s prefix, so a binary
    // search per work item resolves the assignment.  Origins a plan
    // somehow omits default to shard 0 -- scheduling only, never
    // correctness.  Plans predating Shard::prefix_costs price as 0.
    std::vector<std::size_t> shard_of(asns.size(), 0);
    std::vector<std::uint64_t> cost_of(asns.size(), 0);
    for (std::size_t s = 0; s < plan.shards.size(); ++s) {
      const analysis::ShardPlan::Shard& shard = plan.shards[s];
      const bool priced = shard.prefix_costs.size() == shard.prefixes.size();
      for (std::size_t j = 0; j < shard.prefixes.size(); ++j) {
        shard_of[shard.prefixes[j]] = s;
        if (priced) cost_of[shard.prefixes[j]] = shard.prefix_costs[j];
      }
    }
    work_shard.resize(work.size(), 0);
    work_cost.resize(work.size(), 0);
    for (std::size_t i = 0; i < work.size(); ++i) {
      const auto it =
          std::lower_bound(asns.begin(), asns.end(), work[i].origin);
      if (it != asns.end() && *it == work[i].origin) {
        const auto p = static_cast<std::size_t>(it - asns.begin());
        work_shard[i] = shard_of[p];
        work_cost[i] = cost_of[p];
      }
    }
  }

  std::size_t start_iteration = 1;
  if (config.resume != nullptr) {
    const topo::RefineCheckpoint& ck = *config.resume;
    if (ck.dataset_hash != dataset_hash) {
      push_diag(analysis::Severity::kError,
                analysis::codes::kResumeMismatch, "resume",
                "checkpoint was written for a different training set "
                "(dataset hash mismatch); refusing to resume");
      result.stop = RefineStop::kFault;
      if (flight != nullptr)
        flight->record(0, obs::FlightEventType::kFault, 0, /*kind=*/2);
      return finish();
    }
    for (PrefixWork& w : work) {
      const topo::PrefixCheckpointState* saved = nullptr;
      for (const topo::PrefixCheckpointState& p : ck.prefixes) {
        if (p.origin == w.origin) {
          saved = &p;
          break;
        }
      }
      const std::optional<PrefixOutcome> outcome =
          saved != nullptr ? prefix_outcome_from(saved->state) : std::nullopt;
      if (saved == nullptr || !outcome ||
          saved->paths_total != w.paths.size()) {
        push_diag(analysis::Severity::kError,
                  analysis::codes::kResumeMismatch,
                  "origin " + std::to_string(w.origin),
                  "checkpoint does not cover this prefix with the same "
                  "path count; refusing to resume");
        result.stop = RefineStop::kFault;
        if (flight != nullptr)
          flight->record(0, obs::FlightEventType::kFault, 0, /*kind=*/2);
        return finish();
      }
      w.outcome = *outcome;
      w.done = w.outcome != PrefixOutcome::kActive;
      w.matched = saved->matched;
      w.active_iterations = saved->active_iterations;
      w.frozen_iteration = saved->frozen_iteration;
      OscillationDetector::State st;
      st.fingerprints = saved->fingerprints;
      st.hits = saved->hits;
      st.best_matched = saved->best_matched;
      st.freeze_pending = saved->freeze_pending;
      st.freeze_countdown = saved->freeze_countdown;
      w.detector.restore(std::move(st));
    }
    refiner.routers_added = ck.routers_added;
    refiner.policies_changed = ck.policies_changed;
    refiner.filters_relaxed = ck.filters_relaxed;
    result.messages_simulated = ck.messages_simulated;
    result.iterations = ck.iteration;
    start_iteration = ck.iteration + 1;
  }

  // Per-prefix sim spans land on synthetic tids 1000 + worker so Perfetto
  // shows one track per sweep worker (tid 0 is the serial refine track).
  const bool prefix_trace =
      trace != nullptr && trace->enabled(obs::TraceLevel::kPrefix);
  // SimCounters are collected whenever anything consumes them: registry
  // shards, the per-iteration rib_entries series, or per-prefix spans.
  const bool counting =
      reg != nullptr ||
      (trace != nullptr && trace->enabled(obs::TraceLevel::kIteration));
  // Named at kIteration (not just kPrefix): profile traces carry per-shard
  // spans on the worker tracks at the default level, and Perfetto should
  // label them.
  if (trace != nullptr && trace->enabled(obs::TraceLevel::kIteration)) {
    trace->name_thread(0, "refine");
    for (unsigned worker = 0; worker < pool.shard_count(); ++worker)
      trace->name_thread(1000 + worker,
                         "sim-worker-" + std::to_string(worker));
  }
  struct PrefixSpan {
    std::uint64_t start_us = 0;
    std::uint64_t dur_us = 0;
    unsigned worker = 0;
  };
  // Per executed shard of an instrumented shard-executed sweep: which
  // worker ran it, its span on the sweep clock, and the worker arena's
  // high-water mark when it finished.
  struct ShardRec {
    unsigned worker = 0;
    std::uint64_t start_us = 0;
    std::uint64_t dur_us = 0;
    std::uint64_t arena_bytes = 0;
  };

  // Sweep compaction (RefineConfig::compact_sweep; DESIGN.md section 12):
  // in agnostic mode each prefix simulates over its static working set.
  // The relaxed reachability bound is the working set of choice here -- it
  // is sound for the specialized loop (routers outside it sit behind
  // kDenyAll filters, so a full run provably leaves them empty) and costs
  // one session BFS per (generation, prefix), served by the cache across
  // the sweep.  Engine::build_view returns null for non-agnostic option
  // sets, which keeps the fallback decision in one place.
  const bool compact_sweep = config.compact_sweep &&
                             !config.engine.use_relationship_policies &&
                             !config.engine.use_igp_cost &&
                             !config.engine.use_ibgp_mesh;
  // One simulation arena per pool slot: parallel_for_worker guarantees a
  // slot is owned by one thread per batch, so sweeps reuse these buffers
  // across prefixes and iterations with no per-message heap traffic.
  std::vector<bgp::SimMemory> sim_memory(pool.shard_count());
  std::atomic<std::uint64_t> compacted_runs{0};
  const auto simulate = [&](const PrefixWork& w, bgp::SimCounters* counters,
                            unsigned worker, PrefixSimResult& out) {
    bgp::SimMemory& mem = sim_memory[worker];
    if (compact_sweep) {
      const std::shared_ptr<const std::vector<char>> members =
          reach_cache.relaxed(model, w.prefix, w.origin);
      if (std::shared_ptr<const bgp::PrefixView> view =
              engine.build_view(w.prefix, w.origin, *members)) {
        compacted_runs.fetch_add(1, std::memory_order_relaxed);
        engine.run_compacted_into(std::move(view), mem, counters, out);
        return;
      }
    }
    engine.run_into(w.prefix, w.origin, mem, counters, nullptr, out);
  };

  std::size_t routers_added_prev = refiner.routers_added;
  std::size_t policies_changed_prev = refiner.policies_changed;
  bool reached_fixpoint = false;
  // Reused across iterations so sims keep their RouterState capacity.
  std::vector<std::size_t> active_index;
  std::vector<PrefixSimResult> sims;
  std::vector<analysis::Diagnostics> sim_diags;
  std::vector<bgp::SimCounters> sim_counters;
  std::vector<PrefixSpan> spans;
  std::vector<std::vector<std::size_t>> shard_items;
  std::vector<std::uint64_t> shard_predicted;
  std::vector<ShardRec> shard_recs;
  std::vector<analysis::PrefixWorkset> iter_worksets;
  for (std::size_t iteration = start_iteration;
       iteration <= config.max_iterations; ++iteration) {
    active_index.clear();
    for (std::size_t i = 0; i < work.size(); ++i) {
      if (!work[i].done) active_index.push_back(i);
    }
    const std::size_t active = active_index.size();
    if (active == 0) break;
    if (flight != nullptr)
      flight->record(0, obs::FlightEventType::kIterationStart, iteration,
                     active);
    const std::uint64_t iter_ts =
        trace != nullptr && trace->enabled(obs::TraceLevel::kIteration)
            ? trace->now_us()
            : 0;

    // Simulation sweep: every active prefix against the immutable
    // iteration-start model.  The engine's epoch context is built once up
    // front (and held for this iteration's selection fingerprints); worker
    // order does not matter because results land in slots.
    sims.resize(active);
    const std::shared_ptr<const bgp::SimContext> iter_ctx = engine.context();
    // Test-only fault hook: throw from one worker body mid-sweep.
    const auto inject_worker_fault = [&](std::size_t i) {
#ifdef RD_FAULT_INJECTION
      if (config.fault_plan != nullptr &&
          config.fault_plan->throw_iteration == iteration && i == 0) {
        if (config.fault_plan->throw_bad_alloc) throw std::bad_alloc();
        throw std::runtime_error("injected sweep fault");
      }
#else
      (void)i;
#endif
    };
    obs::PhaseTimer sim_timer(reg, metrics.simulate_ns, trace, "simulate",
                              iter_args(iteration));
    // Shard-executed schedule (RefineConfig::shard_sweep; DESIGN.md
    // section 13): instead of handing the pool a flat index range, group
    // the active prefixes into cost-balanced shards -- the external plan's
    // assignment, or a fresh plan over this iteration's relaxed worksets
    // -- and hand the pool one task per shard.  Scheduling only: results
    // still land in their deterministic slots and the apply phase stays
    // serial, so the fitted model is byte-identical to the flat sweep at
    // every thread and shard count.
    const bool shard_exec = config.shard_sweep && active > 1;
    // Sweep profiling (DESIGN.md section 14): shard samples are collected
    // whenever the sweep is both shard-executed and instrumented; the
    // flight recorder's shard events ride the same hooks.  Neither exists
    // on the zero-observer path.
    const bool sweep_profiled = counting && shard_exec;
    const std::uint64_t sweep_t0 =
        (sweep_profiled || flight != nullptr) ? sweep_now_us() : 0;
    bool sweep_faulted = false;
    try {
    shard_items.clear();
    shard_predicted.clear();
    if (shard_exec) {
      if (config.shard_plan != nullptr) {
        shard_items.assign(config.shard_plan->num_shards, {});
        for (std::size_t i = 0; i < active; ++i)
          shard_items[work_shard[active_index[i]]].push_back(i);
        shard_predicted.assign(shard_items.size(), 0);
        if (sweep_profiled || flight != nullptr) {
          // Price each shard over the ACTIVE subset it actually runs this
          // iteration, not the plan's full-sweep load.
          for (std::size_t s = 0; s < shard_items.size(); ++s) {
            for (const std::size_t i : shard_items[s])
              shard_predicted[s] += work_cost[active_index[i]];
          }
        }
      } else {
        // Fresh plan each iteration: the model mutated since the last
        // one.  Each active prefix's relaxed bound is primed in parallel
        // through reach_cache -- the compacted sweep reads the very same
        // entries back, so this is a prefetch, not duplicated work.
        iter_worksets.assign(active, {});
        analysis::WorksetOptions ws_options;
        ws_options.exact = false;
        pool.parallel_for(active, [&](std::size_t i) {
          const PrefixWork& w = work[active_index[i]];
          iter_worksets[i] = analysis::compute_working_set(
              engine, w.prefix, w.origin, ws_options, &reach_cache, nullptr);
        });
        analysis::PlanOptions plan_options;
        plan_options.shards = result.threads_used;
        const analysis::ShardPlan plan = analysis::plan_shards(
            iter_worksets, model.num_routers(), plan_options, nullptr);
        shard_items.assign(plan.shards.size(), {});
        shard_predicted.assign(plan.shards.size(), 0);
        for (std::size_t s = 0; s < plan.shards.size(); ++s) {
          shard_items[s] = plan.shards[s].prefixes;
          shard_predicted[s] = plan.shards[s].cost;
        }
      }
      ++result.sharded_iterations;
    }
    if (counting) {
      // Instrumented sweep: identical engine runs, plus per-prefix
      // SimCounters and per-worker metric shards.  The shards merge into
      // the registry in ascending worker order when the group leaves
      // scope (after the pool barrier), so totals are deterministic for
      // every thread count.
      sim_counters.assign(active, {});
      if (prefix_trace) spans.assign(active, {});
      std::optional<obs::ShardGroup> shards;
      if (reg != nullptr) shards.emplace(*reg, pool.shard_count());
      const auto run_item = [&](unsigned worker, std::size_t i) {
        inject_worker_fault(i);
        const PrefixWork& w = work[active_index[i]];
        const std::uint64_t t0 = prefix_trace ? trace->now_us() : 0;
        simulate(w, &sim_counters[i], worker, sims[i]);
        if (prefix_trace)
          spans[i] = {t0, trace->now_us() - t0, worker};
        if (shards.has_value()) {
          obs::Shard& shard = shards->shard(worker);
          const bgp::SimCounters& c = sim_counters[i];
          shard.add(metrics.engine_messages, c.messages);
          shard.add(metrics.engine_activations, c.activations);
          shard.add(metrics.engine_rib_inserts, c.rib_inserts);
          shard.add(metrics.engine_rib_replacements, c.rib_replacements);
          shard.add(metrics.engine_withdrawals, c.withdrawals);
          shard.add(metrics.engine_selection_changes, c.selection_changes);
          shard.observe(metrics.messages_per_prefix,
                        static_cast<double>(c.messages));
        }
      };
      if (shard_exec) {
        // Wrap each shard in a timed span (trace clock) and flight events;
        // the ShardRec lands in the shard's own slot, so the serial
        // post-sweep pass reads it race-free after the pool barrier.
        shard_recs.assign(shard_items.size(), {});
        pool.parallel_for_worker(
            shard_items.size(), [&](unsigned worker, std::size_t s) {
              const std::uint64_t t0 = sweep_now_us();
              if (flight != nullptr)
                flight->record(1 + worker, obs::FlightEventType::kShardStart,
                               iteration, s, shard_predicted[s]);
              for (const std::size_t i : shard_items[s]) run_item(worker, i);
              const std::uint64_t arena =
                  sim_memory[worker].footprint_bytes();
              if (flight != nullptr)
                flight->record(1 + worker, obs::FlightEventType::kShardEnd,
                               iteration, s, arena);
              shard_recs[s] =
                  ShardRec{worker, t0, sweep_now_us() - t0, arena};
            });
      } else {
        pool.parallel_for_worker(active, run_item);
      }
    } else {
      // Zero-observer sweep: the pre-observability code path, modulo the
      // worker-slot simulation arena (and, when a flight recorder is
      // attached, one ring write per shard boundary -- recording only,
      // nothing is timed or aggregated here).
      const auto run_item = [&](unsigned worker, std::size_t i) {
        inject_worker_fault(i);
        const PrefixWork& w = work[active_index[i]];
        simulate(w, nullptr, worker, sims[i]);
      };
      if (shard_exec) {
        pool.parallel_for_worker(
            shard_items.size(), [&](unsigned worker, std::size_t s) {
              if (flight != nullptr)
                flight->record(1 + worker, obs::FlightEventType::kShardStart,
                               iteration, s, shard_predicted[s]);
              for (const std::size_t i : shard_items[s]) run_item(worker, i);
              if (flight != nullptr)
                flight->record(1 + worker, obs::FlightEventType::kShardEnd,
                               iteration, s,
                               sim_memory[worker].footprint_bytes());
            });
      } else {
        pool.parallel_for_worker(active, run_item);
      }
    }
    } catch (const std::exception& e) {
      // A worker body threw (the pool drains the batch, rethrows here, and
      // stays usable).  The model still reflects the last completed
      // iteration -- mutations only happen in the serial phase -- so the
      // state is checkpointable and the partial result is consistent.
      push_diag(analysis::Severity::kError, analysis::codes::kSweepFault,
                "iteration " + std::to_string(iteration),
                std::string("simulation sweep failed: ") + e.what() +
                    "; returning partial result at the last completed "
                    "iteration");
      sweep_faulted = true;
      if (flight != nullptr)
        flight->record(0, obs::FlightEventType::kFault, iteration,
                       /*kind=*/0);
    }
    sim_timer.stop();
    result.phase_seconds.simulate += sim_timer.seconds();
    const std::uint64_t sweep_t1 = sweep_profiled ? sweep_now_us() : 0;
    if (sweep_faulted) {
      result.stop = RefineStop::kFault;
      write_checkpoint(iteration - 1);
      break;
    }
    if (sweep_profiled) {
      // Serial post-sweep collection (after the pool barrier): one sample
      // per non-empty shard, plus this iteration's sweep span -- the raw
      // material obs::profile_sweep and `rdtool profile` attribute
      // speedup loss from.  Shards the planner left empty are skipped:
      // they carry no work and would only pollute the predicted-vs-
      // measured correlation with (0, ~0) pairs.
      const bool shard_trace =
          trace != nullptr && trace->enabled(obs::TraceLevel::kIteration);
      for (std::size_t s = 0; s < shard_items.size(); ++s) {
        if (shard_items[s].empty()) continue;
        std::uint64_t shard_messages = 0;
        for (const std::size_t i : shard_items[s])
          shard_messages += sim_counters[i].messages;
        obs::SweepShardSample sample;
        sample.iteration = iteration;
        sample.shard = s;
        sample.worker = shard_recs[s].worker;
        sample.predicted_cost = shard_predicted[s];
        sample.start_us = shard_recs[s].start_us;
        sample.dur_us = shard_recs[s].dur_us;
        sample.messages = shard_messages;
        sample.prefixes = shard_items[s].size();
        sample.arena_bytes = shard_recs[s].arena_bytes;
        result.shard_samples.push_back(sample);
        if (shard_trace) {
          // One span per executed shard on its worker's track (stable
          // schema; `rdtool profile` reads it back -- DESIGN.md section
          // 9).
          nb::JsonWriter args;
          args.begin_object();
          args.key("iteration").value(static_cast<std::uint64_t>(iteration));
          args.key("shard").value(static_cast<std::uint64_t>(s));
          args.key("predicted_cost").value(sample.predicted_cost);
          args.key("prefixes")
              .value(static_cast<std::uint64_t>(sample.prefixes));
          args.key("messages").value(sample.messages);
          args.key("arena_bytes").value(sample.arena_bytes);
          args.end_object();
          trace->complete("sweep", "shard", sample.start_us, sample.dur_us,
                          1000 + sample.worker, args.str());
        }
      }
      result.sweep_spans.push_back(
          obs::SweepIterationSpan{iteration, sweep_t0, sweep_t1 - sweep_t0});
    }
#ifdef RD_FAULT_INJECTION
    // Test-only fault hook: make one prefix's simulation report divergence.
    if (config.fault_plan != nullptr &&
        config.fault_plan->fail_sim_iteration == iteration) {
      for (std::size_t i = 0; i < active; ++i) {
        if (work[active_index[i]].origin == config.fault_plan->fail_sim_origin)
          sims[i].converged = false;
      }
    }
#endif
    std::uint64_t iteration_messages = 0;
    for (const PrefixSimResult& sim : sims)
      iteration_messages += sim.messages;
    result.messages_simulated += iteration_messages;

    if (prefix_trace) {
      // Serial post-sweep emission: one span per simulation on its
      // worker's track, annotated with the decision-step elimination
      // histogram (the aggregate twin of bgp::explain_selection; costs
      // one compare_routes per Adj-RIB-In entry, which is why it is
      // gated on the most verbose trace level).
      const std::shared_ptr<const bgp::SimContext> ctx = engine.context();
      for (std::size_t i = 0; i < active; ++i) {
        const PrefixWork& w = work[active_index[i]];
        const std::array<std::uint64_t, bgp::kNumDecisionSteps> eliminated =
            obs::elimination_histogram(ctx->ids, sims[i]);
        if (reg != nullptr) {
          for (std::size_t step = 0; step < bgp::kNumDecisionSteps; ++step)
            reg->add(metrics.eliminated[step], eliminated[step]);
        }
        const bgp::SimCounters& c = sim_counters[i];
        nb::JsonWriter args;
        args.begin_object();
        args.key("origin").value(static_cast<std::uint64_t>(w.origin));
        args.key("iteration").value(static_cast<std::uint64_t>(iteration));
        args.key("messages").value(c.messages);
        args.key("activations").value(c.activations);
        args.key("rib_entries").value(c.rib_entries());
        for (std::size_t step = 0; step < bgp::kNumDecisionSteps; ++step) {
          if (eliminated[step] == 0) continue;
          args.key(std::string("eliminated.") +
                   bgp::decision_step_name(
                       static_cast<bgp::DecisionStep>(step)))
              .value(eliminated[step]);
        }
        args.end_object();
        trace->complete("prefix", "sim", spans[i].start_us, spans[i].dur_us,
                        1000 + spans[i].worker, args.str());
      }
    }

    if (config.validate) {
      // Every simulation must be a fixed point of the model as it stands
      // BEFORE the heuristic consumes it; the replay is independent per
      // prefix, so it fans out too.  Findings merge in prefix order.
      obs::PhaseTimer val_timer(reg, metrics.validate_ns, trace, "validate",
                                iter_args(iteration));
      sim_diags.assign(active, {});
      pool.parallel_for(active, [&](std::size_t i) {
        sim_diags[i] = analysis::check_convergence(engine, sims[i]);
      });
      for (analysis::Diagnostics& found : sim_diags) {
        std::move(found.begin(), found.end(),
                  std::back_inserter(result.diagnostics));
      }
      val_timer.stop();
      result.phase_seconds.validate += val_timer.seconds();
    }

    // Apply phase: strictly serial, in ascending-origin order (work is built
    // from the ordered paths_by_origin map), so mutations -- and hence the
    // fitted model -- are identical for every thread count.  Duplicates a
    // prefix mints here are visible to the prefixes after it through the
    // refiner's alias map (see snapshot_proxy), preserving the sharing the
    // old interleaved loop got from re-simulating mid-iteration.
    obs::PhaseTimer heur_timer(reg, metrics.heuristic_ns, trace, "heuristic",
                               iter_args(iteration));
    refiner.begin_iteration();
    bool any_changed = false;
    for (std::size_t i = 0; i < active; ++i) {
      PrefixWork& w = work[active_index[i]];

      if (!sims[i].converged) {
        // The engine's divergence guard tripped: the policy state reachable
        // for this prefix genuinely oscillates at the protocol level (a
        // dispute wheel; the ground-truth BAD GADGET case).  Iterating
        // further would re-simulate the divergence every round, so freeze
        // the prefix immediately with its structured engine outcome.
        freeze(w, PrefixOutcome::kOscillating, iteration);
        push_diag(analysis::Severity::kError,
                  analysis::codes::kEngineDiverged,
                  "origin " + std::to_string(w.origin),
                  "simulation diverged: " + std::to_string(sims[i].messages) +
                      " messages exceeded the cap of " +
                      std::to_string(sims[i].message_cap) + " after " +
                      std::to_string(sims[i].activations) +
                      " router activations; prefix frozen at matched " +
                      std::to_string(w.matched) + "/" +
                      std::to_string(w.paths.size()) + "; " +
                      suspect_wheel(w));
        continue;
      }

      if (w.detector.freeze_pending()) {
        // Cycle confirmed earlier: check -- without mutating -- whether
        // freezing at the current policy state keeps the best matched
        // count seen during the oscillation.
        refiner.process(w, sims[i], /*mutate=*/false);
        if (w.detector.should_freeze(w.matched)) {
          freeze(w, PrefixOutcome::kOscillating, iteration);
          push_diag(analysis::Severity::kWarning,
                    analysis::codes::kRefineOscillation,
                    "origin " + std::to_string(w.origin),
                    "refinement oscillation confirmed; policies frozen at "
                    "best-matched state (" +
                        std::to_string(w.matched) + "/" +
                        std::to_string(w.paths.size()) + " paths); " +
                        suspect_wheel(w));
          continue;
        }
      }

      const bool changed = refiner.process(w, sims[i]);
      any_changed |= changed;
      ++w.active_iterations;
      if (!changed && w.matched == w.paths.size()) {
        w.done = true;
        w.outcome = PrefixOutcome::kConverged;
        continue;
      }
      if (config.oscillation_window > 0) {
        const std::uint64_t fp =
            mix_u64(fingerprint_selections(sims[i], iter_ctx->ids) ^
                    mix_u64(fingerprint_policy(model, w.prefix)) ^
                    mix_u64(w.matched));
        w.detector.observe(fp, w.matched, changed);
      }
      if (config.prefix_iteration_budget > 0 &&
          w.active_iterations >= config.prefix_iteration_budget) {
        freeze(w, PrefixOutcome::kBudgetExhausted, iteration);
        push_diag(analysis::Severity::kWarning,
                  analysis::codes::kPrefixBudgetExhausted,
                  "origin " + std::to_string(w.origin),
                  "per-prefix iteration budget of " +
                      std::to_string(config.prefix_iteration_budget) +
                      " exhausted; policies frozen at matched " +
                      std::to_string(w.matched) + "/" +
                      std::to_string(w.paths.size()));
      }
    }
    heur_timer.stop();
    result.phase_seconds.heuristic += heur_timer.seconds();

    if (config.validate) {
      // Every mutation of this iteration (policy adjustments, duplications,
      // filter relaxations) must leave the model structurally sound.
      obs::PhaseTimer lint_timer(reg, metrics.validate_ns, trace, "lint",
                                 iter_args(iteration));
      analysis::ValidateOptions lint;
      lint.pairwise_sessions = true;  // duplication closure (Section 4.6)
      analysis::Diagnostics found = analysis::validate_model(model, lint);
      std::move(found.begin(), found.end(),
                std::back_inserter(result.diagnostics));
      lint_timer.stop();
      result.phase_seconds.validate += lint_timer.seconds();
    }

    RefineIterationLog log;
    log.iteration = iteration;
    log.paths_total = total_paths;
    log.active_prefixes = active;
    std::size_t matched = 0;
    for (const PrefixWork& w : work) matched += w.matched;
    log.paths_matched = matched;
    log.routers = model.num_routers();
    auto policy_stats = model.policy_stats();
    log.filters = policy_stats.filters;
    log.rankings = policy_stats.rankings;
    log.routers_added = refiner.routers_added - routers_added_prev;
    log.policies_changed = refiner.policies_changed - policies_changed_prev;
    routers_added_prev = refiner.routers_added;
    policies_changed_prev = refiner.policies_changed;
    result.log.push_back(log);
    result.iterations = iteration;
    if (trace != nullptr && trace->enabled(obs::TraceLevel::kIteration)) {
      // One span per refinement iteration.  The arg names are the stable
      // schema `rdtool stats` reads back into its convergence table
      // (DESIGN.md section 9) -- rename only with a migration there.
      std::uint64_t rib_entries = 0;
      for (const bgp::SimCounters& c : sim_counters)
        rib_entries += c.rib_entries();
      nb::JsonWriter args;
      args.begin_object();
      args.key("iteration").value(static_cast<std::uint64_t>(log.iteration));
      args.key("active_prefixes")
          .value(static_cast<std::uint64_t>(log.active_prefixes));
      args.key("matched").value(static_cast<std::uint64_t>(log.paths_matched));
      args.key("paths_total")
          .value(static_cast<std::uint64_t>(log.paths_total));
      args.key("routers").value(static_cast<std::uint64_t>(log.routers));
      args.key("filters").value(static_cast<std::uint64_t>(log.filters));
      args.key("rankings").value(static_cast<std::uint64_t>(log.rankings));
      args.key("routers_added")
          .value(static_cast<std::uint64_t>(log.routers_added));
      args.key("policies_changed")
          .value(static_cast<std::uint64_t>(log.policies_changed));
      args.key("messages").value(iteration_messages);
      args.key("rib_entries").value(rib_entries);
      args.end_object();
      const std::uint64_t now = trace->now_us();
      trace->complete("refine", "iteration", iter_ts, now - iter_ts, 0,
                      args.str());
      nb::JsonWriter model_series;
      model_series.begin_object();
      model_series.key("routers")
          .value(static_cast<std::uint64_t>(log.routers));
      model_series.key("filters")
          .value(static_cast<std::uint64_t>(log.filters));
      model_series.key("rankings")
          .value(static_cast<std::uint64_t>(log.rankings));
      model_series.end_object();
      trace->counter("refine", "model", now, model_series.str());
      nb::JsonWriter progress_series;
      progress_series.begin_object();
      progress_series.key("matched")
          .value(static_cast<std::uint64_t>(log.paths_matched));
      progress_series.key("active_prefixes")
          .value(static_cast<std::uint64_t>(log.active_prefixes));
      progress_series.end_object();
      trace->counter("refine", "progress", now, progress_series.str());
    }
    if (config.verbose) {
      std::fprintf(stderr,
                   "[refine] iter=%zu matched=%zu/%zu active=%zu routers=%zu "
                   "filters=%zu rankings=%zu\n",
                   iteration, matched, total_paths, active,
                   log.routers, log.filters, log.rankings);
    }
    if (!any_changed) {
      // Fixpoint: no mutation happened, so re-simulating yields the same
      // RIBs and a further iteration cannot help -- exit whether or not
      // every path matched (unmatched remainders occur under ablations).
      // Fully matched prefixes are still marked done for the accounting.
      for (PrefixWork& w : work) {
        if (w.outcome == PrefixOutcome::kActive &&
            w.matched == w.paths.size()) {
          w.done = true;
          w.outcome = PrefixOutcome::kConverged;
        }
      }
      reached_fixpoint = true;
      break;
    }

    // Cooperative interrupt (rdtool's SIGINT/SIGTERM path, or injected):
    // checkpoint the completed iteration and return a partial result whose
    // still-active prefixes stay kActive.
    bool interrupted = config.interrupt != nullptr &&
                       config.interrupt->load(std::memory_order_relaxed);
#ifdef RD_FAULT_INJECTION
    if (config.fault_plan != nullptr &&
        config.fault_plan->interrupt_iteration == iteration)
      interrupted = true;
#endif
    if (interrupted) {
      result.stop = RefineStop::kInterrupted;
      if (flight != nullptr)
        flight->record(0, obs::FlightEventType::kInterrupt, iteration);
      write_checkpoint(iteration);
      break;
    }

    if (config.wall_clock_budget_seconds > 0) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        wall_start)
              .count();
      if (elapsed > config.wall_clock_budget_seconds) {
        std::size_t frozen = 0;
        for (PrefixWork& w : work) {
          if (w.outcome != PrefixOutcome::kActive) continue;
          freeze(w, PrefixOutcome::kBudgetExhausted, iteration);
          ++frozen;
        }
        push_diag(analysis::Severity::kWarning,
                  analysis::codes::kWallClockExhausted, "refine",
                  "wall-clock budget of " +
                      std::to_string(config.wall_clock_budget_seconds) +
                      "s exhausted after " + std::to_string(iteration) +
                      " iterations; " + std::to_string(frozen) +
                      " prefixes frozen as budget-exhausted");
        result.stop = RefineStop::kWallClock;
        write_checkpoint(iteration);
        break;
      }
    }

    if (!config.checkpoint_path.empty() && config.checkpoint_every > 0 &&
        iteration % config.checkpoint_every == 0) {
      write_checkpoint(iteration);
    }
  }

  if (reached_fixpoint) {
    // Stable-but-unmatched prefixes (ablation fixpoints) did converge to a
    // fixed point; their coverage gap shows in matched/paths_total.
    for (PrefixWork& w : work) {
      if (w.outcome == PrefixOutcome::kActive)
        w.outcome = PrefixOutcome::kConverged;
    }
  } else if (result.stop == RefineStop::kCompleted) {
    // The for-loop ran out of iterations (or never ran) with prefixes
    // still active: the global iteration cap is a budget too.
    std::size_t capped = 0;
    for (PrefixWork& w : work) {
      if (w.outcome != PrefixOutcome::kActive) continue;
      freeze(w, PrefixOutcome::kBudgetExhausted, result.iterations);
      push_diag(analysis::Severity::kWarning,
                analysis::codes::kPrefixBudgetExhausted,
                "origin " + std::to_string(w.origin),
                "iteration cap of " + std::to_string(config.max_iterations) +
                    " reached with prefix still active; matched " +
                    std::to_string(w.matched) + "/" +
                    std::to_string(w.paths.size()));
      ++capped;
    }
    if (capped > 0) result.stop = RefineStop::kIterationCap;
  }

  std::size_t matched_total = 0;
  for (const PrefixWork& w : work) matched_total += w.matched;
  result.unmatched_paths = total_paths - matched_total;
  result.success = result.unmatched_paths == 0;
  result.compacted_runs = compacted_runs.load(std::memory_order_relaxed);
  result.routers_added = refiner.routers_added;
  result.policies_changed = refiner.policies_changed;
  result.filters_relaxed = refiner.filters_relaxed;

  result.outcomes.reserve(work.size());
  for (const PrefixWork& w : work) {
    result.outcomes.push_back(PrefixFitOutcome{
        w.origin, w.outcome, w.matched, w.paths.size(), w.frozen_iteration});
    switch (w.outcome) {
      case PrefixOutcome::kConverged:
        ++result.prefixes_converged;
        break;
      case PrefixOutcome::kOscillating:
        ++result.prefixes_oscillating;
        break;
      case PrefixOutcome::kBudgetExhausted:
        ++result.prefixes_budget_exhausted;
        break;
      case PrefixOutcome::kActive:
        break;  // partial result (interrupted/faulted)
    }
  }

  // Early stops return the partial state untouched: pruning or auditing a
  // half-refined (or about-to-be-resumed) model would mutate past the
  // checkpoint, and pruning relies on simulations a degraded model cannot
  // promise to converge.
  const bool ran_to_stop = result.stop != RefineStop::kInterrupted &&
                           result.stop != RefineStop::kFault;

  if (config.prune_dead && ran_to_stop && !result.degraded()) {
    obs::PhaseTimer prune_timer(nullptr, obs::CounterId{}, trace, "prune");
    analysis::AuditOptions prune;
    prune.engine = config.engine;
    const analysis::PruneResult pruned =
        analysis::prune_dead_policies(model, prune);
    result.dead_rules_pruned = pruned.rules_removed();
    result.empty_policies_dropped = pruned.policies_dropped;
  }
  if (config.validate && ran_to_stop) {
    // Static safety gate on the final model: the MED-only policy language
    // must never have produced a dispute wheel (see dispute_graph.hpp), and
    // a fitted model must not blackhole any router for a fitted prefix
    // (route_space.hpp: refinement filters deny below a length, never
    // everything, so an empty MAY set means the fit destroyed
    // reachability).  Error-severity findings (S500) and A800 blackholes
    // propagate; enumeration-cap warnings (S501/A801) are expected at real
    // scales and stay advisory (visible via Pipeline::audit or `rdtool
    // audit`), keeping "a clean fit reports no diagnostics" intact.
    obs::PhaseTimer audit_timer(reg, metrics.validate_ns, trace, "audit");
    analysis::AuditOptions audit;
    audit.engine = config.engine;
    audit.check_dead = false;
    audit.compute_diversity = false;
    audit.check_blackholes = true;
    analysis::AuditResult audited = analysis::audit_model(model, audit);
    for (analysis::Diagnostic& d : audited.diagnostics) {
      if (d.severity == analysis::Severity::kError ||
          d.code == analysis::codes::kStaticBlackhole) {
        result.diagnostics.push_back(std::move(d));
      }
    }
    audit_timer.stop();
    result.phase_seconds.validate += audit_timer.seconds();
  }
  if (reg != nullptr) {
    reg->add(metrics.iterations, result.iterations);
    reg->add(metrics.messages, result.messages_simulated);
    reg->add(metrics.routers_added, result.routers_added);
    reg->add(metrics.policies_changed, result.policies_changed);
    reg->add(metrics.filters_relaxed, result.filters_relaxed);
    reg->add(metrics.outcome_converged, result.prefixes_converged);
    reg->add(metrics.outcome_oscillating, result.prefixes_oscillating);
    reg->add(metrics.outcome_budget_exhausted,
             result.prefixes_budget_exhausted);
  }
  if (trace != nullptr && trace->enabled(obs::TraceLevel::kIteration)) {
    nb::JsonWriter args;
    args.begin_object();
    args.key("stop").value(std::string_view(refine_stop_name(result.stop)));
    args.key("converged")
        .value(static_cast<std::uint64_t>(result.prefixes_converged));
    args.key("oscillating")
        .value(static_cast<std::uint64_t>(result.prefixes_oscillating));
    args.key("budget_exhausted")
        .value(static_cast<std::uint64_t>(result.prefixes_budget_exhausted));
    args.end_object();
    trace->instant("refine", "stop", trace->now_us(), 0, args.str());
  }
  return finish();
}

}  // namespace core
