#include "core/refine.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>

#include "analysis/check_convergence.hpp"
#include "analysis/policy_audit.hpp"
#include "analysis/validate_model.hpp"
#include "bgp/threadpool.hpp"
#include "netbase/json.hpp"
#include "obs/observer.hpp"

namespace core {
namespace {

using bgp::PrefixSimResult;
using nb::Asn;
using nb::Prefix;
using nb::RouterId;
using topo::AsPath;
using topo::Model;

bool route_path_equals(std::span<const Asn> route_path,
                       std::span<const Asn> expected) {
  return route_path.size() == expected.size() &&
         std::equal(route_path.begin(), route_path.end(), expected.begin());
}

struct PrefixWork {
  Asn origin = nb::kInvalidAsn;
  Prefix prefix;
  std::vector<AsPath> paths;  // deterministically sorted, shorter first
  bool done = false;
  std::size_t matched = 0;  // last iteration's fully matched paths
};

class Refiner {
 public:
  Refiner(Model& model, const RefineConfig& config)
      : model_(model), config_(config) {}

  std::size_t routers_added = 0;
  std::size_t policies_changed = 0;
  std::size_t filters_relaxed = 0;

  /// Resets the per-iteration duplicate alias map; call once per iteration
  /// before the serial apply pass.
  void begin_iteration() {
    alias_.clear();
    pending_.clear();
  }

  /// Runs one heuristic pass for one prefix on top of its simulation.
  /// Returns true if the model was changed.
  bool process(PrefixWork& work, const PrefixSimResult& sim);

 private:
  // Candidate scan at AS `a` for the route path `route_path` (not including
  // `a`).  Routers created during this iteration's apply pass are read
  // through their snapshot ancestor's simulated RIB (see snapshot_proxy).
  struct Candidates {
    Model::Dense rib_out_unreserved = Model::kNoRouter;
    Model::Dense rib_in_unreserved = Model::kNoRouter;
    Model::Dense rib_in_any = Model::kNoRouter;
  };
  // A quasi-router is reserved for a route path (suffix), not for a whole
  // observed path: two observed paths sharing a suffix at an AS share the
  // quasi-router serving it.  The suffix is stored as a span into the
  // PrefixWork's own path storage (stable for the whole process() call), so
  // reserving never copies hop vectors.
  using Reservations = std::unordered_map<Model::Dense, std::span<const Asn>>;

  Candidates scan(const PrefixSimResult& sim, Asn a,
                  std::span<const Asn> route_path,
                  const Reservations& reserved) const;

  /// Installs the ranking + deny-shorter filters that make `target` select
  /// the route `route_path` (Section 4.6, "policy adjustment").
  /// `announcer` is the quasi-router of the announcing neighbor AS that was
  /// reserved for the rest of the path while walking from the origin
  /// (kNoRouter when the announcing AS is the origin itself, where every
  /// router announces the same route).  Filters are anchored to the
  /// announcer -- not to the simulation snapshot -- so the adjustment is
  /// stable across iterations:
  ///   * session announcer -> target:            allow >= len(route);
  ///   * other sessions from the announcing AS:  allow >  len(route)
  ///     (blocks equal-length look-alikes that would steal the tie-break);
  ///   * sessions from other ASes:               allow >= len(route)
  ///     (equal-length routes lose to the MED ranking).
  void adjust_policy(const PrefixWork& work, Model::Dense announcer,
                     RouterId target, std::span<const Asn> route_path);

  /// Fig. 7 filter deletion at AS `a` (= hops[k]) for the observed path.
  /// Returns true if a filter was relaxed (possibly toward a duplicate).
  bool try_filter_deletion(const PrefixWork& work, const PrefixSimResult& sim,
                           std::span<const Asn> hops, std::size_t k);

  /// The snapshot router whose simulated RIB stands in for `r`: identity
  /// for routers the simulation covered, the recorded ancestor for
  /// duplicates created earlier in this iteration's apply pass, kNoRouter
  /// otherwise.  A duplicate inherits its source's sessions and per-prefix
  /// policies, so for every prefix that has not customized it the duplicate
  /// would simulate to exactly its source's RIB -- the same inheritance
  /// argument the duplication step itself rests on.  Without this proxy,
  /// every prefix needing an extra quasi-router at a shared AS would mint
  /// its own duplicate in the same iteration instead of reserving one a
  /// prefix before it just created (the old interleaved loop shared them
  /// through re-simulation).
  Model::Dense snapshot_proxy(const PrefixSimResult& sim,
                              Model::Dense r) const {
    if (r < sim.routers.size()) return r;
    const auto it = alias_.find(r);
    return it == alias_.end() ? Model::kNoRouter : it->second;
  }

  /// Records a freshly minted duplicate so later PREFIXES of this iteration
  /// can scan it.  Publication is deferred to the end of process(): the old
  /// interleaved loop simulated before each prefix, so a prefix saw the
  /// duplicates of the prefixes before it but never its own same-iteration
  /// ones -- deferring reproduces that visibility exactly.  The stored
  /// ancestor is always a snapshot router (chains collapse through the
  /// already-published aliases).
  void record_duplicate(const PrefixSimResult& sim, Model::Dense source,
                        RouterId dup) {
    pending_.emplace_back(model_.dense(dup), snapshot_proxy(sim, source));
  }

  Model& model_;
  const RefineConfig& config_;
  /// This-iteration duplicate -> snapshot ancestor (kNoRouter when none).
  std::unordered_map<Model::Dense, Model::Dense> alias_;
  /// Duplicates minted by the prefix currently in process(), published to
  /// alias_ when it finishes.
  std::vector<std::pair<Model::Dense, Model::Dense>> pending_;
};

Refiner::Candidates Refiner::scan(
    const PrefixSimResult& sim, Asn a, std::span<const Asn> route_path,
    const Reservations& reserved) const {
  Candidates out;
  for (Model::Dense r : model_.routers_of(a)) {
    const Model::Dense proxy = snapshot_proxy(sim, r);
    if (proxy == Model::kNoRouter) continue;  // no simulated stand-in
    const bgp::RouterState& state = sim.routers[proxy];
    const auto reservation = reserved.find(r);
    // Reserved for the same suffix == available for this suffix.
    const bool is_reserved =
        reservation != reserved.end() &&
        !route_path_equals(reservation->second, route_path);
    const bgp::Route* best = state.best_route();
    if (best != nullptr && route_path_equals(best->path, route_path)) {
      if (!is_reserved && out.rib_out_unreserved == Model::kNoRouter)
        out.rib_out_unreserved = r;
      // A RIB-Out match implies a RIB-In match.
      if (out.rib_in_any == Model::kNoRouter) out.rib_in_any = r;
      if (!is_reserved && out.rib_in_unreserved == Model::kNoRouter)
        out.rib_in_unreserved = r;
      continue;
    }
    for (const bgp::Route& entry : state.rib_in) {
      if (!route_path_equals(entry.path, route_path)) continue;
      if (out.rib_in_any == Model::kNoRouter) out.rib_in_any = r;
      if (!is_reserved && out.rib_in_unreserved == Model::kNoRouter)
        out.rib_in_unreserved = r;
      break;
    }
  }
  return out;
}

void Refiner::adjust_policy(const PrefixWork& work, Model::Dense announcer,
                            RouterId target,
                            std::span<const Asn> route_path) {
  ++policies_changed;
  model_.clear_owned_rules(work.prefix, target);
  const Asn next_as = route_path.front();
  if (config_.allow_ranking)
    model_.set_ranking(target, work.prefix, next_as);
  if (!config_.allow_filters) return;

  if (work.origin == config_.debug_origin) {
    std::fprintf(stderr, "[refine %u]   announcer=%s\n", work.origin,
                 announcer == Model::kNoRouter
                     ? "origin"
                     : model_.router_id(announcer).str().c_str());
  }
  const std::size_t arriving_len = route_path.size();
  const Model::Dense target_dense = model_.dense(target);
  for (Model::Dense peer : model_.peers(target_dense)) {
    const RouterId peer_id = model_.router_id(peer);
    std::uint32_t deny_below = static_cast<std::uint32_t>(arriving_len);
    if (peer_id.asn() == next_as) {
      if (announcer != Model::kNoRouter && peer != announcer) {
        // Same-AS session that is not the designated announcer: an
        // equal-length route over it would tie on MED and could steal the
        // lowest-router-id tie-break, so require strictly longer.
        deny_below = static_cast<std::uint32_t>(arriving_len + 1);
      }
    } else if (!config_.allow_ranking) {
      // Filters-only mode (ablation): without the MED ranking, equal-length
      // routes from other ASes would go to the tie-break, so block them too.
      deny_below = static_cast<std::uint32_t>(arriving_len + 1);
    }
    model_.set_export_filter(peer_id, target, work.prefix, deny_below,
                             target);
  }
}

bool Refiner::try_filter_deletion(const PrefixWork& work,
                                  const PrefixSimResult& sim,
                                  std::span<const Asn> hops, std::size_t k) {
  const Asn a = hops[k];
  const Asn announcing = hops[k + 1];
  const std::span<const Asn> neighbor_route(hops.data() + k + 2,
                                            hops.size() - k - 2);
  const std::size_t arriving_len = neighbor_route.size() + 1;
  const topo::PrefixPolicy* policy = model_.find_policy(work.prefix);
  if (policy == nullptr) return false;  // nothing can be blocking

  for (Model::Dense q : model_.routers_of(announcing)) {
    const Model::Dense proxy = snapshot_proxy(sim, q);
    if (proxy == Model::kNoRouter) continue;
    const bgp::Route* best = sim.routers[proxy].best_route();
    if (best == nullptr || !route_path_equals(best->path, neighbor_route))
      continue;
    const RouterId q_id = model_.router_id(q);
    for (Model::Dense r : model_.routers_of(a)) {
      const topo::ExportFilter* filter =
          model_.find_export_filter(q, r, policy);
      if (filter == nullptr || !filter->blocks(arriving_len)) continue;
      const RouterId r_id = model_.router_id(r);
      if (config_.allow_duplication && filter->owner_target.valid() &&
          filter->owner_target == r_id) {
        // The filter protects r's assigned path (Fig. 7): give the blocked
        // path a fresh landing spot instead of destroying r's setup.
        const RouterId dup = model_.duplicate_router(r_id);
        ++routers_added;
        record_duplicate(sim, r, dup);
        model_.relax_export_filter(q_id, dup, work.prefix, arriving_len);
      } else {
        model_.relax_export_filter(q_id, r_id, work.prefix, arriving_len);
      }
      ++filters_relaxed;
      return true;
    }
    // q selects the right route and no filter blocks it; the RIB-In will
    // appear once simulations catch up with this iteration's changes.
  }
  return false;
}

bool Refiner::process(PrefixWork& work, const PrefixSimResult& sim) {
  bool changed = false;
  Reservations reserved;
  work.matched = 0;

  for (std::size_t path_index = 0; path_index < work.paths.size();
       ++path_index) {
    const AsPath& path = work.paths[path_index];
    const auto& hops = path.hops();
    bool full_match = true;
    // Quasi-router reserved for the previous (origin-side) hop; the
    // designated announcer for the next hop's policy adjustment.
    Model::Dense announcer = Model::kNoRouter;

    for (std::size_t k = hops.size(); k-- > 0;) {
      if (k + 1 == hops.size()) continue;  // the origin originates
      const Asn a = hops[k];
      const std::span<const Asn> route_path(hops.data() + k + 1,
                                            hops.size() - k - 1);
      Candidates c = scan(sim, a, route_path, reserved);

      if (c.rib_out_unreserved != Model::kNoRouter) {
        reserved.emplace(c.rib_out_unreserved, route_path);
        announcer = c.rib_out_unreserved;
        continue;  // matched here; walk on toward the observation point
      }

      full_match = false;
      const bool debug = work.origin == config_.debug_origin;
      if (c.rib_in_unreserved != Model::kNoRouter) {
        reserved.emplace(c.rib_in_unreserved, route_path);
        if (debug)
          std::fprintf(stderr, "[refine %u] adjust %s for suffix-at %u len %zu\n",
                       work.origin,
                       model_.router_id(c.rib_in_unreserved).str().c_str(), a,
                       route_path.size());
        adjust_policy(work, announcer,
                      model_.router_id(c.rib_in_unreserved), route_path);
        changed = true;
      } else if (c.rib_in_any != Model::kNoRouter) {
        if (config_.allow_duplication) {
          const RouterId dup =
              model_.duplicate_router(model_.router_id(c.rib_in_any));
          ++routers_added;
          record_duplicate(sim, c.rib_in_any, dup);
          reserved.emplace(model_.dense(dup), route_path);
          if (debug)
            std::fprintf(stderr, "[refine %u] duplicate %s -> %s at %u\n",
                         work.origin,
                         model_.router_id(c.rib_in_any).str().c_str(),
                         dup.str().c_str(), a);
          adjust_policy(work, announcer, dup, route_path);
          changed = true;
        }
        // Without duplication the path cannot be accommodated; give up.
      } else {
        const bool deleted = try_filter_deletion(work, sim, hops, k);
        if (debug)
          std::fprintf(stderr, "[refine %u] no rib-in at %u (len %zu), "
                       "filter-deletion=%d\n",
                       work.origin, a, route_path.size(), deleted);
        if (deleted) changed = true;
      }
      break;  // one fix per path per iteration (Section 4.6)
    }
    if (full_match) ++work.matched;
  }
  for (const auto& [dup, ancestor] : pending_) alias_.emplace(dup, ancestor);
  pending_.clear();
  return changed;
}

}  // namespace

RefineResult refine_model(topo::Model& model,
                          const data::BgpDataset& training,
                          const RefineConfig& config) {
  // Observability (RefineConfig::observer): both sinks optional and
  // one-directional -- nothing read back from them feeds the heuristic, so
  // the fitted model is byte-identical with and without them.
  obs::Registry* reg =
      config.observer != nullptr ? config.observer->registry : nullptr;
  obs::TraceSink* trace =
      config.observer != nullptr ? config.observer->trace : nullptr;
  if (trace != nullptr && trace->level() == obs::TraceLevel::kOff)
    trace = nullptr;
  obs::RefineMetricSet metrics;
  if (reg != nullptr) metrics = obs::RefineMetricSet::define(*reg);
  // Phase-span args ({"iteration": N}); empty (unallocated) unless the
  // trace actually records phases.
  const auto iter_args = [&](std::size_t iteration) -> std::string {
    if (trace == nullptr || !trace->enabled(obs::TraceLevel::kPhase))
      return {};
    nb::JsonWriter w;
    w.begin_object()
        .key("iteration")
        .value(static_cast<std::uint64_t>(iteration))
        .end_object();
    return w.str();
  };
  obs::PhaseTimer total_timer(reg, metrics.total_ns, trace, "refine");

  RefineResult result;
  std::vector<PrefixWork> work;
  std::size_t total_paths = 0;
  std::size_t unmatchable = 0;
  for (auto& [origin, paths] : training.paths_by_origin()) {
    total_paths += paths.size();
    if (!model.has_as(origin)) {
      unmatchable += paths.size();  // origin absent from the model graph
      continue;
    }
    PrefixWork w;
    w.origin = origin;
    w.prefix = Prefix::for_asn(origin);
    w.paths = paths;
    work.push_back(std::move(w));
  }

  bgp::Engine engine(model, config.engine);  // default: policy-agnostic
  Refiner refiner(model, config);
  bgp::ThreadPool pool(config.threads);
  result.threads_used = pool.size() == 0 ? 1 : pool.size();

  // Per-prefix sim spans land on synthetic tids 1000 + worker so Perfetto
  // shows one track per sweep worker (tid 0 is the serial refine track).
  const bool prefix_trace =
      trace != nullptr && trace->enabled(obs::TraceLevel::kPrefix);
  // SimCounters are collected whenever anything consumes them: registry
  // shards, the per-iteration rib_entries series, or per-prefix spans.
  const bool counting =
      reg != nullptr ||
      (trace != nullptr && trace->enabled(obs::TraceLevel::kIteration));
  if (prefix_trace) {
    trace->name_thread(0, "refine");
    for (unsigned worker = 0; worker < pool.shard_count(); ++worker)
      trace->name_thread(1000 + worker,
                         "sim-worker-" + std::to_string(worker));
  }
  struct PrefixSpan {
    std::uint64_t start_us = 0;
    std::uint64_t dur_us = 0;
    unsigned worker = 0;
  };

  std::size_t routers_added_prev = 0;
  std::size_t policies_changed_prev = 0;
  // Reused across iterations so sims keep their RouterState capacity.
  std::vector<std::size_t> active_index;
  std::vector<PrefixSimResult> sims;
  std::vector<analysis::Diagnostics> sim_diags;
  std::vector<bgp::SimCounters> sim_counters;
  std::vector<PrefixSpan> spans;
  for (std::size_t iteration = 1; iteration <= config.max_iterations;
       ++iteration) {
    active_index.clear();
    for (std::size_t i = 0; i < work.size(); ++i) {
      if (!work[i].done) active_index.push_back(i);
    }
    const std::size_t active = active_index.size();
    if (active == 0) break;
    const std::uint64_t iter_ts =
        trace != nullptr && trace->enabled(obs::TraceLevel::kIteration)
            ? trace->now_us()
            : 0;

    // Simulation sweep: every active prefix against the immutable
    // iteration-start model.  The engine's epoch context is built once up
    // front; worker order does not matter because results land in slots.
    sims.resize(active);
    engine.context();
    obs::PhaseTimer sim_timer(reg, metrics.simulate_ns, trace, "simulate",
                              iter_args(iteration));
    if (counting) {
      // Instrumented sweep: identical engine runs, plus per-prefix
      // SimCounters and per-worker metric shards.  The shards merge into
      // the registry in ascending worker order when the group leaves
      // scope (after the pool barrier), so totals are deterministic for
      // every thread count.
      sim_counters.assign(active, {});
      if (prefix_trace) spans.assign(active, {});
      std::optional<obs::ShardGroup> shards;
      if (reg != nullptr) shards.emplace(*reg, pool.shard_count());
      pool.parallel_for_worker(active, [&](unsigned worker, std::size_t i) {
        const PrefixWork& w = work[active_index[i]];
        const std::uint64_t t0 = prefix_trace ? trace->now_us() : 0;
        sims[i] = engine.run(w.prefix, w.origin, &sim_counters[i]);
        if (prefix_trace)
          spans[i] = {t0, trace->now_us() - t0, worker};
        if (shards.has_value()) {
          obs::Shard& shard = shards->shard(worker);
          const bgp::SimCounters& c = sim_counters[i];
          shard.add(metrics.engine_messages, c.messages);
          shard.add(metrics.engine_activations, c.activations);
          shard.add(metrics.engine_rib_inserts, c.rib_inserts);
          shard.add(metrics.engine_rib_replacements, c.rib_replacements);
          shard.add(metrics.engine_withdrawals, c.withdrawals);
          shard.add(metrics.engine_selection_changes, c.selection_changes);
          shard.observe(metrics.messages_per_prefix,
                        static_cast<double>(c.messages));
        }
      });
    } else {
      // Zero-observer sweep: exactly the pre-observability code path.
      pool.parallel_for(active, [&](std::size_t i) {
        const PrefixWork& w = work[active_index[i]];
        sims[i] = engine.run(w.prefix, w.origin);
      });
    }
    sim_timer.stop();
    result.phase_seconds.simulate += sim_timer.seconds();
    std::uint64_t iteration_messages = 0;
    for (const PrefixSimResult& sim : sims)
      iteration_messages += sim.messages;
    result.messages_simulated += iteration_messages;

    if (prefix_trace) {
      // Serial post-sweep emission: one span per simulation on its
      // worker's track, annotated with the decision-step elimination
      // histogram (the aggregate twin of bgp::explain_selection; costs
      // one compare_routes per Adj-RIB-In entry, which is why it is
      // gated on the most verbose trace level).
      const std::shared_ptr<const bgp::SimContext> ctx = engine.context();
      for (std::size_t i = 0; i < active; ++i) {
        const PrefixWork& w = work[active_index[i]];
        const std::array<std::uint64_t, bgp::kNumDecisionSteps> eliminated =
            obs::elimination_histogram(ctx->ids, sims[i]);
        if (reg != nullptr) {
          for (std::size_t step = 0; step < bgp::kNumDecisionSteps; ++step)
            reg->add(metrics.eliminated[step], eliminated[step]);
        }
        const bgp::SimCounters& c = sim_counters[i];
        nb::JsonWriter args;
        args.begin_object();
        args.key("origin").value(static_cast<std::uint64_t>(w.origin));
        args.key("iteration").value(static_cast<std::uint64_t>(iteration));
        args.key("messages").value(c.messages);
        args.key("activations").value(c.activations);
        args.key("rib_entries").value(c.rib_entries());
        for (std::size_t step = 0; step < bgp::kNumDecisionSteps; ++step) {
          if (eliminated[step] == 0) continue;
          args.key(std::string("eliminated.") +
                   bgp::decision_step_name(
                       static_cast<bgp::DecisionStep>(step)))
              .value(eliminated[step]);
        }
        args.end_object();
        trace->complete("prefix", "sim", spans[i].start_us, spans[i].dur_us,
                        1000 + spans[i].worker, args.str());
      }
    }

    if (config.validate) {
      // Every simulation must be a fixed point of the model as it stands
      // BEFORE the heuristic consumes it; the replay is independent per
      // prefix, so it fans out too.  Findings merge in prefix order.
      obs::PhaseTimer val_timer(reg, metrics.validate_ns, trace, "validate",
                                iter_args(iteration));
      sim_diags.assign(active, {});
      pool.parallel_for(active, [&](std::size_t i) {
        sim_diags[i] = analysis::check_convergence(engine, sims[i]);
      });
      for (analysis::Diagnostics& found : sim_diags) {
        std::move(found.begin(), found.end(),
                  std::back_inserter(result.diagnostics));
      }
      val_timer.stop();
      result.phase_seconds.validate += val_timer.seconds();
    }

    // Apply phase: strictly serial, in ascending-origin order (work is built
    // from the ordered paths_by_origin map), so mutations -- and hence the
    // fitted model -- are identical for every thread count.  Duplicates a
    // prefix mints here are visible to the prefixes after it through the
    // refiner's alias map (see snapshot_proxy), preserving the sharing the
    // old interleaved loop got from re-simulating mid-iteration.
    obs::PhaseTimer heur_timer(reg, metrics.heuristic_ns, trace, "heuristic",
                               iter_args(iteration));
    refiner.begin_iteration();
    bool any_changed = false;
    for (std::size_t i = 0; i < active; ++i) {
      PrefixWork& w = work[active_index[i]];
      const bool changed = refiner.process(w, sims[i]);
      any_changed |= changed;
      if (!changed && w.matched == w.paths.size()) w.done = true;
    }
    heur_timer.stop();
    result.phase_seconds.heuristic += heur_timer.seconds();

    if (config.validate) {
      // Every mutation of this iteration (policy adjustments, duplications,
      // filter relaxations) must leave the model structurally sound.
      obs::PhaseTimer lint_timer(reg, metrics.validate_ns, trace, "lint",
                                 iter_args(iteration));
      analysis::ValidateOptions lint;
      lint.pairwise_sessions = true;  // duplication closure (Section 4.6)
      analysis::Diagnostics found = analysis::validate_model(model, lint);
      std::move(found.begin(), found.end(),
                std::back_inserter(result.diagnostics));
      lint_timer.stop();
      result.phase_seconds.validate += lint_timer.seconds();
    }

    RefineIterationLog log;
    log.iteration = iteration;
    log.paths_total = total_paths;
    log.active_prefixes = active;
    std::size_t matched = 0;
    for (const PrefixWork& w : work) matched += w.matched;
    log.paths_matched = matched;
    log.routers = model.num_routers();
    auto policy_stats = model.policy_stats();
    log.filters = policy_stats.filters;
    log.rankings = policy_stats.rankings;
    log.routers_added = refiner.routers_added - routers_added_prev;
    log.policies_changed = refiner.policies_changed - policies_changed_prev;
    routers_added_prev = refiner.routers_added;
    policies_changed_prev = refiner.policies_changed;
    result.log.push_back(log);
    result.iterations = iteration;
    if (trace != nullptr && trace->enabled(obs::TraceLevel::kIteration)) {
      // One span per refinement iteration.  The arg names are the stable
      // schema `rdtool stats` reads back into its convergence table
      // (DESIGN.md section 9) -- rename only with a migration there.
      std::uint64_t rib_entries = 0;
      for (const bgp::SimCounters& c : sim_counters)
        rib_entries += c.rib_entries();
      nb::JsonWriter args;
      args.begin_object();
      args.key("iteration").value(static_cast<std::uint64_t>(log.iteration));
      args.key("active_prefixes")
          .value(static_cast<std::uint64_t>(log.active_prefixes));
      args.key("matched").value(static_cast<std::uint64_t>(log.paths_matched));
      args.key("paths_total")
          .value(static_cast<std::uint64_t>(log.paths_total));
      args.key("routers").value(static_cast<std::uint64_t>(log.routers));
      args.key("filters").value(static_cast<std::uint64_t>(log.filters));
      args.key("rankings").value(static_cast<std::uint64_t>(log.rankings));
      args.key("routers_added")
          .value(static_cast<std::uint64_t>(log.routers_added));
      args.key("policies_changed")
          .value(static_cast<std::uint64_t>(log.policies_changed));
      args.key("messages").value(iteration_messages);
      args.key("rib_entries").value(rib_entries);
      args.end_object();
      const std::uint64_t now = trace->now_us();
      trace->complete("refine", "iteration", iter_ts, now - iter_ts, 0,
                      args.str());
      nb::JsonWriter model_series;
      model_series.begin_object();
      model_series.key("routers")
          .value(static_cast<std::uint64_t>(log.routers));
      model_series.key("filters")
          .value(static_cast<std::uint64_t>(log.filters));
      model_series.key("rankings")
          .value(static_cast<std::uint64_t>(log.rankings));
      model_series.end_object();
      trace->counter("refine", "model", now, model_series.str());
      nb::JsonWriter progress_series;
      progress_series.begin_object();
      progress_series.key("matched")
          .value(static_cast<std::uint64_t>(log.paths_matched));
      progress_series.key("active_prefixes")
          .value(static_cast<std::uint64_t>(log.active_prefixes));
      progress_series.end_object();
      trace->counter("refine", "progress", now, progress_series.str());
    }
    if (config.verbose) {
      std::fprintf(stderr,
                   "[refine] iter=%zu matched=%zu/%zu active=%zu routers=%zu "
                   "filters=%zu rankings=%zu\n",
                   iteration, matched, total_paths, active,
                   log.routers, log.filters, log.rankings);
    }
    if (!any_changed) {
      // Fixpoint: no mutation happened, so re-simulating yields the same
      // RIBs and a further iteration cannot help -- exit whether or not
      // every path matched (unmatched remainders occur under ablations).
      // Fully matched prefixes are still marked done for the accounting.
      for (PrefixWork& w : work) {
        if (w.matched == w.paths.size()) w.done = true;
      }
      break;
    }
  }

  std::size_t matched_total = 0;
  for (const PrefixWork& w : work) matched_total += w.matched;
  result.unmatched_paths = total_paths - matched_total;
  result.success = result.unmatched_paths == 0;
  result.routers_added = refiner.routers_added;
  result.policies_changed = refiner.policies_changed;
  result.filters_relaxed = refiner.filters_relaxed;

  if (config.prune_dead) {
    obs::PhaseTimer prune_timer(nullptr, obs::CounterId{}, trace, "prune");
    analysis::AuditOptions prune;
    prune.engine = config.engine;
    const analysis::PruneResult pruned =
        analysis::prune_dead_policies(model, prune);
    result.dead_rules_pruned = pruned.rules_removed();
    result.empty_policies_dropped = pruned.policies_dropped;
  }
  if (config.validate) {
    // Static safety gate on the final model: the MED-only policy language
    // must never have produced a dispute wheel (see dispute_graph.hpp).
    // Only error-severity findings (S500) propagate; enumeration-cap
    // warnings are expected at real scales and stay advisory (visible via
    // Pipeline::audit or `rdtool audit`), keeping "a clean fit reports no
    // diagnostics" intact.
    obs::PhaseTimer audit_timer(reg, metrics.validate_ns, trace, "audit");
    analysis::AuditOptions audit;
    audit.engine = config.engine;
    audit.check_dead = false;
    audit.compute_diversity = false;
    analysis::AuditResult audited = analysis::audit_model(model, audit);
    for (analysis::Diagnostic& d : audited.diagnostics) {
      if (d.severity == analysis::Severity::kError)
        result.diagnostics.push_back(std::move(d));
    }
    audit_timer.stop();
    result.phase_seconds.validate += audit_timer.seconds();
  }
  if (reg != nullptr) {
    reg->add(metrics.iterations, result.iterations);
    reg->add(metrics.messages, result.messages_simulated);
    reg->add(metrics.routers_added, result.routers_added);
    reg->add(metrics.policies_changed, result.policies_changed);
    reg->add(metrics.filters_relaxed, result.filters_relaxed);
  }
  total_timer.stop();
  result.phase_seconds.total = total_timer.seconds();
  return result;
}

}  // namespace core
