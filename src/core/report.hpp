// Paper-style table formatting for bench binaries and examples.
#pragma once

#include <string>

#include "analysis/policy_audit.hpp"
#include "core/metrics.hpp"
#include "core/refine.hpp"
#include "data/dataset_stats.hpp"

namespace core {

/// Table-2-style breakdown for one model variant.
std::string render_match_breakdown(const std::string& title,
                                   const MatchStats& stats);

/// Side-by-side Table 2 (shortest path vs customer/peering policies), with
/// the paper's reference numbers printed alongside.
std::string render_table2(const MatchStats& shortest,
                          const MatchStats& policies);

/// Section 5 style validation table: RIB-In / potential RIB-Out / RIB-Out
/// rates plus per-prefix coverage.
std::string render_validation(const std::string& title,
                              const MatchStats& stats);

/// Refinement convergence trace (iterations, matches, model growth).
std::string render_refine_log(const RefineResult& result);

/// Table 1: percentiles of the max number of unique AS-paths received.
std::string render_table1(const data::DiversityStats& stats);

/// Static-audit summary: per-prefix permitted-path universe, dispute arcs,
/// safety verdict and the diversity ceiling (max distinct permitted AS-paths
/// any AS could observe), followed by aggregate counts.  Diagnostics are NOT
/// included; render them via analysis::render_diagnostics.
std::string render_audit(const analysis::AuditResult& result);

}  // namespace core
