#include "core/generalize.hpp"

#include <map>
#include <set>

namespace core {

using topo::Model;

namespace {

// router id value -> set of preferred neighbor ASes across prefixes,
// plus the prefixes carrying each router's rules.
std::map<std::uint32_t, std::set<nb::Asn>> preferences_by_router(
    const Model& model) {
  std::map<std::uint32_t, std::set<nb::Asn>> out;
  for (auto& [prefix, policy] : model.prefix_policies()) {
    for (auto& [router, rule] : policy.rankings)
      out[router].insert(rule.preferred_neighbor);
  }
  return out;
}

}  // namespace

GranularityStats analyze_policy_granularity(const Model& model) {
  GranularityStats stats;
  stats.routers_total = model.num_routers();
  const auto preferences = preferences_by_router(model);
  stats.routers_with_rankings = preferences.size();
  for (auto& [router, neighbors] : preferences) {
    stats.distinct_preferences.add(neighbors.size());
    if (neighbors.size() == 1) ++stats.routers_uniform;
  }
  for (auto& [prefix, policy] : model.prefix_policies())
    stats.rankings_total += policy.rankings.size();
  return stats;
}

GeneralizeResult generalize_rankings(Model& model) {
  GeneralizeResult result;
  result.stats = analyze_policy_granularity(model);

  const auto preferences = preferences_by_router(model);
  // Collect the per-prefix rules to drop first (cannot mutate the policy
  // maps while iterating them).
  std::vector<std::pair<nb::RouterId, nb::Prefix>> to_clear;
  for (auto& [router_value, neighbors] : preferences) {
    if (neighbors.size() != 1) continue;
    const nb::RouterId router = nb::RouterId::from_value(router_value);
    model.set_default_ranking(router, *neighbors.begin());
    ++result.defaults_added;
    for (auto& [prefix, policy] : model.prefix_policies()) {
      if (policy.rankings.count(router_value)) to_clear.emplace_back(router, prefix);
    }
  }
  for (auto& [router, prefix] : to_clear) {
    model.clear_ranking(router, prefix);
    ++result.rules_removed;
  }
  return result;
}

}  // namespace core
