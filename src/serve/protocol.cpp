#include "serve/protocol.hpp"

#include "netbase/json.hpp"

namespace serve {

namespace {

/// Parses "ASN.IDX" (or bare "ASN", index 0); nullopt on malformed text.
std::optional<nb::RouterId> parse_router(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::uint64_t asn = 0;
  std::uint64_t index = 0;
  const std::size_t dot = text.find('.');
  const auto number = [](std::string_view s, std::uint64_t* out) {
    if (s.empty()) return false;
    for (const char c : s) {
      if (c < '0' || c > '9') return false;
      *out = *out * 10 + static_cast<std::uint64_t>(c - '0');
      if (*out > 0xffffffffull) return false;
    }
    return true;
  };
  if (dot == std::string_view::npos) {
    if (!number(text, &asn)) return std::nullopt;
  } else {
    if (!number(text.substr(0, dot), &asn) ||
        !number(text.substr(dot + 1), &index)) {
      return std::nullopt;
    }
  }
  if (asn > 0xffffu || index > 0xffffu) return std::nullopt;
  return nb::RouterId(static_cast<nb::Asn>(asn),
                      static_cast<std::uint16_t>(index));
}

bool parse_session(std::string_view text, nb::RouterId* a, nb::RouterId* b) {
  const std::size_t colon = text.find(':');
  if (colon == std::string_view::npos) return false;
  const auto left = parse_router(text.substr(0, colon));
  const auto right = parse_router(text.substr(colon + 1));
  if (!left || !right) return false;
  *a = *left;
  *b = *right;
  return true;
}

/// Reads a required member as an AS number; false + error otherwise.
bool read_asn(const nb::JsonValue& doc, const char* key, nb::Asn* out,
              std::string* error) {
  const nb::JsonValue* member = doc.find(key);
  if (member == nullptr || !member->is_number() || member->number < 0 ||
      member->number > 0xfffffffe) {
    *error = std::string("missing or invalid \"") + key + "\" (AS number)";
    return false;
  }
  *out = static_cast<nb::Asn>(member->number);
  return true;
}

}  // namespace

const char* op_name(ServeRequest::Op op) {
  switch (op) {
    case ServeRequest::Op::kPredict:
      return "predict";
    case ServeRequest::Op::kExplain:
      return "explain";
    case ServeRequest::Op::kWhatIf:
      return "whatif";
    case ServeRequest::Op::kHealth:
      return "health";
  }
  return "unknown";
}

std::string ServeRequest::fork_key() const {
  if (op != Op::kWhatIf) return "";
  if (edit == "session-down")
    return "session-down " + session_a.str() + ":" + session_b.str();
  return "policy-edit origin " + std::to_string(origin) + " deny " +
         std::to_string(from) + "->" + std::to_string(to);
}

std::optional<ServeRequest> parse_request(const std::string& text,
                                          std::string* error) {
  std::string parse_error;
  const auto doc = nb::json_parse(text, &parse_error);
  if (!doc) {
    // Keep the parser's byte position: "poisoned" frames must come back
    // with an actionable location, not a generic refusal.
    *error = "bad JSON: " + parse_error;
    return std::nullopt;
  }
  if (!doc->is_object()) {
    *error = "request must be a JSON object";
    return std::nullopt;
  }

  ServeRequest request;
  const std::string_view op = doc->string_or("op");
  if (op == "predict") {
    request.op = ServeRequest::Op::kPredict;
    if (!read_asn(*doc, "origin", &request.origin, error)) return std::nullopt;
    if (!read_asn(*doc, "vantage", &request.vantage, error))
      return std::nullopt;
  } else if (op == "explain") {
    request.op = ServeRequest::Op::kExplain;
    if (!read_asn(*doc, "origin", &request.origin, error)) return std::nullopt;
    if (!read_asn(*doc, "as", &request.vantage, error)) return std::nullopt;
  } else if (op == "whatif") {
    request.op = ServeRequest::Op::kWhatIf;
    request.edit = doc->string_or("edit");
    if (request.edit == "session-down") {
      if (!parse_session(doc->string_or("session"), &request.session_a,
                         &request.session_b)) {
        *error = "whatif session-down needs \"session\": \"A.I:B.J\"";
        return std::nullopt;
      }
    } else if (request.edit == "policy-edit") {
      if (!read_asn(*doc, "origin", &request.origin, error) ||
          !read_asn(*doc, "from", &request.from, error) ||
          !read_asn(*doc, "to", &request.to, error)) {
        return std::nullopt;
      }
    } else {
      *error = "whatif \"edit\" must be session-down or policy-edit";
      return std::nullopt;
    }
    if (const nb::JsonValue* origins = doc->find("origins");
        origins != nullptr) {
      if (!origins->is_array()) {
        *error = "\"origins\" must be an array of AS numbers";
        return std::nullopt;
      }
      for (const nb::JsonValue& entry : origins->array) {
        if (!entry.is_number() || entry.number < 0 ||
            entry.number > 0xfffffffe) {
          *error = "\"origins\" must be an array of AS numbers";
          return std::nullopt;
        }
        request.origins.push_back(static_cast<nb::Asn>(entry.number));
      }
    }
  } else if (op == "health" || op == "statusz") {
    request.op = ServeRequest::Op::kHealth;
  } else {
    *error = op.empty()
                 ? std::string("missing \"op\"")
                 : "unknown op \"" + std::string(op) +
                       "\" (predict|explain|whatif|health)";
    return std::nullopt;
  }

  request.id = static_cast<std::uint64_t>(doc->number_or("id", 0));
  request.deadline_ms = doc->number_or("deadline_ms", 0);
  if (request.deadline_ms < 0) request.deadline_ms = 0;
  request.fault = doc->string_or("fault");
  request.stall_ms = static_cast<std::uint64_t>(doc->number_or("stall_ms", 0));
  return request;
}

}  // namespace serve
