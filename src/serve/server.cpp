#include "serve/server.hpp"

#include <exception>
#include <new>
#include <stdexcept>
#include <utility>

#include "analysis/diagnostics.hpp"
#include "bgp/explain.hpp"
#include "bgp/sim_memory.hpp"
#include "core/whatif.hpp"
#include "netbase/ip.hpp"
#include "netbase/json.hpp"
#include "netbase/sysinfo.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Outcome token recorded in flight kServeRequest events (payload b).
enum class ServeOutcome : std::uint64_t {
  kOk = 0,
  kDegraded = 1,
  kError = 2,
  kAbandoned = 3,
};

/// Starts a response document: {"id": N, "status": S.  The caller adds
/// payload members and calls end_object().
void begin_response(nb::JsonWriter* json, std::uint64_t id,
                    const char* status) {
  json->begin_object();
  json->key("id").value(id);
  json->key("status").value(status);
}

/// A complete non-ok response with no payload.
std::string render_failure(std::uint64_t id, const char* status,
                           const char* code, const std::string& message) {
  nb::JsonWriter json;
  begin_response(&json, id, status);
  json.key("code").value(code);
  json.key("error").value(message);
  json.end_object();
  return json.str();
}

void append_path_set(nb::JsonWriter* json,
                     const std::set<std::vector<nb::Asn>>& paths) {
  json->begin_array();
  for (const auto& path : paths) {
    json->begin_array();
    for (nb::Asn hop : path) json->value(static_cast<std::uint64_t>(hop));
    json->end_array();
  }
  json->end_array();
}

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

Server::Server(const topo::Model& model, ServeConfig config)
    : model_(model),
      config_(std::move(config)),
      workers_(nb::resolve_threads(config_.threads)),
      queue_capacity_(config_.queue_capacity == 0 ? 4 * workers_
                                                  : config_.queue_capacity),
      engine_(model, config_.engine),
      start_(Clock::now()) {
  // Build the shared SimContext snapshot up front: the first query then
  // pays no epoch-cache miss, and every concurrent query shares it.
  (void)engine_.context();
}

Server::~Server() { shutdown(); }

Clock::time_point Server::request_deadline(const ServeRequest& request) const {
  // A request may tighten its deadline, never extend past the server cap.
  double seconds = config_.deadline_seconds;
  if (request.deadline_ms > 0) {
    const double requested = request.deadline_ms / 1000.0;
    if (requested < seconds || seconds <= 0) seconds = requested;
  }
  if (seconds <= 0) seconds = 2.0;
  return Clock::now() + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(seconds));
}

bool Server::listen(std::uint16_t port, std::string* error) {
  auto listener = nb::TcpListener::bind(port, error);
  if (!listener) return false;
  listener_ = std::move(*listener);
  port_ = listener_.port();
  started_.store(true);
  worker_threads_.reserve(workers_);
  for (unsigned w = 0; w < workers_; ++w)
    worker_threads_.emplace_back([this, w] { worker_loop(w); });
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void Server::accept_loop() {
  while (!draining_.load(std::memory_order_relaxed)) {
    std::string error;
    auto stream = listener_.accept(/*timeout_ms=*/100, &error);
    reap_connections(/*all=*/false);
    if (!stream) continue;
    const std::uint64_t conn_id = stats_.connections.fetch_add(1) + 1;
    if (config_.flight != nullptr)
      config_.flight->record(0, obs::FlightEventType::kServeAccept, conn_id);
    auto conn = std::make_unique<Connection>();
    conn->stream = std::move(*stream);
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      conns_.push_back(std::move(conn));
    }
    raw->thread =
        std::thread([this, conn_id, raw] { serve_connection(conn_id, raw); });
  }
}

void Server::reap_connections(bool all) {
  std::vector<std::unique_ptr<Connection>> done;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if (all || (*it)->finished.load(std::memory_order_acquire)) {
        done.push_back(std::move(*it));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& conn : done)
    if (conn->thread.joinable()) conn->thread.join();
}

void Server::serve_connection(std::uint64_t conn_id, Connection* conn) {
  int malformed_streak = 0;
  while (!conn_stop_.load(std::memory_order_relaxed)) {
    std::string payload;
    std::string io_error;
    const nb::FrameStatus status =
        nb::read_frame(conn->stream, &payload, /*timeout_ms=*/0, &conn_stop_,
                       config_.max_frame_bytes, &io_error);
    if (status == nb::FrameStatus::kClosed ||
        status == nb::FrameStatus::kStopped ||
        status == nb::FrameStatus::kError) {
      break;
    }
    if (status == nb::FrameStatus::kTimeout) continue;
    if (status == nb::FrameStatus::kTooLarge) {
      // The stream position is unrecoverable (the announced payload was
      // never read): answer, quarantine, close.
      stats_.malformed.fetch_add(1);
      stats_.quarantined.fetch_add(1);
      nb::write_frame(conn->stream,
                      render_failure(0, "error",
                                     analysis::codes::kServeQuarantine,
                                     "oversized frame: " + io_error));
      break;
    }

    std::string parse_error;
    auto request = parse_request(payload, &parse_error);
    if (!request) {
      // Poisoned frame: structured, position-carrying error; the
      // connection survives until the malformed streak trips quarantine.
      stats_.malformed.fetch_add(1);
      ++malformed_streak;
      if (malformed_streak >= config_.quarantine_threshold) {
        stats_.quarantined.fetch_add(1);
        nb::write_frame(
            conn->stream,
            render_failure(0, "error", analysis::codes::kServeQuarantine,
                           "connection quarantined after " +
                               std::to_string(malformed_streak) +
                               " malformed frames (last: " + parse_error +
                               ")"));
        break;
      }
      stats_.errors.fetch_add(1);
      if (!nb::write_frame(conn->stream,
                           render_failure(0, "error",
                                          analysis::codes::kServeBadRequest,
                                          parse_error)))
        break;
      continue;
    }
    malformed_streak = 0;
    stats_.requests.fetch_add(1);

    // Health bypasses the queue: monitoring must answer during overload,
    // and the handler only reads atomics.
    if (request->op == ServeRequest::Op::kHealth) {
      stats_.ok.fetch_add(1);
      if (!nb::write_frame(conn->stream, handle_health(*request))) break;
      continue;
    }

    if (draining_.load(std::memory_order_relaxed)) {
      stats_.rejected_draining.fetch_add(1);
      nb::write_frame(conn->stream,
                      render_failure(request->id, "rejected",
                                     analysis::codes::kServeDraining,
                                     "server is draining"));
      continue;
    }

    auto pending = std::make_shared<Pending>();
    pending->request = *request;
    pending->deadline = request_deadline(*request);
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (queue_.size() >= queue_capacity_) {
        // Load shed: bounded admission, structured rejection.  The flight
        // event is written under the queue mutex, which serializes every
        // admission-track writer (the single-writer rule by lock instead
        // of by thread).
        stats_.shed.fetch_add(1);
        if (config_.flight != nullptr)
          config_.flight->record(1, obs::FlightEventType::kServeShed, conn_id,
                                 queue_.size());
        nb::write_frame(conn->stream,
                        render_failure(request->id, "rejected",
                                       analysis::codes::kServeOverload,
                                       "admission queue full"));
        continue;
      }
      queue_.push_back(pending);
    }
    queue_cv_.notify_one();

    std::unique_lock<std::mutex> lock(pending->mutex);
    const bool finished = pending->cv.wait_until(
        lock, pending->deadline, [&pending] { return pending->done; });
    if (finished) {
      const std::string response = pending->response;
      lock.unlock();
      if (!nb::write_frame(conn->stream, response)) break;
      continue;
    }
    // Deadline passed with the worker still stalled (or the request still
    // queued): answer degraded NOW and let the late result be dropped --
    // the client always hears back within its deadline, and a stalled
    // handler can never wedge the connection.
    pending->expired.store(true, std::memory_order_release);
    lock.unlock();
    stats_.deadline_expired.fetch_add(1);
    stats_.degraded.fetch_add(1);
    if (!nb::write_frame(conn->stream,
                         render_failure(pending->request.id, "degraded",
                                        analysis::codes::kServeDeadline,
                                        "deadline exceeded")))
      break;
  }
  conn->stream.close();
  conn->finished.store(true, std::memory_order_release);
}

void Server::worker_loop(unsigned worker) {
  bgp::SimMemory memory;
  for (;;) {
    std::shared_ptr<Pending> pending;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return !queue_.empty() || draining_.load(std::memory_order_relaxed);
      });
      if (queue_.empty()) {
        if (draining_.load(std::memory_order_relaxed)) return;
        continue;
      }
      pending = std::move(queue_.front());
      queue_.pop_front();
    }
    if (pending->expired.load(std::memory_order_acquire)) {
      // Expired while queued: the connection already answered degraded.
      stats_.abandoned.fetch_add(1);
      if (config_.flight != nullptr)
        config_.flight->record(
            2 + worker, obs::FlightEventType::kServeRequest,
            static_cast<std::uint64_t>(pending->request.op),
            static_cast<std::uint64_t>(ServeOutcome::kAbandoned), 0);
      continue;
    }
    executing_.fetch_add(1);
    const std::string response =
        execute(pending->request, pending->deadline, memory, worker);
    executing_.fetch_sub(1);
    {
      std::lock_guard<std::mutex> lock(pending->mutex);
      pending->done = true;
      pending->response = response;
    }
    pending->cv.notify_all();
    if (pending->expired.load(std::memory_order_acquire))
      stats_.abandoned.fetch_add(1);
  }
}

std::string Server::execute(const ServeRequest& request,
                            Clock::time_point deadline, bgp::SimMemory& memory,
                            unsigned worker) {
  const std::uint64_t start_us =
      config_.trace != nullptr ? config_.trace->now_us() : 0;
  const Clock::time_point handler_start = Clock::now();
  std::string response;
  ServeOutcome outcome = ServeOutcome::kOk;
  try {
#ifdef RD_FAULT_INJECTION
    // Request-addressed fault points (core::ServeFaultPlan): only honored
    // when the daemon opted in, so a rogue client cannot stall workers.
    if (config_.fault.honor_request_faults && !request.fault.empty()) {
      if (request.fault == "throw")
        throw std::runtime_error("injected worker fault");
      if (request.fault == "stall") {
        const std::uint64_t ms =
            request.stall_ms > 0 ? request.stall_ms : config_.fault.stall_ms;
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
      }
    }
#endif
    switch (request.op) {
      case ServeRequest::Op::kPredict:
        response = handle_predict(request, memory);
        break;
      case ServeRequest::Op::kExplain:
        response = handle_explain(request);
        break;
      case ServeRequest::Op::kWhatIf:
        response = handle_whatif(request, deadline);
        break;
      case ServeRequest::Op::kHealth:
        response = handle_health(request);
        break;
    }
    if (response.find("\"status\": \"degraded\"") != std::string::npos)
      outcome = ServeOutcome::kDegraded;
    else if (response.find("\"status\": \"ok\"") == std::string::npos)
      outcome = ServeOutcome::kError;
  } catch (const std::bad_alloc&) {
    // Allocation failure inside a handler (e.g. during a what-if fork):
    // the worker absorbs it and answers structured; it never dies.
    stats_.worker_faults.fetch_add(1);
    outcome = ServeOutcome::kError;
    response = render_failure(request.id, "error",
                              analysis::codes::kServeHandlerFault,
                              "allocation failure while handling request");
  } catch (const std::exception& e) {
    stats_.worker_faults.fetch_add(1);
    outcome = ServeOutcome::kError;
    response =
        render_failure(request.id, "error",
                       analysis::codes::kServeHandlerFault,
                       std::string("handler fault: ") + e.what());
  }
  switch (outcome) {
    case ServeOutcome::kOk:
      stats_.ok.fetch_add(1);
      break;
    case ServeOutcome::kDegraded:
      stats_.degraded.fetch_add(1);
      break;
    default:
      stats_.errors.fetch_add(1);
      break;
  }
  const std::uint64_t micros = static_cast<std::uint64_t>(
      seconds_since(handler_start) * 1e6);
  if (config_.flight != nullptr)
    config_.flight->record(2 + worker, obs::FlightEventType::kServeRequest,
                           static_cast<std::uint64_t>(request.op),
                           static_cast<std::uint64_t>(outcome), micros);
  if (config_.trace != nullptr &&
      config_.trace->enabled(obs::TraceLevel::kIteration)) {
    config_.trace->complete("serve", op_name(request.op), start_us, micros,
                            worker + 1);
  }
  return response;
}

std::string Server::handle_predict(const ServeRequest& request,
                                   bgp::SimMemory& memory) {
  if (!model_.has_as(request.origin) || !model_.has_as(request.vantage)) {
    return render_failure(request.id, "error",
                          analysis::codes::kServeBadRequest,
                          "origin and vantage must name ASes in the model");
  }
  bgp::PrefixSimResult sim;
  engine_.run_into(nb::Prefix::for_asn(request.origin), request.origin,
                   memory, nullptr, nullptr, sim);
  bool diverged = !sim.converged;
#ifdef RD_FAULT_INJECTION
  if (config_.fault.honor_request_faults && request.fault == "diverge")
    diverged = true;
#endif
  const auto paths = core::best_paths_of(model_, sim, request.vantage);

  nb::JsonWriter json;
  begin_response(&json, request.id, diverged ? "degraded" : "ok");
  if (diverged) {
    // Divergence guard tripped: the RIBs are a partial fixed point; report
    // them as degraded with the R-code instead of killing the query.
    json.key("code").value(analysis::codes::kEngineDiverged);
    json.key("error").value("divergence guard tripped; paths are partial");
  }
  json.key("op").value("predict");
  json.key("origin").value(static_cast<std::uint64_t>(request.origin));
  json.key("vantage").value(static_cast<std::uint64_t>(request.vantage));
  json.key("reachable").value(!paths.empty());
  json.key("paths");
  append_path_set(&json, paths);
  json.end_object();
  return json.str();
}

std::string Server::handle_explain(const ServeRequest& request) {
  if (!model_.has_as(request.origin) || !model_.has_as(request.vantage)) {
    return render_failure(request.id, "error",
                          analysis::codes::kServeBadRequest,
                          "origin and as must name ASes in the model");
  }
  const auto sim =
      engine_.run(nb::Prefix::for_asn(request.origin), request.origin);
  nb::JsonWriter json;
  begin_response(&json, request.id, "ok");
  json.key("op").value("explain");
  json.key("origin").value(static_cast<std::uint64_t>(request.origin));
  json.key("as").value(static_cast<std::uint64_t>(request.vantage));
  json.key("routers").begin_array();
  for (topo::Model::Dense r : model_.routers_of(request.vantage)) {
    json.begin_object();
    json.key("router").value(model_.router_id(r).str());
    json.key("text").value(
        bgp::explain_selection(model_, sim, r).str(model_));
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

std::shared_ptr<Server::Fork> Server::fork_for(const ServeRequest& request) {
  const std::string key = request.fork_key();
  const std::uint64_t generation = model_.generation();
  {
    std::lock_guard<std::mutex> lock(fork_mutex_);
    auto it = forks_.find(key);
    if (it != forks_.end() && it->second->base_generation == generation) {
      stats_.fork_hits.fetch_add(1);
      return it->second;
    }
  }
  stats_.fork_misses.fetch_add(1);
#ifdef RD_FAULT_INJECTION
  // The bad_alloc-during-fork injection point: fires before anything is
  // cached, so the fork cache never holds a half-built entry.
  if (config_.fault.honor_request_faults && request.fault == "bad-alloc")
    throw std::bad_alloc();
#endif
  core::WhatIfScenario scenario;
  if (request.edit == "session-down") {
    scenario.remove_sessions.emplace_back(request.session_a,
                                          request.session_b);
  } else {
    scenario.deny_prefix.push_back(
        {request.from, request.to, nb::Prefix::for_asn(request.origin)});
  }
  auto fork = std::make_shared<Fork>(
      generation, core::apply_scenario(model_, scenario), config_.engine);
  {
    std::lock_guard<std::mutex> lock(fork_mutex_);
    // Bounded cache: a reset is simpler than LRU bookkeeping and the
    // steady state (a handful of hot edits) never reaches it.
    if (forks_.size() >= config_.fork_cache_capacity) forks_.clear();
    forks_[key] = fork;
  }
  return fork;
}

std::string Server::handle_whatif(const ServeRequest& request,
                                  Clock::time_point deadline) {
  if (request.edit == "session-down") {
    if (!model_.has_router(request.session_a) ||
        !model_.has_router(request.session_b) ||
        !model_.has_session(request.session_a, request.session_b)) {
      return render_failure(request.id, "error",
                            analysis::codes::kServeBadRequest,
                            "session does not exist in the model");
    }
  } else {
    if (!model_.has_as(request.origin) || !model_.has_as(request.from) ||
        !model_.has_as(request.to)) {
      return render_failure(request.id, "error",
                            analysis::codes::kServeBadRequest,
                            "origin, from and to must name ASes in the model");
    }
  }
  const auto fork = fork_for(request);

  std::vector<nb::Asn> origins = request.origins;
  if (origins.empty()) {
    if (request.edit == "policy-edit") {
      origins.push_back(request.origin);
    } else {
      origins = model_.asns();
    }
  }
  if (origins.size() > config_.whatif_max_origins)
    origins.resize(config_.whatif_max_origins);

  core::WhatIfOptions options;
  options.engine = config_.engine;
  options.max_changes = config_.max_changes;
  core::WhatIfResult result;
  for (nb::Asn origin : origins) {
    // The per-request deadline applied between prefixes (PR 5's budget
    // contract): a slow diff returns partial counts as `degraded`, never
    // nothing.
    if (Clock::now() >= deadline) {
      result.truncated = true;
      break;
    }
    if (!model_.has_as(origin)) continue;
    core::diff_origin_routes(model_, engine_, fork->changed, fork->engine,
                             origin, options, &result);
  }

  nb::JsonWriter json;
  begin_response(&json, request.id, result.truncated ? "degraded" : "ok");
  if (result.truncated) {
    json.key("code").value(analysis::codes::kServeDeadline);
    json.key("error").value(
        "deadline exceeded; counts cover the evaluated prefixes only");
  }
  json.key("op").value("whatif");
  json.key("edit").value(request.edit);
  json.key("prefixes_evaluated")
      .value(static_cast<std::uint64_t>(result.prefixes_evaluated));
  json.key("pairs_evaluated")
      .value(static_cast<std::uint64_t>(result.pairs_evaluated));
  json.key("pairs_changed")
      .value(static_cast<std::uint64_t>(result.pairs_changed));
  json.key("pairs_lost_reachability")
      .value(static_cast<std::uint64_t>(result.pairs_lost_reachability));
  json.key("pairs_gained_reachability")
      .value(static_cast<std::uint64_t>(result.pairs_gained_reachability));
  json.key("changes").begin_array();
  for (const core::RouteChange& change : result.changes) {
    json.begin_object();
    json.key("origin").value(static_cast<std::uint64_t>(change.origin));
    json.key("observer").value(static_cast<std::uint64_t>(change.observer));
    json.key("before");
    append_path_set(&json, change.before);
    json.key("after");
    append_path_set(&json, change.after);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

std::string Server::handle_health(const ServeRequest& request) {
  const ServeStatus s = status();
  nb::JsonWriter json;
  begin_response(&json, request.id, "ok");
  json.key("op").value("health");
  json.key("uptime_seconds").value_fixed(s.uptime_seconds, 3);
  json.key("generation").value(s.generation);
  json.key("ases").value(static_cast<std::uint64_t>(model_.num_ases()));
  json.key("routers").value(static_cast<std::uint64_t>(model_.num_routers()));
  json.key("workers").value(s.workers);
  json.key("queue_depth").value(static_cast<std::uint64_t>(s.queue_depth));
  json.key("queue_capacity")
      .value(static_cast<std::uint64_t>(s.queue_capacity));
  json.key("draining").value(s.draining);
  json.key("peak_rss_bytes").value(nb::peak_rss_bytes());
  json.key("counters").begin_object();
  json.key("connections").value(s.connections);
  json.key("requests").value(s.requests);
  json.key("ok").value(s.ok);
  json.key("degraded").value(s.degraded);
  json.key("errors").value(s.errors);
  json.key("shed").value(s.shed);
  json.key("rejected_draining").value(s.rejected_draining);
  json.key("malformed").value(s.malformed);
  json.key("quarantined").value(s.quarantined);
  json.key("deadline_expired").value(s.deadline_expired);
  json.key("worker_faults").value(s.worker_faults);
  json.key("abandoned").value(s.abandoned);
  json.key("fork_hits").value(s.fork_hits);
  json.key("fork_misses").value(s.fork_misses);
  json.end_object();
  json.end_object();
  return json.str();
}

std::string Server::answer(const std::string& request_text) {
  std::string parse_error;
  auto request = parse_request(request_text, &parse_error);
  if (!request) {
    stats_.malformed.fetch_add(1);
    stats_.errors.fetch_add(1);
    return render_failure(0, "error", analysis::codes::kServeBadRequest,
                          parse_error);
  }
  stats_.requests.fetch_add(1);
  bgp::SimMemory memory;
  return execute(*request, request_deadline(*request), memory, 0);
}

ServeStatus Server::status() const {
  ServeStatus s;
  s.uptime_seconds = seconds_since(start_);
  s.generation = model_.generation();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    s.queue_depth = queue_.size();
  }
  s.queue_capacity = queue_capacity_;
  s.workers = workers_;
  s.draining = draining_.load(std::memory_order_relaxed);
  s.connections = stats_.connections.load();
  s.requests = stats_.requests.load();
  s.ok = stats_.ok.load();
  s.degraded = stats_.degraded.load();
  s.errors = stats_.errors.load();
  s.shed = stats_.shed.load();
  s.rejected_draining = stats_.rejected_draining.load();
  s.malformed = stats_.malformed.load();
  s.quarantined = stats_.quarantined.load();
  s.deadline_expired = stats_.deadline_expired.load();
  s.worker_faults = stats_.worker_faults.load();
  s.abandoned = stats_.abandoned.load();
  s.fork_hits = stats_.fork_hits.load();
  s.fork_misses = stats_.fork_misses.load();
  return s;
}

void Server::export_metrics(obs::Registry* registry) const {
  if (registry == nullptr) return;
  const ServeStatus s = status();
  const auto add = [registry](const char* name, std::uint64_t value) {
    registry->add(registry->counter(name), value);
  };
  add("serve.connections", s.connections);
  add("serve.requests", s.requests);
  add("serve.ok", s.ok);
  add("serve.degraded", s.degraded);
  add("serve.errors", s.errors);
  add("serve.shed", s.shed);
  add("serve.rejected_draining", s.rejected_draining);
  add("serve.malformed", s.malformed);
  add("serve.quarantined", s.quarantined);
  add("serve.deadline_expired", s.deadline_expired);
  add("serve.worker_faults", s.worker_faults);
  add("serve.abandoned", s.abandoned);
  add("serve.fork_hits", s.fork_hits);
  add("serve.fork_misses", s.fork_misses);
  registry->set_gauge(registry->gauge("serve.workers"), s.workers);
  registry->set_gauge(registry->gauge("serve.queue_capacity"),
                      s.queue_capacity);
  registry->set_gauge(registry->gauge("serve.uptime_seconds"),
                      static_cast<std::uint64_t>(s.uptime_seconds));
  registry->set_gauge(registry->gauge("serve.peak_rss_bytes"),
                      nb::peak_rss_bytes());
}

void Server::request_stop() {
  draining_.store(true, std::memory_order_relaxed);
  queue_cv_.notify_all();
}

void Server::shutdown() {
  request_stop();
  if (!started_.exchange(false)) return;

  // 1. Stop accepting: the accept loop observes draining_ within one
  //    100 ms poll slice; joining it closes the front door.
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();
  if (config_.flight != nullptr) {
    std::size_t in_flight = executing_.load();
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      in_flight += queue_.size();
    }
    config_.flight->record(0, obs::FlightEventType::kServeDrain, in_flight);
  }

  // 2. Drain budget: wait for the admitted queue and executing handlers.
  const Clock::time_point budget =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(config_.drain_seconds));
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (queue_.empty() && executing_.load() == 0) break;
    }
    if (Clock::now() >= budget) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  // 3. Force-expire whatever the budget left behind: waiting connections
  //    get an immediate structured rejection instead of their full
  //    deadline, and workers skip the expired entries instantly.
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    for (const auto& pending : queue_) {
      pending->expired.store(true, std::memory_order_release);
      {
        std::lock_guard<std::mutex> plock(pending->mutex);
        if (!pending->done) {
          pending->done = true;
          pending->response = render_failure(
              pending->request.id, "rejected",
              analysis::codes::kServeDraining, "server drained before "
              "execution");
        }
      }
      pending->cv.notify_all();
    }
  }
  queue_cv_.notify_all();
  for (std::thread& worker : worker_threads_)
    if (worker.joinable()) worker.join();
  worker_threads_.clear();

  // 4. Unblock and join every connection reader.
  conn_stop_.store(true, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (const auto& conn : conns_) conn->stream.shutdown_both();
  }
  reap_connections(/*all=*/true);
}

}  // namespace serve
