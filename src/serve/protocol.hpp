// Wire protocol of the serve daemon (DESIGN.md section 15).
//
// Transport: length-prefixed frames (netbase/socket.hpp) carrying one JSON
// document each.  Requests are objects with an "op" member:
//
//   {"op": "predict", "origin": O, "vantage": A [, "id": N]}
//   {"op": "explain", "origin": O, "as": A}
//   {"op": "whatif", "edit": "session-down", "session": "A.I:B.J"
//        [, "origins": [O, ...]]}
//   {"op": "whatif", "edit": "policy-edit", "origin": O,
//        "from": A, "to": B [, "origins": [...]]}
//   {"op": "health"}
//
// plus optional members every op accepts: "id" (echoed verbatim in the
// response, default 0), "deadline_ms" (per-request deadline override,
// clamped to the server's configured maximum) and -- only in
// RD_FAULT_INJECTION builds with request faults enabled -- "fault" /
// "stall_ms" (core::ServeFaultPlan).
//
// Responses are objects {"id": N, "status": S, ...} where S is one of
//   "ok"        full answer; payload per op
//   "degraded"  partial answer (deadline hit, divergence guard): payload
//               present, "code" names the R-code (R710 / R701)
//   "rejected"  request not executed (queue full R711, draining R714)
//   "error"     malformed or failed request (R715 parse/validation -- with
//               the parser's byte position -- R712 handler fault,
//               R713 quarantine)
// Non-"ok" responses carry "code" and "error" members.  Responses never
// include timings or other run-dependent fields: byte-for-byte identical
// queries get byte-for-byte identical answers, which is how the tests pin
// concurrency safety.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "netbase/ids.hpp"

namespace serve {

struct ServeRequest {
  enum class Op : std::uint8_t { kPredict, kExplain, kWhatIf, kHealth };

  Op op = Op::kHealth;
  std::uint64_t id = 0;  // echoed in the response
  nb::Asn origin = nb::kInvalidAsn;
  nb::Asn vantage = nb::kInvalidAsn;  // predict vantage / explain observer

  // whatif
  std::string edit;  // "session-down" | "policy-edit"
  nb::RouterId session_a;
  nb::RouterId session_b;
  nb::Asn from = nb::kInvalidAsn;  // policy-edit: deny origin's prefix
  nb::Asn to = nb::kInvalidAsn;    // from -> to announcements
  std::vector<nb::Asn> origins;    // whatif origins (empty = server default)

  double deadline_ms = 0;  // 0 = server default
  std::string fault;       // RD_FAULT_INJECTION only; see ServeFaultPlan
  std::uint64_t stall_ms = 0;

  /// Stable cache key for the what-if model fork this request needs
  /// ("" for non-whatif ops).  Identical edits -- regardless of origins,
  /// deadline or id -- share one copy-on-write fork.
  std::string fork_key() const;
};

const char* op_name(ServeRequest::Op op);

/// Parses one request document.  On failure returns nullopt and fills
/// `error` with a human-readable reason -- including the byte position for
/// JSON syntax errors (nb::json_parse's position-carrying message).
std::optional<ServeRequest> parse_request(const std::string& text,
                                          std::string* error);

}  // namespace serve
