// The long-lived route-prediction daemon behind `rdtool serve` (DESIGN.md
// section 15): loads a fitted model once and answers predict / explain /
// what-if / health queries over the length-prefixed JSON protocol
// (serve/protocol.hpp), robust by construction:
//
//  * Concurrency: a fixed worker pool executes read-only queries against
//    one shared Engine whose epoch-cached SimContext snapshot makes
//    concurrent const run() calls safe; each worker owns a SimMemory
//    arena, so the steady state allocates (amortized) nothing per query.
//    What-if queries run against copy-on-write model forks cached by edit
//    key and base-model generation (Model::generation()).
//  * Deadlines: every request gets a wall-clock deadline (server default,
//    request-overridable downward).  The connection answers `degraded`
//    with R710 at the deadline even when the worker is stalled -- the
//    worker finishes harmlessly and its late result is dropped.  What-if
//    handlers check the deadline between prefixes (the PR 5 budget
//    contract via core::WhatIfOptions) and return partial counts.
//  * Backpressure: a bounded admission queue; a full queue rejects with
//    R711 ("503"-style structured shed, `serve.shed` counter) instead of
//    queueing unboundedly.
//  * Poisoned-query quarantine: malformed frames are answered with
//    position-carrying R715 errors; a connection exceeding the malformed
//    streak threshold is answered R713 and closed.  Handler faults
//    (injectable: throw / bad_alloc / stall / diverge, see
//    core::ServeFaultPlan) are absorbed into R712 responses -- a worker
//    thread never dies.
//  * Drain: request_stop() (the SIGTERM path) stops accepting, rejects
//    new requests with R714, finishes the in-flight queue within the
//    drain budget, then force-expires leftovers; shutdown() returns once
//    every thread joined, after which the caller flushes observability
//    atomically (obs::flush_observability) and exits 0.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bgp/engine.hpp"
#include "core/fault_inject.hpp"
#include "netbase/socket.hpp"
#include "serve/protocol.hpp"
#include "topology/model.hpp"

namespace obs {
class FlightRecorder;
class Registry;
class TraceSink;
}  // namespace obs

namespace serve {

struct ServeConfig {
  /// Worker threads (0 = hardware concurrency via nb::resolve_threads).
  unsigned threads = 0;
  /// Admission queue capacity (0 = 4x workers).
  std::size_t queue_capacity = 0;
  /// Default and maximum per-request deadline.
  double deadline_seconds = 2.0;
  /// Drain budget: how long request_stop() waits for in-flight requests.
  double drain_seconds = 5.0;
  /// Default / maximum origins a what-if diff evaluates.
  std::size_t whatif_max_origins = 8;
  /// Cap on detailed change records per what-if response.
  std::size_t max_changes = 32;
  /// Cached what-if forks before the cache resets.
  std::size_t fork_cache_capacity = 8;
  /// Consecutive malformed frames before a connection is quarantined.
  int quarantine_threshold = 3;
  std::size_t max_frame_bytes = nb::kMaxFrameBytes;
  bgp::EngineOptions engine;

  obs::FlightRecorder* flight = nullptr;  // tracks: see flight_tracks()
  obs::TraceSink* trace = nullptr;        // per-request spans when attached
  core::ServeFaultPlan fault;             // RD_FAULT_INJECTION only
};

/// Point-in-time health snapshot (the `health` / `statusz` payload).
struct ServeStatus {
  double uptime_seconds = 0;
  std::uint64_t generation = 0;
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 0;
  unsigned workers = 0;
  bool draining = false;

  std::uint64_t connections = 0;
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t degraded = 0;
  std::uint64_t errors = 0;
  std::uint64_t shed = 0;
  std::uint64_t rejected_draining = 0;
  std::uint64_t malformed = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t deadline_expired = 0;
  std::uint64_t worker_faults = 0;
  std::uint64_t abandoned = 0;
  std::uint64_t fork_hits = 0;
  std::uint64_t fork_misses = 0;
};

class Server {
 public:
  /// The model must outlive the server and must not be mutated while it
  /// serves (the shared-snapshot contract).
  Server(const topo::Model& model, ServeConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Flight-recorder tracks a serve daemon with `workers` workers writes:
  /// track 0 = accept loop, track 1 = admission (shed events, serialized
  /// by the queue mutex), track 2 + w = worker w.
  static unsigned flight_tracks(unsigned workers) { return 2 + workers; }

  unsigned workers() const { return workers_; }
  std::size_t queue_capacity() const { return queue_capacity_; }

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the accept loop
  /// and worker pool.  False + `error` on bind failure.
  bool listen(std::uint16_t port, std::string* error);
  std::uint16_t port() const { return port_; }

  /// Begins the cooperative drain (idempotent, callable after SIGTERM).
  void request_stop();
  /// True once request_stop() was called (or listen() never was).
  bool stopping() const { return draining_.load(std::memory_order_relaxed); }

  /// Drains and joins everything (see class comment).  Safe to call
  /// without listen() and more than once.
  void shutdown();

  /// Answers one request text through the exact worker code path
  /// (parse -> validate -> execute with deadline -> render), bypassing
  /// sockets and admission.  Used by `rdtool serve --once`, the tests'
  /// byte-identity oracle, and anyone embedding the daemon.
  std::string answer(const std::string& request_text);

  ServeStatus status() const;

  /// Copies the serve.* counters and gauges into `registry` (called once
  /// at drain time, before the atomic metrics flush).
  void export_metrics(obs::Registry* registry) const;

 private:
  struct Stats {
    std::atomic<std::uint64_t> connections{0};
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> ok{0};
    std::atomic<std::uint64_t> degraded{0};
    std::atomic<std::uint64_t> errors{0};
    std::atomic<std::uint64_t> shed{0};
    std::atomic<std::uint64_t> rejected_draining{0};
    std::atomic<std::uint64_t> malformed{0};
    std::atomic<std::uint64_t> quarantined{0};
    std::atomic<std::uint64_t> deadline_expired{0};
    std::atomic<std::uint64_t> worker_faults{0};
    std::atomic<std::uint64_t> abandoned{0};
    std::atomic<std::uint64_t> fork_hits{0};
    std::atomic<std::uint64_t> fork_misses{0};
  };

  /// One admitted request travelling from a connection thread to a worker
  /// and back.  The connection waits on `cv` until `done` or its deadline;
  /// past the deadline it sets `expired` and answers degraded itself --
  /// the worker then drops the late (or never-started) result.
  struct Pending {
    ServeRequest request;
    std::chrono::steady_clock::time_point deadline;
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    std::string response;
    std::atomic<bool> expired{false};
  };

  /// A cached copy-on-write what-if fork: the edited model plus an engine
  /// over it, keyed by (edit key, base Model::generation()).
  struct Fork {
    std::uint64_t base_generation;
    topo::Model changed;
    bgp::Engine engine;
    Fork(std::uint64_t generation, topo::Model model,
         const bgp::EngineOptions& options)
        : base_generation(generation),
          changed(std::move(model)),
          engine(changed, options) {}
  };

  struct Connection {
    nb::TcpStream stream;
    std::thread thread;
    std::atomic<bool> finished{false};
  };

  std::chrono::steady_clock::time_point request_deadline(
      const ServeRequest& request) const;

  void accept_loop();
  void serve_connection(std::uint64_t conn_id, Connection* conn);
  void worker_loop(unsigned worker);
  /// Joins and erases finished connection threads (accept-loop housekeeping).
  void reap_connections(bool all);

  /// Executes one parsed request (worker thread or the --once path) and
  /// returns the rendered response.  Never throws: faults become R712.
  std::string execute(const ServeRequest& request,
                      std::chrono::steady_clock::time_point deadline,
                      bgp::SimMemory& memory, unsigned worker);
  std::string handle_predict(const ServeRequest& request,
                             bgp::SimMemory& memory);
  std::string handle_explain(const ServeRequest& request);
  std::string handle_whatif(const ServeRequest& request,
                            std::chrono::steady_clock::time_point deadline);
  std::string handle_health(const ServeRequest& request);

  std::shared_ptr<Fork> fork_for(const ServeRequest& request);

  const topo::Model& model_;
  ServeConfig config_;
  unsigned workers_;
  std::size_t queue_capacity_;
  bgp::Engine engine_;
  std::chrono::steady_clock::time_point start_;
  Stats stats_;

  nb::TcpListener listener_;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> draining_{false};
  /// Hard stop for connection reads (set after the drain budget).
  std::atomic<bool> conn_stop_{false};
  std::atomic<bool> started_{false};

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<Pending>> queue_;
  std::atomic<std::size_t> executing_{0};
  std::vector<std::thread> worker_threads_;

  std::mutex conns_mutex_;
  std::vector<std::unique_ptr<Connection>> conns_;
  std::uint64_t next_conn_id_ = 0;

  std::mutex fork_mutex_;
  std::unordered_map<std::string, std::shared_ptr<Fork>> forks_;
};

}  // namespace serve
