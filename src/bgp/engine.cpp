#include "bgp/engine.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "netbase/check.hpp"

namespace bgp {

using topo::NeighborClass;
using topo::PrefixPolicy;

const RouterState& PrefixSimResult::state(Model::Dense r) const {
  // Non-members of a compacted run hold no storage; a full run provably
  // leaves them with exactly this default-empty state (every import into
  // them fails), so the shared empty state IS their simulated outcome.
  static const RouterState kEmpty;
  if (view == nullptr || view->identity) return routers[r];
  const std::uint32_t c = view->compact_of[r];
  return c == PrefixView::kNoCompact ? kEmpty : routers[c];
}

std::vector<std::uint32_t> dense_ids(const Model& model) {
  std::vector<std::uint32_t> ids(model.num_routers());
  for (Model::Dense r = 0; r < ids.size(); ++r)
    ids[r] = model.router_id(r).value();
  return ids;
}

Engine::Engine(const Model& model, EngineOptions options)
    : model_(&model), options_(options) {}

std::shared_ptr<const SimContext> Engine::context() const {
  std::lock_guard lock(context_mutex_);
  if (context_ == nullptr || context_->epoch != model_->generation()) {
    auto ctx = std::make_shared<SimContext>();
    ctx->epoch = model_->generation();
    const std::size_t n = model_->num_routers();
    ctx->ids.resize(n);
    ctx->asn_of.resize(n);
    ctx->peer_offset.resize(n + 1, 0);
    std::size_t total = 0;
    for (Model::Dense r = 0; r < n; ++r) {
      const nb::RouterId id = model_->router_id(r);
      ctx->ids[r] = id.value();
      ctx->asn_of[r] = id.asn();
      ctx->peer_offset[r] = static_cast<std::uint32_t>(total);
      total += model_->peers(r).size();
    }
    ctx->peer_offset[n] = static_cast<std::uint32_t>(total);
    ctx->peer_flat.reserve(total);
    for (Model::Dense r = 0; r < n; ++r) {
      const auto& peers = model_->peers(r);
      ctx->peer_flat.insert(ctx->peer_flat.end(), peers.begin(), peers.end());
    }
    context_ = std::move(ctx);
  }
  return context_;
}

bool Engine::propagate_into(const PrefixPolicy* policy, Model::Dense from,
                            Model::Dense to, const Route& best,
                            const SimContext& ctx, Route& out) const {
  const nb::Asn from_as = ctx.asn_of[from];
  const nb::Asn to_as = ctx.asn_of[to];
  // Receiver-side AS-loop detection on the route as it would arrive
  // ([from_as, best.path...]); checked before building the path.
  if (to_as == from_as || path_contains(best.path, to_as)) return false;

  if (options_.use_relationship_policies) {
    // Valley-free export: routes learned from a peer or provider are only
    // exported to customers.  Unknown classes are permissive on both sides
    // (the paper's agnostic stance: absent information must not disconnect).
    const NeighborClass to_class = model_->neighbor_class(from_as, to_as);
    if (to_class == NeighborClass::kPeer ||
        to_class == NeighborClass::kProvider) {
      bool from_customer_or_self = best.originated();
      if (!from_customer_or_self) {
        const Asn learned_from = best.path.front();
        const NeighborClass learned_class =
            model_->neighbor_class(from_as, learned_from);
        from_customer_or_self = learned_class == NeighborClass::kCustomer ||
                                learned_class == NeighborClass::kUnknown;
      }
      // Per-prefix leak: an export-allow exempts this session.
      if (!from_customer_or_self &&
          !(policy != nullptr &&
            policy->export_allows.count(
                topo::session_key(nb::RouterId::from_value(ctx.ids[from]),
                                  nb::RouterId::from_value(ctx.ids[to]))) >
                0)) {
        return false;
      }
    }
  }
  const std::size_t arriving_len = best.path.size() + 1;
  if (const topo::ExportFilter* filter =
          model_->find_export_filter(from, to, policy);
      filter != nullptr && filter->blocks(arriving_len)) {
    return false;
  }

  out.sender = from;
  out.ibgp = false;
  out.local_pref = kDefaultLocalPref;
  if (options_.use_relationship_policies) {
    switch (model_->neighbor_class(to_as, from_as)) {
      case NeighborClass::kCustomer:
        out.local_pref = options_.lp_customer;
        break;
      case NeighborClass::kPeer:
        out.local_pref = options_.lp_peer;
        break;
      case NeighborClass::kProvider:
        out.local_pref = options_.lp_provider;
        break;
      case NeighborClass::kUnknown:
        out.local_pref = options_.lp_unknown;
        break;
    }
  }
  out.med = topo::kDefaultMed;
  bool has_prefix_ranking = false;
  if (policy != nullptr) {
    const nb::RouterId to_id = nb::RouterId::from_value(ctx.ids[to]);
    if (auto it = policy->lp_overrides.find(topo::router_asn_key(to_id, from_as));
        it != policy->lp_overrides.end()) {
      out.local_pref = it->second;
    }
    if (auto it = policy->rankings.find(to_id.value());
        it != policy->rankings.end()) {
      has_prefix_ranking = true;
      if (it->second.preferred_neighbor == from_as)
        out.med = topo::kPreferredMed;
    }
  }
  // Prefix-independent ranking applies only when no per-prefix rule exists
  // for this router (generalized models; see core/generalize).
  if (!has_prefix_ranking && model_->default_ranking(to) == from_as) {
    out.med = topo::kPreferredMed;
  }
  out.igp_cost = options_.use_igp_cost ? model_->igp_cost(to, from) : 0;

  out.path.clear();
  out.path.reserve(arriving_len);
  out.path.push_back(from_as);
  out.path.insert(out.path.end(), best.path.begin(), best.path.end());
  return true;
}

std::optional<Route> Engine::propagate(const PrefixPolicy* policy,
                                       Model::Dense from, Model::Dense to,
                                       const Route& best) const {
  const std::shared_ptr<const SimContext> ctx = context();
  Route out;
  if (!propagate_into(policy, from, to, best, *ctx, out)) return std::nullopt;
  return out;
}

PrefixSimResult Engine::run(const Prefix& prefix, nb::Asn origin,
                            SimCounters* counters,
                            std::vector<char>* activated) const {
  // Instrumentation accumulates in locals unconditionally (register
  // increments, negligible next to message processing) and is stored
  // through `counters` only at the end, keeping the uninstrumented path
  // byte- and perf-identical.
  SimCounters tally;
  PrefixSimResult res;
  res.prefix = prefix;
  res.origin = origin;
  const std::size_t n = model_->num_routers();
  res.routers.resize(n);
  if (activated != nullptr) activated->assign(n, 0);

  const PrefixPolicy* policy = model_->find_policy(prefix);
  const std::shared_ptr<const SimContext> ctx_ptr = context();
  const SimContext& ctx = *ctx_ptr;
  const std::span<const std::uint32_t> ids(ctx.ids);

  const std::uint64_t message_cap =
      options_.message_cap_factor *
      std::max<std::uint64_t>(model_->num_sessions(), 1);
  res.message_cap = message_cap;

  std::deque<Model::Dense> queue;
  std::vector<char> queued(n, 0);
  auto enqueue = [&](Model::Dense r) {
    if (!queued[r]) {
      queued[r] = 1;
      queue.push_back(r);
    }
  };

  // Adj-RIB-In holds at most one entry per announcing router, so a sender ->
  // slot hash replaces the linear scan at routers whose inbound fan-in is
  // large (tier-1-like degrees); low-degree routers keep the scan, which is
  // faster than hashing there.  Slots shift on erase, so the index is
  // repaired then (erases are rare next to lookups).
  constexpr std::size_t kIndexedFanIn = 32;
  std::vector<char> indexed(n, 0);
  bool any_indexed = false;
  for (Model::Dense r = 0; r < n; ++r) {
    std::size_t fan_in = ctx.peers(r).size();
    if (options_.use_ibgp_mesh)
      fan_in += model_->routers_of(ctx.asn_of[r]).size() - 1;
    if (fan_in >= kIndexedFanIn) {
      indexed[r] = 1;
      any_indexed = true;
    }
  }
  std::vector<std::unordered_map<std::uint32_t, std::uint32_t>> slots(
      any_indexed ? n : 0);

  // -1 when `sender` has no entry in `state`'s RIB-In.
  auto find_slot = [&](Model::Dense router, const RouterState& state,
                       Model::Dense sender) -> int {
    if (indexed[router]) {
      const auto& map = slots[router];
      auto it = map.find(sender);
      return it == map.end() ? -1 : static_cast<int>(it->second);
    }
    for (std::size_t i = 0; i < state.rib_in.size(); ++i) {
      if (state.rib_in[i].sender == sender) return static_cast<int>(i);
    }
    return -1;
  };
  auto push_entry = [&](Model::Dense router, RouterState& state,
                        const Route& route) {
    ++tally.rib_inserts;
    if (indexed[router]) {
      slots[router][route.sender] =
          static_cast<std::uint32_t>(state.rib_in.size());
    }
    state.rib_in.push_back(route);
  };
  auto erase_entry = [&](Model::Dense router, RouterState& state, int slot) {
    ++tally.withdrawals;
    const Model::Dense sender = state.rib_in[static_cast<std::size_t>(slot)].sender;
    state.rib_in.erase(state.rib_in.begin() + slot);
    if (indexed[router]) {
      auto& map = slots[router];
      map.erase(sender);
      for (auto& [key, value] : map) {
        if (value > static_cast<std::uint32_t>(slot)) --value;
      }
    }
  };

  // Origination: each quasi-router of the origin AS injects a route with an
  // empty path (sender = self, MED 0 so an origin router never prefers a
  // learned alternative -- vacuous anyway since the empty path wins on
  // length).
  for (Model::Dense r : model_->routers_of(origin)) {
    Route self;
    self.sender = r;
    self.med = 0;
    push_entry(r, res.routers[r], self);
    res.routers[r].best = 0;
    res.routers[r].best_external = 0;
    enqueue(r);
  }

  // Pre-mutation snapshot of a router's selections: only the announcing
  // router of each selection.  A message touches exactly one RIB-In entry
  // (its sender's), so "did the selection change in a way that requires
  // re-advertising" reduces to comparing selected senders, plus one flag for
  // the touched entry's path -- no Route (and no AS-path vector) is copied.
  struct Selection {
    std::int64_t best_sender = -1;      // -1: nothing selected
    std::int64_t external_sender = -1;
  };
  auto snapshot = [](const RouterState& state) {
    Selection s;
    if (const Route* b = state.best_route()) s.best_sender = b->sender;
    if (const Route* e = state.external_route()) s.external_sender = e->sender;
    return s;
  };

  // Recomputes a router's best (and external best); returns true if either
  // selection changed from `old` in a way that requires re-advertising.
  // `touched` is the sender whose entry this message modified and
  // `touched_path_changed` whether that entry's AS-path changed: a selection
  // that stays on an untouched sender is unchanged by construction (one
  // entry per sender, and only the touched one was written).
  auto reselect = [&](RouterState& state, const Selection& old,
                      Model::Dense touched, bool touched_path_changed) {
    state.best = select_best(state.rib_in, ids);
    state.best_external = -1;
    if (options_.use_ibgp_mesh) {
      for (std::size_t i = 0; i < state.rib_in.size(); ++i) {
        if (state.rib_in[i].ibgp) continue;
        if (state.best_external < 0 ||
            compare_routes(state.rib_in[i],
                           state.rib_in[static_cast<std::size_t>(
                               state.best_external)],
                           ids)
                    .order < 0) {
          state.best_external = static_cast<int>(i);
        }
      }
    } else {
      state.best_external = state.best;
    }

    auto differs = [&](std::int64_t old_sender, const Route* now) {
      const std::int64_t now_sender =
          now == nullptr ? -1 : static_cast<std::int64_t>(now->sender);
      if (now_sender != old_sender) return true;
      return now_sender == static_cast<std::int64_t>(touched) &&
             touched_path_changed;
    };
    const bool changed = differs(old.best_sender, state.best_route()) ||
                         differs(old.external_sender, state.external_route());
    tally.selection_changes += changed ? 1 : 0;
    return changed;
  };

  // Reused across every message; its path buffer's capacity persists, so
  // steady-state propagation allocates only when a RIB-In entry is created.
  Route scratch;

  while (!queue.empty()) {
    if (res.messages > message_cap) {
      res.converged = false;
      break;
    }
    const Model::Dense r = queue.front();
    queue.pop_front();
    queued[r] = 0;
    ++tally.activations;
    if (activated != nullptr) (*activated)[r] = 1;
    const Route* best = res.routers[r].best_route();

    // iBGP mesh: push this router's best external route to its AS-mates.
    if (options_.use_ibgp_mesh) {
      const Route* external = res.routers[r].external_route();
      for (Model::Dense mate : model_->routers_of(ctx.asn_of[r])) {
        if (mate == r) continue;
        ++res.messages;
        RouterState& state = res.routers[mate];
        const int slot = find_slot(mate, state, r);
        if (external == nullptr) {
          if (slot < 0) continue;
          const Selection old = snapshot(state);
          erase_entry(mate, state, slot);
          if (reselect(state, old, r, false)) enqueue(mate);
          continue;
        }
        const std::uint32_t igp =
            options_.use_igp_cost ? model_->igp_cost(mate, r) : 0;
        if (slot >= 0) {
          Route& existing = state.rib_in[static_cast<std::size_t>(slot)];
          if (existing.path == external->path &&
              existing.local_pref == external->local_pref &&
              existing.med == external->med && existing.igp_cost == igp &&
              existing.ibgp) {
            continue;
          }
          const Selection old = snapshot(state);
          const bool path_changed = existing.path != external->path;
          ++tally.rib_replacements;
          existing.sender = r;
          existing.local_pref = external->local_pref;
          existing.med = external->med;
          existing.igp_cost = igp;
          existing.ibgp = true;
          if (path_changed) existing.path = external->path;
          if (reselect(state, old, r, path_changed)) enqueue(mate);
        } else {
          const Selection old = snapshot(state);
          Route shared;
          shared.sender = r;
          shared.local_pref = external->local_pref;
          shared.med = external->med;
          shared.igp_cost = igp;
          shared.ibgp = true;
          shared.path = external->path;
          push_entry(mate, state, shared);
          if (reselect(state, old, r, false)) enqueue(mate);
        }
      }
    }

    for (const Model::Dense peer : ctx.peers(r)) {
      ++res.messages;
      const bool has_incoming =
          best != nullptr && propagate_into(policy, r, peer, *best, ctx, scratch);

      RouterState& state = res.routers[peer];
      const int slot = find_slot(peer, state, r);

      if (!has_incoming) {
        if (slot < 0) continue;  // nothing to withdraw
        const Selection old = snapshot(state);
        erase_entry(peer, state, slot);
        if (reselect(state, old, r, false)) enqueue(peer);
        continue;
      }
      if (slot >= 0) {
        Route& existing = state.rib_in[static_cast<std::size_t>(slot)];
        if (existing.path == scratch.path &&
            existing.local_pref == scratch.local_pref &&
            existing.med == scratch.med &&
            existing.igp_cost == scratch.igp_cost) {
          continue;  // unchanged advertisement
        }
        const Selection old = snapshot(state);
        const bool path_changed = existing.path != scratch.path;
        ++tally.rib_replacements;
        existing.sender = scratch.sender;
        existing.local_pref = scratch.local_pref;
        existing.med = scratch.med;
        existing.igp_cost = scratch.igp_cost;
        existing.ibgp = false;
        // Swap instead of assign: both buffers stay allocated and are reused.
        if (path_changed) existing.path.swap(scratch.path);
        if (reselect(state, old, r, path_changed)) enqueue(peer);
      } else {
        const Selection old = snapshot(state);
        push_entry(peer, state, scratch);
        if (reselect(state, old, r, false)) enqueue(peer);
      }
    }
  }
  res.activations = tally.activations;
  if (counters != nullptr) {
    tally.messages = res.messages;
    *counters = tally;
  }
  return res;
}

std::shared_ptr<const PrefixView> Engine::build_view(
    const Prefix& prefix, nb::Asn origin,
    const std::vector<char>& workset) const {
  // The specialized loop resolves every import attribute per edge; the
  // relationship (valley-free depends on where the route was learned), IGP
  // and iBGP modes make attributes or fan-out route-dependent.
  if (options_.use_relationship_policies || options_.use_igp_cost ||
      options_.use_ibgp_mesh) {
    return nullptr;
  }
  const std::shared_ptr<const SimContext> ctx_ptr = context();
  const SimContext& ctx = *ctx_ptr;
  const std::size_t n = model_->num_routers();
  RD_CHECK(workset.size() == n, "Engine::build_view: workset size mismatch");

  auto view = std::make_shared<PrefixView>();
  view->epoch = model_->generation();
  view->prefix = prefix;
  view->origin = origin;
  view->compact_of.assign(n, PrefixView::kNoCompact);
  for (Model::Dense r = 0; r < n; ++r) {
    if (workset[r] == 0) continue;
    view->compact_of[r] = static_cast<std::uint32_t>(view->members.size());
    view->members.push_back(r);
  }
  view->identity = view->members.size() == n;
  for (const Model::Dense r : model_->routers_of(origin)) {
    RD_CHECK(view->compact_of[r] != PrefixView::kNoCompact,
             "Engine::build_view: working set excludes an origin router");
  }

  const PrefixPolicy* policy = model_->find_policy(prefix);
  const std::size_t m = view->members.size();
  view->member_asn.resize(m);
  view->edge_offset.resize(m + 1, 0);
  view->phantom.assign(m, 0);

  // Receiver-side MED preference, hoisted per member: the per-prefix
  // ranking override if present, else the router's default ranking --
  // exactly how propagate_into resolves MED in agnostic mode, but paying
  // at most two hash probes per MEMBER instead of per edge.
  std::vector<nb::Asn> med_pref(m, nb::kInvalidAsn);
  const bool has_rankings = policy != nullptr && !policy->rankings.empty();
  for (std::size_t c = 0; c < m; ++c) {
    const Model::Dense r = view->members[c];
    view->member_asn[c] = ctx.asn_of[r];
    if (has_rankings) {
      if (auto it = policy->rankings.find(ctx.ids[r]);
          it != policy->rankings.end()) {
        med_pref[c] = it->second.preferred_neighbor;
        continue;
      }
    }
    med_pref[c] = model_->default_ranking(r);
  }

  // lp_overrides are ground-truth-only (refinement never creates them), so
  // the fitted-model sweep skips the per-edge probe entirely.
  const bool has_lp = policy != nullptr && !policy->lp_overrides.empty();

  for (std::size_t c = 0; c < m; ++c) {
    const Model::Dense r = view->members[c];
    view->edge_offset[c] = static_cast<std::uint32_t>(view->edges.size());
    const nb::Asn from_as = view->member_asn[c];
    for (const Model::Dense peer : ctx.peers(r)) {
      const std::uint32_t to_compact = view->compact_of[peer];
      if (to_compact == PrefixView::kNoCompact) {
        ++view->phantom[c];
        continue;
      }
      PrefixView::Edge edge;
      edge.to = to_compact;
      if (has_lp) {
        const nb::RouterId to_id = nb::RouterId::from_value(ctx.ids[peer]);
        if (auto it =
                policy->lp_overrides.find(topo::router_asn_key(to_id, from_as));
            it != policy->lp_overrides.end()) {
          edge.local_pref = it->second;
        }
      }
      if (med_pref[to_compact] == from_as) edge.med = topo::kPreferredMed;
      view->edges.push_back(edge);
    }
  }
  view->edge_offset[m] = static_cast<std::uint32_t>(view->edges.size());

  // Export filters, scattered from the policy map instead of probed per
  // edge: a prefix carries far fewer filters than the model has directed
  // edges, so F decode-and-place passes beat E session-key hash lookups.
  // Filters on sessions that no longer exist (or cross out of the working
  // set) find no edge to annotate -- the per-edge probe never saw them
  // either.
  if (policy != nullptr) {
    for (const auto& [key, filter] : policy->filters) {
      const nb::RouterId from_id =
          nb::RouterId::from_value(static_cast<std::uint32_t>(key >> 32));
      const nb::RouterId to_id =
          nb::RouterId::from_value(static_cast<std::uint32_t>(key));
      if (!model_->has_router(from_id) || !model_->has_router(to_id)) continue;
      const std::uint32_t from_c = view->compact_of[model_->dense(from_id)];
      const std::uint32_t to_c = view->compact_of[model_->dense(to_id)];
      if (from_c == PrefixView::kNoCompact || to_c == PrefixView::kNoCompact)
        continue;
      for (std::uint32_t e = view->edge_offset[from_c];
           e < view->edge_offset[from_c + 1]; ++e) {
        if (view->edges[e].to == to_c) {
          view->edges[e].deny_below_len = filter.deny_below_len;
          break;
        }
      }
    }
  }
  return view;
}

PrefixSimResult Engine::run_compacted(std::shared_ptr<const PrefixView> view,
                                      SimCounters* counters) const {
  const PrefixView& v = *view;
  RD_CHECK(v.epoch == model_->generation(),
           "Engine::run_compacted: view is stale (model mutated)");
  SimCounters tally;
  PrefixSimResult res;
  res.prefix = v.prefix;
  res.origin = v.origin;
  const std::size_t m = v.members.size();
  res.routers.resize(m);
  res.view = std::move(view);

  const std::shared_ptr<const SimContext> ctx_ptr = context();
  const std::span<const std::uint32_t> ids(ctx_ptr->ids);

  // Same divergence-guard threshold as run(): the cap is a property of the
  // full model, not of the working set.
  const std::uint64_t message_cap =
      options_.message_cap_factor *
      std::max<std::uint64_t>(model_->num_sessions(), 1);
  res.message_cap = message_cap;

  std::deque<std::uint32_t> queue;  // compact indices
  std::vector<char> queued(m, 0);
  auto enqueue = [&](std::uint32_t c) {
    if (!queued[c]) {
      queued[c] = 1;
      queue.push_back(c);
    }
  };

  // Same sender -> slot index as run(), keyed by compact receiver but by
  // FULL dense sender (Route::sender stays dense so decision tie-breaks and
  // every consumer read identical ids).  The indexing choice mirrors run()'s
  // full fan-in threshold (in-set edges plus phantom peers), and is
  // behaviorally neutral either way.
  constexpr std::size_t kIndexedFanIn = 32;
  std::vector<char> indexed(m, 0);
  bool any_indexed = false;
  for (std::size_t c = 0; c < m; ++c) {
    const std::size_t fan_in =
        (v.edge_offset[c + 1] - v.edge_offset[c]) + v.phantom[c];
    if (fan_in >= kIndexedFanIn) {
      indexed[c] = 1;
      any_indexed = true;
    }
  }
  std::vector<std::unordered_map<std::uint32_t, std::uint32_t>> slots(
      any_indexed ? m : 0);

  auto find_slot = [&](std::uint32_t c, const RouterState& state,
                       Model::Dense sender) -> int {
    if (indexed[c]) {
      const auto& map = slots[c];
      auto it = map.find(sender);
      return it == map.end() ? -1 : static_cast<int>(it->second);
    }
    for (std::size_t i = 0; i < state.rib_in.size(); ++i) {
      if (state.rib_in[i].sender == sender) return static_cast<int>(i);
    }
    return -1;
  };
  auto push_entry = [&](std::uint32_t c, RouterState& state,
                        const Route& route) {
    ++tally.rib_inserts;
    if (indexed[c]) {
      slots[c][route.sender] =
          static_cast<std::uint32_t>(state.rib_in.size());
    }
    state.rib_in.push_back(route);
  };
  auto erase_entry = [&](std::uint32_t c, RouterState& state, int slot) {
    ++tally.withdrawals;
    const Model::Dense sender =
        state.rib_in[static_cast<std::size_t>(slot)].sender;
    state.rib_in.erase(state.rib_in.begin() + slot);
    if (indexed[c]) {
      auto& map = slots[c];
      map.erase(sender);
      for (auto& [key, value] : map) {
        if (value > static_cast<std::uint32_t>(slot)) --value;
      }
    }
  };

  for (const Model::Dense r : model_->routers_of(res.origin)) {
    const std::uint32_t c = v.compact_of[r];
    Route self;
    self.sender = r;
    self.med = 0;
    push_entry(c, res.routers[c], self);
    res.routers[c].best = 0;
    res.routers[c].best_external = 0;
    enqueue(c);
  }

  struct Selection {
    std::int64_t best_sender = -1;
    std::int64_t external_sender = -1;
  };
  auto snapshot = [](const RouterState& state) {
    Selection s;
    if (const Route* b = state.best_route()) s.best_sender = b->sender;
    if (const Route* e = state.external_route()) s.external_sender = e->sender;
    return s;
  };
  // Agnostic mode: best_external always tracks best (no iBGP entries).
  auto reselect = [&](RouterState& state, const Selection& old,
                      Model::Dense touched, bool touched_path_changed) {
    state.best = select_best(state.rib_in, ids);
    state.best_external = state.best;
    auto differs = [&](std::int64_t old_sender, const Route* now) {
      const std::int64_t now_sender =
          now == nullptr ? -1 : static_cast<std::int64_t>(now->sender);
      if (now_sender != old_sender) return true;
      return now_sender == static_cast<std::int64_t>(touched) &&
             touched_path_changed;
    };
    const bool changed = differs(old.best_sender, state.best_route()) ||
                         differs(old.external_sender, state.external_route());
    tally.selection_changes += changed ? 1 : 0;
    return changed;
  };

  Route scratch;

  while (!queue.empty()) {
    if (res.messages > message_cap) {
      res.converged = false;
      break;
    }
    const std::uint32_t c = queue.front();
    queue.pop_front();
    queued[c] = 0;
    ++tally.activations;
    const Model::Dense r = v.members[c];
    const nb::Asn from_as = v.member_asn[c];
    const Route* best = res.routers[c].best_route();

    // Out-of-set peers: the full run visits them, charges one message each,
    // and provably changes nothing (the import always fails and their empty
    // RIB-In has nothing to withdraw).  Only the message charge remains.
    res.messages += v.phantom[c];

    const std::uint32_t edges_end = v.edge_offset[c + 1];
    for (std::uint32_t e = v.edge_offset[c]; e < edges_end; ++e) {
      const PrefixView::Edge& edge = v.edges[e];
      ++res.messages;

      // Specialized propagate_into (agnostic mode): AS-loop check, filter
      // threshold, then the pre-resolved import attributes.
      bool has_incoming = false;
      if (best != nullptr) {
        const nb::Asn to_as = v.member_asn[edge.to];
        if (to_as != from_as && !path_contains(best->path, to_as)) {
          const std::size_t arriving_len = best->path.size() + 1;
          if (arriving_len >= edge.deny_below_len) {
            scratch.sender = r;
            scratch.ibgp = false;
            scratch.local_pref = edge.local_pref;
            scratch.med = edge.med;
            scratch.igp_cost = 0;
            scratch.path.clear();
            scratch.path.reserve(arriving_len);
            scratch.path.push_back(from_as);
            scratch.path.insert(scratch.path.end(), best->path.begin(),
                                best->path.end());
            has_incoming = true;
          }
        }
      }

      RouterState& state = res.routers[edge.to];
      const int slot = find_slot(edge.to, state, r);

      if (!has_incoming) {
        if (slot < 0) continue;
        const Selection old = snapshot(state);
        erase_entry(edge.to, state, slot);
        if (reselect(state, old, r, false)) enqueue(edge.to);
        continue;
      }
      if (slot >= 0) {
        Route& existing = state.rib_in[static_cast<std::size_t>(slot)];
        if (existing.path == scratch.path &&
            existing.local_pref == scratch.local_pref &&
            existing.med == scratch.med &&
            existing.igp_cost == scratch.igp_cost) {
          continue;
        }
        const Selection old = snapshot(state);
        const bool path_changed = existing.path != scratch.path;
        ++tally.rib_replacements;
        existing.sender = scratch.sender;
        existing.local_pref = scratch.local_pref;
        existing.med = scratch.med;
        existing.igp_cost = scratch.igp_cost;
        existing.ibgp = false;
        if (path_changed) existing.path.swap(scratch.path);
        if (reselect(state, old, r, path_changed)) enqueue(edge.to);
      } else {
        const Selection old = snapshot(state);
        push_entry(edge.to, state, scratch);
        if (reselect(state, old, r, false)) enqueue(edge.to);
      }
    }
  }
  res.activations = tally.activations;
  if (counters != nullptr) {
    tally.messages = res.messages;
    *counters = tally;
  }
  return res;
}

}  // namespace bgp
