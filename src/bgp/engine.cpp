#include "bgp/engine.hpp"

#include <algorithm>

#include "bgp/sim_memory.hpp"
#include "netbase/check.hpp"

namespace bgp {

using topo::NeighborClass;
using topo::PrefixPolicy;

const RouterState& PrefixSimResult::state(Model::Dense r) const {
  // Non-members of a compacted run hold no storage; a full run provably
  // leaves them with exactly this default-empty state (every import into
  // them fails), so the shared empty state IS their simulated outcome.
  static const RouterState kEmpty;
  if (view == nullptr || view->identity) return routers[r];
  const std::uint32_t c = view->compact_of[r];
  return c == PrefixView::kNoCompact ? kEmpty : routers[c];
}

std::vector<std::uint32_t> dense_ids(const Model& model) {
  std::vector<std::uint32_t> ids(model.num_routers());
  for (Model::Dense r = 0; r < ids.size(); ++r)
    ids[r] = model.router_id(r).value();
  return ids;
}

Engine::Engine(const Model& model, EngineOptions options)
    : model_(&model), options_(options) {}

std::shared_ptr<const SimContext> Engine::context() const {
  std::lock_guard lock(context_mutex_);
  if (context_ == nullptr || context_->epoch != model_->generation()) {
    auto ctx = std::make_shared<SimContext>();
    ctx->epoch = model_->generation();
    const std::size_t n = model_->num_routers();
    ctx->ids.resize(n);
    ctx->asn_of.resize(n);
    ctx->peer_offset.resize(n + 1, 0);
    std::size_t total = 0;
    for (Model::Dense r = 0; r < n; ++r) {
      const nb::RouterId id = model_->router_id(r);
      ctx->ids[r] = id.value();
      ctx->asn_of[r] = id.asn();
      ctx->peer_offset[r] = static_cast<std::uint32_t>(total);
      total += model_->peers(r).size();
    }
    ctx->peer_offset[n] = static_cast<std::uint32_t>(total);
    ctx->peer_flat.reserve(total);
    for (Model::Dense r = 0; r < n; ++r) {
      const auto& peers = model_->peers(r);
      ctx->peer_flat.insert(ctx->peer_flat.end(), peers.begin(), peers.end());
    }
    context_ = std::move(ctx);
  }
  return context_;
}

bool Engine::propagate_into(const PrefixPolicy* policy, Model::Dense from,
                            Model::Dense to, std::span<const Asn> best_path,
                            const SimContext& ctx, Route& out) const {
  const nb::Asn from_as = ctx.asn_of[from];
  const nb::Asn to_as = ctx.asn_of[to];
  // Receiver-side AS-loop detection on the route as it would arrive
  // ([from_as, best_path...]); checked before building the path.
  if (to_as == from_as || path_contains(best_path, to_as)) return false;

  if (options_.use_relationship_policies) {
    // Valley-free export: routes learned from a peer or provider are only
    // exported to customers.  Unknown classes are permissive on both sides
    // (the paper's agnostic stance: absent information must not disconnect).
    const NeighborClass to_class = model_->neighbor_class(from_as, to_as);
    if (to_class == NeighborClass::kPeer ||
        to_class == NeighborClass::kProvider) {
      bool from_customer_or_self = best_path.empty();
      if (!from_customer_or_self) {
        const Asn learned_from = best_path.front();
        const NeighborClass learned_class =
            model_->neighbor_class(from_as, learned_from);
        from_customer_or_self = learned_class == NeighborClass::kCustomer ||
                                learned_class == NeighborClass::kUnknown;
      }
      // Per-prefix leak: an export-allow exempts this session.
      if (!from_customer_or_self &&
          !(policy != nullptr &&
            policy->export_allows.count(
                topo::session_key(nb::RouterId::from_value(ctx.ids[from]),
                                  nb::RouterId::from_value(ctx.ids[to]))) >
                0)) {
        return false;
      }
    }
  }
  const std::size_t arriving_len = best_path.size() + 1;
  if (const topo::ExportFilter* filter =
          model_->find_export_filter(from, to, policy);
      filter != nullptr && filter->blocks(arriving_len)) {
    return false;
  }

  out.sender = from;
  out.ibgp = false;
  out.local_pref = kDefaultLocalPref;
  if (options_.use_relationship_policies) {
    switch (model_->neighbor_class(to_as, from_as)) {
      case NeighborClass::kCustomer:
        out.local_pref = options_.lp_customer;
        break;
      case NeighborClass::kPeer:
        out.local_pref = options_.lp_peer;
        break;
      case NeighborClass::kProvider:
        out.local_pref = options_.lp_provider;
        break;
      case NeighborClass::kUnknown:
        out.local_pref = options_.lp_unknown;
        break;
    }
  }
  out.med = topo::kDefaultMed;
  bool has_prefix_ranking = false;
  if (policy != nullptr) {
    const nb::RouterId to_id = nb::RouterId::from_value(ctx.ids[to]);
    if (auto it = policy->lp_overrides.find(topo::router_asn_key(to_id, from_as));
        it != policy->lp_overrides.end()) {
      out.local_pref = it->second;
    }
    if (auto it = policy->rankings.find(to_id.value());
        it != policy->rankings.end()) {
      has_prefix_ranking = true;
      if (it->second.preferred_neighbor == from_as)
        out.med = topo::kPreferredMed;
    }
  }
  // Prefix-independent ranking applies only when no per-prefix rule exists
  // for this router (generalized models; see core/generalize).
  if (!has_prefix_ranking && model_->default_ranking(to) == from_as) {
    out.med = topo::kPreferredMed;
  }
  out.igp_cost = options_.use_igp_cost ? model_->igp_cost(to, from) : 0;

  out.path.clear();
  out.path.reserve(arriving_len);
  out.path.push_back(from_as);
  out.path.insert(out.path.end(), best_path.begin(), best_path.end());
  return true;
}

std::optional<Route> Engine::propagate(const PrefixPolicy* policy,
                                       Model::Dense from, Model::Dense to,
                                       const Route& best) const {
  const std::shared_ptr<const SimContext> ctx = context();
  Route out;
  if (!propagate_into(policy, from, to, best.path, *ctx, out)) {
    return std::nullopt;
  }
  return out;
}

namespace {

// Pre-mutation snapshot of a router's selections: only the announcing
// router of each selection.  A message touches exactly one RIB-In entry
// (its sender's), so "did the selection change in a way that requires
// re-advertising" reduces to comparing selected senders, plus one flag for
// the touched entry's path -- no Route (and no AS-path vector) is copied.
struct Selection {
  std::int64_t best_sender = -1;  // -1: nothing selected
  std::int64_t external_sender = -1;
};

Selection snapshot(const SimMemory& mem, std::uint32_t slot) {
  Selection s;
  const std::uint32_t base = mem.begin_of(slot);
  if (const int b = mem.best(slot); b >= 0) {
    s.best_sender = mem.sender_at(base + static_cast<std::uint32_t>(b));
  }
  if (const int e = mem.best_external(slot); e >= 0) {
    s.external_sender = mem.sender_at(base + static_cast<std::uint32_t>(e));
  }
  return s;
}

/// select_best over a SoA RIB region: same ascending scan, same strictly-
/// less replacement rule, via the same compare_views the Route overload
/// delegates to -- identical winner for identical contents.
int select_best_region(const SimMemory& mem, std::uint32_t base,
                       std::uint32_t live,
                       std::span<const std::uint32_t> ids) {
  int best = -1;
  for (std::uint32_t i = 0; i < live; ++i) {
    if (best < 0) {
      best = static_cast<int>(i);
      continue;
    }
    const Comparison cmp =
        compare_views(mem.view_at(base + i),
                      mem.view_at(base + static_cast<std::uint32_t>(best)), ids);
    if (cmp.order < 0) best = static_cast<int>(i);
  }
  return best;
}

/// Recomputes a slot's best (and external best); returns true if either
/// selection changed from `old` in a way that requires re-advertising.
/// `touched` is the sender whose entry this message modified and
/// `touched_path_changed` whether that entry's AS-path changed: a selection
/// that stays on an untouched sender is unchanged by construction (one
/// entry per sender, and only the touched one was written).
bool reselect(SimMemory& mem, std::uint32_t slot, bool ibgp_mesh,
              std::span<const std::uint32_t> ids, const Selection& old,
              Model::Dense touched, bool touched_path_changed,
              SimCounters& tally) {
  const std::uint32_t base = mem.begin_of(slot);
  const std::uint32_t live = mem.live(slot);
  const int best = select_best_region(mem, base, live, ids);
  mem.set_best(slot, best);
  int external = -1;
  if (ibgp_mesh) {
    for (std::uint32_t i = 0; i < live; ++i) {
      if (mem.ibgp_at(base + i)) continue;
      if (external < 0 ||
          compare_views(mem.view_at(base + i),
                        mem.view_at(base + static_cast<std::uint32_t>(external)),
                        ids)
                  .order < 0) {
        external = static_cast<int>(i);
      }
    }
  } else {
    external = best;
  }
  mem.set_best_external(slot, external);

  const auto differs = [&](std::int64_t old_sender, int now_rel) {
    const std::int64_t now_sender =
        now_rel < 0 ? -1
                    : static_cast<std::int64_t>(
                          mem.sender_at(base + static_cast<std::uint32_t>(now_rel)));
    if (now_sender != old_sender) return true;
    return now_sender == static_cast<std::int64_t>(touched) &&
           touched_path_changed;
  };
  const bool changed =
      differs(old.best_sender, best) || differs(old.external_sender, external);
  tally.selection_changes += changed ? 1 : 0;
  return changed;
}

/// Materializes the arena's final state into the public RouterState form.
/// Reuses `routers`' existing rib_in and path capacities, so a sweep that
/// recycles its PrefixSimResult objects allocates nothing at steady state.
void export_state(const SimMemory& mem, std::size_t slots,
                  std::vector<RouterState>& routers) {
  routers.resize(slots);
  for (std::uint32_t s = 0; s < slots; ++s) {
    RouterState& state = routers[s];
    const std::uint32_t base = mem.begin_of(s);
    const std::uint32_t live = mem.live(s);
    state.rib_in.resize(live);
    for (std::uint32_t i = 0; i < live; ++i) {
      const std::uint32_t r = base + i;
      Route& route = state.rib_in[i];
      const RouteView v = mem.view_at(r);
      route.sender = v.sender;
      route.local_pref = v.local_pref;
      route.med = v.med;
      route.igp_cost = v.igp_cost;
      route.ibgp = v.ibgp;
      const std::span<const Asn> path = mem.path_at(r);
      route.path.assign(path.begin(), path.end());
    }
    state.best = mem.best(s);
    state.best_external = mem.best_external(s);
  }
}

}  // namespace

PrefixSimResult Engine::run(const Prefix& prefix, nb::Asn origin,
                            SimCounters* counters,
                            std::vector<char>* activated) const {
  PrefixSimResult res;
  SimMemory memory;
  run_into(prefix, origin, memory, counters, activated, res);
  return res;
}

void Engine::run_into(const Prefix& prefix, nb::Asn origin, SimMemory& mem,
                      SimCounters* counters, std::vector<char>* activated,
                      PrefixSimResult& res) const {
  // Instrumentation accumulates in locals unconditionally (register
  // increments, negligible next to message processing) and is stored
  // through `counters` only at the end, keeping the uninstrumented path
  // byte- and perf-identical.
  SimCounters tally;
  res.prefix = prefix;
  res.origin = origin;
  res.view = nullptr;
  res.converged = true;
  res.messages = 0;
  const std::size_t n = model_->num_routers();
  if (activated != nullptr) activated->assign(n, 0);

  const PrefixPolicy* policy = model_->find_policy(prefix);
  const std::shared_ptr<const SimContext> ctx_ptr = context();
  const SimContext& ctx = *ctx_ptr;
  const std::span<const std::uint32_t> ids(ctx.ids);

  const std::uint64_t message_cap =
      options_.message_cap_factor *
      std::max<std::uint64_t>(model_->num_sessions(), 1);
  res.message_cap = message_cap;

  // Region capacities: sessions are symmetric (the linter enforces M101),
  // so a router's possible senders are exactly its peers, plus its AS-mates
  // in ibgp-mesh mode; the +1 for self-origination is SimMemory's.
  mem.begin(n);
  for (Model::Dense r = 0; r < n; ++r) {
    std::size_t fan_in = ctx.peers(r).size();
    if (options_.use_ibgp_mesh)
      fan_in += model_->routers_of(ctx.asn_of[r]).size() - 1;
    mem.set_fan_in(r, static_cast<std::uint32_t>(fan_in));
  }
  mem.finish_setup();

  // Origination: each quasi-router of the origin AS injects a route with an
  // empty path (sender = self, MED 0 so an origin router never prefers a
  // learned alternative -- vacuous anyway since the empty path wins on
  // length).
  for (Model::Dense r : model_->routers_of(origin)) {
    ++tally.rib_inserts;
    mem.push(r, SimMemory::Attrs{r, kDefaultLocalPref, 0, 0, false}, {});
    mem.set_best(r, 0);
    mem.set_best_external(r, 0);
    mem.enqueue(r);
  }

  const bool ibgp_mesh = options_.use_ibgp_mesh;
  std::uint64_t messages = 0;

  // Reused across every message; its path buffer's capacity persists, so
  // steady-state propagation allocates nothing.
  Route scratch;

  while (!mem.queue_empty()) {
    if (messages > message_cap) {
      res.converged = false;
      break;
    }
    const Model::Dense r = mem.pop_front();
    ++tally.activations;
    if (activated != nullptr) (*activated)[r] = 1;
    const std::uint32_t r_base = mem.begin_of(r);
    // r's own region is never written during r's activation (every message
    // targets a mate or peer), so these relative indices stay valid; path
    // SPANS are re-derived at each use because pushes can move the arena.
    const int r_best = mem.best(r);

    // iBGP mesh: push this router's best external route to its AS-mates.
    if (ibgp_mesh) {
      const int r_external = mem.best_external(r);
      for (Model::Dense mate : model_->routers_of(ctx.asn_of[r])) {
        if (mate == r) continue;
        ++messages;
        const int slot = mem.find(mate, r);
        if (r_external < 0) {
          if (slot < 0) continue;
          const Selection old = snapshot(mem, mate);
          ++tally.withdrawals;
          mem.erase(mate, slot);
          if (reselect(mem, mate, ibgp_mesh, ids, old, r, false, tally))
            mem.enqueue(mate);
          continue;
        }
        const std::uint32_t external =
            r_base + static_cast<std::uint32_t>(r_external);
        const RouteView ext = mem.view_at(external);
        const std::uint32_t igp =
            options_.use_igp_cost ? model_->igp_cost(mate, r) : 0;
        if (slot >= 0) {
          const std::uint32_t row =
              mem.row(mate, static_cast<std::uint32_t>(slot));
          const RouteView existing = mem.view_at(row);
          const bool same_path = mem.paths_equal(row, external);
          if (same_path && existing.local_pref == ext.local_pref &&
              existing.med == ext.med && existing.igp_cost == igp &&
              existing.ibgp) {
            continue;
          }
          const Selection old = snapshot(mem, mate);
          ++tally.rib_replacements;
          mem.set_attrs(row,
                        SimMemory::Attrs{r, ext.local_pref, ext.med, igp, true});
          if (!same_path) mem.assign_path_from(row, external);
          if (reselect(mem, mate, ibgp_mesh, ids, old, r, !same_path, tally))
            mem.enqueue(mate);
        } else {
          const Selection old = snapshot(mem, mate);
          ++tally.rib_inserts;
          mem.push_from(mate,
                        SimMemory::Attrs{r, ext.local_pref, ext.med, igp, true},
                        external);
          if (reselect(mem, mate, ibgp_mesh, ids, old, r, false, tally))
            mem.enqueue(mate);
        }
      }
    }

    for (const Model::Dense peer : ctx.peers(r)) {
      ++messages;
      const bool has_incoming =
          r_best >= 0 &&
          propagate_into(policy, r, peer,
                         mem.path_at(r_base + static_cast<std::uint32_t>(r_best)),
                         ctx, scratch);

      const int slot = mem.find(peer, r);

      if (!has_incoming) {
        if (slot < 0) continue;  // nothing to withdraw
        const Selection old = snapshot(mem, peer);
        ++tally.withdrawals;
        mem.erase(peer, slot);
        if (reselect(mem, peer, ibgp_mesh, ids, old, r, false, tally))
          mem.enqueue(peer);
        continue;
      }
      if (slot >= 0) {
        const std::uint32_t row = mem.row(peer, static_cast<std::uint32_t>(slot));
        const RouteView existing = mem.view_at(row);
        const bool same_path = mem.path_equals(row, scratch.path);
        if (same_path && existing.local_pref == scratch.local_pref &&
            existing.med == scratch.med &&
            existing.igp_cost == scratch.igp_cost) {
          continue;  // unchanged advertisement
        }
        const Selection old = snapshot(mem, peer);
        ++tally.rib_replacements;
        mem.set_attrs(row, SimMemory::Attrs{scratch.sender, scratch.local_pref,
                                            scratch.med, scratch.igp_cost,
                                            false});
        if (!same_path) mem.set_path(row, scratch.path);
        if (reselect(mem, peer, ibgp_mesh, ids, old, r, !same_path, tally))
          mem.enqueue(peer);
      } else {
        const Selection old = snapshot(mem, peer);
        ++tally.rib_inserts;
        mem.push(peer,
                 SimMemory::Attrs{scratch.sender, scratch.local_pref,
                                  scratch.med, scratch.igp_cost, false},
                 scratch.path);
        if (reselect(mem, peer, ibgp_mesh, ids, old, r, false, tally))
          mem.enqueue(peer);
      }
    }
  }
  res.messages = messages;
  res.activations = tally.activations;
  export_state(mem, n, res.routers);
  if (counters != nullptr) {
    tally.messages = messages;
    *counters = tally;
  }
}

std::shared_ptr<const PrefixView> Engine::build_view(
    const Prefix& prefix, nb::Asn origin,
    const std::vector<char>& workset) const {
  // The specialized loop resolves every import attribute per edge; the
  // relationship (valley-free depends on where the route was learned), IGP
  // and iBGP modes make attributes or fan-out route-dependent.
  if (options_.use_relationship_policies || options_.use_igp_cost ||
      options_.use_ibgp_mesh) {
    return nullptr;
  }
  const std::shared_ptr<const SimContext> ctx_ptr = context();
  const SimContext& ctx = *ctx_ptr;
  const std::size_t n = model_->num_routers();
  RD_CHECK(workset.size() == n, "Engine::build_view: workset size mismatch");

  auto view = std::make_shared<PrefixView>();
  view->epoch = model_->generation();
  view->prefix = prefix;
  view->origin = origin;
  view->compact_of.assign(n, PrefixView::kNoCompact);
  for (Model::Dense r = 0; r < n; ++r) {
    if (workset[r] == 0) continue;
    view->compact_of[r] = static_cast<std::uint32_t>(view->members.size());
    view->members.push_back(r);
  }
  view->identity = view->members.size() == n;
  for (const Model::Dense r : model_->routers_of(origin)) {
    RD_CHECK(view->compact_of[r] != PrefixView::kNoCompact,
             "Engine::build_view: working set excludes an origin router");
  }

  const PrefixPolicy* policy = model_->find_policy(prefix);
  const std::size_t m = view->members.size();
  view->member_asn.resize(m);
  view->edge_offset.resize(m + 1, 0);
  view->phantom.assign(m, 0);

  // Receiver-side MED preference, hoisted per member: the per-prefix
  // ranking override if present, else the router's default ranking --
  // exactly how propagate_into resolves MED in agnostic mode, but paying
  // at most two hash probes per MEMBER instead of per edge.
  std::vector<nb::Asn> med_pref(m, nb::kInvalidAsn);
  const bool has_rankings = policy != nullptr && !policy->rankings.empty();
  for (std::size_t c = 0; c < m; ++c) {
    const Model::Dense r = view->members[c];
    view->member_asn[c] = ctx.asn_of[r];
    if (has_rankings) {
      if (auto it = policy->rankings.find(ctx.ids[r]);
          it != policy->rankings.end()) {
        med_pref[c] = it->second.preferred_neighbor;
        continue;
      }
    }
    med_pref[c] = model_->default_ranking(r);
  }

  // lp_overrides are ground-truth-only (refinement never creates them), so
  // the fitted-model sweep skips the per-edge probe entirely.
  const bool has_lp = policy != nullptr && !policy->lp_overrides.empty();

  for (std::size_t c = 0; c < m; ++c) {
    const Model::Dense r = view->members[c];
    view->edge_offset[c] = static_cast<std::uint32_t>(view->edges.size());
    const nb::Asn from_as = view->member_asn[c];
    for (const Model::Dense peer : ctx.peers(r)) {
      const std::uint32_t to_compact = view->compact_of[peer];
      if (to_compact == PrefixView::kNoCompact) {
        ++view->phantom[c];
        continue;
      }
      PrefixView::Edge edge;
      edge.to = to_compact;
      if (has_lp) {
        const nb::RouterId to_id = nb::RouterId::from_value(ctx.ids[peer]);
        if (auto it =
                policy->lp_overrides.find(topo::router_asn_key(to_id, from_as));
            it != policy->lp_overrides.end()) {
          edge.local_pref = it->second;
        }
      }
      if (med_pref[to_compact] == from_as) edge.med = topo::kPreferredMed;
      view->edges.push_back(edge);
    }
  }
  view->edge_offset[m] = static_cast<std::uint32_t>(view->edges.size());

  // Export filters, scattered from the policy map instead of probed per
  // edge: a prefix carries far fewer filters than the model has directed
  // edges, so F decode-and-place passes beat E session-key hash lookups.
  // Filters on sessions that no longer exist (or cross out of the working
  // set) find no edge to annotate -- the per-edge probe never saw them
  // either.
  if (policy != nullptr) {
    for (const auto& [key, filter] : policy->filters) {
      const nb::RouterId from_id =
          nb::RouterId::from_value(static_cast<std::uint32_t>(key >> 32));
      const nb::RouterId to_id =
          nb::RouterId::from_value(static_cast<std::uint32_t>(key));
      if (!model_->has_router(from_id) || !model_->has_router(to_id)) continue;
      const std::uint32_t from_c = view->compact_of[model_->dense(from_id)];
      const std::uint32_t to_c = view->compact_of[model_->dense(to_id)];
      if (from_c == PrefixView::kNoCompact || to_c == PrefixView::kNoCompact)
        continue;
      for (std::uint32_t e = view->edge_offset[from_c];
           e < view->edge_offset[from_c + 1]; ++e) {
        if (view->edges[e].to == to_c) {
          view->edges[e].deny_below_len = filter.deny_below_len;
          break;
        }
      }
    }
  }
  return view;
}

PrefixSimResult Engine::run_compacted(std::shared_ptr<const PrefixView> view,
                                      SimCounters* counters) const {
  PrefixSimResult res;
  SimMemory memory;
  run_compacted_into(std::move(view), memory, counters, res);
  return res;
}

void Engine::run_compacted_into(std::shared_ptr<const PrefixView> view,
                                SimMemory& mem, SimCounters* counters,
                                PrefixSimResult& res) const {
  const PrefixView& v = *view;
  RD_CHECK(v.epoch == model_->generation(),
           "Engine::run_compacted: view is stale (model mutated)");
  SimCounters tally;
  res.prefix = v.prefix;
  res.origin = v.origin;
  res.converged = true;
  res.messages = 0;
  const std::size_t m = v.members.size();
  res.view = std::move(view);

  const std::shared_ptr<const SimContext> ctx_ptr = context();
  const std::span<const std::uint32_t> ids(ctx_ptr->ids);

  // Same divergence-guard threshold as run(): the cap is a property of the
  // full model, not of the working set.
  const std::uint64_t message_cap =
      options_.message_cap_factor *
      std::max<std::uint64_t>(model_->num_sessions(), 1);
  res.message_cap = message_cap;

  // Region capacity per member: only in-set edges can install a RIB row,
  // and sessions are symmetric, so a member's in-set in-degree equals its
  // in-set out-degree (the edge list length).  The hash-index heuristic
  // mirrors run()'s FULL fan-in (in-set edges plus phantom peers) -- the
  // choice is behaviorally neutral, but kept identical on principle.
  // Slots are keyed by compact receiver; senders stay FULL dense indices so
  // decision tie-breaks and every consumer read identical ids.
  mem.begin(m);
  for (std::uint32_t c = 0; c < m; ++c) {
    const std::uint32_t in_set = v.edge_offset[c + 1] - v.edge_offset[c];
    mem.set_fan_in(c, in_set, in_set + v.phantom[c]);
  }
  mem.finish_setup();

  for (const Model::Dense r : model_->routers_of(res.origin)) {
    const std::uint32_t c = v.compact_of[r];
    ++tally.rib_inserts;
    mem.push(c, SimMemory::Attrs{r, kDefaultLocalPref, 0, 0, false}, {});
    mem.set_best(c, 0);
    mem.set_best_external(c, 0);
    mem.enqueue(c);
  }

  std::uint64_t messages = 0;
  Route scratch;

  while (!mem.queue_empty()) {
    if (messages > message_cap) {
      res.converged = false;
      break;
    }
    const std::uint32_t c = mem.pop_front();
    ++tally.activations;
    const Model::Dense r = v.members[c];
    const nb::Asn from_as = v.member_asn[c];
    const std::uint32_t c_base = mem.begin_of(c);
    const int c_best = mem.best(c);

    // Out-of-set peers: the full run visits them, charges one message each,
    // and provably changes nothing (the import always fails and their empty
    // RIB-In has nothing to withdraw).  Only the message charge remains.
    messages += v.phantom[c];

    const std::uint32_t edges_end = v.edge_offset[c + 1];
    for (std::uint32_t e = v.edge_offset[c]; e < edges_end; ++e) {
      const PrefixView::Edge& edge = v.edges[e];
      ++messages;

      // Specialized propagate_into (agnostic mode): AS-loop check, filter
      // threshold, then the pre-resolved import attributes.  The best path
      // span is re-derived per edge -- pushes can move the hop arena.
      bool has_incoming = false;
      if (c_best >= 0) {
        const std::span<const Asn> best_path =
            mem.path_at(c_base + static_cast<std::uint32_t>(c_best));
        const nb::Asn to_as = v.member_asn[edge.to];
        if (to_as != from_as && !path_contains(best_path, to_as)) {
          const std::size_t arriving_len = best_path.size() + 1;
          if (arriving_len >= edge.deny_below_len) {
            scratch.sender = r;
            scratch.ibgp = false;
            scratch.local_pref = edge.local_pref;
            scratch.med = edge.med;
            scratch.igp_cost = 0;
            scratch.path.clear();
            scratch.path.reserve(arriving_len);
            scratch.path.push_back(from_as);
            scratch.path.insert(scratch.path.end(), best_path.begin(),
                                best_path.end());
            has_incoming = true;
          }
        }
      }

      const int slot = mem.find(edge.to, r);

      if (!has_incoming) {
        if (slot < 0) continue;
        const Selection old = snapshot(mem, edge.to);
        ++tally.withdrawals;
        mem.erase(edge.to, slot);
        if (reselect(mem, edge.to, false, ids, old, r, false, tally))
          mem.enqueue(edge.to);
        continue;
      }
      if (slot >= 0) {
        const std::uint32_t row =
            mem.row(edge.to, static_cast<std::uint32_t>(slot));
        const RouteView existing = mem.view_at(row);
        const bool same_path = mem.path_equals(row, scratch.path);
        if (same_path && existing.local_pref == scratch.local_pref &&
            existing.med == scratch.med &&
            existing.igp_cost == scratch.igp_cost) {
          continue;
        }
        const Selection old = snapshot(mem, edge.to);
        ++tally.rib_replacements;
        mem.set_attrs(row, SimMemory::Attrs{scratch.sender, scratch.local_pref,
                                            scratch.med, scratch.igp_cost,
                                            false});
        if (!same_path) mem.set_path(row, scratch.path);
        if (reselect(mem, edge.to, false, ids, old, r, !same_path, tally))
          mem.enqueue(edge.to);
      } else {
        const Selection old = snapshot(mem, edge.to);
        ++tally.rib_inserts;
        mem.push(edge.to,
                 SimMemory::Attrs{scratch.sender, scratch.local_pref,
                                  scratch.med, scratch.igp_cost, false},
                 scratch.path);
        if (reselect(mem, edge.to, false, ids, old, r, false, tally))
          mem.enqueue(edge.to);
      }
    }
  }
  res.messages = messages;
  res.activations = tally.activations;
  export_state(mem, m, res.routers);
  if (counters != nullptr) {
    tally.messages = messages;
    *counters = tally;
  }
}

}  // namespace bgp
