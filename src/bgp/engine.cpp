#include "bgp/engine.hpp"

#include <algorithm>
#include <deque>

namespace bgp {

using topo::NeighborClass;
using topo::PrefixPolicy;

std::vector<std::uint32_t> dense_ids(const Model& model) {
  std::vector<std::uint32_t> ids(model.num_routers());
  for (Model::Dense r = 0; r < ids.size(); ++r)
    ids[r] = model.router_id(r).value();
  return ids;
}

Engine::Engine(const Model& model, EngineOptions options)
    : model_(&model), options_(options) {}

std::optional<Route> Engine::export_route(const PrefixPolicy* policy,
                                          Model::Dense from, Model::Dense to,
                                          const Route& best) const {
  const nb::RouterId from_id = model_->router_id(from);
  const nb::RouterId to_id = model_->router_id(to);
  if (options_.use_relationship_policies) {
    // Valley-free export: routes learned from a peer or provider are only
    // exported to customers.  Unknown classes are permissive on both sides
    // (the paper's agnostic stance: absent information must not disconnect).
    const NeighborClass to_class =
        model_->neighbor_class(from_id.asn(), to_id.asn());
    if (to_class == NeighborClass::kPeer ||
        to_class == NeighborClass::kProvider) {
      bool from_customer_or_self = best.originated();
      if (!from_customer_or_self) {
        const Asn learned_from = best.path.front();
        const NeighborClass learned_class =
            model_->neighbor_class(from_id.asn(), learned_from);
        from_customer_or_self = learned_class == NeighborClass::kCustomer ||
                                learned_class == NeighborClass::kUnknown;
      }
      // Per-prefix leak: an export-allow exempts this session.
      if (!from_customer_or_self &&
          !(policy != nullptr &&
            policy->export_allows.count(topo::session_key(from_id, to_id)) >
                0)) {
        return std::nullopt;
      }
    }
  }
  const std::size_t arriving_len = best.path.size() + 1;
  if (const topo::ExportFilter* filter =
          model_->find_export_filter(from, to, policy);
      filter != nullptr && filter->blocks(arriving_len)) {
    return std::nullopt;
  }
  Route exported;
  exported.sender = from;
  exported.path.reserve(arriving_len);
  exported.path.push_back(from_id.asn());
  exported.path.insert(exported.path.end(), best.path.begin(),
                       best.path.end());
  return exported;
}

std::optional<Route> Engine::import_route(const PrefixPolicy* policy,
                                          Model::Dense receiver,
                                          Model::Dense sender,
                                          const Route& exported) const {
  const nb::RouterId receiver_id = model_->router_id(receiver);
  const nb::RouterId sender_id = model_->router_id(sender);
  if (path_contains(exported.path, receiver_id.asn())) return std::nullopt;

  Route imported = exported;
  imported.sender = sender;
  imported.local_pref = kDefaultLocalPref;
  if (options_.use_relationship_policies) {
    switch (model_->neighbor_class(receiver_id.asn(), sender_id.asn())) {
      case NeighborClass::kCustomer:
        imported.local_pref = options_.lp_customer;
        break;
      case NeighborClass::kPeer:
        imported.local_pref = options_.lp_peer;
        break;
      case NeighborClass::kProvider:
        imported.local_pref = options_.lp_provider;
        break;
      case NeighborClass::kUnknown:
        imported.local_pref = options_.lp_unknown;
        break;
    }
  }
  imported.med = topo::kDefaultMed;
  bool has_prefix_ranking = false;
  if (policy != nullptr) {
    if (auto it = policy->lp_overrides.find(
            topo::router_asn_key(receiver_id, sender_id.asn()));
        it != policy->lp_overrides.end()) {
      imported.local_pref = it->second;
    }
    if (auto it = policy->rankings.find(receiver_id.value());
        it != policy->rankings.end()) {
      has_prefix_ranking = true;
      if (it->second.preferred_neighbor == sender_id.asn())
        imported.med = topo::kPreferredMed;
    }
  }
  // Prefix-independent ranking applies only when no per-prefix rule exists
  // for this router (generalized models; see core/generalize).
  if (!has_prefix_ranking &&
      model_->default_ranking(receiver) == sender_id.asn()) {
    imported.med = topo::kPreferredMed;
  }
  imported.igp_cost =
      options_.use_igp_cost ? model_->igp_cost(receiver, sender) : 0;
  return imported;
}

std::optional<Route> Engine::propagate(const PrefixPolicy* policy,
                                       Model::Dense from, Model::Dense to,
                                       const Route& best) const {
  std::optional<Route> exported = export_route(policy, from, to, best);
  if (!exported.has_value()) return std::nullopt;
  return import_route(policy, to, from, *exported);
}

PrefixSimResult Engine::run(const Prefix& prefix, nb::Asn origin) const {
  PrefixSimResult res;
  res.prefix = prefix;
  res.origin = origin;
  const std::size_t n = model_->num_routers();
  res.routers.resize(n);

  const PrefixPolicy* policy = model_->find_policy(prefix);
  const std::vector<std::uint32_t> ids = dense_ids(*model_);

  const std::uint64_t message_cap =
      options_.message_cap_factor *
      std::max<std::uint64_t>(model_->num_sessions(), 1);

  std::deque<Model::Dense> queue;
  std::vector<char> queued(n, 0);
  auto enqueue = [&](Model::Dense r) {
    if (!queued[r]) {
      queued[r] = 1;
      queue.push_back(r);
    }
  };

  // Origination: each quasi-router of the origin AS injects a route with an
  // empty path (sender = self, MED 0 so an origin router never prefers a
  // learned alternative -- vacuous anyway since the empty path wins on
  // length).
  for (Model::Dense r : model_->routers_of(origin)) {
    Route self;
    self.sender = r;
    self.med = 0;
    res.routers[r].rib_in.push_back(std::move(self));
    res.routers[r].best = 0;
    res.routers[r].best_external = 0;
    enqueue(r);
  }

  // Pre-mutation snapshot of a router's selections.  Must be taken BEFORE
  // touching rib_in: erasing an entry leaves state.best/best_external
  // pointing at shifted (or destroyed) elements, so reading them afterwards
  // is a use-after-free.
  struct Selection {
    bool had_best = false;
    Route old_best;
    bool had_external = false;
    Route old_external;
  };
  auto snapshot = [](const RouterState& state) {
    Selection s;
    if (const Route* b = state.best_route()) {
      s.had_best = true;
      s.old_best = *b;
    }
    if (const Route* e = state.external_route()) {
      s.had_external = true;
      s.old_external = *e;
    }
    return s;
  };

  // Recomputes a router's best (and external best); returns true if either
  // selection changed from `old` in a way that requires re-advertising.
  auto reselect = [&](RouterState& state, const Selection& old) {
    state.best = select_best(state.rib_in, ids);
    state.best_external = -1;
    if (options_.use_ibgp_mesh) {
      for (std::size_t i = 0; i < state.rib_in.size(); ++i) {
        if (state.rib_in[i].ibgp) continue;
        if (state.best_external < 0 ||
            compare_routes(state.rib_in[i],
                           state.rib_in[static_cast<std::size_t>(
                               state.best_external)],
                           ids)
                    .order < 0) {
          state.best_external = static_cast<int>(i);
        }
      }
    } else {
      state.best_external = state.best;
    }

    auto differs = [](bool had, const Route& old_route, const Route* now) {
      if (had != (now != nullptr)) return true;
      return now != nullptr && (now->sender != old_route.sender ||
                                now->path != old_route.path);
    };
    return differs(old.had_best, old.old_best, state.best_route()) ||
           differs(old.had_external, old.old_external,
                   state.external_route());
  };

  while (!queue.empty()) {
    if (res.messages > message_cap) {
      res.converged = false;
      break;
    }
    const Model::Dense r = queue.front();
    queue.pop_front();
    queued[r] = 0;
    const Route* best = res.routers[r].best_route();

    // iBGP mesh: push this router's best external route to its AS-mates.
    if (options_.use_ibgp_mesh) {
      const Route* external = res.routers[r].external_route();
      const nb::RouterId r_id = model_->router_id(r);
      for (Model::Dense mate : model_->routers_of(r_id.asn())) {
        if (mate == r) continue;
        ++res.messages;
        std::optional<Route> incoming;
        if (external != nullptr) {
          Route shared = *external;
          shared.sender = r;
          shared.ibgp = true;
          shared.igp_cost =
              options_.use_igp_cost ? model_->igp_cost(mate, r) : 0;
          incoming = std::move(shared);
        }
        RouterState& state = res.routers[mate];
        auto existing = std::find_if(
            state.rib_in.begin(), state.rib_in.end(),
            [&](const Route& route) { return route.sender == r; });
        const Selection old = snapshot(state);
        if (!incoming.has_value()) {
          if (existing == state.rib_in.end()) continue;
          state.rib_in.erase(existing);
        } else if (existing != state.rib_in.end()) {
          if (existing->path == incoming->path &&
              existing->local_pref == incoming->local_pref &&
              existing->med == incoming->med &&
              existing->igp_cost == incoming->igp_cost &&
              existing->ibgp == incoming->ibgp) {
            continue;
          }
          *existing = std::move(*incoming);
        } else {
          state.rib_in.push_back(std::move(*incoming));
        }
        if (reselect(state, old)) enqueue(mate);
      }
    }

    for (const Model::Dense peer : model_->peers(r)) {
      ++res.messages;
      std::optional<Route> incoming;
      if (best != nullptr) {
        if (std::optional<Route> exported =
                export_route(policy, r, peer, *best);
            exported.has_value()) {
          incoming = import_route(policy, peer, r, *exported);
        }
      }

      RouterState& state = res.routers[peer];
      auto existing =
          std::find_if(state.rib_in.begin(), state.rib_in.end(),
                       [&](const Route& route) { return route.sender == r; });

      const Selection old = snapshot(state);
      if (!incoming.has_value()) {
        if (existing == state.rib_in.end()) continue;  // nothing to withdraw
        state.rib_in.erase(existing);
      } else if (existing != state.rib_in.end()) {
        if (existing->path == incoming->path &&
            existing->local_pref == incoming->local_pref &&
            existing->med == incoming->med &&
            existing->igp_cost == incoming->igp_cost) {
          continue;  // unchanged advertisement
        }
        *existing = std::move(*incoming);
      } else {
        state.rib_in.push_back(std::move(*incoming));
      }

      // Re-run the decision process; propagate only if a selection changed.
      if (reselect(state, old)) enqueue(peer);
    }
  }
  return res;
}

}  // namespace bgp
